// Package hydra's root benchmarks regenerate every figure of the paper's
// evaluation (one bench per figure, per DESIGN.md's experiment index) plus
// the design-choice ablations. Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each iteration executes the figure's full workload (world generation,
// feature pipeline, training, evaluation) at a reduced scale; the printed
// figure tables come from cmd/hydra-bench.
package hydra_test

import (
	"testing"

	"hydra/internal/experiments"
)

// benchCfg is the reduced scale used for benchmarking (the full-scale suite
// is cmd/hydra-bench).
func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Scale: 0.4, Seed: seed}
}

func runFigure(b *testing.B, f func(experiments.Config) (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := f(benchCfg(7))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure2aMissingStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, _, err := experiments.Figure2a(benchCfg(7))
		if err != nil {
			b.Fatal(err)
		}
		if len(stats) == 0 {
			b.Fatal("no stats")
		}
	}
}

func BenchmarkFigure8GammaSweep(b *testing.B)      { runFigure(b, experiments.Figure8) }
func BenchmarkFigure9LabeledSweep(b *testing.B)    { runFigure(b, experiments.Figure9) }
func BenchmarkFigure10PSweep(b *testing.B)         { runFigure(b, experiments.Figure10) }
func BenchmarkFigure11UnlabeledSweep(b *testing.B) { runFigure(b, experiments.Figure11) }
func BenchmarkFigure12CommunitySweep(b *testing.B) { runFigure(b, experiments.Figure12) }
func BenchmarkFigure13CrossPlatform(b *testing.B)  { runFigure(b, experiments.Figure13) }
func BenchmarkFigure14Efficiency(b *testing.B)     { runFigure(b, experiments.Figure14) }
func BenchmarkFigure15MissingData(b *testing.B)    { runFigure(b, experiments.Figure15) }

func BenchmarkAblationStructure(b *testing.B)   { runFigure(b, experiments.AblationStructure) }
func BenchmarkAblationPooling(b *testing.B)     { runFigure(b, experiments.AblationPooling) }
func BenchmarkAblationMultiScale(b *testing.B)  { runFigure(b, experiments.AblationMultiScale) }
func BenchmarkAblationTopicKernel(b *testing.B) { runFigure(b, experiments.AblationTopicKernel) }
