module hydra

go 1.24
