# HYDRA reproduction — build, verify and benchmark targets.
#
# `make ci` is the gate that keeps the two historical build breakages
# (missing go.mod, non-constant format string under vet) from regressing:
# it refuses unformatted files, then vets, builds and tests every package.

GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke bench-linalg bench-save bench-compare bench-serve bench-bundle bench-json profile-topk figures

ci: fmt vet build test bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the worker-pool and serving concurrency paths under the
# race detector — the serving engines (world- and bundle-backed,
# TestServe*, including the hot-swap drills), the scatter-gather router
# (TestRouter*), the two-tier prescreen oracles (TestPrescreen*), the
# pack-time impute table vs live-path twins (TestImpute*), the staged
# pipeline, the parallel figure sweeps and the fanned-out synth
# generator (*Workers*/*Determinism* tests) all match the filter.
# Allocation-budget tests are deliberately named outside it: the race
# runtime inflates AllocsPerRun.
race:
	$(GO) test -race -run 'Determinism|Concurrent|Workers|Serve|Router|Prescreen|Impute' ./internal/...

# bench-smoke runs every serve benchmark once (-benchtime=1x) as part of
# make ci — not for numbers, but so the bench harness itself (fixtures,
# pooled buffers, the v2/v3 decode paths, the wide-shard exact vs
# two-tier prescreen pair) cannot rot between perf PRs.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Serve' -benchtime=1x ./internal/serve/

# bench runs the parallel hot-path microbenchmarks at 1 and 4 cores so the
# worker-pool speedup (and the pinned sequential baseline) is visible.
bench:
	$(GO) test -bench='Gram|Blocking' -benchtime=1x -cpu 1,4 ./internal/kernel/ ./internal/blocking/

# bench-linalg runs the dense linear-algebra microbenchmarks behind the
# dual-training hot path (blocked Mul, parallel LU factorize/solve). Each
# benchmark carries a `naive` sub-benchmark with the pre-tiling serial
# loop, so a single run already shows the tiling delta; the -w4 variants
# only beat -w1 on multicore hardware.
LINALG_BENCH ?= Mul|Factorize|SolveMatrix
bench-linalg:
	$(GO) test -run '^$$' -bench '$(LINALG_BENCH)' -benchmem ./internal/linalg/

# bench-save / bench-compare report perf deltas mechanically: run
# `make bench-save` on the old code (writes bench-old.txt), apply the
# change, then `make bench-compare` (writes bench-new.txt and prints a
# benchstat comparison when the tool is installed, falling back to the raw
# files). BENCH_COUNT=5 gives benchstat enough samples for significance.
BENCH_COUNT ?= 5
# Redirect-then-cat (not a tee pipe) so a failing bench run fails the
# target and removes the garbage output instead of becoming a baseline.
bench-save:
	$(GO) test -run '^$$' -bench '$(LINALG_BENCH)' -count $(BENCH_COUNT) ./internal/linalg/ > bench-old.txt 2>&1 || { cat bench-old.txt; rm -f bench-old.txt; exit 1; }
	@cat bench-old.txt
bench-compare:
	$(GO) test -run '^$$' -bench '$(LINALG_BENCH)' -count $(BENCH_COUNT) ./internal/linalg/ > bench-new.txt 2>&1 || { cat bench-new.txt; rm -f bench-new.txt; exit 1; }
	@cat bench-new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-old.txt bench-new.txt; \
	else \
		echo "benchstat not installed; compare bench-old.txt and bench-new.txt by hand"; \
	fi

# bench-serve runs the serving-path microbenchmarks: single-pair score
# latency, top-k query latency over the sharded candidate index, and
# batched score throughput (the hydra-serve hot paths).
bench-serve:
	$(GO) test -run '^$$' -bench 'Serve' -benchmem ./internal/serve/

# bench-bundle compares the two hydra-serve startup paths: artifact+world
# (rebuilds the feature pipeline and candidate indexes from the dataset)
# vs self-contained bundle (decodes precomputed views and index shards).
# The bundle's cold start should beat the world rebuild by orders of
# magnitude — that gap is the reason the format exists.
bench-bundle:
	$(GO) test -run '^$$' -bench 'BundleColdStart' -benchmem -benchtime 1x ./internal/serve/

# bench-json trains a small model through the staged pipeline, persists
# it both ways and benchmarks the restored engines, writing a machine-
# readable BENCH_PR8.json snapshot (cold-start world vs bundle, v2 vs v3
# bundle bytes + decode, steady-state query latency + allocs/op, router
# scatter-gather top-k over 4 in-process shards, hot-swap pause p99, the
# two-tier prescreen's recall-vs-speedup curve on wide shards, and the
# pack-time impute table's table-on/table-off pair with table bytes and
# hit ratio) so the perf trajectory has a mechanical data point per PR.
bench-json:
	$(GO) run ./cmd/hydra-servebench -prev BENCH_PR7.json -json BENCH_PR8.json

# profile-topk captures a CPU profile of the wide-shard top-k serving
# path (the impute-dominated workload the pack-time table attacks).
# Inspect with `go tool pprof -top topk.prof` or -http=:8088.
profile-topk:
	$(GO) test -run '^$$' -bench 'ServeTopKImputeTable' -benchtime 2s \
		-cpuprofile topk.prof -o topk.test ./internal/serve/
	$(GO) tool pprof -top -nodecount 15 topk.test topk.prof

# figures regenerates every figure table (the full experiment suite).
figures:
	$(GO) run ./cmd/hydra-bench
