# HYDRA reproduction — build, verify and benchmark targets.
#
# `make ci` is the gate that keeps the two historical build breakages
# (missing go.mod, non-constant format string under vet) from regressing:
# it refuses unformatted files, then vets, builds and tests every package.

GO ?= go

.PHONY: ci fmt vet build test race bench

ci: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the worker-pool paths under the race detector.
race:
	$(GO) test -race -run 'Determinism|Concurrent|Workers' ./internal/...

# bench runs the parallel hot-path microbenchmarks at 1 and 4 cores so the
# worker-pool speedup (and the pinned sequential baseline) is visible.
bench:
	$(GO) test -bench='Gram|Blocking' -benchtime=1x -cpu 1,4 ./internal/kernel/ ./internal/blocking/

# figures regenerates every figure table (the full experiment suite).
figures:
	$(GO) run ./cmd/hydra-bench
