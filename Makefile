# HYDRA reproduction — build, verify and benchmark targets.
#
# `make ci` is the gate that keeps the two historical build breakages
# (missing go.mod, non-constant format string under vet) from regressing:
# it refuses unformatted files, then vets, builds and tests every package.

GO ?= go

.PHONY: ci fmt vet build test race chaos fuzz-smoke bench bench-smoke bench-load bench-chaos bench-linalg bench-save bench-compare bench-serve bench-bundle bench-json bench-micro profile-topk figures world-50k

ci: fmt vet build test chaos bench-smoke bench-load

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the worker-pool and serving concurrency paths under the
# race detector — the serving engines (world- and bundle-backed,
# TestServe*, including the hot-swap drills), the scatter-gather router
# (TestRouter*), the two-tier prescreen oracles (TestPrescreen*), the
# pack-time impute table vs live-path twins (TestImpute*), the staged
# pipeline, the parallel figure sweeps and the fanned-out synth
# generator (*Workers*/*Determinism* tests) all match the filter.
# Allocation-budget tests are deliberately named outside it: the race
# runtime inflates AllocsPerRun.
race:
	$(GO) test -race -run 'Determinism|Concurrent|Workers|Serve|Router|Prescreen|Impute|Faults|Chaos|Hedge|Breaker' ./internal/...

# chaos runs the certification suite: seeded fault scripts (flapping,
# dead shard, uniform slowness, straggler tail, swap storms, overload)
# against the hardened router, every answer asserted byte-identical to
# the fault-free single engine or truthfully degraded. Deterministic —
# a failure replays with `go test -run Chaos ./internal/faults/`.
chaos:
	$(GO) test -run 'Faults|Chaos' -count=1 ./internal/faults/

# fuzz-smoke gives each native fuzz target a short budget on top of the
# checked-in corpus — long runs are manual (`go test -fuzz FuzzReadBundle
# -fuzztime 10m ./internal/pipeline/`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadBundle -fuzztime 10s ./internal/pipeline/
	$(GO) test -run '^$$' -fuzz FuzzOpenBundleMapped -fuzztime 10s ./internal/pipeline/

# bench-smoke runs every serve benchmark once (-benchtime=1x) as part of
# make ci — not for numbers, but so the bench harness itself (fixtures,
# pooled buffers, the v2/v3 decode paths, the wide-shard exact vs
# two-tier prescreen pair) cannot rot between perf PRs.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Serve' -benchtime=1x ./internal/serve/

# bench-load is the closed-loop harness's ci smoke: train a small model
# in-process, serve it over real loopback HTTP through the mmap-backed
# engine and the scatter-gather router (in-process shards), drive each
# for a short burst, and fail on any request error or a mapped/heap
# checksum mismatch. Short on purpose — it keeps the harness honest,
# the numbers come from bench-json.
bench-load:
	$(GO) run ./cmd/hydra-loadgen -persons 40 -clients 4 -duration 1s

# bench runs the parallel hot-path microbenchmarks at 1 and 4 cores so the
# worker-pool speedup (and the pinned sequential baseline) is visible.
bench:
	$(GO) test -bench='Gram|Blocking' -benchtime=1x -cpu 1,4 ./internal/kernel/ ./internal/blocking/

# bench-linalg runs the dense linear-algebra microbenchmarks behind the
# dual-training hot path (blocked Mul, parallel LU factorize/solve). Each
# benchmark carries a `naive` sub-benchmark with the pre-tiling serial
# loop, so a single run already shows the tiling delta; the -w4 variants
# only beat -w1 on multicore hardware.
LINALG_BENCH ?= Mul|Factorize|SolveMatrix
bench-linalg:
	$(GO) test -run '^$$' -bench '$(LINALG_BENCH)' -benchmem ./internal/linalg/

# bench-save / bench-compare report perf deltas mechanically: run
# `make bench-save` on the old code (writes bench-old.txt), apply the
# change, then `make bench-compare` (writes bench-new.txt and prints a
# benchstat comparison when the tool is installed, falling back to the raw
# files). BENCH_COUNT=5 gives benchstat enough samples for significance.
BENCH_COUNT ?= 5
# Redirect-then-cat (not a tee pipe) so a failing bench run fails the
# target and removes the garbage output instead of becoming a baseline.
bench-save:
	$(GO) test -run '^$$' -bench '$(LINALG_BENCH)' -count $(BENCH_COUNT) ./internal/linalg/ > bench-old.txt 2>&1 || { cat bench-old.txt; rm -f bench-old.txt; exit 1; }
	@cat bench-old.txt
bench-compare:
	$(GO) test -run '^$$' -bench '$(LINALG_BENCH)' -count $(BENCH_COUNT) ./internal/linalg/ > bench-new.txt 2>&1 || { cat bench-new.txt; rm -f bench-new.txt; exit 1; }
	@cat bench-new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-old.txt bench-new.txt; \
	else \
		echo "benchstat not installed; compare bench-old.txt and bench-new.txt by hand"; \
	fi

# bench-serve runs the serving-path microbenchmarks: single-pair score
# latency, top-k query latency over the sharded candidate index, and
# batched score throughput (the hydra-serve hot paths).
bench-serve:
	$(GO) test -run '^$$' -bench 'Serve' -benchmem ./internal/serve/

# bench-bundle compares the two hydra-serve startup paths: artifact+world
# (rebuilds the feature pipeline and candidate indexes from the dataset)
# vs self-contained bundle (decodes precomputed views and index shards).
# The bundle's cold start should beat the world rebuild by orders of
# magnitude — that gap is the reason the format exists.
bench-bundle:
	$(GO) test -run '^$$' -bench 'BundleColdStart' -benchmem -benchtime 1x ./internal/serve/

# bench-json is this PR's machine-readable snapshot: the out-of-RAM
# serving benchmark. It tiles a trained model to a 50k-account bundle
# on disk (~300 MB), measures cold start + RSS for the decoded and
# mapped engines in separate child processes (open / after-touch /
# after-cache-drop), asserts their top-k answers hash identically and
# the mapped cold start is ≥ 10× faster, then drives both front-ends
# with the closed-loop load harness (p50/p99/p999) and writes
# BENCH_PR9.json with the PR 8 numbers embedded as the before block.
bench-json:
	$(GO) run ./cmd/hydra-loadgen -bench-50k -dir bench50k -duration 3s -clients 4 -prev BENCH_PR8.json -json BENCH_PR9.json

# bench-chaos drives the chaos scripts against live loopback processes
# (real HTTP replicas, fault middleware at the wire): fault-free
# baseline, preferred replica hard-down (p99 must hold within 2x,
# breaker-capped probe traffic), seeded straggler tail (tied hedging),
# and overload against a bounded admission gate — every phase swept
# against the single engine, 0 wrong answers required. Writes
# BENCH_PR10.json.
bench-chaos:
	$(GO) run ./cmd/hydra-loadgen -chaos -json BENCH_PR10.json

# bench-micro is the previous per-PR snapshot tool (microbenchmarks:
# cold starts, steady-state latency + allocs/op, prescreen and impute-
# table curves), still runnable for spot checks.
bench-micro:
	$(GO) run ./cmd/hydra-servebench -prev BENCH_PR7.json -json BENCH_MICRO.json

# profile-topk captures a CPU profile of the wide-shard top-k serving
# path (the impute-dominated workload the pack-time table attacks).
# Inspect with `go tool pprof -top topk.prof` or -http=:8088.
profile-topk:
	$(GO) test -run '^$$' -bench 'ServeTopKImputeTable' -benchtime 2s \
		-cpuprofile topk.prof -o topk.test ./internal/serve/
	$(GO) tool pprof -top -nodecount 15 topk.test topk.prof

# figures regenerates every figure table (the full experiment suite).
figures:
	$(GO) run ./cmd/hydra-bench

# world-50k streams a 50 000-account (25k persons × 2 platforms) world
# to disk without ever holding it in RAM — the hydra-gen -stream path,
# byte-identical to the in-memory encoder at any -workers setting.
world-50k:
	$(GO) run ./cmd/hydra-gen -stream -persons 25000 -o world50k.json
