package pipeline

import (
	"fmt"

	"hydra/internal/blocking"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/platform"
)

// TiledBundle scales a trained base bundle to n accounts per platform
// for out-of-RAM serving benchmarks: account i reuses the feature
// numerics of base view i%nbase (shared slices — the in-RAM cost of the
// tiled bundle is O(base), while its wire form duplicates every view
// and grows linearly with n), friends come from a deterministic
// community layout, and each indexed pair gets a seeded candidate list
// of ~candsPerA B-side accounts per A-side account. The result is a
// valid unsharded bundle the serving stack loads through either path;
// the prescreen and impute table are dropped (both are keyed to the
// base world's candidate geometry).
//
// This is a load-shape generator, not a linkage benchmark: scores over
// tiled views are meaningless as accuracy numbers, but every byte and
// branch of the serving path — decode or mmap, view materialization,
// index walks, Eqn-18 imputation over the friend slices — is exercised
// at the scaled size.
func TiledBundle(base *Bundle, n, candsPerA int, seed uint64) (*Bundle, error) {
	if base.Shard != nil {
		return nil, fmt.Errorf("pipeline: TiledBundle needs an unsharded base bundle")
	}
	if n <= 0 || candsPerA <= 0 {
		return nil, fmt.Errorf("pipeline: TiledBundle needs positive sizes, got n=%d candsPerA=%d", n, candsPerA)
	}
	if candsPerA > n {
		candsPerA = n
	}
	const community = 512 // friend edges stay inside blocks of this size
	if base.FriendsK >= community {
		return nil, fmt.Errorf("pipeline: TiledBundle community size %d cannot hold top-%d friends", community, base.FriendsK)
	}

	t := &Bundle{
		Version:          base.Version,
		Pipeline:         base.Pipeline,
		Views:            make(map[platform.ID][]features.ViewParts, len(base.Views)),
		Friends:          make(map[platform.ID][][]graph.Friend, len(base.Friends)),
		FriendsK:         base.FriendsK,
		Faces:            base.Faces,
		Model:            base.Model,
		Pairs:            base.Pairs,
		WorldPersons:     n,
		WorldFingerprint: fmt.Sprintf("tiled:%d:%d:%d", n, candsPerA, seed),
	}

	for pid, views := range base.Views {
		if len(views) == 0 {
			return nil, fmt.Errorf("pipeline: TiledBundle base has no views for %s", pid)
		}
		out := make([]features.ViewParts, n)
		for i := 0; i < n; i++ {
			v := views[i%len(views)]
			// Attrs and Unique ride in the bundle header (JSON); at 50k
			// accounts they would bloat the O(header) cold start for no
			// benchmark value. Usernames stay — the REPL prints them.
			v.Attrs = nil
			v.Unique = nil
			out[i] = v
		}
		t.Views[pid] = out
	}

	// Friends: block-local rings. Account i's friends are the next
	// FriendsK accounts of its community block with descending weights,
	// so Eqn-18 imputation walks real in-range slices everywhere.
	for pid := range base.Views {
		fr := make([][]graph.Friend, n)
		for i := 0; i < n; i++ {
			block := (i / community) * community
			size := community
			if block+size > n {
				size = n - block
			}
			k := base.FriendsK
			if k > size-1 {
				k = size - 1
			}
			fs := make([]graph.Friend, k)
			for tIdx := 0; tIdx < k; tIdx++ {
				fs[tIdx] = graph.Friend{
					ID:     block + (i-block+1+tIdx)%size,
					Weight: float64(base.FriendsK - tIdx + 1),
				}
			}
			fr[i] = fs
		}
		t.Friends[pid] = fr
	}

	// Indexes: per A-side account, a contiguous run of B-side ids
	// starting at a hashed offset, with hashed length jitter around
	// candsPerA so the fan-out distribution has a real tail.
	t.Indexes = make([]blocking.IndexParts, len(base.Indexes))
	for ixi, ix := range base.Indexes {
		byA := make([][]blocking.Candidate, n)
		for a := 0; a < n; a++ {
			h := mix64(seed, uint64(ixi), uint64(a))
			m := candsPerA/2 + int(h%uint64(candsPerA+1))
			if m > n {
				m = n
			}
			start := int(mix64(seed, uint64(ixi)+7, uint64(a)) % uint64(n))
			row := make([]blocking.Candidate, m)
			for j := 0; j < m; j++ {
				row[j] = blocking.Candidate{A: a, B: (start + j) % n}
			}
			byA[a] = row
		}
		t.Indexes[ixi] = blocking.IndexParts{PA: ix.PA, PB: ix.PB, Rules: ix.Rules, ByA: byA}
	}
	return t, nil
}

// mix64 hashes the parts splitmix64-style for TiledBundle's seeded
// layout decisions.
func mix64(parts ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, p := range parts {
		h ^= p + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
	}
	return h
}
