package pipeline

// Bundle format v3: the binary-section encoding behind WriteBundle and
// ReadBundle. The v2 bundle was one JSON document; at serving scale its
// bulk is numeric — account views (temporal events, post times, topic /
// genre / sentiment distributions, embeddings), top-friends slices,
// index shards and the model's support vectors — and JSON spends ~20
// text bytes plus parsing per float64 where 8 raw bytes round-trip the
// exact bits for free. v3 therefore splits the file:
//
//	"HYB3"                         4-byte magic (ReadBundle sniffs it)
//	u64 header length              little-endian
//	header JSON                    everything small or stringly: the
//	                               pipeline parts, per-view profile
//	                               strings, face matcher, model config +
//	                               bias + diagnostics, pairs, index
//	                               rules, provenance
//	4 × (u64 length | payload)     binary sections, fixed order: model
//	                               (support vectors + duals), view
//	                               numerics, friend slices, index shards
//
// Every section is length-prefixed so a future reader can skip what it
// does not know. All integers are little-endian and fixed width; floats
// are raw IEEE-754 bits (bit-exact by construction — stronger than the
// shortest-unique decimal argument the JSON formats rely on). Slices are
// written with a presence byte before the count so nil and empty — which
// encoding/json also distinguishes — survive the round trip, keeping a
// v3 decode deep-equal to the bundle that was written. Times are stored
// as Unix nanoseconds and restored in UTC, which is exactly what the v2
// JSON round trip produced for the UTC timestamps the pipeline works in,
// so a v3-restored engine answers byte-identically to a v2-restored one.
// The format is golden-pinned by TestBundleV3GoldenFormat.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/temporal"
	"hydra/internal/vision"
)

// bundleMagic identifies a v3 binary bundle; it is deliberately invalid
// as the first bytes of a JSON document.
const bundleMagic = "HYB3"

// bundleHeaderV3 is the JSON header: the bundle minus its binary
// sections, plus the per-view profile strings the view section omits.
type bundleHeaderV3 struct {
	Version  int                          `json:"version"`
	Pipeline features.PipelineParts       `json:"pipeline"`
	Views    map[platform.ID][]viewMetaV3 `json:"views"`
	FriendsK int                          `json:"friends_k"`
	Faces    vision.Matcher               `json:"faces"`
	Model    modelMetaV3                  `json:"model"`
	Pairs    [][2]platform.ID             `json:"pairs"`
	Indexes  []indexMetaV3                `json:"indexes"`
	Shard    *ShardDesc                   `json:"shard,omitempty"`

	// Prescreen announces the optional trailing prescreen section (its
	// scalars here, its vectors there). Omitted — as every pre-prescreen
	// bundle omits it — means no fifth section follows and the engine
	// serves exact-only, so old bundles decode unchanged.
	Prescreen *prescreenMetaV3 `json:"prescreen,omitempty"`

	// ImputeTable announces the optional trailing impute-table section
	// (its scalars here, its ids/counts/sums there), after the prescreen
	// section when both are present. Omitted means no such section
	// follows and the engine imputes live, so old bundles decode
	// unchanged.
	ImputeTable *imputeTableMetaV3 `json:"impute_table,omitempty"`

	WorldPersons     int    `json:"world_persons"`
	WorldFingerprint string `json:"world_fingerprint"`
}

// prescreenMetaV3 is a core.PrescreenParts minus its projection,
// phase and collapsed vectors, which live in the prescreen section.
type prescreenMetaV3 struct {
	Features int     `json:"features"`
	RFF      int     `json:"rff"`
	Dim      int     `json:"dim"`
	Seed     int64   `json:"seed"`
	Sigma    float64 `json:"sigma"`
	EpsRaw   float64 `json:"eps_raw"`
	Safety   float64 `json:"safety"`
	Eps      float64 `json:"eps"`
}

// imputeTableMetaV3 is a core.ImputeTableParts minus its id, count and
// sum arrays, which live in the impute-table section. Entries pins each
// platform pair's entry count so a truncated section fails shape checks
// at load time.
type imputeTableMetaV3 struct {
	K     int                     `json:"k"`
	Dim   int                     `json:"dim"`
	Pairs []imputeTablePairMetaV3 `json:"pairs"`
}

type imputeTablePairMetaV3 struct {
	PA      platform.ID `json:"pa"`
	PB      platform.ID `json:"pb"`
	Entries int         `json:"entries"`
}

// viewMetaV3 is the stringly half of a features.ViewParts; the numeric
// half lives in the view section.
type viewMetaV3 struct {
	Username string                       `json:"username"`
	Attrs    map[platform.AttrName]string `json:"attrs,omitempty"`
	AvatarID uint64                       `json:"avatar_id,omitempty"`
	Unique   []string                     `json:"unique,omitempty"`
}

// modelMetaV3 is core.ModelParts minus the support vectors and duals,
// which live in the model section.
type modelMetaV3 struct {
	Cfg         core.Config      `json:"cfg"`
	KernelKind  string           `json:"kernel_kind"`
	KernelSigma float64          `json:"kernel_sigma,omitempty"`
	Bias        float64          `json:"bias"`
	Diag        core.Diagnostics `json:"diag"`
}

// indexMetaV3 is a blocking.IndexParts minus its shards, which live in
// the index section.
type indexMetaV3 struct {
	PA    platform.ID    `json:"pa"`
	PB    platform.ID    `json:"pb"`
	Rules blocking.Rules `json:"rules"`
}

// writeBundleV3 encodes the bundle as magic + JSON header + binary
// sections. The section payloads are assembled in memory first (their
// length prefixes need final sizes); a 100-person bundle's sections are
// ~1 MB, so this costs one transient buffer, not a second bundle.
func writeBundleV3(w io.Writer, b *Bundle) error {
	plats := sortedPlatformIDs(b.Views)
	header := bundleHeaderV3{
		Version:  BundleVersion,
		Pipeline: b.Pipeline,
		Views:    make(map[platform.ID][]viewMetaV3, len(b.Views)),
		FriendsK: b.FriendsK,
		Faces:    b.Faces,
		Model: modelMetaV3{
			Cfg:         b.Model.Cfg,
			KernelKind:  b.Model.KernelKind,
			KernelSigma: b.Model.KernelSigma,
			Bias:        b.Model.Bias,
			Diag:        b.Model.Diag,
		},
		Pairs:            b.Pairs,
		Shard:            b.Shard,
		WorldPersons:     b.WorldPersons,
		WorldFingerprint: b.WorldFingerprint,
	}
	for id, views := range b.Views {
		metas := make([]viewMetaV3, len(views))
		for i, v := range views {
			metas[i] = viewMetaV3{Username: v.Username, Attrs: v.Attrs, AvatarID: v.AvatarID, Unique: v.Unique}
		}
		header.Views[id] = metas
	}
	for _, ix := range b.Indexes {
		header.Indexes = append(header.Indexes, indexMetaV3{PA: ix.PA, PB: ix.PB, Rules: ix.Rules})
	}
	if p := b.Prescreen; p != nil {
		header.Prescreen = &prescreenMetaV3{
			Features: p.Features, RFF: p.RFF, Dim: p.Dim, Seed: p.Seed,
			Sigma: p.Sigma, EpsRaw: p.EpsRaw, Safety: p.Safety, Eps: p.Eps,
		}
	}
	if t := b.ImputeTable; t != nil {
		meta := &imputeTableMetaV3{K: t.K, Dim: t.Dim}
		for i := range t.Pairs {
			pp := &t.Pairs[i]
			meta.Pairs = append(meta.Pairs, imputeTablePairMetaV3{
				PA: pp.PA, PB: pp.PB, Entries: len(pp.A),
			})
		}
		header.ImputeTable = meta
	}
	headerJSON, err := json.Marshal(header)
	if err != nil {
		return fmt.Errorf("pipeline: encode v3 header: %w", err)
	}

	var model, views, friends, indexes binSection
	model.putVecs(b.Model.Xs)
	model.putVec(b.Model.Alpha)
	for _, id := range plats {
		vs := b.Views[id]
		views.putU32(uint32(len(vs)))
		for _, v := range vs {
			views.putEvents(v.Events)
			views.putTimes(v.PostTimes)
			views.putVecs(v.TopicDists)
			views.putVecs(v.GenreDists)
			views.putVecs(v.SentDists)
			views.putVec(v.Embedding)
		}
		fs := b.Friends[id]
		friends.putU32(uint32(len(fs)))
		for _, fr := range fs {
			friends.putFriends(fr)
		}
	}
	for _, ix := range b.Indexes {
		indexes.putShards(ix.ByA)
	}

	if _, err := io.WriteString(w, bundleMagic); err != nil {
		return err
	}
	var lenBuf [8]byte
	writeBlock := func(p []byte) error {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := w.Write(p)
		return err
	}
	if err := writeBlock(headerJSON); err != nil {
		return err
	}
	secs := []*binSection{&model, &views, &friends, &indexes}
	if p := b.Prescreen; p != nil {
		// The prescreen section trails the fixed four, announced by the
		// header, so a bundle without one is byte-identical to what
		// pre-prescreen writers produced.
		var prescreen binSection
		prescreen.putVec(p.W)
		prescreen.putVec(p.B)
		prescreen.putVec(p.C)
		prescreen.putVec(p.V)
		secs = append(secs, &prescreen)
	}
	if t := b.ImputeTable; t != nil {
		// The impute-table section trails the prescreen (when present) in
		// fixed order, announced by the header like the prescreen is.
		var table binSection
		for i := range t.Pairs {
			pp := &t.Pairs[i]
			table.putI32s(pp.A)
			table.putI32s(pp.B)
			table.putVec(pp.Counts)
			table.putVec(pp.Sums)
		}
		secs = append(secs, &table)
	}
	for _, sec := range secs {
		if sec.err != nil {
			return fmt.Errorf("pipeline: encode v3 sections: %w", sec.err)
		}
		if err := writeBlock(sec.buf); err != nil {
			return err
		}
	}
	return nil
}

// readBundleV3 decodes magic + header + sections back into a Bundle.
func readBundleV3(r io.Reader) (*Bundle, error) {
	magic := make([]byte, len(bundleMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("pipeline: read bundle magic: %w", err)
	}
	if string(magic) != bundleMagic {
		return nil, fmt.Errorf("pipeline: bad bundle magic %q", magic)
	}
	readBlock := func(what string) ([]byte, error) {
		var lenBuf [8]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("pipeline: read v3 %s length: %w", what, err)
		}
		n := binary.LittleEndian.Uint64(lenBuf[:])
		const maxSection = 1 << 33 // 8 GiB: far above any real bundle, far below a length-corruption OOM
		if n > maxSection {
			return nil, fmt.Errorf("pipeline: v3 %s claims %d bytes — corrupt bundle", what, n)
		}
		// Allocate at most a chunk before bytes actually arrive: a
		// corrupt length on a short file must fail at EOF, not OOM on
		// the upfront make (a 25-byte input can claim a 4 GiB section).
		const upfront = 1 << 26 // 64 MiB
		if n <= upfront {
			p := make([]byte, n)
			if _, err := io.ReadFull(r, p); err != nil {
				return nil, fmt.Errorf("pipeline: read v3 %s: %w", what, err)
			}
			return p, nil
		}
		var buf bytes.Buffer
		buf.Grow(upfront)
		if m, err := io.CopyN(&buf, r, int64(n)); err != nil {
			return nil, fmt.Errorf("pipeline: read v3 %s: %w (got %d of %d bytes)", what, err, m, n)
		}
		return buf.Bytes(), nil
	}
	headerJSON, err := readBlock("header")
	if err != nil {
		return nil, err
	}
	var header bundleHeaderV3
	if err := json.Unmarshal(headerJSON, &header); err != nil {
		return nil, fmt.Errorf("pipeline: decode v3 header: %w", err)
	}
	if header.Version != BundleVersion {
		return nil, fmt.Errorf("pipeline: binary bundle version %d, this build reads version %d", header.Version, BundleVersion)
	}
	if err := header.Shard.Validate(); err != nil {
		return nil, err
	}
	var secs [4]binSection
	for i, what := range []string{"model section", "view section", "friend section", "index section"} {
		p, err := readBlock(what)
		if err != nil {
			return nil, err
		}
		secs[i] = binSection{buf: p}
	}
	model, views, friends, indexes := &secs[0], &secs[1], &secs[2], &secs[3]

	b := &Bundle{
		Version:  header.Version,
		Pipeline: header.Pipeline,
		Views:    make(map[platform.ID][]features.ViewParts, len(header.Views)),
		Friends:  make(map[platform.ID][][]graph.Friend, len(header.Views)),
		FriendsK: header.FriendsK,
		Faces:    header.Faces,
		Model: core.ModelParts{
			Cfg:         header.Model.Cfg,
			KernelKind:  header.Model.KernelKind,
			KernelSigma: header.Model.KernelSigma,
			Bias:        header.Model.Bias,
			Diag:        header.Model.Diag,
		},
		Pairs:            header.Pairs,
		Shard:            header.Shard,
		WorldPersons:     header.WorldPersons,
		WorldFingerprint: header.WorldFingerprint,
	}
	b.Model.Xs = model.vecs()
	b.Model.Alpha = model.vec()

	for _, id := range sortedPlatformIDs(header.Views) {
		metas := header.Views[id]
		nv := int(views.u32())
		if nv != len(metas) {
			return nil, fmt.Errorf("pipeline: v3 view section has %d accounts for %s, header lists %d", nv, id, len(metas))
		}
		vs := make([]features.ViewParts, nv)
		for i := 0; i < nv; i++ {
			vs[i] = features.ViewParts{
				Username:   metas[i].Username,
				Attrs:      metas[i].Attrs,
				AvatarID:   metas[i].AvatarID,
				Unique:     metas[i].Unique,
				Events:     views.events(),
				PostTimes:  views.times(),
				TopicDists: views.vecs(),
				GenreDists: views.vecs(),
				SentDists:  views.vecs(),
				Embedding:  views.vec(),
			}
		}
		b.Views[id] = vs
		nf := int(friends.u32())
		if nf != nv {
			return nil, fmt.Errorf("pipeline: v3 friend section has %d accounts for %s, view section has %d", nf, id, nv)
		}
		frs := make([][]graph.Friend, nf)
		for i := 0; i < nf; i++ {
			frs[i] = friends.friends()
		}
		b.Friends[id] = frs
	}
	for _, meta := range header.Indexes {
		b.Indexes = append(b.Indexes, blocking.IndexParts{
			PA: meta.PA, PB: meta.PB, Rules: meta.Rules, ByA: indexes.shards(),
		})
	}
	secList := []*binSection{model, views, friends, indexes}
	if hp := header.Prescreen; hp != nil {
		p, err := readBlock("prescreen section")
		if err != nil {
			return nil, err
		}
		prescreen := &binSection{buf: p}
		b.Prescreen = &core.PrescreenParts{
			Features: hp.Features, RFF: hp.RFF, Dim: hp.Dim, Seed: hp.Seed,
			Sigma: hp.Sigma, EpsRaw: hp.EpsRaw, Safety: hp.Safety, Eps: hp.Eps,
			W: prescreen.vec(), B: prescreen.vec(), C: prescreen.vec(), V: prescreen.vec(),
		}
		secList = append(secList, prescreen)
	}
	if ht := header.ImputeTable; ht != nil {
		p, err := readBlock("impute-table section")
		if err != nil {
			return nil, err
		}
		table := &binSection{buf: p}
		t := &core.ImputeTableParts{K: ht.K, Dim: ht.Dim}
		for _, pm := range ht.Pairs {
			pp := core.ImputeTablePairParts{
				PA: pm.PA, PB: pm.PB,
				A: table.i32s(), B: table.i32s(),
				Counts: table.vec(), Sums: table.vec(),
			}
			if table.err == nil && len(pp.A) != pm.Entries {
				return nil, fmt.Errorf("pipeline: v3 impute-table section has %d entries for %s/%s, header lists %d",
					len(pp.A), pm.PA, pm.PB, pm.Entries)
			}
			t.Pairs = append(t.Pairs, pp)
		}
		b.ImputeTable = t
		secList = append(secList, table)
	}
	for i, sec := range secList {
		if sec.err != nil {
			return nil, fmt.Errorf("pipeline: decode v3 section %d: %w", i, sec.err)
		}
		if sec.off != len(sec.buf) {
			return nil, fmt.Errorf("pipeline: v3 section %d has %d trailing bytes — corrupt bundle", i, len(sec.buf)-sec.off)
		}
	}
	if b.Prescreen != nil {
		// Shape-check against the header's announced dimensions here, so
		// a truncated or hand-edited prescreen fails at load time rather
		// than mis-pruning a top-k later.
		if err := b.Prescreen.Validate(); err != nil {
			return nil, err
		}
	}
	if b.ImputeTable != nil {
		// Same load-time shape check for the impute table, so corruption
		// fails here instead of mis-filling a feature vector later.
		if err := b.ImputeTable.Validate(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// sortedPlatformIDs returns a platform-keyed map's ids in sorted order —
// the order the binary sections are laid out in, and the same order the
// JSON header's map keys marshal in, so writer and reader agree without
// a separate section directory.
func sortedPlatformIDs[T any](m map[platform.ID]T) []platform.ID {
	out := make([]platform.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// binSection is a little-endian, length-prefixed binary buffer: the
// writer appends, the reader consumes from off. The first error sticks;
// readers return zero values after it so decode loops stay simple and
// the caller checks err once at the end.
type binSection struct {
	buf []byte
	off int
	err error
}

func (s *binSection) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *binSection) putU8(v uint8)   { s.buf = append(s.buf, v) }
func (s *binSection) putU32(v uint32) { s.buf = binary.LittleEndian.AppendUint32(s.buf, v) }
func (s *binSection) putU64(v uint64) { s.buf = binary.LittleEndian.AppendUint64(s.buf, v) }
func (s *binSection) putI64(v int64)  { s.putU64(uint64(v)) }
func (s *binSection) putF64(v float64) {
	s.putU64(math.Float64bits(v))
}

// putLen writes a presence byte and the length, preserving nil vs empty.
func (s *binSection) putLen(n int, isNil bool) {
	if isNil {
		s.putU8(0)
		return
	}
	s.putU8(1)
	s.putU32(uint32(n))
}

func (s *binSection) putVec(v linalg.Vector) {
	s.putLen(len(v), v == nil)
	for _, x := range v {
		s.putF64(x)
	}
}

func (s *binSection) putVecs(vs []linalg.Vector) {
	s.putLen(len(vs), vs == nil)
	for _, v := range vs {
		s.putVec(v)
	}
}

func (s *binSection) putTimes(ts []time.Time) {
	s.putLen(len(ts), ts == nil)
	for _, t := range ts {
		s.putI64(t.UnixNano())
	}
}

func (s *binSection) putEvents(es []temporal.Event) {
	s.putLen(len(es), es == nil)
	for _, e := range es {
		s.putI64(e.Time.UnixNano())
		s.putF64(e.Lat)
		s.putF64(e.Lon)
		s.putU64(e.MediaID)
	}
}

func (s *binSection) putFriends(fs []graph.Friend) {
	s.putLen(len(fs), fs == nil)
	for _, f := range fs {
		s.putI64(int64(f.ID))
		s.putF64(f.Weight)
	}
}

// putI32s writes non-negative int32 ids as u32s (the id width the index
// section already commits to), presence-prefixed like every slice.
func (s *binSection) putI32s(vs []int32) {
	s.putLen(len(vs), vs == nil)
	for _, v := range vs {
		if v < 0 {
			s.fail(fmt.Errorf("account id %d out of the u32 range the impute-table section encodes", v))
			return
		}
		s.putU32(uint32(v))
	}
}

func (s *binSection) putShards(byA [][]blocking.Candidate) {
	s.putLen(len(byA), byA == nil)
	for _, shard := range byA {
		s.putLen(len(shard), shard == nil)
		for _, c := range shard {
			if c.A < 0 || c.A > math.MaxUint32 || c.B < 0 || c.B > math.MaxUint32 {
				s.fail(fmt.Errorf("candidate ids (%d, %d) out of the u32 range the index section encodes", c.A, c.B))
				return
			}
			s.putU32(uint32(c.A))
			s.putU32(uint32(c.B))
			s.putF64(c.Score)
			if c.PreMatched {
				s.putU8(1)
			} else {
				s.putU8(0)
			}
		}
	}
}

func (s *binSection) take(n int) []byte {
	if s.err != nil {
		return nil
	}
	if s.off+n > len(s.buf) {
		s.fail(fmt.Errorf("section truncated at byte %d (want %d more)", s.off, n))
		return nil
	}
	p := s.buf[s.off : s.off+n]
	s.off += n
	return p
}

func (s *binSection) u8() uint8 {
	p := s.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (s *binSection) u32() uint32 {
	p := s.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (s *binSection) u64() uint64 {
	p := s.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (s *binSection) i64() int64   { return int64(s.u64()) }
func (s *binSection) f64() float64 { return math.Float64frombits(s.u64()) }

// sliceLen reads a presence byte and length; ok is false for nil.
func (s *binSection) sliceLen() (n int, ok bool) {
	if s.u8() == 0 {
		return 0, false
	}
	n = int(s.u32())
	// Each encoded element of every slice type is at least 1 byte, so a
	// length beyond the remaining bytes is corruption — fail now rather
	// than letting make() balloon.
	if s.err == nil && n > len(s.buf)-s.off {
		s.fail(fmt.Errorf("slice of %d elements at byte %d exceeds section size %d", n, s.off, len(s.buf)))
		return 0, false
	}
	return n, true
}

func (s *binSection) vec() linalg.Vector {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	v := make(linalg.Vector, n)
	for i := range v {
		v[i] = s.f64()
	}
	return v
}

func (s *binSection) vecs() []linalg.Vector {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	vs := make([]linalg.Vector, n)
	for i := range vs {
		vs[i] = s.vec()
	}
	return vs
}

func (s *binSection) times() []time.Time {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	ts := make([]time.Time, n)
	for i := range ts {
		ts[i] = time.Unix(0, s.i64()).UTC()
	}
	return ts
}

func (s *binSection) events() []temporal.Event {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	es := make([]temporal.Event, n)
	for i := range es {
		es[i] = temporal.Event{
			Time:    time.Unix(0, s.i64()).UTC(),
			Lat:     s.f64(),
			Lon:     s.f64(),
			MediaID: s.u64(),
		}
	}
	return es
}

func (s *binSection) friends() []graph.Friend {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	fs := make([]graph.Friend, n)
	for i := range fs {
		fs[i] = graph.Friend{ID: int(s.i64()), Weight: s.f64()}
	}
	return fs
}

func (s *binSection) i32s() []int32 {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(s.u32())
	}
	return vs
}

func (s *binSection) shards() [][]blocking.Candidate {
	n, ok := s.sliceLen()
	if !ok || s.err != nil {
		return nil
	}
	byA := make([][]blocking.Candidate, n)
	for i := range byA {
		m, ok := s.sliceLen()
		if !ok || s.err != nil {
			continue
		}
		shard := make([]blocking.Candidate, m)
		for j := range shard {
			shard[j] = blocking.Candidate{
				A:          int(s.u32()),
				B:          int(s.u32()),
				Score:      s.f64(),
				PreMatched: s.u8() == 1,
			}
		}
		byA[i] = shard
	}
	return byA
}
