package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// BundleVersion is the current bundle wire version. It continues the
// artifact's version line: the artifact is format v1; format v2 is the
// all-JSON bundle (the artifact plus everything the v1 recipe recomputed
// from the world file); format v3 keeps the v2 JSON payload for the
// small structured state but moves the bulky numeric sections — account
// views, top-friends slices, index shards, support vectors — into
// length-prefixed binary sections (see bundlebin.go), cutting bundle
// bytes and cold-start decode time. Writers emit the version stamped on
// the bundle (v3 from the packers, v2 only for migration tooling);
// ReadBundle accepts both and rejects everything else outright — the
// bundle carries raw model coefficients and precomputed views, and a
// silent cross-version reinterpretation would serve wrong scores.
const BundleVersion = 3

// BundleVersionJSON is the legacy all-JSON bundle format, still read
// (and writable by stamping a bundle with this version) through one
// deprecation window so already-packed deployments keep serving.
const BundleVersionJSON = 2

// Bundle is a self-contained serving unit: everything `hydra-serve`
// needs to answer score/link/top-k/batch queries, with no world file and
// no feature retraining. Where the v1 Artifact persists *recipes* (feature
// config + lexicons + labeled persons) that rebuild query state from the
// raw dataset, the bundle persists the query state itself:
//
//   - the query-only pipeline parts (feature config, observation span,
//     learned attribute importance) that Pair evaluation needs,
//   - every platform's per-account views — embeddings plus the
//     per-modality fields Pipeline.Pair reads,
//   - the top-friends adjacency slices HYDRA-M imputation (Eqn 18)
//     consumes, cut at the model's TopFriends depth,
//   - the simulated face-matcher state,
//   - the trained model parts (kernel, support vectors, duals, bias),
//   - the per-A-side blocking.Index shards top-k queries score against.
//
// All floats survive the JSON round trip exactly (Go's float64 encoding
// is shortest-unique), so a bundle-backed engine is bit-identical to the
// world-backed one it was packed from over the bundle's serving surface:
// every platform appearing in Pairs. Platforms the artifact never served
// (possible when the training world had more than the serving pairs) are
// deliberately not packed — the two engines agree on every in-surface
// query and both reject out-of-surface platforms, though with different
// error text (the snapshot says "not in snapshot", the builder reports a
// dataset miss).
type Bundle struct {
	Version int `json:"version"`

	// Query-time feature state.
	Pipeline features.PipelineParts               `json:"pipeline"`
	Views    map[platform.ID][]features.ViewParts `json:"views"`
	Friends  map[platform.ID][][]graph.Friend     `json:"friends"`
	// FriendsK is the per-account depth the Friends slices were cut at
	// (= the model's resolved TopFriends).
	FriendsK int            `json:"friends_k"`
	Faces    vision.Matcher `json:"faces"`

	// Trained model.
	Model core.ModelParts `json:"model"`

	// Prescreen is the optional certified approximate prescreen built
	// at pack time (see core.BuildPrescreen), so servers never pay the
	// build at cold start. nil — older bundles, non-RBF models, or the
	// legacy v2 encoding, which drops it — means exact-only serving;
	// either way the served bits are identical, only top-k work varies.
	Prescreen *core.PrescreenParts `json:"prescreen,omitempty"`

	// ImputeTable is the optional pack-time Eqn-18 table (see
	// core.BuildImputeTable): the precomputed friend-pair sums of every
	// index-shard candidate with missing dimensions, keyed at the
	// model's resolved TopFriends. nil — older bundles, HYDRA-Z models,
	// the `-impute-table=off` pack flag, or the legacy v2 encoding,
	// which drops it — means live imputation; the served bits are
	// identical either way, only per-candidate work varies.
	ImputeTable *core.ImputeTableParts `json:"impute_table,omitempty"`

	// Serving surface: the indexed platform pairs and the prebuilt
	// candidate indexes (one per pair, in Pairs order, deduplicated).
	// Each index carries the blocking rules it was filtered with, so
	// there is no separate top-level rules field to drift from them.
	Pairs   [][2]platform.ID      `json:"pairs"`
	Indexes []blocking.IndexParts `json:"indexes"`

	// Shard stamps a sub-bundle of a sharded split (see SplitBundle):
	// which slice of the B-side candidate space it owns, under which hash
	// seed, and which pack generation it belongs to. nil means unsharded —
	// the bundle carries the whole candidate space.
	Shard *ShardDesc `json:"shard,omitempty"`

	// Provenance: the training world's identity, carried over from the
	// artifact for operability (a bundle never needs the world again).
	WorldPersons     int    `json:"world_persons"`
	WorldFingerprint string `json:"world_fingerprint"`
}

// Bundle packs the fitted pipeline prefix into a self-contained serving
// bundle: it snapshots every view, friend slice and candidate index the
// artifact's recipes would otherwise rebuild from the world at serving
// startup. workers pins the index-build parallelism (≤ 0 = all cores;
// identical bundle at any setting).
func (f *FitState) Bundle(workers int) (*Bundle, error) {
	art, err := f.Artifact()
	if err != nil {
		return nil, err
	}
	return packBundle(f.Sys, f.DS, art, workers)
}

// BundleFromArtifact converts an existing v1 artifact plus its training
// world into a current-format bundle offline — the cmd/hydra-pack path. The world
// must be the one the artifact was trained on (fingerprint-checked by
// Restore); the resulting bundle then replaces both files.
func BundleFromArtifact(a *Artifact, ds *platform.Dataset, workers int) (*Bundle, error) {
	st, _, err := a.Restore(ds)
	if err != nil {
		return nil, err
	}
	return packBundle(st.Sys, ds, a, workers)
}

// packBundle snapshots the system's query state for the artifact's
// serving surface.
func packBundle(sys *core.System, ds *platform.Dataset, a *Artifact, workers int) (*Bundle, error) {
	b := &Bundle{
		Version:  BundleVersion,
		Pipeline: sys.Pipe.Parts(),
		Views:    make(map[platform.ID][]features.ViewParts),
		Friends:  make(map[platform.ID][][]graph.Friend),
		FriendsK: a.Model.Cfg.ResolvedTopFriends(),
		Faces:    *sys.Faces(),
		Model:    a.Model,
		Pairs:    a.Pairs,

		WorldPersons:     a.WorldPersons,
		WorldFingerprint: a.WorldFingerprint,
	}
	for _, id := range bundlePlatforms(a.Pairs) {
		views, err := sys.Views(id)
		if err != nil {
			return nil, err
		}
		plat, err := ds.Platform(id)
		if err != nil {
			return nil, err
		}
		parts := make([]features.ViewParts, len(views))
		friends := make([][]graph.Friend, len(views))
		for i, v := range views {
			parts[i] = features.SnapshotView(v)
			friends[i] = plat.Graph.TopFriends(i, b.FriendsK)
		}
		b.Views[id] = parts
		b.Friends[id] = friends
	}
	rules := a.Rules
	rules.Workers = workers
	seen := make(map[[2]platform.ID]bool, len(a.Pairs))
	for _, pp := range a.Pairs {
		if seen[pp] {
			continue
		}
		seen[pp] = true
		platA, err := ds.Platform(pp[0])
		if err != nil {
			return nil, err
		}
		platB, err := ds.Platform(pp[1])
		if err != nil {
			return nil, err
		}
		ix, err := blocking.BuildIndex(platA, platB, sys.Faces(), rules)
		if err != nil {
			return nil, err
		}
		b.Indexes = append(b.Indexes, ix.Parts())
	}
	if a.Model.KernelKind == core.KernelRBF {
		qs, exhaustive, err := prescreenQueries(sys, a, b, workers)
		if err != nil {
			return nil, err
		}
		opts := core.PrescreenOpts{Queries: qs}
		if exhaustive {
			// Every pair the bundle can ever be asked was certified, so
			// the measured maximum IS the true maximum — no sampling gap
			// is left for a safety factor to cover.
			opts.Safety = 1
		}
		ps, err := core.BuildPrescreen(a.Model, opts)
		if err != nil {
			return nil, err
		}
		b.Prescreen = ps
	}
	tbl, err := BuildBundleImputeTable(b, workers)
	if err != nil {
		return nil, err
	}
	b.ImputeTable = tbl
	return b, nil
}

// BuildBundleImputeTable computes the pack-time Eqn-18 table over the
// bundle's current index shards — every candidate pair the indexes can
// present, imputed through the bundle's own restored Store so the
// recorded sums are exactly what a serving store would compute live.
// Exposed (rather than private to packBundle) so tooling that rewrites
// a bundle's indexes — the bench harness widens them to the full cross
// product — can rebuild the table to match. Returns nil for HYDRA-Z
// models (zero-filled imputation never reads friends) and models
// without support vectors; bit-identical output at any worker count.
func BuildBundleImputeTable(b *Bundle, workers int) (*core.ImputeTableParts, error) {
	if b.Model.Cfg.Variant != core.HydraM || len(b.Model.Xs) == 0 {
		return nil, nil
	}
	c := *b
	c.ImputeTable = nil // accumulate through the live path, never an older table
	st, err := c.Store()
	if err != nil {
		return nil, err
	}
	dim := len(b.Model.Xs[0])
	inputs := make([]core.ImputeTableInput, 0, len(b.Indexes))
	for _, ix := range b.Indexes {
		in := core.ImputeTableInput{PA: ix.PA, PB: ix.PB}
		for _, row := range ix.ByA {
			for _, cand := range row {
				in.Pairs = append(in.Pairs, [2]int{cand.A, cand.B})
			}
		}
		inputs = append(inputs, in)
	}
	return core.BuildImputeTable(st, b.FriendsK, dim, workers, inputs)
}

// prescreenSamplePairs caps, per serving platform pair, how many pairs
// of the query cross product the prescreen build fits and certifies
// over. Strided over the na×nb grid, so the sample stays deterministic
// and spreads evenly across both account axes. Worlds whose cross
// products fit under the cap are enumerated exhaustively, which makes
// the certified margin exact (Safety = 1); the cap only exists to keep
// pack time bounded on very large worlds.
const prescreenSamplePairs = 16384

// prescreenQueries samples the bundle's serving cross product — every
// (a, b) a query may present, not just the blocked training candidates —
// and imputes each sampled pair exactly as the serving scorer will.
// core.BuildPrescreen fits and certifies the margin over the sample;
// without this, ε is measured only where training candidates live and
// undershoots the real query-space error several times over. The
// second result reports whether every serving pair was enumerated
// exhaustively rather than sampled.
func prescreenQueries(sys *core.System, a *Artifact, b *Bundle, workers int) ([]linalg.Vector, bool, error) {
	m, err := core.ModelFromParts(sys, a.Model)
	if err != nil {
		return nil, false, err
	}
	var qs []linalg.Vector
	exhaustive := true
	seen := make(map[[2]platform.ID]bool, len(a.Pairs))
	for _, pp := range a.Pairs {
		if seen[pp] {
			continue
		}
		seen[pp] = true
		na, nb := len(b.Views[pp[0]]), len(b.Views[pp[1]])
		total := na * nb
		if total == 0 {
			continue
		}
		step := 1
		if total > prescreenSamplePairs {
			step = (total + prescreenSamplePairs - 1) / prescreenSamplePairs
			exhaustive = false
		}
		sample := make([][2]int, 0, (total+step-1)/step)
		for idx := 0; idx < total; idx += step {
			sample = append(sample, [2]int{idx / nb, idx % nb})
		}
		rows, err := m.ImputedPairRows(pp[0], pp[1], sample, workers)
		if err != nil {
			return nil, false, err
		}
		qs = append(qs, rows...)
	}
	return qs, exhaustive, nil
}

// bundlePlatforms lists every platform appearing on either side of the
// serving pairs, sorted and deduplicated.
func bundlePlatforms(pairs [][2]platform.ID) []platform.ID {
	set := make(map[platform.ID]bool, 2*len(pairs))
	for _, pp := range pairs {
		set[pp[0]] = true
		set[pp[1]] = true
	}
	out := make([]platform.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Store restores the bundle's query state into a snapshot-backed
// core.Store — the world-free half of the Source split. It rejects a
// bundle whose friend slices are shallower than the packed model's
// imputation depth (only reachable through a corrupted or hand-edited
// bundle — packBundle cuts the slices at exactly that depth), so the
// mismatch fails at load time instead of on the first HYDRA-M query
// with missing dimensions.
func (b *Bundle) Store() (*core.Store, error) {
	if need := b.Model.Cfg.ResolvedTopFriends(); b.FriendsK < need {
		return nil, fmt.Errorf("pipeline: bundle packs top-%d friends but its model imputes with top-%d — repack the bundle", b.FriendsK, need)
	}
	pipe, err := features.PipelineFromParts(b.Pipeline)
	if err != nil {
		return nil, err
	}
	views := make(map[platform.ID][]*features.AccountView, len(b.Views))
	for id, parts := range b.Views {
		vs := make([]*features.AccountView, len(parts))
		for i := range parts {
			vs[i] = features.RestoreView(parts[i], id, i)
		}
		views[id] = vs
	}
	faces := b.Faces
	st, err := core.NewStore(pipe, views, b.Friends, b.FriendsK, &faces)
	if err != nil {
		return nil, err
	}
	// A sub-bundle of a sharded split carries only its slice of the
	// B side (plus the friend closure); mark everything else absent so a
	// mis-routed query fails loudly instead of scoring a zeroed view.
	if present := b.PresentViews(); present != nil {
		st.Restrict(present)
	}
	if b.ImputeTable != nil {
		tbl, err := core.ImputeTableFromParts(b.ImputeTable)
		if err != nil {
			return nil, err
		}
		st.SetImputeTable(tbl)
	}
	return st, nil
}

// WriteBundle encodes the bundle in the wire format its Version stamps:
// v3 as the binary-section format, v2 as legacy all-JSON (for migration
// tooling and the compatibility tests). Anything else is refused.
func WriteBundle(w io.Writer, b *Bundle) error {
	if err := b.Shard.Validate(); err != nil {
		return err
	}
	switch b.Version {
	case BundleVersion:
		return writeBundleV3(w, b)
	case BundleVersionJSON:
		if b.Prescreen != nil || b.ImputeTable != nil {
			// The legacy JSON format predates the prescreen and the
			// impute table; strip both (on a copy — the caller's bundle
			// is not ours to edit) so v2 bytes stay exactly what v2-era
			// readers were pinned on. A v2-restored engine serves
			// exact-only with live imputation — same bits, more work.
			c := *b
			c.Prescreen = nil
			c.ImputeTable = nil
			b = &c
		}
		return json.NewEncoder(w).Encode(b)
	default:
		return fmt.Errorf("pipeline: refusing to write bundle version %d (current %d, legacy JSON %d)", b.Version, BundleVersion, BundleVersionJSON)
	}
}

// SaveBundle writes the bundle to a file.
func SaveBundle(path string, b *Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBundle(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBundle decodes a bundle in either supported wire format — v3
// binary (sniffed by its magic) or legacy v2 JSON — and rejects version
// mismatches, including a v1 artifact fed to the bundle reader, which
// fails here instead of serving from half-empty state.
func ReadBundle(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(bundleMagic))
	if err == nil && string(head) == bundleMagic {
		return readBundleV3(br)
	}
	var b Bundle
	if err := json.NewDecoder(br).Decode(&b); err != nil {
		return nil, fmt.Errorf("pipeline: decode bundle: %w", err)
	}
	if b.Version != BundleVersionJSON {
		return nil, fmt.Errorf("pipeline: JSON bundle version %d, this build reads JSON version %d (or binary version %d)", b.Version, BundleVersionJSON, BundleVersion)
	}
	if err := b.Shard.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// LoadBundle reads a bundle from a file.
func LoadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}
