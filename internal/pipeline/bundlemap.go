package pipeline

// Out-of-RAM serving: OpenBundleMapped reads a v3 bundle without
// decoding it. The file is memory-mapped (read-only, shared), only the
// JSON header is parsed eagerly, and each length-prefixed binary
// section is exposed as a lazy view: account views, friend slices and
// index rows are located by a cheap skip-scan at open time (offsets
// only — no allocation proportional to payload) and materialized on
// first touch. Vector payloads that land 8-byte aligned on a
// little-endian host are reinterpreted in place (see aliasFloat64s);
// everything else copy-decodes to the identical bits. Cold start is
// therefore O(header + offsets) instead of O(bundle), and resident
// memory tracks the working set, not the file.
//
// Lifetime: anything materialized from the mapping may alias it, so the
// mapping must outlive every reader. Close unmaps; callers (the serve
// engine) must drain in-flight queries first — see serve.Engine.Retire.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
)

// MapOptions tunes OpenBundleMapped.
type MapOptions struct {
	// NoMmap skips the memory map and reads the whole file into heap
	// memory instead. Sections still decode lazily; only the backing
	// storage changes. This is also the silent fallback when the
	// platform cannot mmap.
	NoMmap bool

	// NoZeroCopy forces every vector to copy-decode instead of aliasing
	// the mapping. Bit-identical output either way; this exists for the
	// equivalence tests and as an operational escape hatch.
	NoZeroCopy bool
}

// MappedStats reports what a mapped bundle has materialized so far.
type MappedStats struct {
	Mapped      bool // true when backed by an OS memory map (false = heap fallback)
	Bytes       int  // file size
	AliasedVecs uint64
	CopiedVecs  uint64

	ResidentViews   int
	ResidentFriends int
	ResidentRows    int
	TotalViews      int
	TotalFriends    int
	TotalRows       int
}

// MappedBundle is a v3 bundle opened without decoding: header parsed,
// sections mapped, payloads materialized on first touch. It implements
// core.LazySnapshot, so core.NewLazyStore can serve straight off it.
type MappedBundle struct {
	data    []byte
	unmap   func() error
	mapped  bool
	noAlias bool
	closed  atomic.Bool

	header bundleHeaderV3
	plats  []platform.ID

	modelParts     core.ModelParts
	prescreenParts *core.PrescreenParts
	tableParts     *core.ImputeTableParts

	views   map[platform.ID]*mappedViews
	friends map[platform.ID]*mappedFriends
	indexes []*mappedIndex

	aliased, copied                atomic.Uint64
	resViews, resFriends, resRows  atomic.Int64
	totalViews, totalFriends, rows int
}

// mappedViews is one platform's slice of the view section: the header
// metas, each account's byte offset into the section, and a per-account
// cache filled on first touch.
type mappedViews struct {
	metas []viewMetaV3
	buf   []byte
	off   []int
	cache []atomic.Pointer[features.AccountView]
}

type mappedFriends struct {
	buf   []byte
	off   []int
	cache []atomic.Pointer[[]graph.Friend]
}

type mappedIndex struct {
	mb     *MappedBundle
	meta   indexMetaV3
	buf    []byte
	rowOff []int
	rowLen []int
	cache  []atomic.Pointer[[]blocking.Candidate]
}

// OpenBundleMapped opens a v3 bundle lazily. Only the binary format
// qualifies — a legacy v2 JSON bundle has no sections to map, so it is
// rejected here (read it with LoadBundle instead). The returned bundle
// holds an OS mapping until Close; nothing materialized from it may be
// used afterwards.
func OpenBundleMapped(path string, opts MapOptions) (*MappedBundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	mb := &MappedBundle{noAlias: opts.NoZeroCopy}
	if size := st.Size(); !opts.NoMmap && mmapSupported && size > 0 && size <= math.MaxInt {
		if data, unmap, err := mmapFile(f, int(size)); err == nil {
			mb.data, mb.unmap, mb.mapped = data, unmap, true
		}
	}
	if mb.data == nil {
		data, err := io.ReadAll(f)
		if err != nil {
			return nil, err
		}
		mb.data = data
	}
	if err := mb.open(); err != nil {
		mb.Close()
		return nil, err
	}
	if mb.mapped {
		// The skip-scan just streamed through every page once; give the
		// residency back so cold-start RSS is O(header + offset tables),
		// not O(bundle). Queries fault back exactly what they touch.
		dropResident(mb.data)
	}
	return mb, nil
}

// open parses the header, bounds-checks every section against the file
// size, eagerly decodes the small sections (model, prescreen, impute
// table — their vectors alias the mapping where possible) and skip-scans
// the bulky ones (views, friends, indexes) into per-entry offset tables.
func (mb *MappedBundle) open() error {
	data := mb.data
	if len(data) < len(bundleMagic) || string(data[:len(bundleMagic)]) != bundleMagic {
		n := min(len(data), len(bundleMagic))
		return fmt.Errorf("pipeline: bad bundle magic %q", data[:n])
	}
	off := len(bundleMagic)
	block := func(what string) ([]byte, error) {
		if len(data)-off < 8 {
			return nil, fmt.Errorf("pipeline: read v3 %s length: file truncated at byte %d", what, off)
		}
		n := binary.LittleEndian.Uint64(data[off:])
		off += 8
		const maxSection = 1 << 33
		if n > maxSection {
			return nil, fmt.Errorf("pipeline: v3 %s claims %d bytes — corrupt bundle", what, n)
		}
		if int(n) > len(data)-off {
			return nil, fmt.Errorf("pipeline: v3 %s wants %d bytes, file has %d left — truncated bundle", what, n, len(data)-off)
		}
		p := data[off : off+int(n)]
		off += int(n)
		return p, nil
	}

	headerJSON, err := block("header")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(headerJSON, &mb.header); err != nil {
		return fmt.Errorf("pipeline: decode v3 header: %w", err)
	}
	if mb.header.Version != BundleVersion {
		return fmt.Errorf("pipeline: binary bundle version %d, this build reads version %d", mb.header.Version, BundleVersion)
	}
	if err := mb.header.Shard.Validate(); err != nil {
		return err
	}

	var secs [4][]byte
	for i, what := range []string{"model section", "view section", "friend section", "index section"} {
		if secs[i], err = block(what); err != nil {
			return err
		}
	}
	var prescreenBuf, tableBuf []byte
	if mb.header.Prescreen != nil {
		if prescreenBuf, err = block("prescreen section"); err != nil {
			return err
		}
	}
	if mb.header.ImputeTable != nil {
		if tableBuf, err = block("impute-table section"); err != nil {
			return err
		}
	}
	if off != len(data) {
		return fmt.Errorf("pipeline: v3 bundle has %d trailing bytes — corrupt bundle", len(data)-off)
	}

	if err := mb.decodeModel(secs[0]); err != nil {
		return err
	}
	if err := mb.decodePrescreen(prescreenBuf); err != nil {
		return err
	}
	if err := mb.decodeImputeTable(tableBuf); err != nil {
		return err
	}
	if err := mb.scanViews(secs[1]); err != nil {
		return err
	}
	if err := mb.scanFriends(secs[2]); err != nil {
		return err
	}
	return mb.scanIndexes(secs[3])
}

func (mb *MappedBundle) decodeModel(buf []byte) error {
	r := mb.reader(buf)
	mb.modelParts = core.ModelParts{
		Cfg:         mb.header.Model.Cfg,
		KernelKind:  mb.header.Model.KernelKind,
		KernelSigma: mb.header.Model.KernelSigma,
		Bias:        mb.header.Model.Bias,
		Diag:        mb.header.Model.Diag,
	}
	mb.modelParts.Xs = r.vecs()
	mb.modelParts.Alpha = r.vec()
	return r.finish("model section")
}

func (mb *MappedBundle) decodePrescreen(buf []byte) error {
	hp := mb.header.Prescreen
	if hp == nil {
		return nil
	}
	r := mb.reader(buf)
	mb.prescreenParts = &core.PrescreenParts{
		Features: hp.Features, RFF: hp.RFF, Dim: hp.Dim, Seed: hp.Seed,
		Sigma: hp.Sigma, EpsRaw: hp.EpsRaw, Safety: hp.Safety, Eps: hp.Eps,
		W: r.vec(), B: r.vec(), C: r.vec(), V: r.vec(),
	}
	if err := r.finish("prescreen section"); err != nil {
		return err
	}
	return mb.prescreenParts.Validate()
}

func (mb *MappedBundle) decodeImputeTable(buf []byte) error {
	ht := mb.header.ImputeTable
	if ht == nil {
		return nil
	}
	r := mb.reader(buf)
	t := &core.ImputeTableParts{K: ht.K, Dim: ht.Dim}
	for _, pm := range ht.Pairs {
		pp := core.ImputeTablePairParts{
			PA: pm.PA, PB: pm.PB,
			A: r.i32s(), B: r.i32s(),
			Counts: r.vec(), Sums: r.vec(),
		}
		if r.err == nil && len(pp.A) != pm.Entries {
			return fmt.Errorf("pipeline: v3 impute-table section has %d entries for %s/%s, header lists %d",
				len(pp.A), pm.PA, pm.PB, pm.Entries)
		}
		t.Pairs = append(t.Pairs, pp)
	}
	if err := r.finish("impute-table section"); err != nil {
		return err
	}
	mb.tableParts = t
	return t.Validate()
}

func (mb *MappedBundle) scanViews(buf []byte) error {
	mb.plats = sortedPlatformIDs(mb.header.Views)
	mb.views = make(map[platform.ID]*mappedViews, len(mb.plats))
	r := mb.reader(buf)
	for _, id := range mb.plats {
		metas := mb.header.Views[id]
		nv := int(r.u32())
		if r.err != nil {
			break
		}
		if nv != len(metas) {
			return fmt.Errorf("pipeline: v3 view section has %d accounts for %s, header lists %d", nv, id, len(metas))
		}
		mv := &mappedViews{
			metas: metas,
			buf:   buf,
			off:   make([]int, nv),
			cache: make([]atomic.Pointer[features.AccountView], nv),
		}
		for i := 0; i < nv && r.err == nil; i++ {
			mv.off[i] = r.off
			r.skipSlice(32) // events
			r.skipSlice(8)  // post times
			r.skipVecs()    // topic dists
			r.skipVecs()    // genre dists
			r.skipVecs()    // sentiment dists
			r.skipSlice(8)  // embedding
		}
		mb.views[id] = mv
		mb.totalViews += nv
	}
	return r.finish("view section")
}

func (mb *MappedBundle) scanFriends(buf []byte) error {
	mb.friends = make(map[platform.ID]*mappedFriends, len(mb.plats))
	r := mb.reader(buf)
	for _, id := range mb.plats {
		nf := int(r.u32())
		if r.err != nil {
			break
		}
		if nv := len(mb.views[id].off); nf != nv {
			return fmt.Errorf("pipeline: v3 friend section has %d accounts for %s, view section has %d", nf, id, nv)
		}
		mf := &mappedFriends{
			buf:   buf,
			off:   make([]int, nf),
			cache: make([]atomic.Pointer[[]graph.Friend], nf),
		}
		for i := 0; i < nf && r.err == nil; i++ {
			mf.off[i] = r.off
			r.skipSlice(16)
		}
		mb.friends[id] = mf
		mb.totalFriends += nf
	}
	return r.finish("friend section")
}

func (mb *MappedBundle) scanIndexes(buf []byte) error {
	r := mb.reader(buf)
	for _, meta := range mb.header.Indexes {
		mi := &mappedIndex{mb: mb, meta: meta, buf: buf}
		nrows, ok := r.sliceLen()
		if ok && r.err == nil {
			mi.rowOff = make([]int, nrows)
			mi.rowLen = make([]int, nrows)
			mi.cache = make([]atomic.Pointer[[]blocking.Candidate], nrows)
			for i := 0; i < nrows && r.err == nil; i++ {
				mi.rowOff[i] = r.off
				if m, ok := r.sliceLen(); ok {
					r.take(17 * m)
					mi.rowLen[i] = m
				}
			}
			mb.rows += nrows
		}
		mb.indexes = append(mb.indexes, mi)
	}
	return r.finish("index section")
}

// View materializes (and caches) one account view. Concurrent first
// touches race benignly: decode is deterministic, and the CAS keeps one
// canonical pointer.
func (mb *MappedBundle) View(id platform.ID, local int) (*features.AccountView, error) {
	mv := mb.views[id]
	if mv == nil {
		return nil, fmt.Errorf("pipeline: platform %s not in mapped bundle", id)
	}
	if local < 0 || local >= len(mv.off) {
		return nil, fmt.Errorf("pipeline: account %d out of range (%s mapped bundle has %d)", local, id, len(mv.off))
	}
	if v := mv.cache[local].Load(); v != nil {
		return v, nil
	}
	r := mb.readerAt(mv.buf, mv.off[local])
	meta := &mv.metas[local]
	parts := features.ViewParts{
		Username: meta.Username, Attrs: meta.Attrs, AvatarID: meta.AvatarID, Unique: meta.Unique,
		Events: r.events(), PostTimes: r.times(),
		TopicDists: r.vecs(), GenreDists: r.vecs(), SentDists: r.vecs(),
		Embedding: r.vec(),
	}
	if r.err != nil {
		return nil, fmt.Errorf("pipeline: decode mapped view %s/%d: %w", id, local, r.err)
	}
	v := features.RestoreView(parts, id, local)
	if mv.cache[local].CompareAndSwap(nil, v) {
		mb.resViews.Add(1)
	} else {
		v = mv.cache[local].Load()
	}
	return v, nil
}

// Friends materializes (and caches) one account's top-friends slice.
func (mb *MappedBundle) Friends(id platform.ID, local int) ([]graph.Friend, error) {
	mf := mb.friends[id]
	if mf == nil {
		return nil, fmt.Errorf("pipeline: platform %s not in mapped bundle", id)
	}
	if local < 0 || local >= len(mf.off) {
		return nil, fmt.Errorf("pipeline: account %d out of range (%s mapped bundle has %d)", local, id, len(mf.off))
	}
	if p := mf.cache[local].Load(); p != nil {
		return *p, nil
	}
	r := mb.readerAt(mf.buf, mf.off[local])
	fr := r.friends()
	if r.err != nil {
		return nil, fmt.Errorf("pipeline: decode mapped friends %s/%d: %w", id, local, r.err)
	}
	p := &fr
	if mf.cache[local].CompareAndSwap(nil, p) {
		mb.resFriends.Add(1)
	} else {
		p = mf.cache[local].Load()
	}
	return *p, nil
}

// Username answers from the header metas alone — no section touch.
func (mb *MappedBundle) Username(id platform.ID, local int) (string, bool) {
	mv := mb.views[id]
	if mv == nil || local < 0 || local >= len(mv.metas) {
		return "", false
	}
	return mv.metas[local].Username, true
}

// Platforms lists the bundle's platforms in sorted order. The returned
// slice is shared — callers must not modify it.
func (mb *MappedBundle) Platforms() []platform.ID { return mb.plats }

// NumAccounts returns the platform's account count, or -1 if the
// platform is not in the bundle.
func (mb *MappedBundle) NumAccounts(id platform.ID) int {
	mv := mb.views[id]
	if mv == nil {
		return -1
	}
	return len(mv.off)
}

func (mi *mappedIndex) fetch(a int) []blocking.Candidate {
	if p := mi.cache[a].Load(); p != nil {
		return *p
	}
	r := mi.mb.readerAt(mi.buf, mi.rowOff[a])
	row := r.candidates()
	if r.err != nil {
		// Unreachable: the open-time scan walked this exact row.
		return nil
	}
	p := &row
	if mi.cache[a].CompareAndSwap(nil, p) {
		mi.mb.resRows.Add(1)
	} else {
		p = mi.cache[a].Load()
	}
	return *p
}

// LazyIndexes builds one lazily-materializing blocking.Index per packed
// index. Row caches are shared across calls.
func (mb *MappedBundle) LazyIndexes() ([]*blocking.Index, error) {
	out := make([]*blocking.Index, 0, len(mb.indexes))
	for _, mi := range mb.indexes {
		ix, err := blocking.LazyIndex(mi.meta.PA, mi.meta.PB, mi.meta.Rules, mi.rowLen, mi.fetch)
		if err != nil {
			return nil, err
		}
		out = append(out, ix)
	}
	return out, nil
}

// Store restores the mapped bundle into a lazy core.Store answering the
// identical core.Source contract as Bundle.Store — same checks, same
// error text, same restriction for sharded sub-bundles.
func (mb *MappedBundle) Store() (*core.LazyStore, error) {
	if need := mb.modelParts.Cfg.ResolvedTopFriends(); mb.header.FriendsK < need {
		return nil, fmt.Errorf("pipeline: bundle packs top-%d friends but its model imputes with top-%d — repack the bundle", mb.header.FriendsK, need)
	}
	pipe, err := features.PipelineFromParts(mb.header.Pipeline)
	if err != nil {
		return nil, err
	}
	faces := mb.header.Faces
	st, err := core.NewLazyStore(pipe, mb, mb.header.FriendsK, &faces)
	if err != nil {
		return nil, err
	}
	if present := mb.PresentViews(); present != nil {
		st.Restrict(present)
	}
	if mb.tableParts != nil {
		tbl, err := core.ImputeTableFromParts(mb.tableParts)
		if err != nil {
			return nil, err
		}
		st.SetImputeTable(tbl)
	}
	return st, nil
}

// PresentViews mirrors Bundle.PresentViews for a sharded sub-bundle: the
// owned B-side accounts plus their friend closure. It materializes the
// friend slices of owned accounts (they are about to be hot anyway);
// unsharded bundles return nil without touching any section.
func (mb *MappedBundle) PresentViews() map[platform.ID][]bool {
	d := mb.header.Shard
	if d == nil {
		return nil
	}
	present := make(map[platform.ID][]bool, len(d.BSide))
	for _, id := range d.BSide {
		mf := mb.friends[id]
		if mf == nil {
			continue
		}
		p := make([]bool, len(mf.off))
		for j := range p {
			if d.ShardOf(id, j) != d.Index {
				continue
			}
			p[j] = true
			fr, err := mb.Friends(id, j)
			if err != nil {
				continue
			}
			for _, f := range fr {
				if f.ID >= 0 && f.ID < len(p) {
					p[f.ID] = true
				}
			}
		}
		present[id] = p
	}
	return present
}

// ModelParts returns the model parts (slices may alias the mapping).
func (mb *MappedBundle) ModelParts() core.ModelParts { return mb.modelParts }

// Prescreen returns the packed prescreen parts, nil when absent.
func (mb *MappedBundle) Prescreen() *core.PrescreenParts { return mb.prescreenParts }

// Shard returns the shard descriptor, nil when unsharded.
func (mb *MappedBundle) Shard() *ShardDesc { return mb.header.Shard }

// Pairs returns the bundle's serving platform pairs.
func (mb *MappedBundle) Pairs() [][2]platform.ID { return mb.header.Pairs }

// Stats snapshots what has been materialized so far.
func (mb *MappedBundle) Stats() MappedStats {
	return MappedStats{
		Mapped:          mb.mapped,
		Bytes:           len(mb.data),
		AliasedVecs:     mb.aliased.Load(),
		CopiedVecs:      mb.copied.Load(),
		ResidentViews:   int(mb.resViews.Load()),
		ResidentFriends: int(mb.resFriends.Load()),
		ResidentRows:    int(mb.resRows.Load()),
		TotalViews:      mb.totalViews,
		TotalFriends:    mb.totalFriends,
		TotalRows:       mb.rows,
	}
}

// DropCaches releases every materialized view, friend slice and index
// row; the next touch re-materializes from the mapping. Safe to call
// concurrently with queries — in-flight holders keep their references
// alive, the GC reclaims the rest.
func (mb *MappedBundle) DropCaches() {
	for _, mv := range mb.views {
		for i := range mv.cache {
			if mv.cache[i].Swap(nil) != nil {
				mb.resViews.Add(-1)
			}
		}
	}
	for _, mf := range mb.friends {
		for i := range mf.cache {
			if mf.cache[i].Swap(nil) != nil {
				mb.resFriends.Add(-1)
			}
		}
	}
	for _, mi := range mb.indexes {
		for i := range mi.cache {
			if mi.cache[i].Swap(nil) != nil {
				mb.resRows.Add(-1)
			}
		}
	}
	if mb.mapped {
		dropResident(mb.data)
	}
}

// Mapped reports whether the bundle is backed by an OS memory map.
func (mb *MappedBundle) Mapped() bool { return mb.mapped }

// Close unmaps the file. Everything materialized from the bundle —
// views, vectors, the engine serving off it — must be out of use first;
// the serve tier guarantees that by draining in-flight requests before
// closing. Idempotent.
func (mb *MappedBundle) Close() error {
	if mb.closed.Swap(true) {
		return nil
	}
	if mb.unmap != nil {
		return mb.unmap()
	}
	return nil
}

// mapReader reads one section of the mapping: binSection's primitives
// plus alias-aware vector decoding and skip-scanning. Aliased vectors
// point into the mapping and share its lifetime.
type mapReader struct {
	binSection
	mb *MappedBundle
}

func (mb *MappedBundle) reader(buf []byte) *mapReader {
	return &mapReader{binSection: binSection{buf: buf}, mb: mb}
}

func (mb *MappedBundle) readerAt(buf []byte, off int) *mapReader {
	r := mb.reader(buf)
	r.off = off
	return r
}

// vec decodes one vector, aliasing the payload in place when the host
// byte order, alignment and options allow, copy-decoding otherwise.
// Shadowing binSection.vec is deliberate; vecs below re-dispatches to
// this method.
func (r *mapReader) vec() linalg.Vector {
	n, ok := r.sliceLen()
	if !ok || r.err != nil {
		return nil
	}
	p := r.take(8 * n)
	if r.err != nil {
		return nil
	}
	if !r.mb.noAlias {
		if v, ok := aliasFloat64s(p, n); ok {
			r.mb.aliased.Add(1)
			return v
		}
	}
	r.mb.copied.Add(1)
	v := make(linalg.Vector, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return v
}

func (r *mapReader) vecs() []linalg.Vector {
	n, ok := r.sliceLen()
	if !ok || r.err != nil {
		return nil
	}
	vs := make([]linalg.Vector, n)
	for i := range vs {
		vs[i] = r.vec()
	}
	return vs
}

func (r *mapReader) candidates() []blocking.Candidate {
	m, ok := r.sliceLen()
	if !ok || r.err != nil {
		return nil
	}
	row := make([]blocking.Candidate, m)
	for j := range row {
		row[j] = blocking.Candidate{
			A:          int(r.u32()),
			B:          int(r.u32()),
			Score:      r.f64(),
			PreMatched: r.u8() == 1,
		}
	}
	return row
}

// skipSlice advances past one presence-prefixed slice of fixed-width
// elements, returning its element count.
func (r *mapReader) skipSlice(elemSize int) int {
	n, ok := r.sliceLen()
	if !ok || r.err != nil {
		return 0
	}
	r.take(elemSize * n)
	return n
}

func (r *mapReader) skipVecs() {
	n, ok := r.sliceLen()
	if !ok || r.err != nil {
		return
	}
	for i := 0; i < n; i++ {
		r.skipSlice(8)
	}
}

// finish reports a stuck decode error or trailing bytes, matching the
// eager reader's corruption diagnostics.
func (r *mapReader) finish(what string) error {
	if r.err != nil {
		return fmt.Errorf("pipeline: decode v3 %s: %w", what, r.err)
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("pipeline: v3 %s has %d trailing bytes — corrupt bundle", what, len(r.buf)-r.off)
	}
	return nil
}
