package pipeline

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/platform"
)

// fixtureMultiBundle scales the golden fixture up to a splittable world:
// two A-side (twitter) accounts and six B-side (facebook) accounts, so a
// 3-way split leaves every shard with something to own. Friend edges
// stay in range and the index covers every B account, so the ownership
// partition and the friend-closure retention both get exercised.
func fixtureMultiBundle() *Bundle {
	b := fixtureBundle(BundleVersion)
	tview := b.Views[platform.Twitter][0]
	fview := b.Views[platform.Facebook][0]

	tviews := make([]features.ViewParts, 2)
	for i := range tviews {
		tviews[i] = tview
		tviews[i].Username = fmt.Sprintf("tw_user%d", i)
		tviews[i].AvatarID = uint64(i + 1)
	}
	fviews := make([]features.ViewParts, 6)
	ffriends := make([][]graph.Friend, 6)
	for j := range fviews {
		fviews[j] = fview
		fviews[j].Username = fmt.Sprintf("fb_user%d", j)
		fviews[j].AvatarID = uint64(j + 1)
		// A small cycle plus one chord: friend closures overlap shards.
		ffriends[j] = []graph.Friend{{ID: (j + 1) % 6, Weight: 1.5}}
		if j%2 == 0 {
			ffriends[j] = append(ffriends[j], graph.Friend{ID: (j + 3) % 6, Weight: 0.5})
		}
	}
	b.Views[platform.Twitter] = tviews
	b.Views[platform.Facebook] = fviews
	b.Friends[platform.Twitter] = [][]graph.Friend{{{ID: 1, Weight: 2.5}}, {{ID: 0, Weight: 1.25}}}
	b.Friends[platform.Facebook] = ffriends

	rows := make([][]blocking.Candidate, 2)
	for b6 := 0; b6 < 6; b6++ {
		rows[0] = append(rows[0], blocking.Candidate{A: 0, B: b6, Score: 0.9 - 0.1*float64(b6), PreMatched: b6 == 0})
	}
	for _, b6 := range []int{1, 3, 5} {
		rows[1] = append(rows[1], blocking.Candidate{A: 1, B: b6, Score: 0.8 - 0.1*float64(b6)})
	}
	b.Indexes = []blocking.IndexParts{{
		PA:    platform.Twitter,
		PB:    platform.Facebook,
		Rules: fixtureRules(),
		ByA:   rows,
	}}
	return b
}

const (
	testShardSeed = 7
	testShardGen  = 1
)

func TestSplitBundleOwnershipPartition(t *testing.T) {
	b := fixtureMultiBundle()
	const count = 3
	subs, err := SplitBundle(b, count, testShardSeed, testShardGen)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != count {
		t.Fatalf("got %d shards, want %d", len(subs), count)
	}

	for i, sb := range subs {
		d := sb.Shard
		if d == nil {
			t.Fatalf("shard %d has no descriptor", i)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("shard %d descriptor invalid: %v", i, err)
		}
		if d.Index != i || d.Count != count || d.Generation != testShardGen || d.Seed != testShardSeed {
			t.Fatalf("shard %d descriptor wrong: %+v", i, d)
		}
		if len(d.BSide) != 1 || d.BSide[0] != platform.Facebook {
			t.Fatalf("shard %d restricts %v, want [facebook]", i, d.BSide)
		}
		// A-side state is replicated verbatim.
		if !reflect.DeepEqual(sb.Views[platform.Twitter], b.Views[platform.Twitter]) {
			t.Fatalf("shard %d altered A-side views", i)
		}
		if !reflect.DeepEqual(sb.Friends[platform.Twitter], b.Friends[platform.Twitter]) {
			t.Fatalf("shard %d altered A-side friends", i)
		}
	}

	// Every B account is owned by exactly one shard, and that is the only
	// shard carrying its friend slice.
	for j := 0; j < 6; j++ {
		owners := 0
		for i, sb := range subs {
			owns := sb.Shard.ShardOf(platform.Facebook, j) == i
			hasFriends := sb.Friends[platform.Facebook][j] != nil
			if owns != hasFriends {
				t.Fatalf("shard %d: account %d owned=%v but friends retained=%v", i, j, owns, hasFriends)
			}
			if owns {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("account %d owned by %d shards", j, owners)
		}
	}

	// Views: exactly the owned slice plus its friend closure is non-zero,
	// and PresentViews reports the same set.
	for i, sb := range subs {
		want := make([]bool, 6)
		for j := 0; j < 6; j++ {
			if sb.Shard.ShardOf(platform.Facebook, j) != i {
				continue
			}
			want[j] = true
			for _, f := range b.Friends[platform.Facebook][j] {
				want[f.ID] = true
			}
		}
		got := sb.PresentViews()[platform.Facebook]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d PresentViews = %v, want %v", i, got, want)
		}
		for j := 0; j < 6; j++ {
			packed := sb.Views[platform.Facebook][j].Username != ""
			if packed != want[j] {
				t.Fatalf("shard %d: account %d view packed=%v, want %v", i, j, packed, want[j])
			}
		}
	}

	// Index rows: the per-shard rows are disjoint and their union is the
	// unsplit index, row by row.
	for a := 0; a < 2; a++ {
		var union []blocking.Candidate
		seen := map[int]int{}
		for _, sb := range subs {
			for _, c := range sb.Indexes[0].ByA[a] {
				seen[c.B]++
				union = append(union, c)
			}
		}
		for bID, n := range seen {
			if n != 1 {
				t.Fatalf("a=%d: candidate B=%d appears in %d shards", a, bID, n)
			}
		}
		if len(union) != len(b.Indexes[0].ByA[a]) {
			t.Fatalf("a=%d: union has %d candidates, want %d", a, len(union), len(b.Indexes[0].ByA[a]))
		}
		for _, c := range b.Indexes[0].ByA[a] {
			si := subs[0].Shard.ShardOf(platform.Facebook, c.B)
			found := false
			for _, sc := range subs[si].Indexes[0].ByA[a] {
				if sc == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("a=%d: candidate %+v missing from owning shard %d", a, c, si)
			}
		}
	}
}

func TestSplitBundleRefusals(t *testing.T) {
	b := fixtureMultiBundle()
	if _, err := SplitBundle(b, 0, 0, 1); err == nil {
		t.Error("split into 0 shards did not error")
	}
	if _, err := SplitBundle(b, 2, 0, 0); err == nil {
		t.Error("split with generation 0 did not error")
	}
	subs, err := SplitBundle(b, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitBundle(subs[0], 2, 0, 2); err == nil {
		t.Error("re-splitting an already-sharded bundle did not error")
	}
	both := fixtureMultiBundle()
	both.Pairs = append(both.Pairs, [2]platform.ID{platform.Facebook, platform.Twitter})
	if _, err := SplitBundle(both, 2, 0, 1); err == nil {
		t.Error("splitting with a platform on both sides did not error")
	}
}

// TestShardDescGates pins the read/write-time validation: a corrupted
// shard stamp must fail loudly at both ends of the wire, in both
// formats, instead of silently mis-routing queries.
func TestShardDescGates(t *testing.T) {
	subs, err := SplitBundle(fixtureMultiBundle(), 2, testShardSeed, testShardGen)
	if err != nil {
		t.Fatal(err)
	}

	for _, version := range []int{BundleVersionJSON, BundleVersion} {
		sb := *subs[0]
		sb.Version = version
		bad := *sb.Shard
		bad.Index = 5 // out of [0,2)
		sb.Shard = &bad
		var buf bytes.Buffer
		if err := WriteBundle(&buf, &sb); err == nil {
			t.Errorf("v%d write accepted out-of-range shard index", version)
		}
	}

	// Read gate, JSON path: corrupt the descriptor in the encoded bytes.
	sb := *subs[0]
	sb.Version = BundleVersionJSON
	var buf bytes.Buffer
	if err := WriteBundle(&buf, &sb); err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(buf.String(), `"count":2`, `"count":0`, 1)
	if corrupt == buf.String() {
		t.Fatal("fixture bytes did not contain the shard count to corrupt")
	}
	if _, err := ReadBundle(strings.NewReader(corrupt)); err == nil {
		t.Error("JSON read accepted shard count 0")
	}

	// Read gate, binary path: the v3 header is JSON too — corrupt it the
	// same way (the section lengths that follow are untouched).
	sb3 := *subs[0]
	var buf3 bytes.Buffer
	if err := WriteBundle(&buf3, &sb3); err != nil {
		t.Fatal(err)
	}
	raw := buf3.Bytes()
	idx := bytes.Index(raw, []byte(`"count":2`))
	if idx < 0 {
		t.Fatal("v3 header did not contain the shard count to corrupt")
	}
	mutated := append([]byte(nil), raw...)
	copy(mutated[idx:], []byte(`"count":0`))
	if _, err := ReadBundle(bytes.NewReader(mutated)); err == nil {
		t.Error("v3 read accepted shard count 0")
	}
}

func TestShardedBundleRoundTrip(t *testing.T) {
	subs, err := SplitBundle(fixtureMultiBundle(), 3, testShardSeed, testShardGen)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []int{BundleVersionJSON, BundleVersion} {
		for i, sb := range subs {
			cp := *sb
			cp.Version = version
			var buf bytes.Buffer
			if err := WriteBundle(&buf, &cp); err != nil {
				t.Fatal(err)
			}
			decoded, err := ReadBundle(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(decoded, &cp) {
				t.Fatalf("v%d shard %d did not round-trip", version, i)
			}
			if !decoded.Shard.SameSplit(sb.Shard) {
				t.Fatalf("v%d shard %d descriptor drifted: %+v", version, i, decoded.Shard)
			}
			store, err := decoded.Store()
			if err != nil {
				t.Fatal(err)
			}
			// The restored store must refuse absent accounts and serve
			// present ones: pick one of each.
			var owned, absent = -1, -1
			present := decoded.PresentViews()[platform.Facebook]
			for j, p := range present {
				if p && owned < 0 && decoded.Shard.ShardOf(platform.Facebook, j) == i {
					owned = j
				}
				if !p && absent < 0 {
					absent = j
				}
			}
			if owned >= 0 {
				if _, err := store.Friends(platform.Facebook, owned, 3); err != nil {
					t.Fatalf("v%d shard %d: owned account %d refused: %v", version, i, owned, err)
				}
			}
			if absent >= 0 {
				if _, err := store.Friends(platform.Facebook, absent, 3); err == nil {
					t.Fatalf("v%d shard %d: absent account %d served without error", version, i, absent)
				}
			}
		}
	}
}

// TestShardedBundleGoldenFormat pins the sharded v3 wire format byte for
// byte — descriptor stamp, zeroed absent views, filtered index rows —
// exactly like the unsharded golden pins. Regenerate after an
// intentional format change with:
//
//	go test ./internal/pipeline/ -run Golden -update
func TestShardedBundleGoldenFormat(t *testing.T) {
	subs, err := SplitBundle(fixtureMultiBundle(), 2, testShardSeed, testShardGen)
	if err != nil {
		t.Fatal(err)
	}
	sb := subs[0]
	golden := checkGolden(t, "bundle_v3_shard0.golden.bin", func(buf *bytes.Buffer) error {
		return WriteBundle(buf, sb)
	})
	decoded, err := ReadBundle(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, sb) {
		t.Fatalf("decoded golden sharded bundle differs from fixture")
	}
	if _, err := decoded.Store(); err != nil {
		t.Fatal(err)
	}
}
