package pipeline

import (
	"bytes"
	"testing"

	"hydra/internal/platform"
)

// TestTiledBundleShape checks the load-shape generator: every platform
// scaled to n views with header-bloating fields stripped, friends
// confined to their community block, candidate rows jittered around
// candsPerA with in-range B ids — and the result survives the v3 codec.
func TestTiledBundleShape(t *testing.T) {
	base := fixtureBundle(BundleVersion)
	const n, cands = 600, 8
	tb, err := TiledBundle(base, n, cands, 11)
	if err != nil {
		t.Fatal(err)
	}
	for pid, views := range tb.Views {
		if len(views) != n {
			t.Fatalf("%s: %d views, want %d", pid, len(views), n)
		}
		for i, v := range views {
			if v.Attrs != nil || v.Unique != nil {
				t.Fatalf("%s[%d]: header-bloating fields survived tiling", pid, i)
			}
			if v.Username == "" {
				t.Fatalf("%s[%d]: username lost", pid, i)
			}
		}
		fr := tb.Friends[pid]
		if len(fr) != n {
			t.Fatalf("%s: %d friend slices, want %d", pid, len(fr), n)
		}
		for i, fs := range fr {
			block := (i / 512) * 512
			hi := min(block+512, n)
			for _, f := range fs {
				if f.ID < block || f.ID >= hi || f.ID == i {
					t.Fatalf("%s[%d]: friend %d escapes community [%d,%d)", pid, i, f.ID, block, hi)
				}
			}
		}
	}
	for _, ix := range tb.Indexes {
		if len(ix.ByA) != n {
			t.Fatalf("index %s→%s: %d rows, want %d", ix.PA, ix.PB, len(ix.ByA), n)
		}
		total := 0
		for a, row := range ix.ByA {
			if len(row) < cands/2 || len(row) > cands/2+cands {
				t.Fatalf("row %d: %d candidates, want within [%d,%d]", a, len(row), cands/2, cands/2+cands)
			}
			total += len(row)
			seen := make(map[int]bool, len(row))
			for _, c := range row {
				if c.A != a || c.B < 0 || c.B >= n || seen[c.B] {
					t.Fatalf("row %d: bad candidate %+v", a, c)
				}
				seen[c.B] = true
			}
		}
		if mean := float64(total) / float64(n); mean < float64(cands)*0.8 || mean > float64(cands)*1.2 {
			t.Fatalf("mean fan-out %.1f strays from target %d", mean, cands)
		}
	}

	// Round-trip through the wire format, then open it mapped.
	var buf bytes.Buffer
	if err := WriteBundle(&buf, tb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Views[platform.Twitter]) != n || back.WorldPersons != n {
		t.Fatalf("tiled bundle lost shape over the wire")
	}
}

// TestTiledBundleRefusals pins the guard rails.
func TestTiledBundleRefusals(t *testing.T) {
	base := fixtureBundle(BundleVersion)
	if _, err := TiledBundle(base, 0, 8, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := TiledBundle(base, 10, 0, 1); err == nil {
		t.Fatal("candsPerA=0 accepted")
	}
	sharded := fixtureBundle(BundleVersion)
	sharded.Shard = &ShardDesc{Count: 2, Index: 0, Seed: 1, Generation: 1}
	if _, err := TiledBundle(sharded, 10, 4, 1); err == nil {
		t.Fatal("sharded base accepted")
	}
}
