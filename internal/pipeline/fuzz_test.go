package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds loads the golden bundles (every wire format we ship) plus
// truncations of each — the corners a torn download or a bad disk
// produces. The checked-in corpus under testdata/fuzz/ adds hand-made
// near-miss headers.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	for _, name := range []string{
		"bundle_v3.golden.bin",
		"bundle_v2.golden.json",
		"bundle_v3_shard0.golden.bin",
		"bundle_v3_prescreen.golden.bin",
		"bundle_v3_imputetable.golden.bin",
	} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		if len(data) > 64 {
			f.Add(data[:64])
		}
	}
	f.Add([]byte{})
}

// FuzzReadBundle hammers the streaming reader (v3 binary sniffing, v2
// JSON fallback) with arbitrary bytes: it must reject garbage with an
// error — never panic, never hang — and anything it accepts must
// re-serialize.
func FuzzReadBundle(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the bundle must survive a round trip — a
		// parse that produces an unwritable bundle means the reader
		// validated less than the writer guarantees.
		var buf bytes.Buffer
		if err := WriteBundle(&buf, b); err != nil {
			t.Fatalf("accepted bundle does not re-serialize: %v", err)
		}
	})
}

// FuzzOpenBundleMapped drives the zero-copy mapped reader's header and
// section bounds checks over arbitrary file contents: open must error
// or the mapped bundle must materialize and close cleanly.
func FuzzOpenBundleMapped(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bundle")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mb, err := OpenBundleMapped(path, MapOptions{})
		if err != nil {
			return
		}
		// Materialize through the mapped accessors — the lazy decode
		// paths the skip-scan deferred — then unmap. Decode errors are
		// fine; only panics and out-of-bounds reads count.
		for _, p := range mb.Platforms() {
			n := mb.NumAccounts(p)
			for _, local := range []int{0, n - 1, n} {
				_, _ = mb.View(p, local)
				_, _ = mb.Friends(p, local)
				_, _ = mb.Username(p, local)
			}
		}
		if sd := mb.Shard(); sd != nil {
			_ = sd.Validate()
		}
		_ = mb.Stats()
		mb.Close()
	})
}
