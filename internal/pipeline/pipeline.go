// Package pipeline stages HYDRA's end-to-end flow — Load → Systemize →
// Block → Fit → Evaluate — as explicit steps, each producing a value the
// next stage consumes. The cmd binaries and the experiment harness all run
// these stages instead of hand-rolling the same setup, and any prefix of
// the chain can be snapshotted: a FitState reduces to a versioned Artifact
// (see artifact.go) that a serving process restores without retraining.
//
// Every stage is deterministic at any worker count: the hot paths
// underneath (blocking, feature assembly, kernel matrices, the dual solve,
// evaluation) are the existing Workers-governed parallel kernels, which
// are bit-for-bit identical whether one worker or many ran them.
package pipeline

import (
	"fmt"
	"io"
	"os"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/metrics"
	"hydra/internal/platform"
)

// LoadWorld decodes a dataset previously written by hydra-gen (stage Load
// for the file-based workflow; in-memory worlds skip straight to
// Systemize).
func LoadWorld(r io.Reader) (*platform.Dataset, error) {
	return platform.Decode(r)
}

// LoadWorldFile is LoadWorld over a file path.
func LoadWorldFile(path string) (*platform.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWorld(f)
}

// SystemizeOpts is the recipe for stage Systemize. It is plain data — the
// model artifact persists it verbatim so a serving process can rebuild the
// identical System from the same world file.
type SystemizeOpts struct {
	// LabelPA/LabelPB and LabelPersons define the labeled profile pairs
	// that train attribute importance: the true cross-platform pair of
	// each listed person (plus one shifted mismatch each). Persons must be
	// listed in a deterministic order; see LabeledHalf.
	LabelPA, LabelPB platform.ID
	LabelPersons     []int
	// Lexicons feed the genre/sentiment models and FeatCfg the rest of
	// the feature pipeline.
	Lexicons features.Lexicons
	FeatCfg  features.Config
}

// SystemState is the output of stage Systemize: the dataset plus the
// trained feature pipeline, ready for blocking and scoring.
type SystemState struct {
	DS   *platform.Dataset
	Sys  *core.System
	Opts SystemizeOpts
}

// Systemize builds the feature System over a loaded dataset: attribute
// importance from the recipe's labeled profile pairs, LDA over the corpus,
// lexicon models — the one-time preprocessing every later stage shares.
func Systemize(ds *platform.Dataset, o SystemizeOpts) (*SystemState, error) {
	if ds == nil {
		return nil, fmt.Errorf("pipeline: Systemize needs a dataset")
	}
	if _, err := ds.Platform(o.LabelPA); err != nil {
		return nil, err
	}
	if _, err := ds.Platform(o.LabelPB); err != nil {
		return nil, err
	}
	labeled := core.LabeledProfilePairs(ds, o.LabelPA, o.LabelPB, o.LabelPersons)
	sys, err := core.NewSystem(ds, labeled, o.Lexicons, o.FeatCfg)
	if err != nil {
		return nil, err
	}
	return &SystemState{DS: ds, Sys: sys, Opts: o}, nil
}

// LabeledHalf returns the first half of the dataset's person ids in
// ascending order — the deterministic labeled-half selection shared by the
// cmds. (Iterating the PersonAccounts map and halving without sorting, as
// cmd/hydra-link once did, picks a different labeled set every run.)
func LabeledHalf(ds *platform.Dataset) []int {
	people := make([]int, 0, len(ds.PersonAccounts))
	for person := range ds.PersonAccounts {
		people = append(people, person)
	}
	sort.Ints(people)
	return people[:len(people)/2]
}

// BlockOpts parameterizes stage Block.
type BlockOpts struct {
	// Pairs are the platform pairs to block; the task gets one core.Block
	// per pair, in order.
	Pairs [][2]platform.ID
	// Rules is the candidate filter (Rules.Workers pins the scan's
	// parallelism).
	Rules blocking.Rules
	// Label controls how training labels attach to candidates.
	Label core.LabelOpts
	// SeedStride offsets Label.Seed by i·SeedStride for pair index i, so
	// multi-pair tasks can draw independent label samples per pair (the
	// experiment harness uses 1; the cmds use 0).
	SeedStride int64
}

// BlockState is the output of stage Block: the candidate task, plus
// per-pair blocking statistics for reporting.
type BlockState struct {
	*SystemState
	Opts  BlockOpts
	Task  *core.Task
	Stats []blocking.Stats
}

// Block generates candidate pairs and attaches labels for every platform
// pair, assembling the training task.
func Block(s *SystemState, o BlockOpts) (*BlockState, error) {
	if len(o.Pairs) == 0 {
		return nil, fmt.Errorf("pipeline: Block needs at least one platform pair")
	}
	st := &BlockState{SystemState: s, Opts: o, Task: &core.Task{}}
	for i, pp := range o.Pairs {
		label := o.Label
		label.Seed += int64(i) * o.SeedStride
		block, err := core.BuildBlock(s.Sys, pp[0], pp[1], o.Rules, label)
		if err != nil {
			return nil, err
		}
		st.Task.Blocks = append(st.Task.Blocks, block)
		st.Stats = append(st.Stats, blocking.Evaluate(s.DS, pp[0], pp[1], block.Cands))
	}
	return st, nil
}

// FitState is the output of stage Fit: the trained linker over the task.
type FitState struct {
	*BlockState
	Cfg    core.Config
	Linker *core.HydraLinker
}

// Fit trains HYDRA on the blocked task (Algorithm 1).
func Fit(b *BlockState, cfg core.Config) (*FitState, error) {
	linker := &core.HydraLinker{Cfg: cfg}
	if err := linker.Fit(b.Sys, b.Task); err != nil {
		return nil, err
	}
	return &FitState{BlockState: b, Cfg: cfg, Linker: linker}, nil
}

// EvalState is the output of stage Evaluate.
type EvalState struct {
	*FitState
	Conf metrics.Confusion
}

// Evaluate scores every candidate of the task against ground truth on the
// worker pool (≤ 0 = all cores; identical counts at any setting).
func Evaluate(f *FitState, workers int) (*EvalState, error) {
	conf, err := core.EvaluateLinkerWorkers(f.Sys, f.Linker, f.Task.Blocks, workers)
	if err != nil {
		return nil, err
	}
	return &EvalState{FitState: f, Conf: conf}, nil
}
