package pipeline

import (
	"fmt"
	"io"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// LinkOpts mirrors cmd/hydra-link's flags.
type LinkOpts struct {
	// WorldPath is the hydra-gen world JSON to load.
	WorldPath string
	// PA and PB are the platform pair to link.
	PA, PB string
	// LabelFrac is the labeled fraction of true candidate pairs.
	LabelFrac float64
	// Seed drives labeling and the model.
	Seed int64
	// Workers pins the worker pool (0 = all cores; identical results at
	// any setting).
	Workers int
	// Report prints the feature-group weight report.
	Report bool
	// SaveModel, when non-empty, persists the trained model as an
	// artifact at this path for hydra-serve (needs the world file at
	// serving time).
	SaveModel string
	// SaveBundle, when non-empty, packs the trained model plus all
	// precomputed serving state into a self-contained bundle at this
	// path — hydra-serve -bundle then needs no world file at all.
	SaveBundle string
}

// RunLink is cmd/hydra-link's whole flow on the staged pipeline, printing
// to stdout. It exists as a function so the equivalence tests can run the
// exact command path in-process and compare bytes against the legacy
// hand-rolled flow.
func RunLink(o LinkOpts, stdout io.Writer) error {
	ds, err := LoadWorldFile(o.WorldPath)
	if err != nil {
		return err
	}
	pa, pb := platform.ID(o.PA), platform.ID(o.PB)

	// The feature pipeline needs the genre/sentiment lexicons; they are
	// deterministic vocabulary constructions shared with the generator.
	lx := synth.BuildLexicons(8, 40)
	sysState, err := Systemize(ds, SystemizeOpts{
		LabelPA:      pa,
		LabelPB:      pb,
		LabelPersons: LabeledHalf(ds),
		Lexicons:     features.Lexicons{Genre: lx.Genre, Sentiment: lx.Sentiment},
		FeatCfg:      features.DefaultConfig(o.Seed),
	})
	if err != nil {
		return err
	}

	rules := blocking.DefaultRules()
	rules.Workers = o.Workers
	blocked, err := Block(sysState, BlockOpts{
		Pairs: [][2]platform.ID{{pa, pb}},
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: o.LabelFrac, NegPerPos: 2, UsePreMatched: true, Seed: o.Seed},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "world: %d persons; task: %d candidates, %d labeled\n",
		ds.NumPersons(), blocked.Task.NumCandidates(), blocked.Task.NumLabeled())

	hcfg := core.DefaultConfig(o.Seed)
	hcfg.Workers = o.Workers
	fitted, err := Fit(blocked, hcfg)
	if err != nil {
		return err
	}
	evaled, err := Evaluate(fitted, o.Workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "linkage result: %s\n", evaled.Conf)

	if o.Report {
		gws, err := core.FeatureGroupReport(sysState.Sys, blocked.Task, core.HydraM)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nfeature-group weight report:")
		fmt.Fprint(stdout, core.FormatGroupWeights(gws))
	}

	if o.SaveModel != "" {
		art, err := fitted.Artifact()
		if err != nil {
			return err
		}
		if err := SaveArtifact(o.SaveModel, art); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved model artifact to %s\n", o.SaveModel)
	}
	if o.SaveBundle != "" {
		bundle, err := fitted.Bundle(o.Workers)
		if err != nil {
			return err
		}
		if err := SaveBundle(o.SaveBundle, bundle); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved serving bundle to %s\n", o.SaveBundle)
	}
	return nil
}
