package pipeline

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// writeWorld generates a world and writes it through the platform codec,
// returning the file path — the hydra-gen half of the file workflow.
func writeWorld(t *testing.T, persons int, seed int64) string {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.Encode(f, w.Dataset); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// fitWorld runs Load → Systemize → Block → Fit on a world file with the
// cmd defaults, returning the fitted state.
func fitWorld(t *testing.T, worldPath string, seed int64, workers int) *FitState {
	t.Helper()
	ds, err := LoadWorldFile(worldPath)
	if err != nil {
		t.Fatal(err)
	}
	lx := synth.BuildLexicons(8, 40)
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 1500
	sysState, err := Systemize(ds, SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: LabeledHalf(ds),
		Lexicons:     features.Lexicons{Genre: lx.Genre, Sentiment: lx.Sentiment},
		FeatCfg:      fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rules := blocking.DefaultRules()
	rules.Workers = workers
	blocked, err := Block(sysState, BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: rules,
		Label: core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: true, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	fitted, err := Fit(blocked, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	return fitted
}

// TestArtifactRoundTrip is the persistence contract: encode → file →
// decode → Restore against a freshly loaded world produces bit-identical
// Score and Link for every candidate pair — no retraining, a brand-new
// System, and still the same bits.
func TestArtifactRoundTrip(t *testing.T) {
	const seed = 3
	worldPath := writeWorld(t, 40, seed)
	fitted := fitWorld(t, worldPath, seed, 0)
	trained := fitted.Linker.Model()

	art, err := fitted.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	artPath := filepath.Join(t.TempDir(), "model.json")
	if err := SaveArtifact(artPath, art); err != nil {
		t.Fatal(err)
	}

	// Serving side: fresh artifact, fresh world, fresh system.
	art2, err := LoadArtifact(artPath)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadWorldFile(worldPath)
	if err != nil {
		t.Fatal(err)
	}
	_, restored, err := art2.Restore(ds2)
	if err != nil {
		t.Fatal(err)
	}

	b := fitted.Task.Blocks[0]
	if len(b.Cands) == 0 {
		t.Fatal("no candidates to compare")
	}
	for _, c := range b.Cands {
		s1, err := trained.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := restored.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Fatalf("restored score differs for (%d,%d): %v vs %v", c.A, c.B, s1, s2)
		}
		l1, _ := trained.Link(b.PA, c.A, b.PB, c.B)
		l2, _ := restored.Link(b.PA, c.A, b.PB, c.B)
		if l1 != l2 {
			t.Fatalf("restored link decision differs for (%d,%d)", c.A, c.B)
		}
	}
}

// TestArtifactWorldMismatch asserts Restore refuses a world file other
// than the one the artifact was trained on — the coefficients are only
// meaningful over the original accounts.
func TestArtifactWorldMismatch(t *testing.T) {
	const seed = 3
	worldPath := writeWorld(t, 24, seed)
	fitted := fitWorld(t, worldPath, seed, 1)
	art, err := fitted.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	otherPath := writeWorld(t, 24, seed+1) // same size, different seed
	other, err := LoadWorldFile(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := art.Restore(other); err == nil {
		t.Fatal("expected error restoring against a different world")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("want world-mismatch error, got: %v", err)
	}
	// The original world still restores.
	same, err := LoadWorldFile(worldPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := art.Restore(same); err != nil {
		t.Fatalf("restore against the training world failed: %v", err)
	}
}

// TestArtifactVersionMismatch asserts a reader rejects artifacts written
// at any other version instead of reinterpreting raw coefficients.
func TestArtifactVersionMismatch(t *testing.T) {
	if _, err := ReadArtifact(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected error for future artifact version")
	} else if !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("want version in error, got: %v", err)
	}
	if _, err := ReadArtifact(strings.NewReader(`{"model":{}}`)); err == nil {
		t.Fatal("expected error for missing version")
	}
	if _, err := ReadArtifact(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected error for garbage input")
	}
	// Writers refuse to stamp a stale version too.
	if err := WriteArtifact(io.Discard, &Artifact{Version: 0}); err == nil {
		t.Fatal("expected error writing version-0 artifact")
	}
}
