package pipeline

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hydra/internal/core"
	"hydra/internal/linalg"
	"hydra/internal/platform"
)

// fixtureImputeTable is a tiny hand-written impute table consistent with
// fixtureBundle's 2-dim feature space and FriendsK 3: one entry for the
// single index candidate (0, 0), so every field of the wire layout — id
// arrays, counts, row-major sums — appears in the golden bytes.
func fixtureImputeTable() *core.ImputeTableParts {
	return &core.ImputeTableParts{
		K:   3,
		Dim: 2,
		Pairs: []core.ImputeTablePairParts{{
			PA: platform.Twitter, PB: platform.Facebook,
			A:      []int32{0},
			B:      []int32{0},
			Counts: linalg.Vector{1},
			Sums:   linalg.Vector{0.5, -0.25},
		}},
	}
}

// TestBundleV3ImputeTableGoldenFormat pins the v3 bundle *with* the
// optional trailing impute-table section (alongside the prescreen, so
// the golden exercises the two-optional-sections ordering), and asserts
// the decoded parts reach the restored store and model.
func TestBundleV3ImputeTableGoldenFormat(t *testing.T) {
	b := fixtureBundle(BundleVersion)
	b.Prescreen = fixturePrescreen()
	b.ImputeTable = fixtureImputeTable()
	checkBundleGolden(t, b, "bundle_v3_imputetable.golden.bin")
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	store, err := decoded.Store()
	if err != nil {
		t.Fatal(err)
	}
	tbl := store.ImputeTable()
	if tbl == nil || tbl.NumEntries() != 1 || tbl.K() != 3 {
		t.Fatalf("decoded impute table did not attach to the restored store: %+v", tbl)
	}
	m, err := core.ModelFromParts(store, decoded.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasImputeTable() {
		t.Fatal("restored model did not adopt the store's impute table")
	}
}

// TestBundleV3AbsentImputeTableReads is the absent-section gate: a v3
// bundle without the table decodes with a nil table, restores, and
// serves imputation through the live path.
func TestBundleV3AbsentImputeTableReads(t *testing.T) {
	b := fixtureBundle(BundleVersion)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ImputeTable != nil {
		t.Fatal("table-less bundle decoded a phantom impute table")
	}
	store, err := decoded.Store()
	if err != nil {
		t.Fatal(err)
	}
	if store.ImputeTable() != nil {
		t.Fatal("table-less store carries an impute table")
	}
	// That the table-less store still *serves* exact is asserted over a
	// real trained bundle by TestImputeTableBitIdenticalWorkers (the
	// codec fixture's views are not feature-consistent enough to score).
	if _, err := core.ModelFromParts(store, decoded.Model); err != nil {
		t.Fatal(err)
	}
}

// TestBundleV2DropsImputeTable mirrors the prescreen gate: writing a
// table-carrying bundle as v2 JSON produces exactly the bytes the same
// bundle without one produces, and the caller's bundle is untouched.
func TestBundleV2DropsImputeTable(t *testing.T) {
	with := fixtureBundle(BundleVersionJSON)
	with.ImputeTable = fixtureImputeTable()
	without := fixtureBundle(BundleVersionJSON)
	var bufWith, bufWithout bytes.Buffer
	if err := WriteBundle(&bufWith, with); err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(&bufWithout, without); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufWith.Bytes(), bufWithout.Bytes()) {
		t.Fatal("v2 encoding leaked the impute table into the legacy format")
	}
	if with.ImputeTable == nil {
		t.Fatal("WriteBundle mutated the caller's bundle")
	}
	decoded, err := ReadBundle(&bufWith)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ImputeTable != nil {
		t.Fatal("v2 round trip resurrected an impute table")
	}
}

// TestImputeTableBitIdenticalWorkers is the tentpole's correctness
// property: over a trained, wire-round-tripped bundle, table-backed
// imputation and scoring are bit-identical to the live path for every
// index-shard candidate pair — and for a seeded random sample of
// off-index pairs, which miss the table and exercise the fallback — at
// workers 1 and 4 (run under -race by `make race`).
func TestImputeTableBitIdenticalWorkers(t *testing.T) {
	const seed = 3
	worldPath := writeWorld(t, 24, seed)
	fitted := fitWorld(t, worldPath, seed, 0)
	b, err := fitted.Bundle(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.ImputeTable == nil {
		t.Fatal("packed HYDRA-M bundle carries no impute table")
	}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded.ImputeTable, b.ImputeTable) {
		t.Fatal("impute table changed across the wire round trip")
	}
	noTbl := *decoded
	noTbl.ImputeTable = nil
	stWith, err := decoded.Store()
	if err != nil {
		t.Fatal(err)
	}
	stLive, err := noTbl.Store()
	if err != nil {
		t.Fatal(err)
	}
	mWith, err := core.ModelFromParts(stWith, decoded.Model)
	if err != nil {
		t.Fatal(err)
	}
	mLive, err := core.ModelFromParts(stLive, decoded.Model)
	if err != nil {
		t.Fatal(err)
	}
	k := decoded.Model.Cfg.ResolvedTopFriends()
	for _, ix := range decoded.Indexes {
		var pairs [][2]int
		for _, row := range ix.ByA {
			for _, c := range row {
				pairs = append(pairs, [2]int{c.A, c.B})
			}
		}
		// A seeded random sample of off-index pairs: mostly table misses,
		// so the live fallback runs side by side with the hits above.
		rng := rand.New(rand.NewSource(99))
		na, nb := len(decoded.Views[ix.PA]), len(decoded.Views[ix.PB])
		for i := 0; i < 100; i++ {
			pairs = append(pairs, [2]int{rng.Intn(na), rng.Intn(nb)})
		}
		for _, p := range pairs {
			xw, err := stWith.Impute(ix.PA, p[0], ix.PB, p[1], core.HydraM, k)
			if err != nil {
				t.Fatal(err)
			}
			xl, err := stLive.Impute(ix.PA, p[0], ix.PB, p[1], core.HydraM, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(xw, xl) {
				t.Fatalf("imputed vectors differ for pair %v: table %v vs live %v", p, xw, xl)
			}
		}
		for _, workers := range []int{1, 4} {
			outW := make([]float64, len(pairs))
			outL := make([]float64, len(pairs))
			if err := mWith.ScoreBatchInto(ix.PA, ix.PB, pairs, workers, outW); err != nil {
				t.Fatal(err)
			}
			if err := mLive.ScoreBatchInto(ix.PA, ix.PB, pairs, workers, outL); err != nil {
				t.Fatal(err)
			}
			for i := range outW {
				if math.Float64bits(outW[i]) != math.Float64bits(outL[i]) {
					t.Fatalf("workers=%d pair %v: table score %x differs from live %x",
						workers, pairs[i], math.Float64bits(outW[i]), math.Float64bits(outL[i]))
				}
			}
		}
	}
	hits, _ := stWith.ImputeTable().Stats()
	if hits == 0 {
		t.Fatal("the table was never hit — the property test exercised nothing")
	}
	if h, m := stWith.PairCacheStats(); h+m == 0 {
		t.Fatal("pair cache counters never moved")
	}
}
