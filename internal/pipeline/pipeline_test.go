package pipeline

import (
	"testing"

	"hydra/internal/platform"
	"hydra/internal/synth"
)

// TestLabeledHalfSorted asserts the labeled-half selection is the sorted
// first half of person ids — not whatever order the PersonAccounts map
// iterates in, which differs run to run.
func TestLabeledHalfSorted(t *testing.T) {
	w, err := synth.Generate(synth.DefaultConfig(30, platform.EnglishPlatforms, 9))
	if err != nil {
		t.Fatal(err)
	}
	half := LabeledHalf(w.Dataset)
	if len(half) != w.Dataset.NumPersons()/2 {
		t.Fatalf("half has %d persons, want %d", len(half), w.Dataset.NumPersons()/2)
	}
	for i := 1; i < len(half); i++ {
		if half[i-1] >= half[i] {
			t.Fatalf("half not strictly ascending at %d: %v", i, half)
		}
	}
	// Stable across calls (map iteration order must not leak through).
	again := LabeledHalf(w.Dataset)
	for i := range half {
		if half[i] != again[i] {
			t.Fatalf("selection differs between calls at %d: %d vs %d", i, half[i], again[i])
		}
	}
}

// TestStageValidation asserts the stages reject malformed inputs.
func TestStageValidation(t *testing.T) {
	w, err := synth.Generate(synth.DefaultConfig(20, platform.EnglishPlatforms, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Systemize(nil, SystemizeOpts{}); err == nil {
		t.Fatal("expected error for nil dataset")
	}
	if _, err := Systemize(w.Dataset, SystemizeOpts{LabelPA: "nope", LabelPB: platform.Facebook}); err == nil {
		t.Fatal("expected error for unknown platform")
	}
	worldPath := writeWorld(t, 20, 1)
	fitted := fitWorld(t, worldPath, 1, 1)
	if _, err := Block(fitted.SystemState, BlockOpts{}); err == nil {
		t.Fatal("expected error for empty pair list")
	}
}
