package pipeline

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hydra/internal/attr"
	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/temporal"
	"hydra/internal/topic"
	"hydra/internal/vision"
)

// The golden-file tests pin the three wire formats byte for byte: the v1
// model artifact, the legacy v2 JSON bundle (still readable and
// writable through the migration window) and the current v3
// binary-section bundle. The fixtures are hand-built
// (no training involved), so these tests fail on codec drift — a renamed
// JSON key, a dropped field, a changed version constant — and on nothing
// else. An accidental change here would corrupt every deployed model, so
// the failure mode is CI red, not silent misdecoding. After an
// *intentional* format change, regenerate with:
//
//	go test ./internal/pipeline/ -run Golden -update
//
// and bump the relevant version constant.

var update = flag.Bool("update", false, "rewrite the golden format fixtures")

// fixtureFeatCfg is a fully-populated feature config with non-default
// values, so any dropped field shows up in the bytes.
func fixtureFeatCfg() features.Config {
	return features.Config{
		Topics:                   4,
		LDAIterations:            9,
		MaxLDADocs:               100,
		ScalesDays:               []int{1, 4},
		StyleKs:                  []int{1, 3},
		UniqueWordsPerUser:       3,
		MR:                       temporal.MultiResolutionConfig{WindowsDays: []int{1, 2}, Q: 4, Lambda: 4, MeanPooling: false},
		LocationSigmaKm:          5,
		UseHistogramIntersection: true,
		Epsilon:                  0.001,
		Seed:                     11,
	}
}

func fixtureModelParts() core.ModelParts {
	cfg := core.DefaultConfig(11)
	cfg.KernelSigma = 0.75
	return core.ModelParts{
		Cfg:         cfg,
		KernelKind:  core.KernelRBF,
		KernelSigma: 0.75,
		Xs:          []linalg.Vector{{0.125, 0.25}, {0.5, 0.0625}},
		Alpha:       linalg.Vector{0.5, -0.5},
		Bias:        0.03125,
		Diag:        core.Diagnostics{N: 2, NL: 2, SMOIters: 7, NnzBeta: 2, MDensity: 0.5, FD: 0.1, FS: 0.2, EffGammaM: 30, ReweightDone: 1, LKProducts: 1},
	}
}

func fixtureRules() blocking.Rules {
	return blocking.Rules{TopK: 2, MinScore: 0.75, PreMatchJW: 0.9, PreMatchAttrs: 2, PreMatchFace: 0.85}
}

func fixtureArtifact() *Artifact {
	return &Artifact{
		Version:      ArtifactVersion,
		FeatCfg:      fixtureFeatCfg(),
		Genre:        map[string]string{"gmusick0": "music", "gsportsk1": "sports"},
		Sentiment:    map[string]topic.AVPoint{"shappyw0": {Arousal: 0.5, Valence: 0.75}},
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: []int{0, 1},
		Model:        fixtureModelParts(),
		Pairs:        [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules:        fixtureRules(),

		WorldPersons:     2,
		WorldFingerprint: "00000000deadbeef",
	}
}

func fixtureBundle(version int) *Bundle {
	t0 := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	span := temporal.Range{Start: t0, End: t0.AddDate(1, 0, 0)}
	view := func(name string, avatar uint64) features.ViewParts {
		return features.ViewParts{
			Username:   name,
			Attrs:      map[platform.AttrName]string{platform.AttrGender: "f", platform.AttrCity: "Springfield"},
			AvatarID:   avatar,
			Events:     []temporal.Event{{Time: t0.Add(24 * time.Hour), Lat: 1.5, Lon: -2.25, MediaID: 0}, {Time: t0.Add(48 * time.Hour), MediaID: 42}},
			PostTimes:  []time.Time{t0.Add(36 * time.Hour)},
			TopicDists: []linalg.Vector{{0.25, 0.25, 0.25, 0.25}},
			GenreDists: []linalg.Vector{{0.5, 0.5}},
			SentDists:  []linalg.Vector{{0.125, 0.875}},
			Unique:     []string{"zweird", "zrare"},
			Embedding:  linalg.Vector{0.25, 0.75},
		}
	}
	return &Bundle{
		Version: version,
		Pipeline: features.PipelineParts{
			Cfg:  fixtureFeatCfg(),
			Span: span,
			Importance: &attr.Importance{
				Attrs:  []platform.AttrName{platform.AttrGender, platform.AttrCity},
				Scores: linalg.Vector{0.375, 0.625},
			},
		},
		Views: map[platform.ID][]features.ViewParts{
			platform.Twitter:  {view("alice_tw", 1)},
			platform.Facebook: {view("alice_fb", 1)},
		},
		Friends: map[platform.ID][][]graph.Friend{
			platform.Twitter:  {{{ID: 0, Weight: 2.5}}},
			platform.Facebook: {{}},
		},
		FriendsK: 3,
		Faces:    vision.Matcher{DetectRate: 0.85, NoiseSigma: 0.08, Seed: 11},
		Model:    fixtureModelParts(),
		Pairs:    [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Indexes: []blocking.IndexParts{{
			PA:    platform.Twitter,
			PB:    platform.Facebook,
			Rules: fixtureRules(),
			ByA:   [][]blocking.Candidate{{{A: 0, B: 0, Score: 0.875, PreMatched: true}}},
		}},
		WorldPersons:     2,
		WorldFingerprint: "00000000deadbeef",
	}
}

// checkGolden encodes the fixture with the production writer and diffs
// it against the checked-in golden bytes (rewriting them under -update).
func checkGolden(t *testing.T, name string, encode func(*bytes.Buffer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s drifted from the golden bytes — if the format change is intentional, bump the version constant and rerun with -update", name)
	}
	return want
}

// TestArtifactGoldenFormat pins artifact v1: the writer's bytes and the
// reader's decode of the checked-in fixture.
func TestArtifactGoldenFormat(t *testing.T) {
	art := fixtureArtifact()
	golden := checkGolden(t, "artifact_v1.golden.json", func(buf *bytes.Buffer) error {
		return WriteArtifact(buf, art)
	})
	decoded, err := ReadArtifact(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, art) {
		t.Fatalf("decoded golden artifact differs from fixture:\n%+v\nvs\n%+v", decoded, art)
	}
}

// checkBundleGolden pins one bundle wire format: golden bytes, decode
// round trip, and that the decoded bundle still restores into a working
// snapshot store (the whole point of the format).
func checkBundleGolden(t *testing.T, b *Bundle, goldenName string) {
	t.Helper()
	golden := checkGolden(t, goldenName, func(buf *bytes.Buffer) error {
		return WriteBundle(buf, b)
	})
	decoded, err := ReadBundle(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, b) {
		t.Fatalf("decoded golden bundle differs from fixture:\n%+v\nvs\n%+v", decoded, b)
	}
	store, err := decoded.Store()
	if err != nil {
		t.Fatal(err)
	}
	if store.FriendsK() != 3 {
		t.Fatalf("restored store friendsK = %d", store.FriendsK())
	}
	if _, err := store.Views(platform.Twitter); err != nil {
		t.Fatal(err)
	}
	if _, err := core.ModelFromParts(store, decoded.Model); err != nil {
		t.Fatal(err)
	}
}

// TestBundleGoldenFormat pins the legacy v2 JSON bundle.
func TestBundleGoldenFormat(t *testing.T) {
	checkBundleGolden(t, fixtureBundle(BundleVersionJSON), "bundle_v2.golden.json")
}

// TestBundleV3GoldenFormat pins the v3 binary-section bundle without a
// prescreen — exactly what pre-prescreen writers produced, so this
// golden doubles as the backward-compatibility gate for old bundles.
func TestBundleV3GoldenFormat(t *testing.T) {
	checkBundleGolden(t, fixtureBundle(BundleVersion), "bundle_v3.golden.bin")
}

// fixturePrescreen is a tiny hand-written prescreen consistent with
// fixtureModelParts' 2-dim feature space: 2 Fourier features plus one
// reduced-set center, so every field of the wire layout — both basis
// blocks — appears in the golden bytes.
func fixturePrescreen() *core.PrescreenParts {
	return &core.PrescreenParts{
		Features: 3, RFF: 2, Dim: 2, Seed: 77,
		W:      linalg.Vector{0.5, -0.25, 1.5, 0.75},
		B:      linalg.Vector{0.125, 2.5},
		C:      linalg.Vector{0.375, -1.25},
		Sigma:  0.8,
		V:      linalg.Vector{0.0625, -0.03125, 0.5},
		EpsRaw: 0.25, Safety: 2, Eps: 0.5,
	}
}

// TestBundleV3PrescreenGoldenFormat pins the v3 bundle *with* the
// optional trailing prescreen section, and asserts the decoded parts
// attach to the restored model (the serving path old bundles skip).
func TestBundleV3PrescreenGoldenFormat(t *testing.T) {
	b := fixtureBundle(BundleVersion)
	b.Prescreen = fixturePrescreen()
	checkBundleGolden(t, b, "bundle_v3_prescreen.golden.bin")
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	store, err := decoded.Store()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.ModelFromParts(store, decoded.Model)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrescreen(decoded.Prescreen); err != nil {
		t.Fatal(err)
	}
	if !m.HasPrescreen() || m.PrescreenEps() != 0.5 {
		t.Fatal("decoded prescreen did not attach to the restored model")
	}
}

// TestBundleV2DropsPrescreen is the legacy-format gate: writing a
// prescreen-carrying bundle as v2 JSON produces exactly the bytes the
// same bundle without a prescreen produces — v2-era readers never see
// an unknown field — and the caller's bundle is left untouched.
func TestBundleV2DropsPrescreen(t *testing.T) {
	with := fixtureBundle(BundleVersionJSON)
	with.Prescreen = fixturePrescreen()
	without := fixtureBundle(BundleVersionJSON)
	var bufWith, bufWithout bytes.Buffer
	if err := WriteBundle(&bufWith, with); err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(&bufWithout, without); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufWith.Bytes(), bufWithout.Bytes()) {
		t.Fatal("v2 encoding leaked the prescreen into the legacy format")
	}
	if with.Prescreen == nil {
		t.Fatal("WriteBundle mutated the caller's bundle")
	}
	decoded, err := ReadBundle(&bufWith)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Prescreen != nil {
		t.Fatal("v2 round trip resurrected a prescreen")
	}
}
