package pipeline

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/topic"
)

// ArtifactVersion is the current artifact wire version. Readers reject any
// other value outright: the artifact carries raw dual coefficients, and a
// silent cross-version reinterpretation would serve wrong scores.
const ArtifactVersion = 1

// Artifact is a persisted trained model: everything a serving process
// needs to answer score/link/top-k queries against a world file without
// retraining. It splits into three parts —
//
//   - the system recipe (feature config, lexicons, labeled-pair recipe)
//     that rebuilds the identical feature pipeline over the world,
//   - the model parts (kernel kind + learned bandwidth, candidate feature
//     vectors, dual coefficients, bias, diagnostics), carried verbatim so
//     restored scores are bit-exact,
//   - the serving recipe (platform pairs + blocking rules) that rebuilds
//     the per-A-side candidate indexes top-k queries run against.
//
// All floats survive the JSON round trip exactly: Go encodes float64 with
// the shortest decimal that uniquely identifies the bits.
type Artifact struct {
	Version int `json:"version"`

	// System recipe.
	FeatCfg      features.Config          `json:"feat_cfg"`
	Genre        map[string]string        `json:"genre_lexicon"`
	Sentiment    map[string]topic.AVPoint `json:"sentiment_lexicon"`
	LabelPA      platform.ID              `json:"label_pa"`
	LabelPB      platform.ID              `json:"label_pb"`
	LabelPersons []int                    `json:"label_persons"`

	// Trained model.
	Model core.ModelParts `json:"model"`

	// Serving recipe.
	Pairs [][2]platform.ID `json:"pairs"`
	Rules blocking.Rules   `json:"rules"`

	// WorldPersons and WorldFingerprint identify the training world, so
	// Restore can reject a different world file instead of silently
	// serving wrong scores (model coefficients are only meaningful over
	// the accounts they were trained on).
	WorldPersons     int    `json:"world_persons"`
	WorldFingerprint string `json:"world_fingerprint"`
}

// worldFingerprint is a cheap content fingerprint of a dataset: platform
// ids, account counts, and every account's (person, username) pair, in
// deterministic order. It is O(accounts) to compute and catches the
// realistic mismatches — regenerated, reseeded or resized worlds — while
// staying independent of JSON formatting.
func worldFingerprint(ds *platform.Dataset) string {
	h := fnv.New64a()
	ids := make([]platform.ID, 0, len(ds.Platforms))
	for id := range ds.Platforms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := ds.Platforms[id]
		fmt.Fprintf(h, "%s:%d;", id, len(p.Accounts))
		for _, acc := range p.Accounts {
			fmt.Fprintf(h, "%d,%s|", acc.Person, acc.Profile.Username)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Artifact snapshots the fitted pipeline prefix: the system recipe from
// the Systemize stage, the model parts from Fit, and the pair/rule recipe
// from Block.
func (f *FitState) Artifact() (*Artifact, error) {
	parts, err := f.Linker.Model().Parts()
	if err != nil {
		return nil, err
	}
	o := f.SystemState.Opts
	return &Artifact{
		Version:      ArtifactVersion,
		FeatCfg:      o.FeatCfg,
		Genre:        o.Lexicons.Genre,
		Sentiment:    o.Lexicons.Sentiment,
		LabelPA:      o.LabelPA,
		LabelPB:      o.LabelPB,
		LabelPersons: o.LabelPersons,
		Model:        parts,
		Pairs:        f.BlockState.Opts.Pairs,
		Rules:        f.BlockState.Opts.Rules,

		WorldPersons:     f.DS.NumPersons(),
		WorldFingerprint: worldFingerprint(f.DS),
	}, nil
}

// WriteArtifact encodes the artifact as JSON.
func WriteArtifact(w io.Writer, a *Artifact) error {
	if a.Version != ArtifactVersion {
		return fmt.Errorf("pipeline: refusing to write artifact version %d (current %d)", a.Version, ArtifactVersion)
	}
	return json.NewEncoder(w).Encode(a)
}

// SaveArtifact writes the artifact to a file.
func SaveArtifact(path string, a *Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteArtifact(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadArtifact decodes an artifact and rejects version mismatches.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("pipeline: decode artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("pipeline: artifact version %d, this build reads version %d", a.Version, ArtifactVersion)
	}
	return &a, nil
}

// LoadArtifact reads an artifact from a file.
func LoadArtifact(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadArtifact(f)
}

// SystemizeOpts returns the artifact's system recipe.
func (a *Artifact) SystemizeOpts() SystemizeOpts {
	return SystemizeOpts{
		LabelPA:      a.LabelPA,
		LabelPB:      a.LabelPB,
		LabelPersons: a.LabelPersons,
		Lexicons:     features.Lexicons{Genre: a.Genre, Sentiment: a.Sentiment},
		FeatCfg:      a.FeatCfg,
	}
}

// Restore rebuilds the feature system and the trained model over a world
// dataset — the serving-side resume of the Load → Systemize → Fit prefix.
// With the same world file the artifact was trained from, the restored
// model's Score/Link are bit-identical to the in-memory original. A world
// that doesn't match the artifact's fingerprint is rejected: the model's
// coefficients are meaningless over other accounts, and without the check
// a regenerated world would silently serve wrong scores.
func (a *Artifact) Restore(ds *platform.Dataset) (*SystemState, *core.Model, error) {
	if a.WorldFingerprint != "" {
		if got := worldFingerprint(ds); got != a.WorldFingerprint {
			return nil, nil, fmt.Errorf("pipeline: world does not match the artifact's training world (fingerprint %s, artifact %s, %d vs %d persons) — pass the world file the model was trained on",
				got, a.WorldFingerprint, ds.NumPersons(), a.WorldPersons)
		}
	}
	st, err := Systemize(ds, a.SystemizeOpts())
	if err != nil {
		return nil, nil, err
	}
	m, err := core.ModelFromParts(st.Sys, a.Model)
	if err != nil {
		return nil, nil, err
	}
	return st, m, nil
}
