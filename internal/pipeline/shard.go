package pipeline

// Sharded bundles: the pack-time half of HYDRA's scatter-gather serving
// tier. SplitBundle cuts one serving bundle into N self-contained
// sub-bundles by consistent hashing of the B-side account id — the same
// candidate-space partition the per-A-side blocking.Index already
// encodes, promoted to the deployment unit. Each sub-bundle keeps:
//
//   - the model, configs, face matcher and A-side platform state
//     verbatim (replicated — every shard scores with the same model),
//   - the B-side views restricted to the shard's slice plus the friend
//     closure of that slice (HYDRA-M imputation of an owned pair reads
//     the views of the pair's top friends, so those must travel with the
//     owner even when the hash assigns them elsewhere),
//   - the B-side friend slices of owned accounts only,
//   - the index shards with every candidate row filtered to owned
//     B-side accounts — the disjoint union across sub-bundles is exactly
//     the unsplit index, so a router that merges per-shard top-k heaps
//     with the engine's (score desc, B asc) tie-break reproduces the
//     single-process answer bit for bit.
//
// Every sub-bundle is stamped with a ShardDesc (generation, shard
// index/count, hash seed, restricted platforms) so a router can verify a
// set of serves is coherent before fanning queries out, and a serve can
// refuse queries for accounts it does not own.

import (
	"fmt"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/graph"
	"hydra/internal/platform"
)

// ShardDesc identifies one sub-bundle of a sharded split: which slice of
// the B-side candidate space it owns and which pack generation it came
// from. The descriptor is self-certifying — ownership is a pure function
// of (Seed, platform, account id, Count), so a router needs no side
// table to route a query or to verify that N serves form one coherent
// generation.
type ShardDesc struct {
	// Generation is the pack generation, strictly increasing across
	// repacks of one deployment. A hot swap installs a new generation;
	// mixed generations inside one scatter-gather response are a bug the
	// router guards against. Zero is reserved for "unsharded".
	Generation uint64 `json:"generation"`
	// Index and Count place this sub-bundle in the split: 0 ≤ Index < Count.
	Index int `json:"index"`
	Count int `json:"count"`
	// Seed keys the consistent hash. All sub-bundles of one split share
	// it; a router refuses to mix serves with different seeds.
	Seed uint64 `json:"seed"`
	// BSide lists the platforms whose accounts are partitioned (sorted,
	// deduplicated) — the B side of every serving pair. Platforms not
	// listed are replicated in full on every shard.
	BSide []platform.ID `json:"b_side"`
}

// Validate rejects descriptors that cannot describe a real split. It
// runs at bundle read AND write time, so a corrupted or hand-edited
// shard stamp fails loudly instead of silently mis-routing queries.
func (d *ShardDesc) Validate() error {
	if d == nil {
		return nil
	}
	if d.Count < 1 {
		return fmt.Errorf("pipeline: shard descriptor count %d < 1", d.Count)
	}
	if d.Index < 0 || d.Index >= d.Count {
		return fmt.Errorf("pipeline: shard index %d out of range [0,%d)", d.Index, d.Count)
	}
	if d.Generation == 0 {
		return fmt.Errorf("pipeline: sharded bundle needs a nonzero generation")
	}
	if len(d.BSide) == 0 {
		return fmt.Errorf("pipeline: shard descriptor restricts no platforms")
	}
	for i := 1; i < len(d.BSide); i++ {
		if d.BSide[i] <= d.BSide[i-1] {
			return fmt.Errorf("pipeline: shard descriptor B-side platforms not sorted/unique: %v", d.BSide)
		}
	}
	return nil
}

// Restricted reports whether the platform's accounts are partitioned
// across shards (as opposed to replicated on every shard).
func (d *ShardDesc) Restricted(id platform.ID) bool {
	for _, p := range d.BSide {
		if p == id {
			return true
		}
	}
	return false
}

// ShardOf returns the shard index owning account b of a restricted
// platform, and -1 for unrestricted platforms (every shard serves them).
func (d *ShardDesc) ShardOf(id platform.ID, b int) int {
	if !d.Restricted(id) {
		return -1
	}
	return int(shardHash(d.Seed, id, b) % uint64(d.Count))
}

// Owns reports whether this shard answers queries for account b of the
// platform — true for every account of an unrestricted platform.
func (d *ShardDesc) Owns(id platform.ID, b int) bool {
	s := d.ShardOf(id, b)
	return s == -1 || s == d.Index
}

// SameSplit reports whether two descriptors come from the same split of
// the same generation — everything but the shard index agrees. A router
// requires this across the serves it fans out to; a hot swap requires it
// minus the generation (SameTopology).
func (d *ShardDesc) SameSplit(o *ShardDesc) bool {
	return d.SameTopology(o) && (d == nil || d.Generation == o.Generation)
}

// SameTopology reports whether two descriptors describe the same
// partition shape: count, seed and restricted platforms (generation and
// shard index free). A serve only hot-swaps between same-topology
// bundles with the same index — changing the split means restarting the
// tier, not swapping one box.
func (d *ShardDesc) SameTopology(o *ShardDesc) bool {
	if d == nil || o == nil {
		return d == nil && o == nil
	}
	if d.Count != o.Count || d.Seed != o.Seed || len(d.BSide) != len(o.BSide) {
		return false
	}
	for i := range d.BSide {
		if d.BSide[i] != o.BSide[i] {
			return false
		}
	}
	return true
}

// shardHash is the consistent hash behind the B-side partition: FNV-1a
// over the platform id and the fixed-width little-endian account id,
// with the split's seed folded into the offset basis. It is a pure
// function of its arguments — pack time, serve time and route time all
// compute the same owner with no shared state.
func shardHash(seed uint64, id platform.ID, b int) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset) ^ seed
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime
	}
	x := uint64(int64(b))
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// SplitBundle cuts an unsharded bundle into count self-contained
// sub-bundles (see the package comment for what each keeps). generation
// stamps the split (nonzero, strictly increasing across repacks of one
// deployment); seed keys the consistent hash and must stay fixed across
// generations of one deployment, or a swap would silently re-home
// accounts between shards.
//
// Splitting refuses a platform that appears on both sides of the serving
// pairs: its accounts would need to be simultaneously replicated (as an
// A side) and partitioned (as a B side). count=1 is a valid split — one
// shard owning everything, stamped and routable like any other, which is
// how a single-box deployment gets generations and hot swap.
func SplitBundle(b *Bundle, count int, seed, generation uint64) ([]*Bundle, error) {
	if b.Shard != nil {
		return nil, fmt.Errorf("pipeline: bundle is already shard %d of %d — split the unsharded bundle", b.Shard.Index, b.Shard.Count)
	}
	if count < 1 {
		return nil, fmt.Errorf("pipeline: cannot split a bundle into %d shards", count)
	}
	if generation == 0 {
		return nil, fmt.Errorf("pipeline: a sharded bundle needs a nonzero generation")
	}
	if len(b.Pairs) == 0 {
		return nil, fmt.Errorf("pipeline: bundle has no serving pairs to shard")
	}
	aSide := make(map[platform.ID]bool, len(b.Pairs))
	bSet := make(map[platform.ID]bool, len(b.Pairs))
	for _, pp := range b.Pairs {
		aSide[pp[0]] = true
		bSet[pp[1]] = true
	}
	bSide := make([]platform.ID, 0, len(bSet))
	for id := range bSet {
		if aSide[id] {
			return nil, fmt.Errorf("pipeline: platform %s appears on both sides of the serving pairs — its accounts cannot be both replicated and partitioned", id)
		}
		bSide = append(bSide, id)
	}
	sort.Slice(bSide, func(i, j int) bool { return bSide[i] < bSide[j] })

	out := make([]*Bundle, count)
	for i := range out {
		desc := &ShardDesc{Generation: generation, Index: i, Count: count, Seed: seed, BSide: bSide}
		sb := *b // shallow copy: model, pipeline, faces, pairs shared
		sb.Shard = desc
		sb.Views = make(map[platform.ID][]features.ViewParts, len(b.Views))
		sb.Friends = make(map[platform.ID][][]graph.Friend, len(b.Friends))
		for id, views := range b.Views {
			if !desc.Restricted(id) {
				// A-side (replicated): share the slices verbatim.
				sb.Views[id] = views
				sb.Friends[id] = b.Friends[id]
				continue
			}
			kept := shardKeeps(desc, id, b.Friends[id])
			vs := make([]features.ViewParts, len(views))
			fr := make([][]graph.Friend, len(views))
			for j := range views {
				if kept[j] {
					vs[j] = views[j]
				}
				if desc.ShardOf(id, j) == i {
					fr[j] = b.Friends[id][j]
				}
			}
			sb.Views[id] = vs
			sb.Friends[id] = fr
		}
		sb.Indexes = make([]blocking.IndexParts, 0, len(b.Indexes))
		for _, ix := range b.Indexes {
			sb.Indexes = append(sb.Indexes, ix.RestrictB(func(bb int) bool {
				return desc.Owns(ix.PB, bb)
			}))
		}
		if b.ImputeTable != nil {
			// The table is keyed by candidate pair, so it shards exactly
			// as the index rows do: keep an entry iff this shard owns its
			// B-side account. The sums themselves stay valid verbatim —
			// they depend only on the pair and the friend closure, which
			// travels with the owner.
			sb.ImputeTable = core.RestrictImputeTable(b.ImputeTable, desc.Owns)
		}
		out[i] = &sb
	}
	return out, nil
}

// shardKeeps marks the accounts of a restricted platform whose views a
// sub-bundle must carry: the accounts the shard owns plus every friend
// of an owned account (the Eqn-18 friend closure imputation reads).
// Friend ids outside the view range — impossible in a well-formed
// bundle — are ignored here and caught by the presence check at query
// time.
func shardKeeps(desc *ShardDesc, id platform.ID, friends [][]graph.Friend) []bool {
	kept := make([]bool, len(friends))
	for j := range friends {
		if desc.ShardOf(id, j) != desc.Index {
			continue
		}
		kept[j] = true
		for _, f := range friends[j] {
			if f.ID >= 0 && f.ID < len(kept) {
				kept[f.ID] = true
			}
		}
	}
	return kept
}

// PresentViews reports, for each restricted platform, which accounts'
// views this sub-bundle actually carries — the owned slice plus its
// friend closure, recomputed from the shard descriptor and the retained
// friend slices (the same closure SplitBundle packed, so no separate
// presence table travels on the wire). Unsharded bundles return nil:
// everything is present.
func (b *Bundle) PresentViews() map[platform.ID][]bool {
	if b.Shard == nil {
		return nil
	}
	present := make(map[platform.ID][]bool, len(b.Shard.BSide))
	for _, id := range b.Shard.BSide {
		views, ok := b.Views[id]
		if !ok {
			continue
		}
		p := make([]bool, len(views))
		for j := range views {
			if b.Shard.ShardOf(id, j) != b.Shard.Index {
				continue
			}
			p[j] = true
			for _, f := range b.Friends[id][j] {
				if f.ID >= 0 && f.ID < len(p) {
					p[f.ID] = true
				}
			}
		}
		present[id] = p
	}
	return present
}
