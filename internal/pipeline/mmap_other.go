//go:build !(linux || darwin)

package pipeline

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("pipeline: mmap is not supported on this platform")
}

func dropResident([]byte) {}
