package pipeline

import (
	"unsafe"

	"hydra/internal/linalg"
)

// hostLittleEndian reports whether this host's float64 byte order matches
// the v3 wire format (little-endian), i.e. whether a raw section payload
// can be reinterpreted in place instead of copy-decoded.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aliasFloat64s reinterprets an 8n-byte little-endian float64 payload as
// a vector without copying. It refuses (ok=false) on big-endian hosts and
// on payloads that are not 8-byte aligned: unsafe.Slice requires natural
// alignment (checkptr faults on violations under -race), and the v3
// format aligns sections to no particular boundary — presence bytes and
// u32 counts shift payloads arbitrarily mod 8 — so only payloads that
// happen to land on a multiple of 8 qualify. Callers fall back to
// copy-decoding, which produces the identical bits.
func aliasFloat64s(p []byte, n int) (linalg.Vector, bool) {
	if n == 0 || !hostLittleEndian {
		return nil, false
	}
	if uintptr(unsafe.Pointer(&p[0]))%8 != 0 {
		return nil, false
	}
	return linalg.Vector(unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), n)), true
}
