//go:build linux || darwin

package pipeline

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can memory-map bundle files.
// On unsupported platforms OpenBundleMapped silently falls back to
// reading the file into heap memory (still lazily decoded).
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The returned closer unmaps;
// the mapping (and anything aliasing into it) must not be touched after
// it runs.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// dropResident tells the kernel this process no longer needs data's
// pages resident. For a clean read-only MAP_SHARED file mapping the
// pages re-fault from the page cache (or disk) on the next touch with
// identical contents, so this only trims RSS accounting — it can never
// change what a reader sees. Called after the open-time skip-scan,
// whose one sequential pass would otherwise leave the whole bundle
// counted against the process.
func dropResident(data []byte) {
	if len(data) > 0 {
		syscall.Madvise(data, syscall.MADV_DONTNEED)
	}
}
