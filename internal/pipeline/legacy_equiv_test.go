package pipeline

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// legacyLink is the pre-refactor cmd/hydra-link flow, verbatim (hand-rolled
// System/Block/Fit/Evaluate calls, no pipeline package), with the one
// deliberate divergence this PR also ships: the labeled half is sorted
// person ids, not map-iteration order. It is the byte-level reference the
// staged RunLink must match at any worker count.
func legacyLink(worldPath, paName, pbName string, labelFrac float64, seed int64, workers int, report bool, stdout io.Writer) error {
	ds, err := LoadWorldFile(worldPath)
	if err != nil {
		return err
	}
	pa, pb := platform.ID(paName), platform.ID(pbName)
	if _, err := ds.Platform(pa); err != nil {
		return err
	}
	if _, err := ds.Platform(pb); err != nil {
		return err
	}

	lx := synth.BuildLexicons(8, 40)
	var people []int
	for person := range ds.PersonAccounts {
		people = append(people, person)
	}
	sort.Ints(people)
	half := people[:len(people)/2]
	labeled := core.LabeledProfilePairs(ds, pa, pb, half)
	sys, err := core.NewSystem(ds, labeled, features.Lexicons{
		Genre: lx.Genre, Sentiment: lx.Sentiment,
	}, features.DefaultConfig(seed))
	if err != nil {
		return err
	}

	opts := core.LabelOpts{LabelFraction: labelFrac, NegPerPos: 2, UsePreMatched: true, Seed: seed}
	rules := blocking.DefaultRules()
	rules.Workers = workers
	block, err := core.BuildBlock(sys, pa, pb, rules, opts)
	if err != nil {
		return err
	}
	task := &core.Task{Blocks: []*core.Block{block}}
	fmt.Fprintf(stdout, "world: %d persons; task: %d candidates, %d labeled\n",
		ds.NumPersons(), task.NumCandidates(), task.NumLabeled())

	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	linker := &core.HydraLinker{Cfg: hcfg}
	if err := linker.Fit(sys, task); err != nil {
		return err
	}
	conf, err := core.EvaluateLinkerWorkers(sys, linker, task.Blocks, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "linkage result: %s\n", conf)

	if report {
		gws, err := core.FeatureGroupReport(sys, task, core.HydraM)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nfeature-group weight report:")
		fmt.Fprint(stdout, core.FormatGroupWeights(gws))
	}
	return nil
}

// TestRunLinkMatchesLegacyWorkers asserts the rebased cmd/hydra-link
// produces byte-identical stdout to the pre-refactor hand-rolled flow, at
// workers=1 and workers=4 — the staged pipeline changed the architecture,
// not one output byte.
func TestRunLinkMatchesLegacyWorkers(t *testing.T) {
	const seed = 5
	worldPath := writeWorld(t, 36, seed)

	var ref bytes.Buffer
	if err := legacyLink(worldPath, "twitter", "facebook", 0.3, seed, 1, true, &ref); err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 {
		t.Fatal("legacy flow produced no output")
	}
	for _, workers := range []int{1, 4} {
		var legacy, staged bytes.Buffer
		if err := legacyLink(worldPath, "twitter", "facebook", 0.3, seed, workers, true, &legacy); err != nil {
			t.Fatal(err)
		}
		if err := RunLink(LinkOpts{
			WorldPath: worldPath,
			PA:        "twitter",
			PB:        "facebook",
			LabelFrac: 0.3,
			Seed:      seed,
			Workers:   workers,
			Report:    true,
		}, &staged); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacy.Bytes(), staged.Bytes()) {
			t.Fatalf("workers=%d: staged output differs from legacy.\nlegacy:\n%s\nstaged:\n%s",
				workers, legacy.String(), staged.String())
		}
		if !bytes.Equal(ref.Bytes(), staged.Bytes()) {
			t.Fatalf("workers=%d: output differs from workers=1 reference.\nref:\n%s\ngot:\n%s",
				workers, ref.String(), staged.String())
		}
	}
}
