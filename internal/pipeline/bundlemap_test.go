package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unsafe"

	"hydra/internal/platform"
)

// fullFixtureBundle is the golden fixture plus both optional sections,
// so mapped-open exercises every section kind.
func fullFixtureBundle() *Bundle {
	b := fixtureBundle(BundleVersion)
	b.Prescreen = fixturePrescreen()
	b.ImputeTable = fixtureImputeTable()
	return b
}

func writeBundleFile(t *testing.T, b *Bundle) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// TestOpenBundleMappedMatchesDecode diffs every accessor of the mapped
// bundle against the heap decoder, under all three backing modes: the
// real mapping with zero-copy aliasing, the mapping with aliasing
// disabled, and the no-mmap heap fallback. All must produce identical
// values.
func TestOpenBundleMappedMatchesDecode(t *testing.T) {
	b := fullFixtureBundle()
	path, raw := writeBundleFile(t, b)
	want, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	wantStore, err := want.Store()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opts MapOptions
	}{
		{"mapped", MapOptions{}},
		{"mapped-nozerocopy", MapOptions{NoZeroCopy: true}},
		{"heap-fallback", MapOptions{NoMmap: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mb, err := OpenBundleMapped(path, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer mb.Close()
			if wantMapped := !tc.opts.NoMmap && mmapSupported; mb.Mapped() != wantMapped {
				t.Fatalf("Mapped() = %v, want %v", mb.Mapped(), wantMapped)
			}
			if got := mb.NumAccounts("orkut"); got != -1 {
				t.Fatalf("NumAccounts(absent) = %d, want -1", got)
			}
			if !reflect.DeepEqual(mb.ModelParts(), want.Model) {
				t.Fatal("ModelParts differs from the decoded bundle")
			}
			if !reflect.DeepEqual(mb.Prescreen(), want.Prescreen) {
				t.Fatal("Prescreen differs from the decoded bundle")
			}
			if !reflect.DeepEqual(mb.Pairs(), want.Pairs) {
				t.Fatal("Pairs differs from the decoded bundle")
			}
			for _, id := range mb.Platforms() {
				views, err := wantStore.Views(id)
				if err != nil {
					t.Fatal(err)
				}
				if got := mb.NumAccounts(id); got != len(views) {
					t.Fatalf("%s: NumAccounts = %d, want %d", id, got, len(views))
				}
				for local := range views {
					got, err := mb.View(id, local)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, views[local]) {
						t.Fatalf("%s[%d]: mapped view differs:\n%+v\nvs\n%+v", id, local, got, views[local])
					}
					fr, err := mb.Friends(id, local)
					if err != nil {
						t.Fatal(err)
					}
					wfr, err := wantStore.Friends(id, local, want.FriendsK)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(fr, wfr) {
						t.Fatalf("%s[%d]: mapped friends %v, want %v", id, local, fr, wfr)
					}
					name, ok := mb.Username(id, local)
					if !ok || name != want.Views[id][local].Username {
						t.Fatalf("%s[%d]: Username = %q,%v want %q", id, local, name, ok, want.Views[id][local].Username)
					}
				}
			}

			// Index rows, via the lazy indexes.
			ixs, err := mb.LazyIndexes()
			if err != nil {
				t.Fatal(err)
			}
			if len(ixs) != len(want.Indexes) {
				t.Fatalf("%d lazy indexes, want %d", len(ixs), len(want.Indexes))
			}
			for i, ix := range ixs {
				for a, wrow := range want.Indexes[i].ByA {
					got, err := ix.Candidates(a)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, wrow) {
						t.Fatalf("index %d row %d: %v, want %v", i, a, got, wrow)
					}
				}
			}

			st := mb.Stats()
			if st.ResidentViews == 0 || st.ResidentRows == 0 {
				t.Fatalf("touched sections not counted resident: %+v", st)
			}
			if tc.opts.NoZeroCopy && st.AliasedVecs != 0 {
				t.Fatalf("NoZeroCopy still aliased %d vectors", st.AliasedVecs)
			}
			mb.DropCaches()
			if st := mb.Stats(); st.ResidentViews != 0 || st.ResidentFriends != 0 || st.ResidentRows != 0 {
				t.Fatalf("DropCaches left residents: %+v", st)
			}
			// Re-touch after the drop: same values again.
			v, err := mb.View(platform.Twitter, 0)
			if err != nil {
				t.Fatal(err)
			}
			wv, _ := wantStore.Views(platform.Twitter)
			if !reflect.DeepEqual(v, wv[0]) {
				t.Fatal("re-materialized view differs after DropCaches")
			}
		})
	}
}

// TestOpenBundleMappedTruncationGates opens every proper prefix of a
// valid bundle file: each must fail with an error, never panic and
// never succeed.
func TestOpenBundleMappedTruncationGates(t *testing.T) {
	_, raw := writeBundleFile(t, fullFixtureBundle())
	dir := t.TempDir()
	path := filepath.Join(dir, "cut.bin")
	step := 1
	if len(raw) > 2048 {
		// Cut byte-by-byte through the magic, lengths and header, then
		// sparsely through the bulk payloads.
		step = 7
	}
	for cut := 0; cut < len(raw); cut += step {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		mb, err := OpenBundleMapped(path, MapOptions{})
		if err == nil {
			mb.Close()
			t.Fatalf("truncation at byte %d of %d opened successfully", cut, len(raw))
		}
	}
	// Corrupt section length: claims more than the format allows.
	bad := append([]byte(nil), raw...)
	copy(bad[len(bundleMagic):], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if mb, err := OpenBundleMapped(path, MapOptions{}); err == nil {
		mb.Close()
		t.Fatal("oversized header length opened successfully")
	}
	// Trailing garbage after the last section.
	long := append(append([]byte(nil), raw...), 0xAA)
	if err := os.WriteFile(path, long, 0o644); err != nil {
		t.Fatal(err)
	}
	if mb, err := OpenBundleMapped(path, MapOptions{}); err == nil {
		mb.Close()
		t.Fatal("trailing bytes opened successfully")
	}
}

// TestAliasFloat64sAlignmentGate pins the zero-copy reinterpretation's
// refusal rules: misaligned payloads and empty vectors must fall back
// to copy-decoding (checkptr faults on a misaligned unsafe.Slice, so a
// wrong answer here is a crash under -race, not a wrong float).
func TestAliasFloat64sAlignmentGate(t *testing.T) {
	buf := make([]byte, 64)
	// Find an 8-aligned base inside the buffer.
	al := 0
	for ; alignOf(buf[al:]) != 0; al++ {
	}
	if !hostLittleEndian {
		if _, ok := aliasFloat64s(buf[al:al+16], 2); ok {
			t.Fatal("aliased on a big-endian host")
		}
		t.Skip("big-endian host: aliasing is always refused")
	}
	if v, ok := aliasFloat64s(buf[al:al+16], 2); !ok || len(v) != 2 {
		t.Fatalf("aligned alias refused: ok=%v len=%d", ok, len(v))
	}
	if _, ok := aliasFloat64s(buf[al+1:al+17], 2); ok {
		t.Fatal("aliased a misaligned payload")
	}
	if _, ok := aliasFloat64s(buf[al:al], 0); ok {
		t.Fatal("aliased an empty vector")
	}
}

func alignOf(p []byte) uintptr {
	if len(p) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&p[0])) % 8
}
