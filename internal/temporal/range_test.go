package temporal

import (
	"testing"
	"time"

	"hydra/internal/linalg"
)

func TestRangeValidity(t *testing.T) {
	if (Range{Start: t0, End: t0}).Valid() {
		t.Fatal("empty range should be invalid")
	}
	if (Range{Start: t0.Add(Day), End: t0}).Valid() {
		t.Fatal("inverted range should be invalid")
	}
	r := Range{Start: t0, End: t0.Add(Day)}
	if !r.Valid() || r.Duration() != 24*time.Hour {
		t.Fatal("range basics wrong")
	}
}

func TestNumBucketsEdgeCases(t *testing.T) {
	r := Range{Start: t0, End: t0.Add(10 * Day)}
	if r.NumBuckets(0) != 0 {
		t.Fatal("zero scale should give 0 buckets")
	}
	if r.NumBuckets(-Day) != 0 {
		t.Fatal("negative scale should give 0 buckets")
	}
	// Exact division: no partial bucket.
	if got := r.NumBuckets(5 * Day); got != 2 {
		t.Fatalf("exact division buckets = %d", got)
	}
	// Scale larger than the range: one bucket.
	if got := r.NumBuckets(100 * Day); got != 1 {
		t.Fatalf("oversized scale buckets = %d", got)
	}
}

func TestBucketBoundaries(t *testing.T) {
	r := Range{Start: t0, End: t0.Add(4 * Day)}
	// The instant exactly at a bucket boundary belongs to the next bucket.
	if got := r.BucketOf(t0.Add(2*Day), 2*Day); got != 1 {
		t.Fatalf("boundary bucket = %d", got)
	}
	// The range start belongs to bucket 0.
	if got := r.BucketOf(t0, 2*Day); got != 0 {
		t.Fatalf("start bucket = %d", got)
	}
	// The range end is exclusive.
	if got := r.BucketOf(t0.Add(4*Day), 2*Day); got != -1 {
		t.Fatalf("end instant bucket = %d", got)
	}
}

func TestSeriesSimilarityShorterSeries(t *testing.T) {
	// Mismatched bucket counts: only the shared prefix is compared.
	a := DistSeries{Buckets: []linalg.Vector{{1, 0}, {0, 1}, {1, 0}}}
	b := DistSeries{Buckets: []linalg.Vector{{1, 0}}}
	v, cov, ok := SeriesSimilarity(a, b, dot)
	if !ok || v != 1 || cov != 1 {
		t.Fatalf("prefix comparison wrong: v=%v cov=%v ok=%v", v, cov, ok)
	}
}

func TestMultiScaleSimilarityAllMissing(t *testing.T) {
	r := Range{Start: t0, End: t0.Add(30 * Day)}
	// User B has no posts: every scale must be missing.
	timesA := []time.Time{t0.Add(Day)}
	distsA := []linalg.Vector{{1, 0}}
	vec, mask, err := MultiScaleSimilarity(r, []int{1, 8, 32}, timesA, distsA, nil, nil, dot)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if mask[i] || vec[i] != 0 {
			t.Fatal("empty counterpart must yield all-missing features")
		}
	}
}

func TestScanWindowsOrderingIndependence(t *testing.T) {
	// Events arriving out of order must produce the same signals.
	s := MediaSensor{}
	evs1 := []Event{
		{Time: t0.Add(3 * Day), MediaID: 5},
		{Time: t0.Add(Day), MediaID: 4},
	}
	evs2 := []Event{
		{Time: t0.Add(Day), MediaID: 4},
		{Time: t0.Add(3 * Day), MediaID: 5},
	}
	other := []Event{{Time: t0.Add(Day + time.Hour), MediaID: 4}}
	a := s.Match(append([]Event(nil), evs1...), append([]Event(nil), other...), 2*Day)
	b := s.Match(append([]Event(nil), evs2...), append([]Event(nil), other...), 2*Day)
	if len(a) != len(b) {
		t.Fatalf("order dependence: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order dependence at %d: %v vs %v", i, a, b)
		}
	}
}

func TestLocationSensorDefaultSigma(t *testing.T) {
	// SigmaKm <= 0 must fall back to the default rather than divide by 0.
	s := LocationSensor{SigmaKm: 0}
	a := []Event{{Time: t0.Add(Day), Lat: 10, Lon: 10}}
	b := []Event{{Time: t0.Add(Day), Lat: 10, Lon: 10}}
	signals := s.Match(a, b, 2*Day)
	if len(signals) != 1 || signals[0] < 0.99 {
		t.Fatalf("default-sigma signal = %v", signals)
	}
}

func TestMediaSensorIgnoresLocationEvents(t *testing.T) {
	s := LocationSensor{SigmaKm: 5}
	// Media events must not contribute to location matching.
	a := []Event{{Time: t0.Add(Day), MediaID: 9}}
	b := []Event{{Time: t0.Add(Day), Lat: 1, Lon: 1}}
	signals := s.Match(a, b, 2*Day)
	// Window has both users active but no location pair on side A: the
	// max over an empty set is 0 — a zero-stimulation signal.
	if len(signals) != 1 || signals[0] != 0 {
		t.Fatalf("signals = %v", signals)
	}
}
