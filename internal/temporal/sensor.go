package temporal

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hydra/internal/linalg"
)

// Event is a timestamped behavioral observation fed to pattern-matching
// sensors: a location check-in (Lat/Lon set) or a media posting/sharing
// action (MediaID set).
type Event struct {
	Time    time.Time
	Lat     float64
	Lon     float64
	MediaID uint64 // content fingerprint; 0 when not a media event
}

// When implements Stamped.
func (e Event) When() time.Time { return e.Time }

// Sensor detects matched behavior patterns between two users' event streams
// within a temporal search window. Match returns per-window stimulation
// signals in [0,1]; the slice may be empty when no window holds events from
// both streams.
type Sensor interface {
	// Name identifies the sensor (one similarity-vector dimension each).
	Name() string
	// Match scans both event streams with the given temporal search window
	// and returns one stimulation signal per window where both users were
	// active.
	Match(a, b []Event, window time.Duration) []float64
}

// LocationSensor is the paper's location matching sensor: "calculates
// location adjacency by a Gaussian kernel on geo-coordinates of user i and
// user i′ within the predefined spatial range".
type LocationSensor struct {
	// SigmaKm is the Gaussian bandwidth over great-circle distance in km.
	SigmaKm float64
}

// Name implements Sensor.
func (s LocationSensor) Name() string { return "location" }

// Match implements Sensor. Within each window the stimulation is the
// maximum Gaussian location adjacency over all cross pairs of check-ins.
func (s LocationSensor) Match(a, b []Event, window time.Duration) []float64 {
	sigma := s.SigmaKm
	if sigma <= 0 {
		sigma = 5
	}
	return scanWindows(a, b, window, func(ea, eb []Event) float64 {
		best := 0.0
		for _, x := range ea {
			if x.MediaID != 0 {
				continue
			}
			for _, y := range eb {
				if y.MediaID != 0 {
					continue
				}
				d := HaversineKm(x.Lat, x.Lon, y.Lat, y.Lon)
				v := math.Exp(-d * d / (2 * sigma * sigma))
				if v > best {
					best = v
				}
			}
		}
		return best
	})
}

// MediaSensor is the near-duplicate multimedia sensor: two events match when
// their content fingerprints coincide (the fingerprint plays the role of the
// near-duplicate image detector / down-sampling method [9] in the paper).
type MediaSensor struct{}

// Name implements Sensor.
func (MediaSensor) Name() string { return "media" }

// Match implements Sensor. The stimulation of a window is 1 if any media
// fingerprint is shared, else 0; windows where either side has no media
// events are skipped.
func (MediaSensor) Match(a, b []Event, window time.Duration) []float64 {
	return scanWindows(a, b, window, func(ea, eb []Event) float64 {
		seen := make(map[uint64]bool)
		hasA := false
		for _, x := range ea {
			if x.MediaID != 0 {
				seen[x.MediaID] = true
				hasA = true
			}
		}
		if !hasA {
			return -1 // no media on side A: window not applicable
		}
		hasB := false
		for _, y := range eb {
			if y.MediaID != 0 {
				hasB = true
				if seen[y.MediaID] {
					return 1
				}
			}
		}
		if !hasB {
			return -1
		}
		return 0
	})
}

// scanWindows slides a tumbling window across the union time span of the
// two streams and evaluates f on the events of each window. Windows where
// either side is empty, or where f returns a negative sentinel, produce no
// signal — that is the "missing information" the multi-resolution model is
// designed to tolerate.
func scanWindows(a, b []Event, window time.Duration, f func(ea, eb []Event) float64) []float64 {
	if len(a) == 0 || len(b) == 0 || window <= 0 {
		return nil
	}
	// Never sort the caller's slices in place: event streams are shared
	// across concurrent pair computations. Streams are almost always
	// already chronological, so the copy is rarely taken.
	a = chronological(a)
	b = chronological(b)
	start := a[0].Time
	if b[0].Time.Before(start) {
		start = b[0].Time
	}
	end := a[len(a)-1].Time
	if b[len(b)-1].Time.After(end) {
		end = b[len(b)-1].Time
	}
	end = end.Add(time.Nanosecond) // make the last event inclusive

	var signals []float64
	ia, ib := 0, 0
	for t := start; t.Before(end); t = t.Add(window) {
		wEnd := t.Add(window)
		ea := sliceWindow(a, &ia, wEnd)
		eb := sliceWindow(b, &ib, wEnd)
		if len(ea) == 0 || len(eb) == 0 {
			continue
		}
		if v := f(ea, eb); v >= 0 {
			signals = append(signals, v)
		}
	}
	return signals
}

// chronological returns evs sorted by time, copying only when needed so
// shared input slices are never mutated.
func chronological(evs []Event) []Event {
	sorted := true
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			sorted = false
			break
		}
	}
	if sorted {
		return evs
	}
	cp := append([]Event(nil), evs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Time.Before(cp[j].Time) })
	return cp
}

// sliceWindow advances *idx past all events before wEnd and returns them.
func sliceWindow(evs []Event, idx *int, wEnd time.Time) []Event {
	lo := *idx
	for *idx < len(evs) && evs[*idx].Time.Before(wEnd) {
		*idx++
	}
	return evs[lo:*idx]
}

// HaversineKm returns the great-circle distance between two lat/lon points
// in kilometers.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371
	toRad := func(deg float64) float64 { return deg * math.Pi / 180 }
	dLat := toRad(lat2 - lat1)
	dLon := toRad(lon2 - lon1)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(lat1))*math.Cos(toRad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// LqPool aggregates stimulation signals with the lq-norm pooling of Eqn 5:
// S = (1/N · Σ s_iᵠ)^(1/q). q → ∞ approaches max pooling; q must be ≥ 1.
func LqPool(signals []float64, q float64) (float64, error) {
	if q < 1 {
		return 0, fmt.Errorf("temporal: lq pooling requires q >= 1, got %g", q)
	}
	if len(signals) == 0 {
		return 0, nil
	}
	var acc float64
	for _, s := range signals {
		if s < 0 {
			return 0, fmt.Errorf("temporal: negative stimulation signal %g", s)
		}
		acc += math.Pow(s, q)
	}
	return math.Pow(acc/float64(len(signals)), 1/q), nil
}

// MeanPool is the ablation alternative to LqPool (plain averaging).
func MeanPool(signals []float64) float64 {
	if len(signals) == 0 {
		return 0
	}
	var acc float64
	for _, s := range signals {
		acc += s
	}
	return acc / float64(len(signals))
}

// Sigmoid is the nonlinear transformation Ŝ = 1/(1+e^{-λS}) of Section 5.4.
func Sigmoid(s, lambda float64) float64 {
	return 1 / (1 + math.Exp(-lambda*s))
}

// MultiResolutionConfig parameterizes the full Figure-6 pipeline.
type MultiResolutionConfig struct {
	// WindowsDays are the temporal search ranges of the sensor bank
	// ("Scale 1 … Scale 5" in Figure 6).
	WindowsDays []int
	// Q is the lq-pooling exponent (≥ 1).
	Q float64
	// Lambda is the sigmoid steepness.
	Lambda float64
	// MeanPooling switches to mean pooling (ablation).
	MeanPooling bool
}

// DefaultMultiResolutionConfig mirrors the paper's five temporal scales.
func DefaultMultiResolutionConfig() MultiResolutionConfig {
	return MultiResolutionConfig{WindowsDays: []int{1, 2, 4, 8, 16}, Q: 4, Lambda: 4}
}

// MultiResolutionMatch runs every sensor at every temporal window, pools the
// stimulation signals (Eqn 5), applies the sigmoid, and returns the
// multi-dimensional pattern-matching feature. mask[i] is false when sensor
// i produced no signal at window j (missing information).
//
// The output layout is sensor-major: [s0w0, s0w1, ..., s1w0, ...].
func MultiResolutionMatch(sensors []Sensor, cfg MultiResolutionConfig, a, b []Event) (linalg.Vector, []bool, error) {
	nw := len(cfg.WindowsDays)
	vec := linalg.NewVector(len(sensors) * nw)
	mask := make([]bool, len(sensors)*nw)
	for si, sensor := range sensors {
		for wi, days := range cfg.WindowsDays {
			window := time.Duration(days) * Day
			signals := sensor.Match(a, b, window)
			if len(signals) == 0 {
				continue
			}
			var pooled float64
			if cfg.MeanPooling {
				pooled = MeanPool(signals)
			} else {
				var err error
				pooled, err = LqPool(signals, cfg.Q)
				if err != nil {
					return nil, nil, err
				}
			}
			idx := si*nw + wi
			vec[idx] = Sigmoid(pooled, cfg.Lambda)
			mask[idx] = true
		}
	}
	return vec, mask, nil
}
