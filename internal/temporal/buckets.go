// Package temporal implements the time-axis machinery of HYDRA's behavior
// models: the multi-scale time-bucket division of Section 5.2 (Figure 5) and
// the multi-resolution pattern-matching sensor framework of Section 5.4
// (Figure 6), including lq-norm pooling and the sigmoid calibration.
package temporal

import (
	"fmt"
	"time"

	"hydra/internal/linalg"
)

// Day is the base unit of the paper's bucket scales.
const Day = 24 * time.Hour

// DefaultScalesDays are the bucket scales of Section 5.2: "we use 1, 2, 4,
// 8, 16 and 32 days in this paper to guarantee the optimal performance".
var DefaultScalesDays = []int{1, 2, 4, 8, 16, 32}

// Stamped is any event carrying a timestamp.
type Stamped interface {
	When() time.Time
}

// Range is a closed-open time interval [Start, End).
type Range struct {
	Start, End time.Time
}

// Valid reports whether the range is non-empty and well-ordered.
func (r Range) Valid() bool { return r.End.After(r.Start) }

// Duration returns End - Start.
func (r Range) Duration() time.Duration { return r.End.Sub(r.Start) }

// NumBuckets returns the number of buckets of the given scale covering r
// (the final partial bucket counts).
func (r Range) NumBuckets(scale time.Duration) int {
	if !r.Valid() || scale <= 0 {
		return 0
	}
	d := r.Duration()
	n := int(d / scale)
	if d%scale != 0 {
		n++
	}
	return n
}

// BucketOf returns the bucket index of t within r at the given scale, or
// -1 if t lies outside r.
func (r Range) BucketOf(t time.Time, scale time.Duration) int {
	if t.Before(r.Start) || !t.Before(r.End) {
		return -1
	}
	return int(t.Sub(r.Start) / scale)
}

// DistSeries is a sequence of per-bucket probability distributions at one
// temporal scale. Buckets with no events hold a nil vector ("missing"), not
// a zero distribution: HYDRA distinguishes absent behavior from observed
// neutral behavior.
type DistSeries struct {
	Scale   time.Duration
	Buckets []linalg.Vector
}

// AggregateDistributions groups the (timestamp, distribution) observations
// into buckets of the given scale over range r and averages the
// distributions within each bucket — the aggregation step of Figure 5.
func AggregateDistributions(r Range, scale time.Duration, times []time.Time, dists []linalg.Vector) (DistSeries, error) {
	if len(times) != len(dists) {
		return DistSeries{}, fmt.Errorf("temporal: %d times but %d distributions", len(times), len(dists))
	}
	n := r.NumBuckets(scale)
	out := DistSeries{Scale: scale, Buckets: make([]linalg.Vector, n)}
	counts := make([]int, n)
	for i, t := range times {
		b := r.BucketOf(t, scale)
		if b < 0 {
			continue
		}
		if out.Buckets[b] == nil {
			out.Buckets[b] = linalg.NewVector(len(dists[i]))
		}
		out.Buckets[b].AddScaled(1, dists[i])
		counts[b]++
	}
	for b, c := range counts {
		if c > 0 {
			out.Buckets[b].Scale(1 / float64(c))
		}
	}
	return out, nil
}

// Similarity is a pairwise similarity between two distributions (e.g. a
// chi-square or histogram-intersection kernel evaluation).
type Similarity func(a, b linalg.Vector) float64

// SeriesSimilarity computes the average per-bucket similarity between two
// DistSeries of the same scale — "the similarity of topic evolution of a
// specific scale between two users can be simply calculated by averaging
// over the similarities of all temporal intervals" (Section 5.2).
//
// The second return value is the fraction of buckets where both users had
// observations; if no bucket overlaps, ok is false and callers must treat
// the feature as missing.
func SeriesSimilarity(a, b DistSeries, sim Similarity) (value float64, coverage float64, ok bool) {
	n := len(a.Buckets)
	if len(b.Buckets) < n {
		n = len(b.Buckets)
	}
	if n == 0 {
		return 0, 0, false
	}
	var total float64
	matched := 0
	for i := 0; i < n; i++ {
		if a.Buckets[i] == nil || b.Buckets[i] == nil {
			continue
		}
		total += sim(a.Buckets[i], b.Buckets[i])
		matched++
	}
	if matched == 0 {
		return 0, 0, false
	}
	return total / float64(matched), float64(matched) / float64(n), true
}

// MultiScaleSimilarity evaluates SeriesSimilarity at every scale in
// scalesDays and concatenates the results into a similarity vector — "all
// the similarities calculated using different time scales are concatenated
// into a similarity vector". The returned mask marks which entries are
// observed (true) versus missing (false).
func MultiScaleSimilarity(r Range, scalesDays []int, timesA []time.Time, distsA []linalg.Vector,
	timesB []time.Time, distsB []linalg.Vector, sim Similarity) (vec linalg.Vector, mask []bool, err error) {

	vec = linalg.NewVector(len(scalesDays))
	mask = make([]bool, len(scalesDays))
	for si, days := range scalesDays {
		scale := time.Duration(days) * Day
		sa, err := AggregateDistributions(r, scale, timesA, distsA)
		if err != nil {
			return nil, nil, err
		}
		sb, err := AggregateDistributions(r, scale, timesB, distsB)
		if err != nil {
			return nil, nil, err
		}
		v, _, ok := SeriesSimilarity(sa, sb, sim)
		if ok {
			vec[si] = v
			mask[si] = true
		}
	}
	return vec, mask, nil
}
