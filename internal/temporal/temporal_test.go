package temporal

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"hydra/internal/linalg"
)

var t0 = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

func r30() Range { return Range{Start: t0, End: t0.Add(30 * Day)} }

func TestRangeBuckets(t *testing.T) {
	r := r30()
	if !r.Valid() {
		t.Fatal("range should be valid")
	}
	if got := r.NumBuckets(16 * Day); got != 2 {
		t.Fatalf("NumBuckets(16d) = %d, want 2", got)
	}
	if got := r.NumBuckets(8 * Day); got != 4 {
		t.Fatalf("NumBuckets(8d) = %d, want 4", got)
	}
	if got := r.NumBuckets(1 * Day); got != 30 {
		t.Fatalf("NumBuckets(1d) = %d, want 30", got)
	}
	if (Range{Start: t0, End: t0}).NumBuckets(Day) != 0 {
		t.Fatal("empty range should have 0 buckets")
	}
}

func TestBucketOf(t *testing.T) {
	r := r30()
	if got := r.BucketOf(t0.Add(17*Day), 16*Day); got != 1 {
		t.Fatalf("BucketOf = %d, want 1", got)
	}
	if got := r.BucketOf(t0.Add(-time.Hour), Day); got != -1 {
		t.Fatal("before-range time should map to -1")
	}
	if got := r.BucketOf(t0.Add(31*Day), Day); got != -1 {
		t.Fatal("after-range time should map to -1")
	}
}

func TestAggregateDistributions(t *testing.T) {
	r := r30()
	times := []time.Time{t0.Add(Day), t0.Add(2 * Day), t0.Add(20 * Day)}
	dists := []linalg.Vector{{1, 0}, {0, 1}, {1, 0}}
	s, err := AggregateDistributions(r, 16*Day, times, dists)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %d", len(s.Buckets))
	}
	// First bucket averages two one-hot dists.
	if math.Abs(s.Buckets[0][0]-0.5) > 1e-12 || math.Abs(s.Buckets[0][1]-0.5) > 1e-12 {
		t.Fatalf("bucket0 = %v", s.Buckets[0])
	}
	if s.Buckets[1][0] != 1 {
		t.Fatalf("bucket1 = %v", s.Buckets[1])
	}
}

func TestAggregateDistributionsMismatch(t *testing.T) {
	if _, err := AggregateDistributions(r30(), Day, []time.Time{t0}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestAggregateSkipsOutOfRange(t *testing.T) {
	s, err := AggregateDistributions(r30(), 16*Day,
		[]time.Time{t0.Add(-Day)}, []linalg.Vector{{1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Buckets {
		if b != nil {
			t.Fatal("out-of-range event leaked into a bucket")
		}
	}
}

func dot(a, b linalg.Vector) float64 { return a.Dot(b) }

func TestSeriesSimilarity(t *testing.T) {
	a := DistSeries{Buckets: []linalg.Vector{{1, 0}, nil, {0, 1}}}
	b := DistSeries{Buckets: []linalg.Vector{{1, 0}, {1, 0}, nil}}
	v, cov, ok := SeriesSimilarity(a, b, dot)
	if !ok {
		t.Fatal("expected overlap")
	}
	if v != 1 {
		t.Fatalf("similarity = %v, want 1 (only bucket 0 overlaps)", v)
	}
	if math.Abs(cov-1.0/3) > 1e-12 {
		t.Fatalf("coverage = %v, want 1/3", cov)
	}
}

func TestSeriesSimilarityNoOverlap(t *testing.T) {
	a := DistSeries{Buckets: []linalg.Vector{{1}, nil}}
	b := DistSeries{Buckets: []linalg.Vector{nil, {1}}}
	if _, _, ok := SeriesSimilarity(a, b, dot); ok {
		t.Fatal("expected missing feature when no bucket overlaps")
	}
	if _, _, ok := SeriesSimilarity(DistSeries{}, DistSeries{}, dot); ok {
		t.Fatal("empty series should be missing")
	}
}

func TestMultiScaleSimilarity(t *testing.T) {
	r := r30()
	timesA := []time.Time{t0.Add(Day), t0.Add(10 * Day)}
	timesB := []time.Time{t0.Add(Day + time.Hour), t0.Add(10*Day + time.Hour)}
	dists := []linalg.Vector{{0.5, 0.5}, {0.5, 0.5}}
	vec, mask, err := MultiScaleSimilarity(r, []int{1, 16}, timesA, dists, timesB, dists, dot)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2 || len(mask) != 2 {
		t.Fatalf("vec=%v mask=%v", vec, mask)
	}
	if !mask[0] || !mask[1] {
		t.Fatalf("both scales should be observed: %v", mask)
	}
	if math.Abs(vec[0]-0.5) > 1e-12 {
		t.Fatalf("similarity = %v", vec[0])
	}
}

func TestHaversine(t *testing.T) {
	// Beijing to Shanghai ≈ 1067 km.
	got := HaversineKm(39.9042, 116.4074, 31.2304, 121.4737)
	if math.Abs(got-1067) > 25 {
		t.Fatalf("Haversine = %v km, want ≈1067", got)
	}
	if HaversineKm(10, 20, 10, 20) != 0 {
		t.Fatal("same point should be 0 km")
	}
}

func mkEvents(times []time.Duration, lat, lon float64, media uint64) []Event {
	evs := make([]Event, len(times))
	for i, d := range times {
		evs[i] = Event{Time: t0.Add(d), Lat: lat, Lon: lon, MediaID: media}
	}
	return evs
}

func TestLocationSensor(t *testing.T) {
	s := LocationSensor{SigmaKm: 5}
	a := mkEvents([]time.Duration{Day, 3 * Day}, 39.9, 116.4, 0)
	b := mkEvents([]time.Duration{Day + time.Hour}, 39.9, 116.4, 0)
	signals := s.Match(a, b, 2*Day)
	if len(signals) != 1 {
		t.Fatalf("signals = %v", signals)
	}
	if signals[0] < 0.99 {
		t.Fatalf("co-located signal = %v, want ≈1", signals[0])
	}
	// Far apart: signal near zero but still present (both active).
	far := mkEvents([]time.Duration{Day}, 31.2, 121.5, 0)
	signals = s.Match(a, far, 2*Day)
	if len(signals) != 1 || signals[0] > 1e-6 {
		t.Fatalf("far signal = %v", signals)
	}
}

func TestLocationSensorEmpty(t *testing.T) {
	s := LocationSensor{}
	if got := s.Match(nil, mkEvents([]time.Duration{Day}, 0, 0, 0), Day); got != nil {
		t.Fatalf("empty stream should give nil, got %v", got)
	}
}

func TestMediaSensor(t *testing.T) {
	s := MediaSensor{}
	a := mkEvents([]time.Duration{Day}, 0, 0, 42)
	b := mkEvents([]time.Duration{Day + 2*time.Hour}, 0, 0, 42)
	signals := s.Match(a, b, 2*Day)
	if len(signals) != 1 || signals[0] != 1 {
		t.Fatalf("shared media = %v", signals)
	}
	c := mkEvents([]time.Duration{Day}, 0, 0, 99)
	signals = s.Match(a, c, 2*Day)
	if len(signals) != 1 || signals[0] != 0 {
		t.Fatalf("disjoint media = %v", signals)
	}
	// Location-only events on one side → window skipped entirely.
	loc := mkEvents([]time.Duration{Day}, 1, 1, 0)
	if got := s.Match(a, loc, 2*Day); got != nil {
		t.Fatalf("media/location mix should be skipped, got %v", got)
	}
}

func TestLqPool(t *testing.T) {
	// q=1 is the mean.
	v, err := LqPool([]float64{0.2, 0.4}, 1)
	if err != nil || math.Abs(v-0.3) > 1e-12 {
		t.Fatalf("LqPool q=1 = %v, %v", v, err)
	}
	// Large q approaches max.
	v, err = LqPool([]float64{0.1, 0.9}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.85 {
		t.Fatalf("LqPool q=64 = %v, want ≈0.9", v)
	}
	if _, err := LqPool([]float64{1}, 0.5); err == nil {
		t.Fatal("expected error for q<1")
	}
	if _, err := LqPool([]float64{-1}, 2); err == nil {
		t.Fatal("expected error for negative signal")
	}
	if v, _ := LqPool(nil, 2); v != 0 {
		t.Fatal("empty pool should be 0")
	}
}

func TestMeanPool(t *testing.T) {
	if MeanPool(nil) != 0 {
		t.Fatal("empty mean pool")
	}
	if got := MeanPool([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("MeanPool = %v", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0, 4); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if Sigmoid(10, 4) < 0.99 || Sigmoid(-10, 4) > 0.01 {
		t.Fatal("sigmoid saturation wrong")
	}
}

func TestMultiResolutionMatch(t *testing.T) {
	cfg := DefaultMultiResolutionConfig()
	sensors := []Sensor{LocationSensor{SigmaKm: 5}, MediaSensor{}}
	a := append(mkEvents([]time.Duration{Day, 5 * Day}, 39.9, 116.4, 0),
		mkEvents([]time.Duration{2 * Day}, 0, 0, 7)...)
	b := append(mkEvents([]time.Duration{Day + time.Hour}, 39.9, 116.4, 0),
		mkEvents([]time.Duration{2*Day + time.Hour}, 0, 0, 7)...)
	vec, mask, err := MultiResolutionMatch(sensors, cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2*len(cfg.WindowsDays) {
		t.Fatalf("vector length %d", len(vec))
	}
	anyObserved := false
	for i, m := range mask {
		if m {
			anyObserved = true
			if vec[i] < 0 || vec[i] > 1 {
				t.Fatalf("feature %d out of range: %v", i, vec[i])
			}
		} else if vec[i] != 0 {
			t.Fatalf("missing feature %d has nonzero value %v", i, vec[i])
		}
	}
	if !anyObserved {
		t.Fatal("expected at least one observed dimension")
	}
}

func TestMultiResolutionMatchDisjointStreams(t *testing.T) {
	cfg := DefaultMultiResolutionConfig()
	sensors := []Sensor{MediaSensor{}}
	a := mkEvents([]time.Duration{Day}, 0, 0, 1)
	vec, mask, err := MultiResolutionMatch(sensors, cfg, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if mask[i] || vec[i] != 0 {
			t.Fatal("all features should be missing when one stream is empty")
		}
	}
}

// Property: lq pooling is monotone in q toward the max and always lies
// between mean and max of the signals.
func TestLqPoolBoundsProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		sig := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		mean := MeanPool(sig)
		maxv := math.Max(sig[0], math.Max(sig[1], sig[2]))
		for _, q := range []float64{1, 2, 4, 8, 32} {
			v, err := LqPool(sig, q)
			if err != nil {
				return false
			}
			if v < mean-1e-9 || v > maxv+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sigmoid output is always in (0,1) and monotone in s.
func TestSigmoidProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		x, y := math.Mod(a, 50), math.Mod(b, 50)
		sx, sy := Sigmoid(x, 2), Sigmoid(y, 2)
		if sx < 0 || sx > 1 {
			return false
		}
		if x < y && sx > sy {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
