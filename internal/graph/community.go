package graph

import (
	"sort"
)

// Community is a set of node ids with a stable id.
type Community struct {
	ID    int
	Nodes []int // sorted
}

// Size returns the number of members.
func (c Community) Size() int { return len(c.Nodes) }

// Contains reports membership via binary search.
func (c Community) Contains(u int) bool {
	i := sort.SearchInts(c.Nodes, u)
	return i < len(c.Nodes) && c.Nodes[i] == u
}

// DetectCommunities extracts overlapping communities with a deterministic
// label-propagation variant: every node starts in its own label; labels
// propagate along the strongest edges for the given number of rounds; the
// final communities are label groups, expanded by one hop to create the
// overlap (a user belongs to the community of any label it is adjacent to
// with sufficient weight). Communities smaller than minSize are dropped.
// The result is sorted by descending size — the experiment of Figure 12
// works on "the top five largest overlapping communities".
func DetectCommunities(g *Graph, rounds, minSize int) []Community {
	if rounds <= 0 {
		rounds = 5
	}
	n := g.Len()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	for r := 0; r < rounds; r++ {
		changed := false
		// Deterministic order: ascending node id.
		for u := 0; u < n; u++ {
			// Adopt the label with the greatest total incident weight.
			weightByLabel := make(map[int]float64)
			for _, v := range g.Neighbors(u) {
				weightByLabel[labels[v]] += g.Weight(u, v)
			}
			if len(weightByLabel) == 0 {
				continue
			}
			bestLabel, bestW := labels[u], weightByLabel[labels[u]]
			// Ties break toward the smaller label for determinism.
			keys := make([]int, 0, len(weightByLabel))
			for l := range weightByLabel {
				keys = append(keys, l)
			}
			sort.Ints(keys)
			for _, l := range keys {
				if w := weightByLabel[l]; w > bestW {
					bestLabel, bestW = l, w
				}
			}
			if bestLabel != labels[u] {
				labels[u] = bestLabel
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	groups := make(map[int][]int)
	for u, l := range labels {
		groups[l] = append(groups[l], u)
	}

	// Overlap expansion: attach u to a neighboring community when at least
	// half of u's interaction weight points into it.
	memberSets := make(map[int]map[int]bool, len(groups))
	for l, nodes := range groups {
		set := make(map[int]bool, len(nodes))
		for _, u := range nodes {
			set[u] = true
		}
		memberSets[l] = set
	}
	for u := 0; u < n; u++ {
		var totalW float64
		wByLabel := make(map[int]float64)
		for _, v := range g.Neighbors(u) {
			w := g.Weight(u, v)
			totalW += w
			wByLabel[labels[v]] += w
		}
		for l, w := range wByLabel {
			if l != labels[u] && totalW > 0 && w >= totalW/2 {
				memberSets[l][u] = true
			}
		}
	}

	var out []Community
	for _, set := range memberSets {
		if len(set) < minSize {
			continue
		}
		nodes := make([]int, 0, len(set))
		for u := range set {
			nodes = append(nodes, u)
		}
		sort.Ints(nodes)
		out = append(out, Community{Nodes: nodes})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Nodes) != len(out[j].Nodes) {
			return len(out[i].Nodes) > len(out[j].Nodes)
		}
		return out[i].Nodes[0] < out[j].Nodes[0]
	})
	for i := range out {
		out[i].ID = i
	}
	return out
}

// OverlapSize returns |a ∩ b| for two communities.
func OverlapSize(a, b Community) int {
	n := 0
	for _, u := range a.Nodes {
		if b.Contains(u) {
			n++
		}
	}
	return n
}
