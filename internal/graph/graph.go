// Package graph implements the social-structure substrate of HYDRA: the
// per-platform interaction graph, k-hop distances for the structure
// consistency matrix (d_ij = (k_ij+1)² in Eqn 9), the interaction-weighted
// "core structure" (top-k most contacted friends, Section 6.2/6.3), and
// overlapping community extraction for the Figure-12 experiment.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted interaction graph over node ids
// 0..N-1. Edge weights count interactions (comments, reposts, mentions):
// higher weight = more frequent contact.
type Graph struct {
	n   int
	adj []map[int]float64
}

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// AddEdge accumulates weight w onto the undirected edge (u,v). Self-loops
// are ignored.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		return
	}
	g.check(u)
	g.check(v)
	g.adj[u][v] += w
	g.adj[v][u] += w
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of edge (u,v), 0 if absent.
func (g *Graph) Weight(u, v int) float64 {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Neighbors returns the neighbor ids of u in ascending order.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total / 2
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// Friend is a neighbor with its interaction weight.
type Friend struct {
	ID     int
	Weight float64
}

// TopFriends returns the k most-interacted friends of u, sorted by
// descending weight (ties by ascending id for determinism). This is the
// paper's "core social structure": "friends with the most frequent
// interactions". Fewer than k friends are returned if u's degree is small.
func (g *Graph) TopFriends(u, k int) []Friend {
	g.check(u)
	fs := make([]Friend, 0, len(g.adj[u]))
	for v, w := range g.adj[u] {
		fs = append(fs, Friend{ID: v, Weight: w})
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Weight != fs[j].Weight {
			return fs[i].Weight > fs[j].Weight
		}
		return fs[i].ID < fs[j].ID
	})
	if k < len(fs) {
		fs = fs[:k]
	}
	return fs
}

// HopDistance returns the number of intermediate users k_ij between u and v
// (0 for direct friends, 1 for friend-of-friend, ...), capped at maxHops,
// and ok=false if v is unreachable within maxHops. The paper's structure
// distance is then d_ij = (k_ij + 1)².
func (g *Graph) HopDistance(u, v, maxHops int) (int, bool) {
	g.check(u)
	g.check(v)
	if u == v {
		return 0, true // same node: zero intermediates by convention
	}
	// BFS with depth cap. Depth = number of edges; intermediates = depth-1.
	visited := make(map[int]bool, 64)
	visited[u] = true
	frontier := []int{u}
	for depth := 1; depth <= maxHops+1; depth++ {
		var next []int
		for _, x := range frontier {
			for y := range g.adj[x] {
				if visited[y] {
					continue
				}
				if y == v {
					return depth - 1, true
				}
				visited[y] = true
				next = append(next, y)
			}
		}
		if len(next) == 0 {
			return 0, false
		}
		frontier = next
	}
	return 0, false
}

// StructDistance returns the paper's d_ij = (k_ij+1)² closeness measure,
// and ok=false when the two users are farther than maxHops apart.
func (g *Graph) StructDistance(u, v, maxHops int) (float64, bool) {
	k, ok := g.HopDistance(u, v, maxHops)
	if !ok {
		return 0, false
	}
	d := float64(k + 1)
	return d * d, true
}

// ConnectedComponents returns the list of components, each a sorted slice
// of node ids, ordered by their smallest node id.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// ClusteringCoefficient returns the local clustering coefficient of u:
// the fraction of u's neighbor pairs that are themselves connected.
func (g *Graph) ClusteringCoefficient(u int) float64 {
	nbrs := g.Neighbors(u)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}
