package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 1) // accumulates
	g.AddEdge(1, 2, 5)
	g.AddEdge(2, 2, 9) // self-loop ignored
	if g.Len() != 4 {
		t.Fatal("Len")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing")
	}
	if g.Weight(0, 1) != 3 {
		t.Fatalf("Weight = %v", g.Weight(0, 1))
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop should be ignored")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree = %d", g.Degree(1))
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("Neighbors = %v", nbrs)
	}
}

func TestGraphOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 5, 1)
}

func TestTopFriends(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 30)
	g.AddEdge(0, 3, 20)
	g.AddEdge(0, 4, 20)
	top := g.TopFriends(0, 3)
	if len(top) != 3 {
		t.Fatalf("TopFriends len = %d", len(top))
	}
	if top[0].ID != 2 {
		t.Fatalf("top friend = %+v", top[0])
	}
	// Tie between 3 and 4 broken by id.
	if top[1].ID != 3 || top[2].ID != 4 {
		t.Fatalf("tie break wrong: %+v", top)
	}
	// k beyond degree truncates.
	if got := g.TopFriends(1, 5); len(got) != 1 {
		t.Fatalf("over-k = %v", got)
	}
}

func TestHopDistance(t *testing.T) {
	g := pathGraph(5) // 0-1-2-3-4
	cases := []struct {
		u, v, want int
		ok         bool
	}{
		{0, 0, 0, true},
		{0, 1, 0, true}, // direct friends: zero intermediates
		{0, 2, 1, true},
		{0, 4, 3, true},
	}
	for _, c := range cases {
		got, ok := g.HopDistance(c.u, c.v, 5)
		if ok != c.ok || got != c.want {
			t.Errorf("HopDistance(%d,%d) = %d,%v want %d,%v", c.u, c.v, got, ok, c.want, c.ok)
		}
	}
	// Cap: 0 to 4 needs 3 intermediates; cap at 2 fails.
	if _, ok := g.HopDistance(0, 4, 2); ok {
		t.Fatal("hop cap not honored")
	}
	// Disconnected.
	g2 := New(3)
	g2.AddEdge(0, 1, 1)
	if _, ok := g2.HopDistance(0, 2, 5); ok {
		t.Fatal("unreachable node reported reachable")
	}
}

func TestStructDistance(t *testing.T) {
	g := pathGraph(4)
	d, ok := g.StructDistance(0, 1, 3)
	if !ok || d != 1 {
		t.Fatalf("direct friends d = %v", d)
	}
	d, ok = g.StructDistance(0, 2, 3)
	if !ok || d != 4 {
		t.Fatalf("2-hop d = %v, want (1+1)²=4", d)
	}
	if _, ok := g.StructDistance(0, 3, 0); ok {
		t.Fatal("cap should make far node unreachable")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := New(4)
	// Triangle 0-1-2 plus pendant 3.
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	if got := g.ClusteringCoefficient(0); got != 1 {
		t.Fatalf("cc(0) = %v", got)
	}
	if got := g.ClusteringCoefficient(3); got != 0 {
		t.Fatalf("cc(3) = %v", got)
	}
	// Node 2 has neighbors {0,1,3}, one of three pairs linked.
	if got := g.ClusteringCoefficient(2); got < 0.3 || got > 0.34 {
		t.Fatalf("cc(2) = %v, want 1/3", got)
	}
}

func twoCliqueGraph() *Graph {
	// Two 5-cliques bridged by a single edge.
	g := New(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j, 3)
			g.AddEdge(i+5, j+5, 3)
		}
	}
	g.AddEdge(4, 5, 0.1)
	return g
}

func TestDetectCommunities(t *testing.T) {
	g := twoCliqueGraph()
	comms := DetectCommunities(g, 10, 3)
	if len(comms) != 2 {
		t.Fatalf("communities = %d, want 2", len(comms))
	}
	// Each community must contain one full clique.
	foundA, foundB := false, false
	for _, c := range comms {
		inA, inB := 0, 0
		for _, u := range c.Nodes {
			if u < 5 {
				inA++
			} else {
				inB++
			}
		}
		if inA == 5 {
			foundA = true
		}
		if inB == 5 {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("cliques not recovered: %v", comms)
	}
	// Sorted by size descending and ids assigned.
	if comms[0].Size() < comms[1].Size() || comms[0].ID != 0 || comms[1].ID != 1 {
		t.Fatal("community ordering/ids wrong")
	}
}

func TestCommunityContainsAndOverlap(t *testing.T) {
	a := Community{Nodes: []int{1, 3, 5}}
	b := Community{Nodes: []int{3, 5, 7}}
	if !a.Contains(3) || a.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if OverlapSize(a, b) != 2 {
		t.Fatalf("OverlapSize = %d", OverlapSize(a, b))
	}
}

func TestDetectCommunitiesMinSize(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	comms := DetectCommunities(g, 5, 10)
	if len(comms) != 0 {
		t.Fatalf("minSize not honored: %v", comms)
	}
}

// Property: hop distance is symmetric and satisfies the triangle-ish bound
// k(u,w) <= k(u,v)+k(v,w)+1 (intermediate counts compose with the shared
// midpoint counted once).
func TestHopDistanceSymmetryProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 8
		g := New(n)
		for k := 0; k < 12; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		u, v := rng.Intn(n), rng.Intn(n)
		duv, ok1 := g.HopDistance(u, v, n)
		dvu, ok2 := g.HopDistance(v, u, n)
		if ok1 != ok2 {
			return false
		}
		if ok1 && duv != dvu {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every node appears in exactly one connected component.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 3 + int(seed)%10
		g := New(n)
		for k := 0; k < n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		seen := make(map[int]int)
		for _, comp := range g.ConnectedComponents() {
			for _, u := range comp {
				seen[u]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
