package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tinyProblem is a 2-variable separable QP: Q = I, y = (+1,−1).
// max β1+β2 − ½(β1²+β2²) s.t. β1 = β2, 0 ≤ β ≤ C. Optimum: β1=β2=min(1,C).
func TestSolveTinyProblem(t *testing.T) {
	q := Dense{{1, 0}, {0, 1}}
	y := []float64{1, -1}
	res, err := Solve(q, y, 10, Opts{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Beta[0]-1) > 1e-4 || math.Abs(res.Beta[1]-1) > 1e-4 {
		t.Fatalf("beta = %v, want [1 1]", res.Beta)
	}
	// Box-constrained variant: C = 0.5 binds.
	res, err = Solve(q, y, 0.5, Opts{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Beta[0]-0.5) > 1e-6 || math.Abs(res.Beta[1]-0.5) > 1e-6 {
		t.Fatalf("boxed beta = %v, want [0.5 0.5]", res.Beta)
	}
}

func TestSolveValidation(t *testing.T) {
	q := Dense{{1}}
	if _, err := Solve(q, []float64{1, 1}, 1, Opts{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Solve(q, []float64{0.5}, 1, Opts{}); err == nil {
		t.Fatal("expected label validation error")
	}
	if _, err := Solve(q, []float64{1}, 0, Opts{}); err == nil {
		t.Fatal("expected C validation error")
	}
}

func TestSolveWarmStartValidation(t *testing.T) {
	q := Dense{{1, 0}, {0, 1}}
	y := []float64{1, -1}
	if _, err := Solve(q, y, 1, Opts{WarmStart: []float64{1}}); err == nil {
		t.Fatal("expected warm start length error")
	}
	if _, err := Solve(q, y, 1, Opts{WarmStart: []float64{0.5, 0.1}}); err == nil {
		t.Fatal("expected warm start feasibility error")
	}
	// Valid warm start at the solution converges immediately.
	res, err := Solve(q, y, 10, Opts{WarmStart: []float64{1, 1}, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 2 {
		t.Fatalf("warm start at optimum took %d iters", res.Iters)
	}
}

// svmQ builds the SVM dual Q matrix Q_ij = y_i y_j <x_i,x_j> for a linearly
// separable 2D problem.
func svmQ(xs [][]float64, ys []float64) Dense {
	n := len(xs)
	q := make(Dense, n)
	for i := range q {
		q[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			dot := xs[i][0]*xs[j][0] + xs[i][1]*xs[j][1]
			q[i][j] = ys[i] * ys[j] * dot
		}
	}
	return q
}

func TestSolveSeparableSVM(t *testing.T) {
	// Two clusters: y=+1 near (2,2), y=−1 near (−2,−2).
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		s := 1.0
		if i%2 == 1 {
			s = -1.0
		}
		xs = append(xs, []float64{s*2 + rng.NormFloat64()*0.3, s*2 + rng.NormFloat64()*0.3})
		ys = append(ys, s)
	}
	res, err := Solve(svmQ(xs, ys), ys, 10, Opts{Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	// Recover w = Σ β y x and check training accuracy.
	var w0, w1 float64
	for i := range xs {
		w0 += res.Beta[i] * ys[i] * xs[i][0]
		w1 += res.Beta[i] * ys[i] * xs[i][1]
	}
	correct := 0
	for i := range xs {
		score := w0*xs[i][0] + w1*xs[i][1] + res.B
		if (score > 0) == (ys[i] > 0) {
			correct++
		}
	}
	if correct != len(xs) {
		t.Fatalf("separable SVM training accuracy %d/%d", correct, len(xs))
	}
	// Equality constraint holds.
	var eq float64
	for i := range ys {
		eq += ys[i] * res.Beta[i]
	}
	if math.Abs(eq) > 1e-9 {
		t.Fatalf("yᵀβ = %v", eq)
	}
}

func TestSolveWithShrinking(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		s := 1.0
		if i%2 == 1 {
			s = -1.0
		}
		xs = append(xs, []float64{s + rng.NormFloat64()*0.5, s + rng.NormFloat64()*0.5})
		ys = append(ys, s)
	}
	q := svmQ(xs, ys)
	plain, err := Solve(q, ys, 1, Opts{Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := Solve(q, ys, 1, Opts{Tol: 1e-5, Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Obj-shrunk.Obj) > 1e-3*(1+math.Abs(plain.Obj)) {
		t.Fatalf("shrinking changed the optimum: %v vs %v", plain.Obj, shrunk.Obj)
	}
}

// Property: KKT conditions hold at the reported solution for random PSD Q.
func TestSolveKKTProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 4 + int(seed)%6
		// Random PSD Q = AAᵀ + δI.
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
		}
		q := make(Dense, n)
		for i := range q {
			q[i] = make([]float64, n)
			for j := range q[i] {
				var s float64
				for k := 0; k < n; k++ {
					s += a[i][k] * a[j][k]
				}
				q[i][j] = s
				if i == j {
					q[i][j] += 0.1
				}
			}
		}
		y := make([]float64, n)
		for i := range y {
			if i%2 == 0 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		c := 1.0
		res, err := Solve(q, y, c, Opts{Tol: 1e-6})
		if err != nil {
			return false
		}
		// Feasibility.
		var eq float64
		for i := range y {
			if res.Beta[i] < -1e-9 || res.Beta[i] > c+1e-9 {
				return false
			}
			eq += y[i] * res.Beta[i]
		}
		if math.Abs(eq) > 1e-8 {
			return false
		}
		// Optimality spot-check: no feasible two-coordinate move along the
		// equality constraint improves the objective beyond tolerance.
		base := res.Obj
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				eps := 1e-4
				bi := res.Beta[i] + y[i]*eps
				bj := res.Beta[j] - y[j]*eps
				if bi < 0 || bi > c || bj < 0 || bj > c {
					continue
				}
				nb := append([]float64(nil), res.Beta...)
				nb[i], nb[j] = bi, bj
				if objective(q, nb) > base+1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseAdapter(t *testing.T) {
	d := Dense{{1, 2}, {3, 4}}
	if d.N() != 2 || d.At(1, 0) != 3 {
		t.Fatal("Dense adapter wrong")
	}
}

func TestSolveMaxIterCap(t *testing.T) {
	// A hard problem with an absurdly low iteration cap must still return
	// a feasible (if suboptimal) point.
	rng := rand.New(rand.NewSource(9))
	n := 30
	q := make(Dense, n)
	y := make([]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		y[i] = 1
		if i%2 == 1 {
			y[i] = -1
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			q[i][j] += v * v
			q[j][i] = q[i][j]
		}
		q[i][i] += float64(n)
	}
	res, err := Solve(q, y, 1, Opts{Tol: 1e-12, MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Fatalf("iters = %d, want cap 3", res.Iters)
	}
	var eq float64
	for i := range y {
		if res.Beta[i] < 0 || res.Beta[i] > 1 {
			t.Fatal("box violated")
		}
		eq += y[i] * res.Beta[i]
	}
	if math.Abs(eq) > 1e-9 {
		t.Fatalf("equality violated: %v", eq)
	}
}

func TestBiasAllAtBounds(t *testing.T) {
	// Small C pins every variable at the box bound: the bias must come
	// from the KKT-interval midpoint, not the free-variable average.
	q := Dense{{1, 0}, {0, 1}}
	y := []float64{1, -1}
	res, err := Solve(q, y, 0.01, Opts{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Beta[0]-0.01) > 1e-10 || math.Abs(res.Beta[1]-0.01) > 1e-10 {
		t.Fatalf("beta = %v, want both pinned at C", res.Beta)
	}
	if math.IsNaN(res.B) || math.IsInf(res.B, 0) {
		t.Fatalf("bias = %v", res.B)
	}
}

func TestSolveShrinkThenUnshrink(t *testing.T) {
	// Many easily-pinned variables force the shrinking heuristic to drop
	// them; the final unshrink pass must still verify global optimality.
	rng := rand.New(rand.NewSource(17))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		s := 1.0
		if i%2 == 1 {
			s = -1.0
		}
		// Wide margin: most points are pinned at 0 quickly.
		xs = append(xs, []float64{s*6 + rng.NormFloat64()*0.2, s*6 + rng.NormFloat64()*0.2})
		ys = append(ys, s)
	}
	q := svmQ(xs, ys)
	shrunk, err := Solve(q, ys, 5, Opts{Tol: 1e-6, Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(q, ys, 5, Opts{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shrunk.Obj-plain.Obj) > 1e-4*(1+math.Abs(plain.Obj)) {
		t.Fatalf("shrink path lost optimality: %v vs %v", shrunk.Obj, plain.Obj)
	}
}

func TestObjectiveAndBiasHelpers(t *testing.T) {
	q := Dense{{2, 0}, {0, 2}}
	beta := []float64{1, 0.5}
	// 1ᵀβ − ½βᵀQβ = 1.5 − ½(2 + 0.5) = 0.25.
	if got := objective(q, beta); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("objective = %v", got)
	}
}
