// Package qp solves the box-constrained quadratic program with a single
// equality constraint that HYDRA's dual (Eqn 16) reduces to:
//
//	max_β  1ᵀβ − ½ βᵀQβ
//	s.t.   yᵀβ = 0,  0 ≤ β_i ≤ C
//
// via sequential minimal optimization (SMO) with maximal-violating-pair
// working-set selection, gradient-threshold shrinking (the paper's
// "coefficient space shrinking"), and warm starting (the paper optimizes
// β_{t+1} from β_t).
package qp

import (
	"fmt"
	"math"
)

// Matrix is the quadratic form accessor. Implementations may be dense,
// cached-kernel or on-the-fly.
type Matrix interface {
	// At returns Q_ij.
	At(i, j int) float64
	// N returns the problem size.
	N() int
}

// Opts controls the solver.
type Opts struct {
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxIter caps SMO iterations (default 100·n, at least 10000).
	MaxIter int
	// WarmStart, if non-nil, initializes β (must be feasible).
	WarmStart []float64
	// Shrink enables the gradient-threshold shrinking heuristic.
	Shrink bool
}

// Result is the solver output.
type Result struct {
	Beta  []float64
	Iters int
	// Obj is the attained objective 1ᵀβ − ½βᵀQβ.
	Obj float64
	// B is the equality-constraint multiplier (the SVM bias term).
	B float64
}

// Solve runs SMO. y must contain only ±1 entries.
func Solve(q Matrix, y []float64, c float64, opts Opts) (*Result, error) {
	n := q.N()
	if len(y) != n {
		return nil, fmt.Errorf("qp: y length %d, problem size %d", len(y), n)
	}
	if c <= 0 {
		return nil, fmt.Errorf("qp: box bound C must be positive, got %g", c)
	}
	for i, yi := range y {
		if yi != 1 && yi != -1 {
			return nil, fmt.Errorf("qp: y[%d] = %g, want ±1", i, yi)
		}
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-3
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100 * n
		if opts.MaxIter < 10000 {
			opts.MaxIter = 10000
		}
	}

	beta := make([]float64, n)
	// grad_i = (Qβ)_i − 1 (gradient of the minimization form ½βᵀQβ − 1ᵀβ).
	grad := make([]float64, n)
	for i := range grad {
		grad[i] = -1
	}
	if opts.WarmStart != nil {
		if len(opts.WarmStart) != n {
			return nil, fmt.Errorf("qp: warm start length %d, want %d", len(opts.WarmStart), n)
		}
		var eq float64
		for i, b := range opts.WarmStart {
			if b < -1e-12 || b > c+1e-12 {
				return nil, fmt.Errorf("qp: warm start β[%d]=%g outside [0,%g]", i, b, c)
			}
			beta[i] = math.Min(math.Max(b, 0), c)
			eq += y[i] * beta[i]
		}
		if math.Abs(eq) > 1e-6 {
			return nil, fmt.Errorf("qp: warm start violates yᵀβ=0 (got %g)", eq)
		}
		for i := 0; i < n; i++ {
			if beta[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				grad[j] += q.At(j, i) * beta[i]
			}
		}
	}

	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	iters := 0
	shrinkCountdown := n
	for ; iters < opts.MaxIter; iters++ {
		i, j, gap := selectPair(q, y, beta, grad, c, active)
		if i < 0 || gap < opts.Tol {
			if len(active) < n {
				// Unshrink: verify optimality on the full set.
				active = active[:n]
				for k := range active {
					active[k] = k
				}
				i, j, gap = selectPair(q, y, beta, grad, c, active)
				if i < 0 || gap < opts.Tol {
					break
				}
			} else {
				break
			}
		}
		update(q, y, beta, grad, c, i, j)

		if opts.Shrink {
			shrinkCountdown--
			if shrinkCountdown <= 0 {
				active = shrink(y, beta, grad, c, active, opts.Tol)
				shrinkCountdown = n
			}
		}
	}

	res := &Result{Beta: beta, Iters: iters}
	res.Obj = objective(q, beta)
	res.B = bias(y, beta, grad, c)
	return res, nil
}

// selectPair implements maximal-violating-pair selection over the active
// set. Returns (-1,-1,0) when no feasible ascent pair exists.
func selectPair(q Matrix, y, beta, grad []float64, c float64, active []int) (int, int, float64) {
	// I_up: y=+1 & β<C, or y=−1 & β>0; I_low: y=+1 & β>0, or y=−1 & β<C.
	gmax, gmin := math.Inf(-1), math.Inf(1)
	i, j := -1, -1
	for _, t := range active {
		v := -y[t] * grad[t]
		if inUp(y[t], beta[t], c) && v > gmax {
			gmax, i = v, t
		}
		if inLow(y[t], beta[t], c) && v < gmin {
			gmin, j = v, t
		}
	}
	if i < 0 || j < 0 {
		return -1, -1, 0
	}
	return i, j, gmax - gmin
}

func inUp(yi, bi, c float64) bool {
	return (yi > 0 && bi < c) || (yi < 0 && bi > 0)
}

func inLow(yi, bi, c float64) bool {
	return (yi > 0 && bi > 0) || (yi < 0 && bi < c)
}

// update performs the two-variable analytic step on (i,j).
func update(q Matrix, y, beta, grad []float64, c float64, i, j int) {
	// Solve the 2-variable subproblem along the equality constraint.
	eta := q.At(i, i) + q.At(j, j) - 2*y[i]*y[j]*q.At(i, j)
	if eta <= 1e-12 {
		eta = 1e-12
	}
	delta := (-y[i]*grad[i] + y[j]*grad[j]) / eta
	oldI, oldJ := beta[i], beta[j]
	// Move y_i β_i up by delta, y_j β_j down by delta (in the y-scaled space).
	bi := oldI + y[i]*delta
	bj := oldJ - y[j]*delta
	// Clip to the box while preserving y_i β_i + y_j β_j.
	sum := y[i]*oldI + y[j]*oldJ
	bi = math.Min(math.Max(bi, 0), c)
	bj = y[j] * (sum - y[i]*bi)
	if bj < 0 {
		bj = 0
		bi = y[i] * (sum - y[j]*bj)
		bi = math.Min(math.Max(bi, 0), c)
	} else if bj > c {
		bj = c
		bi = y[i] * (sum - y[j]*bj)
		bi = math.Min(math.Max(bi, 0), c)
	}
	dI, dJ := bi-oldI, bj-oldJ
	if dI == 0 && dJ == 0 {
		return
	}
	beta[i], beta[j] = bi, bj
	n := len(beta)
	for t := 0; t < n; t++ {
		grad[t] += q.At(t, i)*dI + q.At(t, j)*dJ
	}
}

// shrink drops variables pinned at a bound with strongly-satisfied KKT
// conditions — the paper's gradient-thresholding shrink.
func shrink(y, beta, grad []float64, c float64, active []int, tol float64) []int {
	kept := active[:0]
	for _, t := range active {
		v := -y[t] * grad[t]
		pinnedLow := beta[t] <= 0 && v < -10*tol
		pinnedHigh := beta[t] >= c && v > 10*tol
		if pinnedLow || pinnedHigh {
			continue
		}
		kept = append(kept, t)
	}
	if len(kept) == 0 {
		return active // never shrink everything
	}
	return kept
}

// objective evaluates 1ᵀβ − ½βᵀQβ.
func objective(q Matrix, beta []float64) float64 {
	n := len(beta)
	var lin, quad float64
	for i := 0; i < n; i++ {
		if beta[i] == 0 {
			continue
		}
		lin += beta[i]
		for j := 0; j < n; j++ {
			if beta[j] != 0 {
				quad += beta[i] * beta[j] * q.At(i, j)
			}
		}
	}
	return lin - quad/2
}

// bias recovers the equality multiplier b from the free variables (or the
// midpoint of the KKT interval when none are free).
func bias(y, beta, grad []float64, c float64) float64 {
	var sum float64
	nFree := 0
	ub, lb := math.Inf(1), math.Inf(-1)
	for t := range beta {
		v := -y[t] * grad[t]
		if beta[t] > 1e-12 && beta[t] < c-1e-12 {
			sum += v
			nFree++
		} else if inUp(y[t], beta[t], c) {
			if v > lb {
				lb = v
			}
		} else if inLow(y[t], beta[t], c) {
			if v < ub {
				ub = v
			}
		}
	}
	if nFree > 0 {
		return sum / float64(nFree)
	}
	if math.IsInf(ub, 1) || math.IsInf(lb, -1) {
		return 0
	}
	return (ub + lb) / 2
}

// Dense adapts a row-major square [][]float64 to the Matrix interface.
type Dense [][]float64

// At implements Matrix.
func (d Dense) At(i, j int) float64 { return d[i][j] }

// N implements Matrix.
func (d Dense) N() int { return len(d) }
