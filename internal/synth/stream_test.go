package synth

import (
	"bytes"
	"testing"

	"hydra/internal/platform"
)

// TestGenerateStreamMatchesEncodeWorkers asserts the streamed writer
// produces byte-for-byte the file Generate+Encode produces — at both
// worker-pool settings, since the chunked render fan-out must not
// perturb the per-account seeded streams.
func TestGenerateStreamMatchesEncodeWorkers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig(40, platform.EnglishPlatforms, 7)
		cfg.Workers = workers
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := platform.Encode(&want, w.Dataset); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := GenerateStream(cfg, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			i := 0
			for i < len(got.Bytes()) && i < len(want.Bytes()) && got.Bytes()[i] == want.Bytes()[i] {
				i++
			}
			lo, hi := max(0, i-60), min(i+60, min(got.Len(), want.Len()))
			t.Fatalf("workers=%d: streamed world differs from Encode at byte %d:\nstream: …%s…\nencode: …%s…",
				workers, i, got.Bytes()[lo:hi], want.Bytes()[lo:hi])
		}
		if got.Len() == 0 {
			t.Fatal("streamed world is empty")
		}
	}
}

// TestGenerateStreamValidation pins the streamed generator to Generate's
// exact refusals.
func TestGenerateStreamValidation(t *testing.T) {
	var sink bytes.Buffer
	cfg := DefaultConfig(0, platform.EnglishPlatforms, 1)
	if err := GenerateStream(cfg, &sink); err == nil {
		t.Fatal("zero persons accepted")
	}
	cfg = DefaultConfig(10, []platform.ID{platform.Twitter}, 1)
	if err := GenerateStream(cfg, &sink); err == nil {
		t.Fatal("single platform accepted")
	}
}
