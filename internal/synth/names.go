package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Name material for the username generator. The paper's Figure 1 challenge
// — "Adele_小暖" vs "马素文Adele" vs "Adele Robinson" — is recreated here:
// romanized handles on English platforms, Han-character names and hybrid
// decorations on Chinese platforms, plus "bizarre characters for
// eccentricity".

var givenSyllables = []string{
	"wei", "li", "min", "jun", "hua", "xin", "yan", "mei", "tao", "feng",
	"ada", "bob", "cai", "dan", "eva", "fay", "gus", "han", "ivy", "joe",
}

var familyNames = []string{
	"wang", "li", "zhang", "liu", "chen", "yang", "zhao", "huang",
	"smith", "jones", "brown", "davis", "miller", "wilson",
}

// hanRunes is a pool of Han characters for Chinese display names.
var hanRunes = []rune("伟丽敏军华欣燕梅涛风小暖素文马东明月星云龙虎春秋")

// bizarre decoration characters some users add "for eccentricity".
var bizarre = []string{"_", "__", "x", "xX", "~", "7", "88", "520", "o0"}

// PersonName is the real-world identity material of one person.
type PersonName struct {
	Given   string // romanized given name
	Family  string // romanized family name
	Han     string // Chinese display name (2-3 Han runes)
	BirthYr int
}

// randPersonName draws consistent identity material for one person.
func randPersonName(rng *rand.Rand) PersonName {
	given := givenSyllables[rng.Intn(len(givenSyllables))]
	if rng.Float64() < 0.4 {
		given += givenSyllables[rng.Intn(len(givenSyllables))]
	}
	family := familyNames[rng.Intn(len(familyNames))]
	n := 2 + rng.Intn(2)
	han := make([]rune, n)
	for i := range han {
		han[i] = hanRunes[rng.Intn(len(hanRunes))]
	}
	return PersonName{
		Given:   given,
		Family:  family,
		Han:     string(han),
		BirthYr: 1960 + rng.Intn(40),
	}
}

// usernameFor derives the account username of person pn on a platform of
// the given language. corruption in [0,1] is the probability of heavy
// decoration that defeats username-overlap heuristics.
func usernameFor(pn PersonName, lang string, rng *rand.Rand, corruption float64) string {
	base := pn.Given + pn.Family
	var name string
	if lang == "zh" {
		switch r := rng.Float64(); {
		case r < 0.35:
			name = pn.Han // pure Chinese display name
		case r < 0.55:
			name = pn.Given + pn.Han // hybrid: "adele小暖"
		case r < 0.75:
			name = pn.Han + pn.Given
		default:
			name = base
		}
	} else {
		switch r := rng.Float64(); {
		case r < 0.4:
			name = base
		case r < 0.7:
			name = pn.Given + "." + pn.Family
		default:
			name = pn.Given + fmt.Sprint(pn.BirthYr%100)
		}
	}
	if rng.Float64() < corruption {
		deco := bizarre[rng.Intn(len(bizarre))]
		if rng.Float64() < 0.5 {
			name = deco + name
		} else {
			name += deco
		}
		// Occasionally mangle the core too.
		if rng.Float64() < 0.3 {
			name = strings.Replace(name, "a", "4", 1)
		}
	}
	return name
}
