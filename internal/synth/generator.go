package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/temporal"
	"hydra/internal/topic"
)

// Config parameterizes the synthetic world. The zero value is not usable;
// call DefaultConfig and override.
type Config struct {
	Persons   int
	Platforms []platform.ID
	Seed      int64
	// Span is the observation window (paper: June 2012 – June 2013).
	Span temporal.Range

	Topics        int // latent interest topics
	WordsPerTopic int

	// PostsMean is the mean number of posts per account on a non-primary
	// platform; the primary platform posts PrimaryBoost× as much (data
	// imbalance).
	PostsMean    int
	CheckinsMean int
	MediaMean    int
	PrimaryBoost float64

	// MissingScale scales the per-attribute missingness probabilities
	// (1 = the calibrated defaults reproducing Figure 2(a)'s regime).
	MissingScale float64
	// DeceptionRate is the probability a deceptive person falsifies a
	// present attribute on a given platform.
	DeceptionRate float64
	// UsernameCorruption is the probability of bizarre-character
	// decoration per account (higher on Chinese platforms).
	UsernameCorruption float64
	// ContentDivergence in [0,1] tilts each platform's content away from
	// the person's true topic mix (the paper measured 25–85% divergence).
	ContentDivergence float64
	// EdgeCoverage is the probability a real-world friendship materializes
	// as an edge on a given platform.
	EdgeCoverage float64
	// AvatarRate is the probability an account uses the person's real
	// face photo as avatar.
	AvatarRate float64

	Communities int
	// MeanFriends is the target mean real-world degree.
	MeanFriends float64

	// Workers pins the generation fan-out (≤ 0 = all cores). Every
	// random draw comes from a per-person or per-platform seeded stream
	// (see subRNG), so the generated world is byte-identical at any
	// worker count.
	Workers int
}

// DefaultConfig returns the calibrated world configuration used by tests
// and experiments.
func DefaultConfig(persons int, platforms []platform.ID, seed int64) Config {
	start := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	return Config{
		Persons:            persons,
		Platforms:          platforms,
		Seed:               seed,
		Span:               temporal.Range{Start: start, End: start.AddDate(1, 0, 0)},
		Topics:             8,
		WordsPerTopic:      40,
		PostsMean:          12,
		CheckinsMean:       8,
		MediaMean:          4,
		PrimaryBoost:       2.5,
		MissingScale:       1,
		DeceptionRate:      0.5,
		UsernameCorruption: 0.25,
		ContentDivergence:  0.6,
		EdgeCoverage:       0.7,
		AvatarRate:         0.45,
		Communities:        maxInt(2, persons/60),
		MeanFriends:        8,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// World is the generated dataset plus the latent state experiments need:
// lexicons for the feature pipeline and the person roster for analysis.
type World struct {
	Dataset  *platform.Dataset
	Lexicons *Lexicons
	Persons  []*Person
	Config   Config
}

// attrMissingBase is the calibrated per-attribute missing probability.
// Gender is almost always present; the other five go missing frequently —
// Figure 2(a) reports ≥80% of users missing at least two of six attributes
// and only ~5% with all filled.
var attrMissingBase = map[platform.AttrName]float64{
	platform.AttrBirth:  0.52,
	platform.AttrBio:    0.48,
	platform.AttrTag:    0.55,
	platform.AttrEdu:    0.42,
	platform.AttrJob:    0.40,
	platform.AttrGender: 0.04,
	platform.AttrCity:   0.30,
	platform.AttrEmail:  0.65,
}

// The generator draws every random quantity from an independent seeded
// stream keyed by (purpose, index) rather than one sequential stream, so
// the expensive parts — latent persons and per-account rendering — fan
// out over the worker pool with byte-identical output at any worker
// count. The stream tags below keep unrelated draws from ever sharing a
// PRNG state.
const (
	streamPerson = iota + 1
	streamGraphIntra
	streamGraphInter
	streamTilt
	streamPerm
	streamAccount
	streamEdges
)

// subRNG derives a deterministic PRNG for one (tag, parts...) stream of
// the seeded generation, mixing the parts with splitmix64-style odd
// constants so nearby indices land far apart in seed space.
func subRNG(seed int64, tag uint64, parts ...uint64) *rand.Rand {
	h := uint64(seed)*0x9E3779B97F4A7C15 + tag*0xC2B2AE3D27D4EB4F
	for _, p := range parts {
		h ^= p + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xFF51AFD7ED558CCD
	}
	return rand.New(rand.NewSource(int64(h & 0x7FFFFFFFFFFFFFFF)))
}

// Generate builds the world, fanning the per-person and per-account work
// over cfg.Workers (≤ 0 = all cores; identical world at any setting).
func Generate(cfg Config) (*World, error) {
	if cfg.Persons <= 0 {
		return nil, fmt.Errorf("synth: Persons must be positive, got %d", cfg.Persons)
	}
	if len(cfg.Platforms) < 2 {
		return nil, fmt.Errorf("synth: need at least 2 platforms, got %d", len(cfg.Platforms))
	}
	if !cfg.Span.Valid() {
		return nil, fmt.Errorf("synth: invalid time span")
	}
	lx := BuildLexicons(cfg.Topics, cfg.WordsPerTopic)

	// 1. Latent persons, one seeded stream each.
	persons := make([]*Person, cfg.Persons)
	parallel.For(cfg.Workers, cfg.Persons, func(i int) {
		persons[i] = randPerson(subRNG(cfg.Seed, streamPerson, uint64(i)), i,
			cfg.Topics, len(cfg.Platforms), cfg.Communities)
	})

	// 2. Real-world friendship graph with planted communities.
	real := realWorldGraph(persons, cfg)

	// 3. Per-platform topic tilt (platform difference).
	tilts := make(map[platform.ID]linalg.Vector, len(cfg.Platforms))
	for pi, pid := range cfg.Platforms {
		tilts[pid] = dirichlet(subRNG(cfg.Seed, streamTilt, uint64(pi)), cfg.Topics, 0.5)
	}

	// 4. Project each platform (accounts fan out inside).
	ds := platform.NewDataset(cfg.Span)
	for pi, pid := range cfg.Platforms {
		p, err := projectPlatform(pid, pi, persons, real, tilts[pid], lx, cfg)
		if err != nil {
			return nil, err
		}
		if err := ds.AddPlatform(p); err != nil {
			return nil, err
		}
	}
	return &World{Dataset: ds, Lexicons: lx, Persons: persons, Config: cfg}, nil
}

// realWorldGraph plants community structure: dense intra-community edges,
// sparse inter-community ones, with interaction-count weights. Each
// community draws from its own seeded stream (graph mutation itself stays
// sequential — the edge work is cheap next to account rendering).
func realWorldGraph(persons []*Person, cfg Config) *graph.Graph {
	n := len(persons)
	g := graph.New(n)
	byComm := make(map[int][]int)
	maxComm := 0
	for _, p := range persons {
		byComm[p.Community] = append(byComm[p.Community], p.ID)
		if p.Community > maxComm {
			maxComm = p.Community
		}
	}
	// Intra-community: aim for ~80% of MeanFriends within the community.
	// Communities are visited in id order; each has its own stream, so
	// the edge set never depends on visit interleaving.
	for comm := 0; comm <= maxComm; comm++ {
		members := byComm[comm]
		m := len(members)
		if m < 2 {
			continue
		}
		rng := subRNG(cfg.Seed, streamGraphIntra, uint64(comm))
		pIntra := cfg.MeanFriends * 0.8 / float64(m-1)
		if pIntra > 1 {
			pIntra = 1
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if rng.Float64() < pIntra {
					g.AddEdge(members[i], members[j], 1+rng.ExpFloat64()*5)
				}
			}
		}
	}
	// Inter-community: the remaining ~20%.
	rng := subRNG(cfg.Seed, streamGraphInter)
	interEdges := int(cfg.MeanFriends * 0.2 * float64(n) / 2)
	for k := 0; k < interEdges; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && persons[u].Community != persons[v].Community {
			g.AddEdge(u, v, 1+rng.ExpFloat64()*2)
		}
	}
	return g
}

// projectPlatform renders one platform's view of the world. Account
// rendering — the generation hot path — fans each person out on the
// worker pool with a per-(platform, person) seeded stream; the local-id
// permutation and the friendship projection keep their own platform-level
// streams, so the platform is identical at any worker count.
func projectPlatform(pid platform.ID, pIdx int, persons []*Person,
	real *graph.Graph, tilt linalg.Vector, lx *Lexicons, cfg Config) (*platform.Platform, error) {

	n := len(persons)
	lang := string(platform.LangOf(pid))
	corruption := cfg.UsernameCorruption
	if lang == "zh" {
		corruption *= 1.6 // Chinese platforms show heavier name divergence
	}

	// Shuffle person -> local id so identities never leak through indices.
	perm := subRNG(cfg.Seed, streamPerm, uint64(pIdx)).Perm(n)
	localOf := make([]int, n)
	for local, person := range perm {
		localOf[person] = local
	}

	p := &platform.Platform{ID: pid, Graph: graph.New(n), Accounts: make([]*platform.Account, n)}
	parallel.For(cfg.Workers, n, func(person int) {
		local := localOf[person]
		p.Accounts[local] = renderAccount(pid, pIdx, person, local, persons[person], tilt, lx, cfg, lang, corruption)
	})

	projectEdges(pIdx, localOf, real, cfg, p.Graph)
	return p, nil
}

// renderAccount draws one person's account on one platform from its own
// (platform, person) seeded stream — the per-entity unit both Generate
// and GenerateStream fan out over, so the two paths render identical
// accounts in any order.
func renderAccount(pid platform.ID, pIdx, person, local int, pe *Person,
	tilt linalg.Vector, lx *Lexicons, cfg Config, lang string, corruption float64) *platform.Account {

	rng := subRNG(cfg.Seed, streamAccount, uint64(pIdx), uint64(person))
	acc := &platform.Account{
		Platform: pid,
		Local:    local,
		Person:   person,
		Profile:  renderProfile(rng, pe, lang, corruption, cfg),
	}
	activity := 1.0
	if pe.Primary == pIdx {
		activity = cfg.PrimaryBoost
	} else {
		activity = 0.7
	}
	acc.Posts = renderPosts(rng, pe, tilt, lx, cfg, activity)
	acc.Events = renderEvents(rng, pe, cfg, activity)
	return acc
}

// projectEdges materializes the real-world friendships on one platform
// into g (local ids) from the platform's sequential edge stream —
// shared by Generate and GenerateStream.
func projectEdges(pIdx int, localOf []int, real *graph.Graph, cfg Config, g *graph.Graph) {
	n := len(localOf)
	rng := subRNG(cfg.Seed, streamEdges, uint64(pIdx))
	for u := 0; u < n; u++ {
		for _, v := range real.Neighbors(u) {
			if u < v && rng.Float64() < cfg.EdgeCoverage {
				w := real.Weight(u, v) * (0.5 + rng.Float64())
				g.AddEdge(localOf[u], localOf[v], w)
			}
		}
	}
}

// renderProfile produces the account's profile with platform-dependent
// missingness, deception and username decoration.
func renderProfile(rng *rand.Rand, pe *Person, lang string, corruption float64, cfg Config) platform.Profile {
	attrs := make(map[platform.AttrName]string)
	trueVals := map[platform.AttrName]string{
		platform.AttrBirth:  fmt.Sprint(pe.Name.BirthYr),
		platform.AttrBio:    pe.Bio,
		platform.AttrTag:    pe.Tags,
		platform.AttrEdu:    pe.Edu,
		platform.AttrJob:    pe.Job,
		platform.AttrGender: pe.Gender,
		platform.AttrCity:   Cities[pe.City].Name,
		platform.AttrEmail:  pe.Email,
	}
	// Iterate in fixed attribute order: map iteration order would otherwise
	// desynchronize the PRNG stream and break same-seed determinism.
	for _, name := range platform.MatchAttrs {
		val := trueVals[name]
		miss := attrMissingBase[name] * cfg.MissingScale
		if rng.Float64() < miss {
			continue // attribute hidden
		}
		if pe.Deceptive && rng.Float64() < cfg.DeceptionRate {
			val = falsify(rng, name, val, pe)
		}
		attrs[name] = val
	}
	prof := platform.Profile{
		Username: usernameFor(pe.Name, lang, rng, corruption),
		Attrs:    attrs,
	}
	switch r := rng.Float64(); {
	case r < cfg.AvatarRate:
		prof.AvatarID = pe.FaceID // real face photo
	case r < cfg.AvatarRate+0.15:
		prof.AvatarID = uint64(1_000_000 + rng.Intn(10_000)) // stock/cartoon image
	default:
		// no avatar
	}
	return prof
}

// falsify produces a plausible false value (information veracity).
func falsify(rng *rand.Rand, name platform.AttrName, val string, pe *Person) string {
	switch name {
	case platform.AttrBirth:
		return fmt.Sprint(pe.Name.BirthYr + 1 + rng.Intn(8)) // age fudging
	case platform.AttrGender:
		if val == "m" {
			return "f"
		}
		return "m"
	case platform.AttrCity:
		return Cities[rng.Intn(len(Cities))].Name
	case platform.AttrJob:
		return Jobs[rng.Intn(len(Jobs))]
	case platform.AttrEdu:
		return Educations[rng.Intn(len(Educations))]
	default:
		return val
	}
}

// renderPosts samples the account's textual messages from the person's
// platform-tilted topic mixture, with genre keywords, sentiment keywords
// and the person's signature style words mixed in.
func renderPosts(rng *rand.Rand, pe *Person, tilt linalg.Vector, lx *Lexicons, cfg Config, activity float64) []platform.Post {
	nPosts := poisson(rng, float64(cfg.PostsMean)*activity)
	if nPosts == 0 {
		return nil
	}
	// Effective mixture: (1-d)·person + d·platform.
	mix := pe.TopicMix.Clone().Scale(1 - cfg.ContentDivergence)
	mix.AddScaled(cfg.ContentDivergence, tilt)
	// Some accounts never exhibit the person's signature wording on this
	// platform (platform-dependent register): without this the style
	// feature would be a perfect person identifier.
	useStyle := rng.Float64() < 0.7
	posts := make([]platform.Post, nPosts)
	span := cfg.Span.Duration()
	for i := range posts {
		t := cfg.Span.Start.Add(time.Duration(rng.Int63n(int64(span))))
		nTok := 8 + rng.Intn(12)
		toks := make([]string, 0, nTok)
		for j := 0; j < nTok; j++ {
			switch r := rng.Float64(); {
			case r < 0.50: // topic word
				t := sampleCat(rng, mix)
				toks = append(toks, lx.TopicWords[t][rng.Intn(len(lx.TopicWords[t]))])
			case r < 0.64: // genre keyword from preferred genres
				g := pe.GenrePrefs[rng.Intn(len(pe.GenrePrefs))]
				toks = append(toks, fmt.Sprintf("g%sk%d", topic.Genres[g], rng.Intn(keywordsPerGenre)))
			case r < 0.74: // sentiment keyword, biased to the person's family
				fam := topic.Sentiments[pe.SentimentBias]
				if rng.Float64() < 0.3 {
					fam = topic.Sentiments[rng.Intn(len(topic.Sentiments))]
				}
				toks = append(toks, fmt.Sprintf("s%sw%d", fam, rng.Intn(8)))
			case r < 0.78 && useStyle: // signature style word
				toks = append(toks, pe.StyleWords[rng.Intn(len(pe.StyleWords))])
			default: // filler
				toks = append(toks, lx.Filler[rng.Intn(len(lx.Filler))])
			}
		}
		posts[i] = platform.Post{Time: t, Text: strings.Join(toks, " ")}
	}
	return posts
}

// renderEvents samples the behavior trajectory: location check-ins near
// home (occasionally trips) and media posting with cross-platform sharing.
func renderEvents(rng *rand.Rand, pe *Person, cfg Config, activity float64) []temporal.Event {
	var evs []temporal.Event
	span := cfg.Span.Duration()
	// Some accounts simply never check in / never post media — missing
	// behavioral modality.
	if rng.Float64() > 0.25 {
		n := poisson(rng, float64(cfg.CheckinsMean)*activity)
		for i := 0; i < n; i++ {
			lat, lon := pe.HomeLat, pe.HomeLon
			if rng.Float64() < 0.1 { // trip
				c := Cities[rng.Intn(len(Cities))]
				lat, lon = c.Lat, c.Lon
			}
			evs = append(evs, temporal.Event{
				Time: cfg.Span.Start.Add(time.Duration(rng.Int63n(int64(span)))),
				Lat:  lat + rng.NormFloat64()*0.01,
				Lon:  lon + rng.NormFloat64()*0.01,
			})
		}
	}
	if rng.Float64() > 0.3 {
		n := poisson(rng, float64(cfg.MediaMean)*activity)
		for i := 0; i < n; i++ {
			var id uint64
			if rng.Float64() < 0.55 {
				// Shared pool item: the same media appears on the person's
				// other platforms at a different time (behavior asynchrony).
				id = pe.MediaPool[rng.Intn(len(pe.MediaPool))]
			} else {
				id = uint64(10_000_000 + rng.Intn(1_000_000)) // one-off content
			}
			evs = append(evs, temporal.Event{
				Time:    cfg.Span.Start.Add(time.Duration(rng.Int63n(int64(span)))),
				MediaID: id,
			})
		}
	}
	return evs
}

// poisson draws a Poisson(mean) variate (Knuth's method; mean is small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// sampleCat draws an index from the categorical distribution probs.
func sampleCat(rng *rand.Rand, probs linalg.Vector) int {
	u := rng.Float64() * probs.Sum()
	for i, p := range probs {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(probs) - 1
}
