package synth

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hydra/internal/platform"
)

func smallWorld(t *testing.T, persons int, seed int64) *World {
	t.Helper()
	w, err := Generate(DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(DefaultConfig(0, platform.EnglishPlatforms, 1)); err == nil {
		t.Fatal("expected error for zero persons")
	}
	if _, err := Generate(DefaultConfig(10, []platform.ID{platform.Twitter}, 1)); err == nil {
		t.Fatal("expected error for one platform")
	}
	cfg := DefaultConfig(10, platform.EnglishPlatforms, 1)
	cfg.Span.End = cfg.Span.Start
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected error for empty span")
	}
}

func TestGenerateStructure(t *testing.T) {
	w := smallWorld(t, 60, 7)
	if w.Dataset.NumPersons() != 60 {
		t.Fatalf("NumPersons = %d", w.Dataset.NumPersons())
	}
	for _, pid := range platform.EnglishPlatforms {
		p, err := w.Dataset.Platform(pid)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumAccounts() != 60 {
			t.Fatalf("%s accounts = %d", pid, p.NumAccounts())
		}
		if p.Graph.NumEdges() == 0 {
			t.Fatalf("%s has empty social graph", pid)
		}
		// Every account's Person must round-trip through the dataset map.
		for _, acc := range p.Accounts {
			local, ok := w.Dataset.AccountOf(acc.Person, pid)
			if !ok || local != acc.Local {
				t.Fatalf("ground-truth map broken for person %d", acc.Person)
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := smallWorld(t, 30, 42)
	b := smallWorld(t, 30, 42)
	pa, _ := a.Dataset.Platform(platform.Twitter)
	pb, _ := b.Dataset.Platform(platform.Twitter)
	for i := range pa.Accounts {
		if pa.Accounts[i].Profile.Username != pb.Accounts[i].Profile.Username {
			t.Fatal("same seed produced different usernames")
		}
		if len(pa.Accounts[i].Posts) != len(pb.Accounts[i].Posts) {
			t.Fatal("same seed produced different post counts")
		}
	}
	c := smallWorld(t, 30, 43)
	pc, _ := c.Dataset.Platform(platform.Twitter)
	same := true
	for i := range pa.Accounts {
		if pa.Accounts[i].Profile.Username != pc.Accounts[i].Profile.Username {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestLocalIDsAreShuffled(t *testing.T) {
	w := smallWorld(t, 80, 9)
	p, _ := w.Dataset.Platform(platform.Facebook)
	identity := 0
	for _, acc := range p.Accounts {
		if acc.Local == acc.Person {
			identity++
		}
	}
	if identity > 20 {
		t.Fatalf("local ids look unshuffled: %d/80 fixed points", identity)
	}
}

func TestMissingnessRegime(t *testing.T) {
	// Figure 2(a) regime: ≥80%% of users missing ≥2 of six core attributes,
	// only ~5%% with everything filled.
	w := smallWorld(t, 300, 11)
	p, _ := w.Dataset.Platform(platform.Twitter)
	missing2, full := 0, 0
	for _, acc := range p.Accounts {
		mc := acc.Profile.MissingCount()
		if mc >= 2 {
			missing2++
		}
		if mc == 0 {
			full++
		}
	}
	n := float64(p.NumAccounts())
	if frac := float64(missing2) / n; frac < 0.6 {
		t.Fatalf("missing≥2 fraction = %v, want >0.6", frac)
	}
	if frac := float64(full) / n; frac > 0.15 {
		t.Fatalf("fully-filled fraction = %v, want <0.15", frac)
	}
}

func TestPostsCarryPersonSignal(t *testing.T) {
	w := smallWorld(t, 20, 13)
	p, _ := w.Dataset.Platform(platform.Twitter)
	// Find a reasonably active account and check its texts contain that
	// person's style words somewhere.
	found := false
	for _, acc := range p.Accounts {
		if len(acc.Posts) < 5 {
			continue
		}
		all := ""
		for _, post := range acc.Posts {
			all += " " + post.Text
		}
		for j := 0; j < 3; j++ {
			if strings.Contains(all, StyleWord(acc.Person, j)) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no account exhibits its person's style words")
	}
}

func TestEventsWithinSpan(t *testing.T) {
	w := smallWorld(t, 40, 17)
	for _, pid := range platform.EnglishPlatforms {
		p, _ := w.Dataset.Platform(pid)
		for _, acc := range p.Accounts {
			for _, ev := range acc.Events {
				if ev.Time.Before(w.Config.Span.Start) || !ev.Time.Before(w.Config.Span.End) {
					t.Fatalf("event at %v outside span", ev.Time)
				}
			}
			for _, post := range acc.Posts {
				if post.Time.Before(w.Config.Span.Start) || !post.Time.Before(w.Config.Span.End) {
					t.Fatalf("post at %v outside span", post.Time)
				}
			}
		}
	}
}

func TestSharedMediaAcrossPlatforms(t *testing.T) {
	w := smallWorld(t, 60, 19)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	shared := 0
	for person := 0; person < 60; person++ {
		lt, _ := w.Dataset.AccountOf(person, platform.Twitter)
		lf, _ := w.Dataset.AccountOf(person, platform.Facebook)
		mt := map[uint64]bool{}
		for _, ev := range tw.Accounts[lt].Events {
			if ev.MediaID != 0 {
				mt[ev.MediaID] = true
			}
		}
		for _, ev := range fb.Accounts[lf].Events {
			if ev.MediaID != 0 && mt[ev.MediaID] {
				shared++
				break
			}
		}
	}
	if shared < 10 {
		t.Fatalf("only %d/60 persons share media across platforms", shared)
	}
}

func TestChineseUsernamesDiverge(t *testing.T) {
	w, err := Generate(DefaultConfig(100, platform.ChinesePlatforms, 23))
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := w.Dataset.Platform(platform.SinaWeibo)
	rr, _ := w.Dataset.Platform(platform.Renren)
	exact := 0
	for person := 0; person < 100; person++ {
		a, _ := w.Dataset.AccountOf(person, platform.SinaWeibo)
		b, _ := w.Dataset.AccountOf(person, platform.Renren)
		if sw.Accounts[a].Profile.Username == rr.Accounts[b].Profile.Username {
			exact++
		}
	}
	if exact > 60 {
		t.Fatalf("Chinese usernames too consistent: %d/100 exact matches", exact)
	}
}

func TestBuildLexicons(t *testing.T) {
	lx := BuildLexicons(4, 10)
	if len(lx.TopicWords) != 4 || len(lx.TopicWords[0]) != 10 {
		t.Fatal("topic words wrong shape")
	}
	if len(lx.Genre) == 0 || len(lx.Sentiment) == 0 || len(lx.Filler) == 0 {
		t.Fatal("lexicons empty")
	}
	// Genre lexicon values must be valid genres.
	for _, g := range lx.Genre {
		found := false
		for _, known := range []string{"sports", "music", "entertainment", "society", "history",
			"science", "art", "hightech", "commercial", "politics", "geography",
			"traveling", "fashions", "digitalgame", "industry", "luxury", "violence"} {
			if g == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown genre %q in lexicon", g)
		}
	}
}

func TestDirichletIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed uint8) bool {
		v := dirichlet(rng, 5, 0.3)
		if math.Abs(v.Sum()-1) > 1e-9 {
			return false
		}
		for _, p := range v {
			if p < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 7))
	}
	mean := sum / float64(n)
	if math.Abs(mean-7) > 0.5 {
		t.Fatalf("poisson mean = %v, want ≈7", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) should be 0")
	}
}

func TestGammaSamplePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []float64{0.1, 0.5, 1, 2, 10} {
		for i := 0; i < 50; i++ {
			if g := gammaSample(rng, shape); g <= 0 || math.IsNaN(g) {
				t.Fatalf("gammaSample(%v) = %v", shape, g)
			}
		}
	}
}

func TestUsernameFor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pn := randPersonName(rng)
	for i := 0; i < 50; i++ {
		en := usernameFor(pn, "en", rng, 0.2)
		zh := usernameFor(pn, "zh", rng, 0.2)
		if en == "" || zh == "" {
			t.Fatal("empty username generated")
		}
	}
}

func TestSampleCat(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	probs := dirichlet(rng, 4, 1)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[sampleCat(rng, probs)]++
	}
	for k := 0; k < 4; k++ {
		got := float64(counts[k]) / 4000
		if math.Abs(got-probs[k]) > 0.05 {
			t.Fatalf("category %d frequency %v, want %v", k, got, probs[k])
		}
	}
}
