package synth

import (
	"math/rand"
	"strings"
	"testing"
	"unicode"

	"hydra/internal/platform"
	"hydra/internal/topic"
)

func TestRandPersonComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 30; i++ {
		p := randPerson(rng, i, 8, 5, 4)
		if p.ID != i {
			t.Fatal("id wrong")
		}
		if p.Gender != "m" && p.Gender != "f" {
			t.Fatalf("gender = %q", p.Gender)
		}
		if p.City < 0 || p.City >= len(Cities) {
			t.Fatal("city out of range")
		}
		if len(p.TopicMix) != 8 {
			t.Fatal("topic mix dim wrong")
		}
		if len(p.GenrePrefs) < 2 || len(p.GenrePrefs) > 3 {
			t.Fatalf("genre prefs = %v", p.GenrePrefs)
		}
		for _, g := range p.GenrePrefs {
			if g < 0 || g >= len(topic.Genres) {
				t.Fatal("genre index out of range")
			}
		}
		if len(p.StyleWords) < 3 || len(p.MediaPool) < 6 {
			t.Fatal("style/media pools too small")
		}
		if p.Primary < 0 || p.Primary >= 5 {
			t.Fatal("primary platform out of range")
		}
		if p.Community < 0 || p.Community >= 4 {
			t.Fatal("community out of range")
		}
		if p.FaceID == 0 {
			t.Fatal("face id must be nonzero")
		}
		if !strings.Contains(p.Email, "@") {
			t.Fatalf("email = %q", p.Email)
		}
	}
}

func TestFalsifyChangesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pe := randPerson(rng, 0, 4, 2, 2)
	// Birth falsification must move the year forward (age fudging).
	orig := pe.Name.BirthYr
	for i := 0; i < 20; i++ {
		got := falsify(rng, platform.AttrBirth, "x", pe)
		if got <= "" {
			t.Fatal("empty falsified birth")
		}
		var yr int
		if _, err := sscan(got, &yr); err == nil && yr <= orig {
			t.Fatalf("falsified birth %d not after %d", yr, orig)
		}
	}
	// Gender flips.
	if falsify(rng, platform.AttrGender, "m", pe) != "f" {
		t.Fatal("gender should flip m->f")
	}
	if falsify(rng, platform.AttrGender, "f", pe) != "m" {
		t.Fatal("gender should flip f->m")
	}
	// Unknown attributes pass through.
	if falsify(rng, platform.AttrBio, "hello", pe) != "hello" {
		t.Fatal("bio should pass through")
	}
}

// sscan is a tiny fmt.Sscanf wrapper to keep imports local.
func sscan(s string, out *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errNotNumeric
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return 1, nil
}

var errNotNumeric = errString("not numeric")

type errString string

func (e errString) Error() string { return string(e) }

func TestChineseUsernamesUseHan(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	pn := randPersonName(rng)
	hanSeen := false
	for i := 0; i < 60; i++ {
		name := usernameFor(pn, "zh", rng, 0)
		for _, r := range name {
			if unicode.Is(unicode.Han, r) {
				hanSeen = true
			}
		}
	}
	if !hanSeen {
		t.Fatal("Chinese usernames never used Han characters")
	}
	// English usernames never do.
	for i := 0; i < 60; i++ {
		name := usernameFor(pn, "en", rng, 0)
		for _, r := range name {
			if unicode.Is(unicode.Han, r) {
				t.Fatalf("English username %q contains Han", name)
			}
		}
	}
}

func TestCorruptionAddsDecoration(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	pn := randPersonName(rng)
	baseline := usernameFor(pn, "en", rng, 0)
	decorated := 0
	for i := 0; i < 100; i++ {
		name := usernameFor(pn, "en", rng, 1) // always corrupt
		if len(name) > len(baseline) || strings.ContainsAny(name, "_~xX47890o") {
			decorated++
		}
	}
	if decorated < 80 {
		t.Fatalf("corruption rate too low: %d/100", decorated)
	}
}

func TestStyleWordDeterministic(t *testing.T) {
	if StyleWord(3, 1) != StyleWord(3, 1) {
		t.Fatal("style word not deterministic")
	}
	if StyleWord(3, 1) == StyleWord(4, 1) {
		t.Fatal("style words must differ across persons")
	}
}

func TestCitiesAndPools(t *testing.T) {
	if len(Cities) < 8 || len(Educations) < 5 || len(Jobs) < 5 || len(BioPhrases) < 5 || len(TagPool) < 5 {
		t.Fatal("attribute pools too small for diverse worlds")
	}
	for _, c := range Cities {
		if c.Lat == 0 && c.Lon == 0 {
			t.Fatalf("city %s has zero coordinates", c.Name)
		}
	}
}
