package synth

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/linalg"
	"hydra/internal/topic"
)

// Person is the latent natural person behind all of their platform
// accounts. Everything the accounts exhibit — interests, style, mobility,
// media habits — is a noisy projection of these fields, which is exactly
// the long-term cross-platform behavioral consistency HYDRA exploits.
type Person struct {
	ID        int
	Name      PersonName
	Gender    string
	City      int // index into Cities
	Edu       string
	Job       string
	Bio       string
	Tags      string
	Email     string
	FaceID    uint64 // avatar face identity; 0 = never uses a real photo
	Community int    // planted social community

	// TopicMix is the person's long-term interest distribution over the
	// latent topics.
	TopicMix linalg.Vector
	// GenrePrefs are indices into topic.Genres the person posts about.
	GenrePrefs []int
	// SentimentBias is the person's dominant emotion family index into
	// topic.Sentiments.
	SentimentBias int
	// StyleWords are the person's rare signature tokens (Section 5.3).
	StyleWords []string
	// HomeLat/HomeLon jitter the city anchor by a few km.
	HomeLat, HomeLon float64
	// MediaPool is the person's media fingerprints, shared (with
	// asynchrony) across platforms.
	MediaPool []uint64
	// Primary is the index (into the dataset's platform list) of the
	// person's primary platform — the data-imbalance axis.
	Primary int
	// Deceptive persons report false attributes on some platforms.
	Deceptive bool
}

// dirichlet draws a Dirichlet(alpha,...,alpha) sample of dimension k.
func dirichlet(rng *rand.Rand, k int, alpha float64) linalg.Vector {
	v := linalg.NewVector(k)
	for i := range v {
		// Gamma(alpha) via Marsaglia-Tsang for alpha<1 boosted trick.
		v[i] = gammaSample(rng, alpha)
	}
	if v.Sum() == 0 {
		return v.Fill(1 / float64(k))
	}
	return v.Scale(1 / v.Sum())
}

// gammaSample draws from Gamma(shape, 1).
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	// Marsaglia-Tsang.
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// randPerson draws a complete latent person.
func randPerson(rng *rand.Rand, id, numTopics, numPlatforms, numCommunities int) *Person {
	pn := randPersonName(rng)
	city := rng.Intn(len(Cities))
	p := &Person{
		ID:            id,
		Name:          pn,
		Gender:        []string{"m", "f"}[rng.Intn(2)],
		City:          city,
		Edu:           Educations[rng.Intn(len(Educations))],
		Job:           Jobs[rng.Intn(len(Jobs))],
		Bio:           BioPhrases[rng.Intn(len(BioPhrases))],
		Tags:          TagPool[rng.Intn(len(TagPool))] + "," + TagPool[rng.Intn(len(TagPool))],
		Email:         fmt.Sprintf("%s.%s%d@mail.example", pn.Given, pn.Family, id),
		FaceID:        uint64(id + 1),
		Community:     rng.Intn(max(1, numCommunities)),
		TopicMix:      dirichlet(rng, numTopics, 0.3),
		SentimentBias: rng.Intn(len(topic.Sentiments)),
		HomeLat:       Cities[city].Lat + rng.NormFloat64()*0.02,
		HomeLon:       Cities[city].Lon + rng.NormFloat64()*0.02,
		Primary:       rng.Intn(max(1, numPlatforms)),
		Deceptive:     rng.Float64() < 0.08,
	}
	nGenres := 2 + rng.Intn(2)
	seen := map[int]bool{}
	for len(p.GenrePrefs) < nGenres {
		g := rng.Intn(len(topic.Genres))
		if !seen[g] {
			seen[g] = true
			p.GenrePrefs = append(p.GenrePrefs, g)
		}
	}
	nStyle := 3 + rng.Intn(3)
	for j := 0; j < nStyle; j++ {
		p.StyleWords = append(p.StyleWords, StyleWord(id, j))
	}
	nMedia := 6 + rng.Intn(8)
	for j := 0; j < nMedia; j++ {
		p.MediaPool = append(p.MediaPool, uint64(id)*1000+uint64(j)+1)
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
