// Package synth generates the synthetic multi-platform social world that
// stands in for the paper's 10-million-user, seven-platform dataset (see
// DESIGN.md §2 for the substitution rationale). The generator is a
// person-level generative model: each natural person has latent interests,
// style, mobility, sociality and deception habits; each platform projects a
// noisy, biased, partially-missing view of that person. Every challenge the
// paper lists — unreliable usernames, missing information, information
// veracity, platform difference, behavior asynchrony, data imbalance — has
// an explicit knob.
package synth

import (
	"fmt"

	"hydra/internal/topic"
)

// Lexicons carries the keyword vocabularies shared between the generator
// and the feature pipeline: the pipeline needs the same genre and sentiment
// lexicons to classify generated posts.
type Lexicons struct {
	// Genre maps keyword -> genre name (one of topic.Genres).
	Genre map[string]string
	// Sentiment maps keyword -> arousal-valence point.
	Sentiment map[string]topic.AVPoint
	// TopicWords[t] lists the vocabulary of latent topic t.
	TopicWords [][]string
	// Filler lists high-frequency topic-neutral words.
	Filler []string
}

// keywordsPerGenre is how many distinct keywords each genre gets.
const keywordsPerGenre = 6

// BuildLexicons constructs the deterministic lexicons for a world with the
// given number of latent topics and per-topic vocabulary size.
func BuildLexicons(topics, wordsPerTopic int) *Lexicons {
	lx := &Lexicons{
		Genre:     make(map[string]string),
		Sentiment: make(map[string]topic.AVPoint),
	}
	for _, g := range topic.Genres {
		for j := 0; j < keywordsPerGenre; j++ {
			lx.Genre[fmt.Sprintf("g%sk%d", g, j)] = g
		}
	}
	// Four sentiment families with AV points inside each category's region.
	sentiFamilies := []struct {
		name string
		av   topic.AVPoint
		n    int
	}{
		{"happy", topic.AVPoint{Arousal: 0.5, Valence: 0.8}, 8},
		{"fear", topic.AVPoint{Arousal: 0.8, Valence: -0.8}, 8},
		{"sad", topic.AVPoint{Arousal: -0.5, Valence: -0.8}, 8},
		{"neutral", topic.AVPoint{Arousal: 0, Valence: 0}, 8},
	}
	for _, f := range sentiFamilies {
		for j := 0; j < f.n; j++ {
			lx.Sentiment[fmt.Sprintf("s%sw%d", f.name, j)] = f.av
		}
	}
	lx.TopicWords = make([][]string, topics)
	for t := 0; t < topics; t++ {
		words := make([]string, wordsPerTopic)
		for j := 0; j < wordsPerTopic; j++ {
			words[j] = fmt.Sprintf("t%dw%d", t, j)
		}
		lx.TopicWords[t] = words
	}
	for j := 0; j < 30; j++ {
		lx.Filler = append(lx.Filler, fmt.Sprintf("filler%d", j))
	}
	return lx
}

// StyleWord returns the j-th personal rare token of a person — the
// "personalized wording" signal the style model of Section 5.3 detects.
func StyleWord(person, j int) string { return fmt.Sprintf("uq%dx%d", person, j) }

// Cities are the location anchors persons live in (lat, lon).
var Cities = []struct {
	Name     string
	Lat, Lon float64
}{
	{"beijing", 39.9042, 116.4074},
	{"shanghai", 31.2304, 121.4737},
	{"guangzhou", 23.1291, 113.2644},
	{"chengdu", 30.5728, 104.0668},
	{"wuhan", 30.5928, 114.3055},
	{"xian", 34.3416, 108.9398},
	{"hangzhou", 30.2741, 120.1551},
	{"nanjing", 32.0603, 118.7969},
	{"newyork", 40.7128, -74.0060},
	{"london", 51.5074, -0.1278},
}

// Educations, Jobs: attribute value pools.
var Educations = []string{
	"peking_univ", "tsinghua_univ", "fudan_univ", "zhejiang_univ",
	"nanjing_univ", "cmu", "smu", "mit", "stanford", "oxford",
}

// Jobs is the profession attribute pool.
var Jobs = []string{
	"engineer", "teacher", "doctor", "designer", "analyst",
	"journalist", "lawyer", "researcher", "manager", "student",
}

// BioPhrases is the bio attribute pool.
var BioPhrases = []string{
	"love life and travel", "coffee addict", "music is my life",
	"work hard play hard", "cat person", "dog person",
	"foodie forever", "tech enthusiast", "bookworm", "night owl",
}

// TagPool is the tag attribute pool (users pick a couple).
var TagPool = []string{
	"photography", "hiking", "gaming", "cooking", "movies",
	"basketball", "yoga", "painting", "coding", "gardening",
}
