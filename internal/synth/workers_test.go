package synth

import (
	"bytes"
	"testing"

	"hydra/internal/platform"
)

// TestGenerateWorkersByteIdentical pins the generator's fan-out contract:
// the same seed produces a byte-identical world at any worker count,
// because every random draw comes from a per-person or per-platform
// seeded stream instead of one shared sequential one. The comparison
// goes through the world codec, so it covers profiles, posts, events and
// the projected graphs down to the last float bit.
func TestGenerateWorkersByteIdentical(t *testing.T) {
	encode := func(workers int) []byte {
		cfg := DefaultConfig(45, platform.EnglishPlatforms, 21)
		cfg.Workers = workers
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := platform.Encode(&buf, w.Dataset); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := encode(1)
	for _, workers := range []int{2, 3, 8} {
		if got := encode(workers); !bytes.Equal(got, want) {
			t.Fatalf("world bytes differ between 1 and %d workers", workers)
		}
	}
}

// TestGenerateStreamsIndependent guards the stream separation: bumping
// the seed must change the world (no degenerate stream mixing), and two
// persons' streams must differ within one seed.
func TestGenerateStreamsIndependent(t *testing.T) {
	a := subRNG(7, streamPerson, 0).Int63()
	b := subRNG(7, streamPerson, 1).Int63()
	c := subRNG(8, streamPerson, 0).Int63()
	d := subRNG(7, streamAccount, 0, 0).Int63()
	if a == b || a == c || a == d {
		t.Fatalf("streams collide: person0=%d person1=%d seed8=%d account=%d", a, b, c, d)
	}
}
