package synth

import (
	"fmt"
	"sort"
	"strings"

	"hydra/internal/platform"
	"hydra/internal/text"
)

// Stats summarizes a generated world along the axes the paper reports
// about its real datasets: content divergence between platforms (paper:
// "a 25% to 85% difference in user generated content between different
// platforms"), attribute missingness, and activity imbalance.
type Stats struct {
	Persons   int
	Platforms int
	Accounts  int
	Posts     int
	Events    int
	Edges     int

	// ContentDivergence[pair] is the mean per-person Jaccard *distance*
	// between the token sets the person uses on the two platforms.
	ContentDivergence map[string]float64
	// MissingMean is the mean number of missing core attributes per
	// account.
	MissingMean float64
	// ImbalanceRatio is the mean ratio of a person's most-active to
	// least-active platform post counts (data imbalance).
	ImbalanceRatio float64
}

// Measure computes Stats for a world.
func Measure(w *World) Stats {
	st := Stats{
		Persons:           w.Dataset.NumPersons(),
		Platforms:         len(w.Dataset.Platforms),
		ContentDivergence: make(map[string]float64),
	}
	ids := make([]platform.ID, 0, len(w.Dataset.Platforms))
	for id := range w.Dataset.Platforms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var missingTotal int
	for _, id := range ids {
		p := w.Dataset.Platforms[id]
		st.Accounts += p.NumAccounts()
		st.Edges += p.Graph.NumEdges()
		for _, acc := range p.Accounts {
			st.Posts += len(acc.Posts)
			st.Events += len(acc.Events)
			missingTotal += acc.Profile.MissingCount()
		}
	}
	if st.Accounts > 0 {
		st.MissingMean = float64(missingTotal) / float64(st.Accounts)
	}

	// Per-person token sets per platform.
	tokens := make(map[platform.ID]map[int]map[string]bool, len(ids))
	for _, id := range ids {
		perPerson := make(map[int]map[string]bool)
		for _, acc := range w.Dataset.Platforms[id].Accounts {
			set := make(map[string]bool)
			for _, post := range acc.Posts {
				for _, tok := range text.Tokenize(post.Text) {
					set[tok] = true
				}
			}
			perPerson[acc.Person] = set
		}
		tokens[id] = perPerson
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			var acc float64
			n := 0
			for person := 0; person < st.Persons; person++ {
				sa := tokens[ids[i]][person]
				sb := tokens[ids[j]][person]
				if len(sa) == 0 || len(sb) == 0 {
					continue
				}
				acc += 1 - jaccard(sa, sb)
				n++
			}
			if n > 0 {
				key := fmt.Sprintf("%s|%s", ids[i], ids[j])
				st.ContentDivergence[key] = acc / float64(n)
			}
		}
	}

	// Imbalance: most-active / least-active platform per person.
	var ratioAcc float64
	ratioN := 0
	for person := 0; person < st.Persons; person++ {
		minP, maxP := -1, -1
		for _, id := range ids {
			local, ok := w.Dataset.AccountOf(person, id)
			if !ok {
				continue
			}
			n := len(w.Dataset.Platforms[id].Accounts[local].Posts)
			if minP == -1 || n < minP {
				minP = n
			}
			if n > maxP {
				maxP = n
			}
		}
		if minP > 0 {
			ratioAcc += float64(maxP) / float64(minP)
			ratioN++
		}
	}
	if ratioN > 0 {
		st.ImbalanceRatio = ratioAcc / float64(ratioN)
	}
	return st
}

func jaccard(a, b map[string]bool) float64 {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Format renders the stats as a text block.
func (st Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "persons=%d platforms=%d accounts=%d posts=%d events=%d edges=%d\n",
		st.Persons, st.Platforms, st.Accounts, st.Posts, st.Events, st.Edges)
	fmt.Fprintf(&b, "mean missing core attributes per account: %.2f / %d\n",
		st.MissingMean, len(platform.CoreAttrs))
	fmt.Fprintf(&b, "mean activity imbalance (max/min posts per person): %.2f\n", st.ImbalanceRatio)
	keys := make([]string, 0, len(st.ContentDivergence))
	for k := range st.ContentDivergence {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "content divergence %-28s %.1f%%\n", k, 100*st.ContentDivergence[k])
	}
	return b.String()
}
