package synth

import (
	"strings"
	"testing"

	"hydra/internal/platform"
)

func TestMeasureBasics(t *testing.T) {
	w, err := Generate(DefaultConfig(80, platform.EnglishPlatforms, 31))
	if err != nil {
		t.Fatal(err)
	}
	st := Measure(w)
	if st.Persons != 80 || st.Platforms != 2 || st.Accounts != 160 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.Posts == 0 || st.Events == 0 || st.Edges == 0 {
		t.Fatal("content counts empty")
	}
	if st.MissingMean <= 0.5 || st.MissingMean >= 5 {
		t.Fatalf("mean missing = %v, want the Figure 2(a) regime", st.MissingMean)
	}
	out := st.Format()
	for _, want := range []string{"persons=80", "content divergence", "imbalance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestContentDivergenceInPaperRange(t *testing.T) {
	// The paper reports 25%–85% UGC difference between platforms; the
	// generator's divergence knob must land the synthetic world inside
	// that band.
	w, err := Generate(DefaultConfig(100, platform.EnglishPlatforms, 33))
	if err != nil {
		t.Fatal(err)
	}
	st := Measure(w)
	if len(st.ContentDivergence) != 1 {
		t.Fatalf("divergence pairs = %d", len(st.ContentDivergence))
	}
	for pair, d := range st.ContentDivergence {
		if d < 0.25 || d > 0.95 {
			t.Fatalf("divergence %s = %v, want the paper's 25%%-85%% band", pair, d)
		}
	}
}

func TestImbalanceRatio(t *testing.T) {
	w, err := Generate(DefaultConfig(60, platform.ChinesePlatforms, 35))
	if err != nil {
		t.Fatal(err)
	}
	st := Measure(w)
	// PrimaryBoost 2.5 vs 0.7 for others: the max/min post ratio should
	// clearly exceed 1 (data imbalance).
	if st.ImbalanceRatio < 1.5 {
		t.Fatalf("imbalance ratio = %v, expected visible data imbalance", st.ImbalanceRatio)
	}
}

func TestJaccardHelper(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := jaccard(a, b); got != 1.0/3 {
		t.Fatalf("jaccard = %v", got)
	}
	if jaccard(map[string]bool{}, map[string]bool{}) != 1 {
		t.Fatal("empty sets should be identical")
	}
}
