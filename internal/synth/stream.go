package synth

import (
	"fmt"
	"io"

	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// streamChunk is how many accounts GenerateStream renders per parallel
// batch before flushing them to the encoder. Bounds resident account
// memory regardless of world size while keeping the worker pool busy.
const streamChunk = 1024

// GenerateStream renders the same world Generate builds but writes it
// to w as it goes: the latent persons, real-world graph and per-platform
// friendship projections stay in memory (O(persons) — cheap), while the
// accounts carrying the bulk of a big world (posts, check-ins, media
// events) are rendered in bounded chunks and streamed out. The output is
// byte-identical to Encode over Generate's dataset, at any worker
// count — every account still comes from its own (platform, person)
// seeded stream, so chunking changes nothing.
func GenerateStream(cfg Config, w io.Writer) error {
	if cfg.Persons <= 0 {
		return fmt.Errorf("synth: Persons must be positive, got %d", cfg.Persons)
	}
	if len(cfg.Platforms) < 2 {
		return fmt.Errorf("synth: need at least 2 platforms, got %d", len(cfg.Platforms))
	}
	if !cfg.Span.Valid() {
		return fmt.Errorf("synth: invalid time span")
	}
	lx := BuildLexicons(cfg.Topics, cfg.WordsPerTopic)

	persons := make([]*Person, cfg.Persons)
	parallel.For(cfg.Workers, cfg.Persons, func(i int) {
		persons[i] = randPerson(subRNG(cfg.Seed, streamPerson, uint64(i)), i,
			cfg.Topics, len(cfg.Platforms), cfg.Communities)
	})
	real := realWorldGraph(persons, cfg)
	tilts := make(map[platform.ID]linalg.Vector, len(cfg.Platforms))
	for pi, pid := range cfg.Platforms {
		tilts[pid] = dirichlet(subRNG(cfg.Seed, streamTilt, uint64(pi)), cfg.Topics, 0.5)
	}

	// Encode emits platforms sorted by ID; the seeded streams are keyed
	// by the configured platform order (pIdx), so sort an index list and
	// keep each platform's original position for its streams.
	order := make([]int, len(cfg.Platforms))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && cfg.Platforms[order[j]] < cfg.Platforms[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	enc, err := platform.NewStreamEncoder(w, cfg.Span)
	if err != nil {
		return err
	}
	for _, pIdx := range order {
		if err := streamPlatform(enc, cfg.Platforms[pIdx], pIdx, persons, real, tilts[cfg.Platforms[pIdx]], lx, cfg); err != nil {
			return err
		}
	}
	return enc.Close()
}

// streamPlatform is projectPlatform's streaming twin: identical seeded
// streams (permutation, per-account, edge projection), but accounts are
// rendered a chunk at a time in local-id order and handed straight to
// the encoder instead of accumulating.
func streamPlatform(enc *platform.StreamEncoder, pid platform.ID, pIdx int, persons []*Person,
	real *graph.Graph, tilt linalg.Vector, lx *Lexicons, cfg Config) error {

	n := len(persons)
	lang := string(platform.LangOf(pid))
	corruption := cfg.UsernameCorruption
	if lang == "zh" {
		corruption *= 1.6 // Chinese platforms show heavier name divergence
	}

	perm := subRNG(cfg.Seed, streamPerm, uint64(pIdx)).Perm(n)
	localOf := make([]int, n)
	for local, person := range perm {
		localOf[person] = local
	}

	if err := enc.BeginPlatform(pid); err != nil {
		return err
	}
	chunk := make([]*platform.Account, streamChunk)
	for base := 0; base < n; base += streamChunk {
		m := streamChunk
		if base+m > n {
			m = n - base
		}
		parallel.For(cfg.Workers, m, func(i int) {
			local := base + i
			person := perm[local]
			chunk[i] = renderAccount(pid, pIdx, person, local, persons[person], tilt, lx, cfg, lang, corruption)
		})
		for i := 0; i < m; i++ {
			if err := enc.WriteAccount(chunk[i]); err != nil {
				return err
			}
			chunk[i] = nil
		}
	}

	g := graph.New(n)
	projectEdges(pIdx, localOf, real, cfg, g)
	return enc.EndPlatform(g)
}
