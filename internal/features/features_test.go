package features

import (
	"math"
	"testing"

	"hydra/internal/attr"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// worldAndPipeline builds a small synthetic world and a trained pipeline.
func worldAndPipeline(t *testing.T, persons int, seed int64) (*synth.World, *Pipeline) {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		t.Fatal(err)
	}
	// Labeled pairs for importance learning: true pairs plus shifted
	// negatives.
	var labeled []attr.LabeledPair
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	for person := 0; person < persons/2; person++ {
		a, _ := w.Dataset.AccountOf(person, platform.Twitter)
		b, _ := w.Dataset.AccountOf(person, platform.Facebook)
		bNeg, _ := w.Dataset.AccountOf((person+1)%persons, platform.Facebook)
		labeled = append(labeled,
			attr.LabeledPair{A: &tw.Accounts[a].Profile, B: &fb.Accounts[b].Profile, Positive: true},
			attr.LabeledPair{A: &tw.Accounts[a].Profile, B: &fb.Accounts[bNeg].Profile, Positive: false})
	}
	cfg := DefaultConfig(seed)
	cfg.LDAIterations = 25
	cfg.MaxLDADocs = 1500
	p, err := NewPipeline(w.Dataset, labeled, Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, p
}

func TestPipelineDim(t *testing.T) {
	_, p := worldAndPipeline(t, 30, 1)
	// 8 attrs + 1 face + 2 username + 3×6 scales + 3 style + 2×5 mr = 42.
	want := 8 + 1 + 2 + 18 + 3 + 10
	if p.Dim() != want {
		t.Fatalf("Dim = %d, want %d", p.Dim(), want)
	}
	if len(p.FeatureNames()) != want || len(p.FeatureGroups()) != want {
		t.Fatal("names/groups length mismatch")
	}
}

func TestPairVectorSanity(t *testing.T) {
	w, p := worldAndPipeline(t, 30, 2)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	a, _ := w.Dataset.AccountOf(3, platform.Twitter)
	b, _ := w.Dataset.AccountOf(3, platform.Facebook)
	va := p.BuildView(tw.Accounts[a])
	vb := p.BuildView(fb.Accounts[b])
	pv := p.Pair(va, vb)
	if len(pv.X) != p.Dim() || len(pv.Mask) != p.Dim() {
		t.Fatal("pair vector shape wrong")
	}
	for i := range pv.X {
		if math.IsNaN(pv.X[i]) || math.IsInf(pv.X[i], 0) {
			t.Fatalf("feature %s is %v", p.FeatureNames()[i], pv.X[i])
		}
		if !pv.Mask[i] && pv.X[i] != 0 {
			t.Fatalf("missing feature %s has nonzero value", p.FeatureNames()[i])
		}
	}
	if pv.ObservedFraction() == 0 {
		t.Fatal("no observed features at all")
	}
}

func TestSamePersonPairsScoreHigher(t *testing.T) {
	w, p := worldAndPipeline(t, 40, 3)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)

	views := make(map[string]*AccountView)
	view := func(pl *platform.Platform, local int) *AccountView {
		key := string(pl.ID) + ":" + string(rune(local))
		if v, ok := views[key]; ok {
			return v
		}
		v := p.BuildView(pl.Accounts[local])
		views[key] = v
		return v
	}

	var posSum, negSum float64
	n := 25
	for person := 0; person < n; person++ {
		a, _ := w.Dataset.AccountOf(person, platform.Twitter)
		b, _ := w.Dataset.AccountOf(person, platform.Facebook)
		bn, _ := w.Dataset.AccountOf((person+7)%40, platform.Facebook)
		pos := p.Pair(view(tw, a), view(fb, b))
		neg := p.Pair(view(tw, a), view(fb, bn))
		posSum += pos.X.Sum()
		negSum += neg.X.Sum()
	}
	if posSum <= negSum {
		t.Fatalf("positive pairs should dominate: pos=%v neg=%v", posSum, negSum)
	}
}

func TestEmbeddingShape(t *testing.T) {
	w, p := worldAndPipeline(t, 20, 4)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	v := p.BuildView(tw.Accounts[0])
	wantDim := p.cfg.Topics + 17 + 4 // topics + genres + sentiments
	if len(v.Embedding) != wantDim {
		t.Fatalf("embedding dim = %d, want %d", len(v.Embedding), wantDim)
	}
	for _, x := range v.Embedding {
		if math.IsNaN(x) || x < 0 {
			t.Fatalf("bad embedding entry %v", x)
		}
	}
}

func TestEmbeddingSimilarForSamePerson(t *testing.T) {
	w, p := worldAndPipeline(t, 40, 5)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	var sameDist, diffDist float64
	count := 0
	for person := 0; person < 20; person++ {
		a, _ := w.Dataset.AccountOf(person, platform.Twitter)
		b, _ := w.Dataset.AccountOf(person, platform.Facebook)
		c, _ := w.Dataset.AccountOf((person+11)%40, platform.Facebook)
		va := p.BuildView(tw.Accounts[a])
		vb := p.BuildView(fb.Accounts[b])
		vc := p.BuildView(fb.Accounts[c])
		if len(tw.Accounts[a].Posts) < 3 || len(fb.Accounts[b].Posts) < 3 || len(fb.Accounts[c].Posts) < 3 {
			continue
		}
		sameDist += va.Embedding.Sub(vb.Embedding).Norm()
		diffDist += va.Embedding.Sub(vc.Embedding).Norm()
		count++
	}
	if count == 0 {
		t.Skip("no active triples")
	}
	if sameDist >= diffDist {
		t.Fatalf("same-person embeddings should be closer: same=%v diff=%v", sameDist, diffDist)
	}
}

func TestStyleSim(t *testing.T) {
	ua := []string{"zork", "quux", "flib"}
	ub := []string{"zork", "blat", "quux"}
	if got := styleSim(ua, ub, 1); got != 1 {
		t.Fatalf("k=1 sim = %v", got)
	}
	if got := styleSim(ua, ub, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("k=3 sim = %v", got)
	}
	// k beyond length uses available words but divides by k.
	if got := styleSim(ua, ub, 5); math.Abs(got-2.0/5) > 1e-12 {
		t.Fatalf("k=5 sim = %v", got)
	}
}

func TestNewPipelineValidation(t *testing.T) {
	w, _ := worldAndPipeline(t, 10, 6)
	cfg := DefaultConfig(1)
	cfg.ScalesDays = nil
	_, err := NewPipeline(w.Dataset, nil, Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment}, cfg)
	if err == nil {
		t.Fatal("expected error for empty scales")
	}
}

func TestPipelineOnEmptyCorpus(t *testing.T) {
	w, err := synth.Generate(synth.DefaultConfig(5, platform.EnglishPlatforms, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Strip all posts.
	for _, pl := range w.Dataset.Platforms {
		for _, acc := range pl.Accounts {
			acc.Posts = nil
		}
	}
	_, err = NewPipeline(w.Dataset, nil, Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment}, DefaultConfig(1))
	if err == nil {
		t.Fatal("expected error when no posts exist")
	}
}
