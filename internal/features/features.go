// Package features assembles HYDRA's heterogeneous behavior model (paper
// Section 5): given two accounts on different platforms it produces the
// D-dimensional pairwise similarity vector x_ii' combining
//
//   - importance-weighted attribute matching (Section 5.1, Eqn 3),
//   - the simulated face-matching feature (Figure 4),
//   - username similarity (used by rule-based filtering and as a feature),
//   - multi-scale long-term topic/genre/sentiment distribution similarity
//     (Section 5.2, Figure 5),
//   - unique-word style similarity at k = 1,3,5 (Section 5.3, Eqn 4),
//   - multi-resolution temporal behavior matching with lq-pooling and
//     sigmoid calibration (Section 5.4, Figure 6, Eqn 5).
//
// Every feature carries an observation mask: HYDRA-M and HYDRA-Z differ
// only in how the False entries are imputed.
package features

import (
	"fmt"
	"sort"
	"time"

	"hydra/internal/attr"
	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/temporal"
	"hydra/internal/text"
	"hydra/internal/topic"
	"hydra/internal/vision"
)

// Config parameterizes the pipeline.
type Config struct {
	// Topics is the LDA topic count.
	Topics int
	// LDAIterations is the Gibbs sweep count for training.
	LDAIterations int
	// MaxLDADocs caps the LDA training corpus size (subsampled
	// deterministically) to bound preprocessing cost.
	MaxLDADocs int
	// ScalesDays are the multi-scale topic bucket scales (paper: 1..32).
	ScalesDays []int
	// StyleKs are the unique-word counts of the style model (paper: 1,3,5).
	StyleKs []int
	// UniqueWordsPerUser is how many candidate unique words are kept per
	// user (max of StyleKs).
	UniqueWordsPerUser int
	// MR configures the multi-resolution sensor bank.
	MR temporal.MultiResolutionConfig
	// LocationSigmaKm is the Gaussian bandwidth of the location sensor.
	LocationSigmaKm float64
	// UseHistogramIntersection switches the topic-similarity kernel from
	// chi-square (default) to histogram intersection (ablation).
	UseHistogramIntersection bool
	// Epsilon is the attribute-importance smoothing constant ε of Eqn 3.
	Epsilon float64
	Seed    int64
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Topics:             8,
		LDAIterations:      60,
		MaxLDADocs:         4000,
		ScalesDays:         temporal.DefaultScalesDays,
		StyleKs:            []int{1, 3, 5},
		UniqueWordsPerUser: 5,
		MR:                 temporal.DefaultMultiResolutionConfig(),
		LocationSigmaKm:    5,
		Epsilon:            1e-3,
		Seed:               seed,
	}
}

// Pipeline is the trained feature extractor shared by HYDRA and the SVM-B
// baseline. Build it once per dataset with NewPipeline, then derive
// AccountViews and pair vectors.
type Pipeline struct {
	cfg        Config
	span       temporal.Range
	importance *attr.Importance
	faces      *vision.Matcher
	lda        *topic.LDA
	vocab      *text.Vocabulary
	genre      *topic.GenreModel
	sent       *topic.SentimentModel
	topicSim   temporal.Similarity
	sensors    []temporal.Sensor
	names      []string
	groups     []string
}

// Lexicons is the subset of synth lexicon data the pipeline needs. It is a
// local type so features does not depend on the generator package.
type Lexicons struct {
	Genre     map[string]string
	Sentiment map[string]topic.AVPoint
}

// NewPipeline trains the pipeline: attribute importance from the labeled
// pairs, LDA on the dataset's post corpus, and lexicon models from lx.
func NewPipeline(ds *platform.Dataset, labeled []attr.LabeledPair, lx Lexicons, cfg Config) (*Pipeline, error) {
	if len(cfg.ScalesDays) == 0 {
		return nil, fmt.Errorf("features: no temporal scales configured")
	}
	imp, err := attr.LearnImportance(labeled, platform.MatchAttrs, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	gm, err := topic.NewGenreModel(lx.Genre)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:        cfg,
		span:       ds.Span,
		importance: imp,
		faces:      vision.NewMatcher(cfg.Seed),
		genre:      gm,
		sent:       topic.NewSentimentModel(lx.Sentiment),
		sensors:    pairSensors(cfg),
	}
	p.topicSim = topicSimFor(cfg)
	if err := p.trainLDA(ds); err != nil {
		return nil, err
	}
	p.buildNames()
	return p, nil
}

// pairSensors builds the multi-resolution sensor bank from the config —
// shared by the trained pipeline and the query-only restored one.
func pairSensors(cfg Config) []temporal.Sensor {
	return []temporal.Sensor{
		temporal.LocationSensor{SigmaKm: cfg.LocationSigmaKm},
		temporal.MediaSensor{},
	}
}

// topicSimFor selects the per-bucket distribution-similarity kernel.
func topicSimFor(cfg Config) temporal.Similarity {
	if cfg.UseHistogramIntersection {
		k := kernel.HistogramIntersection{}
		return func(a, b linalg.Vector) float64 { return k.Eval(a, b) }
	}
	k := kernel.NewChiSquare(1)
	return func(a, b linalg.Vector) float64 { return k.Eval(a, b) }
}

// trainLDA builds the vocabulary and topic model from the dataset corpus.
func (p *Pipeline) trainLDA(ds *platform.Dataset) error {
	p.vocab = text.NewVocabulary()
	var docs [][]int
	// Platforms in sorted order for determinism.
	ids := make([]platform.ID, 0, len(ds.Platforms))
	for id := range ds.Platforms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, acc := range ds.Platforms[id].Accounts {
			for _, post := range acc.Posts {
				toks := text.Tokenize(post.Text)
				docs = append(docs, p.vocab.AddDoc(toks))
			}
		}
	}
	if len(docs) == 0 {
		return fmt.Errorf("features: dataset has no posts to train LDA on")
	}
	train := docs
	if p.cfg.MaxLDADocs > 0 && len(docs) > p.cfg.MaxLDADocs {
		// Deterministic stride subsample.
		stride := len(docs) / p.cfg.MaxLDADocs
		train = train[:0:0]
		for i := 0; i < len(docs); i += stride {
			train = append(train, docs[i])
		}
	}
	lda, err := topic.TrainLDA(train, topic.LDAOpts{
		Topics:     p.cfg.Topics,
		VocabSize:  p.vocab.Size(),
		Iterations: p.cfg.LDAIterations,
		Seed:       p.cfg.Seed,
	})
	if err != nil {
		return err
	}
	p.lda = lda
	return nil
}

// buildNames constructs the feature-name table; len(names) is the feature
// dimension D.
func (p *Pipeline) buildNames() {
	add := func(group, name string) {
		p.groups = append(p.groups, group)
		p.names = append(p.names, name)
	}
	for _, a := range platform.MatchAttrs {
		add("attr", "attr:"+string(a))
	}
	add("face", "face")
	add("username", "username:jw")
	add("username", "username:overlap")
	for _, d := range p.cfg.ScalesDays {
		add("topic", fmt.Sprintf("topic:%dd", d))
	}
	for _, d := range p.cfg.ScalesDays {
		add("genre", fmt.Sprintf("genre:%dd", d))
	}
	for _, d := range p.cfg.ScalesDays {
		add("sentiment", fmt.Sprintf("sentiment:%dd", d))
	}
	for _, k := range p.cfg.StyleKs {
		add("style", fmt.Sprintf("style:k%d", k))
	}
	for _, s := range p.sensors {
		for _, w := range p.cfg.MR.WindowsDays {
			add("mr", fmt.Sprintf("mr:%s:%dd", s.Name(), w))
		}
	}
}

// Dim returns the feature dimension D.
func (p *Pipeline) Dim() int { return len(p.names) }

// FeatureNames returns the ordered feature names.
func (p *Pipeline) FeatureNames() []string { return p.names }

// FeatureGroups returns the group label of each feature dimension.
func (p *Pipeline) FeatureGroups() []string { return p.groups }

// Importance exposes the learned attribute-importance model.
func (p *Pipeline) Importance() *attr.Importance { return p.importance }

// AccountView is the per-account preprocessed state: per-post distributions,
// unique words, and the behavior embedding used by structure consistency.
type AccountView struct {
	Acc        *platform.Account
	PostTimes  []time.Time
	TopicDists []linalg.Vector
	GenreDists []linalg.Vector
	SentDists  []linalg.Vector
	// Unique are the account's most unique words, most-unique first.
	Unique []string
	// Embedding is the long-term behavior representation x_i of the user —
	// aggregated topic, genre and sentiment distributions — used by the
	// structure-consistency affinities (Eqn 9).
	Embedding linalg.Vector
}

// tokDoc is one tokenized post with its vocabulary ids.
type tokDoc struct {
	toks []string
	ids  []int
}

// BuildView preprocesses one account. It needs the view-construction
// models (LDA, vocabulary, lexicons), so it must not be called on a
// query-only pipeline restored via PipelineFromParts.
func (p *Pipeline) BuildView(acc *platform.Account) *AccountView {
	if p.lda == nil {
		panic("features: BuildView on a query-only pipeline (restored via PipelineFromParts); snapshot views instead")
	}
	v := &AccountView{Acc: acc}
	var docs []tokDoc
	for _, post := range acc.Posts {
		toks := text.Tokenize(post.Text)
		ids := make([]int, 0, len(toks))
		for _, tk := range toks {
			if id, ok := p.vocab.Lookup(tk); ok {
				ids = append(ids, id)
			}
		}
		docs = append(docs, tokDoc{toks: toks, ids: ids})
		v.PostTimes = append(v.PostTimes, post.Time)
	}
	for i, d := range docs {
		v.TopicDists = append(v.TopicDists, p.lda.Infer(d.ids, 15, p.cfg.Seed+int64(acc.Local)*31+int64(i)))
		v.GenreDists = append(v.GenreDists, p.genre.Classify(d.toks))
		v.SentDists = append(v.SentDists, p.sent.Classify(d.toks))
	}
	v.Unique = p.uniqueWords(docs)
	v.Embedding = p.embedding(v)
	return v
}

// uniqueWords ranks the account's tokens by ascending global corpus
// frequency (stop words removed) and returns the most unique ones.
func (p *Pipeline) uniqueWords(docs []tokDoc) []string {
	type cand struct {
		tok  string
		freq int
	}
	seen := make(map[string]bool)
	var cands []cand
	for _, d := range docs {
		for _, tk := range d.toks {
			if seen[tk] || text.IsStopword(tk) {
				continue
			}
			seen[tk] = true
			norm := text.Singularize(tk)
			id, ok := p.vocab.Lookup(tk)
			freq := 0
			if ok {
				freq = p.vocab.TermFreq(id)
			}
			cands = append(cands, cand{tok: norm, freq: freq})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].freq != cands[j].freq {
			return cands[i].freq < cands[j].freq
		}
		return cands[i].tok < cands[j].tok
	})
	k := p.cfg.UniqueWordsPerUser
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].tok
	}
	return out
}

// embedding aggregates the account's distributions into the long-term
// behavior representation.
func (p *Pipeline) embedding(v *AccountView) linalg.Vector {
	tk := meanDist(v.TopicDists, p.cfg.Topics)
	gn := meanDist(v.GenreDists, len(topic.Genres))
	st := meanDist(v.SentDists, len(topic.Sentiments))
	out := make(linalg.Vector, 0, len(tk)+len(gn)+len(st))
	out = append(out, tk...)
	out = append(out, gn...)
	out = append(out, st...)
	return out
}

func meanDist(dists []linalg.Vector, dim int) linalg.Vector {
	if len(dists) == 0 {
		return linalg.NewVector(dim).Fill(1 / float64(dim))
	}
	acc := linalg.NewVector(dim)
	for _, d := range dists {
		acc.AddScaled(1, d)
	}
	return acc.Scale(1 / float64(len(dists)))
}

// PairVector is one observation: the similarity vector and its mask.
type PairVector struct {
	X    linalg.Vector
	Mask []bool
}

// ObservedFraction returns the share of observed dimensions.
func (pv PairVector) ObservedFraction() float64 {
	if len(pv.Mask) == 0 {
		return 0
	}
	n := 0
	for _, m := range pv.Mask {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(pv.Mask))
}

// Pair computes the full heterogeneous similarity vector between two
// account views (accounts must be on different platforms; the method does
// not enforce it).
func (p *Pipeline) Pair(a, b *AccountView) PairVector {
	dim := p.Dim()
	x := linalg.NewVector(dim)
	mask := make([]bool, dim)
	idx := 0

	// 1. Attributes.
	av, am := p.importance.PairFeatures(&a.Acc.Profile, &b.Acc.Profile)
	copy(x[idx:], av)
	copy(mask[idx:], am)
	idx += len(av)

	// 2. Face.
	if score, ok := p.faces.Match(a.Acc.Profile.AvatarID, b.Acc.Profile.AvatarID); ok {
		x[idx] = score
		mask[idx] = true
	}
	idx++

	// 3. Username similarity (always observed).
	ua, ub := a.Acc.Profile.Username, b.Acc.Profile.Username
	x[idx] = text.JaroWinkler(ua, ub)
	mask[idx] = true
	idx++
	x[idx] = text.UsernameOverlap(ua, ub)
	mask[idx] = true
	idx++

	// 4-6. Multi-scale distribution similarities.
	idx = p.multiScale(x, mask, idx, a.PostTimes, a.TopicDists, b.PostTimes, b.TopicDists)
	idx = p.multiScale(x, mask, idx, a.PostTimes, a.GenreDists, b.PostTimes, b.GenreDists)
	idx = p.multiScale(x, mask, idx, a.PostTimes, a.SentDists, b.PostTimes, b.SentDists)

	// 7. Style: S_lea = #matched / k for k in StyleKs (Eqn 4). Missing when
	// either account has no unique words at all (no posts).
	for _, k := range p.cfg.StyleKs {
		if len(a.Unique) == 0 || len(b.Unique) == 0 {
			idx++
			continue
		}
		x[idx] = styleSim(a.Unique, b.Unique, k)
		mask[idx] = true
		idx++
	}

	// 8. Multi-resolution behavior matching.
	mr, mrMask, err := temporal.MultiResolutionMatch(p.sensors, p.cfg.MR, a.Acc.Events, b.Acc.Events)
	if err == nil {
		copy(x[idx:], mr)
		copy(mask[idx:], mrMask)
	}
	idx += len(p.sensors) * len(p.cfg.MR.WindowsDays)

	if idx != dim {
		panic(fmt.Sprintf("features: assembled %d dims, expected %d", idx, dim))
	}
	return PairVector{X: x, Mask: mask}
}

// multiScale writes the per-scale similarity features starting at idx and
// returns the next index.
func (p *Pipeline) multiScale(x linalg.Vector, mask []bool, idx int,
	ta []time.Time, da []linalg.Vector, tb []time.Time, db []linalg.Vector) int {

	vec, m, err := temporal.MultiScaleSimilarity(p.span, p.cfg.ScalesDays, ta, da, tb, db, p.topicSim)
	if err == nil {
		copy(x[idx:], vec)
		copy(mask[idx:], m)
	}
	return idx + len(p.cfg.ScalesDays)
}

// styleSim computes Eqn 4 over the k most unique words of each side.
func styleSim(ua, ub []string, k int) float64 {
	ka, kb := k, k
	if ka > len(ua) {
		ka = len(ua)
	}
	if kb > len(ub) {
		kb = len(ub)
	}
	set := make(map[string]bool, ka)
	for _, w := range ua[:ka] {
		set[w] = true
	}
	matched := 0
	for _, w := range ub[:kb] {
		if set[w] {
			matched++
		}
	}
	return float64(matched) / float64(k)
}
