// The view/pipeline codec is the feature layer's half of self-contained
// serving bundles: it reduces a trained Pipeline and its AccountViews to
// plain exported data that marshals to JSON losslessly (Go encodes
// float64 with the shortest decimal that uniquely identifies the bits)
// and rebuilds a query-only pipeline plus views that produce bit-
// identical Pair vectors — without the dataset, the LDA model or the
// vocabulary, none of which Pair reads.

package features

import (
	"fmt"
	"time"

	"hydra/internal/attr"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/temporal"
	"hydra/internal/vision"
)

// PipelineParts is the serializable state of a trained Pipeline: exactly
// what Pair needs at query time. The LDA/vocabulary/lexicon models are
// deliberately excluded — they are view-construction machinery, and a
// snapshot store never builds views.
type PipelineParts struct {
	Cfg        Config           `json:"cfg"`
	Span       temporal.Range   `json:"span"`
	Importance *attr.Importance `json:"importance"`
}

// Parts extracts the pipeline's serializable query-time state.
func (p *Pipeline) Parts() PipelineParts {
	return PipelineParts{Cfg: p.cfg, Span: p.span, Importance: p.importance}
}

// PipelineFromParts rebuilds a query-only pipeline: Pair, Dim,
// FeatureNames, FeatureGroups and Importance behave exactly as on the
// trained original, but BuildView panics — a restored pipeline pairs
// snapshotted views, it does not construct new ones.
func PipelineFromParts(parts PipelineParts) (*Pipeline, error) {
	cfg := parts.Cfg
	if len(cfg.ScalesDays) == 0 {
		return nil, fmt.Errorf("features: no temporal scales configured")
	}
	if parts.Importance == nil {
		return nil, fmt.Errorf("features: pipeline parts have no attribute-importance model")
	}
	if !parts.Span.Valid() {
		return nil, fmt.Errorf("features: pipeline parts have an invalid observation span")
	}
	p := &Pipeline{
		cfg:        cfg,
		span:       parts.Span,
		importance: parts.Importance,
		faces:      vision.NewMatcher(cfg.Seed),
		sensors:    pairSensors(cfg),
	}
	p.topicSim = topicSimFor(cfg)
	p.buildNames()
	return p, nil
}

// ViewParts is the serializable per-account state: the profile fields and
// precomputed distributions Pair reads, and nothing else. Posts (raw
// text) and the ground-truth person id deliberately never enter a
// snapshot — a serving bundle carries behavior *summaries*, not behavior
// data or labels.
type ViewParts struct {
	Username   string                       `json:"username"`
	Attrs      map[platform.AttrName]string `json:"attrs,omitempty"`
	AvatarID   uint64                       `json:"avatar_id,omitempty"`
	Events     []temporal.Event             `json:"events,omitempty"`
	PostTimes  []time.Time                  `json:"post_times,omitempty"`
	TopicDists []linalg.Vector              `json:"topic_dists,omitempty"`
	GenreDists []linalg.Vector              `json:"genre_dists,omitempty"`
	SentDists  []linalg.Vector              `json:"sent_dists,omitempty"`
	Unique     []string                     `json:"unique,omitempty"`
	Embedding  linalg.Vector                `json:"embedding"`
}

// SnapshotView reduces one built view to its serializable parts. The
// parts share the view's slices; treat both as read-only afterwards.
func SnapshotView(v *AccountView) ViewParts {
	return ViewParts{
		Username:   v.Acc.Profile.Username,
		Attrs:      v.Acc.Profile.Attrs,
		AvatarID:   v.Acc.Profile.AvatarID,
		Events:     v.Acc.Events,
		PostTimes:  v.PostTimes,
		TopicDists: v.TopicDists,
		GenreDists: v.GenreDists,
		SentDists:  v.SentDists,
		Unique:     v.Unique,
		Embedding:  v.Embedding,
	}
}

// RestoreView rebuilds an AccountView from its parts. The reconstructed
// account carries only what Pair reads (profile and events); its Person
// is -1 because snapshots never ship ground truth.
func RestoreView(parts ViewParts, id platform.ID, local int) *AccountView {
	attrs := parts.Attrs
	if attrs == nil {
		attrs = make(map[platform.AttrName]string)
	}
	return &AccountView{
		Acc: &platform.Account{
			Platform: id,
			Local:    local,
			Person:   -1,
			Profile: platform.Profile{
				Username: parts.Username,
				Attrs:    attrs,
				AvatarID: parts.AvatarID,
			},
			Events: parts.Events,
		},
		PostTimes:  parts.PostTimes,
		TopicDists: parts.TopicDists,
		GenreDists: parts.GenreDists,
		SentDists:  parts.SentDists,
		Unique:     parts.Unique,
		Embedding:  parts.Embedding,
	}
}
