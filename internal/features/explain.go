package features

import (
	"fmt"
	"sort"
	"strings"
)

// Contribution is one feature's value in a pair vector, annotated for
// human consumption.
type Contribution struct {
	Name     string
	Group    string
	Value    float64
	Observed bool
}

// Explain annotates a pair vector with the pipeline's feature names — the
// debugging view of "why does HYDRA think these two accounts match".
func (p *Pipeline) Explain(pv PairVector) ([]Contribution, error) {
	if len(pv.X) != p.Dim() || len(pv.Mask) != p.Dim() {
		return nil, fmt.Errorf("features: pair vector has %d dims, pipeline expects %d", len(pv.X), p.Dim())
	}
	out := make([]Contribution, p.Dim())
	for d := 0; d < p.Dim(); d++ {
		out[d] = Contribution{
			Name:     p.names[d],
			Group:    p.groups[d],
			Value:    pv.X[d],
			Observed: pv.Mask[d],
		}
	}
	return out, nil
}

// FormatContributions renders contributions sorted by descending value,
// marking missing features.
func FormatContributions(cs []Contribution) string {
	sorted := append([]Contribution(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value > sorted[j].Value
		}
		return sorted[i].Name < sorted[j].Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-10s %10s %8s\n", "feature", "group", "value", "observed")
	for _, c := range sorted {
		obs := "yes"
		if !c.Observed {
			obs = "MISSING"
		}
		fmt.Fprintf(&b, "%-24s %-10s %10.4f %8s\n", c.Name, c.Group, c.Value, obs)
	}
	return b.String()
}
