package features

import (
	"math"
	"strings"
	"testing"

	"hydra/internal/platform"
)

func TestExplain(t *testing.T) {
	w, p := worldAndPipeline(t, 20, 41)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	pv := p.Pair(p.BuildView(tw.Accounts[0]), p.BuildView(fb.Accounts[0]))
	cs, err := p.Explain(pv)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != p.Dim() {
		t.Fatalf("contributions = %d, want %d", len(cs), p.Dim())
	}
	for i, c := range cs {
		if c.Name != p.FeatureNames()[i] || c.Group != p.FeatureGroups()[i] {
			t.Fatal("name/group misaligned")
		}
		if c.Value != pv.X[i] || c.Observed != pv.Mask[i] {
			t.Fatal("value/mask misaligned")
		}
	}
	out := FormatContributions(cs)
	if !strings.Contains(out, "feature") {
		t.Fatal("format header missing")
	}
	// Missing features must be marked.
	anyMissing := false
	for _, c := range cs {
		if !c.Observed {
			anyMissing = true
		}
	}
	if anyMissing && !strings.Contains(out, "MISSING") {
		t.Fatal("missing marker absent")
	}
}

func TestExplainDimMismatch(t *testing.T) {
	_, p := worldAndPipeline(t, 10, 43)
	if _, err := p.Explain(PairVector{X: make([]float64, 3), Mask: make([]bool, 3)}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

// Property: the pair vector is symmetric — Pair(a,b) equals Pair(b,a) in
// every dimension and mask bit. All component similarities are symmetric
// functions, so asymmetry would indicate an assembly bug.
func TestPairSymmetryProperty(t *testing.T) {
	w, p := worldAndPipeline(t, 24, 47)
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	for trial := 0; trial < 12; trial++ {
		a := (trial * 7) % 24
		b := (trial * 5) % 24
		va := p.BuildView(tw.Accounts[a])
		vb := p.BuildView(fb.Accounts[b])
		ab := p.Pair(va, vb)
		ba := p.Pair(vb, va)
		for d := range ab.X {
			if ab.Mask[d] != ba.Mask[d] {
				t.Fatalf("mask asymmetry at %s for pair (%d,%d)", p.FeatureNames()[d], a, b)
			}
			if math.Abs(ab.X[d]-ba.X[d]) > 1e-9 {
				t.Fatalf("value asymmetry at %s: %v vs %v", p.FeatureNames()[d], ab.X[d], ba.X[d])
			}
		}
	}
}

func TestHistogramIntersectionPipeline(t *testing.T) {
	// The ablation kernel path must produce a working pipeline too.
	w, _ := worldAndPipeline(t, 16, 49)
	cfg := DefaultConfig(49)
	cfg.LDAIterations = 10
	cfg.MaxLDADocs = 500
	cfg.UseHistogramIntersection = true
	p, err := NewPipeline(w.Dataset, nil, Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := w.Dataset.Platform(platform.Twitter)
	fb, _ := w.Dataset.Platform(platform.Facebook)
	pv := p.Pair(p.BuildView(tw.Accounts[1]), p.BuildView(fb.Accounts[1]))
	if pv.ObservedFraction() == 0 {
		t.Fatal("hist-intersect pipeline produced nothing")
	}
}
