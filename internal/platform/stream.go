package platform

import (
	"encoding/json"
	"fmt"
	"io"

	"hydra/internal/graph"
	"hydra/internal/temporal"
)

// StreamEncoder writes a dataset in Encode's exact wire format without
// ever holding more than one account in memory: the container
// punctuation is written by hand, each element goes through the same
// wire structs and json.Marshal as Encode, so the output is
// byte-for-byte what Encode would produce for the same dataset —
// including `null` for arrays Encode leaves nil. hydra-gen -stream uses
// it to write worlds much larger than RAM.
//
// Call order: BeginPlatform, WriteAccount×N, EndPlatform — repeated per
// platform in ascending ID order (Encode sorts) — then Close. Errors
// are sticky; every call after a failure returns the first error.
type StreamEncoder struct {
	w      io.Writer
	err    error
	nPlat  int
	nAcc   int
	inPlat bool
	closed bool
}

// NewStreamEncoder starts a dataset stream on w, writing the span
// header immediately.
func NewStreamEncoder(w io.Writer, span temporal.Range) (*StreamEncoder, error) {
	e := &StreamEncoder{w: w}
	e.writeString(`{"span_start":`)
	e.writeJSON(span.Start)
	e.writeString(`,"span_end":`)
	e.writeJSON(span.End)
	e.writeString(`,"platforms":`)
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// BeginPlatform opens the next platform object. Platforms must arrive
// in ascending ID order to match Encode's sorted output.
func (e *StreamEncoder) BeginPlatform(id ID) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return e.fail(fmt.Errorf("platform: BeginPlatform after Close"))
	}
	if e.inPlat {
		return e.fail(fmt.Errorf("platform: BeginPlatform without EndPlatform"))
	}
	if e.nPlat == 0 {
		e.writeString(`[`)
	} else {
		e.writeString(`,`)
	}
	e.writeString(`{"id":`)
	e.writeJSON(id)
	e.writeString(`,"accounts":`)
	e.nPlat++
	e.nAcc = 0
	e.inPlat = true
	return e.err
}

// WriteAccount appends one account to the open platform. Accounts must
// arrive in local-id order (Encode emits them that way).
func (e *StreamEncoder) WriteAccount(acc *Account) error {
	if e.err != nil {
		return e.err
	}
	if !e.inPlat {
		return e.fail(fmt.Errorf("platform: WriteAccount outside a platform"))
	}
	if e.nAcc == 0 {
		e.writeString(`[`)
	} else {
		e.writeString(`,`)
	}
	e.writeJSON(renderAccount(acc))
	e.nAcc++
	return e.err
}

// EndPlatform closes the open platform, writing its friendship edges
// from g in the canonical wire order.
func (e *StreamEncoder) EndPlatform(g *graph.Graph) error {
	if e.err != nil {
		return e.err
	}
	if !e.inPlat {
		return e.fail(fmt.Errorf("platform: EndPlatform outside a platform"))
	}
	if e.nAcc == 0 {
		e.writeString(`null`)
	} else {
		e.writeString(`]`)
	}
	e.writeString(`,"edges":`)
	nEdges := 0
	forEachWireEdge(g, func(we wireEdge) error {
		if nEdges == 0 {
			e.writeString(`[`)
		} else {
			e.writeString(`,`)
		}
		e.writeJSON(we)
		nEdges++
		return e.err
	})
	if nEdges == 0 {
		e.writeString(`null`)
	} else {
		e.writeString(`]`)
	}
	e.writeString(`}`)
	e.inPlat = false
	return e.err
}

// Close terminates the stream (trailing newline included, matching
// json.Encoder).
func (e *StreamEncoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.inPlat {
		return e.fail(fmt.Errorf("platform: Close with an open platform"))
	}
	if e.closed {
		return nil
	}
	if e.nPlat == 0 {
		e.writeString(`null`)
	} else {
		e.writeString(`]`)
	}
	e.writeString("}\n")
	e.closed = true
	return e.err
}

func (e *StreamEncoder) fail(err error) error {
	e.err = err
	return err
}

func (e *StreamEncoder) writeString(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

// writeJSON marshals one element exactly as json.Encoder would (Marshal
// and Encoder share escaping rules), so element bytes match Encode.
func (e *StreamEncoder) writeJSON(v any) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		e.err = err
		return
	}
	_, e.err = e.w.Write(b)
}
