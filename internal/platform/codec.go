package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"hydra/internal/graph"
	"hydra/internal/temporal"
)

// The wire types below flatten Dataset into plain JSON for cmd/hydra-gen.

type wireEdge struct {
	U, V int
	W    float64
}

type wireEvent struct {
	Time    time.Time `json:"time"`
	Lat     float64   `json:"lat,omitempty"`
	Lon     float64   `json:"lon,omitempty"`
	MediaID uint64    `json:"media_id,omitempty"`
}

type wirePost struct {
	Time time.Time `json:"time"`
	Text string    `json:"text"`
}

type wireAccount struct {
	Local    int                 `json:"local"`
	Person   int                 `json:"person"`
	Username string              `json:"username"`
	Attrs    map[AttrName]string `json:"attrs,omitempty"`
	AvatarID uint64              `json:"avatar_id,omitempty"`
	Posts    []wirePost          `json:"posts,omitempty"`
	Events   []wireEvent         `json:"events,omitempty"`
}

type wirePlatform struct {
	ID       ID            `json:"id"`
	Accounts []wireAccount `json:"accounts"`
	Edges    []wireEdge    `json:"edges"`
}

type wireDataset struct {
	SpanStart time.Time      `json:"span_start"`
	SpanEnd   time.Time      `json:"span_end"`
	Platforms []wirePlatform `json:"platforms"`
}

// renderAccount flattens one account into its wire form — shared by
// Encode and StreamEncoder so the two serialization paths cannot drift.
func renderAccount(acc *Account) wireAccount {
	wa := wireAccount{
		Local:    acc.Local,
		Person:   acc.Person,
		Username: acc.Profile.Username,
		Attrs:    acc.Profile.Attrs,
		AvatarID: acc.Profile.AvatarID,
	}
	for _, post := range acc.Posts {
		wa.Posts = append(wa.Posts, wirePost{Time: post.Time, Text: post.Text})
	}
	for _, ev := range acc.Events {
		wa.Events = append(wa.Events, wireEvent{Time: ev.Time, Lat: ev.Lat, Lon: ev.Lon, MediaID: ev.MediaID})
	}
	return wa
}

// forEachWireEdge visits a platform graph's edges in the canonical wire
// order (ascending u, then adjacency order, u < v once per edge) —
// shared by Encode and StreamEncoder.
func forEachWireEdge(g *graph.Graph, fn func(wireEdge) error) error {
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if err := fn(wireEdge{U: u, V: v, W: g.Weight(u, v)}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Encode writes the dataset as JSON to w.
func Encode(w io.Writer, d *Dataset) error {
	wd := wireDataset{SpanStart: d.Span.Start, SpanEnd: d.Span.End}
	ids := make([]ID, 0, len(d.Platforms))
	for id := range d.Platforms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := d.Platforms[id]
		wp := wirePlatform{ID: p.ID}
		for _, acc := range p.Accounts {
			wp.Accounts = append(wp.Accounts, renderAccount(acc))
		}
		forEachWireEdge(p.Graph, func(e wireEdge) error {
			wp.Edges = append(wp.Edges, e)
			return nil
		})
		wd.Platforms = append(wd.Platforms, wp)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wd)
}

// Decode reads a dataset previously written by Encode.
func Decode(r io.Reader) (*Dataset, error) {
	var wd wireDataset
	if err := json.NewDecoder(r).Decode(&wd); err != nil {
		return nil, fmt.Errorf("platform: decode dataset: %w", err)
	}
	d := NewDataset(temporal.Range{Start: wd.SpanStart, End: wd.SpanEnd})
	for _, wp := range wd.Platforms {
		p := &Platform{ID: wp.ID, Graph: graph.New(len(wp.Accounts))}
		for i, wa := range wp.Accounts {
			if wa.Local != i {
				return nil, fmt.Errorf("platform: account %d of %s has local id %d", i, wp.ID, wa.Local)
			}
			acc := &Account{
				Platform: wp.ID,
				Local:    wa.Local,
				Person:   wa.Person,
				Profile:  Profile{Username: wa.Username, Attrs: wa.Attrs, AvatarID: wa.AvatarID},
			}
			if acc.Profile.Attrs == nil {
				acc.Profile.Attrs = make(map[AttrName]string)
			}
			for _, post := range wa.Posts {
				acc.Posts = append(acc.Posts, Post{Time: post.Time, Text: post.Text})
			}
			for _, ev := range wa.Events {
				acc.Events = append(acc.Events, temporal.Event{Time: ev.Time, Lat: ev.Lat, Lon: ev.Lon, MediaID: ev.MediaID})
			}
			p.Accounts = append(p.Accounts, acc)
		}
		for _, e := range wp.Edges {
			p.Graph.AddEdge(e.U, e.V, e.W)
		}
		if err := d.AddPlatform(p); err != nil {
			return nil, err
		}
	}
	return d, nil
}
