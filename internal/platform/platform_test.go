package platform

import (
	"bytes"
	"testing"
	"time"

	"hydra/internal/graph"
	"hydra/internal/temporal"
)

func span() temporal.Range {
	start := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	return temporal.Range{Start: start, End: start.AddDate(1, 0, 0)}
}

func miniDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset(span())
	for _, pid := range []ID{Twitter, Facebook} {
		p := &Platform{ID: pid, Graph: graph.New(3)}
		for local := 0; local < 3; local++ {
			person := local
			if pid == Facebook {
				person = 2 - local // shuffled mapping
			}
			p.Accounts = append(p.Accounts, &Account{
				Platform: pid,
				Local:    local,
				Person:   person,
				Profile: Profile{
					Username: "user",
					Attrs:    map[AttrName]string{AttrGender: "f"},
				},
			})
		}
		p.Graph.AddEdge(0, 1, 2.5)
		if err := d.AddPlatform(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestLangOf(t *testing.T) {
	if LangOf(Twitter) != English || LangOf(SinaWeibo) != Chinese {
		t.Fatal("LangOf wrong")
	}
}

func TestProfileMissing(t *testing.T) {
	p := Profile{Attrs: map[AttrName]string{
		AttrGender: "m", AttrBirth: "1985", AttrBio: "",
	}}
	if v, ok := p.Attr(AttrGender); !ok || v != "m" {
		t.Fatal("Attr present failed")
	}
	if _, ok := p.Attr(AttrBio); ok {
		t.Fatal("empty string should count as missing")
	}
	if _, ok := p.Attr(AttrJob); ok {
		t.Fatal("absent key should count as missing")
	}
	// Six core attrs; gender and birth present -> 4 missing.
	if got := p.MissingCount(); got != 4 {
		t.Fatalf("MissingCount = %d, want 4", got)
	}
	ms := p.MissingSet()
	if len(ms) != 4 {
		t.Fatalf("MissingSet = %v", ms)
	}
}

func TestDatasetGroundTruth(t *testing.T) {
	d := miniDataset(t)
	if d.NumPersons() != 3 {
		t.Fatalf("NumPersons = %d", d.NumPersons())
	}
	// Twitter local 0 is person 0; Facebook local 2 is person 0.
	if !d.SamePerson(Twitter, 0, Facebook, 2) {
		t.Fatal("SamePerson should hold")
	}
	if d.SamePerson(Twitter, 0, Facebook, 0) {
		t.Fatal("SamePerson should not hold")
	}
	if local, ok := d.AccountOf(0, Facebook); !ok || local != 2 {
		t.Fatalf("AccountOf = %d,%v", local, ok)
	}
	if _, ok := d.AccountOf(99, Facebook); ok {
		t.Fatal("unknown person should have no account")
	}
}

func TestDatasetDuplicatePlatform(t *testing.T) {
	d := miniDataset(t)
	if err := d.AddPlatform(&Platform{ID: Twitter, Graph: graph.New(0)}); err == nil {
		t.Fatal("expected duplicate-platform error")
	}
}

func TestDatasetPlatformLookup(t *testing.T) {
	d := miniDataset(t)
	if _, err := d.Platform(Twitter); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Platform(Renren); err == nil {
		t.Fatal("expected missing-platform error")
	}
}

func TestAccountOutOfRangePanics(t *testing.T) {
	d := miniDataset(t)
	p, _ := d.Platform(Twitter)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Account(99)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := miniDataset(t)
	// Add some content to exercise every wire field.
	acc := d.Platforms[Twitter].Accounts[0]
	acc.Posts = append(acc.Posts, Post{Time: span().Start.Add(time.Hour), Text: "hello world"})
	acc.Events = append(acc.Events, temporal.Event{Time: span().Start, Lat: 1, Lon: 2, MediaID: 7})
	acc.Profile.AvatarID = 42

	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPersons() != 3 {
		t.Fatalf("round-trip NumPersons = %d", got.NumPersons())
	}
	if !got.Span.Start.Equal(d.Span.Start) || !got.Span.End.Equal(d.Span.End) {
		t.Fatal("span not preserved")
	}
	gacc := got.Platforms[Twitter].Accounts[0]
	if gacc.Profile.AvatarID != 42 || len(gacc.Posts) != 1 || gacc.Posts[0].Text != "hello world" {
		t.Fatalf("account content not preserved: %+v", gacc)
	}
	if len(gacc.Events) != 1 || gacc.Events[0].MediaID != 7 {
		t.Fatal("events not preserved")
	}
	if got.Platforms[Twitter].Graph.Weight(0, 1) != 2.5 {
		t.Fatal("graph not preserved")
	}
	if !got.SamePerson(Twitter, 0, Facebook, 2) {
		t.Fatal("ground truth not preserved")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
}
