package platform

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hydra/internal/graph"
	"hydra/internal/temporal"
)

func testSpan() temporal.Range {
	t0 := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	return temporal.Range{Start: t0, End: t0.AddDate(1, 0, 0)}
}

// TestStreamEncoderMatchesEncode drives both writers over the same
// small dataset — including the awkward shapes: a platform with no
// accounts, no edges, and nil slices that must come out as `null`.
func TestStreamEncoderMatchesEncode(t *testing.T) {
	span := testSpan()
	d := NewDataset(span)

	fb := &Platform{ID: Facebook, Graph: graph.New(2)}
	fb.Accounts = []*Account{
		{Local: 0, Person: 1,
			Profile: Profile{Username: "ann", Attrs: map[AttrName]string{AttrGender: "f"}, AvatarID: 3},
			Posts:   []Post{{Time: span.Start.Add(time.Hour), Text: "hello <world> & \"friends\""}}},
		{Local: 1, Person: 2, Profile: Profile{Username: "bob"}},
	}
	fb.Graph.AddEdge(0, 1, 2.5)
	d.Platforms[Facebook] = fb

	tw := &Platform{ID: Twitter, Graph: graph.New(0)}
	d.Platforms[Twitter] = tw

	var want bytes.Buffer
	if err := Encode(&want, d); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	enc, err := NewStreamEncoder(&got, span)
	if err != nil {
		t.Fatal(err)
	}
	// Encode emits platforms sorted by ID: facebook before twitter.
	if err := enc.BeginPlatform(Facebook); err != nil {
		t.Fatal(err)
	}
	for _, acc := range fb.Accounts {
		if err := enc.WriteAccount(acc); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.EndPlatform(fb.Graph); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginPlatform(Twitter); err != nil {
		t.Fatal(err)
	}
	if err := enc.EndPlatform(tw.Graph); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("streamed bytes differ from Encode:\nstream: %s\nencode: %s", got.String(), want.String())
	}
	if !strings.Contains(got.String(), `"accounts":null`) {
		t.Fatal("empty platform did not stream accounts as null")
	}

	// Round trip: the streamed bytes decode to the same dataset shape.
	d2, err := Decode(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Platforms) != 2 || d2.Platforms[Facebook].NumAccounts() != 2 {
		t.Fatalf("streamed world decoded wrong: %d platforms", len(d2.Platforms))
	}
}

// TestStreamEncoderEmptyDataset pins the degenerate stream: no
// platforms at all still matches Encode.
func TestStreamEncoderEmptyDataset(t *testing.T) {
	span := testSpan()
	var want bytes.Buffer
	if err := Encode(&want, NewDataset(span)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	enc, err := NewStreamEncoder(&got, span)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("empty stream differs:\nstream: %s\nencode: %s", got.String(), want.String())
	}
}

// TestStreamEncoderMisuse pins the call-order gates; a misuse error is
// sticky and every later call keeps returning it.
func TestStreamEncoderMisuse(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewStreamEncoder(&buf, testSpan())
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteAccount(&Account{}); err == nil {
		t.Fatal("WriteAccount outside a platform accepted")
	}
	if err := enc.BeginPlatform(Twitter); err == nil {
		t.Fatal("call after a sticky error accepted")
	}

	buf.Reset()
	enc, _ = NewStreamEncoder(&buf, testSpan())
	if err := enc.EndPlatform(graph.New(0)); err == nil {
		t.Fatal("EndPlatform outside a platform accepted")
	}

	buf.Reset()
	enc, _ = NewStreamEncoder(&buf, testSpan())
	if err := enc.BeginPlatform(Twitter); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginPlatform(Facebook); err == nil {
		t.Fatal("nested BeginPlatform accepted")
	}

	buf.Reset()
	enc, _ = NewStreamEncoder(&buf, testSpan())
	enc.BeginPlatform(Twitter)
	if err := enc.Close(); err == nil {
		t.Fatal("Close with an open platform accepted")
	}

	buf.Reset()
	enc, _ = NewStreamEncoder(&buf, testSpan())
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if err := enc.BeginPlatform(Twitter); err == nil {
		t.Fatal("BeginPlatform after Close accepted")
	}
}
