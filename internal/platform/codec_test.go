package platform

import (
	"bytes"
	"strings"
	"testing"

	"hydra/internal/graph"
)

func TestDecodeRejectsBadLocalIDs(t *testing.T) {
	d := miniDataset(t)
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Corrupt a local id in the JSON.
	s := strings.Replace(buf.String(), `"local":0`, `"local":9`, 1)
	if _, err := Decode(strings.NewReader(s)); err == nil {
		t.Fatal("expected local-id mismatch error")
	}
}

func TestEncodeDeterministicPlatformOrder(t *testing.T) {
	d := miniDataset(t)
	var a, b bytes.Buffer
	if err := Encode(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Encode output not deterministic")
	}
	// Platforms must appear in sorted-id order.
	fb := strings.Index(a.String(), string(Facebook))
	tw := strings.Index(a.String(), string(Twitter))
	if fb < 0 || tw < 0 || fb > tw {
		t.Fatal("platforms not in sorted order")
	}
}

func TestDecodeEmptyAttrsGetMap(t *testing.T) {
	d := NewDataset(span())
	p := &Platform{ID: Twitter, Graph: graph.New(1)}
	p.Accounts = append(p.Accounts, &Account{
		Platform: Twitter, Local: 0, Person: 0,
		Profile: Profile{Username: "x"}, // nil Attrs
	})
	if err := d.AddPlatform(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	acc := got.Platforms[Twitter].Accounts[0]
	if acc.Profile.Attrs == nil {
		t.Fatal("decoded profile must have a non-nil attrs map")
	}
	// Attribute lookup on the empty map must behave.
	if _, ok := acc.Profile.Attr(AttrJob); ok {
		t.Fatal("empty profile should miss every attribute")
	}
}

func TestRoundTripLargeWorldEdges(t *testing.T) {
	// Graph weights must survive the trip exactly.
	d := NewDataset(span())
	p := &Platform{ID: Renren, Graph: graph.New(4)}
	for i := 0; i < 4; i++ {
		p.Accounts = append(p.Accounts, &Account{Platform: Renren, Local: i, Person: i,
			Profile: Profile{Username: "u", Attrs: map[AttrName]string{}}})
	}
	p.Graph.AddEdge(0, 1, 1.25)
	p.Graph.AddEdge(1, 2, 3.5)
	p.Graph.AddEdge(2, 3, 0.125)
	if err := d.AddPlatform(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.Platforms[Renren].Graph
	if g.Weight(0, 1) != 1.25 || g.Weight(1, 2) != 3.5 || g.Weight(2, 3) != 0.125 {
		t.Fatal("edge weights corrupted")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}
