// Package platform defines the data model shared by the whole system: the
// seven social network platforms of the paper's evaluation, accounts,
// profiles, posts, behavior-trajectory events, and the multi-platform
// Dataset with its ground-truth person↔account mapping.
package platform

import (
	"fmt"
	"time"

	"hydra/internal/graph"
	"hydra/internal/temporal"
)

// ID names a social network platform.
type ID string

// The seven platforms of the paper's two datasets (Section 7.1).
const (
	SinaWeibo    ID = "sina_weibo"
	TencentWeibo ID = "tencent_weibo"
	Renren       ID = "renren"
	Douban       ID = "douban"
	Kaixin       ID = "kaixin"
	Twitter      ID = "twitter"
	Facebook     ID = "facebook"
)

// ChinesePlatforms is the "Chinese" dataset: five platforms.
var ChinesePlatforms = []ID{SinaWeibo, TencentWeibo, Renren, Douban, Kaixin}

// EnglishPlatforms is the "English" dataset: two platforms.
var EnglishPlatforms = []ID{Twitter, Facebook}

// AllPlatforms is the union used in the Figure-13 cross-cultural experiment.
var AllPlatforms = []ID{SinaWeibo, TencentWeibo, Renren, Douban, Kaixin, Twitter, Facebook}

// Lang is the dominant language of a platform.
type Lang string

// Supported platform languages.
const (
	Chinese Lang = "zh"
	English Lang = "en"
)

// LangOf returns the dominant language of platform id.
func LangOf(id ID) Lang {
	switch id {
	case Twitter, Facebook:
		return English
	default:
		return Chinese
	}
}

// AttrName names one of the six profile attributes the paper's Figure 2(a)
// tracks for missingness, plus the auxiliary identity attributes used by
// the rule-based filtering.
type AttrName string

// The profile attributes. Birth/Bio/Tag/Edu/Job/Gender are the "six most
// popular" attributes of Figure 2(a); City and Email additionally feed the
// attribute-importance model of Section 5.1.
const (
	AttrBirth  AttrName = "birth"
	AttrBio    AttrName = "bio"
	AttrTag    AttrName = "tag"
	AttrEdu    AttrName = "edu"
	AttrJob    AttrName = "job"
	AttrGender AttrName = "gender"
	AttrCity   AttrName = "city"
	AttrEmail  AttrName = "email"
)

// CoreAttrs are the six attributes of Figure 2(a), in display order.
var CoreAttrs = []AttrName{AttrBirth, AttrBio, AttrTag, AttrEdu, AttrJob, AttrGender}

// MatchAttrs are all attributes participating in the attribute-importance
// model (Eqn 3), in feature order.
var MatchAttrs = []AttrName{AttrBirth, AttrBio, AttrTag, AttrEdu, AttrJob, AttrGender, AttrCity, AttrEmail}

// Profile holds the structured user attributes of one account. An empty
// string means the attribute is missing (hidden or never filled) — the
// missing-information regime of Figure 2(a).
type Profile struct {
	Username string
	Attrs    map[AttrName]string
	// AvatarID identifies the profile image; 0 means no image. Two
	// accounts carrying avatars derived from the same face produce a
	// positive face-classifier score (Figure 4 pipeline).
	AvatarID uint64
}

// Attr returns the attribute value and whether it is present.
func (p *Profile) Attr(name AttrName) (string, bool) {
	v, ok := p.Attrs[name]
	if !ok || v == "" {
		return "", false
	}
	return v, true
}

// MissingCount returns how many of the six core attributes are missing.
func (p *Profile) MissingCount() int {
	n := 0
	for _, a := range CoreAttrs {
		if _, ok := p.Attr(a); !ok {
			n++
		}
	}
	return n
}

// MissingSet returns the sorted names of missing core attributes.
func (p *Profile) MissingSet() []AttrName {
	var out []AttrName
	for _, a := range CoreAttrs {
		if _, ok := p.Attr(a); !ok {
			out = append(out, a)
		}
	}
	return out
}

// Post is one user-generated textual message.
type Post struct {
	Time time.Time
	Text string
}

// Account is one user account on one platform.
type Account struct {
	Platform ID
	// Local is the account's index within its platform (graph node id).
	Local int
	// Person is the ground-truth natural-person id. It exists because the
	// synthetic generator plays the role of the paper's national-ID data
	// provider; the linkage pipeline must only read it through
	// Dataset.SamePerson during training-label construction and evaluation.
	Person  int
	Profile Profile
	Posts   []Post
	// Events is the behavior trajectory: location check-ins and media
	// posting/sharing actions, both timestamped.
	Events []temporal.Event
}

// Platform is one social network: its accounts and interaction graph.
type Platform struct {
	ID       ID
	Accounts []*Account
	// Graph is the interaction graph over account Local ids: edge weights
	// count pairwise interactions (comments, reposts, mentions).
	Graph *graph.Graph
}

// NumAccounts returns the number of accounts.
func (p *Platform) NumAccounts() int { return len(p.Accounts) }

// Account returns the account with the given local id.
func (p *Platform) Account(local int) *Account {
	if local < 0 || local >= len(p.Accounts) {
		panic(fmt.Sprintf("platform: local id %d out of range on %s", local, p.ID))
	}
	return p.Accounts[local]
}

// Dataset is a multi-platform world with ground truth.
type Dataset struct {
	Platforms map[ID]*Platform
	// PersonAccounts maps person id -> platform -> local account id.
	PersonAccounts map[int]map[ID]int
	// Span is the observation window shared by all behavior models.
	Span temporal.Range
}

// NewDataset returns an empty dataset with the given observation window.
func NewDataset(span temporal.Range) *Dataset {
	return &Dataset{
		Platforms:      make(map[ID]*Platform),
		PersonAccounts: make(map[int]map[ID]int),
		Span:           span,
	}
}

// AddPlatform registers a platform (must not already exist).
func (d *Dataset) AddPlatform(p *Platform) error {
	if _, dup := d.Platforms[p.ID]; dup {
		return fmt.Errorf("platform: duplicate platform %s", p.ID)
	}
	d.Platforms[p.ID] = p
	for _, acc := range p.Accounts {
		m, ok := d.PersonAccounts[acc.Person]
		if !ok {
			m = make(map[ID]int)
			d.PersonAccounts[acc.Person] = m
		}
		m[p.ID] = acc.Local
	}
	return nil
}

// Platform returns the platform with the given id, or an error.
func (d *Dataset) Platform(id ID) (*Platform, error) {
	p, ok := d.Platforms[id]
	if !ok {
		return nil, fmt.Errorf("platform: no platform %s in dataset", id)
	}
	return p, nil
}

// SamePerson reports whether account a on platform pa and account b on
// platform pb belong to the same natural person (the oracle φ of the SIL
// definition). This is the only ground-truth access point.
func (d *Dataset) SamePerson(pa ID, a int, pb ID, b int) bool {
	return d.Platforms[pa].Account(a).Person == d.Platforms[pb].Account(b).Person
}

// NumPersons returns the number of distinct natural persons.
func (d *Dataset) NumPersons() int { return len(d.PersonAccounts) }

// AccountOf returns the local account id of person on platform id, with
// ok=false when the person has no account there.
func (d *Dataset) AccountOf(person int, id ID) (int, bool) {
	m, ok := d.PersonAccounts[person]
	if !ok {
		return 0, false
	}
	local, ok := m[id]
	return local, ok
}
