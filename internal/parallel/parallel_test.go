package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 0} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(w, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestMapIndexOrdered(t *testing.T) {
	for _, w := range []int{1, 3, 16} {
		got := Map(w, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", w, i, v)
			}
		}
	}
}

func TestForErrLowestIndexWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, w := range []int{1, 4} {
		err := ForErr(w, 100, func(i int) error {
			switch i {
			case 17:
				return errLow
			case 80:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", w, err)
		}
	}
}

func TestForErrSkipsAfterFailure(t *testing.T) {
	var executed atomic.Int32
	err := ForErr(1, 100, func(i int) error {
		executed.Add(1)
		if i == 3 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Sequential dispatch: indices 0..3 run, the rest are skipped.
	if got := executed.Load(); got != 4 {
		t.Fatalf("executed %d tasks, want 4 (fast failure)", got)
	}
}

func TestMapErrReturnsPartialResults(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Fast failure: indices dispatched before the error are present;
	// skipped slots keep their zero value.
	if len(out) != 10 || out[0] != 1 || out[4] != 5 {
		t.Fatalf("partial results wrong: %v", out)
	}
}

func TestMapChunksMatchesSequentialConcat(t *testing.T) {
	// Variable-length per-index output: index i emits i%3 values.
	emit := func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			for k := 0; k < i%3; k++ {
				out = append(out, i*10+k)
			}
		}
		return out
	}
	want := emit(0, 200)
	for _, w := range []int{1, 2, 5, 0} {
		got := MapChunks(w, 200, emit)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d vs %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapChunksEmpty(t *testing.T) {
	if got := MapChunks(4, 0, func(lo, hi int) []int { return []int{1} }); got != nil {
		t.Fatalf("MapChunks(n=0) = %v, want nil", got)
	}
}

// TestDeterminismWithPerTaskRNG is the usage contract in miniature: seeded
// per-index RNGs give identical results at any worker count.
func TestDeterminismWithPerTaskRNG(t *testing.T) {
	draw := func(i int) float64 {
		rng := rand.New(rand.NewSource(int64(i) * 7919))
		return rng.Float64()
	}
	seq := Map(1, 64, draw)
	par := Map(8, 64, draw)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: %v vs %v", i, seq[i], par[i])
		}
	}
}

func TestInnerWorkersBudget(t *testing.T) {
	// With an explicit budget the split is exact arithmetic.
	cases := []struct{ points, workers, want int }{
		{10, 8, 1}, // fan-out covers the pool → pin to one
		{8, 8, 1},  // exactly covered → pin to one
		{3, 8, 2},  // small grid → pool divided (floor)
		{2, 8, 4},  // even split
		{1, 8, 8},  // single point keeps the full budget
	}
	for _, c := range cases {
		if got := Inner(c.points, c.workers); got != c.want {
			t.Fatalf("Inner(%d, %d) = %d, want %d", c.points, c.workers, got, c.want)
		}
	}
	// Invariant: points × Inner never exceeds the resolved pool (for
	// fan-outs of more than one point).
	for points := 2; points <= 20; points++ {
		for workers := 1; workers <= 16; workers++ {
			if got := Inner(points, workers); got*min(points, Workers(workers)) > Workers(workers) {
				t.Fatalf("Inner(%d, %d) = %d exceeds the pool %d", points, workers, got, Workers(workers))
			}
		}
	}
}
