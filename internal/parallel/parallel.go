// Package parallel provides the shared worker-pool primitives behind
// HYDRA's hot paths: kernel Gram/CrossGram construction, blocking
// candidate scoring, per-candidate feature assembly, the blocked dense
// linear algebra of internal/linalg (Mul/LU), the ADMM shard solves, grid
// search and the experiment
// sweeps. All helpers take an explicit worker count (0 or negative resolves
// to runtime.GOMAXPROCS(0)) and guarantee deterministic, index-ordered
// results: every output slot is addressed by its input index, so the
// answer is bit-for-bit identical whether one worker or many ran the loop.
// Callers keep any RNG state per task (seeded from the task index), never
// shared across goroutines.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values ≤ 0 select
// runtime.GOMAXPROCS(0) (which respects both the machine size and the
// -cpu test flag); positive values are used as given.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Inner picks the worker pin for hot paths nested inside a parallel sweep
// of `points` tasks: once the sweep's own fan-out covers the pool the
// inner paths run on one worker (nested pools only multiply goroutines
// and concurrently resident intermediates), while a smaller fan-out gets
// the pool divided between its points — either way the effective
// parallelism never exceeds the configured budget. Every pool-driven path
// is deterministic, so the split never changes results.
func Inner(points, workers int) int {
	pool := Workers(workers)
	if points >= pool {
		return 1
	}
	if points > 1 {
		return pool / points
	}
	return workers
}

// For runs fn(i) for every i in [0, n) using the given number of workers
// (resolved via Workers). Iterations are handed out dynamically from a
// shared atomic counter, so uneven per-index costs (e.g. triangular kernel
// rows) balance automatically. With workers == 1 — or when n is tiny —
// the loop runs inline on the calling goroutine, exactly like the
// sequential code it replaces.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For with error propagation and fast failure: once a task
// fails, tasks with HIGHER indices are skipped. Tasks at or below the
// lowest failed index always run, so the reported error is exactly the
// one a sequential early-returning loop would hit — deterministic at any
// worker count. (Skipping by a plain "failed" flag would not give this:
// a goroutine could observe the flag after claiming a lower index and
// skip the error that should win.)
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var firstErr atomic.Int64
	firstErr.Store(int64(n))
	errs := make([]error, n)
	For(workers, n, func(i int) {
		if int64(i) > firstErr.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			for {
				cur := firstErr.Load()
				if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) and collects the results indexed by
// i — deterministic regardless of scheduling.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map with lowest-index-first error propagation (see ForErr).
// On error the partial results are still returned for inspection.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForErr(workers, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}

// MapChunks splits [0, n) into contiguous chunks (one per worker, balanced
// to within one element), runs fn(lo, hi) on each, and concatenates the
// chunk results in chunk order. The concatenation therefore equals what a
// single sequential fn(0, n) pass would append — use it when per-index
// work emits a variable number of results (e.g. blocking candidates per
// account row).
func MapChunks[T any](workers, n int, fn func(lo, hi int) []T) []T {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		return fn(0, n)
	}
	parts := make([][]T, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		// Chunk g covers [g*n/w, (g+1)*n/w): contiguous and balanced.
		lo, hi := g*n/w, (g+1)*n/w
		go func(g, lo, hi int) {
			defer wg.Done()
			parts[g] = fn(lo, hi)
		}(g, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
