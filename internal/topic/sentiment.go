package topic

import (
	"hydra/internal/linalg"
)

// Sentiments is the paper's coarse emotion grouping (Section 5.2): "roughly
// group all emotions into several categories, e.g., happy/ fear/ sad/
// neutral".
var Sentiments = []string{"happy", "fear", "sad", "neutral"}

// SentimentIndex maps sentiment name to its position in Sentiments.
var SentimentIndex = func() map[string]int {
	m := make(map[string]int, len(Sentiments))
	for i, s := range Sentiments {
		m[s] = i
	}
	return m
}()

// AVPoint is a point in the two-dimensional arousal-valence space the paper
// cites from affective-content studies [10]. Arousal and Valence are in
// [-1, 1].
type AVPoint struct {
	Arousal, Valence float64
}

// Category maps the AV point to the coarse sentiment grouping:
// high valence → happy; low valence with high arousal → fear; low valence
// with low arousal → sad; the center band → neutral.
func (p AVPoint) Category() string {
	switch {
	case p.Valence > 0.25:
		return "happy"
	case p.Valence < -0.25 && p.Arousal > 0:
		return "fear"
	case p.Valence < -0.25:
		return "sad"
	default:
		return "neutral"
	}
}

// SentimentModel maps tokens to arousal-valence points ("learning a
// sentiment vocabulary" in the paper) and classifies messages into a
// distribution over the Sentiments categories.
type SentimentModel struct {
	lexicon map[string]AVPoint
	smooth  float64
}

// NewSentimentModel builds a sentiment classifier from an AV lexicon.
func NewSentimentModel(lexicon map[string]AVPoint) *SentimentModel {
	return &SentimentModel{lexicon: lexicon, smooth: 0.1}
}

// Classify returns the sentiment-category distribution of a tokenized
// message. Each emotional keyword votes for its AV category; smoothing keeps
// keyword-free messages at the uniform distribution.
func (m *SentimentModel) Classify(tokens []string) linalg.Vector {
	out := linalg.NewVector(len(Sentiments)).Fill(m.smooth)
	for _, tok := range tokens {
		if p, ok := m.lexicon[tok]; ok {
			out[SentimentIndex[p.Category()]]++
		}
	}
	return out.Scale(1 / out.Sum())
}

// MeanAV returns the average arousal-valence point of the message's
// emotional keywords and the number of keywords found.
func (m *SentimentModel) MeanAV(tokens []string) (AVPoint, int) {
	var acc AVPoint
	n := 0
	for _, tok := range tokens {
		if p, ok := m.lexicon[tok]; ok {
			acc.Arousal += p.Arousal
			acc.Valence += p.Valence
			n++
		}
	}
	if n > 0 {
		acc.Arousal /= float64(n)
		acc.Valence /= float64(n)
	}
	return acc, n
}
