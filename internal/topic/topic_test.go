package topic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthCorpus builds a corpus with two cleanly separated topics: words 0-4
// belong to topic A, words 5-9 to topic B. Each doc draws from one topic.
func synthCorpus(nDocs, docLen int, seed int64) ([][]int, []int) {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]int, nDocs)
	labels := make([]int, nDocs)
	for d := range docs {
		topic := d % 2
		labels[d] = topic
		doc := make([]int, docLen)
		for n := range doc {
			doc[n] = topic*5 + rng.Intn(5)
		}
		docs[d] = doc
	}
	return docs, labels
}

func TestTrainLDARecoversTopics(t *testing.T) {
	docs, labels := synthCorpus(40, 30, 1)
	m, err := TrainLDA(docs, LDAOpts{Topics: 2, VocabSize: 10, Iterations: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Infer each doc; same-label docs must land on the same dominant topic,
	// different-label docs on different ones.
	dom := func(d int) int {
		theta := m.Infer(docs[d], 30, int64(d))
		_, idx := theta.Max()
		return idx
	}
	if dom(0) != dom(2) || dom(1) != dom(3) {
		t.Fatal("same-topic docs disagree on dominant topic")
	}
	if dom(0) == dom(1) {
		t.Fatal("different-topic docs agree on dominant topic")
	}
	_ = labels
}

func TestTrainLDAValidation(t *testing.T) {
	if _, err := TrainLDA(nil, LDAOpts{Topics: 0, VocabSize: 5}); err == nil {
		t.Fatal("expected error for zero topics")
	}
	if _, err := TrainLDA(nil, LDAOpts{Topics: 2, VocabSize: 0}); err == nil {
		t.Fatal("expected error for zero vocab")
	}
	if _, err := TrainLDA([][]int{{7}}, LDAOpts{Topics: 2, VocabSize: 5, Iterations: 1}); err == nil {
		t.Fatal("expected error for out-of-vocab token")
	}
}

func TestLDATopicWordDistSums(t *testing.T) {
	docs, _ := synthCorpus(10, 20, 3)
	m, err := TrainLDA(docs, LDAOpts{Topics: 3, VocabSize: 10, Iterations: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m.K; k++ {
		phi := m.TopicWordDist(k)
		if math.Abs(phi.Sum()-1) > 1e-9 {
			t.Fatalf("topic %d word dist sums to %v", k, phi.Sum())
		}
		for _, p := range phi {
			if p <= 0 {
				t.Fatal("zero/negative probability in smoothed distribution")
			}
		}
	}
}

func TestLDAInferEmptyDoc(t *testing.T) {
	docs, _ := synthCorpus(6, 10, 5)
	m, err := TrainLDA(docs, LDAOpts{Topics: 4, VocabSize: 10, Iterations: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer(nil, 10, 0)
	if math.Abs(theta.Sum()-1) > 1e-9 {
		t.Fatalf("empty-doc theta sums to %v", theta.Sum())
	}
	for _, p := range theta {
		if math.Abs(p-0.25) > 1e-9 {
			t.Fatalf("empty-doc theta not uniform: %v", theta)
		}
	}
}

func TestLDAInferUnknownTokensSkipped(t *testing.T) {
	docs, _ := synthCorpus(6, 10, 7)
	m, err := TrainLDA(docs, LDAOpts{Topics: 2, VocabSize: 10, Iterations: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer([]int{999, -1, 3}, 10, 1)
	if math.Abs(theta.Sum()-1) > 1e-9 {
		t.Fatalf("theta sums to %v", theta.Sum())
	}
}

// Property: inferred distributions are valid probability vectors.
func TestLDAInferDistributionProperty(t *testing.T) {
	docs, _ := synthCorpus(10, 15, 9)
	m, err := TrainLDA(docs, LDAOpts{Topics: 3, VocabSize: 10, Iterations: 15, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint8, n uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		doc := make([]int, int(n)%20)
		for i := range doc {
			doc[i] = rng.Intn(10)
		}
		theta := m.Infer(doc, 10, int64(seed))
		if math.Abs(theta.Sum()-1) > 1e-9 {
			return false
		}
		for _, p := range theta {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenreModel(t *testing.T) {
	gm, err := NewGenreModel(map[string]string{
		"football": "sports",
		"goal":     "sports",
		"guitar":   "music",
	})
	if err != nil {
		t.Fatal(err)
	}
	d := gm.Classify([]string{"football", "goal", "tonight"})
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Fatalf("genre dist sums to %v", d.Sum())
	}
	_, idx := d.Max()
	if Genres[idx] != "sports" {
		t.Fatalf("dominant genre = %s", Genres[idx])
	}
	// No keywords -> uniform.
	u := gm.Classify([]string{"xyzzy"})
	for _, p := range u {
		if math.Abs(p-1/float64(len(Genres))) > 1e-9 {
			t.Fatalf("keyword-free message not uniform: %v", u)
		}
	}
}

func TestGenreModelUnknownGenre(t *testing.T) {
	if _, err := NewGenreModel(map[string]string{"x": "nonsense"}); err == nil {
		t.Fatal("expected unknown-genre error")
	}
}

func TestGenreClassifyMany(t *testing.T) {
	gm, err := NewGenreModel(map[string]string{"football": "sports"})
	if err != nil {
		t.Fatal(err)
	}
	avg := gm.ClassifyMany([][]string{{"football"}, {"football", "football"}})
	if math.Abs(avg.Sum()-1) > 1e-9 {
		t.Fatalf("avg sums to %v", avg.Sum())
	}
	empty := gm.ClassifyMany(nil)
	if math.Abs(empty.Sum()-1) > 1e-9 {
		t.Fatal("empty ClassifyMany not a distribution")
	}
}

func TestAVCategory(t *testing.T) {
	cases := []struct {
		p    AVPoint
		want string
	}{
		{AVPoint{0.5, 0.8}, "happy"},
		{AVPoint{0.8, -0.8}, "fear"},
		{AVPoint{-0.5, -0.8}, "sad"},
		{AVPoint{0, 0}, "neutral"},
	}
	for _, c := range cases {
		if got := c.p.Category(); got != c.want {
			t.Errorf("Category(%+v) = %s, want %s", c.p, got, c.want)
		}
	}
}

func TestSentimentModel(t *testing.T) {
	sm := NewSentimentModel(map[string]AVPoint{
		"joy":    {0.5, 0.9},
		"terror": {0.9, -0.9},
		"gloom":  {-0.5, -0.9},
	})
	d := sm.Classify([]string{"joy", "joy", "terror"})
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Fatalf("sentiment dist sums to %v", d.Sum())
	}
	_, idx := d.Max()
	if Sentiments[idx] != "happy" {
		t.Fatalf("dominant sentiment = %s", Sentiments[idx])
	}
	av, n := sm.MeanAV([]string{"joy", "gloom"})
	if n != 2 {
		t.Fatalf("keyword count = %d", n)
	}
	if math.Abs(av.Valence-0) > 1e-9 || math.Abs(av.Arousal-0) > 1e-9 {
		t.Fatalf("MeanAV = %+v", av)
	}
	if _, n := sm.MeanAV([]string{"nothing"}); n != 0 {
		t.Fatal("MeanAV on keyword-free message should report 0 keywords")
	}
}
