// Package topic implements the long-term user topic models of HYDRA's
// Section 5.2: Latent Dirichlet Allocation (collapsed Gibbs sampling) over
// textual messages, plus the content-genre and sentiment-pattern
// distribution models built on explicit lexicons.
package topic

import (
	"fmt"
	"math/rand"

	"hydra/internal/linalg"
)

// LDA is a Latent Dirichlet Allocation model trained with collapsed Gibbs
// sampling. It produces a probability distribution over topics for every
// document — the per-message output HYDRA aggregates into multi-scale
// temporal topic distributions.
type LDA struct {
	K     int     // number of topics
	V     int     // vocabulary size
	Alpha float64 // symmetric document-topic prior
	Beta  float64 // symmetric topic-word prior

	topicWord []int // K*V counts
	topicSum  []int // K counts
}

// LDAOpts configures training.
type LDAOpts struct {
	Topics     int     // number of topics (required, > 0)
	VocabSize  int     // vocabulary size (required, > 0)
	Alpha      float64 // default 50/K
	Beta       float64 // default 0.01
	Iterations int     // Gibbs sweeps, default 100
	Seed       int64
}

// TrainLDA runs collapsed Gibbs sampling on docs, where each document is a
// slice of token ids in [0, VocabSize).
func TrainLDA(docs [][]int, opts LDAOpts) (*LDA, error) {
	if opts.Topics <= 0 {
		return nil, fmt.Errorf("topic: Topics must be positive, got %d", opts.Topics)
	}
	if opts.VocabSize <= 0 {
		return nil, fmt.Errorf("topic: VocabSize must be positive, got %d", opts.VocabSize)
	}
	if opts.Alpha <= 0 {
		opts.Alpha = 50 / float64(opts.Topics)
	}
	if opts.Beta <= 0 {
		opts.Beta = 0.01
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 100
	}
	K, V := opts.Topics, opts.VocabSize
	m := &LDA{K: K, V: V, Alpha: opts.Alpha, Beta: opts.Beta,
		topicWord: make([]int, K*V), topicSum: make([]int, K)}

	rng := rand.New(rand.NewSource(opts.Seed + 12345))
	// z[d][n] is the topic assignment of token n of document d.
	z := make([][]int, len(docs))
	docTopic := make([][]int, len(docs))
	for d, doc := range docs {
		z[d] = make([]int, len(doc))
		docTopic[d] = make([]int, K)
		for n, w := range doc {
			if w < 0 || w >= V {
				return nil, fmt.Errorf("topic: token id %d out of vocabulary size %d (doc %d)", w, V, d)
			}
			k := rng.Intn(K)
			z[d][n] = k
			docTopic[d][k]++
			m.topicWord[k*V+w]++
			m.topicSum[k]++
		}
	}

	probs := make([]float64, K)
	for iter := 0; iter < opts.Iterations; iter++ {
		for d, doc := range docs {
			dt := docTopic[d]
			for n, w := range doc {
				old := z[d][n]
				dt[old]--
				m.topicWord[old*V+w]--
				m.topicSum[old]--

				var total float64
				for k := 0; k < K; k++ {
					p := (float64(dt[k]) + m.Alpha) *
						(float64(m.topicWord[k*V+w]) + m.Beta) /
						(float64(m.topicSum[k]) + m.Beta*float64(V))
					probs[k] = p
					total += p
				}
				u := rng.Float64() * total
				knew := K - 1
				for k := 0; k < K; k++ {
					u -= probs[k]
					if u <= 0 {
						knew = k
						break
					}
				}
				z[d][n] = knew
				dt[knew]++
				m.topicWord[knew*V+w]++
				m.topicSum[knew]++
			}
		}
	}
	return m, nil
}

// TopicWordDist returns φ_k, the word distribution of topic k.
func (m *LDA) TopicWordDist(k int) linalg.Vector {
	out := linalg.NewVector(m.V)
	denom := float64(m.topicSum[k]) + m.Beta*float64(m.V)
	for w := 0; w < m.V; w++ {
		out[w] = (float64(m.topicWord[k*m.V+w]) + m.Beta) / denom
	}
	return out
}

// Infer estimates the topic distribution θ of a new document by a short
// Gibbs run against the frozen topic-word counts.
func (m *LDA) Infer(doc []int, iterations int, seed int64) linalg.Vector {
	if iterations <= 0 {
		iterations = 20
	}
	theta := linalg.NewVector(m.K)
	if len(doc) == 0 {
		// No evidence: return the uniform prior.
		return theta.Fill(1 / float64(m.K))
	}
	rng := rand.New(rand.NewSource(seed + 999))
	z := make([]int, len(doc))
	dt := make([]int, m.K)
	for n := range doc {
		k := rng.Intn(m.K)
		z[n] = k
		dt[k]++
	}
	probs := make([]float64, m.K)
	for iter := 0; iter < iterations; iter++ {
		for n, w := range doc {
			if w < 0 || w >= m.V {
				continue // unseen token: skip
			}
			old := z[n]
			dt[old]--
			var total float64
			for k := 0; k < m.K; k++ {
				p := (float64(dt[k]) + m.Alpha) *
					(float64(m.topicWord[k*m.V+w]) + m.Beta) /
					(float64(m.topicSum[k]) + m.Beta*float64(m.V))
				probs[k] = p
				total += p
			}
			u := rng.Float64() * total
			knew := m.K - 1
			for k := 0; k < m.K; k++ {
				u -= probs[k]
				if u <= 0 {
					knew = k
					break
				}
			}
			z[n] = knew
			dt[knew]++
		}
	}
	denom := float64(len(doc)) + m.Alpha*float64(m.K)
	for k := 0; k < m.K; k++ {
		theta[k] = (float64(dt[k]) + m.Alpha) / denom
	}
	return theta
}
