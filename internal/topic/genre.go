package topic

import (
	"hydra/internal/linalg"
)

// Genres is the paper's content-genre inventory (Section 5.2): "sports/
// music/ entertainment/ society/ history/ science/ art/ high-tech/
// commercial/ politics/ geography/ traveling/ fashions/ digital game/
// industry/ luxury/ violence".
var Genres = []string{
	"sports", "music", "entertainment", "society", "history", "science",
	"art", "hightech", "commercial", "politics", "geography", "traveling",
	"fashions", "digitalgame", "industry", "luxury", "violence",
}

// GenreIndex maps genre name to its position in Genres.
var GenreIndex = func() map[string]int {
	m := make(map[string]int, len(Genres))
	for i, g := range Genres {
		m[g] = i
	}
	return m
}()

// GenreModel classifies tokenized messages into a distribution over Genres
// using a keyword lexicon: P(genre | message) ∝ matched keyword count,
// smoothed so that messages with no matches yield the uniform distribution.
type GenreModel struct {
	lexicon map[string]int // token -> genre index
	smooth  float64
}

// NewGenreModel builds a genre classifier from a lexicon mapping tokens to
// genre names. Unknown genre names are rejected.
func NewGenreModel(lexicon map[string]string) (*GenreModel, error) {
	m := &GenreModel{lexicon: make(map[string]int, len(lexicon)), smooth: 0.1}
	for tok, g := range lexicon {
		idx, ok := GenreIndex[g]
		if !ok {
			return nil, errUnknownGenre(g)
		}
		m.lexicon[tok] = idx
	}
	return m, nil
}

type errUnknownGenre string

func (e errUnknownGenre) Error() string { return "topic: unknown genre " + string(e) }

// Classify returns the genre distribution of a tokenized message.
func (m *GenreModel) Classify(tokens []string) linalg.Vector {
	out := linalg.NewVector(len(Genres)).Fill(m.smooth)
	for _, tok := range tokens {
		if idx, ok := m.lexicon[tok]; ok {
			out[idx]++
		}
	}
	return out.Scale(1 / out.Sum())
}

// ClassifyMany averages the genre distributions of several messages; an
// empty input yields the uniform distribution.
func (m *GenreModel) ClassifyMany(messages [][]string) linalg.Vector {
	if len(messages) == 0 {
		return linalg.NewVector(len(Genres)).Fill(1 / float64(len(Genres)))
	}
	acc := linalg.NewVector(len(Genres))
	for _, msg := range messages {
		acc.AddScaled(1, m.Classify(msg))
	}
	return acc.Scale(1 / float64(len(messages)))
}
