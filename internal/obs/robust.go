package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Robustness telemetry: the router's circuit-breaker / hedging /
// retry-budget state, the serve tier's admission control (load
// shedding), and the per-hop deadline-remaining histogram. As
// everywhere in obs, the router types are mirrored rather than imported
// so the package stays dependency-free.

// BreakerState mirrors router.BreakerStatus: one replica's circuit
// breaker.
type BreakerState struct {
	Shard   int
	Replica int
	Name    string
	State   string // closed | open | half-open
	Opens   uint64
}

// RouterRobust mirrors router.RobustStats.
type RouterRobust struct {
	Breakers       []BreakerState
	HedgeFired     uint64
	HedgeWon       uint64
	HedgeCancelled uint64
	RetryExhausted uint64
	FailFast       uint64
}

// SetRobustSource installs the pull-style snapshot the router's
// /metrics evaluates per scrape (cmd/hydra-router adapts
// Router.RobustStats into it). Call before serving.
func (m *Metrics) SetRobustSource(src func() RouterRobust) { m.robustSource = src }

func (m *Metrics) renderRobust(w io.Writer) {
	if m.robustSource == nil {
		return
	}
	st := m.robustSource()
	fmt.Fprintf(w, "# HELP hydra_breaker_state Circuit breaker state per shard replica (0=closed, 1=open, 2=half-open).\n")
	fmt.Fprintf(w, "# TYPE hydra_breaker_state gauge\n")
	for _, b := range st.Breakers {
		v := 0
		switch b.State {
		case "open":
			v = 1
		case "half-open":
			v = 2
		}
		fmt.Fprintf(w, "hydra_breaker_state{shard=\"%d\",replica=\"%d\",name=%q} %d\n", b.Shard, b.Replica, b.Name, v)
	}
	fmt.Fprintf(w, "# HELP hydra_breaker_opens_total Times each replica's circuit breaker tripped open.\n")
	fmt.Fprintf(w, "# TYPE hydra_breaker_opens_total counter\n")
	for _, b := range st.Breakers {
		fmt.Fprintf(w, "hydra_breaker_opens_total{shard=\"%d\",replica=\"%d\",name=%q} %d\n", b.Shard, b.Replica, b.Name, b.Opens)
	}
	fmt.Fprintf(w, "# HELP hydra_hedge_total Hedged top-k requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE hydra_hedge_total counter\n")
	fmt.Fprintf(w, "hydra_hedge_total{outcome=\"fired\"} %d\n", st.HedgeFired)
	fmt.Fprintf(w, "hydra_hedge_total{outcome=\"won\"} %d\n", st.HedgeWon)
	fmt.Fprintf(w, "hydra_hedge_total{outcome=\"cancelled\"} %d\n", st.HedgeCancelled)
	fmt.Fprintf(w, "# HELP hydra_retry_budget_exhausted_total Shard calls that ran out of retry or deadline budget.\n")
	fmt.Fprintf(w, "# TYPE hydra_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "hydra_retry_budget_exhausted_total %d\n", st.RetryExhausted)
	fmt.Fprintf(w, "# HELP hydra_breaker_failfast_total Replica attempts denied by an open circuit breaker.\n")
	fmt.Fprintf(w, "# TYPE hydra_breaker_failfast_total counter\n")
	fmt.Fprintf(w, "hydra_breaker_failfast_total %d\n", st.FailFast)
}

// Admission is bounded in-flight admission control: at most Max
// requests run concurrently, everything beyond is shed with 429 +
// Retry-After instead of queueing into latency collapse. /healthz and
// /metrics always pass — an overloaded server that can't be observed
// can't be fixed.
type Admission struct {
	max        int64
	retryAfter int // seconds, advertised on shed responses
	inflight   atomic.Int64
	shed       atomic.Uint64
}

// NewAdmission builds an admission gate for at most max in-flight
// requests; max <= 0 disables the gate (Middleware passes through).
func NewAdmission(max int) *Admission {
	return &Admission{max: int64(max), retryAfter: 1}
}

// Stats reports the gate's current in-flight count, its limit, and the
// total requests shed.
func (a *Admission) Stats() (inflight, max int64, shed uint64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.inflight.Load(), a.max, a.shed.Load()
}

// Middleware enforces the admission gate around next.
func (a *Admission) Middleware(next http.Handler) http.Handler {
	if a == nil || a.max <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		n := a.inflight.Add(1)
		defer a.inflight.Add(-1)
		if n > a.max {
			a.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(a.retryAfter))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, "{\"error\":\"overloaded: %d requests in flight (limit %d)\"}\n", n, a.max)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// SetAdmission registers the admission gate for rendering on /metrics.
func (m *Metrics) SetAdmission(a *Admission) { m.admission = a }

func (m *Metrics) renderAdmission(w io.Writer) {
	if m.admission == nil {
		return
	}
	inflight, max, shed := m.admission.Stats()
	fmt.Fprintf(w, "# HELP hydra_inflight_requests Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE hydra_inflight_requests gauge\n")
	fmt.Fprintf(w, "hydra_inflight_requests %d\n", inflight)
	fmt.Fprintf(w, "# HELP hydra_inflight_limit Admission gate: max in-flight requests before shedding.\n")
	fmt.Fprintf(w, "# TYPE hydra_inflight_limit gauge\n")
	fmt.Fprintf(w, "hydra_inflight_limit %d\n", max)
	fmt.Fprintf(w, "# HELP hydra_shed_total Requests shed with 429 by the admission gate.\n")
	fmt.Fprintf(w, "# TYPE hydra_shed_total counter\n")
	fmt.Fprintf(w, "hydra_shed_total %d\n", shed)
}

// ObserveDeadlineRemaining records how much of its deadline budget a
// request had left when it arrived at this hop (serve.DeadlineMiddleware
// feeds it). Exhausted budgets land in the first bucket.
func (m *Metrics) ObserveDeadlineRemaining(rem time.Duration) {
	if rem < 0 {
		rem = 0
	}
	m.deadlineCount.Add(1)
	m.deadlineSum.Add(uint64(rem.Nanoseconds()))
	sec := rem.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.deadlineBuckets[i].Add(1)
			return
		}
	}
	// Beyond the last bound: counted only in +Inf.
}

func (m *Metrics) renderDeadline(w io.Writer) {
	count := m.deadlineCount.Load()
	if count == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP hydra_deadline_remaining_seconds Deadline budget remaining when a request arrived at this hop.\n")
	fmt.Fprintf(w, "# TYPE hydra_deadline_remaining_seconds histogram\n")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += m.deadlineBuckets[i].Load()
		fmt.Fprintf(w, "hydra_deadline_remaining_seconds_bucket{le=%q} %d\n", formatBound(ub), cum)
	}
	fmt.Fprintf(w, "hydra_deadline_remaining_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(w, "hydra_deadline_remaining_seconds_sum %g\n", float64(m.deadlineSum.Load())/1e9)
	fmt.Fprintf(w, "hydra_deadline_remaining_seconds_count %d\n", count)
}
