package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prescreen observability. The serving engine reports how many
// candidates survived the approximate prescreen into the exact rescore
// (a histogram — the shape tells you whether ε is doing any pruning)
// and how often the two-tier path stepped aside entirely (tiny shards,
// -prescreen=off, prescreen-less bundles). Metrics satisfies
// serve.PrescreenObserver structurally, so the serve package never
// imports obs.
//
// The router side is different: it doesn't run a prescreen, it scrapes
// each shard's /healthz prescreen block. SetShardPrescreen publishes
// that snapshot as per-shard gauges, so one router /metrics page shows
// pruning health across the whole fleet.

// survivorBuckets are the histogram upper bounds in candidates
// rescored per engaged top-k query.
var survivorBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128}

// ObservePrescreen records one engaged two-tier query that rescored
// the given number of surviving candidates exactly.
func (m *Metrics) ObservePrescreen(survivors int) {
	m.preQueries.Add(1)
	m.preSum.Add(uint64(survivors))
	for i, ub := range survivorBuckets {
		if survivors <= ub {
			m.preBuckets[i].Add(1)
			return
		}
	}
	// Beyond the last bound: counted only in +Inf (preQueries).
}

// ObservePrescreenSkipped records one top-k query the two-tier path
// declined (shard too small, prescreen disabled or absent).
func (m *Metrics) ObservePrescreenSkipped() {
	m.preSkipped.Add(1)
}

// ShardPrescreen is one shard's prescreen health as scraped from its
// /healthz by the router.
type ShardPrescreen struct {
	Enabled    bool
	Features   int
	Eps        float64
	Queries    uint64
	Survivors  uint64
	Pruned     uint64
	Skipped    uint64
	FoldHits   uint64
	FoldMisses uint64
}

// SetShardPrescreen publishes a shard's latest prescreen health
// snapshot (gauges — each scrape replaces the previous value).
func (m *Metrics) SetShardPrescreen(shard string, s ShardPrescreen) {
	m.shardMu.Lock()
	if m.shardPrescreen == nil {
		m.shardPrescreen = make(map[string]ShardPrescreen)
	}
	m.shardPrescreen[shard] = s
	m.shardMu.Unlock()
}

// renderPrescreen writes the prescreen metrics; called from Render.
func (m *Metrics) renderPrescreen(w io.Writer) {
	queries := m.preQueries.Load()
	fmt.Fprintf(w, "# HELP hydra_prescreen_survivors Candidates surviving the approximate prescreen into the exact rescore, per engaged top-k query.\n")
	fmt.Fprintf(w, "# TYPE hydra_prescreen_survivors histogram\n")
	var cum uint64
	for i, ub := range survivorBuckets {
		cum += m.preBuckets[i].Load()
		fmt.Fprintf(w, "hydra_prescreen_survivors_bucket{le=%q} %d\n", strconv.Itoa(ub), cum)
	}
	fmt.Fprintf(w, "hydra_prescreen_survivors_bucket{le=\"+Inf\"} %d\n", queries)
	fmt.Fprintf(w, "hydra_prescreen_survivors_sum %d\n", m.preSum.Load())
	fmt.Fprintf(w, "hydra_prescreen_survivors_count %d\n", queries)

	fmt.Fprintf(w, "# HELP hydra_prescreen_skipped_total Top-k queries the two-tier path declined (small shard, disabled, or no prescreen in the bundle).\n")
	fmt.Fprintf(w, "# TYPE hydra_prescreen_skipped_total counter\n")
	fmt.Fprintf(w, "hydra_prescreen_skipped_total %d\n", m.preSkipped.Load())

	m.shardMu.Lock()
	shards := make([]string, 0, len(m.shardPrescreen))
	for name := range m.shardPrescreen {
		shards = append(shards, name)
	}
	sort.Strings(shards)
	if len(shards) > 0 {
		fmt.Fprintf(w, "# HELP hydra_shard_prescreen Per-shard prescreen health scraped from backend /healthz (enabled flag, certified eps, query/survivor/pruned/skipped counters).\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_prescreen gauge\n")
		for _, name := range shards {
			s := m.shardPrescreen[name]
			enabled := 0
			if s.Enabled {
				enabled = 1
			}
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"enabled\"} %d\n", name, enabled)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"eps\"} %g\n", name, s.Eps)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"queries\"} %d\n", name, s.Queries)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"survivors\"} %d\n", name, s.Survivors)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"pruned\"} %d\n", name, s.Pruned)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"skipped\"} %d\n", name, s.Skipped)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"fold_hits\"} %d\n", name, s.FoldHits)
			fmt.Fprintf(w, "hydra_shard_prescreen{shard=%q,stat=\"fold_misses\"} %d\n", name, s.FoldMisses)
		}
	}
	m.shardMu.Unlock()
}
