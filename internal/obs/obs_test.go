package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.Observe("/score", 200*time.Microsecond, 200)
	m.Observe("/score", 2*time.Millisecond, 200)
	m.Observe("/score", 40*time.Millisecond, 400)
	m.Observe("/topk", 90*time.Microsecond, 200)

	var buf bytes.Buffer
	m.Render(&buf)
	out := buf.String()

	for _, want := range []string{
		`hydra_requests_total{endpoint="/score"} 3`,
		`hydra_requests_total{endpoint="/topk"} 1`,
		`hydra_request_errors_total{endpoint="/score"} 1`,
		`hydra_request_errors_total{endpoint="/topk"} 0`,
		`hydra_request_duration_seconds_count{endpoint="/score"} 3`,
		`hydra_request_duration_seconds_bucket{endpoint="/topk",le="0.0001"} 1`,
		`hydra_request_duration_seconds_bucket{endpoint="/score",le="+Inf"} 3`,
		"# TYPE hydra_request_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Bucket counts must be cumulative: 200µs lands in le=0.00025, so
	// every later bound includes it.
	if !strings.Contains(out, `hydra_request_duration_seconds_bucket{endpoint="/score",le="0.00025"} 1`) {
		t.Errorf("expected 200µs observation in le=0.00025 bucket:\n%s", out)
	}
	if !strings.Contains(out, `hydra_request_duration_seconds_bucket{endpoint="/score",le="0.0025"} 2`) {
		t.Errorf("expected cumulative count 2 at le=0.0025:\n%s", out)
	}
}

func TestMiddlewareMetricsAndLogs(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/bad" {
			http.Error(w, "nope", http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok"))
	})
	m := NewMetrics()
	var logBuf bytes.Buffer
	h := Middleware(inner, m, &logBuf)

	for _, path := range []string{"/ok", "/ok", "/bad"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
	}

	var buf bytes.Buffer
	m.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, `hydra_requests_total{endpoint="/ok"} 2`) {
		t.Errorf("middleware did not count /ok requests:\n%s", out)
	}
	if !strings.Contains(out, `hydra_request_errors_total{endpoint="/bad"} 1`) {
		t.Errorf("middleware did not count /bad error:\n%s", out)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 log lines, got %d: %q", len(lines), logBuf.String())
	}
	var last struct {
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		Millis float64 `json:"ms"`
		Time   string  `json:"time"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatalf("log line is not JSON: %v: %q", err, lines[2])
	}
	if last.Method != "GET" || last.Path != "/bad" || last.Status != http.StatusBadRequest {
		t.Errorf("log line fields wrong: %+v", last)
	}
	if _, err := time.Parse(time.RFC3339Nano, last.Time); err != nil {
		t.Errorf("log timestamp not RFC3339: %v", err)
	}
}

// TestPrescreenMetricsExposition pins the survivor histogram, the skip
// counter and the router's per-shard gauges — the pruning telemetry the
// two-tier scorer reports through the serve.PrescreenObserver hook.
func TestPrescreenMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.ObservePrescreen(1)
	m.ObservePrescreen(7)
	m.ObservePrescreen(7)
	m.ObservePrescreen(500) // beyond the last bound: +Inf only
	m.ObservePrescreenSkipped()
	m.ObservePrescreenSkipped()
	m.SetShardPrescreen("shard0", ShardPrescreen{
		Enabled: true, Features: 64, Eps: 0.25,
		Queries: 10, Survivors: 42, Pruned: 300, Skipped: 1,
	})
	m.SetShardPrescreen("shard1", ShardPrescreen{Enabled: false})

	var buf bytes.Buffer
	m.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE hydra_prescreen_survivors histogram",
		`hydra_prescreen_survivors_bucket{le="1"} 1`,
		`hydra_prescreen_survivors_bucket{le="8"} 3`, // cumulative: 1 + two 7s
		`hydra_prescreen_survivors_bucket{le="128"} 3`,
		`hydra_prescreen_survivors_bucket{le="+Inf"} 4`,
		"hydra_prescreen_survivors_sum 515",
		"hydra_prescreen_survivors_count 4",
		"hydra_prescreen_skipped_total 2",
		`hydra_shard_prescreen{shard="shard0",stat="enabled"} 1`,
		`hydra_shard_prescreen{shard="shard0",stat="eps"} 0.25`,
		`hydra_shard_prescreen{shard="shard0",stat="queries"} 10`,
		`hydra_shard_prescreen{shard="shard0",stat="survivors"} 42`,
		`hydra_shard_prescreen{shard="shard0",stat="pruned"} 300`,
		`hydra_shard_prescreen{shard="shard0",stat="skipped"} 1`,
		`hydra_shard_prescreen{shard="shard1",stat="enabled"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A re-scrape replaces the gauge, never accumulates.
	m.SetShardPrescreen("shard0", ShardPrescreen{Enabled: true, Queries: 11})
	buf.Reset()
	m.Render(&buf)
	if !strings.Contains(buf.String(), `hydra_shard_prescreen{shard="shard0",stat="queries"} 11`) {
		t.Errorf("shard gauge did not replace on re-scrape:\n%s", buf.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.Observe("/link", time.Millisecond, 200)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("want text/plain content type, got %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hydra_requests_total") {
		t.Errorf("handler body missing metrics:\n%s", rec.Body.String())
	}
}
