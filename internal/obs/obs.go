// Package obs is the serving tier's observability: per-endpoint request
// counters, error counters and latency histograms exposed in Prometheus
// text format on /metrics, plus optional JSON request logs. It is
// dependency-free on purpose — the exposition format is a few lines of
// text, and hand-rolling it keeps the serving binaries self-contained.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// microsecond in-process path through multi-second degraded fan-outs.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// endpointStats is one endpoint's counters. Everything is atomic so the
// hot path never takes a lock.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	buckets  []atomic.Uint64
	sum      atomic.Uint64 // latency sum in nanoseconds
}

func (s *endpointStats) observe(d time.Duration, status int) {
	s.requests.Add(1)
	if status >= 400 {
		s.errors.Add(1)
	}
	s.sum.Add(uint64(d.Nanoseconds()))
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			s.buckets[i].Add(1)
			return
		}
	}
	// Beyond the last bound: counted only in +Inf (requests).
}

// Metrics collects per-endpoint serving metrics and renders them in
// Prometheus text exposition format. The zero value is not usable; call
// NewMetrics.
type Metrics struct {
	mu        sync.RWMutex
	endpoints map[string]*endpointStats
	start     time.Time

	// Prescreen telemetry (see prescreen.go): survivor histogram and
	// skip counter fed by the engine, per-shard gauges fed by the
	// router's health scrapes.
	preQueries     atomic.Uint64
	preSum         atomic.Uint64
	preSkipped     atomic.Uint64
	preBuckets     []atomic.Uint64
	shardMu        sync.Mutex
	shardPrescreen map[string]ShardPrescreen

	// Imputation telemetry (see impute.go): a pull-style snapshot
	// source evaluated per scrape on the serve side, per-shard gauges
	// fed by the router's health scrapes.
	imputeSource func() ImputeStats
	shardImpute  map[string]ImputeStats

	// Mapped-serving and blocking fan-out telemetry (see mapped.go):
	// pull-style snapshot sources evaluated per scrape.
	mappedSource func() (MappedStats, bool)
	fanoutSource func() []PairFanout

	// Robustness telemetry (see robust.go): the router's breaker/hedge
	// snapshot source, the serve tier's admission gate, and the per-hop
	// deadline-remaining histogram.
	robustSource    func() RouterRobust
	admission       *Admission
	deadlineBuckets []atomic.Uint64
	deadlineSum     atomic.Uint64
	deadlineCount   atomic.Uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints:       make(map[string]*endpointStats),
		start:           time.Now(),
		preBuckets:      make([]atomic.Uint64, len(survivorBuckets)),
		deadlineBuckets: make([]atomic.Uint64, len(latencyBuckets)),
	}
}

func (m *Metrics) stats(endpoint string) *endpointStats {
	m.mu.RLock()
	s := m.endpoints[endpoint]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s = m.endpoints[endpoint]; s == nil {
		s = &endpointStats{buckets: make([]atomic.Uint64, len(latencyBuckets))}
		m.endpoints[endpoint] = s
	}
	return s
}

// Observe records one completed request.
func (m *Metrics) Observe(endpoint string, d time.Duration, status int) {
	m.stats(endpoint).observe(d, status)
}

// Render writes the registry in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	m.mu.RLock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP hydra_uptime_seconds Seconds since the process started serving.\n")
	fmt.Fprintf(w, "# TYPE hydra_uptime_seconds gauge\n")
	fmt.Fprintf(w, "hydra_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP hydra_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE hydra_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "hydra_requests_total{endpoint=%q} %d\n", name, m.endpoints[name].requests.Load())
	}

	fmt.Fprintf(w, "# HELP hydra_request_errors_total Responses with status >= 400, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE hydra_request_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "hydra_request_errors_total{endpoint=%q} %d\n", name, m.endpoints[name].errors.Load())
	}

	fmt.Fprintf(w, "# HELP hydra_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE hydra_request_duration_seconds histogram\n")
	for _, name := range names {
		s := m.endpoints[name]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += s.buckets[i].Load()
			fmt.Fprintf(w, "hydra_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", name, formatBound(ub), cum)
		}
		fmt.Fprintf(w, "hydra_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, s.requests.Load())
		fmt.Fprintf(w, "hydra_request_duration_seconds_sum{endpoint=%q} %g\n", name, float64(s.sum.Load())/1e9)
		fmt.Fprintf(w, "hydra_request_duration_seconds_count{endpoint=%q} %d\n", name, s.requests.Load())
	}
	m.mu.RUnlock()

	m.renderPrescreen(w)
	m.renderImpute(w)
	m.renderMapped(w)
	m.renderRobust(w)
	m.renderAdmission(w)
	m.renderDeadline(w)
}

// formatBound renders a bucket bound the way Prometheus expects
// (shortest exact decimal, no exponent for these magnitudes).
func formatBound(ub float64) string {
	return trimZeros(fmt.Sprintf("%.5f", ub))
}

func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Handler serves the registry as a /metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.Render(w)
	})
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// requestLog is one line of the JSON request log.
type requestLog struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Status   int     `json:"status"`
	Millis   float64 `json:"ms"`
	Remote   string  `json:"remote,omitempty"`
	Endpoint string  `json:"endpoint"`
}

// Middleware wraps an HTTP handler with metrics collection and, when
// logs is non-nil, one JSON log line per request. The endpoint label is
// the request path, which for the serving tier's fixed mux is a closed
// set (no cardinality explosion).
func Middleware(next http.Handler, m *Metrics, logs io.Writer) http.Handler {
	var logMu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		endpoint := r.URL.Path
		if m != nil {
			m.Observe(endpoint, d, rec.status)
		}
		if logs != nil {
			line, err := json.Marshal(requestLog{
				Time:     start.UTC().Format(time.RFC3339Nano),
				Method:   r.Method,
				Path:     r.URL.Path,
				Status:   rec.status,
				Millis:   float64(d.Nanoseconds()) / 1e6,
				Remote:   r.RemoteAddr,
				Endpoint: endpoint,
			})
			if err == nil {
				logMu.Lock()
				logs.Write(append(line, '\n'))
				logMu.Unlock()
			}
		}
	})
}
