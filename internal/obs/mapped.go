package obs

import (
	"fmt"
	"io"
	"sort"
)

// Mapped-serving and blocking fan-out observability. Both follow the
// pull-style pattern of impute.go: the engine's counters live where the
// work happens (the mapped bundle's residency atomics, the candidate
// indexes' length tables), so the serve side wires snapshot functions
// that Render evaluates per scrape. Mirrors pipeline.MappedStats and
// blocking.Fanout field for field; obs stays import-free of both.

// MappedStats is one engine's mapped-bundle health: whether the bundle
// file is memory-mapped, its size, how many vectors were answered
// zero-copy vs copy-decoded, and how much of each lazy section has been
// materialized so far.
type MappedStats struct {
	Mapped          bool
	Bytes           int
	AliasedVecs     uint64
	CopiedVecs      uint64
	ResidentViews   int
	TotalViews      int
	ResidentFriends int
	TotalFriends    int
	ResidentRows    int
	TotalRows       int
}

// PairFanout is one indexed platform pair's candidate-set size
// distribution: how many candidate rows the blocking stage emits per
// A-side account.
type PairFanout struct {
	PA, PB string
	Rows   int
	Total  int
	Mean   float64
	P99    int
	Max    int
}

// SetMappedSource wires the mapped-bundle snapshot function Render calls
// per scrape; src returns ok=false when the current engine is
// heap-decoded (no mapped metrics are emitted then). Call before the
// process starts serving; the field is not synchronized.
func (m *Metrics) SetMappedSource(src func() (MappedStats, bool)) {
	m.mappedSource = src
}

// SetFanoutSource wires the per-pair fan-out snapshot function Render
// calls per scrape. Call before the process starts serving; the field
// is not synchronized.
func (m *Metrics) SetFanoutSource(src func() []PairFanout) {
	m.fanoutSource = src
}

// renderMapped writes the mapped-serving and fan-out metrics; called
// from Render.
func (m *Metrics) renderMapped(w io.Writer) {
	if m.mappedSource != nil {
		if s, ok := m.mappedSource(); ok {
			mapped := 0
			if s.Mapped {
				mapped = 1
			}
			fmt.Fprintf(w, "# HELP hydra_bundle_mapped Whether the serving bundle is memory-mapped (0 = heap copy fallback).\n")
			fmt.Fprintf(w, "# TYPE hydra_bundle_mapped gauge\n")
			fmt.Fprintf(w, "hydra_bundle_mapped %d\n", mapped)
			fmt.Fprintf(w, "# HELP hydra_bundle_bytes Size of the serving bundle backing the mapped engine.\n")
			fmt.Fprintf(w, "# TYPE hydra_bundle_bytes gauge\n")
			fmt.Fprintf(w, "hydra_bundle_bytes %d\n", s.Bytes)
			fmt.Fprintf(w, "# HELP hydra_bundle_vec_decodes_total Vector decodes from the mapped bundle by mode; aliased vectors reinterpret mapped bytes zero-copy, copied ones fall back to a heap decode.\n")
			fmt.Fprintf(w, "# TYPE hydra_bundle_vec_decodes_total counter\n")
			fmt.Fprintf(w, "hydra_bundle_vec_decodes_total{mode=\"aliased\"} %d\n", s.AliasedVecs)
			fmt.Fprintf(w, "hydra_bundle_vec_decodes_total{mode=\"copied\"} %d\n", s.CopiedVecs)
			fmt.Fprintf(w, "# HELP hydra_bundle_resident Materialized entries per lazy bundle section (the working set); total is the packed entry count.\n")
			fmt.Fprintf(w, "# TYPE hydra_bundle_resident gauge\n")
			fmt.Fprintf(w, "hydra_bundle_resident{section=\"views\",stat=\"resident\"} %d\n", s.ResidentViews)
			fmt.Fprintf(w, "hydra_bundle_resident{section=\"views\",stat=\"total\"} %d\n", s.TotalViews)
			fmt.Fprintf(w, "hydra_bundle_resident{section=\"friends\",stat=\"resident\"} %d\n", s.ResidentFriends)
			fmt.Fprintf(w, "hydra_bundle_resident{section=\"friends\",stat=\"total\"} %d\n", s.TotalFriends)
			fmt.Fprintf(w, "hydra_bundle_resident{section=\"index_rows\",stat=\"resident\"} %d\n", s.ResidentRows)
			fmt.Fprintf(w, "hydra_bundle_resident{section=\"index_rows\",stat=\"total\"} %d\n", s.TotalRows)
		}
	}

	if m.fanoutSource != nil {
		fans := m.fanoutSource()
		sort.Slice(fans, func(i, j int) bool {
			if fans[i].PA != fans[j].PA {
				return fans[i].PA < fans[j].PA
			}
			return fans[i].PB < fans[j].PB
		})
		if len(fans) > 0 {
			fmt.Fprintf(w, "# HELP hydra_blocking_fanout Candidate-set size distribution per indexed platform pair (rows = A-side accounts, candidates emitted per account: mean/p99/max).\n")
			fmt.Fprintf(w, "# TYPE hydra_blocking_fanout gauge\n")
			for _, f := range fans {
				fmt.Fprintf(w, "hydra_blocking_fanout{pa=%q,pb=%q,stat=\"rows\"} %d\n", f.PA, f.PB, f.Rows)
				fmt.Fprintf(w, "hydra_blocking_fanout{pa=%q,pb=%q,stat=\"candidates\"} %d\n", f.PA, f.PB, f.Total)
				fmt.Fprintf(w, "hydra_blocking_fanout{pa=%q,pb=%q,stat=\"mean\"} %g\n", f.PA, f.PB, f.Mean)
				fmt.Fprintf(w, "hydra_blocking_fanout{pa=%q,pb=%q,stat=\"p99\"} %d\n", f.PA, f.PB, f.P99)
				fmt.Fprintf(w, "hydra_blocking_fanout{pa=%q,pb=%q,stat=\"max\"} %d\n", f.PA, f.PB, f.Max)
			}
		}
	}
}
