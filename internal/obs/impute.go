package obs

import (
	"fmt"
	"io"
	"sort"
)

// Imputation observability. Unlike the prescreen (where the engine
// pushes one observation per query), the imputation layer's counters
// live where the work happens — the pack-time Eqn-18 table and the
// pair-vector cache increment their own atomics on every lookup — so
// the serve side is pull-style: SetImputeSource wires a snapshot
// function (engine → ImputeHealth) that Render evaluates per scrape.
//
// The router side matches the prescreen pattern instead: it scrapes
// each shard's /healthz impute block and SetShardImpute republishes the
// snapshot as per-shard gauges.

// ImputeStats is one engine's imputation-layer health: the pack-time
// table (entries, hit/miss counters, runtime toggle) and the
// pair-vector cache (size, hit/miss counters). Mirrors
// serve.ImputeHealth field for field; obs stays import-free of serve.
type ImputeStats struct {
	Enabled         bool
	TableEntries    int
	TableHits       uint64
	TableMisses     uint64
	PairCacheSize   int
	PairCacheHits   uint64
	PairCacheMisses uint64
}

// SetImputeSource wires the snapshot function Render calls per scrape.
// Call before the process starts serving; the field is not synchronized.
func (m *Metrics) SetImputeSource(src func() ImputeStats) {
	m.imputeSource = src
}

// SetShardImpute publishes a shard's latest impute health snapshot
// (gauges — each scrape replaces the previous value).
func (m *Metrics) SetShardImpute(shard string, s ImputeStats) {
	m.shardMu.Lock()
	if m.shardImpute == nil {
		m.shardImpute = make(map[string]ImputeStats)
	}
	m.shardImpute[shard] = s
	m.shardMu.Unlock()
}

// renderImpute writes the imputation metrics; called from Render.
func (m *Metrics) renderImpute(w io.Writer) {
	if m.imputeSource != nil {
		s := m.imputeSource()
		enabled := 0
		if s.Enabled {
			enabled = 1
		}
		fmt.Fprintf(w, "# HELP hydra_impute_table_enabled Whether the pack-time Eqn-18 impute table is attached and enabled (0 = absent or -impute-table=off).\n")
		fmt.Fprintf(w, "# TYPE hydra_impute_table_enabled gauge\n")
		fmt.Fprintf(w, "hydra_impute_table_enabled %d\n", enabled)
		fmt.Fprintf(w, "# HELP hydra_impute_table_entries Precomputed candidate-pair entries in the impute table.\n")
		fmt.Fprintf(w, "# TYPE hydra_impute_table_entries gauge\n")
		fmt.Fprintf(w, "hydra_impute_table_entries %d\n", s.TableEntries)
		fmt.Fprintf(w, "# HELP hydra_impute_table_lookups_total Impute-table lookups by result; a miss falls back to the live Eqn-18 friend walk.\n")
		fmt.Fprintf(w, "# TYPE hydra_impute_table_lookups_total counter\n")
		fmt.Fprintf(w, "hydra_impute_table_lookups_total{result=\"hit\"} %d\n", s.TableHits)
		fmt.Fprintf(w, "hydra_impute_table_lookups_total{result=\"miss\"} %d\n", s.TableMisses)
		fmt.Fprintf(w, "# HELP hydra_impute_pair_cache_entries Cached raw pair vectors.\n")
		fmt.Fprintf(w, "# TYPE hydra_impute_pair_cache_entries gauge\n")
		fmt.Fprintf(w, "hydra_impute_pair_cache_entries %d\n", s.PairCacheSize)
		fmt.Fprintf(w, "# HELP hydra_impute_pair_cache_lookups_total Pair-vector cache lookups by result.\n")
		fmt.Fprintf(w, "# TYPE hydra_impute_pair_cache_lookups_total counter\n")
		fmt.Fprintf(w, "hydra_impute_pair_cache_lookups_total{result=\"hit\"} %d\n", s.PairCacheHits)
		fmt.Fprintf(w, "hydra_impute_pair_cache_lookups_total{result=\"miss\"} %d\n", s.PairCacheMisses)
	}

	m.shardMu.Lock()
	shards := make([]string, 0, len(m.shardImpute))
	for name := range m.shardImpute {
		shards = append(shards, name)
	}
	sort.Strings(shards)
	if len(shards) > 0 {
		fmt.Fprintf(w, "# HELP hydra_shard_impute Per-shard imputation health scraped from backend /healthz (table enabled/entries/hits/misses, pair-cache size/hits/misses).\n")
		fmt.Fprintf(w, "# TYPE hydra_shard_impute gauge\n")
		for _, name := range shards {
			s := m.shardImpute[name]
			enabled := 0
			if s.Enabled {
				enabled = 1
			}
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"enabled\"} %d\n", name, enabled)
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"table_entries\"} %d\n", name, s.TableEntries)
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"table_hits\"} %d\n", name, s.TableHits)
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"table_misses\"} %d\n", name, s.TableMisses)
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"pair_cache_size\"} %d\n", name, s.PairCacheSize)
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"pair_cache_hits\"} %d\n", name, s.PairCacheHits)
			fmt.Fprintf(w, "hydra_shard_impute{shard=%q,stat=\"pair_cache_misses\"} %d\n", name, s.PairCacheMisses)
		}
	}
	m.shardMu.Unlock()
}
