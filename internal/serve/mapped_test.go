package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hydra/internal/pipeline"
)

// mappedEngine opens the shared fixture bundle through the mapped path
// with the given options and wraps it in an engine.
func mappedEngine(t *testing.T, opts pipeline.MapOptions, workers int) *Engine {
	t.Helper()
	e := getEnv(t)
	path := filepath.Join(t.TempDir(), "bundle.bin")
	if err := os.WriteFile(path, e.bundleBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	mb, err := pipeline.OpenBundleMapped(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineFromMapped(mb, workers)
	if err != nil {
		mb.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := eng.Close(); err != nil {
			t.Errorf("closing mapped engine: %v", err)
		}
	})
	return eng
}

// TestMappedEngineServesIdenticalREPL byte-diffs the mapped engine's
// REPL output — the full human-facing surface, error lines included —
// against the heap-decoded engine, under every backing mode.
func TestMappedEngineServesIdenticalREPL(t *testing.T) {
	e := getEnv(t)
	script := strings.Join([]string{
		"pairs",
		"score twitter 0 facebook 0",
		"link twitter 1 facebook 2",
		"topk twitter 0 facebook 5",
		"topk twitter 3 facebook",
		"topk twitter 2 facebook 0",
		"batch twitter facebook 0:0 0:1 1:2",
		"score twitter 9999 facebook 0",
		"score orkut 0 facebook 0",
		"topk twitter -1 facebook 5",
		"nonsense command",
		"quit",
	}, "\n")
	var want bytes.Buffer
	if err := e.beng.REPL(strings.NewReader(script), &want); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want.String(), `"`) {
		t.Fatal("oracle output carries no usernames — the diff below would be vacuous")
	}
	for _, tc := range []struct {
		name string
		opts pipeline.MapOptions
	}{
		{"mapped", pipeline.MapOptions{}},
		{"mapped-nozerocopy", pipeline.MapOptions{NoZeroCopy: true}},
		{"heap-fallback", pipeline.MapOptions{NoMmap: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := mappedEngine(t, tc.opts, 0)
			var got bytes.Buffer
			if err := eng.REPL(strings.NewReader(script), &got); err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatalf("REPL output differs:\n--- mapped (%s) ---\n%s--- heap ---\n%s", tc.name, got.String(), want.String())
			}
		})
	}
}

// TestMappedEngineTopKEveryAccountWorkers diffs the mapped engine's
// full ranked shard and truncated top-3 against the heap engine for
// every A-side account, at both worker-pool settings, plus a batch
// score over the whole candidate set.
func TestMappedEngineTopKEveryAccountWorkers(t *testing.T) {
	e := getEnv(t)
	b := e.task.Blocks[0]
	for _, workers := range []int{1, 4} {
		eng := mappedEngine(t, pipeline.MapOptions{}, workers)
		na := eng.NumAccounts(b.PA)
		if na <= 0 {
			t.Fatalf("mapped engine reports %d %s accounts", na, b.PA)
		}
		for a := 0; a < na; a++ {
			want, err := e.beng.TopK(b.PA, a, b.PB, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.TopK(b.PA, a, b.PB, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d a=%d: mapped shard ranking differs", workers, a)
			}
			want3, err := e.beng.TopK(b.PA, a, b.PB, 3)
			if err != nil {
				t.Fatal(err)
			}
			got3, err := eng.TopK(b.PA, a, b.PB, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got3, want3) {
				t.Fatalf("workers=%d a=%d: mapped top-3 differs", workers, a)
			}
		}
		pairs := make([][2]int, len(b.Cands))
		for i, c := range b.Cands {
			pairs[i] = [2]int{c.A, c.B}
		}
		want, err := e.beng.ScoreBatch(b.PA, b.PB, pairs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.ScoreBatch(b.PA, b.PB, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: mapped batch scores differ", workers)
		}
	}
}

// TestMappedEngineConcurrentQueries hammers one mapped engine from many
// goroutines so the lazy section materialization races (first touch,
// cache publication, stats counters) run under -race, and every answer
// still matches the heap engine.
func TestMappedEngineConcurrentQueries(t *testing.T) {
	e := getEnv(t)
	b := e.task.Blocks[0]
	eng := mappedEngine(t, pipeline.MapOptions{}, 0)
	na := eng.NumAccounts(b.PA)
	want := make([][]Scored, na)
	for a := 0; a < na; a++ {
		w, err := e.beng.TopK(b.PA, a, b.PB, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[a] = w
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for a := g % na; a < na; a += 2 {
				got, err := eng.TopK(b.PA, a, b.PB, 3)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[a]) {
					t.Errorf("concurrent a=%d: mapped top-3 differs", a)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := eng.MappedStats(); st == nil || st.ResidentViews == 0 {
		t.Fatalf("mapped stats missing after load: %+v", st)
	}
	// Dropping caches mid-life must not change subsequent answers.
	eng.DropMappedCaches()
	got, err := eng.TopK(b.PA, 0, b.PB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[0]) {
		t.Fatal("post-drop top-3 differs")
	}
}
