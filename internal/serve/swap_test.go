package serve

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"hydra/internal/pipeline"
)

// shardEngines splits the shared env bundle with the given generation
// and builds one engine per shard. count=1 is the single-box form —
// everything owned, but stamped and swappable.
func shardEngines(t *testing.T, count int, gen uint64) []*Engine {
	t.Helper()
	e := getEnv(t)
	subs, err := pipeline.SplitBundle(e.bundle, count, 7, gen)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, count)
	for i, sb := range subs {
		if engines[i], err = NewEngineFromBundle(sb, 0); err != nil {
			t.Fatal(err)
		}
	}
	return engines
}

// TestServeSwapGates pins the versioned-swap contract: stale
// generations, topology changes and shard-index changes are refused;
// strictly newer same-topology bundles swap in and out-swapped engines
// keep answering.
func TestServeSwapGates(t *testing.T) {
	gen1 := shardEngines(t, 2, 1)
	gen2 := shardEngines(t, 2, 2)

	s := NewSwappable(gen1[0])
	if _, g := s.Current(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}

	// Stale: same generation back in.
	if _, err := s.Swap(gen1[0]); err == nil {
		t.Error("re-installing the serving generation did not error")
	}
	// Wrong shard index of the same split.
	if _, err := s.Swap(gen2[1]); err == nil {
		t.Error("swapping in the wrong shard index did not error")
	}
	// Topology change: different seed re-homes accounts.
	e := getEnv(t)
	otherSeed, err := pipeline.SplitBundle(e.bundle, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	otherEng, err := NewEngineFromBundle(otherSeed[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(otherEng); err == nil {
		t.Error("swapping across split topologies did not error")
	}
	// Sharded -> unsharded is a topology change too.
	if _, err := s.Swap(e.beng); err == nil {
		t.Error("swapping a sharded serve to an unsharded bundle did not error")
	}

	// The legitimate swap: same shard, strictly newer generation.
	prev, err := s.Swap(gen2[0])
	if err != nil {
		t.Fatal(err)
	}
	if prev != gen1[0] {
		t.Error("Swap did not return the out-swapped engine")
	}
	if eng, g := s.Current(); g != 2 || eng != gen2[0] {
		t.Fatalf("after swap: generation %d", g)
	}
	// Now gen1 is stale.
	if _, err := s.Swap(gen1[0]); err == nil {
		t.Error("swapping back to the old generation did not error")
	}

	// The out-swapped engine still answers — in-flight queries finishing
	// on the old generation depend on it.
	pair := e.eng.Pairs()[0]
	if _, err := prev.TopK(pair[0], 0, pair[1], 3); err != nil {
		t.Fatalf("out-swapped engine stopped answering: %v", err)
	}

	// Unsharded engines (generation 0 on both sides) swap unversioned.
	u := NewSwappable(e.beng)
	if _, err := u.Swap(e.beng); err != nil {
		t.Fatalf("unversioned swap refused: %v", err)
	}
}

// TestServeShardOwnershipGate asserts a sharded engine refuses score and
// link queries for B-side accounts it does not own, instead of
// answering them wrong off a zeroed view.
func TestServeShardOwnershipGate(t *testing.T) {
	e := getEnv(t)
	engines := shardEngines(t, 2, 1)
	pair := e.eng.Pairs()[0]
	nB := 0
	for _, ix := range e.bundle.Indexes {
		if ix.PA == pair[0] && ix.PB == pair[1] {
			nB = len(e.bundle.Views[ix.PB])
		}
	}
	if nB == 0 {
		t.Fatal("no B-side views in fixture")
	}
	checked := 0
	for b := 0; b < nB; b++ {
		for i, eng := range engines {
			owns := eng.ShardDesc().ShardOf(pair[1], b) == i
			_, err := eng.Score(pair[0], 0, pair[1], b)
			if owns && err != nil {
				t.Fatalf("shard %d refused owned account %d: %v", i, b, err)
			}
			if !owns {
				if err == nil {
					t.Fatalf("shard %d answered non-owned account %d", i, b)
				}
				if !strings.Contains(err.Error(), "hydra-router") {
					t.Fatalf("ownership error does not point at the router: %v", err)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("every account owned by every shard — gate never exercised")
	}
}

// TestServeSwapConcurrentQueries hammers the HTTP front-end through a
// Swappable while generations swap underneath it: every response must
// succeed and carry a single valid generation — nothing dropped, nothing
// mixed. Run under -race this doubles as the data-race proof for the
// atomic swap path.
func TestServeSwapConcurrentQueries(t *testing.T) {
	e := getEnv(t)
	pair := e.eng.Pairs()[0]
	engines := make([]*Engine, 0, 4)
	for gen := uint64(1); gen <= 4; gen++ {
		engines = append(engines, shardEngines(t, 1, gen)...)
	}
	s := NewSwappable(engines[0])
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := srv.Client().Get(srv.URL + "/topk?pa=" + string(pair[0]) + "&a=0&pb=" + string(pair[1]) + "&k=3")
				if err != nil {
					errCh <- err
					return
				}
				var body struct {
					Results    []Scored `json:"results"`
					Generation uint64   `json:"generation"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != 200 || body.Generation < 1 || body.Generation > 4 {
					errCh <- &json.UnsupportedValueError{}
					return
				}
			}
		}()
	}
	for _, next := range engines[1:] {
		if _, err := s.Swap(next); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query failed during swaps: %v", err)
	default:
	}
	if _, g := s.Current(); g != 4 {
		t.Fatalf("final generation = %d, want 4", g)
	}
}

// TestServeSwapPrewarmKillsColdTail pins the prewarm contract on the
// hot-swap path: an engine prewarmed before Swappable publishes it pays
// zero pair-cache and fold misses on the first post-swap sweep (the
// misses that made the PR 6 swap pause p99 11.5 ms), its answers are
// bit-identical to a cold engine's, and the post-swap query p99 stays
// far below the old cold-warmup tail.
func TestServeSwapPrewarmKillsColdTail(t *testing.T) {
	e := getEnv(t)
	pair := e.eng.Pairs()[0]
	nA := len(e.bundle.Views[pair[0]])

	cold := shardEngines(t, 1, 1)[0]
	warm := shardEngines(t, 1, 2)[0]
	if err := warm.Prewarm(0); err != nil {
		t.Fatal(err)
	}

	// The first full sweep after prewarm must add no misses: prewarm
	// already walked every account.
	preIm := warm.ImputeHealth()
	prePre := warm.PrescreenHealth()
	for a := 0; a < nA; a++ {
		if _, err := warm.TopK(pair[0], a, pair[1], 5); err != nil {
			t.Fatal(err)
		}
	}
	postIm := warm.ImputeHealth()
	if postIm.PairCacheMisses != preIm.PairCacheMisses {
		t.Fatalf("prewarmed sweep added %d pair-cache misses",
			postIm.PairCacheMisses-preIm.PairCacheMisses)
	}
	if prePre != nil {
		postPre := warm.PrescreenHealth()
		if postPre.FoldMisses != prePre.FoldMisses {
			t.Fatalf("prewarmed sweep added %d fold misses", postPre.FoldMisses-prePre.FoldMisses)
		}
	}

	// The cold twin pays those misses on the same sweep — proof the
	// counters are live and prewarm removed real work, and the purity
	// check: warm answers are bit-identical to cold ones.
	coldIm0 := cold.ImputeHealth()
	for a := 0; a < nA; a++ {
		got, err := warm.TopK(pair[0], a, pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.TopK(pair[0], a, pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 || len(want) != 0 {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("a=%d: prewarmed engine answers differently from cold", a)
			}
		}
	}
	coldIm1 := cold.ImputeHealth()
	if coldIm1.PairCacheMisses == coldIm0.PairCacheMisses {
		t.Fatal("cold sweep added no pair-cache misses — the miss counters prove nothing")
	}

	// The swap-path p99: publish the prewarmed engine through a
	// Swappable and time the first post-swap queries. With the caches
	// hot the tail must sit far under the 11.5 ms cold-warmup pause —
	// bounded loosely enough for a loaded 1-CPU CI box.
	s := NewSwappable(shardEngines(t, 1, 3)[0])
	next := shardEngines(t, 1, 4)[0]
	if err := next.Prewarm(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(next); err != nil {
		t.Fatal(err)
	}
	lats := make([]time.Duration, 0, nA)
	for a := 0; a < nA; a++ {
		eng, _ := s.Current()
		start := time.Now()
		if _, err := eng.TopK(pair[0], a, pair[1], 5); err != nil {
			t.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	if p99 > 100*time.Millisecond {
		t.Fatalf("post-swap query p99 = %v on a prewarmed engine", p99)
	}
}

// TestServeShardTopKPartition asserts each 1-of-N shard's TopK is the
// single engine's ranking filtered to the accounts it owns — the
// property the router's exact merge is built on.
func TestServeShardTopKPartition(t *testing.T) {
	e := getEnv(t)
	engines := shardEngines(t, 3, 1)
	pair := e.eng.Pairs()[0]
	nA := len(e.bundle.Views[pair[0]])
	for a := 0; a < nA; a++ {
		full, err := e.beng.TopK(pair[0], a, pair[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, eng := range engines {
			var want []Scored
			for _, s := range full {
				if eng.ShardDesc().ShardOf(pair[1], s.B) == i {
					want = append(want, s)
				}
			}
			got, err := eng.TopK(pair[0], a, pair[1], 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("a=%d shard %d: TopK %+v, want filtered %+v", a, i, got, want)
			}
		}
	}
}
