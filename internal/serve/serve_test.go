package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// testEnv is the shared serving fixture: a model trained through the
// staged pipeline, round-tripped through the artifact codec and restored
// into an engine — built once because training dominates test time. The
// same fit is also packed into a bundle (round-tripped through the
// bundle codec) and restored into a second, world-free engine, so every
// test can diff the two startup paths.
type testEnv struct {
	eng     *Engine // world-backed: artifact + dataset
	beng    *Engine // snapshot-backed: bundle only
	trained *core.Model
	task    *core.Task
	ds      *platform.Dataset
	art     *pipeline.Artifact
	bundle  *pipeline.Bundle
	// Serialized forms, so the cold-start benchmarks pay the decode a
	// real process start pays.
	artBytes    []byte
	bundleBytes []byte
}

var (
	envOnce sync.Once
	env     testEnv
	envErr  error
)

func getEnv(t *testing.T) testEnv {
	t.Helper()
	envOnce.Do(func() { env, envErr = buildEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

func buildEnv() (testEnv, error) {
	const seed = 4
	w, err := synth.Generate(synth.DefaultConfig(36, platform.EnglishPlatforms, seed))
	if err != nil {
		return testEnv{}, err
	}
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 1500
	sysState, err := pipeline.Systemize(w.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: pipeline.LabeledHalf(w.Dataset),
		Lexicons:     features.Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment},
		FeatCfg:      fcfg,
	})
	if err != nil {
		return testEnv{}, err
	}
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: blocking.DefaultRules(),
		Label: core.DefaultLabelOpts(seed),
	})
	if err != nil {
		return testEnv{}, err
	}
	fitted, err := pipeline.Fit(blocked, core.DefaultConfig(seed))
	if err != nil {
		return testEnv{}, err
	}
	art, err := fitted.Artifact()
	if err != nil {
		return testEnv{}, err
	}
	var buf bytes.Buffer
	if err := pipeline.WriteArtifact(&buf, art); err != nil {
		return testEnv{}, err
	}
	artBytes := append([]byte(nil), buf.Bytes()...)
	art2, err := pipeline.ReadArtifact(&buf)
	if err != nil {
		return testEnv{}, err
	}
	eng, err := NewEngine(art2, w.Dataset, 0)
	if err != nil {
		return testEnv{}, err
	}
	bundle, err := fitted.Bundle(0)
	if err != nil {
		return testEnv{}, err
	}
	var bbuf bytes.Buffer
	if err := pipeline.WriteBundle(&bbuf, bundle); err != nil {
		return testEnv{}, err
	}
	bundleBytes := append([]byte(nil), bbuf.Bytes()...)
	bundle2, err := pipeline.ReadBundle(&bbuf)
	if err != nil {
		return testEnv{}, err
	}
	beng, err := NewEngineFromBundle(bundle2, 0)
	if err != nil {
		return testEnv{}, err
	}
	return testEnv{
		eng:         eng,
		beng:        beng,
		trained:     fitted.Linker.Model(),
		task:        blocked.Task,
		ds:          w.Dataset,
		art:         art2,
		bundle:      bundle2,
		artBytes:    artBytes,
		bundleBytes: bundleBytes,
	}, nil
}

// TestEngineScoresBitExact asserts the restored engine serves the same
// bits the in-memory trained model produces, for every candidate pair.
func TestEngineScoresBitExact(t *testing.T) {
	e := getEnv(t)
	b := e.task.Blocks[0]
	for _, c := range b.Cands {
		want, err := e.trained.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.eng.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("engine score differs for (%d,%d): %v vs %v", c.A, c.B, got, want)
		}
	}
}

// TestTopKMatchesShardBruteForce asserts a top-k answer equals scoring the
// account's full candidate shard and sorting — and that it only ever draws
// from the shard (the full-B-side scan the index exists to avoid would
// surface extra accounts).
func TestTopKMatchesShardBruteForce(t *testing.T) {
	e := getEnv(t)
	const k = 3
	checked := 0
	for a := 0; a < 12; a++ {
		res, err := e.eng.TopK(platform.Twitter, a, platform.Facebook, k)
		if err != nil {
			t.Fatal(err)
		}
		full, err := e.eng.TopK(platform.Twitter, a, platform.Facebook, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > k {
			t.Fatalf("topk(%d) returned %d results", k, len(res))
		}
		for i, r := range res {
			if full[i] != r {
				t.Fatalf("a=%d: topk row %d differs from ranked shard: %+v vs %+v", a, i, r, full[i])
			}
			want, err := e.eng.Score(platform.Twitter, a, platform.Facebook, r.B)
			if err != nil {
				t.Fatal(err)
			}
			if r.Score != want {
				t.Fatalf("a=%d b=%d: topk score %v, direct score %v", a, r.B, r.Score, want)
			}
		}
		for i := 1; i < len(full); i++ {
			if full[i-1].Score < full[i].Score {
				t.Fatalf("a=%d: ranking not descending at %d", a, i)
			}
		}
		checked += len(res)
	}
	if checked == 0 {
		t.Fatal("no top-k results checked")
	}
	if _, err := e.eng.TopK(platform.Facebook, 0, platform.Twitter, k); err == nil {
		t.Fatal("expected error for unindexed pair direction")
	}
}

// TestServeConcurrentQueries hammers one engine from many goroutines
// (score, batch and top-k mixed) and asserts every answer matches the
// sequential reference — the serving engine's concurrency contract, run
// under -race by make race.
func TestServeConcurrentQueries(t *testing.T) {
	e := getEnv(t)
	b := e.task.Blocks[0]
	cands := b.Cands
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	want := make([]float64, len(cands))
	for i, c := range cands {
		s, err := e.eng.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, c := range cands {
				switch (i + g) % 3 {
				case 0:
					s, err := e.eng.Score(b.PA, c.A, b.PB, c.B)
					if err != nil {
						errs[g] = err
						return
					}
					if s != want[i] {
						t.Errorf("g%d: concurrent score %d differs", g, i)
						return
					}
				case 1:
					scores, err := e.eng.ScoreBatch(b.PA, b.PB, [][2]int{{c.A, c.B}})
					if err != nil {
						errs[g] = err
						return
					}
					if scores[0] != want[i] {
						t.Errorf("g%d: concurrent batch score %d differs", g, i)
						return
					}
				default:
					if _, err := e.eng.TopK(b.PA, c.A, b.PB, 2); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestREPL drives the stdin front-end through every command.
func TestREPL(t *testing.T) {
	e := getEnv(t)
	in := strings.NewReader(strings.Join([]string{
		"pairs",
		"# a comment, then a blank line",
		"",
		"score twitter 0 facebook 0",
		"link twitter 0 facebook 0",
		"topk twitter 0 facebook 3",
		"batch twitter facebook 0:0 0:1",
		"score twitter notanint facebook 0",
		"bogus",
		"quit",
		"score twitter 0 facebook 0", // after quit: must not run
	}, "\n"))
	var out bytes.Buffer
	if err := e.eng.REPL(in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"twitter -> facebook\n",
		"score ",
		"linked ",
		"error: account ids must be integers",
		`error: unknown command "bogus"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("REPL output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "score "); n != 2 { // score cmd + link's "score" field
		t.Fatalf("expected no commands to run after quit, output:\n%s", got)
	}
}

// TestHTTPFrontend exercises the JSON endpoints end to end.
func TestHTTPFrontend(t *testing.T) {
	e := getEnv(t)
	srv := httptest.NewServer(e.eng.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK    bool             `json:"ok"`
		Pairs [][2]platform.ID `json:"pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || len(health.Pairs) != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	b := e.task.Blocks[0]
	pairs := [][2]int{{b.Cands[0].A, b.Cands[0].B}, {b.Cands[1].A, b.Cands[1].B}}
	body, _ := json.Marshal(map[string]any{"pa": b.PA, "pb": b.PB, "pairs": pairs})
	resp, err = http.Post(srv.URL+"/link", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var linkResp struct {
		Scores []float64 `json:"scores"`
		Linked []bool    `json:"linked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&linkResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(linkResp.Scores) != 2 || len(linkResp.Linked) != 2 {
		t.Fatalf("link response = %+v", linkResp)
	}
	for i, p := range pairs {
		want, err := e.eng.Score(b.PA, p[0], b.PB, p[1])
		if err != nil {
			t.Fatal(err)
		}
		if linkResp.Scores[i] != want {
			t.Fatalf("http score %d = %v, want %v", i, linkResp.Scores[i], want)
		}
		if linkResp.Linked[i] != (want > 0) {
			t.Fatalf("http linked %d inconsistent with score", i)
		}
	}

	resp, err = http.Get(srv.URL + "/topk?pa=twitter&a=0&pb=facebook&k=2")
	if err != nil {
		t.Fatal(err)
	}
	var topkResp struct {
		Results []Scored `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topkResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want, err := e.eng.TopK(platform.Twitter, 0, platform.Facebook, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(topkResp.Results) != len(want) {
		t.Fatalf("topk returned %d rows, want %d", len(topkResp.Results), len(want))
	}
	for i := range want {
		if topkResp.Results[i] != want[i] {
			t.Fatalf("topk row %d = %+v, want %+v", i, topkResp.Results[i], want[i])
		}
	}

	// Error paths: bad method, bad body, bad query.
	resp, _ = http.Get(srv.URL + "/score")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /score = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/score", "application/json", strings.NewReader(`{"pairs":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty pairs = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/topk?a=zero")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad topk query = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
