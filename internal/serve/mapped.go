package serve

// Mapped serving: NewEngineFromMapped answers the same query surface as
// NewEngineFromBundle but off a pipeline.MappedBundle — O(header) cold
// start, resident memory tracking the working set — plus the
// Acquire/Release/Retire lifecycle that keeps the OS mapping alive until
// the last in-flight request drains.

import (
	"fmt"
	"time"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
)

// NewEngineFromMapped restores a serving engine over a mapped bundle:
// the lazy store answers feature queries account-at-a-time and the
// candidate indexes materialize rows on first touch, so startup cost is
// the bundle header plus offset scans, not the payload. The engine owns
// the mapping — Retire (after a swap) or Close releases it; until then
// mb must not be closed by the caller.
func NewEngineFromMapped(mb *pipeline.MappedBundle, workers int) (*Engine, error) {
	store, err := mb.Store()
	if err != nil {
		return nil, err
	}
	store.LimitPairCache(DefaultPairCacheEntries)
	model, err := core.ModelFromParts(store, mb.ModelParts())
	if err != nil {
		return nil, err
	}
	if p := mb.Prescreen(); p != nil {
		if err := model.SetPrescreen(p); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		Sys:     store,
		Model:   model,
		Workers: workers,
		shard:   mb.Shard(),
		indexes: make(map[[2]platform.ID]*blocking.Index),
		closer:  mb.Close,
		mapped:  mb,
	}
	if d := mb.Shard(); d != nil {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		e.generation = d.Generation
	}
	ixs, err := mb.LazyIndexes()
	if err != nil {
		return nil, err
	}
	for _, ix := range ixs {
		e.indexes[[2]platform.ID{ix.PA, ix.PB}] = ix
	}
	for _, pp := range mb.Pairs() {
		if _, ok := e.indexes[pp]; !ok {
			return nil, fmt.Errorf("serve: bundle lists pair %s → %s but carries no index for it", pp[0], pp[1])
		}
	}
	return e, nil
}

// Acquire pins the engine for one request. It returns false when the
// engine has been retired — the caller must re-resolve the current
// engine (a swap just happened) instead of serving off state whose
// backing mapping is about to unmap. Heap-decoded engines never retire,
// so Acquire always succeeds on them.
func (e *Engine) Acquire() bool {
	e.inflight.Add(1)
	if e.retired.Load() {
		e.Release()
		return false
	}
	return true
}

// Release unpins the engine after Acquire.
func (e *Engine) Release() { e.inflight.Add(-1) }

// Retire marks a swapped-out engine as draining and releases its backing
// resources (the bundle mapping) once the last pinned request finishes.
// Asynchronous and idempotent; a no-op for engines that own no resources,
// which therefore stay acquirable forever. The ordering argument: Retire
// stores retired before polling inflight, Acquire increments inflight
// before loading retired (both sequentially consistent), so a request the
// drain loop misses is one that saw retired=true and bailed.
func (e *Engine) Retire() {
	if e.closer == nil {
		return
	}
	if e.retired.Swap(true) {
		return
	}
	go func() {
		for e.inflight.Load() != 0 {
			time.Sleep(time.Millisecond)
		}
		e.closeOnce.Do(func() { e.closeErr = e.closer() })
	}()
}

// Close is the synchronous Retire: it waits for in-flight requests to
// drain, then releases the mapping. For shutdown paths and tests; a
// serving handler must never call it.
func (e *Engine) Close() error {
	if e.closer == nil {
		return nil
	}
	e.retired.Store(true)
	for e.inflight.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
	e.closeOnce.Do(func() { e.closeErr = e.closer() })
	return e.closeErr
}

// MappedStats snapshots the mapped bundle's residency and decode
// counters, nil for a heap-decoded engine.
func (e *Engine) MappedStats() *pipeline.MappedStats {
	if e.mapped == nil {
		return nil
	}
	s := e.mapped.Stats()
	return &s
}

// DropMappedCaches releases every materialized section entry of a mapped
// engine (memory pressure relief); the next queries re-materialize what
// they touch. No-op on heap-decoded engines.
func (e *Engine) DropMappedCaches() {
	if e.mapped != nil {
		e.mapped.DropCaches()
	}
}

// NumAccounts reports how many accounts platform id carries, -1 when
// the platform is absent. A mapped engine answers from the bundle
// header without materializing any views; a heap engine measures the
// decoded view slice.
func (e *Engine) NumAccounts(id platform.ID) int {
	if e.mapped != nil {
		return e.mapped.NumAccounts(id)
	}
	vs, err := e.Sys.Views(id)
	if err != nil {
		return -1
	}
	return len(vs)
}

// Fanout reports each indexed pair's candidate-set size distribution.
// Free on both backings: lazy indexes answer from their length tables.
func (e *Engine) Fanout() map[[2]platform.ID]blocking.Fanout {
	out := make(map[[2]platform.ID]blocking.Fanout, len(e.indexes))
	for pp, ix := range e.indexes {
		out[pp] = ix.Fanout()
	}
	return out
}
