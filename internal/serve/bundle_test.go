package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
)

// TestServeBundleEquivalence locks the tentpole contract: the
// snapshot-backed engine answers the full query surface — score, link,
// top-k (full shard and truncated) and batch — bit-identical to the
// world-backed engine it was packed from. It runs under `make race`
// alongside the other Serve tests.
func TestServeBundleEquivalence(t *testing.T) {
	e := getEnv(t)
	if !reflect.DeepEqual(e.eng.Pairs(), e.beng.Pairs()) {
		t.Fatalf("indexed pairs differ: %v vs %v", e.eng.Pairs(), e.beng.Pairs())
	}
	b := e.task.Blocks[0]
	if len(b.Cands) == 0 {
		t.Fatal("no candidates")
	}

	// Score + link over every candidate pair.
	for _, c := range b.Cands {
		want, err := e.eng.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.beng.Score(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bundle score differs for (%d,%d): %v vs %v", c.A, c.B, got, want)
		}
		wl, ws, err := e.eng.Link(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		gl, gs, err := e.beng.Link(b.PA, c.A, b.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if gl != wl || gs != ws {
			t.Fatalf("bundle link differs for (%d,%d): (%v,%v) vs (%v,%v)", c.A, c.B, gl, gs, wl, ws)
		}
	}

	// Batch over the whole candidate set in one pass.
	pairs := make([][2]int, len(b.Cands))
	for i, c := range b.Cands {
		pairs[i] = [2]int{c.A, c.B}
	}
	want, err := e.eng.ScoreBatch(b.PA, b.PB, pairs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.beng.ScoreBatch(b.PA, b.PB, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bundle batch scores differ")
	}

	// Top-k for every A-side account: the full ranked shard and a
	// truncated prefix.
	views, err := e.eng.Sys.Views(b.PA)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(views); a++ {
		full, err := e.eng.TopK(b.PA, a, b.PB, 0)
		if err != nil {
			t.Fatal(err)
		}
		bfull, err := e.beng.TopK(b.PA, a, b.PB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bfull, full) {
			t.Fatalf("a=%d: bundle top-k shard differs:\n%v\nvs\n%v", a, bfull, full)
		}
		top3, err := e.eng.TopK(b.PA, a, b.PB, 3)
		if err != nil {
			t.Fatal(err)
		}
		btop3, err := e.beng.TopK(b.PA, a, b.PB, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(btop3, top3) {
			t.Fatalf("a=%d: bundle top-3 differs", a)
		}
	}
}

// TestServeBundleREPLMatchesWorld diffs the two engines' REPL output byte
// for byte over every command — the human-facing surface, including the
// top-k username column that must come from the snapshot views rather
// than the (absent) dataset.
func TestServeBundleREPLMatchesWorld(t *testing.T) {
	e := getEnv(t)
	script := strings.Join([]string{
		"pairs",
		"score twitter 0 facebook 0",
		"link twitter 1 facebook 2",
		"topk twitter 0 facebook 5",
		"topk twitter 3 facebook",
		"batch twitter facebook 0:0 0:1 1:2",
		"score twitter 9999 facebook 0",
		"quit",
	}, "\n")
	var worldOut, bundleOut bytes.Buffer
	if err := e.eng.REPL(strings.NewReader(script), &worldOut); err != nil {
		t.Fatal(err)
	}
	if err := e.beng.REPL(strings.NewReader(script), &bundleOut); err != nil {
		t.Fatal(err)
	}
	if worldOut.String() != bundleOut.String() {
		t.Fatalf("REPL output differs:\n--- world ---\n%s--- bundle ---\n%s", worldOut.String(), bundleOut.String())
	}
	if !strings.Contains(worldOut.String(), `"`) {
		t.Fatal("top-k output carries no usernames")
	}
}

// TestServeBundleStoreShape sanity-checks the snapshot store the bundle
// engine runs on: both platforms present, friend slices cut at the
// model's TopFriends, and the ground-truth person id scrubbed from every
// restored view.
func TestServeBundleStoreShape(t *testing.T) {
	e := getEnv(t)
	store, ok := e.beng.Sys.(*core.Store)
	if !ok {
		t.Fatalf("bundle engine source is %T, want *core.Store", e.beng.Sys)
	}
	wantPlats := []platform.ID{platform.Facebook, platform.Twitter}
	if !reflect.DeepEqual(store.Platforms(), wantPlats) {
		t.Fatalf("store platforms = %v", store.Platforms())
	}
	if store.FriendsK() != 3 {
		t.Fatalf("store friendsK = %d, want the default top-3", store.FriendsK())
	}
	for _, id := range wantPlats {
		views, err := store.Views(id)
		if err != nil {
			t.Fatal(err)
		}
		worldViews, err := e.eng.Sys.Views(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(views) != len(worldViews) {
			t.Fatalf("%s: %d snapshot views vs %d world views", id, len(views), len(worldViews))
		}
		for i, v := range views {
			if v.Acc.Person != -1 {
				t.Fatalf("%s account %d: snapshot leaked person id %d", id, i, v.Acc.Person)
			}
			if len(v.Acc.Posts) != 0 {
				t.Fatalf("%s account %d: snapshot leaked %d raw posts", id, i, len(v.Acc.Posts))
			}
		}
	}
	// Imputation deeper than the packed slices must fail loudly, not
	// silently average over a truncated core structure.
	if _, err := store.Impute(platform.Twitter, 0, platform.Facebook, 0, core.HydraM, store.FriendsK()+1); err == nil {
		t.Fatal("expected error imputing beyond the packed friend depth")
	}
}

// TestServeBundleVersionGate asserts both directions of the version gate
// and that the formats cannot be confused for each other.
func TestServeBundleVersionGate(t *testing.T) {
	e := getEnv(t)
	bad := *e.bundle
	bad.Version = pipeline.BundleVersion + 1
	var buf bytes.Buffer
	if err := pipeline.WriteBundle(&buf, &bad); err == nil {
		t.Fatalf("expected write rejection for unknown version %d", bad.Version)
	}
	// The legacy v2 JSON format still writes and reads through the
	// migration window — but a v1 stamp inside it is rejected.
	bad.Version = pipeline.BundleVersionJSON
	buf.Reset()
	if err := pipeline.WriteBundle(&buf, &bad); err != nil {
		t.Fatal(err)
	}
	raw := bytes.Replace(buf.Bytes(), []byte(`"version":2`), []byte(`"version":1`), 1)
	if _, err := pipeline.ReadBundle(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected read rejection for version 1")
	}
	// Same for a tampered version stamp inside a v3 binary header.
	v3 := *e.bundle
	v3.Version = pipeline.BundleVersion
	buf.Reset()
	if err := pipeline.WriteBundle(&buf, &v3); err != nil {
		t.Fatal(err)
	}
	raw = bytes.Replace(buf.Bytes(), []byte(`"version":3`), []byte(`"version":9`), 1)
	if _, err := pipeline.ReadBundle(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected read rejection for a tampered v3 header version")
	}
	// A v1 artifact fed to the bundle reader must be rejected too.
	var abuf bytes.Buffer
	if err := pipeline.WriteArtifact(&abuf, e.art); err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.ReadBundle(&abuf); err == nil {
		t.Fatal("expected the bundle reader to reject a v1 artifact")
	}
	// A bundle whose friend slices are shallower than the model's
	// imputation depth must fail at load time, not on the first query.
	shallow := *e.bundle
	shallow.FriendsK = shallow.Model.Cfg.ResolvedTopFriends() - 1
	if _, err := shallow.Store(); err == nil {
		t.Fatal("expected Store to reject a friend depth below the model's imputation depth")
	}
}

// TestServeHTTPHardening locks the long-lived-serving protections: 405
// for wrong methods on every endpoint and 413 for oversized POST bodies.
func TestServeHTTPHardening(t *testing.T) {
	e := getEnv(t)
	srv := httptest.NewServer(e.beng.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/score", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/link", http.StatusMethodNotAllowed},
		{http.MethodPost, "/topk?pa=twitter&a=0&pb=facebook", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}

	// A body past MaxRequestBody gets 413 instead of being buffered.
	big := `{"pa":"twitter","pb":"facebook","pairs":[` +
		strings.Repeat(`[0,0],`, MaxRequestBody/6) + `[0,0]]}`
	resp, err := http.Post(srv.URL+"/score", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
	// A maximal legitimate batch still works.
	resp, err = http.Post(srv.URL+"/score", "application/json",
		strings.NewReader(`{"pa":"twitter","pb":"facebook","pairs":[[0,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small POST after hardening = %d", resp.StatusCode)
	}
}
