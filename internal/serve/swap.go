package serve

// Versioned hot bundle swap: a serving process keeps its current engine
// behind one atomic pointer. Installing a new bundle generation is a
// decode (3 ms for a v3 bundle) followed by one pointer swap — queries
// that already loaded the old engine finish on it (the pointer load is
// their only synchronization point, and the old engine stays alive as
// long as any in-flight query holds it), queries arriving after the swap
// run on the new generation. No locks sit on the query path and nothing
// is ever dropped mid-flight.

import (
	"fmt"
	"sync/atomic"

	"hydra/internal/pipeline"
)

// Swappable holds the current engine of a serving process and swaps it
// atomically for a new bundle generation. It implements EngineSource — the
// front-end contract the HTTP handler and the in-process router backend
// load their engine through — so every query pins exactly one
// (engine, generation) pair for its whole lifetime and a response can
// never mix generations.
type Swappable struct {
	cur atomic.Pointer[Engine]
}

// EngineSource yields the engine a query should run on, together with its
// bundle generation. A bare *Engine is its own (permanent) EngineSource; a
// *Swappable yields whatever generation is currently installed.
type EngineSource interface {
	Current() (*Engine, uint64)
}

// Current returns the Engine itself: a plain engine is an EngineSource that
// never swaps.
func (e *Engine) Current() (*Engine, uint64) { return e, e.generation }

// NewSwappable starts a swappable holder on its first engine.
func NewSwappable(e *Engine) *Swappable {
	s := &Swappable{}
	s.cur.Store(e)
	return s
}

// Current returns the installed engine and its generation. The returned
// engine remains fully usable even if a swap lands immediately after —
// in-flight queries finish on the generation they loaded.
func (s *Swappable) Current() (*Engine, uint64) {
	e := s.cur.Load()
	return e, e.generation
}

// Swap installs a new engine, enforcing the versioned-swap contract:
//
//   - the new bundle must describe the same shard (same index, count,
//     hash seed and restricted platforms) — changing the split topology
//     re-homes accounts between machines and is a tier restart, not a
//     swap;
//   - its generation must be strictly newer, so a stale bundle (a re-read
//     of the current file, or an old file restored by mistake) is
//     refused instead of silently re-installed. Unstamped bundles
//     (generation 0 on both sides) swap unversioned — a single-box
//     deployment that never sharded still gets hot reload.
//
// On success the previous engine is returned (alive until its last
// in-flight query completes); on error the current engine keeps serving.
func (s *Swappable) Swap(next *Engine) (*Engine, error) {
	if next == nil {
		return nil, fmt.Errorf("serve: cannot swap in a nil engine")
	}
	for {
		old := s.cur.Load()
		oldDesc, newDesc := old.shard, next.shard
		if !newDesc.SameTopology(oldDesc) {
			return nil, fmt.Errorf("serve: refusing swap: new bundle's shard topology %s does not match the serving bundle's %s",
				describeShard(newDesc), describeShard(oldDesc))
		}
		if newDesc != nil && newDesc.Index != oldDesc.Index {
			return nil, fmt.Errorf("serve: refusing swap: new bundle is shard %d, this process serves shard %d", newDesc.Index, oldDesc.Index)
		}
		if (old.generation != 0 || next.generation != 0) && next.generation <= old.generation {
			return nil, fmt.Errorf("serve: refusing swap: bundle generation %d is not newer than the serving generation %d", next.generation, old.generation)
		}
		if s.cur.CompareAndSwap(old, next) {
			return old, nil
		}
		// Lost a race with a concurrent swap; re-validate against the winner.
	}
}

// describeShard renders a shard descriptor for swap-refusal errors.
func describeShard(d *pipeline.ShardDesc) string {
	if d == nil {
		return "unsharded"
	}
	return fmt.Sprintf("%d/%d (seed %d, b-side %v)", d.Index, d.Count, d.Seed, d.BSide)
}
