package serve

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hydra/internal/platform"
)

// REPL answers line-oriented queries from r, writing results to w — the
// stdin front-end of hydra-serve. Commands:
//
//	score <pa> <a> <pb> <b>      decision value for one pair
//	link  <pa> <a> <pb> <b>      same-person decision + score
//	topk  <pa> <a> <pb> [k]      k best candidates for account a (default 5)
//	batch <pa> <pb> <a:b> ...    score many pairs in one parallel pass
//	pairs                        list the indexed platform pairs
//	quit                         exit
//
// Errors are reported per line ("error: ...") and do not end the session;
// only a read failure or quit does.
func (e *Engine) REPL(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		e.serveLine(line, w)
	}
	return sc.Err()
}

// serveLine executes one REPL command.
func (e *Engine) serveLine(line string, w io.Writer) {
	f := strings.Fields(line)
	switch f[0] {
	case "pairs":
		for _, pp := range e.Pairs() {
			fmt.Fprintf(w, "%s -> %s\n", pp[0], pp[1])
		}
	case "score", "link":
		if len(f) != 5 {
			fmt.Fprintf(w, "error: usage: %s <pa> <a> <pb> <b>\n", f[0])
			return
		}
		a, errA := strconv.Atoi(f[2])
		b, errB := strconv.Atoi(f[4])
		if errA != nil || errB != nil {
			fmt.Fprintf(w, "error: account ids must be integers\n")
			return
		}
		linked, s, err := e.Link(platform.ID(f[1]), a, platform.ID(f[3]), b)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		if f[0] == "score" {
			fmt.Fprintf(w, "score %+.6f\n", s)
		} else {
			fmt.Fprintf(w, "linked %v score %+.6f\n", linked, s)
		}
	case "topk":
		if len(f) != 4 && len(f) != 5 {
			fmt.Fprintf(w, "error: usage: topk <pa> <a> <pb> [k]\n")
			return
		}
		a, err := strconv.Atoi(f[2])
		if err != nil {
			fmt.Fprintf(w, "error: account id must be an integer\n")
			return
		}
		k := 5
		if len(f) == 5 {
			if k, err = strconv.Atoi(f[4]); err != nil {
				fmt.Fprintf(w, "error: k must be an integer\n")
				return
			}
		}
		pb := platform.ID(f[3])
		res, err := e.TopK(platform.ID(f[1]), a, pb, k)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		// Usernames come from the views, so the lookup works identically
		// over a world-backed System and a world-free snapshot Store. A
		// lazy (mapped) source instead answers them from its header
		// through the usernamer upgrade — same strings, since both read
		// the packed profile — without materializing the whole platform.
		name := func(b int) string { return "" }
		if un, ok := e.Sys.(usernamer); ok {
			name = func(b int) string { return un.Username(pb, b) }
		} else if views, err := e.Sys.Views(pb); err == nil {
			name = func(b int) string {
				if b >= 0 && b < len(views) {
					return views[b].Acc.Profile.Username
				}
				return ""
			}
		}
		for rank, sc := range res {
			fmt.Fprintf(w, "%2d. b=%d score=%+.6f linked=%v %q\n", rank+1, sc.B, sc.Score, sc.Linked, name(sc.B))
		}
	case "batch":
		if len(f) < 4 {
			fmt.Fprintf(w, "error: usage: batch <pa> <pb> <a:b> [<a:b> ...]\n")
			return
		}
		pairs := make([][2]int, 0, len(f)-3)
		for _, tok := range f[3:] {
			ab := strings.SplitN(tok, ":", 2)
			if len(ab) != 2 {
				fmt.Fprintf(w, "error: bad pair %q, want a:b\n", tok)
				return
			}
			a, errA := strconv.Atoi(ab[0])
			b, errB := strconv.Atoi(ab[1])
			if errA != nil || errB != nil {
				fmt.Fprintf(w, "error: bad pair %q, want integer a:b\n", tok)
				return
			}
			pairs = append(pairs, [2]int{a, b})
		}
		scores, err := e.ScoreBatch(platform.ID(f[1]), platform.ID(f[2]), pairs)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		for i, s := range scores {
			fmt.Fprintf(w, "%d:%d %+.6f\n", pairs[i][0], pairs[i][1], s)
		}
	default:
		fmt.Fprintf(w, "error: unknown command %q (score|link|topk|batch|pairs|quit)\n", f[0])
	}
}

// usernamer is the optional Source upgrade a lazy snapshot store
// implements: username lookups that bypass full-platform view
// materialization (core.LazyStore answers from the bundle header).
type usernamer interface {
	Username(id platform.ID, local int) string
}
