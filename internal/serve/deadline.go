package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the remaining end-to-end answer budget of a
// request, in (possibly fractional) milliseconds, decremented at every
// hop: client → router → shard. The receiver converts it to an absolute
// deadline on arrival, so only relative durations — not wall clocks —
// cross the wire.
const DeadlineHeader = "X-Hydra-Deadline-Ms"

// ParseDeadline reads the deadline budget header: the absolute wall time
// the budget expires at, and whether a budget was present at all. A
// malformed value is an error (a client that tried to set a budget and
// failed should hear about it, not silently run unbounded).
func ParseDeadline(h http.Header) (time.Time, bool, error) {
	s := h.Get(DeadlineHeader)
	if s == "" {
		return time.Time{}, false, nil
	}
	ms, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return time.Time{}, false, fmt.Errorf("bad %s=%q: %w", DeadlineHeader, s, err)
	}
	return time.Now().Add(time.Duration(ms * float64(time.Millisecond))), true, nil
}

// SetDeadline stamps the remaining budget until t onto an outgoing
// request's headers. A non-positive remainder is stamped as 0 — the
// receiver rejects it instead of this hop guessing.
func SetDeadline(h http.Header, t time.Time) {
	rem := time.Until(t)
	if rem < 0 {
		rem = 0
	}
	h.Set(DeadlineHeader, strconv.FormatFloat(float64(rem)/float64(time.Millisecond), 'f', 3, 64))
}

// DeadlineObserver receives each arriving request's remaining budget —
// obs.Metrics implements it to feed the per-hop deadline-remaining
// histogram on /metrics.
type DeadlineObserver interface {
	ObserveDeadlineRemaining(rem time.Duration)
}

// DeadlineMiddleware enforces the per-hop deadline budget on a serving
// front-end: requests without the header pass through untouched;
// requests carrying one get the deadline installed on their context (so
// downstream work is cancellable) and are rejected with 504 when the
// budget is already spent — running a query nobody is still waiting for
// only steals capacity from requests that can still make it. obs may be
// nil.
func DeadlineMiddleware(next http.Handler, obs DeadlineObserver) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t, ok, err := ParseDeadline(r.Header)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		rem := time.Until(t)
		if obs != nil {
			obs.ObserveDeadlineRemaining(rem)
		}
		if rem <= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusGatewayTimeout)
			json.NewEncoder(w).Encode(map[string]string{
				"error": "deadline budget exhausted before the request was served",
			})
			return
		}
		ctx, cancel := context.WithDeadline(r.Context(), t)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
