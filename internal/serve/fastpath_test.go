package serve

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"hydra/internal/pipeline"
)

// TestServeTopKSelectionMatchesSort locks the bounded partial selection
// to an independent reference: score the account's whole candidate shard
// pair by pair, full-sort by the exact (score desc, B asc) comparator,
// truncate — for k ∈ {1, 5, len(shard)} plus the k ≤ 0 whole-shard form,
// at one and four workers.
func TestServeTopKSelectionMatchesSort(t *testing.T) {
	e := getEnv(t)
	blk := e.task.Blocks[0]
	for _, workers := range []int{1, 4} {
		eng, err := NewEngineFromBundle(e.bundle, workers)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for a := 0; a < 12; a++ {
			// Independent shard reconstruction: the union of index shards
			// equals the generated candidate set, and row a's shard holds
			// exactly its candidates.
			var ref []Scored
			for _, c := range blk.Cands {
				if c.A != a {
					continue
				}
				s, err := eng.Score(blk.PA, a, blk.PB, c.B)
				if err != nil {
					t.Fatal(err)
				}
				ref = append(ref, Scored{B: c.B, Score: s, Linked: s > 0})
			}
			sort.Slice(ref, func(i, j int) bool {
				if ref[i].Score != ref[j].Score {
					return ref[i].Score > ref[j].Score
				}
				return ref[i].B < ref[j].B
			})
			for _, k := range []int{1, 5, len(ref), 0} {
				want := ref
				if k > 0 && k < len(ref) {
					want = ref[:k]
				}
				got, err := eng.TopK(blk.PA, a, blk.PB, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d a=%d k=%d: %d rows, want %d", workers, a, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d a=%d k=%d row %d: %+v, want %+v", workers, a, k, i, got[i], want[i])
					}
				}
				checked += len(want)
			}
		}
		if checked == 0 {
			t.Fatal("no shards checked")
		}
	}
}

// TestSteadyStateAllocs guards the zero-alloc property of the warm
// serving fast path on the deployed (bundle-backed, single-worker)
// configuration: Score and the recycled-buffer TopKAppend must not
// allocate at all, and the allocating TopK wrapper only for its result
// slice. Run outside the race filter on purpose — the race runtime's own
// bookkeeping would show up in the counts.
func TestSteadyStateAllocs(t *testing.T) {
	e := getEnv(t)
	eng, err := NewEngineFromBundle(e.bundle, 1)
	if err != nil {
		t.Fatal(err)
	}
	blk := e.task.Blocks[0]
	pairs := make([][2]int, len(blk.Cands))
	for i, c := range blk.Cands {
		pairs[i] = [2]int{c.A, c.B}
	}
	// Warm: fill the pair cache (candidate and friend pairs) and grow
	// every pooled buffer to its steady-state size.
	if _, err := eng.ScoreBatch(blk.PA, blk.PB, pairs); err != nil {
		t.Fatal(err)
	}
	var dst []Scored
	if dst, err = eng.TopKAppend(dst[:0], blk.PA, pairs[0][0], blk.PB, 5); err != nil {
		t.Fatal(err)
	}

	p := pairs[0]
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.Score(blk.PA, p[0], blk.PB, p[1]); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("warm Engine.Score allocates %.2f times/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		var err error
		if dst, err = eng.TopKAppend(dst[:0], blk.PA, p[0], blk.PB, 5); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("warm Engine.TopKAppend allocates %.2f times/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.TopK(blk.PA, p[0], blk.PB, 5); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("warm Engine.TopK allocates %.2f times/op, want ≤ 1 (its result slice)", avg)
	}
	scores := make([]float64, len(pairs))
	if avg := testing.AllocsPerRun(50, func() {
		if err := eng.Model.ScoreBatchInto(blk.PA, blk.PB, pairs, 1, scores); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("warm ScoreBatchInto allocates %.2f times/op, want 0", avg)
	}
}

// TestServeBundleV2V3ByteIdentical asserts the two bundle wire formats
// of one model restore into engines whose serving output is byte
// identical: same REPL transcript, same scores, same top-k rows.
func TestServeBundleV2V3ByteIdentical(t *testing.T) {
	e := getEnv(t)

	engineFor := func(version int) *Engine {
		t.Helper()
		b := *e.bundle
		b.Version = version
		var buf bytes.Buffer
		if err := pipeline.WriteBundle(&buf, &b); err != nil {
			t.Fatal(err)
		}
		decoded, err := pipeline.ReadBundle(&buf)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngineFromBundle(decoded, 0)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	engV2 := engineFor(pipeline.BundleVersionJSON)
	engV3 := engineFor(pipeline.BundleVersion)

	script := strings.Join([]string{
		"pairs",
		"score twitter 0 facebook 0",
		"link twitter 1 facebook 1",
		"topk twitter 0 facebook 5",
		"topk twitter 1 facebook 0",
		"batch twitter facebook 0:0 0:1 1:0 2:2",
		"quit",
	}, "\n")
	var outV2, outV3 bytes.Buffer
	if err := engV2.REPL(strings.NewReader(script), &outV2); err != nil {
		t.Fatal(err)
	}
	if err := engV3.REPL(strings.NewReader(script), &outV3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outV2.Bytes(), outV3.Bytes()) {
		t.Fatalf("REPL output differs between v2 and v3 bundles:\n--- v2 ---\n%s\n--- v3 ---\n%s", outV2.String(), outV3.String())
	}

	blk := e.task.Blocks[0]
	for _, c := range blk.Cands {
		s2, err := engV2.Score(blk.PA, c.A, blk.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		s3, err := engV3.Score(blk.PA, c.A, blk.PB, c.B)
		if err != nil {
			t.Fatal(err)
		}
		if s2 != s3 {
			t.Fatalf("score (%d,%d) differs between v2 (%v) and v3 (%v) bundles", c.A, c.B, s2, s3)
		}
	}
}
