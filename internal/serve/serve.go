// Package serve is HYDRA's query front-end: it answers score, link and
// top-k linkage queries against a persisted model without retraining —
// the serving half of the train/serve split. Two startup paths feed the
// same engine:
//
//   - NewEngine loads a v1 model artifact plus the world file it was
//     trained on, rebuilding the feature pipeline and candidate indexes
//     from the raw dataset (the builder-backed path), and
//   - NewEngineFromBundle loads a self-contained serving bundle (v3
//     binary sections or legacy v2 JSON) — precomputed
//     views, friend slices and index shards — and serves with no world
//     file at all (the snapshot-backed path), bit-identical to the
//     builder but with a cold start that only decodes, never retrains.
//
// Queries run on the serving fast path (core.Model.ScoreBatchInto): the
// batch imputes into pooled feature rows, all kernel values evaluate in
// one blocked Workers-governed pass over the compacted support set, and
// α and the bias fold per pair — bit-identical to the scalar loop and
// allocation-free once warm (the source's pair cache is mutex-guarded
// and shared across queries, so repeated queries get warmer). Top-k
// queries never scan the full B side: each A-side account's candidates
// come from a per-A-side sharded blocking.Index built (or decoded) once
// at startup, and the shard ranks by bounded partial selection rather
// than a full sort.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
)

// Engine answers linkage queries against one restored model. It is
// immutable after construction apart from the source's internal caches
// and the query-scratch pool, and safe for concurrent queries.
type Engine struct {
	// Sys is the feature source behind the model: a dataset-backed
	// core.System (world path) or a snapshot core.Store (bundle path).
	Sys   core.Source
	Model *core.Model
	// Workers pins the per-query batch parallelism (≤ 0 = all cores).
	Workers int

	// shard is the bundle's shard descriptor when the engine serves a
	// sub-bundle of a sharded split (nil for a whole-space engine): the
	// engine then owns one slice of the B side and refuses score/link
	// queries for accounts the consistent hash assigns elsewhere, so a
	// mis-routed query errors instead of imputing against missing state.
	shard      *pipeline.ShardDesc
	generation uint64

	indexes map[[2]platform.ID]*blocking.Index
	scratch sync.Pool

	// Lifecycle. A mapped engine (NewEngineFromMapped) aliases an OS
	// memory map that must outlive every in-flight query: handlers pin
	// the engine with Acquire/Release, and after a hot swap the old
	// engine's Retire closes the mapping only once the last pinned
	// request drains. Heap-decoded engines have a nil closer and all of
	// this degenerates to no-ops.
	inflight  atomic.Int64
	retired   atomic.Bool
	closeOnce sync.Once
	closeErr  error
	closer    func() error
	mapped    *pipeline.MappedBundle

	// Prescreen state: prescreenOff is the runtime escape hatch
	// (hydra-serve -prescreen=off), prescreenObs an optional metrics
	// sink wired before serving starts, and the counters feed both the
	// observer-free /healthz block and the router's per-shard stats.
	// None of it ever changes a served value — with or without the
	// prescreen the exact scorer alone decides output.
	prescreenOff atomic.Bool
	prescreenObs PrescreenObserver
	preQueries   atomic.Uint64
	preSurvivors atomic.Uint64
	prePruned    atomic.Uint64
	preSkipped   atomic.Uint64
}

// PrescreenObserver receives prescreen telemetry from top-k queries:
// the exact-rescored survivor count when the prescreen engaged, or a
// skip note when a top-k ran exact-only (prescreen absent, disabled, or
// the shard too small to prune). internal/obs.Metrics implements it.
type PrescreenObserver interface {
	ObservePrescreen(survivors int)
	ObservePrescreenSkipped()
}

// prescreenMinSlack is the minimum prunable candidate count (shard size
// minus k) before a top-k query pays the prescreen pass: below it the
// approximate fold plus the near-certain full rescore costs more than
// scoring the shard exactly outright.
const prescreenMinSlack = 8

// prescreenRescoreChunk is the exact-rescore batch size past the
// initial k seed. Fixed (never worker-derived) so the survivor count —
// and hence the prescreen stats — is deterministic at any worker count.
const prescreenRescoreChunk = 16

// DefaultPairCacheEntries bounds the System's pair-vector cache in a
// serving process (≈ a few hundred bytes per entry; this cap keeps a
// long-lived server around ~100 MB of cache even under an adversarial
// query sweep of the full pair space).
const DefaultPairCacheEntries = 1 << 18

// NewEngine restores the artifact over the world dataset and builds the
// candidate indexes for every platform pair the artifact was trained on.
// The restored System's pair cache is capped at DefaultPairCacheEntries;
// call Sys.LimitPairCache to choose a different bound.
func NewEngine(art *pipeline.Artifact, ds *platform.Dataset, workers int) (*Engine, error) {
	st, model, err := art.Restore(ds)
	if err != nil {
		return nil, err
	}
	st.Sys.LimitPairCache(DefaultPairCacheEntries)
	e := &Engine{
		Sys:     st.Sys,
		Model:   model,
		Workers: workers,
		indexes: make(map[[2]platform.ID]*blocking.Index, len(art.Pairs)),
	}
	rules := art.Rules
	rules.Workers = workers
	for _, pp := range art.Pairs {
		if _, ok := e.indexes[pp]; ok {
			continue
		}
		platA, err := ds.Platform(pp[0])
		if err != nil {
			return nil, err
		}
		platB, err := ds.Platform(pp[1])
		if err != nil {
			return nil, err
		}
		ix, err := blocking.BuildIndex(platA, platB, st.Sys.Faces(), rules)
		if err != nil {
			return nil, err
		}
		e.indexes[pp] = ix
	}
	return e, nil
}

// NewEngineFromBundle restores a self-contained serving bundle: the
// snapshot store answers all feature queries and the prebuilt candidate
// indexes are decoded, so startup never touches a dataset. The store's
// pair cache is capped at DefaultPairCacheEntries, like NewEngine's.
func NewEngineFromBundle(b *pipeline.Bundle, workers int) (*Engine, error) {
	store, err := b.Store()
	if err != nil {
		return nil, err
	}
	store.LimitPairCache(DefaultPairCacheEntries)
	model, err := core.ModelFromParts(store, b.Model)
	if err != nil {
		return nil, err
	}
	if b.Prescreen != nil {
		// Bundles built by current packers carry the prescreen section;
		// a bundle without one (older packers, non-RBF models) serves
		// exact-only — same outputs, no pruning.
		if err := model.SetPrescreen(b.Prescreen); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		Sys:     store,
		Model:   model,
		Workers: workers,
		shard:   b.Shard,
		indexes: make(map[[2]platform.ID]*blocking.Index, len(b.Indexes)),
	}
	if b.Shard != nil {
		if err := b.Shard.Validate(); err != nil {
			return nil, err
		}
		e.generation = b.Shard.Generation
	}
	for _, parts := range b.Indexes {
		ix, err := blocking.IndexFromParts(parts)
		if err != nil {
			return nil, err
		}
		e.indexes[[2]platform.ID{parts.PA, parts.PB}] = ix
	}
	for _, pp := range b.Pairs {
		if _, ok := e.indexes[pp]; !ok {
			return nil, fmt.Errorf("serve: bundle lists pair %s → %s but carries no index for it", pp[0], pp[1])
		}
	}
	return e, nil
}

// Pairs lists the indexed platform pairs, lexicographically sorted and
// deduplicated.
func (e *Engine) Pairs() [][2]platform.ID {
	out := make([][2]platform.ID, 0, len(e.indexes))
	for pp := range e.indexes {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ShardDesc returns the shard descriptor of a sub-bundle engine, nil for
// a whole-space engine.
func (e *Engine) ShardDesc() *pipeline.ShardDesc { return e.shard }

// Generation returns the bundle generation the engine serves (0 when the
// bundle carries no shard stamp).
func (e *Engine) Generation() uint64 { return e.generation }

// checkOwned rejects a query for a B-side account the engine's shard
// does not own. The consistent hash is the same one the router routes
// by, so the error only fires on mis-routed (or routerless) queries.
func (e *Engine) checkOwned(pb platform.ID, b int) error {
	if e.shard == nil || e.shard.Owns(pb, b) {
		return nil
	}
	return fmt.Errorf("serve: %s account %d belongs to shard %d of %d (this is shard %d) — route the query through hydra-router",
		pb, b, e.shard.ShardOf(pb, b), e.shard.Count, e.shard.Index)
}

// Score returns the model's decision value for one account pair.
func (e *Engine) Score(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if err := e.checkOwned(pb, b); err != nil {
		return 0, err
	}
	return e.Model.Score(pa, a, pb, b)
}

// Link decides whether the pair is the same natural person (score > 0).
func (e *Engine) Link(pa platform.ID, a int, pb platform.ID, b int) (bool, float64, error) {
	s, err := e.Score(pa, a, pb, b)
	if err != nil {
		return false, 0, err
	}
	return s > 0, s, nil
}

// ScoreBatch scores a batch of pairs in one pass over the worker pool.
func (e *Engine) ScoreBatch(pa, pb platform.ID, pairs [][2]int) ([]float64, error) {
	if e.shard != nil {
		for _, p := range pairs {
			if err := e.checkOwned(pb, p[1]); err != nil {
				return nil, err
			}
		}
	}
	return e.Model.ScoreBatchWorkers(pa, pb, pairs, e.Workers)
}

// Scored is one top-k result row.
type Scored struct {
	B      int     `json:"b"`
	Score  float64 `json:"score"`
	Linked bool    `json:"linked"`
}

// TopK returns A-side account a's k best-scoring B-side candidates on the
// (pa, pb) index — only the account's candidate shard is scored, batched
// over the worker pool. Ties break on the lower B id, so results are
// deterministic at any worker count. k ≤ 0 returns the whole ranked shard.
func (e *Engine) TopK(pa platform.ID, a int, pb platform.ID, k int) ([]Scored, error) {
	return e.TopKAppend(nil, pa, a, pb, k)
}

// topkScratch is the pooled per-query state of a top-k query: the pair
// list fed to the batch scorer, its score slots, the bounded selection
// window, and a reusable sorter over it (sort.Slice's closure would
// allocate every whole-shard query; a pooled sort.Interface does not).
// The pre/order/rids/rscores buffers and the TwoTier lease back the
// two-tier path: the approximate scores, the (prescreen desc, B asc)
// candidate order, and the exact-rescore chunks fed back through the
// batched kernel on the rows the prescreen pass already imputed.
type topkScratch struct {
	pairs  [][2]int
	scores []float64
	sel    []Scored
	sorter scoredSorter

	pre       []float64
	order     []int
	preSorter preorderSorter
	tt        core.TwoTier
	rids      []int
	rscores   []float64
}

// scoredSorter sorts a Scored slice by (score descending, B ascending).
type scoredSorter struct{ s []Scored }

func (ss *scoredSorter) Len() int      { return len(ss.s) }
func (ss *scoredSorter) Swap(i, j int) { ss.s[i], ss.s[j] = ss.s[j], ss.s[i] }
func (ss *scoredSorter) Less(i, j int) bool {
	return scoredBefore(ss.s[i].Score, ss.s[i].B, ss.s[j])
}

// preorderSorter orders candidate indices by (prescreen score
// descending, B ascending) — the rescore visit order of the two-tier
// path. The tie-break makes the order, and with it the survivor stats,
// deterministic at any worker count.
type preorderSorter struct {
	order []int
	pre   []float64
	cands []blocking.Candidate
}

func (ps *preorderSorter) Len() int      { return len(ps.order) }
func (ps *preorderSorter) Swap(i, j int) { ps.order[i], ps.order[j] = ps.order[j], ps.order[i] }
func (ps *preorderSorter) Less(i, j int) bool {
	a, b := ps.order[i], ps.order[j]
	if ps.pre[a] != ps.pre[b] {
		return ps.pre[a] > ps.pre[b]
	}
	return ps.cands[a].B < ps.cands[b].B
}

// TopKAppend is TopK appending its results to dst (which may be nil) —
// the allocation-free form: with a recycled dst, a warm query's pair
// list, scores, selection window and sorter all come from the engine's
// pool and the steady state allocates nothing.
//
// A bounded-k ranking runs as partial selection instead of sorting the
// whole scored shard: candidates are inserted into a k-sized window kept
// ordered by (score descending, B ascending) — the exact comparator the
// full sort uses, a strict total order over a shard's distinct B ids, so
// the window always equals the first k rows of the sorted shard.
// Whole-shard queries (k ≤ 0 or k ≥ shard size) sort instead, avoiding
// the window's O(n·k) shifting.
//
// When the model carries a certified prescreen and the shard leaves
// enough slack (see prescreenEngages), the query runs the two-tier path
// instead: approximate scores order the shard, candidates provably
// outside the running k-th best are skipped, and only the survivors pay
// the exact batched kernel — same rows, same bits, less work (see
// topKPrescreen for the exactness argument).
func (e *Engine) TopKAppend(dst []Scored, pa platform.ID, a int, pb platform.ID, k int) ([]Scored, error) {
	ix, ok := e.indexes[[2]platform.ID{pa, pb}]
	if !ok {
		return dst, fmt.Errorf("serve: no candidate index for %s → %s (artifact pairs: %v)", pa, pb, e.Pairs())
	}
	cands, err := ix.Candidates(a)
	if err != nil {
		return dst, err
	}
	sc, _ := e.scratch.Get().(*topkScratch)
	if sc == nil {
		sc = &topkScratch{}
	}
	defer e.scratch.Put(sc)
	pairs := sc.pairs[:0]
	for _, c := range cands {
		pairs = append(pairs, [2]int{a, c.B})
	}
	sc.pairs = pairs
	kk := k
	if kk <= 0 || kk > len(cands) {
		kk = len(cands)
	}
	if e.prescreenEngages(kk, len(cands)) {
		sel, err := e.topKPrescreen(sc, pa, pb, cands, kk)
		if err != nil {
			return dst, err
		}
		sc.sel = sel
		return append(dst, sel...), nil
	}
	e.notePrescreenSkipped()
	if cap(sc.scores) < len(cands) {
		sc.scores = make([]float64, len(cands))
	}
	scores := sc.scores[:len(cands)]
	if err := e.Model.ScoreBatchInto(pa, pb, pairs, e.Workers, scores); err != nil {
		return dst, err
	}
	sel := sc.sel[:0]
	if kk == len(cands) {
		// Whole-shard ranking: a full sort beats the insertion window's
		// O(n·k) shifting once k is the shard itself.
		for i, c := range cands {
			sel = append(sel, Scored{B: c.B, Score: scores[i], Linked: scores[i] > 0})
		}
		sc.sorter.s = sel
		sort.Sort(&sc.sorter)
	} else {
		for i, c := range cands {
			sel = insertScored(sel, kk, c.B, scores[i])
		}
	}
	sc.sel = sel
	return append(dst, sel...), nil
}

// insertScored inserts one candidate into the kk-bounded selection
// window kept ordered by (score descending, B ascending) — the exact
// comparator the whole-shard sort uses, a strict total order over a
// shard's distinct B ids, so the window always equals the first kk rows
// of the sorted scored set regardless of insertion order.
func insertScored(sel []Scored, kk int, b int, s float64) []Scored {
	if len(sel) == kk {
		if !scoredBefore(s, b, sel[kk-1]) {
			return sel // not better than the window's worst
		}
		sel = sel[:kk-1] // drop the worst, insert below
	}
	pos := len(sel)
	for pos > 0 && scoredBefore(s, b, sel[pos-1]) {
		pos--
	}
	sel = append(sel, Scored{})
	copy(sel[pos+1:], sel[pos:])
	sel[pos] = Scored{B: b, Score: s, Linked: s > 0}
	return sel
}

// prescreenEngages reports whether a top-k query should run the
// two-tier path: a prescreen is attached and enabled, the query is
// bounded (kk < shard — a whole-shard ranking needs every exact score
// anyway), and the shard leaves enough prunable slack to pay for the
// approximate pass.
func (e *Engine) prescreenEngages(kk, n int) bool {
	return kk < n && n-kk >= prescreenMinSlack &&
		!e.prescreenOff.Load() && e.Model.HasPrescreen()
}

// topKPrescreen is the two-tier top-k ranking: approximate every
// candidate with the certified prescreen, visit candidates in
// (prescreen desc, B asc) order, and exact-rescore in fixed chunks
// until the remaining prescreen scores sit provably below the running
// k-th best. sc.pairs must already hold the shard's (a, B) pairs.
//
// Exactness: with the certified margin |f − f̃| ≤ ε, a candidate is
// skipped only when f̃ < kth − ε, hence f ≤ f̃ + ε < kth — strictly
// below the window's worst *exact* score, so it cannot enter the top k
// even on a tie-break. The window's k-th best only tightens as chunks
// land, and every true top-k member satisfies f̃ ≥ f − ε ≥ kth − ε at
// every point, so it is always rescored. The window inserts exact
// scores under the engine's strict total order, so the returned rows —
// scores, ranking, tie-breaks — are bit-identical to the exact path's
// at any worker count; only the amount of work varies.
func (e *Engine) topKPrescreen(sc *topkScratch, pa platform.ID, pb platform.ID, cands []blocking.Candidate, kk int) ([]Scored, error) {
	n := len(cands)
	if cap(sc.pre) < n {
		sc.pre = make([]float64, n)
	}
	pre := sc.pre[:n]
	// One impute pass for the whole query: the lease folds the prescreen
	// over the freshly imputed rows and keeps them for the exact rescore
	// chunks below — imputation is as costly as the kernel fold, and
	// paying it twice per survivor used to eat the entire pruning win.
	if err := e.Model.BeginTwoTier(&sc.tt, pa, pb, sc.pairs, e.Workers, pre); err != nil {
		return nil, err
	}
	defer sc.tt.End()
	order := sc.order[:0]
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	sc.order = order
	sc.preSorter = preorderSorter{order: order, pre: pre, cands: cands}
	sort.Sort(&sc.preSorter)

	eps := e.Model.PrescreenEps()
	sel := sc.sel[:0]
	var kth float64
	full := false
	rescored := 0
	for i := 0; i < n; {
		if full && pre[order[i]] < kth-eps {
			break // sorted descending: every later candidate is certified out too
		}
		// Gather the next rescore chunk: the k window seed first, then
		// fixed-size chunks so the stop rule re-checks against a
		// tightened kth between batches.
		chunk := prescreenRescoreChunk
		if i == 0 {
			chunk = kk
		}
		j := i
		ri := sc.rids[:0]
		for j < n && j-i < chunk {
			if full && pre[order[j]] < kth-eps {
				break
			}
			ri = append(ri, order[j])
			j++
		}
		sc.rids = ri
		if cap(sc.rscores) < len(ri) {
			sc.rscores = make([]float64, len(ri))
		}
		rs := sc.rscores[:len(ri)]
		if err := sc.tt.ScoreSubset(ri, e.Workers, rs); err != nil {
			return nil, err
		}
		for t, s := range rs {
			sel = insertScored(sel, kk, cands[order[i+t]].B, s)
		}
		rescored += len(ri)
		i = j
		if len(sel) == kk {
			full, kth = true, sel[kk-1].Score
		}
	}
	e.preQueries.Add(1)
	e.preSurvivors.Add(uint64(rescored))
	e.prePruned.Add(uint64(n - rescored))
	if e.prescreenObs != nil {
		e.prescreenObs.ObservePrescreen(rescored)
	}
	return sel, nil
}

func (e *Engine) notePrescreenSkipped() {
	e.preSkipped.Add(1)
	if e.prescreenObs != nil {
		e.prescreenObs.ObservePrescreenSkipped()
	}
}

// SetPrescreenEnabled toggles the approximate prescreen at runtime (the
// hydra-serve -prescreen=off escape hatch). Disabling never changes any
// served value — it only forces every top-k back to the exact path.
func (e *Engine) SetPrescreenEnabled(on bool) { e.prescreenOff.Store(!on) }

// SetPrescreenObserver wires a metrics sink for prescreen telemetry.
// Call before the engine starts serving; the field is not synchronized.
func (e *Engine) SetPrescreenObserver(obs PrescreenObserver) { e.prescreenObs = obs }

// PrescreenHealth is the engine's prescreen block on /healthz: the
// certified margin and build size plus the running counters, which the
// router scrapes into per-shard gauges. nil when the model carries no
// prescreen at all.
type PrescreenHealth struct {
	Enabled   bool    `json:"enabled"`
	Features  int     `json:"features"`
	Eps       float64 `json:"eps"`
	Queries   uint64  `json:"queries"`
	Survivors uint64  `json:"survivors"`
	Pruned    uint64  `json:"pruned"`
	Skipped   uint64  `json:"skipped"`
	// The fold memo's counters: a hit answers a candidate's tier-1 pass
	// from one map lookup and defers its imputation until (unless) the
	// exact rescore needs the row.
	FoldHits    uint64 `json:"fold_hits"`
	FoldMisses  uint64 `json:"fold_misses"`
	FoldEntries int    `json:"fold_entries"`
}

// PrescreenHealth snapshots the prescreen state and counters (nil for
// an exact-only engine).
func (e *Engine) PrescreenHealth() *PrescreenHealth {
	p := e.Model.Prescreen()
	if p == nil {
		return nil
	}
	h := &PrescreenHealth{
		Enabled:   !e.prescreenOff.Load(),
		Features:  p.Features,
		Eps:       p.Eps,
		Queries:   e.preQueries.Load(),
		Survivors: e.preSurvivors.Load(),
		Pruned:    e.prePruned.Load(),
		Skipped:   e.preSkipped.Load(),
	}
	h.FoldHits, h.FoldMisses, h.FoldEntries = e.Model.PrescreenFoldStats()
	return h
}

// SetImputeTableEnabled toggles the pack-time Eqn-18 impute table at
// runtime (the hydra-serve -impute-table=off escape hatch). Like the
// prescreen toggle it never changes a served bit — the table is built
// through the exact live accumulation, so turning it off only routes
// missing-dimension candidates back through the per-query friend walk.
func (e *Engine) SetImputeTableEnabled(on bool) { e.Model.SetImputeTableEnabled(on) }

// ImputeHealth is the engine's imputation block on /healthz: the
// pack-time table's size and hit/miss counters plus the pair-vector
// cache counters — the two layers that decide how much Eqn-18 work a
// missing-dimension candidate costs. The router scrapes this into
// per-shard gauges like the prescreen block. Unlike PrescreenHealth it
// is never nil: the pair cache exists on every engine, so a table-less
// engine still reports cache health (TableEntries 0, Enabled false).
type ImputeHealth struct {
	Enabled         bool   `json:"enabled"`
	TableEntries    int    `json:"table_entries"`
	TableHits       uint64 `json:"table_hits"`
	TableMisses     uint64 `json:"table_misses"`
	PairCacheSize   int    `json:"pair_cache_size"`
	PairCacheHits   uint64 `json:"pair_cache_hits"`
	PairCacheMisses uint64 `json:"pair_cache_misses"`
}

// pairCacheStatser is the optional Source upgrade both core.System and
// core.Store implement; the interface itself stays narrow.
type pairCacheStatser interface {
	PairCacheStats() (hits, misses uint64)
}

// ImputeHealth snapshots the imputation-layer counters.
func (e *Engine) ImputeHealth() *ImputeHealth {
	h := &ImputeHealth{
		Enabled:       e.Model.ImputeTableEnabled(),
		PairCacheSize: e.Sys.CacheSize(),
	}
	if t := e.Model.ImputeTable(); t != nil {
		h.TableEntries = t.NumEntries()
		h.TableHits, h.TableMisses = t.Stats()
	}
	if pc, ok := e.Sys.(pairCacheStatser); ok {
		h.PairCacheHits, h.PairCacheMisses = pc.PairCacheStats()
	}
	return h
}

// ScoredLess is the engine's exact result order — (score descending,
// B ascending) — exported so the scatter-gather router merges per-shard
// top-k answers with the identical tie-break the single-process engine
// sorts by.
func ScoredLess(x, y Scored) bool {
	return scoredBefore(x.Score, x.B, y)
}

// scoredBefore reports whether a candidate with the given score and B id
// ranks strictly before r in the (score descending, B ascending) order.
func scoredBefore(score float64, b int, r Scored) bool {
	if score != r.Score {
		return score > r.Score
	}
	return b < r.B
}
