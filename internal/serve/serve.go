// Package serve is HYDRA's query front-end: it answers score, link and
// top-k linkage queries against a persisted model without retraining —
// the serving half of the train/serve split. Two startup paths feed the
// same engine:
//
//   - NewEngine loads a v1 model artifact plus the world file it was
//     trained on, rebuilding the feature pipeline and candidate indexes
//     from the raw dataset (the builder-backed path), and
//   - NewEngineFromBundle loads a self-contained v2 bundle — precomputed
//     views, friend slices and index shards — and serves with no world
//     file at all (the snapshot-backed path), bit-identical to the
//     builder but with a cold start that only decodes, never retrains.
//
// Scoring batches ride the existing Workers-governed kernel/feature hot
// paths (Model.ScoreBatchWorkers fans pairs over the pool; the source's
// pair cache is mutex-guarded and shared across queries, so repeated
// queries get warmer). Top-k queries never scan the full B side: each
// A-side account's candidates come from a per-A-side sharded
// blocking.Index built (or decoded) once at startup.
package serve

import (
	"fmt"
	"sort"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
)

// Engine answers linkage queries against one restored model. It is
// immutable after construction apart from the source's internal caches
// and safe for concurrent queries.
type Engine struct {
	// Sys is the feature source behind the model: a dataset-backed
	// core.System (world path) or a snapshot core.Store (bundle path).
	Sys   core.Source
	Model *core.Model
	// Workers pins the per-query batch parallelism (≤ 0 = all cores).
	Workers int

	indexes map[[2]platform.ID]*blocking.Index
}

// DefaultPairCacheEntries bounds the System's pair-vector cache in a
// serving process (≈ a few hundred bytes per entry; this cap keeps a
// long-lived server around ~100 MB of cache even under an adversarial
// query sweep of the full pair space).
const DefaultPairCacheEntries = 1 << 18

// NewEngine restores the artifact over the world dataset and builds the
// candidate indexes for every platform pair the artifact was trained on.
// The restored System's pair cache is capped at DefaultPairCacheEntries;
// call Sys.LimitPairCache to choose a different bound.
func NewEngine(art *pipeline.Artifact, ds *platform.Dataset, workers int) (*Engine, error) {
	st, model, err := art.Restore(ds)
	if err != nil {
		return nil, err
	}
	st.Sys.LimitPairCache(DefaultPairCacheEntries)
	e := &Engine{
		Sys:     st.Sys,
		Model:   model,
		Workers: workers,
		indexes: make(map[[2]platform.ID]*blocking.Index, len(art.Pairs)),
	}
	rules := art.Rules
	rules.Workers = workers
	for _, pp := range art.Pairs {
		if _, ok := e.indexes[pp]; ok {
			continue
		}
		platA, err := ds.Platform(pp[0])
		if err != nil {
			return nil, err
		}
		platB, err := ds.Platform(pp[1])
		if err != nil {
			return nil, err
		}
		ix, err := blocking.BuildIndex(platA, platB, st.Sys.Faces(), rules)
		if err != nil {
			return nil, err
		}
		e.indexes[pp] = ix
	}
	return e, nil
}

// NewEngineFromBundle restores a self-contained serving bundle: the
// snapshot store answers all feature queries and the prebuilt candidate
// indexes are decoded, so startup never touches a dataset. The store's
// pair cache is capped at DefaultPairCacheEntries, like NewEngine's.
func NewEngineFromBundle(b *pipeline.Bundle, workers int) (*Engine, error) {
	store, err := b.Store()
	if err != nil {
		return nil, err
	}
	store.LimitPairCache(DefaultPairCacheEntries)
	model, err := core.ModelFromParts(store, b.Model)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Sys:     store,
		Model:   model,
		Workers: workers,
		indexes: make(map[[2]platform.ID]*blocking.Index, len(b.Indexes)),
	}
	for _, parts := range b.Indexes {
		ix, err := blocking.IndexFromParts(parts)
		if err != nil {
			return nil, err
		}
		e.indexes[[2]platform.ID{parts.PA, parts.PB}] = ix
	}
	for _, pp := range b.Pairs {
		if _, ok := e.indexes[pp]; !ok {
			return nil, fmt.Errorf("serve: bundle lists pair %s → %s but carries no index for it", pp[0], pp[1])
		}
	}
	return e, nil
}

// Pairs lists the indexed platform pairs, lexicographically sorted and
// deduplicated.
func (e *Engine) Pairs() [][2]platform.ID {
	out := make([][2]platform.ID, 0, len(e.indexes))
	for pp := range e.indexes {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Score returns the model's decision value for one account pair.
func (e *Engine) Score(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	return e.Model.Score(pa, a, pb, b)
}

// Link decides whether the pair is the same natural person (score > 0).
func (e *Engine) Link(pa platform.ID, a int, pb platform.ID, b int) (bool, float64, error) {
	s, err := e.Model.Score(pa, a, pb, b)
	if err != nil {
		return false, 0, err
	}
	return s > 0, s, nil
}

// ScoreBatch scores a batch of pairs in one pass over the worker pool.
func (e *Engine) ScoreBatch(pa, pb platform.ID, pairs [][2]int) ([]float64, error) {
	return e.Model.ScoreBatchWorkers(pa, pb, pairs, e.Workers)
}

// Scored is one top-k result row.
type Scored struct {
	B      int     `json:"b"`
	Score  float64 `json:"score"`
	Linked bool    `json:"linked"`
}

// TopK returns A-side account a's k best-scoring B-side candidates on the
// (pa, pb) index — only the account's candidate shard is scored, batched
// over the worker pool. Ties break on the lower B id, so results are
// deterministic at any worker count. k ≤ 0 returns the whole ranked shard.
func (e *Engine) TopK(pa platform.ID, a int, pb platform.ID, k int) ([]Scored, error) {
	ix, ok := e.indexes[[2]platform.ID{pa, pb}]
	if !ok {
		return nil, fmt.Errorf("serve: no candidate index for %s → %s (artifact pairs: %v)", pa, pb, e.Pairs())
	}
	cands, err := ix.Candidates(a)
	if err != nil {
		return nil, err
	}
	pairs := make([][2]int, len(cands))
	for i, c := range cands {
		pairs[i] = [2]int{a, c.B}
	}
	scores, err := e.Model.ScoreBatchWorkers(pa, pb, pairs, e.Workers)
	if err != nil {
		return nil, err
	}
	out := make([]Scored, len(cands))
	for i, c := range cands {
		out[i] = Scored{B: c.B, Score: scores[i], Linked: scores[i] > 0}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].B < out[j].B
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}
