package router

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"
)

// robustCounters are the router's failure-handling telemetry, all
// monotonic and atomic — snapshot them with RobustStats for /metrics.
type robustCounters struct {
	hedgeFired     atomic.Uint64
	hedgeWon       atomic.Uint64
	hedgeCancelled atomic.Uint64
	retryExhausted atomic.Uint64 // requests that ran out of retry or deadline budget
	failFast       atomic.Uint64 // replica attempts denied by an open breaker
}

// BreakerStatus is one replica's circuit-breaker row in RobustStats.
type BreakerStatus struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Name    string `json:"name"`
	State   string `json:"state"` // closed | open | half-open
	Opens   uint64 `json:"opens"` // total times this breaker tripped
}

// RobustStats snapshots the router's failure-handling state: breaker
// states, hedge outcomes, retry-budget exhaustions and fail-fast
// denials. cmd/hydra-router publishes it on /metrics.
type RobustStats struct {
	Breakers       []BreakerStatus `json:"breakers"`
	HedgeFired     uint64          `json:"hedge_fired"`
	HedgeWon       uint64          `json:"hedge_won"`
	HedgeCancelled uint64          `json:"hedge_cancelled"`
	RetryExhausted uint64          `json:"retry_exhausted"`
	FailFast       uint64          `json:"fail_fast"`
}

// RobustStats snapshots breaker and hedge telemetry. Safe for
// concurrent use; the snapshot is not atomic across counters.
func (r *Router) RobustStats() RobustStats {
	st := RobustStats{
		HedgeFired:     r.robust.hedgeFired.Load(),
		HedgeWon:       r.robust.hedgeWon.Load(),
		HedgeCancelled: r.robust.hedgeCancelled.Load(),
		RetryExhausted: r.robust.retryExhausted.Load(),
		FailFast:       r.robust.failFast.Load(),
	}
	for si := range r.breakers {
		for ri := range r.breakers[si] {
			b := &r.breakers[si][ri]
			st.Breakers = append(st.Breakers, BreakerStatus{
				Shard: si, Replica: ri, Name: r.shards[si][ri].Name(),
				State: b.stateName(), Opens: b.opens.Load(),
			})
		}
	}
	return st
}

func (r *Router) breakerAllow(si, ri int) bool {
	if r.opts.BreakerDisabled {
		return true
	}
	return r.breakers[si][ri].allow(time.Now().UnixNano())
}

func (r *Router) breakerSuccess(si, ri int) {
	if !r.opts.BreakerDisabled {
		r.breakers[si][ri].success()
	}
}

func (r *Router) breakerFailure(si, ri int) {
	if !r.opts.BreakerDisabled {
		r.breakers[si][ri].failure(time.Now().UnixNano(),
			r.opts.breakerThreshold(), r.opts.breakerOpenFor(), r.opts.breakerMaxOpen())
	}
}

// backoffWait sleeps the full-jitter exponential backoff before ring
// pass `pass` (≥ 1): uniform over [0, min(BackoffMax, BackoffBase·2^(pass-1))].
// It returns false — without sleeping uselessly — when the wait would
// outlive the deadline budget or the context.
func (r *Router) backoffWait(ctx context.Context, pass int, budgetT time.Time, hasBudget bool) bool {
	mx := r.opts.backoffBase() << uint(pass-1)
	if lim := r.opts.backoffMax(); mx > lim {
		mx = lim
	}
	d := time.Duration(rand.Int63n(int64(mx) + 1))
	if hasBudget && time.Until(budgetT) <= d {
		return false
	}
	if d == 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// afterErr names the last replica failure in budget-exhaustion errors,
// or explains that nothing ever completed.
func afterErr(lastErr error) error {
	if lastErr != nil {
		return lastErr
	}
	return errors.New("no replica attempt completed")
}

// StartAutoRefresh re-probes the serving set in the background on a
// jittered interval (uniform over [interval/2, 3·interval/2]), so a
// recovered replica rejoins and a repaired topology is picked up
// without waiting for a SIGHUP — SIGHUP stays as the forced path.
// onResult, when non-nil, observes every probe's outcome. The returned
// stop function halts the loop and waits for an in-flight probe to
// finish.
func (r *Router) StartAutoRefresh(interval time.Duration, onResult func(error)) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			d := interval/2 + time.Duration(rand.Int63n(int64(interval)+1))
			t := time.NewTimer(d)
			select {
			case <-done:
				t.Stop()
				return
			case <-t.C:
			}
			ctx, cancel := context.WithTimeout(context.Background(),
				2*r.opts.timeout()*time.Duration(len(r.shards)))
			err := r.Refresh(ctx)
			cancel()
			if onResult != nil {
				onResult(err)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
