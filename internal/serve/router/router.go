// Package router is the scatter-gather tier over sharded serving
// bundles: it owns no model state at all, only the shard descriptor a
// coherent set of hydra-serve replicas reports, and answers the same
// score/link/top-k surface as a single engine by
//
//   - routing score and link queries to the one shard the consistent
//     hash assigns the B-side account to (the descriptor is
//     self-certifying, so routing needs no lookup table),
//   - fanning top-k queries out to every shard and merging the per-shard
//     heaps with the engine's exact (score desc, B asc) tie-break —
//     shards partition the candidate space, so the merge reproduces the
//     single-process answer bit for bit,
//   - failing over between replicas of a shard (per-attempt timeout,
//     retry on the next replica) and, when a whole shard is down,
//     returning a degraded top-k response flagged with the missing
//     shards instead of an error,
//   - pinning every response to a single bundle generation: each
//     sub-response reports the generation that answered it, and a
//     fan-out straddling a hot swap is retried until one generation
//     answers all of it.
package router

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
)

// Options tune the router's failure handling.
type Options struct {
	// Timeout bounds one attempt against one replica (default 2s).
	Timeout time.Duration
	// Rings is how many passes over a shard's replica ring to make
	// before declaring the shard down (default 2: every replica gets a
	// retry).
	Rings int
	// MaxAttempts is the per-request retry budget against one shard:
	// the hard cap on actual replica calls (breaker denials are free),
	// hedges included. Default Rings passes' worth (rings × replicas).
	MaxAttempts int
	// BackoffBase seeds the exponential backoff slept between ring
	// passes, with full jitter: pass p sleeps uniform [0, min(BackoffMax,
	// BackoffBase·2^(p-1))). Defaults 2ms base, 250ms cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's circuit breaker open (default 3). BreakerOpenFor is the
	// base open window (default 500ms; doubles per consecutive trip up
	// to BreakerMaxOpen, default 10s). BreakerDisabled turns the
	// breakers off entirely.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	BreakerMaxOpen   time.Duration
	BreakerDisabled  bool
	// HedgeAfter is the tied-hedged-request delay for network top-k
	// scatter: after this long without a primary answer, the same query
	// is fired at a backup replica and the first answer wins (the loser
	// is cancelled). 0 (the default) adapts the delay to the shard's
	// observed p99 attempt latency; negative disables hedging. Shards
	// with in-process replicas never hedge (the call cannot straggle on
	// I/O, and hedging would cost the zero-alloc path its guarantee).
	HedgeAfter time.Duration
	// HedgeMin floors the adaptive hedge delay (default 1ms) so a burst
	// of fast answers cannot talk the router into hedging every query.
	HedgeMin time.Duration
	// DefaultBudget, when positive, is the end-to-end deadline budget
	// the HTTP front-end applies to requests that carry no deadline
	// header of their own. 0 means such requests run unbudgeted.
	DefaultBudget time.Duration
	// HopMargin is subtracted from the remaining budget at every
	// downstream hop (header propagation), reserving time for the reply
	// to travel back and be merged. Default 2ms.
	HopMargin time.Duration
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 2 * time.Second
	}
	return o.Timeout
}

func (o Options) rings() int {
	if o.Rings <= 0 {
		return 2
	}
	return o.Rings
}

func (o Options) maxAttempts(replicas int) int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return o.rings() * replicas
}

func (o Options) backoffBase() time.Duration {
	if o.BackoffBase <= 0 {
		return 2 * time.Millisecond
	}
	return o.BackoffBase
}

func (o Options) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return 250 * time.Millisecond
	}
	return o.BackoffMax
}

func (o Options) breakerThreshold() int32 {
	if o.BreakerThreshold <= 0 {
		return 3
	}
	return int32(o.BreakerThreshold)
}

func (o Options) breakerOpenFor() time.Duration {
	if o.BreakerOpenFor <= 0 {
		return 500 * time.Millisecond
	}
	return o.BreakerOpenFor
}

func (o Options) breakerMaxOpen() time.Duration {
	if o.BreakerMaxOpen <= 0 {
		return 10 * time.Second
	}
	return o.BreakerMaxOpen
}

func (o Options) hedgeMin() time.Duration {
	if o.HedgeMin <= 0 {
		return time.Millisecond
	}
	return o.HedgeMin
}

func (o Options) hopMargin() time.Duration {
	if o.HopMargin <= 0 {
		return 2 * time.Millisecond
	}
	return o.HopMargin
}

// Router fans linkage queries out over shard replicas. Construct with
// New, then Refresh once to verify the set is coherent before serving.
// All methods are safe for concurrent use.
type Router struct {
	shards [][]Backend
	opts   Options

	// pref is the per-shard preferred replica (the last one that
	// answered), so a down replica is skipped without paying its timeout
	// on every query.
	pref []atomic.Int32

	// gather pools the top-k scatter/merge state (see topkGather) so the
	// warm fan-out path allocates nothing.
	gather sync.Pool

	// healthObs, when set (before serving; see SetHealthObserver), is
	// invoked with every successful per-shard health probe — the hook
	// cmd/hydra-router uses to publish per-shard prescreen gauges.
	healthObs func(shard int, h Health)

	// breakers[si][ri] gates shard si's replica ri (see breaker.go).
	breakers [][]breaker
	// lats[si] is the shard's recent successful network-attempt latency
	// window, feeding the adaptive hedge delay.
	lats   []latWindow
	robust robustCounters

	mu sync.RWMutex
	// topo is the canonical split every shard must agree on (its Index
	// field is meaningless here). nil means a single unsharded backend —
	// the router degenerates to a proxy with failover.
	topo  *pipeline.ShardDesc
	pairs [][2]platform.ID
	gens  []uint64 // last generation each shard reported (Refresh/queries)
}

// New builds a router over shards[i] = the replicas of shard i. At least
// one shard with one replica is required; the set is not contacted until
// Refresh.
func New(shards [][]Backend, opts Options) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	for i, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
	}
	breakers := make([][]breaker, len(shards))
	for i, reps := range shards {
		breakers[i] = make([]breaker, len(reps))
	}
	return &Router{
		shards:   shards,
		opts:     opts,
		pref:     make([]atomic.Int32, len(shards)),
		gens:     make([]uint64, len(shards)),
		breakers: breakers,
		lats:     make([]latWindow, len(shards)),
	}, nil
}

// NumShards returns the configured shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// SetHealthObserver installs a callback invoked with every successful
// per-shard health probe (Refresh and Status). Call before serving —
// the field is not synchronized against in-flight probes.
func (r *Router) SetHealthObserver(obs func(shard int, h Health)) { r.healthObs = obs }

func (r *Router) observeHealth(si int, h Health) {
	if r.healthObs != nil {
		r.healthObs(si, h)
	}
}

// Refresh health-checks every shard and verifies the set is coherent:
// every shard slot answers with the matching shard index, and all agree
// on the split (count, hash seed, restricted platforms). Generations may
// legitimately differ mid-rolling-swap; per-query generation pinning
// handles that, so Refresh records them without failing. Must succeed
// once before the router serves; call again (e.g. on SIGHUP) to re-probe
// after a swap or topology repair.
func (r *Router) Refresh(ctx context.Context) error {
	healths := make([]Health, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.callShard(ctx, i, func(cctx context.Context, b Backend) error {
				h, err := b.Health(cctx)
				if err == nil {
					healths[i] = h
					r.observeHealth(i, h)
				}
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("router: shard %d unreachable: %w", i, err)
		}
	}
	var topo *pipeline.ShardDesc
	gens := make([]uint64, len(r.shards))
	for i, h := range healths {
		gens[i] = h.Generation
		d := h.Shard
		if d == nil {
			if len(r.shards) > 1 {
				return fmt.Errorf("router: shard %d serves an unsharded bundle but %d shards are configured — pack with hydra-pack -shards %d",
					i, len(r.shards), len(r.shards))
			}
			continue // single unsharded backend: plain proxy mode
		}
		if d.Count != len(r.shards) {
			return fmt.Errorf("router: shard %d's bundle is a %d-way split but %d shards are configured", i, d.Count, len(r.shards))
		}
		if d.Index != i {
			return fmt.Errorf("router: backend in shard slot %d serves shard %d — membership list out of order", i, d.Index)
		}
		if topo == nil {
			topo = d
		} else if !topo.SameTopology(d) {
			return fmt.Errorf("router: shard %d's split (seed %d, b-side %v) does not match shard %d's (seed %d, b-side %v)",
				i, d.Seed, d.BSide, topo.Index, topo.Seed, topo.BSide)
		}
	}
	r.mu.Lock()
	r.topo = topo
	r.pairs = healths[0].Pairs
	r.gens = gens
	r.mu.Unlock()
	return nil
}

// Pairs returns the platform pairs the serving set reported at the last
// Refresh.
func (r *Router) Pairs() [][2]platform.ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pairs
}

// shardFor resolves which shard owns B-side account b, by the same
// consistent hash the bundles were split with.
func (r *Router) shardFor(pb platform.ID, b int) (int, error) {
	r.mu.RLock()
	topo := r.topo
	r.mu.RUnlock()
	if topo == nil {
		if len(r.shards) == 1 {
			return 0, nil
		}
		return 0, fmt.Errorf("router: not refreshed — call Refresh before serving")
	}
	s := topo.ShardOf(pb, b)
	if s < 0 {
		return 0, fmt.Errorf("router: platform %s is not a sharded B side (sharded: %v) — only A→B queries route", pb, topo.BSide)
	}
	return s, nil
}

// callShard runs fn against shard si's replicas until one succeeds:
// starting at the preferred (last-good) replica, each attempt under its
// own timeout (capped by the deadline budget), walking the ring
// opts.Rings times with full-jitter exponential backoff between passes,
// bounded by the per-request retry budget. Replicas whose circuit
// breaker is open are skipped without paying a call or an attempt; if a
// whole pass admits nothing, the shard fails fast. Query errors (see
// queryError) propagate immediately — another replica would answer the
// same.
func (r *Router) callShard(ctx context.Context, si int, fn func(context.Context, Backend) error) error {
	reps := r.shards[si]
	start := int(r.pref[si].Load())
	budgetT, hasBudget := Budget(ctx)
	maxAttempts := r.opts.maxAttempts(len(reps))
	attempts := 0
	var lastErr error
	for pass := 0; pass < r.opts.rings(); pass++ {
		if pass > 0 && !r.backoffWait(ctx, pass, budgetT, hasBudget) {
			r.robust.retryExhausted.Add(1)
			return fmt.Errorf("router: shard %d: deadline budget exhausted during backoff (%d attempts): %w",
				si, attempts, afterErr(lastErr))
		}
		admitted := 0
		for j := 0; j < len(reps); j++ {
			if ctx.Err() != nil {
				return fmt.Errorf("router: shard %d: %w", si, ctx.Err())
			}
			if hasBudget && time.Until(budgetT) <= 0 {
				r.robust.retryExhausted.Add(1)
				return fmt.Errorf("router: shard %d: deadline budget exhausted after %d attempts: %w",
					si, attempts, afterErr(lastErr))
			}
			idx := (start + j) % len(reps)
			if !r.breakerAllow(si, idx) {
				r.robust.failFast.Add(1)
				lastErr = fmt.Errorf("%s: circuit breaker open", reps[idx].Name())
				continue
			}
			if attempts >= maxAttempts {
				r.robust.retryExhausted.Add(1)
				return fmt.Errorf("router: shard %d: retry budget exhausted (%d attempts): %w",
					si, attempts, afterErr(lastErr))
			}
			admitted++
			attempts++
			cctx, cancel := r.attemptCtx(ctx, budgetT, hasBudget)
			err := fn(cctx, reps[idx])
			cancel()
			if err == nil {
				r.breakerSuccess(si, idx)
				r.pref[si].Store(int32(idx))
				return nil
			}
			if IsQueryError(err) {
				r.breakerSuccess(si, idx) // the replica answered; the query is at fault
				return err
			}
			r.breakerFailure(si, idx)
			lastErr = fmt.Errorf("%s: %w", reps[idx].Name(), err)
		}
		if admitted == 0 {
			return fmt.Errorf("router: shard %d fail-fast: all %d replica breakers open: %w",
				si, len(reps), afterErr(lastErr))
		}
	}
	return fmt.Errorf("router: shard %d down (%d replicas, %d attempts): %w", si, len(reps), attempts, lastErr)
}

// noteGen records the freshest generation a shard has been seen serving.
func (r *Router) noteGen(si int, gen uint64) {
	r.mu.Lock()
	if gen > r.gens[si] {
		r.gens[si] = gen
	}
	r.mu.Unlock()
}

// Score returns the decision value for one pair, routed to the shard
// owning the B-side account, plus the bundle generation that answered.
func (r *Router) Score(ctx context.Context, pa platform.ID, a int, pb platform.ID, b int) (float64, uint64, error) {
	scores, gen, err := r.ScoreBatch(ctx, pa, pb, [][2]int{{a, b}})
	if err != nil {
		return 0, 0, err
	}
	return scores[0], gen, nil
}

// Link decides whether the pair is the same natural person (score > 0).
func (r *Router) Link(ctx context.Context, pa platform.ID, a int, pb platform.ID, b int) (bool, float64, uint64, error) {
	s, gen, err := r.Score(ctx, pa, a, pb, b)
	if err != nil {
		return false, 0, 0, err
	}
	return s > 0, s, gen, nil
}

// ScoreBatch scores a batch of pairs, scattering each pair to the shard
// owning its B-side account and reassembling the scores in input order.
// The whole batch is answered by one bundle generation: if a hot swap
// lands mid-scatter, the batch is retried against the new generation.
// Scores need every owner alive — a down shard fails the batch (there is
// no honest partial answer to "score these pairs").
func (r *Router) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("router: empty batch")
	}
	groups := make(map[int][]int) // shard -> indexes into pairs
	for i, p := range pairs {
		si, err := r.shardFor(pb, p[1])
		if err != nil {
			return nil, 0, err
		}
		groups[si] = append(groups[si], i)
	}
	var lastGens []uint64
	for attempt := 0; attempt < 2; attempt++ {
		scores := make([]float64, len(pairs))
		gens := make([]uint64, 0, len(groups))
		var genMu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, 0, len(groups))
		for si, idxs := range groups {
			wg.Add(1)
			go func(si int, idxs []int) {
				defer wg.Done()
				sub := make([][2]int, len(idxs))
				for j, i := range idxs {
					sub[j] = pairs[i]
				}
				err := r.callShard(ctx, si, func(cctx context.Context, b Backend) error {
					ss, gen, err := b.ScoreBatch(cctx, pa, pb, sub)
					if err != nil {
						return err
					}
					if len(ss) != len(sub) {
						return fmt.Errorf("%d scores for %d pairs", len(ss), len(sub))
					}
					for j, i := range idxs {
						scores[i] = ss[j]
					}
					genMu.Lock()
					gens = append(gens, gen)
					genMu.Unlock()
					r.noteGen(si, gen)
					return nil
				})
				if err != nil {
					genMu.Lock()
					errs = append(errs, err)
					genMu.Unlock()
				}
			}(si, idxs)
		}
		wg.Wait()
		if len(errs) > 0 {
			return nil, 0, errs[0]
		}
		if uniform(gens) {
			return scores, gens[0], nil
		}
		lastGens = gens
	}
	return nil, 0, fmt.Errorf("router: batch straddled concurrent bundle swaps (generations %v) — retry", lastGens)
}

// TopKResult is a scatter-gather top-k answer. Degraded marks a partial
// merge: FailedShards were down after failover, so their slices of the
// candidate space are missing from Results (every present row is still
// exact — shards partition the space, so survivors' rows are unaffected).
type TopKResult struct {
	Results    []serve.Scored `json:"results"`
	Generation uint64         `json:"generation"`
	Degraded   bool           `json:"degraded,omitempty"`
	// FailedShards lists the down shards of a degraded response.
	FailedShards []int `json:"failed_shards,omitempty"`
}

// topkJob is one shard's slot in a pooled top-k fan-out: the query, the
// shard's reusable answer buffer, and the outcome. run is the job's
// goroutine body, bound once when the gather is built: spawning a method
// goroutine (go r.runTopKJob(&jobs[si])) boxes the argument on every
// scatter — one allocation per shard per query — while `go j.run()`
// launches a funcval that already exists, so the warm scatter allocates
// nothing.
type topkJob struct {
	ctx   context.Context
	owner *topkGather // the gather whose WaitGroup the job signals
	run   func()      // () => r.runTopKJob(job), prebound at gather build
	pa    platform.ID
	pb    platform.ID
	a     int
	k     int
	si    int
	res   []serve.Scored // reused across queries; only its storage persists
	gen   uint64
	err   error
}

// topkGather is the pooled scatter/merge state of one top-k fan-out:
// per-shard job slots (each keeping its answer buffer), the generation
// list, and a reusable sorter over the merged rows. One gather serves
// one query at a time; the pool recycles them across queries so the
// warm scatter-gather path allocates nothing.
type topkGather struct {
	jobs   []topkJob
	wg     sync.WaitGroup
	gens   []uint64
	sorter mergeSorter
}

// mergeSorter sorts the merged rows by the engine's exact (score
// descending, B ascending) order — a pooled sort.Interface, because a
// sort.Slice closure would allocate on every query.
type mergeSorter struct{ s []serve.Scored }

func (ms *mergeSorter) Len() int           { return len(ms.s) }
func (ms *mergeSorter) Swap(i, j int)      { ms.s[i], ms.s[j] = ms.s[j], ms.s[i] }
func (ms *mergeSorter) Less(i, j int) bool { return serve.ScoredLess(ms.s[i], ms.s[j]) }

// runTopKJob answers one shard's slice of a top-k fan-out, with the
// same replica failover discipline as callShard (preferred replica
// first, breaker-gated attempts under the retry budget, per-attempt
// timeout capped by the deadline budget, backoff between ring passes,
// query errors propagate immediately). It is inlined rather than routed
// through callShard so the hot path carries no per-query closures:
// in-process TopKAppender backends append into the job's recycled
// buffer and skip the timeout context entirely (the call cannot block
// on I/O); network backends go through timedTopK, which adds tied
// hedging.
func (r *Router) runTopKJob(j *topkJob) {
	defer j.owner.wg.Done()
	reps := r.shards[j.si]
	start := int(r.pref[j.si].Load())
	budgetT, hasBudget := Budget(j.ctx)
	maxAttempts := r.opts.maxAttempts(len(reps))
	attempts := 0
	var lastErr error
	for pass := 0; pass < r.opts.rings(); pass++ {
		if pass > 0 && !r.backoffWait(j.ctx, pass, budgetT, hasBudget) {
			r.robust.retryExhausted.Add(1)
			j.err = fmt.Errorf("router: shard %d: deadline budget exhausted during backoff (%d attempts): %w",
				j.si, attempts, afterErr(lastErr))
			return
		}
		admitted := 0
		for i := 0; i < len(reps); i++ {
			if j.ctx.Err() != nil {
				j.err = fmt.Errorf("router: shard %d: %w", j.si, j.ctx.Err())
				return
			}
			if hasBudget && time.Until(budgetT) <= 0 {
				r.robust.retryExhausted.Add(1)
				j.err = fmt.Errorf("router: shard %d: deadline budget exhausted after %d attempts: %w",
					j.si, attempts, afterErr(lastErr))
				return
			}
			idx := (start + i) % len(reps)
			if !r.breakerAllow(j.si, idx) {
				r.robust.failFast.Add(1)
				lastErr = fmt.Errorf("%s: circuit breaker open", reps[idx].Name())
				continue
			}
			if attempts >= maxAttempts {
				r.robust.retryExhausted.Add(1)
				j.err = fmt.Errorf("router: shard %d: retry budget exhausted (%d attempts): %w",
					j.si, attempts, afterErr(lastErr))
				return
			}
			admitted++
			b := reps[idx]
			winner := idx
			var err error
			if ta, ok := b.(TopKAppender); ok {
				attempts++
				j.res, j.gen, err = ta.TopKAppend(j.ctx, j.res[:0], j.pa, j.a, j.pb, j.k)
				switch {
				case err == nil, IsQueryError(err):
					r.breakerSuccess(j.si, idx)
				default:
					r.breakerFailure(j.si, idx)
					err = fmt.Errorf("%s: %w", b.Name(), err)
				}
			} else {
				// Network replica: timed attempt with tied hedging;
				// breaker and latency bookkeeping happen inside.
				winner, err = r.timedTopK(j, idx, &attempts, maxAttempts, budgetT, hasBudget)
			}
			if err == nil {
				r.pref[j.si].Store(int32(winner))
				r.noteGen(j.si, j.gen)
				j.err = nil
				return
			}
			if IsQueryError(err) {
				j.err = err
				return
			}
			lastErr = err
		}
		if admitted == 0 {
			j.err = fmt.Errorf("router: shard %d fail-fast: all %d replica breakers open: %w",
				j.si, len(reps), afterErr(lastErr))
			return
		}
	}
	j.err = fmt.Errorf("router: shard %d down (%d replicas, %d attempts): %w", j.si, len(reps), attempts, lastErr)
}

// TopK returns account a's k best-scoring B-side candidates across the
// whole sharded candidate space — TopKAppend with a fresh result slice.
func (r *Router) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) (TopKResult, error) {
	return r.TopKAppend(ctx, nil, pa, a, pb, k)
}

// TopKAppend is TopK appending the merged rows into dst (which may be
// nil) — the allocation-free form the HTTP front-end recycles buffers
// through. Every live shard ranks its own slice and the router merges
// the heaps with the engine's exact (score desc, B asc) tie-break —
// bit-identical to a single engine over the unsplit bundle when all
// shards answer. k ≤ 0 returns the full merged ranking. One bundle
// generation answers the whole fan-out: a scatter straddling a hot
// swap is re-fanned-out, and if generations still differ (a rolling
// swap in progress), the answer comes from the newest-generation
// shards alone, with the stale ones flagged in FailedShards — a
// response never mixes generations. A shard that stays down after
// replica failover likewise makes the response Degraded instead of an
// error. The scatter state (per-shard answer buffers, generation list,
// merge sorter) comes from a pool, so a warm query with a recycled dst
// allocates nothing on the all-shards-healthy path.
func (r *Router) TopKAppend(ctx context.Context, dst []serve.Scored, pa platform.ID, a int, pb platform.ID, k int) (TopKResult, error) {
	g, _ := r.gather.Get().(*topkGather)
	if g == nil {
		g = &topkGather{jobs: make([]topkJob, len(r.shards))}
		for si := range g.jobs {
			j := &g.jobs[si]
			j.run = func() { r.runTopKJob(j) }
		}
	}
	defer r.gather.Put(g)
	for attempt := 0; ; attempt++ {
		jobs := g.jobs
		g.wg.Add(len(jobs))
		for si := range jobs {
			j := &jobs[si]
			j.ctx, j.pa, j.a, j.pb, j.k, j.si = ctx, pa, a, pb, k, si
			j.owner = g
			go j.run()
		}
		g.wg.Wait()
		gens := g.gens[:0]
		for i := range jobs {
			if jobs[i].err != nil {
				if IsQueryError(jobs[i].err) {
					return TopKResult{}, jobs[i].err
				}
				continue
			}
			gens = append(gens, jobs[i].gen)
		}
		g.gens = gens
		if len(gens) == 0 {
			var firstErr error
			for i := range jobs {
				if jobs[i].err != nil {
					firstErr = jobs[i].err
					break
				}
			}
			return TopKResult{}, fmt.Errorf("router: all %d shards down: %w", len(r.shards), firstErr)
		}
		if !uniform(gens) && attempt == 0 {
			continue // swap landed mid-scatter; re-fan-out on the new generation
		}
		// Merge the newest generation's answers; anything older (a rolling
		// swap's stragglers) degrades rather than mixes.
		target := gens[0]
		for _, gen := range gens {
			if gen > target {
				target = gen
			}
		}
		merged := dst[:0]
		var failed []int // allocated only on the degraded path
		for si := range jobs {
			if jobs[si].err != nil || jobs[si].gen != target {
				failed = append(failed, si)
				continue
			}
			merged = append(merged, jobs[si].res...)
		}
		g.sorter.s = merged
		sort.Sort(&g.sorter)
		g.sorter.s = nil
		if k > 0 && len(merged) > k {
			merged = merged[:k]
		}
		return TopKResult{
			Results:      merged,
			Generation:   target,
			Degraded:     len(failed) > 0,
			FailedShards: failed,
		}, nil
	}
}

// ShardStatus is one shard's row in the router's health report.
type ShardStatus struct {
	Shard      int    `json:"shard"`
	Replicas   int    `json:"replicas"`
	Healthy    bool   `json:"healthy"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
	// Prescreen relays the shard's two-tier pruning telemetry (nil for
	// prescreen-less bundles).
	Prescreen *serve.PrescreenHealth `json:"prescreen,omitempty"`
	// Impute relays the shard's imputation-layer telemetry (pack-time
	// table and pair-cache hit rates).
	Impute *serve.ImputeHealth `json:"impute,omitempty"`
}

// Status live-probes every shard (through replica failover) and reports
// per-shard health — the router /healthz body.
func (r *Router) Status(ctx context.Context) []ShardStatus {
	out := make([]ShardStatus, len(r.shards))
	var wg sync.WaitGroup
	for si := range r.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			st := ShardStatus{Shard: si, Replicas: len(r.shards[si])}
			err := r.callShard(ctx, si, func(cctx context.Context, b Backend) error {
				h, err := b.Health(cctx)
				if err != nil {
					return err
				}
				st.Healthy = h.OK
				st.Generation = h.Generation
				st.Prescreen = h.Prescreen
				st.Impute = h.Impute
				r.observeHealth(si, h)
				return nil
			})
			if err != nil {
				st.Error = err.Error()
			}
			out[si] = st
		}(si)
	}
	wg.Wait()
	return out
}

// uniform reports whether all generations in the slice are equal.
func uniform(gens []uint64) bool {
	for _, g := range gens[1:] {
		if g != gens[0] {
			return false
		}
	}
	return len(gens) > 0
}
