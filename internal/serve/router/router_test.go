package router

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/synth"
)

// routerEnv is the shared fixture: one model trained through the staged
// pipeline, its unsharded serving bundle and engine (the ground truth
// every scatter-gather answer is diffed against). Built once — training
// dominates test time.
type routerEnv struct {
	bundle *pipeline.Bundle
	single *serve.Engine
	pair   [2]platform.ID
	nA, nB int
}

var (
	envOnce sync.Once
	env     routerEnv
	envErr  error
)

func getEnv(t *testing.T) routerEnv {
	t.Helper()
	envOnce.Do(func() { env, envErr = buildEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

func buildEnv() (routerEnv, error) {
	const seed = 4
	w, err := synth.Generate(synth.DefaultConfig(36, platform.EnglishPlatforms, seed))
	if err != nil {
		return routerEnv{}, err
	}
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 1500
	sysState, err := pipeline.Systemize(w.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: pipeline.LabeledHalf(w.Dataset),
		Lexicons:     features.Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment},
		FeatCfg:      fcfg,
	})
	if err != nil {
		return routerEnv{}, err
	}
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: blocking.DefaultRules(),
		Label: core.DefaultLabelOpts(seed),
	})
	if err != nil {
		return routerEnv{}, err
	}
	fitted, err := pipeline.Fit(blocked, core.DefaultConfig(seed))
	if err != nil {
		return routerEnv{}, err
	}
	bundle, err := fitted.Bundle(0)
	if err != nil {
		return routerEnv{}, err
	}
	single, err := serve.NewEngineFromBundle(bundle, 0)
	if err != nil {
		return routerEnv{}, err
	}
	pair := single.Pairs()[0]
	return routerEnv{
		bundle: bundle,
		single: single,
		pair:   pair,
		nA:     len(bundle.Views[pair[0]]),
		nB:     len(bundle.Views[pair[1]]),
	}, nil
}

// shardBackends splits the env bundle N ways at the given generation and
// wraps each shard engine in a Local backend.
func shardBackends(t *testing.T, count int, gen uint64) ([][]Backend, []*serve.Engine) {
	t.Helper()
	e := getEnv(t)
	subs, err := pipeline.SplitBundle(e.bundle, count, 7, gen)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]Backend, count)
	engines := make([]*serve.Engine, count)
	for i, sb := range subs {
		eng, err := serve.NewEngineFromBundle(sb, 0)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		shards[i] = []Backend{&Local{Src: eng, Label: fmt.Sprintf("local-%d", i)}}
	}
	return shards, engines
}

func newRouter(t *testing.T, shards [][]Backend) *Router {
	t.Helper()
	r, err := New(shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouterShardUnionEquivalence is the tentpole acceptance test: a
// router over N in-process shards answers every score, link, batch and
// top-k query bit-identically to the single engine over the unsplit
// bundle — for N = 1 (trivial split), 2 and 4.
func TestRouterShardUnionEquivalence(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		shards, _ := shardBackends(t, n, 1)
		r := newRouter(t, shards)

		// Top-k: every A account, both truncated and full rankings.
		for a := 0; a < e.nA; a++ {
			for _, k := range []int{5, 0} {
				want, err := e.single.TopK(e.pair[0], a, e.pair[1], k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.TopK(ctx, e.pair[0], a, e.pair[1], k)
				if err != nil {
					t.Fatalf("n=%d a=%d k=%d: %v", n, a, k, err)
				}
				if got.Degraded || got.Generation != 1 {
					t.Fatalf("n=%d a=%d: degraded=%v gen=%d on a healthy set", n, a, got.Degraded, got.Generation)
				}
				if len(want) == 0 && len(got.Results) == 0 {
					continue
				}
				if !reflect.DeepEqual(got.Results, want) {
					t.Fatalf("n=%d a=%d k=%d: router %+v, single %+v", n, a, k, got.Results, want)
				}
			}
		}

		// Scores: one big batch covering every (a, b) pair, in one scatter.
		var pairs [][2]int
		for a := 0; a < e.nA; a++ {
			for b := 0; b < e.nB; b++ {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		want, err := e.single.ScoreBatch(e.pair[0], e.pair[1], pairs)
		if err != nil {
			t.Fatal(err)
		}
		got, gen, err := r.ScoreBatch(ctx, e.pair[0], e.pair[1], pairs)
		if err != nil {
			t.Fatalf("n=%d batch: %v", n, err)
		}
		if gen != 1 {
			t.Fatalf("n=%d batch answered at generation %d", n, gen)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: batch scores differ from single engine", n)
		}

		// Single-pair score and link spot checks.
		for _, p := range [][2]int{{0, 0}, {1, e.nB - 1}, {e.nA - 1, e.nB / 2}} {
			s, _, err := r.Score(ctx, e.pair[0], p[0], e.pair[1], p[1])
			if err != nil {
				t.Fatal(err)
			}
			ws, err := e.single.Score(e.pair[0], p[0], e.pair[1], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if s != ws {
				t.Fatalf("n=%d score(%v) = %v, single %v", n, p, s, ws)
			}
			linked, ls, _, err := r.Link(ctx, e.pair[0], p[0], e.pair[1], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if linked != (ws > 0) || ls != ws {
				t.Fatalf("n=%d link(%v) = (%v,%v), want (%v,%v)", n, p, linked, ls, ws > 0, ws)
			}
		}

		// Query errors propagate as query errors, not shard failures.
		if _, _, err := r.Score(ctx, e.pair[0], 0, e.pair[1], e.nB+100); err == nil || !IsQueryError(err) {
			t.Fatalf("n=%d: out-of-range score returned %v, want query error", n, err)
		}
	}
}

// downBackend fails every call — a crashed replica.
type downBackend struct{ name string }

func (d *downBackend) Name() string { return d.name }
func (d *downBackend) Health(context.Context) (Health, error) {
	return Health{}, fmt.Errorf("connection refused")
}
func (d *downBackend) ScoreBatch(context.Context, platform.ID, platform.ID, [][2]int) ([]float64, uint64, error) {
	return nil, 0, fmt.Errorf("connection refused")
}
func (d *downBackend) TopK(context.Context, platform.ID, int, platform.ID, int) ([]serve.Scored, uint64, error) {
	return nil, 0, fmt.Errorf("connection refused")
}

// TestRouterDegradedShard kills one shard of four (after a healthy
// Refresh) and asserts: top-k still answers, flagged degraded with the
// dead shard listed, and every returned row is exactly the single
// engine's ranking minus the dead shard's slice; score batches touching
// the dead shard fail loudly, batches avoiding it still answer.
func TestRouterDegradedShard(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	shards, engines := shardBackends(t, 4, 1)
	r := newRouter(t, shards) // health-checked while everything is alive
	const dead = 2
	shards[dead][0] = &downBackend{name: "local-2"}
	desc := engines[dead].ShardDesc()

	for a := 0; a < e.nA; a++ {
		full, err := e.single.TopK(e.pair[0], a, e.pair[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		var want []serve.Scored
		for _, s := range full {
			if desc.ShardOf(e.pair[1], s.B) != dead {
				want = append(want, s)
			}
		}
		if len(want) > 5 {
			want = want[:5]
		}
		got, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
		if err != nil {
			t.Fatalf("a=%d: degraded top-k errored: %v", a, err)
		}
		if !got.Degraded || !reflect.DeepEqual(got.FailedShards, []int{dead}) {
			t.Fatalf("a=%d: degraded=%v failed=%v, want degraded with shard %d", a, got.Degraded, got.FailedShards, dead)
		}
		if len(got.Results) != 0 || len(want) != 0 {
			if !reflect.DeepEqual(got.Results, want) {
				t.Fatalf("a=%d: degraded results %+v, want %+v", a, got.Results, want)
			}
		}
	}

	// Batches: routing around the corpse works, through it fails.
	var live, doomed [][2]int
	for b := 0; b < e.nB; b++ {
		if desc.ShardOf(e.pair[1], b) == dead {
			doomed = append(doomed, [2]int{0, b})
		} else {
			live = append(live, [2]int{0, b})
		}
	}
	if len(live) == 0 || len(doomed) == 0 {
		t.Fatal("fixture too small: a shard owns nothing")
	}
	if _, _, err := r.ScoreBatch(ctx, e.pair[0], e.pair[1], live); err != nil {
		t.Fatalf("batch avoiding the dead shard failed: %v", err)
	}
	if _, _, err := r.ScoreBatch(ctx, e.pair[0], e.pair[1], doomed); err == nil {
		t.Fatal("batch through the dead shard did not error")
	}
}

// TestRouterReplicaFailover puts a dead replica first in a shard's ring
// and asserts queries fail over to the live one — and that the router
// remembers the live replica, so the corpse is not retried on the next
// query.
func TestRouterReplicaFailover(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	shards, _ := shardBackends(t, 2, 1)
	shards[0] = append([]Backend{&downBackend{name: "dead-0"}}, shards[0]...)
	r := newRouter(t, shards)

	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("failover left the response degraded: %+v", res)
	}
	if got := r.pref[0].Load(); got != 1 {
		t.Fatalf("preferred replica after failover = %d, want 1", got)
	}
	want, _ := e.single.TopK(e.pair[0], 0, e.pair[1], 5)
	if !reflect.DeepEqual(res.Results, want) {
		t.Fatalf("failover results differ from single engine")
	}
}

// flipBackend answers from gen1 for the first n calls of each kind, then
// from gen2 — a replica observed mid-hot-swap.
type flipBackend struct {
	gen1, gen2 Backend
	mu         sync.Mutex
	topkCalls  int
	batchCalls int
	flipAfter  int
}

func (f *flipBackend) Name() string { return "flip" }
func (f *flipBackend) Health(ctx context.Context) (Health, error) {
	return f.gen2.Health(ctx)
}
func (f *flipBackend) pick(calls int) Backend {
	if calls < f.flipAfter {
		return f.gen1
	}
	return f.gen2
}
func (f *flipBackend) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	f.mu.Lock()
	b := f.pick(f.batchCalls)
	f.batchCalls++
	f.mu.Unlock()
	return b.ScoreBatch(ctx, pa, pb, pairs)
}
func (f *flipBackend) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	f.mu.Lock()
	b := f.pick(f.topkCalls)
	f.topkCalls++
	f.mu.Unlock()
	return b.TopK(ctx, pa, a, pb, k)
}

// TestRouterMixedGenerationRetry scripts a swap landing mid-scatter: one
// shard answers the first fan-out at generation 1 while the other is
// already at 2. The router must retry and deliver a uniform generation-2
// response — and if the shard is still stale on the retry (a rolling
// swap), top-k must answer from the new generation alone, flagged
// degraded, never mixing generations.
func TestRouterMixedGenerationRetry(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	gen1, _ := shardBackends(t, 2, 1)
	gen2, _ := shardBackends(t, 2, 2)

	// Shard 0 flips to gen2 after one stale answer; shard 1 is at gen2.
	flip := &flipBackend{gen1: gen1[0][0], gen2: gen2[0][0], flipAfter: 1}
	r := newRouter(t, [][]Backend{{flip}, gen2[1]})

	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || res.Degraded {
		t.Fatalf("retry did not converge: gen=%d degraded=%v", res.Generation, res.Degraded)
	}
	want, _ := e.single.TopK(e.pair[0], 0, e.pair[1], 5)
	if !reflect.DeepEqual(res.Results, want) {
		t.Fatalf("post-retry results differ from single engine")
	}

	// Batch path: same flip, must converge on generation 2.
	flip2 := &flipBackend{gen1: gen1[0][0], gen2: gen2[0][0], flipAfter: 1}
	r2 := newRouter(t, [][]Backend{{flip2}, gen2[1]})
	var pairs [][2]int
	for b := 0; b < e.nB; b++ {
		pairs = append(pairs, [2]int{0, b})
	}
	_, gen, err := r2.ScoreBatch(ctx, e.pair[0], e.pair[1], pairs)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("batch converged at generation %d, want 2", gen)
	}

	// A shard pinned at the stale generation: top-k degrades to the new
	// generation instead of erroring or mixing.
	stale := &flipBackend{gen1: gen1[0][0], gen2: gen2[0][0], flipAfter: 1 << 30}
	r3 := newRouter(t, [][]Backend{{stale}, gen2[1]})
	res3, err := r3.TopK(ctx, e.pair[0], 0, e.pair[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Generation != 2 || !res3.Degraded || !reflect.DeepEqual(res3.FailedShards, []int{0}) {
		t.Fatalf("rolling-swap top-k: gen=%d degraded=%v failed=%v", res3.Generation, res3.Degraded, res3.FailedShards)
	}
}

// TestRouterSwapMidQuery runs the full hot-swap drill: two shards behind
// Swappables serve a stream of concurrent queries while both swap from
// generation 1 to 2. No query may fail, and every response must carry a
// single generation in {1, 2}. Run under -race this is the end-to-end
// proof for the tentpole's no-dropped-queries acceptance criterion.
func TestRouterSwapMidQuery(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	_, eng1 := shardBackends(t, 2, 1)
	_, eng2 := shardBackends(t, 2, 2)
	holders := []*serve.Swappable{serve.NewSwappable(eng1[0]), serve.NewSwappable(eng1[1])}
	shards := [][]Backend{
		{&Local{Src: holders[0], Label: "swap-0"}},
		{&Local{Src: holders[1], Label: "swap-1"}},
	}
	r := newRouter(t, shards)

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := w % e.nA
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if res.Generation != 1 && res.Generation != 2 {
					errCh <- fmt.Errorf("worker %d: generation %d", w, res.Generation)
					return
				}
			}
		}(w)
	}
	for i, h := range holders {
		if _, err := h.Swap(eng2[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query failed during hot swap: %v", err)
	default:
	}

	// Settled: full-fidelity generation-2 answers, identical to the
	// single engine.
	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := e.single.TopK(e.pair[0], 0, e.pair[1], 5)
	if res.Generation != 2 || res.Degraded || !reflect.DeepEqual(res.Results, want) {
		t.Fatalf("post-swap top-k: gen=%d degraded=%v", res.Generation, res.Degraded)
	}
}

// staticBackend reports a fixed health and fails everything else — for
// Refresh coherence tests.
type staticBackend struct {
	name   string
	health Health
}

func (s *staticBackend) Name() string                           { return s.name }
func (s *staticBackend) Health(context.Context) (Health, error) { return s.health, nil }
func (s *staticBackend) ScoreBatch(context.Context, platform.ID, platform.ID, [][2]int) ([]float64, uint64, error) {
	return nil, 0, fmt.Errorf("static")
}
func (s *staticBackend) TopK(context.Context, platform.ID, int, platform.ID, int) ([]serve.Scored, uint64, error) {
	return nil, 0, fmt.Errorf("static")
}

// TestRouterRefreshCoherence asserts Refresh refuses every way a
// membership list can disagree with the bundles actually being served.
func TestRouterRefreshCoherence(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	shards, _ := shardBackends(t, 2, 1)

	// Shard slots swapped: descriptor index disagrees with the slot.
	r, err := New([][]Backend{shards[1], shards[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(ctx); err == nil {
		t.Error("Refresh accepted out-of-order shard slots")
	}

	// A 2-way split behind a 1-shard router.
	r, err = New([][]Backend{shards[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(ctx); err == nil {
		t.Error("Refresh accepted a 2-way split with 1 configured shard")
	}

	// Mismatched seeds across slots.
	otherSeed, err := pipeline.SplitBundle(e.bundle, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	otherEng, err := serve.NewEngineFromBundle(otherSeed[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err = New([][]Backend{shards[0], {&Local{Src: otherEng, Label: "other"}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(ctx); err == nil {
		t.Error("Refresh accepted shards from different splits")
	}

	// An unsharded bundle in a multi-shard set.
	unsharded := &staticBackend{name: "plain", health: Health{OK: true}}
	r, err = New([][]Backend{shards[0], {unsharded}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(ctx); err == nil {
		t.Error("Refresh accepted an unsharded bundle in a 2-shard set")
	}

	// Single unsharded backend: plain proxy mode, allowed.
	r, err = New([][]Backend{{&Local{Src: e.single, Label: "solo"}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(ctx); err != nil {
		t.Fatalf("proxy mode refused: %v", err)
	}
	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := e.single.TopK(e.pair[0], 0, e.pair[1], 5)
	if !reflect.DeepEqual(res.Results, want) {
		t.Fatal("proxy mode results differ from the engine")
	}

	// Generation divergence is a rolling-swap transient, not a refusal.
	gen2, _ := shardBackends(t, 2, 2)
	gen1, _ := shardBackends(t, 2, 1)
	r, err = New([][]Backend{gen1[0], gen2[1]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(ctx); err != nil {
		t.Fatalf("Refresh refused a mid-rolling-swap set: %v", err)
	}
}

// TestRouterRelaysPrescreenHealth asserts the router's health surface
// carries each shard's two-tier pruning telemetry end to end: the Local
// backend reports the engine's prescreen block, Status relays it per
// shard, and the health observer (the hook cmd/hydra-router publishes
// /metrics gauges through) sees every probe.
func TestRouterRelaysPrescreenHealth(t *testing.T) {
	e := getEnv(t)
	if e.bundle.Prescreen == nil {
		t.Fatal("fixture bundle carries no prescreen")
	}
	shards, engines := shardBackends(t, 2, 1)
	r := newRouter(t, shards)
	// Status fans its probes over the shards concurrently, so the
	// observer fires from multiple goroutines — guard the recording map.
	var seenMu sync.Mutex
	seen := make(map[int]*serve.PrescreenHealth)
	r.SetHealthObserver(func(shard int, h Health) {
		seenMu.Lock()
		seen[shard] = h.Prescreen
		seenMu.Unlock()
	})
	ctx := context.Background()

	// Drive some top-k traffic so the engines' counters move (wide shards
	// are not guaranteed here, so only Queries+Skipped is pinned).
	if _, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 3); err != nil {
		t.Fatal(err)
	}
	statuses := r.Status(ctx)
	for _, st := range statuses {
		if !st.Healthy {
			t.Fatalf("shard %d unhealthy: %s", st.Shard, st.Error)
		}
		if st.Prescreen == nil {
			t.Fatalf("shard %d status relayed no prescreen health", st.Shard)
		}
		if !st.Prescreen.Enabled || st.Prescreen.Eps <= 0 {
			t.Fatalf("shard %d prescreen health malformed: %+v", st.Shard, st.Prescreen)
		}
		if st.Prescreen.Queries+st.Prescreen.Skipped == 0 {
			t.Fatalf("shard %d saw a top-k but reports no prescreen decisions: %+v", st.Shard, st.Prescreen)
		}
		if seen[st.Shard] == nil {
			t.Fatalf("health observer missed shard %d", st.Shard)
		}
	}
	// A prescreen-less engine reports a nil block all the way through.
	exact := engines[0]
	exact.Model.ClearPrescreen()
	if h, err := (&Local{Src: exact}).Health(ctx); err != nil || h.Prescreen != nil {
		t.Fatalf("prescreen-less shard leaked health %+v (err %v)", h.Prescreen, err)
	}
}

// TestRouterRelaysImputeHealth asserts the imputation telemetry travels
// the same road as the prescreen block: the Local backend reports the
// engine's impute health (table entries, pair-cache counters), Status
// relays it per shard, and the health observer sees every probe.
func TestRouterRelaysImputeHealth(t *testing.T) {
	e := getEnv(t)
	if e.bundle.ImputeTable == nil {
		t.Fatal("fixture bundle carries no impute table")
	}
	shards, engines := shardBackends(t, 2, 1)
	r := newRouter(t, shards)
	var seenMu sync.Mutex
	seen := make(map[int]*serve.ImputeHealth)
	r.SetHealthObserver(func(shard int, h Health) {
		seenMu.Lock()
		seen[shard] = h.Impute
		seenMu.Unlock()
	})
	ctx := context.Background()
	if _, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 3); err != nil {
		t.Fatal(err)
	}
	for _, st := range r.Status(ctx) {
		if !st.Healthy {
			t.Fatalf("shard %d unhealthy: %s", st.Shard, st.Error)
		}
		if st.Impute == nil {
			t.Fatalf("shard %d status relayed no impute health", st.Shard)
		}
		if !st.Impute.Enabled || st.Impute.TableEntries == 0 {
			t.Fatalf("shard %d impute health malformed: %+v", st.Shard, st.Impute)
		}
		if seen[st.Shard] == nil {
			t.Fatalf("health observer missed shard %d", st.Shard)
		}
	}
	// The runtime toggle shows up in the health block (answers are
	// bit-identical either way; only the reported state flips).
	engines[0].SetImputeTableEnabled(false)
	if h, err := (&Local{Src: engines[0]}).Health(ctx); err != nil || h.Impute == nil || h.Impute.Enabled {
		t.Fatalf("disabled impute table not reflected in health: %+v (err %v)", h.Impute, err)
	}
}

// TestScatterGatherSteadyStateAllocs pins the pooled scatter/merge
// path: a warm top-k fan-out over in-process shards, appending into a
// recycled result buffer, allocates nothing at all. The spawn loop
// launches prebound per-job closures (`go j.run()`), so not even the
// goroutine-argument box survives; answer buffers, generation list,
// merge sorter, and timeout contexts are pooled or elided. (Named
// outside the race filter on purpose: the race runtime inflates
// AllocsPerRun.)
func TestScatterGatherSteadyStateAllocs(t *testing.T) {
	e := getEnv(t)
	shards, _ := shardBackends(t, 4, 1)
	r := newRouter(t, shards)
	ctx := context.Background()
	var dst []serve.Scored
	for i := 0; i < 8; i++ { // warm the pools and the shard engines
		res, err := r.TopKAppend(ctx, dst[:0], e.pair[0], i%e.nA, e.pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatalf("degraded response from healthy shards: %+v", res)
		}
		dst = res.Results
	}
	if avg := testing.AllocsPerRun(200, func() {
		res, err := r.TopKAppend(ctx, dst[:0], e.pair[0], 3, e.pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		dst = res.Results
	}); avg > 0 {
		t.Fatalf("warm scatter-gather top-k allocates %.1f allocs/op, want 0", avg)
	}
}
