package router

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hydra/internal/platform"
	"hydra/internal/serve"
)

// The router's HTTP front-end mirrors hydra-serve's endpoints, so a
// client cannot tell a router from a single engine except by the extra
// health detail and the degraded-response fields:
//
//	GET  /healthz                        per-shard health + generations
//	POST /score  {"pa","pb","pairs"}     batch scores (scattered by owner)
//	POST /link   (same body)             scores + decisions
//	GET  /topk?pa=&a=&pb=&k=             merged ranked candidates;
//	                                     degraded responses carry
//	                                     "degraded":true,"failed_shards":[...]
//
// Query errors surface as 400 (the shard's own message passes through);
// a shard down after failover is 502 for score/link (no honest partial
// answer) but still 200 + degraded flag for top-k.

// Handler returns the router's HTTP front-end. Every query route runs
// under the deadline-budget middleware: a request carrying the
// serve.DeadlineHeader budget gets it installed on its context (the
// scatter's retries, backoffs and downstream hops all decrement against
// it), a request without one gets Options.DefaultBudget when set, and a
// request whose budget is already spent is refused with 504.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/score", r.handleScore(false))
	mux.HandleFunc("/link", r.handleScore(true))
	mux.HandleFunc("/topk", r.handleTopK)
	return r.budgetMiddleware(mux)
}

// budgetMiddleware installs the request's deadline budget — from the
// header, or Options.DefaultBudget — as a context value (see budget.go
// for why a value, not a context deadline).
func (r *Router) budgetMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t, ok, err := serve.ParseDeadline(req.Header)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if !ok {
			if d := r.opts.DefaultBudget; d > 0 {
				t = time.Now().Add(d)
			} else {
				next.ServeHTTP(w, req)
				return
			}
		}
		if !time.Now().Before(t) {
			httpError(w, http.StatusGatewayTimeout,
				fmt.Errorf("deadline budget exhausted before the request was served"))
			return
		}
		next.ServeHTTP(w, req.WithContext(WithBudget(req.Context(), t)))
	})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	statuses := r.Status(req.Context())
	ok := true
	for _, st := range statuses {
		if !st.Healthy {
			ok = false
		}
	}
	writeJSON(w, map[string]any{
		"ok":     ok,
		"pairs":  r.Pairs(),
		"shards": statuses,
	})
}

// scoreRequest mirrors serve's POST /score body.
type scoreRequest struct {
	PA    platform.ID `json:"pa"`
	PB    platform.ID `json:"pb"`
	Pairs [][2]int    `json:"pairs"`
}

func (r *Router) handleScore(decide bool) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		req.Body = http.MaxBytesReader(w, req.Body, serve.MaxRequestBody)
		var body scoreRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", serve.MaxRequestBody))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(body.Pairs) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty pairs"))
			return
		}
		scores, gen, err := r.ScoreBatch(req.Context(), body.PA, body.PB, body.Pairs)
		if err != nil {
			if IsQueryError(err) {
				httpError(w, http.StatusBadRequest, err)
			} else {
				httpError(w, http.StatusBadGateway, err)
			}
			return
		}
		resp := map[string]any{"scores": scores, "generation": gen}
		if decide {
			linked := make([]bool, len(scores))
			for i, s := range scores {
				linked[i] = s > 0
			}
			resp["linked"] = linked
		}
		writeJSON(w, resp)
	}
}

func (r *Router) handleTopK(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	q := req.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	if errA != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad a=%q", q.Get("a")))
		return
	}
	k := 5
	if s := q.Get("k"); s != "" {
		var err error
		if k, err = strconv.Atoi(s); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad k=%q", s))
			return
		}
	}
	res, err := r.TopK(req.Context(), platform.ID(q.Get("pa")), a, platform.ID(q.Get("pb")), k)
	if err != nil {
		if IsQueryError(err) {
			httpError(w, http.StatusBadRequest, err)
		} else {
			httpError(w, http.StatusBadGateway, err)
		}
		return
	}
	writeJSON(w, res)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
