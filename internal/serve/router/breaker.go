package router

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// breaker is one replica's circuit breaker. The classic three-state
// machine, all-atomic so the zero-alloc scatter path pays one atomic
// load per replica check:
//
//   - closed: calls flow; BreakerThreshold consecutive failures trip it
//     open.
//   - open: calls are denied (fail-fast, no timeout paid) until the open
//     window elapses. The window doubles on consecutive trips (capped)
//     and carries full jitter so a fleet of routers doesn't re-probe a
//     recovering replica in lockstep.
//   - half-open: exactly one probe call is admitted (the CAS in allow
//     wins it). Success closes the breaker; failure re-opens it with a
//     longer window.
//
// Races between concurrent successes/failures are benign: the worst
// outcome is an extra probe or an open window computed from a slightly
// stale streak, never a wedged state — success always fully resets.
type breaker struct {
	state     atomic.Int32 // bkClosed | bkOpen | bkHalfOpen
	fails     atomic.Int32 // consecutive failures while closed
	streak    atomic.Int32 // consecutive trips (exponential open window)
	openUntil atomic.Int64 // unix nanos the open window ends at
	opens     atomic.Uint64
}

const (
	bkClosed int32 = iota
	bkOpen
	bkHalfOpen
)

// allow reports whether a call may proceed now. Claiming the half-open
// probe slot is part of the answer: the caller that gets true after an
// open window MUST report success or failure, or the breaker stays
// half-open until another window elapses.
func (b *breaker) allow(now int64) bool {
	switch b.state.Load() {
	case bkClosed:
		return true
	case bkOpen:
		return now >= b.openUntil.Load() && b.state.CompareAndSwap(bkOpen, bkHalfOpen)
	default: // half-open: the probe slot is taken
		return false
	}
}

// closedNow is a read-only peek used when choosing hedge backups: a
// half-open probe or an open replica is not a good place to send a
// latency-motivated duplicate.
func (b *breaker) closedNow() bool { return b.state.Load() == bkClosed }

func (b *breaker) success() {
	b.state.Store(bkClosed)
	b.fails.Store(0)
	b.streak.Store(0)
}

func (b *breaker) failure(now int64, threshold int32, openFor, maxOpen time.Duration) {
	switch b.state.Load() {
	case bkHalfOpen: // the probe failed: straight back open, longer window
		b.trip(now, openFor, maxOpen)
	case bkClosed:
		if b.fails.Add(1) >= threshold {
			b.trip(now, openFor, maxOpen)
		}
	} // already open: a straggling failure from before the trip — ignore.
}

func (b *breaker) trip(now int64, openFor, maxOpen time.Duration) {
	s := b.streak.Add(1)
	if s > 6 {
		s = 6 // 32× the base window is the exponential ceiling
	}
	d := openFor << uint(s-1)
	if d > maxOpen {
		d = maxOpen
	}
	// Full jitter over [d/2, d): desynchronizes probe traffic across
	// routers without ever halving the floor below d/2.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	b.openUntil.Store(now + int64(d))
	b.fails.Store(0)
	b.opens.Add(1)
	b.state.Store(bkOpen)
}

// stateName renders the breaker state for metrics and status reports.
func (b *breaker) stateName() string {
	switch b.state.Load() {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
