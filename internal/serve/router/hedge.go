package router

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/serve"
)

// Tied hedged requests for the network top-k scatter: when a replica
// has not answered after the hedge delay, the same query is fired at a
// backup replica and the first success wins — the loser's context is
// cancelled and its outcome is abandoned so it cannot poison the
// winner's breaker bookkeeping. Only non-TopKAppender (network)
// backends hedge: an in-process call cannot straggle on I/O, and the
// zero-alloc scatter guarantee would not survive timers and channels.

// latWindow is a shard's ring of recent successful network-attempt
// latencies; its p99 drives the adaptive hedge delay ("hedge only when
// this attempt is already slower than almost everything we've seen").
type latWindow struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // filled entries (≤ len(buf))
	next int
}

func (w *latWindow) record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// p99 returns the window's 99th-percentile latency, or 0 while fewer
// than 8 samples exist (not enough signal to hedge on).
func (w *latWindow) p99() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 8 {
		return 0
	}
	var tmp [64]time.Duration
	copy(tmp[:w.n], w.buf[:w.n])
	s := tmp[:w.n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (w.n * 99) / 100
	if idx >= w.n {
		idx = w.n - 1
	}
	return s[idx]
}

// hedgeDelay is how long a shard's network attempt may run before the
// backup fires: a fixed Options.HedgeAfter when set, otherwise the
// shard's observed p99 clamped to [HedgeMin, timeout/2], falling back
// to timeout/4 before enough samples exist.
func (r *Router) hedgeDelay(si int) time.Duration {
	if d := r.opts.HedgeAfter; d > 0 {
		return d
	}
	d := r.lats[si].p99()
	if d <= 0 {
		return r.opts.timeout() / 4
	}
	if mn := r.opts.hedgeMin(); d < mn {
		d = mn
	}
	if mx := r.opts.timeout() / 2; d > mx {
		d = mx
	}
	return d
}

// hedgeFlight is one in-flight timed call's handle: its cancel and the
// abandoned flag the winner sets (before cancelling) so the loser skips
// breaker bookkeeping for a cancellation it did not earn.
type hedgeFlight struct {
	cancel func()
	ab     *atomic.Bool
}

// timedTopK runs one network top-k attempt against reps[idx] with the
// per-attempt timeout (capped by the deadline budget), hedging to the
// next breaker-closed replica after the hedge delay. It owns breaker
// and latency bookkeeping for the calls it fires, bumps *attempts per
// call fired, and on success copies the winner into j.res/j.gen and
// returns the winning replica index. The returned error is already
// wrapped with the replica name (unless it is a query error, which
// propagates untouched).
func (r *Router) timedTopK(j *topkJob, idx int, attempts *int, maxAttempts int, budgetT time.Time, hasBudget bool) (int, error) {
	reps := r.shards[j.si]
	type outcome struct {
		idx int
		res []serve.Scored
		gen uint64
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(i int) hedgeFlight {
		cctx, cancel := r.attemptCtx(j.ctx, budgetT, hasBudget)
		ab := &atomic.Bool{}
		go func() {
			defer cancel()
			t0 := time.Now()
			res, gen, err := reps[i].TopK(cctx, j.pa, j.a, j.pb, j.k)
			dur := time.Since(t0)
			if ab.Load() {
				return // abandoned: the winner already answered and cancelled us
			}
			switch {
			case err == nil:
				r.breakerSuccess(j.si, i)
				r.lats[j.si].record(dur)
			case IsQueryError(err):
				r.breakerSuccess(j.si, i) // the replica answered; the query is at fault
			default:
				r.breakerFailure(j.si, i)
			}
			ch <- outcome{idx: i, res: res, gen: gen, err: err}
		}()
		return hedgeFlight{cancel: cancel, ab: ab}
	}

	*attempts++
	prim := launch(idx)
	var back hedgeFlight
	defer func() {
		prim.cancel()
		if back.cancel != nil {
			back.cancel()
		}
	}()

	// A hedge needs a distinct breaker-closed backup, retry-budget
	// headroom, and hedging enabled.
	backup := -1
	if r.opts.HedgeAfter >= 0 && len(reps) > 1 && *attempts < maxAttempts {
		for o := 1; o < len(reps); o++ {
			c := (idx + o) % len(reps)
			if r.opts.BreakerDisabled || r.breakers[j.si][c].closedNow() {
				backup = c
				break
			}
		}
	}
	var hedgeC <-chan time.Time
	if backup >= 0 {
		t := time.NewTimer(r.hedgeDelay(j.si))
		defer t.Stop()
		hedgeC = t.C
	}

	hedged := false
	inFlight := 1
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			r.robust.hedgeFired.Add(1)
			*attempts++
			back = launch(backup)
			inFlight++
		case oc := <-ch:
			inFlight--
			loser := prim
			if oc.idx == idx {
				loser = back
			}
			if oc.err == nil {
				j.res = append(j.res[:0], oc.res...)
				j.gen = oc.gen
				if hedged {
					if oc.idx == backup {
						r.robust.hedgeWon.Add(1)
					}
					if inFlight > 0 {
						loser.ab.Store(true)
						loser.cancel()
						r.robust.hedgeCancelled.Add(1)
					}
				}
				return oc.idx, nil
			}
			if IsQueryError(oc.err) {
				if inFlight > 0 {
					loser.ab.Store(true)
					loser.cancel()
				}
				return oc.idx, oc.err
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", reps[oc.idx].Name(), oc.err)
			}
			if inFlight == 0 {
				return -1, firstErr
			}
			hedgeC = nil // the pair is down to one flight; no further hedging
		case <-j.ctx.Done():
			return -1, fmt.Errorf("router: shard %d: %w", j.si, j.ctx.Err())
		}
	}
}
