package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
)

// Health is one shard replica's self-report: which shard of which split
// it serves, at which bundle generation — everything the router needs to
// verify that N replicas form one coherent serving set.
type Health struct {
	OK         bool                `json:"ok"`
	Generation uint64              `json:"generation"`
	Shard      *pipeline.ShardDesc `json:"shard,omitempty"`
	Pairs      [][2]platform.ID    `json:"pairs"`
	// Prescreen is the shard's two-tier pruning telemetry (nil when the
	// bundle carries no prescreen) — scraped into per-shard gauges on
	// the router's /metrics.
	Prescreen *serve.PrescreenHealth `json:"prescreen,omitempty"`
	// Impute is the shard's imputation-layer telemetry (pack-time table
	// and pair-cache hit rates), scraped the same way.
	Impute *serve.ImputeHealth `json:"impute,omitempty"`
}

// Backend is one shard replica the router can fan a query out to. Both
// implementations pin a single (engine, generation) pair per call, so
// every sub-response carries the generation that actually answered it —
// the router's defense against mixing generations during a hot swap.
type Backend interface {
	// Name identifies the replica in errors and health reports.
	Name() string
	Health(ctx context.Context) (Health, error)
	ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error)
	TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error)
}

// TopKAppender is the allocation-free upgrade of Backend.TopK: results
// append into a caller-recycled buffer instead of a fresh slice. Only
// in-process backends implement it — the call is synchronous and never
// blocks on I/O, so the router also skips the per-attempt timeout
// context (and its allocations) for these; context cancellation is
// still honored between failover attempts.
type TopKAppender interface {
	TopKAppend(ctx context.Context, dst []serve.Scored, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error)
}

// queryError marks an error as belonging to the query itself (bad
// platform, out-of-range account, mis-routed pair) rather than to the
// replica that reported it: retrying another replica would return the
// same answer, so the router propagates it immediately instead of
// failing over and eventually flagging the shard as down.
type queryError struct{ err error }

func (q queryError) Error() string { return q.err.Error() }
func (q queryError) Unwrap() error { return q.err }

// IsQueryError reports whether err came from the query itself rather
// than a replica failure (see queryError).
func IsQueryError(err error) bool {
	var q queryError
	return errors.As(err, &q)
}

// Local is an in-process backend: the router calls the engine directly.
// It is how the router tests its scatter-gather against real engines
// without network plumbing, and how one process can serve all shards of
// a small deployment.
type Local struct {
	Src serve.EngineSource
	// Label names the backend in errors ("local-0" style).
	Label string
}

func (l *Local) Name() string {
	if l.Label != "" {
		return l.Label
	}
	return "local"
}

func (l *Local) Health(ctx context.Context) (Health, error) {
	eng, gen := l.Src.Current()
	return Health{OK: true, Generation: gen, Shard: eng.ShardDesc(), Pairs: eng.Pairs(),
		Prescreen: eng.PrescreenHealth(), Impute: eng.ImputeHealth()}, nil
}

func (l *Local) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	eng, gen := l.Src.Current()
	scores, err := eng.ScoreBatch(pa, pb, pairs)
	if err != nil {
		return nil, gen, queryError{err}
	}
	return scores, gen, nil
}

func (l *Local) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	return l.TopKAppend(ctx, nil, pa, a, pb, k)
}

// TopKAppend implements TopKAppender: the engine's own append form does
// the work, so a warm query with a recycled dst allocates nothing.
func (l *Local) TopKAppend(ctx context.Context, dst []serve.Scored, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	eng, gen := l.Src.Current()
	res, err := eng.TopKAppend(dst, pa, a, pb, k)
	if err != nil {
		return res, gen, queryError{err}
	}
	return res, gen, nil
}

// HTTP is a backend over a hydra-serve HTTP endpoint. Transport
// failures and 5xx responses count as replica failures (the router fails
// over to another replica); 4xx responses are query errors and propagate
// as-is.
type HTTP struct {
	// URL is the base endpoint, e.g. "http://10.0.0.3:8080".
	URL string
	// Client overrides http.DefaultClient; per-attempt deadlines come
	// from the router's context, not the client timeout.
	Client *http.Client
	// HopMargin is subtracted from the request's remaining deadline
	// budget before it is stamped on the outgoing hop (default 2ms),
	// reserving time for the reply to travel back and be merged. A
	// budget-carrying request whose remainder is spent fails before the
	// wire is touched.
	HopMargin time.Duration
}

func (h *HTTP) Name() string { return h.URL }

func (h *HTTP) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func (h *HTTP) Health(ctx context.Context) (Health, error) {
	var out Health
	if err := h.get(ctx, "/healthz", &out); err != nil {
		return Health{}, err
	}
	return out, nil
}

func (h *HTTP) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	body, err := json.Marshal(map[string]any{"pa": pa, "pb": pb, "pairs": pairs})
	if err != nil {
		return nil, 0, err
	}
	var out struct {
		Scores     []float64 `json:"scores"`
		Generation uint64    `json:"generation"`
	}
	if err := h.post(ctx, "/score", body, &out); err != nil {
		return nil, 0, err
	}
	if len(out.Scores) != len(pairs) {
		return nil, 0, fmt.Errorf("router: %s returned %d scores for %d pairs", h.URL, len(out.Scores), len(pairs))
	}
	return out.Scores, out.Generation, nil
}

func (h *HTTP) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	q := url.Values{}
	q.Set("pa", string(pa))
	q.Set("a", strconv.Itoa(a))
	q.Set("pb", string(pb))
	q.Set("k", strconv.Itoa(k))
	var out struct {
		Results    []serve.Scored `json:"results"`
		Generation uint64         `json:"generation"`
	}
	if err := h.get(ctx, "/topk?"+q.Encode(), &out); err != nil {
		return nil, 0, err
	}
	return out.Results, out.Generation, nil
}

func (h *HTTP) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.URL+path, nil)
	if err != nil {
		return err
	}
	if err := h.stampBudget(req); err != nil {
		return err
	}
	return h.do(req, out)
}

func (h *HTTP) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if err := h.stampBudget(req); err != nil {
		return err
	}
	return h.do(req, out)
}

// stampBudget propagates the request's deadline budget to the next hop,
// decremented by HopMargin.
func (h *HTTP) stampBudget(req *http.Request) error {
	t, ok := Budget(req.Context())
	if !ok {
		return nil
	}
	margin := h.HopMargin
	if margin <= 0 {
		margin = 2 * time.Millisecond
	}
	t = t.Add(-margin)
	if !time.Now().Before(t) {
		return fmt.Errorf("router: %s: deadline budget exhausted before the call", h.URL)
	}
	serve.SetDeadline(req.Header, t)
	return nil
}

func (h *HTTP) do(req *http.Request, out any) error {
	resp, err := h.client().Do(req)
	if err != nil {
		return fmt.Errorf("router: %s: %w", h.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<14)).Decode(&e); err == nil {
			msg = e.Error
		}
		err := fmt.Errorf("router: %s %s: HTTP %d: %s", h.URL, req.URL.Path, resp.StatusCode, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return queryError{err}
		}
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("router: %s %s: decode response: %w", h.URL, req.URL.Path, err)
	}
	return nil
}
