package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/platform"
	"hydra/internal/serve"
)

// countingBackend fails every call while down (counting them — the
// probe-traffic meter the breaker tests assert against) and delegates
// to inner once revived.
type countingBackend struct {
	name  string
	inner Backend
	calls atomic.Int64
	up    atomic.Bool
}

func (c *countingBackend) Name() string { return c.name }

func (c *countingBackend) Health(ctx context.Context) (Health, error) {
	c.calls.Add(1)
	if !c.up.Load() {
		return Health{}, fmt.Errorf("connection refused")
	}
	return c.inner.Health(ctx)
}

func (c *countingBackend) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	c.calls.Add(1)
	if !c.up.Load() {
		return nil, 0, fmt.Errorf("connection refused")
	}
	return c.inner.ScoreBatch(ctx, pa, pb, pairs)
}

func (c *countingBackend) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	c.calls.Add(1)
	if !c.up.Load() {
		return nil, 0, fmt.Errorf("connection refused")
	}
	return c.inner.TopK(ctx, pa, a, pb, k)
}

// slowBackend delays every query before delegating — a straggling
// replica. It intentionally does not implement TopKAppender, so the
// router treats it as a network replica (timed attempts, hedging).
type slowBackend struct {
	name  string
	inner Backend
	delay time.Duration
}

func (s *slowBackend) Name() string { return s.name }

func (s *slowBackend) wait(ctx context.Context) error {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *slowBackend) Health(ctx context.Context) (Health, error) {
	return s.inner.Health(ctx) // health stays fast so Refresh passes
}

func (s *slowBackend) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	if err := s.wait(ctx); err != nil {
		return nil, 0, err
	}
	return s.inner.ScoreBatch(ctx, pa, pb, pairs)
}

func (s *slowBackend) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	if err := s.wait(ctx); err != nil {
		return nil, 0, err
	}
	return s.inner.TopK(ctx, pa, a, pb, k)
}

// netBackend strips the TopKAppender fast path off an in-process
// backend, forcing the router's timed/hedged network path.
type netBackend struct{ inner Backend }

func (n *netBackend) Name() string                               { return n.inner.Name() }
func (n *netBackend) Health(ctx context.Context) (Health, error) { return n.inner.Health(ctx) }
func (n *netBackend) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	return n.inner.ScoreBatch(ctx, pa, pb, pairs)
}
func (n *netBackend) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	return n.inner.TopK(ctx, pa, a, pb, k)
}

// TestBreakerCapsDeadShardTraffic hard-downs every replica of one shard
// and hammers the router: the circuit breaker must cap the traffic the
// corpse sees (threshold to trip + at most a few half-open probes),
// every response must stay honestly degraded, and the fail-fast and
// breaker-open counters must show up in RobustStats.
func TestBreakerCapsDeadShardTraffic(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	shards, engines := shardBackends(t, 2, 1)
	dead := &countingBackend{name: "dead-1"} // down: up stays false
	desc := engines[1].ShardDesc()
	shards[1] = []Backend{dead}
	r, err := New(shards, Options{
		BreakerOpenFor: time.Hour, // no probes within the test window
		BackoffBase:    time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No healthy Refresh: the shard is born dead (Refresh would fail).

	const queries = 200
	for q := 0; q < queries; q++ {
		a := q % e.nA
		res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
		if err != nil {
			t.Fatalf("query %d errored instead of degrading: %v", q, err)
		}
		if !res.Degraded || !reflect.DeepEqual(res.FailedShards, []int{1}) {
			t.Fatalf("query %d: degraded=%v failed=%v, want shard 1 down", q, res.Degraded, res.FailedShards)
		}
		// Honesty check: present rows are exactly the single engine's
		// ranking minus the dead shard's slice.
		full, err := e.single.TopK(e.pair[0], a, e.pair[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		var want []serve.Scored
		for _, s := range full {
			if desc.ShardOf(e.pair[1], s.B) != 1 {
				want = append(want, s)
			}
		}
		if len(want) > 5 {
			want = want[:5]
		}
		if len(res.Results) != 0 || len(want) != 0 {
			if !reflect.DeepEqual(res.Results, want) {
				t.Fatalf("query %d: degraded rows differ from single engine minus dead shard", q)
			}
		}
	}

	// The bound: without a breaker the corpse would see rings×queries =
	// 400 calls. With it: threshold (3) trips the breaker, and the
	// hour-long open window admits nothing after — a couple extra for
	// races around the trip.
	if got := dead.calls.Load(); got > 6 {
		t.Fatalf("dead replica saw %d calls across %d queries; breaker should cap near the trip threshold", got, queries)
	}
	st := r.RobustStats()
	if st.FailFast == 0 {
		t.Fatal("no fail-fast denials recorded while a breaker was open")
	}
	var deadOpens uint64
	for _, b := range st.Breakers {
		if b.Shard == 1 {
			deadOpens = b.Opens
			if b.State != "open" {
				t.Fatalf("dead replica's breaker state = %q, want open", b.State)
			}
		}
	}
	if deadOpens == 0 {
		t.Fatal("dead replica's breaker never tripped")
	}
}

// TestBreakerHalfOpenProbeRecovers trips a replica's breaker, revives
// the replica, and asserts the half-open probe readmits it: after the
// open window one real call closes the breaker and responses return to
// full fidelity.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	shards, engines := shardBackends(t, 2, 1)
	flaky := &countingBackend{name: "flaky-1", inner: &Local{Src: engines[1], Label: "inner-1"}}
	shards[1] = []Backend{flaky}
	r, err := New(shards, Options{
		BreakerThreshold: 2,
		BreakerOpenFor:   20 * time.Millisecond,
		BackoffBase:      time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Trip it: a few queries against the down replica.
	for q := 0; q < 4; q++ {
		if res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5); err != nil || !res.Degraded {
			t.Fatalf("query %d while down: err=%v degraded=%v", q, err, res.Degraded)
		}
	}
	tripped := flaky.calls.Load()
	if tripped < 2 {
		t.Fatalf("breaker tripped after %d calls, threshold is 2", tripped)
	}

	flaky.up.Store(true)
	// Past the max jittered open window (20ms base, first trip), the
	// half-open probe must readmit the replica.
	deadline := time.Now().Add(2 * time.Second)
	want, _ := e.single.TopK(e.pair[0], 0, e.pair[1], 5)
	for {
		res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded {
			if !reflect.DeepEqual(res.Results, want) {
				t.Fatal("recovered response differs from single engine")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica revived but breaker never readmitted it")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := r.RobustStats()
	for _, b := range st.Breakers {
		if b.Shard == 1 && b.State != "closed" {
			t.Fatalf("recovered replica's breaker state = %q, want closed", b.State)
		}
	}
}

// TestHedgeStragglerFirstAnswerWins pairs a straggling replica with a
// fast one: the hedge must fire after the configured delay, the fast
// backup's answer must win (bit-identical to the single engine), the
// straggler must be cancelled, and the counters must say so.
func TestHedgeStragglerFirstAnswerWins(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	shards, engines := shardBackends(t, 1, 1)
	slow := &slowBackend{name: "slow", inner: shards[0][0], delay: 30 * time.Second}
	fast := &netBackend{inner: &Local{Src: engines[0], Label: "fast"}}
	r, err := New([][]Backend{{slow, fast}}, Options{HedgeAfter: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("hedged response degraded: %+v", res)
	}
	want, _ := e.single.TopK(e.pair[0], 0, e.pair[1], 5)
	if !reflect.DeepEqual(res.Results, want) {
		t.Fatal("hedged answer differs from single engine")
	}
	// The straggler sleeps 30s; the hedge fired at 5ms. Give the 1-CPU
	// CI box two orders of magnitude of slack and it still proves the
	// backup answered.
	if elapsed > 5*time.Second {
		t.Fatalf("hedged query took %v — the backup's answer did not win", elapsed)
	}
	st := r.RobustStats()
	if st.HedgeFired == 0 || st.HedgeWon == 0 || st.HedgeCancelled == 0 {
		t.Fatalf("hedge counters: fired=%d won=%d cancelled=%d, want all > 0",
			st.HedgeFired, st.HedgeWon, st.HedgeCancelled)
	}
	// The winner becomes the preferred replica: the next query goes to
	// the fast one directly, no hedge needed.
	fired := st.HedgeFired
	if res2, err := r.TopK(ctx, e.pair[0], 1, e.pair[1], 5); err != nil || res2.Degraded {
		t.Fatalf("post-hedge query: err=%v res=%+v", err, res2)
	}
	if got := r.RobustStats().HedgeFired; got != fired {
		t.Fatalf("preferred replica not updated: hedge fired again (%d -> %d)", fired, got)
	}
}

// TestRouterRetryBudgetExhausted caps the retry budget below what a
// ring walk would need and asserts the shard call stops there, with the
// exhaustion counted.
func TestRouterRetryBudgetExhausted(t *testing.T) {
	e := getEnv(t)
	ctx := context.Background()
	d0 := &countingBackend{name: "d0"}
	d1 := &countingBackend{name: "d1"}
	r, err := New([][]Backend{{d0, d1}}, Options{
		MaxAttempts: 1,
		BackoffBase: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5); err == nil {
		t.Fatal("all-dead shard answered")
	}
	if got := d0.calls.Load() + d1.calls.Load(); got != 1 {
		t.Fatalf("retry budget of 1 admitted %d calls", got)
	}
	if st := r.RobustStats(); st.RetryExhausted == 0 {
		t.Fatal("retry-budget exhaustion not counted")
	}
}

// TestRouterDeadlineBudgetDegradesSlowShard is the deadline-propagation
// drill: a shard that sleeps past the propagated budget must show up as
// a per-shard entry in failed_shards — the other shards' rows still
// exact — never as a router-wide failure. Run under -race by the
// Makefile filter.
func TestRouterDeadlineBudgetDegradesSlowShard(t *testing.T) {
	e := getEnv(t)
	shards, engines := shardBackends(t, 2, 1)
	desc := engines[1].ShardDesc()
	shards[1] = []Backend{&slowBackend{name: "sleepy", inner: shards[1][0], delay: 30 * time.Second}}
	r, err := New(shards, Options{BackoffBase: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	budget := 150 * time.Millisecond
	ctx := WithBudget(context.Background(), time.Now().Add(budget))
	start := time.Now()
	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budgeted query errored router-wide: %v", err)
	}
	if !res.Degraded || !reflect.DeepEqual(res.FailedShards, []int{1}) {
		t.Fatalf("degraded=%v failed=%v, want the sleeping shard flagged", res.Degraded, res.FailedShards)
	}
	full, err := e.single.TopK(e.pair[0], 0, e.pair[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []serve.Scored
	for _, s := range full {
		if desc.ShardOf(e.pair[1], s.B) != 1 {
			want = append(want, s)
		}
	}
	if len(want) > 5 {
		want = want[:5]
	}
	if len(res.Results) != 0 || len(want) != 0 {
		if !reflect.DeepEqual(res.Results, want) {
			t.Fatal("degraded rows differ from single engine minus the sleeping shard")
		}
	}
	// The answer must arrive near the budget, not the straggler's 30s.
	if elapsed > 10*time.Second {
		t.Fatalf("budgeted query took %v, budget was %v", elapsed, budget)
	}
	if st := r.RobustStats(); st.RetryExhausted == 0 {
		t.Fatal("budget exhaustion not counted")
	}

	// Same drill through the HTTP front-end and the deadline header: the
	// response is 200 + degraded JSON, not an error.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/topk?pa=%s&a=0&pb=%s&k=5", srv.URL, e.pair[0], e.pair[1]), nil)
	serve.SetDeadline(req.Header, time.Now().Add(budget))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted HTTP top-k: status %d, want 200 + degraded", resp.StatusCode)
	}
	var out TopKResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !reflect.DeepEqual(out.FailedShards, []int{1}) {
		t.Fatalf("HTTP budgeted response: degraded=%v failed=%v", out.Degraded, out.FailedShards)
	}

	// An already-spent budget is refused outright with 504.
	req2, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/topk?pa=%s&a=0&pb=%s&k=5", srv.URL, e.pair[0], e.pair[1]), nil)
	req2.Header.Set(serve.DeadlineHeader, "0")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spent budget: status %d, want 504", resp2.StatusCode)
	}
}

// TestRouterAutoRefresh asserts the background jittered re-probe loop
// actually probes (the health observer sees repeated rounds) and that
// stop halts it.
func TestRouterAutoRefresh(t *testing.T) {
	e := getEnv(t)
	_ = e
	shards, _ := shardBackends(t, 2, 1)
	r := newRouter(t, shards)
	var mu sync.Mutex
	probes := 0
	r.SetHealthObserver(func(shard int, h Health) {
		mu.Lock()
		probes++
		mu.Unlock()
	})
	stop := r.StartAutoRefresh(5*time.Millisecond, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := probes
		mu.Unlock()
		if n >= 4 { // ≥ 2 full rounds over 2 shards
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-refresh made %d probes in 5s, want ≥ 4", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	mu.Lock()
	after := probes
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	final := probes
	mu.Unlock()
	if final > after+2 { // an in-flight round may land; the loop must not continue
		t.Fatalf("auto-refresh kept probing after stop: %d -> %d", after, final)
	}
}
