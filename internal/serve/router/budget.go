package router

import (
	"context"
	"time"
)

// The deadline budget is carried as a context VALUE (the absolute wall
// time the end-to-end answer is due), not as a context deadline on the
// scatter's parent context. The distinction is the whole point: when the
// budget runs out mid-scatter, the router must still be alive to merge
// the shards that did answer and return an honest degraded response —
// a cancelled parent context would kill the merge along with the
// stragglers. Per-attempt contexts are capped at the budget, so a shard
// sleeping past it produces a per-shard timeout entry in failed_shards,
// never a router-wide failure.

type budgetKey struct{}

// WithBudget returns ctx carrying the absolute deadline t as the
// request's end-to-end answer budget. Every retry, backoff sleep and
// downstream hop decrements against it.
func WithBudget(ctx context.Context, t time.Time) context.Context {
	return context.WithValue(ctx, budgetKey{}, t)
}

// Budget reports the deadline budget carried by ctx, if any.
func Budget(ctx context.Context) (time.Time, bool) {
	t, ok := ctx.Value(budgetKey{}).(time.Time)
	return t, ok
}

// attemptCtx derives one replica attempt's context: the per-attempt
// timeout, further capped by whatever remains of the request's deadline
// budget.
func (r *Router) attemptCtx(ctx context.Context, budgetT time.Time, hasBudget bool) (context.Context, context.CancelFunc) {
	d := r.opts.timeout()
	if hasBudget {
		if rem := time.Until(budgetT); rem < d {
			d = rem
		}
	}
	return context.WithTimeout(ctx, d)
}
