package serve

import (
	"fmt"
)

// Prewarm runs one discarded top-k per indexed A-side account, before
// the engine is published: it populates the pair cache and the
// certified prescreen's fold memo, materializes a mapped bundle's hot
// sections, and primes the scratch pool — so the first real queries
// after a hot swap don't pay the cold-cache tail (PR 6 measured the
// swap pause p99 at 11.5 ms, almost all of it post-swap cache warmup).
// Queries are pure, so prewarming cannot change a single served bit;
// it only moves the warmup cost from the first unlucky clients to the
// swap path itself, where it overlaps with the old generation still
// serving.
//
// limit caps how many A-side accounts are warmed per platform pair
// (spread from account 0 upward; ≤ 0 warms every account). Capping
// matters for out-of-RAM mapped engines, where full prewarming would
// fault in the entire working set that lazy mapping exists to avoid.
func (e *Engine) Prewarm(limit int) error {
	var dst []Scored
	for _, pp := range e.Pairs() {
		pa, pb := pp[0], pp[1]
		n := e.NumAccounts(pa)
		if n < 0 {
			continue
		}
		if limit > 0 && n > limit {
			n = limit
		}
		for a := 0; a < n; a++ {
			var err error
			dst, err = e.TopKAppend(dst[:0], pa, a, pb, 5)
			if err != nil {
				return fmt.Errorf("serve: prewarm %s/%d->%s: %w", pa, a, pb, err)
			}
		}
	}
	return nil
}
