package serve

import (
	"bytes"
	"testing"

	"hydra/internal/pipeline"
	"hydra/internal/platform"
)

// benchEnv reuses the test fixture; training dominates setup, so the
// benchmarks share one engine — the bundle-backed one, the deployed
// configuration and the one whose snapshot store serves friend lookups
// allocation-free (the world-backed engine is bit-identical but ranks
// live-graph friends per miss). The pair cache is pre-warmed with a full
// batch so the numbers reflect a long-lived server's steady state.
func benchEnv(b *testing.B) (testEnv, [][2]int) {
	b.Helper()
	envOnce.Do(func() { env, envErr = buildEnv() })
	if envErr != nil {
		b.Fatal(envErr)
	}
	blk := env.task.Blocks[0]
	pairs := make([][2]int, len(blk.Cands))
	for i, c := range blk.Cands {
		pairs[i] = [2]int{c.A, c.B}
	}
	if _, err := env.beng.ScoreBatch(blk.PA, blk.PB, pairs); err != nil {
		b.Fatal(err)
	}
	return env, pairs
}

// BenchmarkServeScore measures single-pair score latency on the serving
// path (warm pair cache: batched kernel fold over the compacted support
// set). Allocs/op is the zero-alloc steady-state claim, measured.
func BenchmarkServeScore(b *testing.B) {
	e, pairs := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := e.beng.Score(platform.Twitter, p[0], platform.Facebook, p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeTopK measures a top-k query: one sharded index lookup,
// a batched scoring pass over the shard, and bounded partial selection —
// through the recycled-buffer TopKAppend, so the steady state is
// allocation-free.
func BenchmarkServeTopK(b *testing.B) {
	e, pairs := benchEnv(b)
	var dst []Scored
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := pairs[i%len(pairs)][0]
		var err error
		if dst, err = e.beng.TopKAppend(dst[:0], platform.Twitter, a, platform.Facebook, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeTopKImputeTableOn / ...Off price the pack-time Eqn-18
// table on the same top-k stream: identical engines from the same
// bundle, one with the table consulted and one with the
// -impute-table=off escape hatch, so the delta is exactly the cost of
// re-deriving friend-pair sums live per scored pair with missing dims.
func BenchmarkServeTopKImputeTableOn(b *testing.B) {
	benchTopKImputeTable(b, true)
}

func BenchmarkServeTopKImputeTableOff(b *testing.B) {
	benchTopKImputeTable(b, false)
}

func benchTopKImputeTable(b *testing.B, on bool) {
	e, pairs := benchEnv(b)
	if !e.beng.Model.HasImputeTable() {
		b.Fatal("fixture bundle carries no impute table")
	}
	eng, err := NewEngineFromBundle(e.bundle, 0)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetImputeTableEnabled(on)
	var dst []Scored
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := pairs[i%len(pairs)][0]
		if dst, err = eng.TopKAppend(dst[:0], platform.Twitter, a, platform.Facebook, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatch measures batched score throughput over the whole
// candidate set (pairs/op = len(pairs)) into a reused output slice.
func BenchmarkServeBatch(b *testing.B) {
	e, pairs := benchEnv(b)
	out := make([]float64, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.beng.Model.ScoreBatchInto(platform.Twitter, platform.Facebook, pairs, e.beng.Workers, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBundleDecodeV2 and ...V3 isolate the bundle decode the
// two wire formats pay at cold start — the v3 binary sections exist to
// win exactly this comparison.
func BenchmarkServeBundleDecodeV2(b *testing.B) {
	e, _ := benchEnv(b)
	v2 := *e.bundle
	v2.Version = pipeline.BundleVersionJSON
	var buf bytes.Buffer
	if err := pipeline.WriteBundle(&buf, &v2); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.ReadBundle(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeBundleDecodeV3(b *testing.B) {
	e, _ := benchEnv(b)
	b.SetBytes(int64(len(e.bundleBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.ReadBundle(bytes.NewReader(e.bundleBytes)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBundleColdStartWorld measures the artifact+world startup
// path from the serialized artifact: decode it, restore the feature
// system from the recipe (LDA retrain included) and rebuild the
// candidate indexes from the dataset.
func BenchmarkBundleColdStartWorld(b *testing.B) {
	e, _ := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := pipeline.ReadArtifact(bytes.NewReader(e.artBytes))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewEngine(art, e.ds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBundleColdStartBundle measures the self-contained startup
// path from the serialized bundle: decode the precomputed views and
// index shards and restore the snapshot store — no dataset, no
// retraining. The gap to ColdStartWorld is the point of the bundle
// format.
func BenchmarkBundleColdStartBundle(b *testing.B) {
	e, _ := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bundle, err := pipeline.ReadBundle(bytes.NewReader(e.bundleBytes))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewEngineFromBundle(bundle, 0); err != nil {
			b.Fatal(err)
		}
	}
}
