package serve

import (
	"bytes"
	"testing"

	"hydra/internal/pipeline"
	"hydra/internal/platform"
)

// benchEnv reuses the test fixture; training dominates setup, so the
// benchmarks share one engine. The pair cache is pre-warmed with a full
// batch so the numbers reflect a long-lived server's steady state.
func benchEnv(b *testing.B) (testEnv, [][2]int) {
	b.Helper()
	envOnce.Do(func() { env, envErr = buildEnv() })
	if envErr != nil {
		b.Fatal(envErr)
	}
	blk := env.task.Blocks[0]
	pairs := make([][2]int, len(blk.Cands))
	for i, c := range blk.Cands {
		pairs[i] = [2]int{c.A, c.B}
	}
	if _, err := env.eng.ScoreBatch(blk.PA, blk.PB, pairs); err != nil {
		b.Fatal(err)
	}
	return env, pairs
}

// BenchmarkServeScore measures single-pair score latency on the serving
// path (warm pair cache: kernel expansion over the support vectors).
func BenchmarkServeScore(b *testing.B) {
	e, pairs := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := e.eng.Score(platform.Twitter, p[0], platform.Facebook, p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeTopK measures a top-k query: one sharded index lookup plus
// a batched scoring pass over the shard.
func BenchmarkServeTopK(b *testing.B) {
	e, pairs := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := pairs[i%len(pairs)][0]
		if _, err := e.eng.TopK(platform.Twitter, a, platform.Facebook, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatch measures batched score throughput over the whole
// candidate set (pairs/op = len(pairs)).
func BenchmarkServeBatch(b *testing.B) {
	e, pairs := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.eng.ScoreBatch(platform.Twitter, platform.Facebook, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBundleColdStartWorld measures the artifact+world startup
// path from the serialized artifact: decode it, restore the feature
// system from the recipe (LDA retrain included) and rebuild the
// candidate indexes from the dataset.
func BenchmarkBundleColdStartWorld(b *testing.B) {
	e, _ := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := pipeline.ReadArtifact(bytes.NewReader(e.artBytes))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewEngine(art, e.ds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBundleColdStartBundle measures the self-contained startup
// path from the serialized bundle: decode the precomputed views and
// index shards and restore the snapshot store — no dataset, no
// retraining. The gap to ColdStartWorld is the point of the bundle
// format.
func BenchmarkBundleColdStartBundle(b *testing.B) {
	e, _ := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bundle, err := pipeline.ReadBundle(bytes.NewReader(e.bundleBytes))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewEngineFromBundle(bundle, 0); err != nil {
			b.Fatal(err)
		}
	}
}
