package serve

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"hydra/internal/platform"
)

// imputePair restores two engines from the same table-carrying bundle:
// one consulting the pack-time Eqn-18 table, one with the
// -impute-table=off escape hatch walking friends live. Everything a
// client can see must be identical between them.
func imputePair(t *testing.T, workers int) (on, off *Engine) {
	t.Helper()
	e := getEnv(t)
	on, err := NewEngineFromBundle(e.bundle, workers)
	if err != nil {
		t.Fatal(err)
	}
	if !on.Model.HasImputeTable() {
		t.Fatal("fixture bundle carries no impute table — pack-time build is broken")
	}
	off, err = NewEngineFromBundle(e.bundle, workers)
	if err != nil {
		t.Fatal(err)
	}
	off.SetImputeTableEnabled(false)
	return on, off
}

// TestImputeTableServingBitExact is the acceptance gate for the
// pack-time table on the serving surfaces: byte-identical REPL output
// table-on vs table-off, and row-identical top-k over every A-side
// account at workers {1,4}. The table is a precomputation of the live
// path's exact float sequence, so any divergence is a bug, not a
// tradeoff.
func TestImputeTableServingBitExact(t *testing.T) {
	e := getEnv(t)
	na := len(e.bundle.Views[platform.Twitter])
	for _, workers := range []int{1, 4} {
		on, off := imputePair(t, workers)
		for a := 0; a < na; a++ {
			got, err := on.TopK(platform.Twitter, a, platform.Facebook, 5)
			if err != nil {
				t.Fatal(err)
			}
			want, err := off.TopK(platform.Twitter, a, platform.Facebook, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d a=%d: %d rows vs %d", workers, a, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d a=%d row %d: table %+v vs live %+v", workers, a, i, got[i], want[i])
				}
			}
		}
		ih := on.ImputeHealth()
		if ih == nil || !ih.Enabled || ih.TableHits == 0 {
			t.Fatalf("workers=%d: table never consulted — the comparison is vacuous (health %+v)", workers, ih)
		}
		oh := off.ImputeHealth()
		if oh == nil || oh.Enabled {
			t.Fatalf("workers=%d: off-twin still reports the table enabled: %+v", workers, oh)
		}
	}

	// REPL byte-diff: the same command script through both engines.
	on, off := imputePair(t, 1)
	script := []string{"pairs"}
	for a := 0; a < 6; a++ {
		script = append(script,
			"topk twitter "+strconv.Itoa(a)+" facebook 5",
			"topk twitter "+strconv.Itoa(a)+" facebook 1",
			"score twitter "+strconv.Itoa(a)+" facebook "+strconv.Itoa(a),
			"link twitter "+strconv.Itoa(a)+" facebook "+strconv.Itoa(a),
			"batch twitter facebook "+strconv.Itoa(a)+":0 "+strconv.Itoa(a)+":1",
		)
	}
	input := strings.Join(script, "\n")
	var onOut, offOut bytes.Buffer
	if err := on.REPL(strings.NewReader(input), &onOut); err != nil {
		t.Fatal(err)
	}
	if err := off.REPL(strings.NewReader(input), &offOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onOut.Bytes(), offOut.Bytes()) {
		t.Fatalf("REPL output differs table-on vs table-off:\n--- table on ---\n%s\n--- table off ---\n%s", onOut.String(), offOut.String())
	}
}

// TestImputeHealthCounters pins the /healthz impute block's semantics:
// always present, pair-cache stats live from the first engine, table
// stats advancing only on the table-consulting twin.
func TestImputeHealthCounters(t *testing.T) {
	on, off := imputePair(t, 1)
	for _, eng := range []*Engine{on, off} {
		if ih := eng.ImputeHealth(); ih == nil {
			t.Fatal("ImputeHealth must never be nil — the pair cache exists on every engine")
		}
	}
	if _, err := on.TopK(platform.Twitter, 0, platform.Facebook, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := off.TopK(platform.Twitter, 0, platform.Facebook, 5); err != nil {
		t.Fatal(err)
	}
	ih := on.ImputeHealth()
	if ih.TableEntries == 0 {
		t.Fatalf("table-on engine reports no entries: %+v", ih)
	}
	if ih.TableHits+ih.TableMisses == 0 {
		t.Fatalf("table-on engine served a top-k without consulting the table: %+v", ih)
	}
	oh := off.ImputeHealth()
	if oh.TableHits != 0 && oh.Enabled {
		t.Fatalf("table-off engine consulted the table: %+v", oh)
	}
	if oh.PairCacheSize == 0 && oh.PairCacheHits+oh.PairCacheMisses == 0 {
		t.Fatalf("pair cache untouched after a top-k: %+v", oh)
	}
}
