package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// The prescreen oracles. The two-tier top-k path promises *bit-identical*
// output to the exact engine — not approximately equal, identical — so
// every test here diffs the prescreen engine against an exact-only twin:
// row-by-row over the full k/worker grid, and byte-by-byte over the REPL
// and HTTP front-ends. The candidate indexes are widened to the full
// cross product first: the blocking rules leave shards of ~3 candidates
// where a k=5 query has nothing to prune, and an unengaged prescreen
// would make every assertion vacuous (TestPrescreenBitExact checks it
// actually engaged).

// wideBundle returns a copy of the bundle whose indexes hold the full
// A×B cross product — production-shaped shards for the pruning path.
func wideBundle(b *pipeline.Bundle) *pipeline.Bundle {
	c := *b
	c.Indexes = make([]blocking.IndexParts, len(b.Indexes))
	for i, ix := range b.Indexes {
		na := len(b.Views[ix.PA])
		nb := len(b.Views[ix.PB])
		byA := make([][]blocking.Candidate, na)
		for a := 0; a < na; a++ {
			shard := make([]blocking.Candidate, nb)
			for bb := 0; bb < nb; bb++ {
				shard[bb] = blocking.Candidate{A: a, B: bb}
			}
			byA[a] = shard
		}
		c.Indexes[i] = blocking.IndexParts{PA: ix.PA, PB: ix.PB, Rules: ix.Rules, ByA: byA}
	}
	return &c
}

// widePair returns two engines over the wide index at the given worker
// count: one with the bundle's prescreen active, one forced exact-only.
func widePair(t testing.TB, b *pipeline.Bundle, workers int) (pre, exact *Engine) {
	t.Helper()
	if b.Prescreen == nil {
		t.Fatal("bundle carries no prescreen — packBundle should have built one for an RBF model")
	}
	wb := wideBundle(b)
	pre, err := NewEngineFromBundle(wb, workers)
	if err != nil {
		t.Fatal(err)
	}
	exact, err = NewEngineFromBundle(wb, workers)
	if err != nil {
		t.Fatal(err)
	}
	exact.SetPrescreenEnabled(false)
	return pre, exact
}

// TestPrescreenBitExact diffs the two-tier engine against the exact-only
// twin over every A-side account and a k/worker grid, then byte-diffs
// the REPL and HTTP front-ends — the serving surfaces a user can see.
func TestPrescreenBitExact(t *testing.T) {
	e := getEnv(t)
	for _, workers := range []int{1, 4} {
		pre, exact := widePair(t, e.bundle, workers)
		na := len(e.bundle.Views[platform.Twitter])
		for _, k := range []int{1, 5} {
			for a := 0; a < na; a++ {
				got, err := pre.TopK(platform.Twitter, a, platform.Facebook, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := exact.TopK(platform.Twitter, a, platform.Facebook, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d k=%d a=%d: %d rows vs %d", workers, k, a, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d k=%d a=%d row %d: %+v vs %+v", workers, k, a, i, got[i], want[i])
					}
				}
			}
		}
		ph := pre.PrescreenHealth()
		if ph == nil || ph.Queries == 0 {
			t.Fatalf("workers=%d: prescreen never engaged — the oracle is vacuous (health %+v)", workers, ph)
		}
		if ph.Pruned == 0 {
			t.Fatalf("workers=%d: prescreen engaged but pruned nothing (ε too loose?): %+v", workers, ph)
		}
		if eh := exact.PrescreenHealth(); eh == nil || eh.Enabled || eh.Queries != 0 {
			t.Fatalf("workers=%d: exact-only twin ran the prescreen: %+v", workers, eh)
		}
	}

	// REPL byte-diff: the same command script through both engines.
	pre, exact := widePair(t, e.bundle, 1)
	script := []string{"pairs"}
	for a := 0; a < 6; a++ {
		script = append(script,
			"topk twitter "+strconv.Itoa(a)+" facebook 5",
			"topk twitter "+strconv.Itoa(a)+" facebook 1",
			"score twitter "+strconv.Itoa(a)+" facebook "+strconv.Itoa(a),
			"batch twitter facebook "+strconv.Itoa(a)+":0 "+strconv.Itoa(a)+":1",
		)
	}
	input := strings.Join(script, "\n")
	var preOut, exactOut bytes.Buffer
	if err := pre.REPL(strings.NewReader(input), &preOut); err != nil {
		t.Fatal(err)
	}
	if err := exact.REPL(strings.NewReader(input), &exactOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preOut.Bytes(), exactOut.Bytes()) {
		t.Fatalf("REPL output differs between prescreen and exact engines:\n--- prescreen ---\n%s\n--- exact ---\n%s", preOut.String(), exactOut.String())
	}

	// HTTP byte-diff over the query endpoints (healthz is exempt — it
	// intentionally reports prescreen telemetry).
	preSrv := httptest.NewServer(pre.Handler())
	defer preSrv.Close()
	exactSrv := httptest.NewServer(exact.Handler())
	defer exactSrv.Close()
	for a := 0; a < 6; a++ {
		path := "/topk?pa=twitter&a=" + strconv.Itoa(a) + "&pb=facebook&k=5"
		if pb, eb := httpGet(t, preSrv.URL+path), httpGet(t, exactSrv.URL+path); !bytes.Equal(pb, eb) {
			t.Fatalf("HTTP %s differs:\n%s\nvs\n%s", path, pb, eb)
		}
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestPrescreenNeverPrunesTopK is the property oracle: over randomized
// worlds, every k in {1, 5, shard, 0} and workers in {1, 4}, the
// two-tier ranking equals the exact one row for row — the prescreen
// never pruned anything the exact scorer would have placed in the top
// k. It also pins the survivor counters to be worker-independent (the
// rescore chunking is fixed, not worker-derived). Runs under make race.
func TestPrescreenNeverPrunesTopK(t *testing.T) {
	for _, seed := range []int64{11, 29} {
		bundle := propertyBundle(t, seed)
		na := len(bundle.Views[platform.Twitter])
		nb := len(bundle.Views[platform.Facebook])
		var survivors [2]uint64
		for wi, workers := range []int{1, 4} {
			pre, exact := widePair(t, bundle, workers)
			for _, k := range []int{1, 5, nb, 0} {
				for a := 0; a < na; a++ {
					got, err := pre.TopK(platform.Twitter, a, platform.Facebook, k)
					if err != nil {
						t.Fatal(err)
					}
					want, err := exact.TopK(platform.Twitter, a, platform.Facebook, k)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("seed=%d workers=%d k=%d a=%d: %d rows vs %d", seed, workers, k, a, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed=%d workers=%d k=%d a=%d row %d: %+v vs %+v",
								seed, workers, k, a, i, got[i], want[i])
						}
					}
				}
			}
			ph := pre.PrescreenHealth()
			if ph == nil || ph.Queries == 0 {
				t.Fatalf("seed=%d workers=%d: prescreen never engaged", seed, workers)
			}
			survivors[wi] = ph.Survivors
		}
		if survivors[0] != survivors[1] {
			t.Fatalf("seed=%d: survivor count depends on workers: %d vs %d", seed, survivors[0], survivors[1])
		}
	}
}

// propertyBundle trains a small world end to end and returns its packed
// bundle — one randomized instance of the property test's universe.
func propertyBundle(t *testing.T, seed int64) *pipeline.Bundle {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(24, platform.EnglishPlatforms, seed))
	if err != nil {
		t.Fatal(err)
	}
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 15
	fcfg.MaxLDADocs = 800
	sysState, err := pipeline.Systemize(w.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: pipeline.LabeledHalf(w.Dataset),
		Lexicons:     features.Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment},
		FeatCfg:      fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: blocking.DefaultRules(),
		Label: core.DefaultLabelOpts(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := pipeline.Fit(blocked, core.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := fitted.Bundle(0)
	if err != nil {
		t.Fatal(err)
	}
	return bundle
}

// TestPrescreenlessBundleServesExactOnly is the fallback gate: a v3
// bundle with its prescreen section stripped (what every pre-prescreen
// packer produced) still decodes, serves, and answers byte-identically
// to a prescreen-carrying engine — just without pruning.
func TestPrescreenlessBundleServesExactOnly(t *testing.T) {
	e := getEnv(t)
	stripped := wideBundle(e.bundle)
	stripped.Prescreen = nil
	var buf bytes.Buffer
	if err := pipeline.WriteBundle(&buf, stripped); err != nil {
		t.Fatal(err)
	}
	decoded, err := pipeline.ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Prescreen != nil {
		t.Fatal("stripped bundle grew a prescreen through the round trip")
	}
	plain, err := NewEngineFromBundle(decoded, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Model.HasPrescreen() {
		t.Fatal("prescreen-less bundle attached a prescreen")
	}
	if ph := plain.PrescreenHealth(); ph != nil {
		t.Fatalf("exact-only engine reports prescreen health %+v", ph)
	}
	pre, _ := widePair(t, e.bundle, 1)
	for a := 0; a < 8; a++ {
		got, err := plain.TopK(platform.Twitter, a, platform.Facebook, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pre.TopK(platform.Twitter, a, platform.Facebook, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("a=%d row %d: exact-only %+v vs prescreen %+v", a, i, got[i], want[i])
			}
		}
	}
}

// TestTwoTierSteadyStateAllocs pins the two-tier path's zero-alloc
// steady state: a warm top-k through prescreen + chunked rescore with a
// recycled dst allocates nothing, like the exact path it shadows. Named
// without "Prescreen" so, like TestSteadyStateAllocs, it stays outside
// the make race filter — the race runtime's bookkeeping would show up
// in the counts.
func TestTwoTierSteadyStateAllocs(t *testing.T) {
	e := getEnv(t)
	pre, _ := widePair(t, e.bundle, 1)
	var dst []Scored
	var err error
	// Warm: grow every pooled buffer and the source's pair cache.
	for a := 0; a < 4; a++ {
		if dst, err = pre.TopKAppend(dst[:0], platform.Twitter, a, platform.Facebook, 5); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if dst, err = pre.TopKAppend(dst[:0], platform.Twitter, 1, platform.Facebook, 5); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm prescreen top-k allocates %v times per op, want 0", avg)
	}
}

// BenchmarkServeTopKWideExact and ...WidePrescreen are the headline
// pair: the same k=5 query over a production-shaped (full cross
// product) shard, with the prescreen off and on. The gap is the
// support-set floor the two-tier path breaks; hydra-servebench records
// it per PR, and bench-smoke keeps both harnesses compiling.
func BenchmarkServeTopKWideExact(b *testing.B) {
	benchWideTopK(b, false)
}

func BenchmarkServeTopKWidePrescreen(b *testing.B) {
	benchWideTopK(b, true)
}

func benchWideTopK(b *testing.B, prescreen bool) {
	e, _ := benchEnv(b)
	eng, err := NewEngineFromBundle(wideBundle(e.bundle), 0)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetPrescreenEnabled(prescreen)
	na := len(e.bundle.Views[platform.Twitter])
	var dst []Scored
	for a := 0; a < na; a++ { // warm pair cache + pooled buffers
		if dst, err = eng.TopKAppend(dst[:0], platform.Twitter, a, platform.Facebook, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = eng.TopKAppend(dst[:0], platform.Twitter, i%na, platform.Facebook, 5); err != nil {
			b.Fatal(err)
		}
	}
}
