package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hydra/internal/platform"
)

// The HTTP front-end mirrors the REPL commands as JSON endpoints:
//
//	GET  /healthz                          liveness + indexed pairs
//	POST /score  {"pa","pb","pairs":[[a,b],...]}   batch scores
//	POST /link   (same body)                       scores + decisions
//	GET  /topk?pa=&a=&pb=&k=                       ranked candidates
//
// Batch bodies go through ScoreBatch, so one request fans its pairs over
// the worker pool. The front-end is hardened for long-lived serving:
// wrong methods get 405, POST bodies are capped at MaxRequestBody (413
// beyond it), and cmd/hydra-serve adds read/write timeouts on the server
// so a stalled client cannot pin a connection forever.

// MaxRequestBody caps a POST body. The largest legitimate batch over a
// laptop-scale world is well under a megabyte of pair ids; anything
// bigger is a mistake or abuse, and decoding it would buffer the lot.
const MaxRequestBody = 1 << 20

// scoreRequest is the body of POST /score and /link.
type scoreRequest struct {
	PA    platform.ID `json:"pa"`
	PB    platform.ID `json:"pb"`
	Pairs [][2]int    `json:"pairs"`
}

// Handler returns the HTTP front-end.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"ok": true, "pairs": e.Pairs()})
	})
	mux.HandleFunc("/score", e.handleScore(false))
	mux.HandleFunc("/link", e.handleScore(true))
	mux.HandleFunc("/topk", e.handleTopK)
	return mux
}

func (e *Engine) handleScore(decide bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBody)
		var req scoreRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", MaxRequestBody))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Pairs) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty pairs"))
			return
		}
		scores, err := e.ScoreBatch(req.PA, req.PB, req.Pairs)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp := map[string]any{"scores": scores}
		if decide {
			linked := make([]bool, len(scores))
			for i, s := range scores {
				linked[i] = s > 0
			}
			resp["linked"] = linked
		}
		writeJSON(w, resp)
	}
}

func (e *Engine) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	q := r.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	if errA != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad a=%q", q.Get("a")))
		return
	}
	k := 5
	if s := q.Get("k"); s != "" {
		var err error
		if k, err = strconv.Atoi(s); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad k=%q", s))
			return
		}
	}
	res, err := e.TopK(platform.ID(q.Get("pa")), a, platform.ID(q.Get("pb")), k)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"results": res})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
