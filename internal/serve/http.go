package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hydra/internal/platform"
)

// The HTTP front-end mirrors the REPL commands as JSON endpoints:
//
//	GET  /healthz                          liveness + indexed pairs +
//	                                       bundle generation + shard descriptor
//	POST /score  {"pa","pb","pairs":[[a,b],...]}   batch scores
//	POST /link   (same body)                       scores + decisions
//	GET  /topk?pa=&a=&pb=&k=                       ranked candidates
//
// Batch bodies go through ScoreBatch, so one request fans its pairs over
// the worker pool. The front-end is hardened for long-lived serving:
// wrong methods get 405, POST bodies are capped at MaxRequestBody (413
// beyond it), and cmd/hydra-serve adds read/write timeouts on the server
// so a stalled client cannot pin a connection forever.
//
// Handlers are built over an EngineSource, not a bare engine: each
// request loads the current (engine, generation) pair exactly once and
// stamps the generation into its response, so a hot bundle swap never
// mixes generations inside one response and the scatter-gather router
// can verify that a fan-out was answered by a single generation.

// MaxRequestBody caps a POST body. The largest legitimate batch over a
// laptop-scale world is well under a megabyte of pair ids; anything
// bigger is a mistake or abuse, and decoding it would buffer the lot.
const MaxRequestBody = 1 << 20

// scoreRequest is the body of POST /score and /link.
type scoreRequest struct {
	PA    platform.ID `json:"pa"`
	PB    platform.ID `json:"pb"`
	Pairs [][2]int    `json:"pairs"`
}

// Handler returns the HTTP front-end over a fixed engine (no swapping).
func (e *Engine) Handler() http.Handler { return HandlerFor(e) }

// Handler returns the HTTP front-end over whatever engine generation is
// currently installed — the hot-swappable form cmd/hydra-serve runs.
func (s *Swappable) Handler() http.Handler { return HandlerFor(s) }

// acquireEngine resolves the current engine and pins it for one request,
// so a hot swap cannot unmap a mapped engine's backing file mid-query.
// The retry loop covers the race where the engine retires between the
// Current load and the Acquire; it converges because a retired engine
// has already been replaced in its source. Atomic ops only — the serving
// steady state stays allocation-free.
func acquireEngine(src EngineSource) (*Engine, uint64) {
	for {
		eng, gen := src.Current()
		if eng.Acquire() {
			return eng, gen
		}
	}
}

// HandlerFor builds the HTTP front-end over an EngineSource.
func HandlerFor(src EngineSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		eng, gen := acquireEngine(src)
		defer eng.Release()
		resp := map[string]any{"ok": true, "pairs": eng.Pairs(), "generation": gen}
		if d := eng.ShardDesc(); d != nil {
			resp["shard"] = d
		}
		// Prescreen telemetry rides /healthz (never a query response, so
		// query bodies stay byte-identical with and without a prescreen);
		// the router scrapes this block into per-shard gauges.
		if ph := eng.PrescreenHealth(); ph != nil {
			resp["prescreen"] = ph
		}
		// Imputation telemetry rides along the same way: table and
		// pair-cache hit rates, never a query response.
		resp["impute"] = eng.ImputeHealth()
		writeJSON(w, resp)
	})
	mux.HandleFunc("/score", handleScore(src, false))
	mux.HandleFunc("/link", handleScore(src, true))
	mux.HandleFunc("/topk", handleTopK(src))
	return mux
}

func handleScore(src EngineSource, decide bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBody)
		var req scoreRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", MaxRequestBody))
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Pairs) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("empty pairs"))
			return
		}
		eng, gen := acquireEngine(src)
		defer eng.Release()
		scores, err := eng.ScoreBatch(req.PA, req.PB, req.Pairs)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp := map[string]any{"scores": scores, "generation": gen}
		if decide {
			linked := make([]bool, len(scores))
			for i, s := range scores {
				linked[i] = s > 0
			}
			resp["linked"] = linked
		}
		writeJSON(w, resp)
	}
}

func handleTopK(src EngineSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
			return
		}
		q := r.URL.Query()
		a, errA := strconv.Atoi(q.Get("a"))
		if errA != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad a=%q", q.Get("a")))
			return
		}
		k := 5
		if s := q.Get("k"); s != "" {
			var err error
			if k, err = strconv.Atoi(s); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad k=%q", s))
				return
			}
		}
		eng, gen := acquireEngine(src)
		defer eng.Release()
		res, err := eng.TopK(platform.ID(q.Get("pa")), a, platform.ID(q.Get("pb")), k)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{"results": res, "generation": gen})
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
