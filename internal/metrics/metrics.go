// Package metrics provides the evaluation measures of the paper's Section
// 7.1: precision ("the fraction of the user pairs in the returned result
// that are correctly linked"), recall ("the fraction of the actual linked
// user pairs that are contained in the returned result"), F1, PR curves
// and wall-clock timing.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Confusion is a binary confusion count.
type Confusion struct {
	TP, FP, FN, TN int
}

// Precision returns TP/(TP+FP), or 0 when nothing was returned.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String formats the confusion as a compact summary.
func (c Confusion) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.FN)
}

// EvaluateLinkage scores returned pairs against truth. returned[i] is the
// decision for candidate i, truth[i] its ground-truth label, and
// missedPositives counts true pairs that never became candidates (blocking
// misses) — they are false negatives the classifier never saw, and the
// paper's recall definition charges them.
func EvaluateLinkage(returned, truth []bool, missedPositives int) (Confusion, error) {
	if len(returned) != len(truth) {
		return Confusion{}, fmt.Errorf("metrics: %d decisions but %d labels", len(returned), len(truth))
	}
	if missedPositives < 0 {
		return Confusion{}, fmt.Errorf("metrics: negative missedPositives %d", missedPositives)
	}
	var c Confusion
	for i := range returned {
		switch {
		case returned[i] && truth[i]:
			c.TP++
		case returned[i] && !truth[i]:
			c.FP++
		case !returned[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	c.FN += missedPositives
	return c, nil
}

// PRPoint is one precision/recall point at a score threshold.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve sweeps thresholds over the scores and returns the PR points in
// descending threshold order. missedPositives is charged to recall as in
// EvaluateLinkage.
func PRCurve(scores []float64, truth []bool, missedPositives int) ([]PRPoint, error) {
	if len(scores) != len(truth) {
		return nil, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(truth))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	totalPos := missedPositives
	for _, t := range truth {
		if t {
			totalPos++
		}
	}
	var out []PRPoint
	tp, fp := 0, 0
	for rank, i := range idx {
		if truth[i] {
			tp++
		} else {
			fp++
		}
		// Emit a point at each distinct threshold (skip ties with the next).
		if rank+1 < len(idx) && scores[idx[rank+1]] == scores[i] {
			continue
		}
		p := float64(tp) / float64(tp+fp)
		r := 0.0
		if totalPos > 0 {
			r = float64(tp) / float64(totalPos)
		}
		out = append(out, PRPoint{Threshold: scores[i], Precision: p, Recall: r})
	}
	return out, nil
}

// AveragePrecision integrates the PR curve (the mean precision at each
// positive hit).
func AveragePrecision(scores []float64, truth []bool, missedPositives int) (float64, error) {
	if len(scores) != len(truth) {
		return 0, fmt.Errorf("metrics: %d scores but %d labels", len(scores), len(truth))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	totalPos := missedPositives
	for _, t := range truth {
		if t {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0, nil
	}
	tp := 0
	var acc float64
	for rank, i := range idx {
		if truth[i] {
			tp++
			acc += float64(tp) / float64(rank+1)
		}
	}
	return acc / float64(totalPos), nil
}

// Timer measures wall-clock durations for the efficiency experiments.
type Timer struct {
	start time.Time
}

// NewTimer starts a timer.
func NewTimer() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the duration since start.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Seconds returns the elapsed seconds.
func (t *Timer) Seconds() float64 { return t.Elapsed().Seconds() }
