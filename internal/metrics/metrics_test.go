package metrics

import (
	"math"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, FN: 2, TN: 4}
	if got := c.Precision(); got != 0.75 {
		t.Fatalf("Precision = %v", got)
	}
	if got := c.Recall(); got != 0.6 {
		t.Fatalf("Recall = %v", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", c.F1(), wantF1)
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should score 0 everywhere")
	}
}

func TestEvaluateLinkage(t *testing.T) {
	returned := []bool{true, true, false, false}
	truth := []bool{true, false, true, false}
	c, err := EvaluateLinkage(returned, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	// 1 in-candidate FN + 2 blocking misses.
	if c.FN != 3 {
		t.Fatalf("FN = %d, want 3", c.FN)
	}
}

func TestEvaluateLinkageValidation(t *testing.T) {
	if _, err := EvaluateLinkage([]bool{true}, []bool{true, false}, 0); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := EvaluateLinkage(nil, nil, -1); err == nil {
		t.Fatal("expected negative misses error")
	}
}

func TestPRCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	truth := []bool{true, true, false, true}
	pts, err := PRCurve(scores, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// At the top threshold: 1 TP, precision 1, recall 1/3.
	if pts[0].Precision != 1 || math.Abs(pts[0].Recall-1.0/3) > 1e-12 {
		t.Fatalf("first point = %+v", pts[0])
	}
	// Final point: 3 TP, 1 FP.
	last := pts[len(pts)-1]
	if math.Abs(last.Precision-0.75) > 1e-12 || last.Recall != 1 {
		t.Fatalf("last point = %+v", last)
	}
	// Recall must be non-decreasing as threshold drops.
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall {
			t.Fatal("recall decreased along the curve")
		}
	}
}

func TestPRCurveTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5}
	truth := []bool{true, false, true}
	pts, err := PRCurve(scores, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("tied scores should emit one point, got %d", len(pts))
	}
}

func TestPRCurveMissedPositives(t *testing.T) {
	scores := []float64{0.9}
	truth := []bool{true}
	pts, err := PRCurve(scores, truth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Recall != 0.5 {
		t.Fatalf("recall with blocking miss = %v, want 0.5", pts[0].Recall)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Perfect ranking.
	ap, err := AveragePrecision([]float64{0.9, 0.8, 0.1}, []bool{true, true, false}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ap != 1 {
		t.Fatalf("perfect AP = %v", ap)
	}
	// Worst ranking of one positive among two.
	ap, _ = AveragePrecision([]float64{0.9, 0.8}, []bool{false, true}, 0)
	if ap != 0.5 {
		t.Fatalf("AP = %v, want 0.5", ap)
	}
	if _, err := AveragePrecision([]float64{1}, []bool{true, false}, 0); err == nil {
		t.Fatal("expected length error")
	}
	ap, _ = AveragePrecision(nil, nil, 0)
	if ap != 0 {
		t.Fatal("empty AP should be 0")
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	if tm.Seconds() < 0 {
		t.Fatal("negative elapsed time")
	}
	if tm.Elapsed() < 0 {
		t.Fatal("negative duration")
	}
}
