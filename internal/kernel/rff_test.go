package kernel

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hydra/internal/linalg"
)

// TestRFFDeterministicProjection asserts the projection is a pure
// function of (σ, dim, m, seed) — the property packed bundles rely on
// for byte-reproducibility — and that a different seed actually draws a
// different map.
func TestRFFDeterministicProjection(t *testing.T) {
	a, err := NewRFF(0.8, 5, 32, 41)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRFF(0.8, 5, 32, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same parameters drew different projections")
	}
	c, err := NewRFF(0.8, 5, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.W, c.W) {
		t.Fatal("different seeds drew the same projection")
	}
}

// TestRFFApproximatesRBF asserts z(x)·z(y) tracks K(x, y) with the
// O(1/√m) Monte-Carlo error the construction promises — a loose
// statistical bound, but tight enough to catch a wrong spectral scale
// (σ vs 1/σ) or a dropped sqrt(2/m).
func TestRFFApproximatesRBF(t *testing.T) {
	const (
		dim = 8
		m   = 4096
	)
	sigma := 1.3
	r, err := NewRFF(sigma, dim, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	k := NewRBF(sigma)
	rng := rand.New(rand.NewSource(99))
	zx := make([]float64, m)
	zy := make([]float64, m)
	maxErr := 0.0
	for trial := 0; trial < 30; trial++ {
		x := make(linalg.Vector, dim)
		y := make(linalg.Vector, dim)
		for i := 0; i < dim; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r.FeaturesInto(zx, x)
		r.FeaturesInto(zy, y)
		var approx float64
		for i := range zx {
			approx += zx[i] * zy[i]
		}
		if e := math.Abs(approx - k.Eval(x, y)); e > maxErr {
			maxErr = e
		}
	}
	// Hoeffding at m=4096 puts the error well under 0.1 with overwhelming
	// probability; a broken map is off by O(1).
	if maxErr > 0.1 {
		t.Fatalf("worst kernel approximation error %g at m=%d — feature map is wrong", maxErr, m)
	}
}

// TestRFFValidation asserts the constructor rejects degenerate shapes.
func TestRFFValidation(t *testing.T) {
	if _, err := NewRFF(0, 4, 8, 1); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
	if _, err := NewRFF(1, 0, 8, 1); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := NewRFF(1, 4, 0, 1); err == nil {
		t.Fatal("expected error for zero feature count")
	}
}
