package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/linalg"
)

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	if got := k.Eval(linalg.Vector{1, 2}, linalg.Vector{3, 4}); got != 11 {
		t.Fatalf("linear = %v, want 11", got)
	}
	if k.Name() != "linear" {
		t.Fatal("name")
	}
}

func TestRBFKernel(t *testing.T) {
	k := NewRBF(1)
	if got := k.Eval(linalg.Vector{0}, linalg.Vector{0}); got != 1 {
		t.Fatalf("K(x,x) = %v, want 1", got)
	}
	got := k.Eval(linalg.Vector{0}, linalg.Vector{2})
	want := math.Exp(-2) // ||x-y||²=4, 2σ²=2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("rbf = %v, want %v", got, want)
	}
}

func TestRBFPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRBF(0)
}

func TestChiSquareKernel(t *testing.T) {
	k := NewChiSquare(0.5)
	x := linalg.Vector{0.5, 0.5}
	if got := k.Eval(x, x); got != 1 {
		t.Fatalf("K(x,x) = %v, want 1", got)
	}
	// Zero-sum buckets must be skipped (no NaN).
	y := linalg.Vector{0, 0}
	if got := k.Eval(y, y); got != 1 {
		t.Fatalf("K(0,0) = %v, want 1", got)
	}
	d := k.Distance(linalg.Vector{1, 0}, linalg.Vector{0, 1})
	if d != 2 {
		t.Fatalf("chi2 distance = %v, want 2", d)
	}
}

func TestChiSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChiSquare(-1)
}

func TestHistogramIntersection(t *testing.T) {
	k := HistogramIntersection{}
	got := k.Eval(linalg.Vector{0.2, 0.8}, linalg.Vector{0.5, 0.5})
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("histintersect = %v, want 0.7", got)
	}
	// Self-similarity of a distribution is 1.
	if k.Eval(linalg.Vector{0.3, 0.7}, linalg.Vector{0.3, 0.7}) != 1 {
		t.Fatal("self intersection of a distribution should be 1")
	}
}

func TestGramSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]linalg.Vector, 6)
	for i := range xs {
		xs[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
	}
	g := Gram(NewRBF(1.5), xs)
	if !g.IsSymmetric(1e-12) {
		t.Fatal("Gram not symmetric")
	}
	for i := range xs {
		if math.Abs(g.At(i, i)-1) > 1e-12 {
			t.Fatalf("diag = %v", g.At(i, i))
		}
	}
}

func TestCrossGram(t *testing.T) {
	as := []linalg.Vector{{1, 0}}
	bs := []linalg.Vector{{1, 0}, {0, 1}}
	m := CrossGram(Linear{}, as, bs)
	if m.Rows != 1 || m.Cols != 2 || m.At(0, 0) != 1 || m.At(0, 1) != 0 {
		t.Fatalf("CrossGram = %+v", m)
	}
}

func TestCache(t *testing.T) {
	xs := []linalg.Vector{{0}, {1}, {2}}
	c := NewCache(Linear{}, xs)
	if c.Len() != 3 {
		t.Fatal("len")
	}
	if got := c.At(1, 2); got != 2 {
		t.Fatalf("At = %v", got)
	}
	c.Row(1) // hit
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

// Property: RBF kernel is bounded in [0,1] (0 only via underflow at extreme
// distances), symmetric, and exactly 1 at x == y.
func TestRBFProperty(t *testing.T) {
	k := NewRBF(2)
	f := func(a, b, c, d float64) bool {
		x := linalg.Vector{clamp(a), clamp(b)}
		y := linalg.Vector{clamp(c), clamp(d)}
		v := k.Eval(x, y)
		return v >= 0 && v <= 1 && math.Abs(v-k.Eval(y, x)) < 1e-15 && k.Eval(x, x) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram intersection of two probability distributions lies in [0,1]
// and K(x,y) <= min(K(x,x), K(y,y)).
func TestHistIntersectionProperty(t *testing.T) {
	k := HistogramIntersection{}
	f := func(a, b, c float64) bool {
		x := toDist(a, b, c)
		y := toDist(c, a, b)
		v := k.Eval(x, y)
		return v >= 0 && v <= 1+1e-12 && v <= math.Min(k.Eval(x, x), k.Eval(y, y))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gram matrices of the linear kernel are positive semidefinite.
func TestLinearGramPSDProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(seed)%4
		xs := make([]linalg.Vector, n)
		for i := range xs {
			xs[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		g := Gram(Linear{}, xs)
		v := linalg.NewVector(n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return g.QuadForm(v) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

// toDist builds a 3-bucket probability distribution from arbitrary floats.
func toDist(a, b, c float64) linalg.Vector {
	v := linalg.Vector{math.Abs(clamp(a)) + 0.1, math.Abs(clamp(b)) + 0.1, math.Abs(clamp(c)) + 0.1}
	return v.Scale(1 / v.Sum())
}
