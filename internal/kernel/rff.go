package kernel

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/linalg"
)

// RFF is a random Fourier feature map for the RBF kernel (Rahimi &
// Recht): z(x) = sqrt(2/m)·cos(Wx + b) with rows of W drawn from
// N(0, σ⁻²·I) and phases b from U[0, 2π), so E[z(x)·z(y)] = K(x, y).
// The projection is drawn once from a caller-pinned seed, so two maps
// built with the same (σ, dim, m, seed) are bit-identical — the
// serving prescreen relies on this to keep packed bundles reproducible.
//
// W is stored row-major (feature i occupies W[i·dim : (i+1)·dim]), the
// same dense layout compactSupport packs support vectors into, so the
// per-feature dot product walks contiguous memory.
type RFF struct {
	// Dim is the input dimensionality each projection row spans.
	Dim int
	// W holds the m×Dim projection, row-major.
	W []float64
	// B holds the m phase offsets.
	B []float64
	// Scale is sqrt(2/m), the normalization of each cosine feature.
	Scale float64
}

// NewRFF draws an m-feature map for an RBF of bandwidth sigma over
// dim-dimensional inputs, deterministically from seed.
func NewRFF(sigma float64, dim, m int, seed int64) (*RFF, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("kernel: RFF needs a positive bandwidth, got %g", sigma)
	}
	if dim <= 0 || m <= 0 {
		return nil, fmt.Errorf("kernel: RFF needs positive dimensions, got dim=%d m=%d", dim, m)
	}
	rng := rand.New(rand.NewSource(seed))
	r := &RFF{
		Dim:   dim,
		W:     make([]float64, m*dim),
		B:     make([]float64, m),
		Scale: math.Sqrt(2 / float64(m)),
	}
	// The Fourier transform of exp(-‖δ‖²/(2σ²)) is N(0, σ⁻²·I); drawing
	// row-by-row keeps the stream order independent of dim-internal
	// chunking, so the bytes only depend on (σ, dim, m, seed).
	inv := 1 / sigma
	for i := range r.W {
		r.W[i] = rng.NormFloat64() * inv
	}
	for i := range r.B {
		r.B[i] = 2 * math.Pi * rng.Float64()
	}
	return r, nil
}

// M returns the feature count m.
func (r *RFF) M() int { return len(r.B) }

// FeaturesInto writes z(x) into out (length M). x shorter than Dim is
// treated as zero-padded — feature pipelines produce fixed-dim vectors,
// but the guard keeps a stale map from reading past a short input.
func (r *RFF) FeaturesInto(out []float64, x linalg.Vector) {
	if len(out) != r.M() {
		panic(fmt.Sprintf("kernel: RFF FeaturesInto got %d slots for %d features", len(out), r.M()))
	}
	if len(x) > r.Dim {
		panic(fmt.Sprintf("kernel: RFF built for dim %d got a %d-dim input", r.Dim, len(x)))
	}
	for i := range out {
		out[i] = r.Scale * math.Cos(DotPhase(r.W[i*r.Dim:(i+1)*r.Dim], x, r.B[i]))
	}
}

// DotPhase returns w·x + b over the overlapping prefix — the cosine
// argument of one RFF feature. Factored out so the collapsed-vector
// prescreen in internal/core evaluates features with the identical
// float operation sequence this map uses, keeping the empirically
// certified error bound valid at query time.
func DotPhase(w []float64, x linalg.Vector, b float64) float64 {
	dot := b
	for k, xv := range x {
		dot += w[k] * xv
	}
	return dot
}
