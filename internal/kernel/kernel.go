// Package kernel implements the kernel functions HYDRA uses for similarity
// computation and model learning: the linear and RBF kernels for the dual
// decision function (Eqn 12 of the paper), and the chi-square and
// histogram-intersection kernels the paper prescribes for comparing
// per-bucket topic distributions (Section 5.2).
package kernel

import (
	"fmt"
	"math"
	"sync"

	"hydra/internal/linalg"
	"hydra/internal/parallel"
)

// Func is a Mercer kernel over dense feature vectors.
type Func interface {
	// Eval returns K(x, y).
	Eval(x, y linalg.Vector) float64
	// Name identifies the kernel for logs and experiment output.
	Name() string
}

// Linear is the plain inner-product kernel.
type Linear struct{}

// Eval returns xᵀy.
func (Linear) Eval(x, y linalg.Vector) float64 { return x.Dot(y) }

// Name implements Func.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian kernel exp(-||x-y||² / (2σ²)).
type RBF struct {
	Sigma float64
}

// NewRBF returns an RBF kernel with bandwidth sigma (must be > 0).
func NewRBF(sigma float64) RBF {
	if sigma <= 0 {
		panic(fmt.Sprintf("kernel: RBF sigma must be positive, got %g", sigma))
	}
	return RBF{Sigma: sigma}
}

// Eval implements Func.
func (k RBF) Eval(x, y linalg.Vector) float64 {
	return math.Exp(-linalg.SqDist(x, y) / (2 * k.Sigma * k.Sigma))
}

// Name implements Func.
func (k RBF) Name() string { return fmt.Sprintf("rbf(σ=%g)", k.Sigma) }

// ChiSquare is the exponential chi-square kernel
// exp(-γ Σ (x_i-y_i)²/(x_i+y_i)) used for comparing histograms such as
// per-bucket topic distributions. Entries are assumed non-negative; buckets
// where both entries are zero contribute nothing.
type ChiSquare struct {
	Gamma float64
}

// NewChiSquare returns a chi-square kernel with scale gamma (must be > 0).
func NewChiSquare(gamma float64) ChiSquare {
	if gamma <= 0 {
		panic(fmt.Sprintf("kernel: chi-square gamma must be positive, got %g", gamma))
	}
	return ChiSquare{Gamma: gamma}
}

// Distance returns the chi-square distance Σ (x_i-y_i)²/(x_i+y_i).
func (k ChiSquare) Distance(x, y linalg.Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("kernel: chi-square length mismatch %d vs %d", len(x), len(y)))
	}
	var d float64
	for i := range x {
		s := x[i] + y[i]
		if s <= 0 {
			continue
		}
		diff := x[i] - y[i]
		d += diff * diff / s
	}
	return d
}

// Eval implements Func.
func (k ChiSquare) Eval(x, y linalg.Vector) float64 {
	return math.Exp(-k.Gamma * k.Distance(x, y))
}

// Name implements Func.
func (k ChiSquare) Name() string { return fmt.Sprintf("chi2(γ=%g)", k.Gamma) }

// HistogramIntersection is Σ min(x_i, y_i) — a proper Mercer kernel on
// non-negative histograms, and the paper's alternative to chi-square for
// topic-distribution similarity.
type HistogramIntersection struct{}

// Eval implements Func.
func (HistogramIntersection) Eval(x, y linalg.Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("kernel: histogram intersection length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += math.Min(x[i], y[i])
	}
	return s
}

// Name implements Func.
func (HistogramIntersection) Name() string { return "histintersect" }

// Gram computes the full kernel matrix K[i][j] = k(xs[i], xs[j]) using all
// available cores (see GramWorkers).
func Gram(k Func, xs []linalg.Vector) *linalg.Matrix {
	return GramWorkers(k, xs, 0)
}

// GramWorkers computes the Gram matrix with a pinned worker count (≤ 0 =
// all cores). Rows are distributed dynamically because row i only computes
// the upper triangle j ≥ i and fills both halves — row costs shrink
// linearly, so static chunking would leave late workers idle. Every cell
// is written exactly once (cell (i,j), j > i, belongs to row i alone), and
// each K(i,j) is evaluated independently, so the result is bit-for-bit
// identical at any worker count.
func GramWorkers(k Func, xs []linalg.Vector, workers int) *linalg.Matrix {
	n := len(xs)
	m := linalg.NewMatrix(n, n)
	parallel.For(workers, n, func(i int) {
		for j := i; j < n; j++ {
			v := k.Eval(xs[i], xs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	})
	return m
}

// CrossGram computes the rectangular kernel matrix K[i][j] = k(as[i], bs[j])
// using all available cores (see CrossGramWorkers).
func CrossGram(k Func, as, bs []linalg.Vector) *linalg.Matrix {
	return CrossGramWorkers(k, as, bs, 0)
}

// CrossGramWorkers computes the cross-Gram matrix with a pinned worker
// count (≤ 0 = all cores), parallelized by row.
func CrossGramWorkers(k Func, as, bs []linalg.Vector, workers int) *linalg.Matrix {
	m := linalg.NewMatrix(len(as), len(bs))
	CrossGramInto(k, as, bs, m, workers)
	return m
}

// CrossGramInto is CrossGramWorkers writing into a caller-provided matrix
// of shape len(as)×len(bs) — the serving fast path calls it every query
// with a pooled matrix, so the steady state allocates nothing. Cell (i,j)
// is k.Eval(as[i], bs[j]), each evaluated independently and written to its
// own slot, so the contents are bit-identical at any worker count; with
// one worker the loop runs inline on the calling goroutine (no closure,
// no goroutines — zero allocations).
func CrossGramInto(k Func, as, bs []linalg.Vector, out *linalg.Matrix, workers int) {
	if out.Rows != len(as) || out.Cols != len(bs) {
		panic(fmt.Sprintf("kernel: CrossGramInto shape mismatch: out %dx%d for %dx%d gram",
			out.Rows, out.Cols, len(as), len(bs)))
	}
	n := len(as)
	if w := parallel.Workers(workers); w == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			a := as[i]
			row := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range bs {
				row[j] = k.Eval(a, b)
			}
		}
		return
	}
	parallel.For(workers, n, func(i int) {
		a := as[i]
		row := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j, b := range bs {
			row[j] = k.Eval(a, b)
		}
	})
}

// Cache memoizes kernel evaluations over a fixed sample set, keyed by index
// pair. SMO-style solvers hit the same rows repeatedly; the cache stores
// whole rows.
//
// Sharing contract: a Cache is safe for concurrent use — the row map is
// guarded by a mutex, row computation happens outside the lock so misses
// on different rows proceed in parallel, and when two goroutines race on
// the same row the first stored slice wins, so every caller of Row(i)
// observes the same backing array. Returned rows are shared read-only
// views: callers must never modify them. Memory is bounded by the sample
// count — at worst the full n×n Gram matrix materializes (one row per
// distinct index), which is the same ceiling as the dense training path;
// SMO working sets stay far below it in practice.
type Cache struct {
	k  Func
	xs []linalg.Vector

	mu           sync.Mutex
	rows         map[int]linalg.Vector
	hits, misses int
}

// NewCache returns a row cache for kernel k over samples xs.
func NewCache(k Func, xs []linalg.Vector) *Cache {
	return &Cache{k: k, xs: xs, rows: make(map[int]linalg.Vector)}
}

// Row returns the i-th kernel row [k(x_i, x_0), ..., k(x_i, x_{n-1})].
// The returned slice is shared; callers must not modify it (see the type
// comment for the full concurrency contract).
func (c *Cache) Row(i int) linalg.Vector {
	c.mu.Lock()
	if r, ok := c.rows[i]; ok {
		c.hits++
		c.mu.Unlock()
		return r
	}
	// Count the miss now (misses = rows computed, racing duplicates
	// included) and evaluate outside the lock: a kernel row is O(n·d)
	// work that would otherwise serialize every concurrent caller.
	c.misses++
	c.mu.Unlock()
	r := linalg.NewVector(len(c.xs))
	xi := c.xs[i]
	for j := range c.xs {
		r[j] = c.k.Eval(xi, c.xs[j])
	}
	c.mu.Lock()
	if prev, ok := c.rows[i]; ok {
		r = prev // lost a same-row race; hand out the stored slice
	} else {
		c.rows[i] = r
	}
	c.mu.Unlock()
	return r
}

// At returns k(x_i, x_j) going through the row cache.
func (c *Cache) At(i, j int) float64 { return c.Row(i)[j] }

// Stats reports cache hits and misses (for efficiency experiments). Misses
// count computed rows, so sequential callers see hits+misses equal to the
// number of Row calls; concurrent same-row races can add extra misses.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached samples.
func (c *Cache) Len() int { return len(c.xs) }
