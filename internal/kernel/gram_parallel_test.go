package kernel

import (
	"math/rand"
	"testing"

	"hydra/internal/linalg"
)

// randomVectors builds a deterministic sample set for the parallel tests.
func randomVectors(n, dim int, seed int64) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]linalg.Vector, n)
	for i := range xs {
		v := linalg.NewVector(dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		xs[i] = v
	}
	return xs
}

// TestGramWorkersDeterminism asserts the tentpole contract: the Gram matrix
// is bit-for-bit identical at one worker and at many.
func TestGramWorkersDeterminism(t *testing.T) {
	xs := randomVectors(80, 24, 11)
	for _, k := range []Func{Linear{}, NewRBF(1.3), NewChiSquare(0.7)} {
		seq := GramWorkers(k, xs, 1)
		for _, w := range []int{2, 4, 0} {
			par := GramWorkers(k, xs, w)
			if seq.Rows != par.Rows || seq.Cols != par.Cols {
				t.Fatalf("%s workers=%d: shape %dx%d vs %dx%d", k.Name(), w, par.Rows, par.Cols, seq.Rows, seq.Cols)
			}
			for i := range seq.Data {
				if seq.Data[i] != par.Data[i] {
					t.Fatalf("%s workers=%d: element %d differs: %v vs %v", k.Name(), w, i, par.Data[i], seq.Data[i])
				}
			}
		}
	}
}

func TestGramSymmetric(t *testing.T) {
	xs := randomVectors(40, 8, 3)
	m := Gram(NewRBF(2), xs)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// TestCrossGramWorkersDeterminism covers the rectangular variant.
func TestCrossGramWorkersDeterminism(t *testing.T) {
	as := randomVectors(55, 16, 5)
	bs := randomVectors(70, 16, 6)
	k := NewRBF(0.9)
	seq := CrossGramWorkers(k, as, bs, 1)
	for _, w := range []int{3, 8, 0} {
		par := CrossGramWorkers(k, as, bs, w)
		for i := range seq.Data {
			if seq.Data[i] != par.Data[i] {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
}

// BenchmarkGramParallel measures the Gram hot path; run with -cpu 1,4 to
// see the worker-pool speedup (workers resolve to GOMAXPROCS).
func BenchmarkGramParallel(b *testing.B) {
	xs := randomVectors(400, 64, 7)
	k := NewRBF(1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(k, xs)
	}
}

// BenchmarkGramSequential is the pinned one-worker baseline for comparing
// against BenchmarkGramParallel at any -cpu setting.
func BenchmarkGramSequential(b *testing.B) {
	xs := randomVectors(400, 64, 7)
	k := NewRBF(1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GramWorkers(k, xs, 1)
	}
}
