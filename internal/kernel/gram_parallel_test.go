package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"hydra/internal/linalg"
)

// randomVectors builds a deterministic sample set for the parallel tests.
func randomVectors(n, dim int, seed int64) []linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]linalg.Vector, n)
	for i := range xs {
		v := linalg.NewVector(dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		xs[i] = v
	}
	return xs
}

// TestGramWorkersDeterminism asserts the tentpole contract: the Gram matrix
// is bit-for-bit identical at one worker and at many.
func TestGramWorkersDeterminism(t *testing.T) {
	xs := randomVectors(80, 24, 11)
	for _, k := range []Func{Linear{}, NewRBF(1.3), NewChiSquare(0.7)} {
		seq := GramWorkers(k, xs, 1)
		for _, w := range []int{2, 4, 0} {
			par := GramWorkers(k, xs, w)
			if seq.Rows != par.Rows || seq.Cols != par.Cols {
				t.Fatalf("%s workers=%d: shape %dx%d vs %dx%d", k.Name(), w, par.Rows, par.Cols, seq.Rows, seq.Cols)
			}
			for i := range seq.Data {
				if seq.Data[i] != par.Data[i] {
					t.Fatalf("%s workers=%d: element %d differs: %v vs %v", k.Name(), w, i, par.Data[i], seq.Data[i])
				}
			}
		}
	}
}

func TestGramSymmetric(t *testing.T) {
	xs := randomVectors(40, 8, 3)
	m := Gram(NewRBF(2), xs)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

// TestCrossGramWorkersDeterminism covers the rectangular variant.
func TestCrossGramWorkersDeterminism(t *testing.T) {
	as := randomVectors(55, 16, 5)
	bs := randomVectors(70, 16, 6)
	k := NewRBF(0.9)
	seq := CrossGramWorkers(k, as, bs, 1)
	for _, w := range []int{3, 8, 0} {
		par := CrossGramWorkers(k, as, bs, w)
		for i := range seq.Data {
			if seq.Data[i] != par.Data[i] {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
}

// BenchmarkGramParallel measures the Gram hot path; run with -cpu 1,4 to
// see the worker-pool speedup (workers resolve to GOMAXPROCS).
func BenchmarkGramParallel(b *testing.B) {
	xs := randomVectors(400, 64, 7)
	k := NewRBF(1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(k, xs)
	}
}

// BenchmarkGramSequential is the pinned one-worker baseline for comparing
// against BenchmarkGramParallel at any -cpu setting.
func BenchmarkGramSequential(b *testing.B) {
	xs := randomVectors(400, 64, 7)
	k := NewRBF(1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GramWorkers(k, xs, 1)
	}
}

// TestCacheConcurrentRows hammers the row cache from many goroutines (run
// with -race via `make race`): every caller must observe the exact kernel
// values, all callers of a row must share one backing slice, and the
// hit/miss counters must account for every call.
func TestCacheConcurrentRows(t *testing.T) {
	xs := randomVectors(24, 6, 41)
	k := NewRBF(1.3)
	c := NewCache(k, xs)
	const goroutines, iters = 8, 100
	rowsSeen := make([][]linalg.Vector, goroutines)
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			seen := make([]linalg.Vector, len(xs))
			for it := 0; it < iters; it++ {
				i := (g*7 + it*3) % len(xs)
				r := c.Row(i)
				if len(r) != len(xs) {
					done <- fmt.Errorf("row %d has length %d", i, len(r))
					return
				}
				if r[i] != 1 { // RBF diagonal
					done <- fmt.Errorf("row %d diagonal = %v", i, r[i])
					return
				}
				seen[i] = r
			}
			rowsSeen[g] = seen
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// All goroutines must share the stored slice (first write wins).
	for i := range xs {
		var first linalg.Vector
		for g := range rowsSeen {
			r := rowsSeen[g][i]
			if r == nil {
				continue
			}
			if first == nil {
				first = r
			} else if &first[0] != &r[0] {
				t.Fatalf("row %d has two distinct backing arrays", i)
			}
		}
	}
	// Values must match direct evaluation bit-for-bit.
	for i := range xs {
		r := c.Row(i)
		for j := range xs {
			if want := k.Eval(xs[i], xs[j]); r[j] != want {
				t.Fatalf("cache[%d][%d] = %v, want %v", i, j, r[j], want)
			}
		}
	}
	hits, misses := c.Stats()
	if total := goroutines*iters + len(xs); hits+misses != total {
		t.Fatalf("stats %d+%d != %d calls", hits, misses, total)
	}
	if misses < len(xs) {
		t.Fatalf("misses %d < %d rows", misses, len(xs))
	}
}

// TestCrossGramIntoWorkersDeterminism asserts the into-variant behind the
// serving fast path writes the same bits as the allocating CrossGram at
// any worker count, that a reused output matrix is fully overwritten, and
// that the warm single-worker path allocates nothing.
func TestCrossGramIntoWorkersDeterminism(t *testing.T) {
	as := randomVectors(23, 17, 7)
	bs := randomVectors(9, 17, 8)
	for _, k := range []Func{Linear{}, NewRBF(0.9)} {
		want := CrossGramWorkers(k, as, bs, 1)
		out := linalg.NewMatrix(len(as), len(bs))
		for pass := 0; pass < 2; pass++ { // second pass overwrites stale contents
			for _, w := range []int{1, 2, 4, 0} {
				for i := range out.Data {
					out.Data[i] = -12345
				}
				CrossGramInto(k, as, bs, out, w)
				for i := range want.Data {
					if out.Data[i] != want.Data[i] {
						t.Fatalf("%s workers=%d: element %d differs: %v vs %v", k.Name(), w, i, out.Data[i], want.Data[i])
					}
				}
			}
		}
		if avg := testing.AllocsPerRun(50, func() { CrossGramInto(k, as, bs, out, 1) }); avg > 0 {
			t.Fatalf("%s: CrossGramInto at one worker allocates %.2f times/op, want 0", k.Name(), avg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a shape-mismatched output matrix")
		}
	}()
	CrossGramInto(Linear{}, as, bs, linalg.NewMatrix(1, 1), 1)
}
