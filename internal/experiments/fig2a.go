package experiments

import (
	"sort"
	"strings"

	"hydra/internal/platform"
	"hydra/internal/synth"
)

// MissingStat is one bar of Figure 2(a): a missing-attribute combination
// and the percentage of users exhibiting it.
type MissingStat struct {
	Combination string
	NumMissing  int
	Percent     float64
}

// Figure2a reproduces the missing-information statistics of Figure 2(a):
// the distribution of users over missing-profile-attribute combinations
// across the seven platforms. The paper's headline numbers: at least 80% of
// users miss ≥2 of the six core attributes; merely ~5% have all filled.
func Figure2a(cfg Config) ([]MissingStat, *Result, error) {
	persons := cfg.persons(300)
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.AllPlatforms, cfg.Seed))
	if err != nil {
		return nil, nil, err
	}
	counts := make(map[string]int)
	total := 0
	for _, p := range w.Dataset.Platforms {
		for _, acc := range p.Accounts {
			key := comboKey(acc.Profile.MissingSet())
			counts[key]++
			total++
		}
	}
	var stats []MissingStat
	for key, n := range counts {
		nm := 0
		if key != "none missing" {
			nm = strings.Count(key, ",") + 1
			if key == "missing all" {
				nm = len(platform.CoreAttrs)
			}
		}
		stats = append(stats, MissingStat{
			Combination: key,
			NumMissing:  nm,
			Percent:     100 * float64(n) / float64(total),
		})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].NumMissing != stats[j].NumMissing {
			return stats[i].NumMissing < stats[j].NumMissing
		}
		return stats[i].Combination < stats[j].Combination
	})

	res := &Result{Figure: "Figure 2(a)", Title: "Missing information statistics", XLabel: "#missing"}
	var atLeast2, full float64
	for _, st := range stats {
		res.AddPoint(st.Combination, float64(st.NumMissing), st.Percent/100, 0, 0)
		if st.NumMissing >= 2 {
			atLeast2 += st.Percent
		}
		if st.NumMissing == 0 {
			full = st.Percent
		}
	}
	res.Note("users missing ≥2 attributes: %.1f%% (paper: ≥80%%)", atLeast2)
	res.Note("users with all attributes: %.1f%% (paper: ~5%%)", full)
	return stats, res, nil
}

// comboKey renders a missing set in the paper's Figure 2(a) labeling.
func comboKey(missing []platform.AttrName) string {
	if len(missing) == 0 {
		return "none missing"
	}
	if len(missing) == len(platform.CoreAttrs) {
		return "missing all"
	}
	parts := make([]string, len(missing))
	for i, a := range missing {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}
