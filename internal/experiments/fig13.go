package experiments

import (
	"hydra/internal/core"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// Figure13 reproduces "Performance w.r.t. varied social platforms": SIL
// across culturally different platforms — linking Chinese-platform accounts
// to English-platform accounts over the full seven-platform world. The
// paper observes an overall performance drop (different writing styles and
// social circles) with HYDRA still dominating the baselines.
//
// The (fraction × method) grid fans out over the worker pool like the
// fig8–fig12 sweeps, with index-ordered collection so the result table is
// identical to the sequential loop at any worker count.
func Figure13(cfg Config) (*Result, error) {
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(90),
		platforms: platform.AllPlatforms,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Cross-cultural pairs: Chinese × English platforms.
	pairs := [][2]platform.ID{
		{platform.SinaWeibo, platform.Twitter},
		{platform.Renren, platform.Facebook},
	}
	res := &Result{
		Figure: "Figure 13",
		Title:  "Performance across culturally different platforms (all seven networks)",
		XLabel: "labeled-frac",
	}
	fractions := []float64{0.2, 0.35, 0.5}
	// Per-fraction tasks first (each deterministic from its seed), with
	// the nested blocking fan-out pinned to stay within the pool budget.
	pinned := *st
	pinned.workers = parallel.Inner(len(fractions), cfg.Workers)
	tasks, err := parallel.MapErr(cfg.Workers, len(fractions), func(fi int) (*core.Task, error) {
		opts := core.LabelOpts{LabelFraction: fractions[fi], NegPerPos: 2, UsePreMatched: true, Seed: cfg.Seed}
		return pinned.multiTask(pairs, opts)
	})
	if err != nil {
		return nil, err
	}
	names := allLinkers(cfg.Seed, 1)
	nLinkers := len(names)
	inner := innerWorkers(len(fractions)*nLinkers, cfg)
	outs := parallel.Map(cfg.Workers, len(fractions)*nLinkers, func(i int) runResult {
		fi, li := i/nLinkers, i%nLinkers
		linker := allLinkers(cfg.Seed, inner)[li]
		return runPoint(st.sys, linker, tasks[fi], inner)
	})
	for fi, frac := range fractions {
		for li := 0; li < nLinkers; li++ {
			out := outs[fi*nLinkers+li]
			if out.err != nil {
				res.Note("%s at frac %.2f failed: %v", names[li].Name(), frac, out.err)
				continue
			}
			res.AddPoint(names[li].Name(), frac, out.conf.Precision(), out.conf.Recall(), out.secs)
		}
	}
	res.Note("paper shape: obvious performance drop vs single-culture linkage, HYDRA still best")
	return res, nil
}
