package experiments

import (
	"hydra/internal/core"
	"hydra/internal/platform"
)

// Figure13 reproduces "Performance w.r.t. varied social platforms": SIL
// across culturally different platforms — linking Chinese-platform accounts
// to English-platform accounts over the full seven-platform world. The
// paper observes an overall performance drop (different writing styles and
// social circles) with HYDRA still dominating the baselines.
func Figure13(cfg Config) (*Result, error) {
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(90),
		platforms: platform.AllPlatforms,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Cross-cultural pairs: Chinese × English platforms.
	pairs := [][2]platform.ID{
		{platform.SinaWeibo, platform.Twitter},
		{platform.Renren, platform.Facebook},
	}
	res := &Result{
		Figure: "Figure 13",
		Title:  "Performance across culturally different platforms (all seven networks)",
		XLabel: "labeled-frac",
	}
	for _, frac := range []float64{0.2, 0.35, 0.5} {
		opts := core.LabelOpts{LabelFraction: frac, NegPerPos: 2, UsePreMatched: true, Seed: cfg.Seed}
		task, err := st.multiTask(pairs, opts)
		if err != nil {
			return nil, err
		}
		for _, linker := range allLinkers(cfg.Seed, cfg.Workers) {
			conf, secs, err := runLinker(st.sys, linker, task, cfg.Workers)
			if err != nil {
				res.Note("%s at frac %.2f failed: %v", linker.Name(), frac, err)
				continue
			}
			res.AddPoint(linker.Name(), frac, conf.Precision(), conf.Recall(), secs)
		}
	}
	res.Note("paper shape: obvious performance drop vs single-culture linkage, HYDRA still best")
	return res, nil
}
