package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/platform"
)

// Figure8 reproduces the (γ_M, γ_L) performance surface under p = 1..4:
// the paper's grid spans 1e-6..1e6 on both axes and shows that different p
// lead to different optimal (γ_M, γ_L) settings. One series per p, one
// point per (γ_L, γ_M) cell; x encodes the cell index (γ_L-major) so the
// surface can be reconstructed row by row.
func Figure8(cfg Config) (*Result, error) {
	gammas := []float64{1e-6, 1e-3, 1, 1e3, 1e6}
	ps := []float64{1, 2, 3, 4}
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(70),
		platforms: platform.EnglishPlatforms,
		seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	task, err := st.task(platform.Twitter, platform.Facebook, core.DefaultLabelOpts(cfg.Seed))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Figure: "Figure 8",
		Title:  "Performance vs (γ_L, γ_M) under p = 1..4",
		XLabel: "cell(γL-major)",
	}
	for _, p := range ps {
		bestPrec, bestCell := -1.0, ""
		for gi, gl := range gammas {
			for gj, gm := range gammas {
				hcfg := core.DefaultConfig(cfg.Seed)
				hcfg.GammaL, hcfg.GammaM, hcfg.P = gl, gm, p
				hcfg.ReweightIters = 2
				linker := &core.HydraLinker{Cfg: hcfg}
				conf, secs, err := runLinker(st.sys, linker, task)
				if err != nil {
					// Extreme corners can be numerically infeasible; record
					// a zero cell rather than aborting the sweep.
					res.AddPoint(fmt.Sprintf("p=%g", p), float64(gi*len(gammas)+gj), 0, 0, 0)
					continue
				}
				res.AddPoint(fmt.Sprintf("p=%g", p), float64(gi*len(gammas)+gj),
					conf.Precision(), conf.Recall(), secs)
				if conf.Precision() > bestPrec {
					bestPrec = conf.Precision()
					bestCell = fmt.Sprintf("γL=%g, γM=%g", gl, gm)
				}
			}
		}
		res.Note("p=%g: best precision %.3f at %s", p, bestPrec, bestCell)
	}
	res.Note("paper: different p settings lead to different optimal (γ_M, γ_L)")
	return res, nil
}
