package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// Figure8 reproduces the (γ_M, γ_L) performance surface under p = 1..4:
// the paper's grid spans 1e-6..1e6 on both axes and shows that different p
// lead to different optimal (γ_M, γ_L) settings. One series per p, one
// point per (γ_L, γ_M) cell; x encodes the cell index (γ_L-major) so the
// surface can be reconstructed row by row.
func Figure8(cfg Config) (*Result, error) {
	gammas := []float64{1e-6, 1e-3, 1, 1e3, 1e6}
	ps := []float64{1, 2, 3, 4}
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(70),
		platforms: platform.EnglishPlatforms,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	task, err := st.task(platform.Twitter, platform.Facebook, core.DefaultLabelOpts(cfg.Seed))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Figure: "Figure 8",
		Title:  "Performance vs (γ_L, γ_M) under p = 1..4",
		XLabel: "cell(γL-major)",
	}
	// Every (p, γ_L, γ_M) cell is an independent full train/eval run; fan
	// them all out and assemble the table in grid order afterwards.
	type cell struct {
		p, gl, gm float64
		gi, gj    int
	}
	var cells []cell
	for _, p := range ps {
		for gi, gl := range gammas {
			for gj, gm := range gammas {
				cells = append(cells, cell{p: p, gl: gl, gm: gm, gi: gi, gj: gj})
			}
		}
	}
	inner := innerWorkers(len(cells), cfg)
	outs := parallel.Map(cfg.Workers, len(cells), func(i int) runResult {
		c := cells[i]
		hcfg := cfg.hydraConfig()
		hcfg.Workers = inner
		hcfg.GammaL, hcfg.GammaM, hcfg.P = c.gl, c.gm, c.p
		hcfg.ReweightIters = 2
		return runPoint(st.sys, &core.HydraLinker{Cfg: hcfg}, task, inner)
	})
	for _, p := range ps {
		bestPrec, bestCell := -1.0, ""
		for j, cj := range cells {
			if cj.p != p {
				continue
			}
			x := float64(cj.gi*len(gammas) + cj.gj)
			if outs[j].err != nil {
				// Extreme corners can be numerically infeasible; record
				// a zero cell rather than aborting the sweep.
				res.AddPoint(fmt.Sprintf("p=%g", p), x, 0, 0, 0)
				continue
			}
			res.AddPoint(fmt.Sprintf("p=%g", p), x,
				outs[j].conf.Precision(), outs[j].conf.Recall(), outs[j].secs)
			if outs[j].conf.Precision() > bestPrec {
				bestPrec = outs[j].conf.Precision()
				bestCell = fmt.Sprintf("γL=%g, γM=%g", cj.gl, cj.gm)
			}
		}
		res.Note("p=%g: best precision %.3f at %s", p, bestPrec, bestCell)
	}
	res.Note("paper: different p settings lead to different optimal (γ_M, γ_L)")
	return res, nil
}
