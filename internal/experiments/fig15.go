package experiments

import (
	"hydra/internal/core"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// Figure15 reproduces the sensitivity evaluation: HYDRA-M versus HYDRA-Z
// under missing information across dataset sizes, for both datasets. The
// paper: both variants achieve high precision and recall, with HYDRA-M
// consistently on top — the friend-based imputation (Eqn 18) beats zero
// filling.
//
// Each (dataset, size) cell owns a fresh world, so the cells — world
// generation, systemization and task build included — fan out over the
// worker pool, then the (cell × variant) train/eval grid fans out again;
// index-ordered collection keeps the table identical to the sequential
// loops at any worker count.
func Figure15(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 15",
		Title:  "Sensitivity to missing data: HYDRA-M vs HYDRA-Z",
		XLabel: "#users",
	}
	datasets := []struct {
		name  string
		plats []platform.ID
		pairs [][2]platform.ID
	}{
		{"english", platform.EnglishPlatforms, englishPairs},
		{"chinese", platform.ChinesePlatforms, chinesePairs},
	}
	sizes := []int{50, 80, 110}
	variants := []core.Variant{core.HydraM, core.HydraZ}

	type cellSpec struct {
		dsIdx, size int
	}
	var cells []cellSpec
	for di := range datasets {
		for _, size := range sizes {
			cells = append(cells, cellSpec{dsIdx: di, size: size})
		}
	}
	type cellState struct {
		st   *setup
		task *core.Task
	}
	cellWorkers := parallel.Inner(len(cells), cfg.Workers)
	states, err := parallel.MapErr(cfg.Workers, len(cells), func(ci int) (cellState, error) {
		c := cells[ci]
		st, err := newSetup(setupOpts{
			persons:      cfg.persons(c.size),
			platforms:    datasets[c.dsIdx].plats,
			seed:         cfg.Seed + int64(c.size),
			workers:      cellWorkers,
			missingScale: 1.25, // stressed missing-information regime
		})
		if err != nil {
			return cellState{}, err
		}
		task, err := st.multiTask(datasets[c.dsIdx].pairs, core.DefaultLabelOpts(cfg.Seed))
		if err != nil {
			return cellState{}, err
		}
		return cellState{st: st, task: task}, nil
	})
	if err != nil {
		return nil, err
	}

	inner := innerWorkers(len(cells)*len(variants), cfg)
	outs := parallel.Map(cfg.Workers, len(cells)*len(variants), func(i int) runResult {
		ci, vi := i/len(variants), i%len(variants)
		hcfg := cfg.hydraConfig()
		hcfg.Variant = variants[vi]
		hcfg.Workers = inner
		linker := &core.HydraLinker{Cfg: hcfg}
		return runPoint(states[ci].st.sys, linker, states[ci].task, inner)
	})
	for ci, c := range cells {
		for vi, variant := range variants {
			out := outs[ci*len(variants)+vi]
			if out.err != nil {
				res.Note("%s/%s at %d users failed: %v", datasets[c.dsIdx].name, variant, c.size, out.err)
				continue
			}
			res.AddPoint(datasets[c.dsIdx].name+"/"+variant.String(), float64(cfg.persons(c.size)),
				out.conf.Precision(), out.conf.Recall(), out.secs)
		}
	}
	res.Note("paper shape: both variants strong; HYDRA-M ≥ HYDRA-Z throughout")
	return res, nil
}
