package experiments

import (
	"hydra/internal/core"
	"hydra/internal/platform"
)

// Figure15 reproduces the sensitivity evaluation: HYDRA-M versus HYDRA-Z
// under missing information across dataset sizes, for both datasets. The
// paper: both variants achieve high precision and recall, with HYDRA-M
// consistently on top — the friend-based imputation (Eqn 18) beats zero
// filling.
func Figure15(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 15",
		Title:  "Sensitivity to missing data: HYDRA-M vs HYDRA-Z",
		XLabel: "#users",
	}
	datasets := []struct {
		name  string
		plats []platform.ID
		pairs [][2]platform.ID
	}{
		{"english", platform.EnglishPlatforms, englishPairs},
		{"chinese", platform.ChinesePlatforms, chinesePairs},
	}
	sizes := []int{50, 80, 110}
	for _, ds := range datasets {
		for _, size := range sizes {
			st, err := newSetup(setupOpts{
				persons:      cfg.persons(size),
				platforms:    ds.plats,
				seed:         cfg.Seed + int64(size),
				workers:      cfg.Workers,
				missingScale: 1.25, // stressed missing-information regime
			})
			if err != nil {
				return nil, err
			}
			task, err := st.multiTask(ds.pairs, core.DefaultLabelOpts(cfg.Seed))
			if err != nil {
				return nil, err
			}
			for _, variant := range []core.Variant{core.HydraM, core.HydraZ} {
				hcfg := cfg.hydraConfig()
				hcfg.Variant = variant
				linker := &core.HydraLinker{Cfg: hcfg}
				conf, secs, err := runLinker(st.sys, linker, task, cfg.Workers)
				if err != nil {
					res.Note("%s/%s at %d users failed: %v", ds.name, variant, size, err)
					continue
				}
				res.AddPoint(ds.name+"/"+variant.String(), float64(cfg.persons(size)),
					conf.Precision(), conf.Recall(), secs)
			}
		}
	}
	res.Note("paper shape: both variants strong; HYDRA-M ≥ HYDRA-Z throughout")
	return res, nil
}
