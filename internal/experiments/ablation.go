package experiments

import (
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// AblationStructure measures HYDRA with and without the structure
// consistency objective (γ_M = 0) across label budgets — isolating the
// contribution of Section 6.2.
func AblationStructure(cfg Config) (*Result, error) {
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(90),
		platforms: platform.EnglishPlatforms,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Figure: "Ablation A1",
		Title:  "Structure consistency on/off (γ_M = default vs 0)",
		XLabel: "labeled-frac",
	}
	for _, frac := range []float64{0.08, 0.15, 0.3, 0.5} {
		opts := core.LabelOpts{LabelFraction: frac, NegPerPos: 2, UsePreMatched: false, Seed: cfg.Seed}
		task, err := st.task(platform.Twitter, platform.Facebook, opts)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			name   string
			gammaM float64
		}{{"with-structure", core.DefaultConfig(cfg.Seed).GammaM}, {"no-structure", 0}} {
			hcfg := cfg.hydraConfig()
			hcfg.GammaM = mode.gammaM
			linker := &core.HydraLinker{Cfg: hcfg}
			conf, secs, err := runLinker(st.sys, linker, task, cfg.Workers)
			if err != nil {
				res.Note("%s at frac %.2f failed: %v", mode.name, frac, err)
				continue
			}
			res.AddPoint(mode.name, frac, conf.Precision(), conf.Recall(), secs)
		}
	}
	res.Note("expected: structure helps most at small label budgets")
	return res, nil
}

// AblationPooling compares lq-norm pooling against mean pooling in the
// multi-resolution sensor model (Section 5.4's bio-inspired choice).
func AblationPooling(cfg Config) (*Result, error) {
	return featureAblation(cfg, "Ablation A2", "lq-pooling vs mean pooling",
		func(fc *features.Config, on bool) {
			fc.MR.MeanPooling = !on
		}, "lq-pool", "mean-pool")
}

// AblationMultiScale compares the full multi-scale bucket set (1..32 days)
// against a single 8-day scale.
func AblationMultiScale(cfg Config) (*Result, error) {
	return featureAblation(cfg, "Ablation A3", "multi-scale vs single-scale topic buckets",
		func(fc *features.Config, on bool) {
			if !on {
				fc.ScalesDays = []int{8}
			}
		}, "multi-scale", "single-scale")
}

// AblationTopicKernel compares the chi-square and histogram-intersection
// kernels for per-bucket distribution similarity (the two options the paper
// cites from [17]).
func AblationTopicKernel(cfg Config) (*Result, error) {
	return featureAblation(cfg, "Ablation A4", "chi-square vs histogram-intersection topic kernel",
		func(fc *features.Config, on bool) {
			fc.UseHistogramIntersection = !on
		}, "chi-square", "hist-intersect")
}

// featureAblation runs HYDRA twice with a toggled feature-pipeline option
// over the same world and reports both curves.
func featureAblation(cfg Config, figID, title string,
	toggle func(*features.Config, bool), onName, offName string) (*Result, error) {

	persons := cfg.persons(80)
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, cfg.Seed))
	if err != nil {
		return nil, err
	}
	var people []int
	for p := 0; p < persons/2; p++ {
		people = append(people, p)
	}
	labeled := core.LabeledProfilePairs(w.Dataset, platform.Twitter, platform.Facebook, people)
	res := &Result{Figure: figID, Title: title, XLabel: "labeled-frac"}

	for _, on := range []bool{true, false} {
		name := onName
		if !on {
			name = offName
		}
		fcfg := features.DefaultConfig(cfg.Seed)
		fcfg.LDAIterations = 25
		fcfg.MaxLDADocs = 2000
		toggle(&fcfg, on)
		sys, err := core.NewSystem(w.Dataset, labeled, features.Lexicons{
			Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment,
		}, fcfg)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.2, 0.4} {
			opts := core.LabelOpts{LabelFraction: frac, NegPerPos: 2, UsePreMatched: false, Seed: cfg.Seed}
			block, err := core.BuildBlock(sys, platform.Twitter, platform.Facebook, rulesFor(cfg.Workers), opts)
			if err != nil {
				return nil, err
			}
			task := &core.Task{Blocks: []*core.Block{block}}
			linker := &core.HydraLinker{Cfg: cfg.hydraConfig()}
			conf, secs, err := runLinker(sys, linker, task, cfg.Workers)
			if err != nil {
				res.Note("%s at frac %.2f failed: %v", name, frac, err)
				continue
			}
			res.AddPoint(name, frac, conf.Precision(), conf.Recall(), secs)
		}
	}
	return res, nil
}
