package experiments

import (
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// AblationStructure measures HYDRA with and without the structure
// consistency objective (γ_M = 0) across label budgets — isolating the
// contribution of Section 6.2. The (fraction × mode) grid fans out over
// the worker pool with index-ordered collection, like the figure sweeps.
func AblationStructure(cfg Config) (*Result, error) {
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(90),
		platforms: platform.EnglishPlatforms,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Figure: "Ablation A1",
		Title:  "Structure consistency on/off (γ_M = default vs 0)",
		XLabel: "labeled-frac",
	}
	fractions := []float64{0.08, 0.15, 0.3, 0.5}
	modes := []struct {
		name   string
		gammaM float64
	}{{"with-structure", core.DefaultConfig(cfg.Seed).GammaM}, {"no-structure", 0}}

	pinned := *st
	pinned.workers = parallel.Inner(len(fractions), cfg.Workers)
	tasks, err := parallel.MapErr(cfg.Workers, len(fractions), func(fi int) (*core.Task, error) {
		opts := core.LabelOpts{LabelFraction: fractions[fi], NegPerPos: 2, UsePreMatched: false, Seed: cfg.Seed}
		return pinned.task(platform.Twitter, platform.Facebook, opts)
	})
	if err != nil {
		return nil, err
	}
	inner := innerWorkers(len(fractions)*len(modes), cfg)
	outs := parallel.Map(cfg.Workers, len(fractions)*len(modes), func(i int) runResult {
		fi, mi := i/len(modes), i%len(modes)
		hcfg := cfg.hydraConfig()
		hcfg.GammaM = modes[mi].gammaM
		hcfg.Workers = inner
		linker := &core.HydraLinker{Cfg: hcfg}
		return runPoint(st.sys, linker, tasks[fi], inner)
	})
	for fi, frac := range fractions {
		for mi, mode := range modes {
			out := outs[fi*len(modes)+mi]
			if out.err != nil {
				res.Note("%s at frac %.2f failed: %v", mode.name, frac, out.err)
				continue
			}
			res.AddPoint(mode.name, frac, out.conf.Precision(), out.conf.Recall(), out.secs)
		}
	}
	res.Note("expected: structure helps most at small label budgets")
	return res, nil
}

// AblationPooling compares lq-norm pooling against mean pooling in the
// multi-resolution sensor model (Section 5.4's bio-inspired choice).
func AblationPooling(cfg Config) (*Result, error) {
	return featureAblation(cfg, "Ablation A2", "lq-pooling vs mean pooling",
		func(fc *features.Config, on bool) {
			fc.MR.MeanPooling = !on
		}, "lq-pool", "mean-pool")
}

// AblationMultiScale compares the full multi-scale bucket set (1..32 days)
// against a single 8-day scale.
func AblationMultiScale(cfg Config) (*Result, error) {
	return featureAblation(cfg, "Ablation A3", "multi-scale vs single-scale topic buckets",
		func(fc *features.Config, on bool) {
			if !on {
				fc.ScalesDays = []int{8}
			}
		}, "multi-scale", "single-scale")
}

// AblationTopicKernel compares the chi-square and histogram-intersection
// kernels for per-bucket distribution similarity (the two options the paper
// cites from [17]).
func AblationTopicKernel(cfg Config) (*Result, error) {
	return featureAblation(cfg, "Ablation A4", "chi-square vs histogram-intersection topic kernel",
		func(fc *features.Config, on bool) {
			fc.UseHistogramIntersection = !on
		}, "chi-square", "hist-intersect")
}

// featureAblation runs HYDRA with a toggled feature-pipeline option over
// the same world and reports both curves. The two toggled systems build
// in parallel (each owns an LDA train), then the (system × fraction)
// points — block construction plus train/eval — fan out over the pool;
// collection is index-ordered, so the output matches the sequential
// loops at any worker count.
func featureAblation(cfg Config, figID, title string,
	toggle func(*features.Config, bool), onName, offName string) (*Result, error) {

	persons := cfg.persons(80)
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, cfg.Seed))
	if err != nil {
		return nil, err
	}
	var people []int
	for p := 0; p < persons/2; p++ {
		people = append(people, p)
	}
	labeled := core.LabeledProfilePairs(w.Dataset, platform.Twitter, platform.Facebook, people)
	res := &Result{Figure: figID, Title: title, XLabel: "labeled-frac"}

	toggles := []bool{true, false}
	fractions := []float64{0.2, 0.4}
	systems, err := parallel.MapErr(cfg.Workers, len(toggles), func(ti int) (*core.System, error) {
		fcfg := features.DefaultConfig(cfg.Seed)
		fcfg.LDAIterations = 25
		fcfg.MaxLDADocs = 2000
		toggle(&fcfg, toggles[ti])
		return core.NewSystem(w.Dataset, labeled, features.Lexicons{
			Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment,
		}, fcfg)
	})
	if err != nil {
		return nil, err
	}

	type pointOut struct {
		run      runResult
		buildErr error
	}
	inner := innerWorkers(len(toggles)*len(fractions), cfg)
	outs := parallel.Map(cfg.Workers, len(toggles)*len(fractions), func(i int) pointOut {
		ti, fi := i/len(fractions), i%len(fractions)
		opts := core.LabelOpts{LabelFraction: fractions[fi], NegPerPos: 2, UsePreMatched: false, Seed: cfg.Seed}
		block, err := core.BuildBlock(systems[ti], platform.Twitter, platform.Facebook, rulesFor(inner), opts)
		if err != nil {
			return pointOut{buildErr: err}
		}
		task := &core.Task{Blocks: []*core.Block{block}}
		hcfg := cfg.hydraConfig()
		hcfg.Workers = inner
		linker := &core.HydraLinker{Cfg: hcfg}
		return pointOut{run: runPoint(systems[ti], linker, task, inner)}
	})
	for ti, on := range toggles {
		name := onName
		if !on {
			name = offName
		}
		for fi, frac := range fractions {
			out := outs[ti*len(fractions)+fi]
			if out.buildErr != nil {
				return nil, out.buildErr
			}
			if out.run.err != nil {
				res.Note("%s at frac %.2f failed: %v", name, frac, out.run.err)
				continue
			}
			res.AddPoint(name, frac, out.run.conf.Precision(), out.run.conf.Recall(), out.run.secs)
		}
	}
	return res, nil
}
