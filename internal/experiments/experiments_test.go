package experiments

import (
	"strings"
	"testing"

	"hydra/internal/core"
	"hydra/internal/platform"
)

// smallCfg keeps experiment tests fast.
func smallCfg() Config { return Config{Scale: 0.5, Seed: 7} }

func TestResultAddPointAndFormat(t *testing.T) {
	r := &Result{Figure: "Figure X", Title: "test", XLabel: "x"}
	r.AddPoint("a", 1, 0.9, 0.8, 0.1)
	r.AddPoint("a", 2, 0.95, 0.85, 0.2)
	r.AddPoint("b", 1, 0.5, 0.4, 0.05)
	r.Note("note %d", 42)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	s := r.SeriesByName("a")
	if s == nil || len(s.X) != 2 {
		t.Fatal("series a wrong")
	}
	if r.SeriesByName("zzz") != nil {
		t.Fatal("unknown series should be nil")
	}
	out := r.Format()
	for _, want := range []string{"Figure X", "precision", "note 42", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if f1 := s.MeanF1(); f1 <= 0.8 || f1 > 1 {
		t.Fatalf("MeanF1 = %v", f1)
	}
	var nilS *Series
	if nilS.MeanF1() != 0 {
		t.Fatal("nil series MeanF1 should be 0")
	}
}

func TestFigure2a(t *testing.T) {
	stats, res, err := Figure2a(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	var total, atLeast2 float64
	for _, st := range stats {
		total += st.Percent
		if st.NumMissing >= 2 {
			atLeast2 += st.Percent
		}
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("percentages sum to %v", total)
	}
	// The paper's regime: most users missing at least two attributes.
	if atLeast2 < 60 {
		t.Fatalf("missing≥2 = %v%%, want the paper's ≥2 regime", atLeast2)
	}
	if len(res.Notes) != 2 {
		t.Fatalf("notes = %v", res.Notes)
	}
}

func TestFigure10Shape(t *testing.T) {
	res, err := Figure10(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := res.SeriesByName("HYDRA-M")
	if s == nil || len(s.X) != 10 {
		t.Fatalf("p sweep incomplete: %+v", s)
	}
	// The model must stay functional across all p.
	if s.MeanF1() < 0.3 {
		t.Fatalf("mean F1 over p = %v", s.MeanF1())
	}
}

func TestFigure15Shape(t *testing.T) {
	res, err := Figure15(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"english", "chinese"} {
		m := res.SeriesByName(ds + "/HYDRA-M")
		z := res.SeriesByName(ds + "/HYDRA-Z")
		if m == nil || z == nil {
			t.Fatalf("missing series for %s", ds)
		}
		// Paper shape: HYDRA-M at least matches HYDRA-Z.
		if m.MeanF1() < z.MeanF1()-0.05 {
			t.Fatalf("%s: HYDRA-M (%v) materially below HYDRA-Z (%v)", ds, m.MeanF1(), z.MeanF1())
		}
	}
}

func TestAblationStructureShape(t *testing.T) {
	res, err := AblationStructure(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	with := res.SeriesByName("with-structure")
	without := res.SeriesByName("no-structure")
	if with == nil || without == nil {
		t.Fatal("missing ablation series")
	}
	// At the smallest label budget structure must not hurt.
	if with.Recall[0] < without.Recall[0]-0.1 {
		t.Fatalf("structure hurt the low-label regime: %v vs %v", with.Recall[0], without.Recall[0])
	}
}

func TestSubsampleUnlabeledKeepsLabels(t *testing.T) {
	cfg := smallCfg()
	st, err := newSetup(setupOpts{persons: 40, platforms: platform.EnglishPlatforms, seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	full, err := st.task(platform.Twitter, platform.Facebook, core.DefaultLabelOpts(cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	sub := subsampleUnlabeled(full, 0.3, cfg.Seed)
	if len(sub.Blocks) != len(full.Blocks) {
		t.Fatal("block count changed")
	}
	if sub.NumLabeled() != full.NumLabeled() {
		t.Fatalf("labels lost: %d vs %d", sub.NumLabeled(), full.NumLabeled())
	}
	if sub.NumCandidates() >= full.NumCandidates() {
		t.Fatalf("subsample did not shrink: %d vs %d", sub.NumCandidates(), full.NumCandidates())
	}
	// Remapped labels must point at the same candidate pairs.
	for bi, b := range sub.Blocks {
		for ci, y := range b.Labels {
			c := b.Cands[ci]
			found := false
			for fci, fy := range full.Blocks[bi].Labels {
				fc := full.Blocks[bi].Cands[fci]
				if fc.A == c.A && fc.B == c.B && fy == y {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("remapped label does not match any original label")
			}
		}
	}
}

func TestFigure2aComboKey(t *testing.T) {
	if comboKey(nil) != "none missing" {
		t.Fatal("empty combo wrong")
	}
	if comboKey(platform.CoreAttrs) != "missing all" {
		t.Fatal("full combo wrong")
	}
	got := comboKey([]platform.AttrName{platform.AttrBirth, platform.AttrJob})
	if got != "birth,job" {
		t.Fatalf("combo = %q", got)
	}
}
