package experiments

import (
	"math/rand"

	"hydra/internal/core"
	"hydra/internal/platform"
)

// Figure11 reproduces "Performance w.r.t. #unlabeled pairs": with the
// labeled set held small and fixed, increasingly many unlabeled candidate
// pairs (structure information) are made available. The paper's finding:
// baselines depending on labels collapse in this regime, while HYDRA
// leverages unlabeled structure and keeps improving.
func Figure11(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 11",
		Title:  "Performance w.r.t. number of unlabeled pairs",
		XLabel: "unlabeled-frac",
	}
	datasets := []struct {
		name  string
		plats []platform.ID
		pairs [][2]platform.ID
	}{
		{"english", platform.EnglishPlatforms, englishPairs},
		{"chinese", platform.ChinesePlatforms, chinesePairs},
	}
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, ds := range datasets {
		st, err := newSetup(setupOpts{
			persons:   cfg.persons(100),
			platforms: ds.plats,
			seed:      cfg.Seed,
			workers:   cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		// Small fixed label budget; unlabeled candidates subsampled per x.
		opts := core.LabelOpts{LabelFraction: 0.08, NegPerPos: 1, UsePreMatched: false, Seed: cfg.Seed}
		full, err := st.multiTask(ds.pairs, opts)
		if err != nil {
			return nil, err
		}
		// Subsampling is deterministic per fraction, so each (fraction ×
		// method) grid point is an independent full train/eval run.
		tasks := make([]*core.Task, len(fractions))
		for fi, frac := range fractions {
			tasks[fi] = subsampleUnlabeled(full, frac, cfg.Seed)
		}
		runGrid(st.sys, cfg, res, ds.name, fractions, tasks)
	}
	res.Note("paper shape: baselines do much worse than with labels (Fig 9); HYDRA survives the unlabeled regime")
	return res, nil
}

// subsampleUnlabeled keeps all labeled candidates and a deterministic
// fraction of the unlabeled ones, remapping label indices.
func subsampleUnlabeled(t *core.Task, frac float64, seed int64) *core.Task {
	out := &core.Task{}
	rng := rand.New(rand.NewSource(seed + int64(frac*1000)))
	for _, b := range t.Blocks {
		nb := &core.Block{PA: b.PA, PB: b.PB, Labels: make(map[int]float64)}
		for ci, c := range b.Cands {
			if y, lab := b.Labels[ci]; lab {
				nb.Labels[len(nb.Cands)] = y
				nb.Cands = append(nb.Cands, c)
				continue
			}
			if rng.Float64() < frac {
				nb.Cands = append(nb.Cands, c)
			}
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}
