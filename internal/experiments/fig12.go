package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// Figure12 reproduces "Performance w.r.t. #social communities": labeled
// pairs come from the two largest communities (A, B); structure information
// (unlabeled candidates) from communities C, D, E is added incrementally.
// The paper finds that extra communities' structure helps, more so on the
// Chinese dataset with its more complex community structure.
func Figure12(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 12",
		Title:  "Performance w.r.t. number of social communities",
		XLabel: "#communities",
	}
	datasets := []struct {
		name  string
		plats []platform.ID
		pa    platform.ID
		pb    platform.ID
	}{
		{"english", platform.EnglishPlatforms, platform.Twitter, platform.Facebook},
		{"chinese", platform.ChinesePlatforms, platform.SinaWeibo, platform.Renren},
	}
	for _, ds := range datasets {
		st, err := newSetup(setupOpts{
			persons:     cfg.persons(120),
			platforms:   ds.plats,
			seed:        cfg.Seed,
			workers:     cfg.Workers,
			communities: 5,
		})
		if err != nil {
			return nil, err
		}
		// Group persons by their planted community, largest first.
		byComm := make(map[int][]int)
		for _, pe := range st.world.Persons {
			byComm[pe.Community] = append(byComm[pe.Community], pe.ID)
		}
		order := make([]int, 0, len(byComm))
		for comm := range byComm {
			order = append(order, comm)
		}
		// Sort by size descending (stable by id).
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				si, sj := len(byComm[order[i]]), len(byComm[order[j]])
				if sj > si || (sj == si && order[j] < order[i]) {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		if len(order) < 3 {
			return nil, fmt.Errorf("experiments: only %d communities planted", len(order))
		}
		opts := core.LabelOpts{LabelFraction: 0.3, NegPerPos: 2, UsePreMatched: false, Seed: cfg.Seed}
		full, err := st.task(ds.pa, ds.pb, opts)
		if err != nil {
			return nil, err
		}
		block := full.Blocks[0]
		platA, _ := st.sys.DS.Platform(ds.pa)

		// Membership of each A-side account's person.
		commOf := make(map[int]int)
		for _, pe := range st.world.Persons {
			commOf[pe.ID] = pe.Community
		}
		// Eval set: candidates whose A-side persons are in the top-2
		// communities (the paper's C_A × C_B test set).
		inEval := func(c int) bool {
			person := platA.Account(c).Person
			return commOf[person] == order[0] || commOf[person] == order[1]
		}

		// Each k is an independent full train/eval run on its own task
		// subset; fan the points out and assemble them in k order.
		maxK := len(order)
		if maxK > 5 {
			maxK = 5
		}
		inner := innerWorkers(maxK, cfg)
		outs := parallel.Map(cfg.Workers, maxK, func(i int) runResult {
			k := i + 1
			// Keep: eval-community candidates always; others only when
			// their community is among the first k (incremental structure).
			task := &core.Task{}
			nb := &core.Block{PA: block.PA, PB: block.PB, Labels: make(map[int]float64)}
			for ci, c := range block.Cands {
				person := platA.Account(c.A).Person
				comm := commOf[person]
				keep := inEval(c.A) || (k > 2 && allowedIn(order[:k], comm))
				if !keep {
					continue
				}
				if y, lab := block.Labels[ci]; lab && inEval(c.A) {
					nb.Labels[len(nb.Cands)] = y
				}
				nb.Cands = append(nb.Cands, c)
			}
			task.Blocks = []*core.Block{nb}
			hcfg := cfg.hydraConfig()
			hcfg.Workers = inner
			return runPoint(st.sys, &core.HydraLinker{Cfg: hcfg}, task, inner)
		})
		for i, out := range outs {
			k := i + 1
			if out.err != nil {
				res.Note("%s k=%d failed: %v", ds.name, k, out.err)
				continue
			}
			res.AddPoint(ds.name+"/HYDRA-M", float64(k), out.conf.Precision(), out.conf.Recall(), out.secs)
		}
	}
	res.Note("paper shape: added communities improve results; effect stronger on Chinese platforms")
	return res, nil
}

func allowedIn(comms []int, c int) bool {
	for _, x := range comms {
		if x == c {
			return true
		}
	}
	return false
}
