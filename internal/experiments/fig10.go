package experiments

import (
	"hydra/internal/core"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// Figure10 reproduces "Performance w.r.t. varied p": precision and recall
// as the utility exponent p runs 1..10 at the optimal (γ_L, γ_M), with the
// labeled:unlabeled ratio fixed at 1:5. The paper observes an interior
// optimum (best precision at p=6, best recall at p=5): moderate p balances
// the objectives, large p over-weights the dominant objective and overfits.
func Figure10(cfg Config) (*Result, error) {
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(90),
		platforms: platform.EnglishPlatforms,
		seed:      cfg.Seed,
		workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Labeled:unlabeled at 1:5 means a labeled fraction around 1/6 of
	// candidates; LabelFraction 0.15 with NegPerPos 1 approximates it.
	opts := core.LabelOpts{LabelFraction: 0.15, NegPerPos: 1, UsePreMatched: false, Seed: cfg.Seed}
	task, err := st.task(platform.Twitter, platform.Facebook, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Figure: "Figure 10",
		Title:  "Precision and recall w.r.t. p (labeled:unlabeled = 1:5)",
		XLabel: "p",
	}
	// The ten p settings are independent full train/eval runs: fan out,
	// then assemble the series in p order.
	inner := innerWorkers(10, cfg)
	outs := parallel.Map(cfg.Workers, 10, func(i int) runResult {
		hcfg := cfg.hydraConfig()
		hcfg.Workers = inner
		hcfg.P = float64(i + 1)
		hcfg.ReweightIters = 3
		return runPoint(st.sys, &core.HydraLinker{Cfg: hcfg}, task, inner)
	})
	bestPrecP, bestPrec := 0.0, -1.0
	bestRecP, bestRec := 0.0, -1.0
	for i, out := range outs {
		p := i + 1
		if out.err != nil {
			res.Note("p=%d failed: %v", p, out.err)
			continue
		}
		conf := out.conf
		res.AddPoint("HYDRA-M", float64(p), conf.Precision(), conf.Recall(), out.secs)
		if conf.Precision() > bestPrec {
			bestPrec, bestPrecP = conf.Precision(), float64(p)
		}
		if conf.Recall() > bestRec {
			bestRec, bestRecP = conf.Recall(), float64(p)
		}
	}
	res.Note("best precision %.3f at p=%g; best recall %.3f at p=%g (paper: p=6 and p=5)",
		bestPrec, bestPrecP, bestRec, bestRecP)
	return res, nil
}
