package experiments

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/platform"
)

// Figure10 reproduces "Performance w.r.t. varied p": precision and recall
// as the utility exponent p runs 1..10 at the optimal (γ_L, γ_M), with the
// labeled:unlabeled ratio fixed at 1:5. The paper observes an interior
// optimum (best precision at p=6, best recall at p=5): moderate p balances
// the objectives, large p over-weights the dominant objective and overfits.
func Figure10(cfg Config) (*Result, error) {
	st, err := newSetup(setupOpts{
		persons:   cfg.persons(90),
		platforms: platform.EnglishPlatforms,
		seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Labeled:unlabeled at 1:5 means a labeled fraction around 1/6 of
	// candidates; LabelFraction 0.15 with NegPerPos 1 approximates it.
	opts := core.LabelOpts{LabelFraction: 0.15, NegPerPos: 1, UsePreMatched: false, Seed: cfg.Seed}
	task, err := st.task(platform.Twitter, platform.Facebook, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Figure: "Figure 10",
		Title:  "Precision and recall w.r.t. p (labeled:unlabeled = 1:5)",
		XLabel: "p",
	}
	bestPrecP, bestPrec := 0.0, -1.0
	bestRecP, bestRec := 0.0, -1.0
	for p := 1; p <= 10; p++ {
		hcfg := core.DefaultConfig(cfg.Seed)
		hcfg.P = float64(p)
		hcfg.ReweightIters = 3
		linker := &core.HydraLinker{Cfg: hcfg}
		conf, secs, err := runLinker(st.sys, linker, task)
		if err != nil {
			res.Note("p=%d failed: %v", p, err)
			continue
		}
		res.AddPoint("HYDRA-M", float64(p), conf.Precision(), conf.Recall(), secs)
		if conf.Precision() > bestPrec {
			bestPrec, bestPrecP = conf.Precision(), float64(p)
		}
		if conf.Recall() > bestRec {
			bestRec, bestRecP = conf.Recall(), float64(p)
		}
	}
	res.Note(fmt.Sprintf("best precision %.3f at p=%g; best recall %.3f at p=%g (paper: p=6 and p=5)",
		bestPrec, bestPrecP, bestRec, bestRecP))
	return res, nil
}
