// Package experiments contains one driver per figure of the paper's
// evaluation (Section 7): each builds the required synthetic workload, runs
// HYDRA and the baselines, and emits the figure's series as printable rows.
// The per-experiment index in DESIGN.md maps each driver to its paper
// figure; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one curve of a figure: a method (or setting) with its values at
// each x.
type Series struct {
	Name      string
	X         []float64
	Precision []float64
	Recall    []float64
	TimeSec   []float64
}

// Result is one reproduced figure.
type Result struct {
	Figure string // e.g. "Figure 9"
	Title  string
	XLabel string
	Series []*Series
	Notes  []string
}

// AddPoint appends a measurement to the named series, creating it on first
// use.
func (r *Result) AddPoint(series string, x, precision, recall, timeSec float64) {
	for _, s := range r.Series {
		if s.Name == series {
			s.X = append(s.X, x)
			s.Precision = append(s.Precision, precision)
			s.Recall = append(s.Recall, recall)
			s.TimeSec = append(s.TimeSec, timeSec)
			return
		}
	}
	r.Series = append(r.Series, &Series{
		Name:      series,
		X:         []float64{x},
		Precision: []float64{precision},
		Recall:    []float64{recall},
		TimeSec:   []float64{timeSec},
	})
}

// Note records a free-form annotation printed with the figure.
func (r *Result) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the figure as a text table, one row per (series, x).
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.Figure, r.Title)
	fmt.Fprintf(&b, "%-28s %12s %10s %10s %10s\n", "series", r.XLabel, "precision", "recall", "time(s)")
	names := make([]string, 0, len(r.Series))
	for _, s := range r.Series {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		var s *Series
		for _, cand := range r.Series {
			if cand.Name == name {
				s = cand
				break
			}
		}
		for i := range s.X {
			fmt.Fprintf(&b, "%-28s %12.4g %10.3f %10.3f %10.3f\n",
				s.Name, s.X[i], s.Precision[i], s.Recall[i], s.TimeSec[i])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SeriesByName returns the named series, or nil.
func (r *Result) SeriesByName(name string) *Series {
	for _, s := range r.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MeanF1 returns the mean F1 of a series (diagnostic for shape tests).
func (s *Series) MeanF1() float64 {
	if s == nil || len(s.X) == 0 {
		return 0
	}
	var acc float64
	for i := range s.X {
		p, r := s.Precision[i], s.Recall[i]
		if p+r > 0 {
			acc += 2 * p * r / (p + r)
		}
	}
	return acc / float64(len(s.X))
}
