package experiments

import (
	"testing"
)

// tinyCfg shrinks worlds to the minimum the drivers support.
func tinyCfg() Config { return Config{Scale: 0.35, Seed: 7} }

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("gamma sweep is slow")
	}
	res, err := Figure8(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"p=1", "p=2", "p=3", "p=4"} {
		s := res.SeriesByName(p)
		if s == nil || len(s.X) != 25 {
			t.Fatalf("series %s incomplete", p)
		}
		// The plateau must exist: at least half the cells above 0.8
		// precision.
		good := 0
		for _, prec := range s.Precision {
			if prec > 0.8 {
				good++
			}
		}
		if good < len(s.Precision)/2 {
			t.Fatalf("%s: only %d/%d good cells", p, good, len(s.Precision))
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("labeled sweep is slow")
	}
	res, err := Figure9(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"english", "chinese"} {
		hydra := res.SeriesByName(ds + "/HYDRA-M")
		if hydra == nil || len(hydra.X) != 5 {
			t.Fatalf("%s HYDRA series incomplete", ds)
		}
		// HYDRA must dominate every baseline on mean F1.
		for _, base := range []string{"/MOBIUS", "/Alias-Disamb", "/SMaSh"} {
			bs := res.SeriesByName(ds + base)
			if bs == nil {
				continue
			}
			if bs.MeanF1() > hydra.MeanF1()+0.02 {
				t.Fatalf("%s%s (%v) beats HYDRA (%v)", ds, base, bs.MeanF1(), hydra.MeanF1())
			}
		}
	}
	// English ≥ Chinese for HYDRA (the paper's dataset-difficulty ordering).
	en := res.SeriesByName("english/HYDRA-M")
	zh := res.SeriesByName("chinese/HYDRA-M")
	if en.MeanF1() < zh.MeanF1()-0.05 {
		t.Fatalf("English (%v) should not trail Chinese (%v)", en.MeanF1(), zh.MeanF1())
	}
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("unlabeled sweep is slow")
	}
	res, err := Figure11(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	hydra := res.SeriesByName("english/HYDRA-M")
	if hydra == nil || len(hydra.X) != 5 {
		t.Fatal("HYDRA series incomplete")
	}
	// Recall must grow with the unlabeled pool (structure propagation).
	if hydra.Recall[len(hydra.Recall)-1] <= hydra.Recall[0] {
		t.Fatalf("HYDRA recall did not grow with unlabeled data: %v", hydra.Recall)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("community sweep is slow")
	}
	res, err := Figure12(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"english", "chinese"} {
		s := res.SeriesByName(ds + "/HYDRA-M")
		if s == nil || len(s.X) < 3 {
			t.Fatalf("%s community series incomplete", ds)
		}
		// Adding all communities must beat the eval-only baseline on recall.
		if s.Recall[len(s.Recall)-1] <= s.Recall[0] {
			t.Fatalf("%s: communities did not help: %v", ds, s.Recall)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-platform run is slow")
	}
	res, err := Figure13(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	hydra := res.SeriesByName("HYDRA-M")
	if hydra == nil {
		t.Fatal("no HYDRA series")
	}
	for _, base := range []string{"MOBIUS", "Alias-Disamb", "SMaSh"} {
		bs := res.SeriesByName(base)
		if bs != nil && bs.MeanF1() > hydra.MeanF1()+0.02 {
			t.Fatalf("%s (%v) beats HYDRA (%v) cross-culture", base, bs.MeanF1(), hydra.MeanF1())
		}
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency sweep is slow")
	}
	res, err := Figure14(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	hydra := res.SeriesByName("english/HYDRA-M")
	smash := res.SeriesByName("english/SMaSh")
	if hydra == nil || smash == nil {
		t.Fatal("missing series")
	}
	// SMaSh (set intersections) must be cheaper than HYDRA (dense dual).
	var hSum, sSum float64
	for i := range hydra.TimeSec {
		hSum += hydra.TimeSec[i]
	}
	for i := range smash.TimeSec {
		sSum += smash.TimeSec[i]
	}
	if sSum >= hSum {
		t.Fatalf("SMaSh (%vs) should be cheaper than HYDRA (%vs)", sSum, hSum)
	}
}

func TestAblationPoolingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := AblationPooling(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SeriesByName("lq-pool") == nil || res.SeriesByName("mean-pool") == nil {
		t.Fatal("pooling ablation series missing")
	}
}

func TestAblationMultiScaleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := AblationMultiScale(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	ms := res.SeriesByName("multi-scale")
	ss := res.SeriesByName("single-scale")
	if ms == nil || ss == nil {
		t.Fatal("multi-scale ablation series missing")
	}
}

func TestAblationTopicKernelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := AblationTopicKernel(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SeriesByName("chi-square") == nil || res.SeriesByName("hist-intersect") == nil {
		t.Fatal("kernel ablation series missing")
	}
}
