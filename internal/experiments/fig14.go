package experiments

import (
	"hydra/internal/core"
	"hydra/internal/platform"
)

// Figure14 reproduces the efficiency evaluation: total execution time
// versus the number of users, Chinese and English datasets, all methods.
// The paper's observations: HYDRA's runtime grows sublinearly (warm starts,
// sparse structure matrix, shrinking); Alias-Disamb is slowest (its
// self-generated training set yields a huge QP); SVM-B and SMaSh are
// cheaper than HYDRA.
func Figure14(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 14",
		Title:  "Efficiency: total execution time vs number of users",
		XLabel: "#users",
	}
	datasets := []struct {
		name  string
		plats []platform.ID
		pairs [][2]platform.ID
	}{
		{"english", platform.EnglishPlatforms, englishPairs},
		{"chinese", platform.ChinesePlatforms, chinesePairs},
	}
	sizes := []int{40, 70, 100, 130}
	for _, ds := range datasets {
		for _, size := range sizes {
			st, err := newSetup(setupOpts{
				persons:   cfg.persons(size),
				platforms: ds.plats,
				seed:      cfg.Seed + int64(size),
				workers:   cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			task, err := st.multiTask(ds.pairs, core.DefaultLabelOpts(cfg.Seed))
			if err != nil {
				return nil, err
			}
			for _, linker := range allLinkers(cfg.Seed, cfg.Workers) {
				conf, secs, err := runLinker(st.sys, linker, task, cfg.Workers)
				if err != nil {
					res.Note("%s/%s at %d users failed: %v", ds.name, linker.Name(), size, err)
					continue
				}
				res.AddPoint(ds.name+"/"+linker.Name(), float64(cfg.persons(size)),
					conf.Precision(), conf.Recall(), secs)
			}
		}
	}
	res.Note("paper shape: Alias-Disamb slowest; SVM-B/SMaSh cheaper than HYDRA; HYDRA's growth flattens with scale")
	return res, nil
}
