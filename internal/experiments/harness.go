package experiments

import (
	"fmt"

	"hydra/internal/baseline"
	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/metrics"
	"hydra/internal/parallel"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// Config scales the experiment suite. Scale = 1 is the calibrated laptop
// scale (hundreds of users — the paper's millions are documented as
// scaled-down in EXPERIMENTS.md; curve shapes, not absolute axes, are the
// reproduction target).
type Config struct {
	// Scale multiplies every world size (≥ 0.25 recommended).
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers pins the parallelism of the sweep fan-out and of every
	// pairwise hot path underneath (blocking, feature assembly, Gram,
	// evaluation). ≤ 0 uses all cores. Each sweep point keeps its own
	// seeded RNGs, so any setting produces identical figures.
	Workers int
}

// DefaultExpConfig is the standard suite configuration.
func DefaultExpConfig(seed int64) Config { return Config{Scale: 1, Seed: seed} }

// hydraConfig is core.DefaultConfig with the suite's worker pin applied.
func (c Config) hydraConfig() core.Config {
	hcfg := core.DefaultConfig(c.Seed)
	hcfg.Workers = c.Workers
	return hcfg
}

// rulesFor is the blocking filter with a worker pin applied.
func rulesFor(workers int) blocking.Rules {
	r := blocking.DefaultRules()
	r.Workers = workers
	return r
}

func (c Config) persons(base int) int {
	if c.Scale <= 0 {
		return base
	}
	n := int(float64(base) * c.Scale)
	if n < 20 {
		n = 20
	}
	return n
}

// setup is a prepared world + systemized pipeline state, shared across the
// x-axis points of a figure so that the expensive preprocessing (LDA,
// views) happens once. The System is safe for concurrent use, so sweep
// points run against one setup in parallel.
type setup struct {
	world   *synth.World
	state   *pipeline.SystemState
	sys     *core.System
	workers int
}

// setupOpts customizes world generation per experiment.
type setupOpts struct {
	persons      int
	platforms    []platform.ID
	seed         int64
	workers      int
	missingScale float64
	communities  int
	synthMutate  func(*synth.Config)
}

// newSetup builds the world and runs the pipeline's Systemize stage over
// it (the Load stage is the in-memory generator here).
func newSetup(o setupOpts) (*setup, error) {
	cfg := synth.DefaultConfig(o.persons, o.platforms, o.seed)
	if o.missingScale > 0 {
		cfg.MissingScale = o.missingScale
	}
	if o.communities > 0 {
		cfg.Communities = o.communities
	}
	if o.synthMutate != nil {
		o.synthMutate(&cfg)
	}
	w, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	// The labeled half is persons 0..persons/2-1 by construction (the
	// generator numbers persons densely).
	var people []int
	for p := 0; p < o.persons/2; p++ {
		people = append(people, p)
	}
	fcfg := features.DefaultConfig(o.seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 2500
	state, err := pipeline.Systemize(w.Dataset, pipeline.SystemizeOpts{
		LabelPA:      o.platforms[0],
		LabelPB:      o.platforms[1],
		LabelPersons: people,
		Lexicons:     features.Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment},
		FeatCfg:      fcfg,
	})
	if err != nil {
		return nil, err
	}
	return &setup{world: w, state: state, sys: state.Sys, workers: o.workers}, nil
}

// task builds a single-block task between two platforms via the pipeline's
// Block stage.
func (s *setup) task(pa, pb platform.ID, opts core.LabelOpts) (*core.Task, error) {
	return s.multiTask([][2]platform.ID{{pa, pb}}, opts)
}

// multiTask builds a multi-block task over several platform pairs; pair i
// draws its label sample at seed+i.
func (s *setup) multiTask(pairs [][2]platform.ID, opts core.LabelOpts) (*core.Task, error) {
	blocked, err := pipeline.Block(s.state, pipeline.BlockOpts{
		Pairs:      pairs,
		Rules:      rulesFor(s.workers),
		Label:      opts,
		SeedStride: 1,
	})
	if err != nil {
		return nil, err
	}
	return blocked.Task, nil
}

// allLinkers returns the paper's method lineup: HYDRA-M plus the four
// baselines. workers pins HYDRA's internal parallelism.
func allLinkers(seed int64, workers int) []core.Linker {
	hcfg := core.DefaultConfig(seed)
	hcfg.Workers = workers
	return []core.Linker{
		&core.HydraLinker{Cfg: hcfg},
		&baseline.MOBIUS{},
		&baseline.SVMB{},
		&baseline.AliasDisamb{},
		&baseline.SMaSh{},
	}
}

// runLinker fits and evaluates one method, returning its confusion and the
// wall-clock seconds of fit+evaluate (the paper's total execution time).
// workers pins the evaluation parallelism (≤ 0 = all cores). Inside a
// parallel sweep the seconds are measured under core contention from
// sibling points, so the time(s) column of fig8–fig12 is indicative only;
// Figure 14, the efficiency figure, deliberately runs its points
// sequentially to keep its timings uncontended.
func runLinker(sys *core.System, l core.Linker, task *core.Task, workers int) (metrics.Confusion, float64, error) {
	timer := metrics.NewTimer()
	if err := l.Fit(sys, task); err != nil {
		return metrics.Confusion{}, 0, fmt.Errorf("%s: %w", l.Name(), err)
	}
	conf, err := core.EvaluateLinkerWorkers(sys, l, task.Blocks, workers)
	if err != nil {
		return metrics.Confusion{}, 0, fmt.Errorf("%s: %w", l.Name(), err)
	}
	return conf, timer.Seconds(), nil
}

// runResult is one sweep point's outcome, collected index-ordered by the
// parallel figure sweeps so that result tables and notes are assembled in
// the same order as the sequential loops they replace.
type runResult struct {
	conf metrics.Confusion
	secs float64
	err  error
}

// runPoint runs one train/eval sweep point and wraps the outcome.
func runPoint(sys *core.System, l core.Linker, task *core.Task, workers int) runResult {
	conf, secs, err := runLinker(sys, l, task, workers)
	return runResult{conf: conf, secs: secs, err: err}
}

// innerWorkers picks the worker pin for the hot paths inside a parallel
// sweep (see parallel.Inner: covering fan-outs pin to one worker, smaller
// ones split the pool). Results are identical either way.
func innerWorkers(points int, cfg Config) int {
	return parallel.Inner(points, cfg.Workers)
}

// runGrid fans out the (task × method) grid shared by the labeled- and
// unlabeled-sweep figures and appends rows and failure notes to res in
// grid order — identical output at any worker count.
func runGrid(sys *core.System, cfg Config, res *Result, dsName string, xs []float64, tasks []*core.Task) {
	names := allLinkers(cfg.Seed, 1)
	nLinkers := len(names)
	inner := innerWorkers(len(xs)*nLinkers, cfg)
	outs := parallel.Map(cfg.Workers, len(xs)*nLinkers, func(i int) runResult {
		fi, li := i/nLinkers, i%nLinkers
		linker := allLinkers(cfg.Seed, inner)[li]
		return runPoint(sys, linker, tasks[fi], inner)
	})
	for fi, x := range xs {
		for li := 0; li < nLinkers; li++ {
			out := outs[fi*nLinkers+li]
			if out.err != nil {
				res.Note("%s/%s at frac %.2f failed: %v", dsName, names[li].Name(), x, out.err)
				continue
			}
			res.AddPoint(dsName+"/"+names[li].Name(), x, out.conf.Precision(), out.conf.Recall(), out.secs)
		}
	}
}
