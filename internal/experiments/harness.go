package experiments

import (
	"fmt"

	"hydra/internal/baseline"
	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/metrics"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// Config scales the experiment suite. Scale = 1 is the calibrated laptop
// scale (hundreds of users — the paper's millions are documented as
// scaled-down in EXPERIMENTS.md; curve shapes, not absolute axes, are the
// reproduction target).
type Config struct {
	// Scale multiplies every world size (≥ 0.25 recommended).
	Scale float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultExpConfig is the standard suite configuration.
func DefaultExpConfig(seed int64) Config { return Config{Scale: 1, Seed: seed} }

func (c Config) persons(base int) int {
	if c.Scale <= 0 {
		return base
	}
	n := int(float64(base) * c.Scale)
	if n < 20 {
		n = 20
	}
	return n
}

// setup is a prepared world + system + per-pair blocks, shared across the
// x-axis points of a figure so that the expensive preprocessing (LDA,
// views) happens once.
type setup struct {
	world *synth.World
	sys   *core.System
}

// setupOpts customizes world generation per experiment.
type setupOpts struct {
	persons      int
	platforms    []platform.ID
	seed         int64
	missingScale float64
	communities  int
	synthMutate  func(*synth.Config)
}

// newSetup builds the world and system.
func newSetup(o setupOpts) (*setup, error) {
	cfg := synth.DefaultConfig(o.persons, o.platforms, o.seed)
	if o.missingScale > 0 {
		cfg.MissingScale = o.missingScale
	}
	if o.communities > 0 {
		cfg.Communities = o.communities
	}
	if o.synthMutate != nil {
		o.synthMutate(&cfg)
	}
	w, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	var people []int
	for p := 0; p < o.persons/2; p++ {
		people = append(people, p)
	}
	labeled := core.LabeledProfilePairs(w.Dataset, o.platforms[0], o.platforms[1], people)
	fcfg := features.DefaultConfig(o.seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 2500
	sys, err := core.NewSystem(w.Dataset, labeled, features.Lexicons{
		Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment,
	}, fcfg)
	if err != nil {
		return nil, err
	}
	return &setup{world: w, sys: sys}, nil
}

// task builds a single-block task between two platforms.
func (s *setup) task(pa, pb platform.ID, opts core.LabelOpts) (*core.Task, error) {
	block, err := core.BuildBlock(s.sys, pa, pb, blocking.DefaultRules(), opts)
	if err != nil {
		return nil, err
	}
	return &core.Task{Blocks: []*core.Block{block}}, nil
}

// multiTask builds a multi-block task over several platform pairs.
func (s *setup) multiTask(pairs [][2]platform.ID, opts core.LabelOpts) (*core.Task, error) {
	t := &core.Task{}
	for i, pp := range pairs {
		o := opts
		o.Seed = opts.Seed + int64(i)
		block, err := core.BuildBlock(s.sys, pp[0], pp[1], blocking.DefaultRules(), o)
		if err != nil {
			return nil, err
		}
		t.Blocks = append(t.Blocks, block)
	}
	return t, nil
}

// allLinkers returns the paper's method lineup: HYDRA-M plus the four
// baselines.
func allLinkers(seed int64) []core.Linker {
	return []core.Linker{
		&core.HydraLinker{Cfg: core.DefaultConfig(seed)},
		&baseline.MOBIUS{},
		&baseline.SVMB{},
		&baseline.AliasDisamb{},
		&baseline.SMaSh{},
	}
}

// runLinker fits and evaluates one method, returning its confusion and the
// wall-clock seconds of fit+evaluate (the paper's total execution time).
func runLinker(sys *core.System, l core.Linker, task *core.Task) (metrics.Confusion, float64, error) {
	timer := metrics.NewTimer()
	if err := l.Fit(sys, task); err != nil {
		return metrics.Confusion{}, 0, fmt.Errorf("%s: %w", l.Name(), err)
	}
	conf, err := core.EvaluateLinker(sys, l, task.Blocks)
	if err != nil {
		return metrics.Confusion{}, 0, fmt.Errorf("%s: %w", l.Name(), err)
	}
	return conf, timer.Seconds(), nil
}

// defaultRules exposes the blocking rules used across experiments.
func defaultRules() blocking.Rules { return blocking.DefaultRules() }
