package experiments

import "testing"

// diffFigures asserts two runs of one figure produced identical series,
// x values, precision and recall (wall-clock columns differ by nature and
// are excluded) and identical notes.
func diffFigures(t *testing.T, seq, par *Result) {
	t.Helper()
	if len(seq.Series) != len(par.Series) {
		t.Fatalf("series count differs: %d vs %d", len(par.Series), len(seq.Series))
	}
	for i, s := range seq.Series {
		p := par.Series[i]
		if p.Name != s.Name || len(p.X) != len(s.X) {
			t.Fatalf("series %d differs: %q(%d) vs %q(%d)", i, p.Name, len(p.X), s.Name, len(s.X))
		}
		for j := range s.X {
			if p.X[j] != s.X[j] || p.Precision[j] != s.Precision[j] || p.Recall[j] != s.Recall[j] {
				t.Fatalf("series %q point %d differs: (%g,%g,%g) vs (%g,%g,%g)",
					s.Name, j, p.X[j], p.Precision[j], p.Recall[j], s.X[j], s.Precision[j], s.Recall[j])
			}
		}
	}
	if len(seq.Notes) != len(par.Notes) {
		t.Fatalf("note count differs: %d vs %d", len(par.Notes), len(seq.Notes))
	}
	for i := range seq.Notes {
		if par.Notes[i] != seq.Notes[i] {
			t.Fatalf("note %d differs:\n  parallel:   %s\n  sequential: %s", i, par.Notes[i], seq.Notes[i])
		}
	}
}

// TestFigureWorkersDeterminism asserts that a parallel sweep produces the
// same figure as the sequential one.
func TestFigureWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure run")
	}
	seq, err := Figure10(Config{Scale: 0.25, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure10(Config{Scale: 0.25, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	diffFigures(t, seq, par)
}

// TestAblationWorkersDeterminism covers the PR-4 fan-outs: the structure
// ablation's (fraction × mode) grid and the feature ablation's parallel
// system build, both of which must match their sequential runs exactly.
func TestAblationWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation run")
	}
	for name, fn := range map[string]func(Config) (*Result, error){
		"structure": AblationStructure,
		"pooling":   AblationPooling,
	} {
		seq, err := fn(Config{Scale: 0.25, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		par, err := fn(Config{Scale: 0.25, Seed: 5, Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		diffFigures(t, seq, par)
	}
}
