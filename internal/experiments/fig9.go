package experiments

import (
	"hydra/internal/core"
	"hydra/internal/platform"
)

// chinesePairs are the platform pairs used for the "Chinese" dataset runs.
// The paper trains across all five Chinese platforms; two representative
// pairs keep the laptop-scale runtime bounded while preserving the
// multi-pair structure (Eqn 14's block-diagonal M).
var chinesePairs = [][2]platform.ID{
	{platform.SinaWeibo, platform.TencentWeibo},
	{platform.Renren, platform.Kaixin},
}

// englishPairs is the single pair of the "English" dataset.
var englishPairs = [][2]platform.ID{{platform.Twitter, platform.Facebook}}

// Figure9 reproduces "Performance w.r.t. #labeled pairs": precision and
// recall versus the number of labeled users, for the Chinese and English
// datasets, all five methods. The paper's x-axis runs 1–5 million labeled
// users; ours sweeps the labeled fraction of a fixed world (EXPERIMENTS.md
// documents the scale substitution).
func Figure9(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 9",
		Title:  "Performance w.r.t. number of labeled pairs",
		XLabel: "labeled-frac",
	}
	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	datasets := []struct {
		name  string
		plats []platform.ID
		pairs [][2]platform.ID
	}{
		{"english", platform.EnglishPlatforms, englishPairs},
		{"chinese", platform.ChinesePlatforms, chinesePairs},
	}
	for _, ds := range datasets {
		st, err := newSetup(setupOpts{
			persons:   cfg.persons(100),
			platforms: ds.plats,
			seed:      cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, frac := range fractions {
			opts := core.LabelOpts{LabelFraction: frac, NegPerPos: 2, UsePreMatched: true, Seed: cfg.Seed}
			task, err := st.multiTask(ds.pairs, opts)
			if err != nil {
				return nil, err
			}
			for _, linker := range allLinkers(cfg.Seed) {
				conf, secs, err := runLinker(st.sys, linker, task)
				if err != nil {
					res.Note("%s/%s at frac %.2f failed: %v", ds.name, linker.Name(), frac, err)
					continue
				}
				res.AddPoint(ds.name+"/"+linker.Name(), frac, conf.Precision(), conf.Recall(), secs)
			}
		}
	}
	res.Note("paper shape: all methods improve with labels; HYDRA improves fastest and dominates; English > Chinese")
	return res, nil
}
