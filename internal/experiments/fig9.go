package experiments

import (
	"hydra/internal/core"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// chinesePairs are the platform pairs used for the "Chinese" dataset runs.
// The paper trains across all five Chinese platforms; two representative
// pairs keep the laptop-scale runtime bounded while preserving the
// multi-pair structure (Eqn 14's block-diagonal M).
var chinesePairs = [][2]platform.ID{
	{platform.SinaWeibo, platform.TencentWeibo},
	{platform.Renren, platform.Kaixin},
}

// englishPairs is the single pair of the "English" dataset.
var englishPairs = [][2]platform.ID{{platform.Twitter, platform.Facebook}}

// Figure9 reproduces "Performance w.r.t. #labeled pairs": precision and
// recall versus the number of labeled users, for the Chinese and English
// datasets, all five methods. The paper's x-axis runs 1–5 million labeled
// users; ours sweeps the labeled fraction of a fixed world (EXPERIMENTS.md
// documents the scale substitution).
func Figure9(cfg Config) (*Result, error) {
	res := &Result{
		Figure: "Figure 9",
		Title:  "Performance w.r.t. number of labeled pairs",
		XLabel: "labeled-frac",
	}
	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	datasets := []struct {
		name  string
		plats []platform.ID
		pairs [][2]platform.ID
	}{
		{"english", platform.EnglishPlatforms, englishPairs},
		{"chinese", platform.ChinesePlatforms, chinesePairs},
	}
	for _, ds := range datasets {
		st, err := newSetup(setupOpts{
			persons:   cfg.persons(100),
			platforms: ds.plats,
			seed:      cfg.Seed,
			workers:   cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		// Build the per-fraction tasks first (each deterministic from its
		// seed), then fan out the (fraction × method) grid — every point is
		// an independent full train/eval run. The nested blocking fan-out
		// inside each task build is pinned so the stage stays within the
		// Workers budget (see parallel.Inner).
		pinned := *st
		pinned.workers = parallel.Inner(len(fractions), cfg.Workers)
		tasks, err := parallel.MapErr(cfg.Workers, len(fractions), func(fi int) (*core.Task, error) {
			opts := core.LabelOpts{LabelFraction: fractions[fi], NegPerPos: 2, UsePreMatched: true, Seed: cfg.Seed}
			return pinned.multiTask(ds.pairs, opts)
		})
		if err != nil {
			return nil, err
		}
		runGrid(st.sys, cfg, res, ds.name, fractions, tasks)
	}
	res.Note("paper shape: all methods improve with labels; HYDRA improves fastest and dominates; English > Chinese")
	return res, nil
}
