package baseline

import (
	"fmt"
	"strings"
	"unicode"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/svm"
	"hydra/internal/text"
)

// MOBIUS is baseline (I), after Zafarani & Liu, "Connecting users across
// social media sites: a behavioral-modeling approach" (KDD'13): a
// supervised classifier over username behavioral features — the patterns
// users exhibit when they create usernames (length habits, alphabet
// distributions, shared substrings, abbreviation styles). It models
// usernames only, which is exactly why it degrades on platforms where names
// diverge (the paper's Figure 1 challenge).
type MOBIUS struct {
	model *svm.Model
	sys   *core.System
}

// Name implements core.Linker.
func (m *MOBIUS) Name() string { return "MOBIUS" }

// usernameFeatures extracts the pairwise username behavioral features.
func usernameFeatures(a, b string) linalg.Vector {
	la, lb := float64(len([]rune(a))), float64(len([]rune(b)))
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	lenRatio := 0.0
	if maxLen > 0 {
		lenRatio = 1 - abs(la-lb)/maxLen
	}
	prefix := commonPrefixLen(a, b)
	suffix := commonPrefixLen(reverse(a), reverse(b))
	return linalg.Vector{
		text.JaroWinkler(a, b),
		text.Jaro(a, b),
		text.EditSimilarity(a, b),
		text.NGramJaccard(a, b, 2),
		text.NGramJaccard(a, b, 3),
		text.UsernameOverlap(a, b),
		lenRatio,
		boolF(hasDigits(a) == hasDigits(b)),
		boolF(hasHan(a) == hasHan(b)),
		norm(prefix, maxLen),
		norm(suffix, maxLen),
		boolF(digitSuffix(a) == digitSuffix(b) && digitSuffix(a) != ""),
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func norm(n int, maxLen float64) float64 {
	if maxLen == 0 {
		return 0
	}
	return float64(n) / maxLen
}

func commonPrefixLen(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n := 0
	for n < len(ra) && n < len(rb) && ra[n] == rb[n] {
		n++
	}
	return n
}

func reverse(s string) string {
	r := []rune(s)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}

func hasDigits(s string) bool {
	for _, r := range s {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func hasHan(s string) bool {
	for _, r := range s {
		if unicode.Is(unicode.Han, r) {
			return true
		}
	}
	return false
}

// digitSuffix returns the trailing digit run of s.
func digitSuffix(s string) string {
	r := []rune(s)
	i := len(r)
	for i > 0 && unicode.IsDigit(r[i-1]) {
		i--
	}
	return string(r[i:])
}

// Fit implements core.Linker: trains the username-feature SVM on the
// labeled candidates.
func (m *MOBIUS) Fit(sys *core.System, task *core.Task) error {
	m.sys = sys
	var xs []linalg.Vector
	var ys []float64
	for _, b := range task.Blocks {
		platA, err := sys.DS.Platform(b.PA)
		if err != nil {
			return err
		}
		platB, err := sys.DS.Platform(b.PB)
		if err != nil {
			return err
		}
		for _, ci := range b.SortedLabelIndices() {
			c := b.Cands[ci]
			ua := platA.Account(c.A).Profile.Username
			ub := platB.Account(c.B).Profile.Username
			xs = append(xs, usernameFeatures(ua, ub))
			ys = append(ys, b.Labels[ci])
		}
	}
	if len(xs) == 0 {
		return fmt.Errorf("baseline: MOBIUS has no labeled pairs")
	}
	model, err := svm.Train(xs, ys, kernel.NewRBF(1), svm.Opts{C: 2, Shrink: true})
	if err != nil {
		return err
	}
	m.model = model
	return nil
}

// PairScore implements core.Linker.
func (m *MOBIUS) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if m.model == nil {
		return 0, fmt.Errorf("baseline: MOBIUS not fitted")
	}
	platA, err := m.sys.DS.Platform(pa)
	if err != nil {
		return 0, err
	}
	platB, err := m.sys.DS.Platform(pb)
	if err != nil {
		return 0, err
	}
	ua := platA.Account(a).Profile.Username
	ub := platB.Account(b).Profile.Username
	return m.model.Decision(usernameFeatures(strings.TrimSpace(ua), strings.TrimSpace(ub))), nil
}
