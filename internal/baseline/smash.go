package baseline

import (
	"fmt"
	"sort"

	"hydra/internal/core"
	"hydra/internal/platform"
)

// SMaSh is baseline (III), after Hassanzadeh et al., "Discovering linkage
// points over web data" (PVLDB'13): a record-linkage approach that first
// discovers *linkage points* — attribute pairs whose value sets overlap
// strongly across the two sources — and then links records that agree on
// strong linkage points. It is fast (set intersections, no numerical
// optimization) but blind to behavior: missing and deceptive attributes
// directly erode it.
type SMaSh struct {
	// MinStrength prunes weak linkage points (default 0.05).
	MinStrength float64
	// points maps a platform pair to its discovered linkage points.
	points map[[2]platform.ID][]linkagePoint
	sys    *core.System
}

// linkagePoint is one discovered attribute correspondence with its
// strength and discriminability.
type linkagePoint struct {
	Attr platform.AttrName
	// Strength is the value-set Jaccard overlap between the two sources.
	Strength float64
	// Selectivity is 1 − (average share of records per value): high for
	// near-key attributes like email, low for gender.
	Selectivity float64
}

// weight is the linkage point's contribution to the pair score.
func (lp linkagePoint) weight() float64 { return lp.Strength * lp.Selectivity }

// Name implements core.Linker.
func (s *SMaSh) Name() string { return "SMaSh" }

// Fit implements core.Linker: discovers linkage points per platform pair.
// Labels are not used — linkage-point discovery is schema-level.
func (s *SMaSh) Fit(sys *core.System, task *core.Task) error {
	s.sys = sys
	if s.MinStrength <= 0 {
		s.MinStrength = 0.05
	}
	s.points = make(map[[2]platform.ID][]linkagePoint)
	for _, b := range task.Blocks {
		key := [2]platform.ID{b.PA, b.PB}
		if _, done := s.points[key]; done {
			continue
		}
		platA, err := sys.DS.Platform(b.PA)
		if err != nil {
			return err
		}
		platB, err := sys.DS.Platform(b.PB)
		if err != nil {
			return err
		}
		pts := discoverLinkagePoints(platA, platB, s.MinStrength)
		if len(pts) == 0 {
			return fmt.Errorf("baseline: SMaSh found no linkage points between %s and %s", b.PA, b.PB)
		}
		s.points[key] = pts
	}
	return nil
}

// discoverLinkagePoints scans attribute correspondences and scores their
// value-set overlap.
func discoverLinkagePoints(platA, platB *platform.Platform, minStrength float64) []linkagePoint {
	var out []linkagePoint
	for _, attr := range platform.MatchAttrs {
		setA := valueSet(platA, attr)
		setB := valueSet(platB, attr)
		if len(setA) == 0 || len(setB) == 0 {
			continue
		}
		inter := 0
		for v := range setA {
			if setB[v] {
				inter++
			}
		}
		union := len(setA) + len(setB) - inter
		strength := float64(inter) / float64(union)
		if strength < minStrength {
			continue
		}
		// Selectivity from the A side: distinct values per record.
		filled := 0
		for _, acc := range platA.Accounts {
			if _, ok := acc.Profile.Attr(attr); ok {
				filled++
			}
		}
		selectivity := 0.0
		if filled > 0 {
			selectivity = float64(len(setA)) / float64(filled)
			if selectivity > 1 {
				selectivity = 1
			}
		}
		out = append(out, linkagePoint{Attr: attr, Strength: strength, Selectivity: selectivity})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].weight() > out[j].weight() })
	return out
}

func valueSet(p *platform.Platform, attr platform.AttrName) map[string]bool {
	set := make(map[string]bool)
	for _, acc := range p.Accounts {
		if v, ok := acc.Profile.Attr(attr); ok {
			set[v] = true
		}
	}
	return set
}

// PairScore implements core.Linker: the weighted agreement over linkage
// points, recentered so the decision threshold 0 corresponds to agreeing on
// points worth half the total discoverable weight.
func (s *SMaSh) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if s.points == nil {
		return 0, fmt.Errorf("baseline: SMaSh not fitted")
	}
	pts, ok := s.points[[2]platform.ID{pa, pb}]
	if !ok {
		// Allow scoring of platform pairs seen in reversed order.
		pts, ok = s.points[[2]platform.ID{pb, pa}]
		if !ok {
			return 0, fmt.Errorf("baseline: SMaSh has no linkage points for %s/%s", pa, pb)
		}
		pa, pb, a, b = pb, pa, b, a
	}
	platA, err := s.sys.DS.Platform(pa)
	if err != nil {
		return 0, err
	}
	platB, err := s.sys.DS.Platform(pb)
	if err != nil {
		return 0, err
	}
	profA := &platA.Account(a).Profile
	profB := &platB.Account(b).Profile
	var score, total float64
	for _, lp := range pts {
		total += lp.weight()
		va, okA := profA.Attr(lp.Attr)
		vb, okB := profB.Attr(lp.Attr)
		if okA && okB && va == vb {
			score += lp.weight()
		}
	}
	if total == 0 {
		return -1, nil
	}
	return score/total - 0.5, nil
}
