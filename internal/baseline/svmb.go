// Package baseline implements the four comparison methods of the paper's
// Section 7.1: SVM-B (plain SVM over HYDRA's similarity vectors), MOBIUS
// (behavioral username modeling, Zafarani & Liu KDD'13), Alias-Disamb
// (unsupervised username analysis, Liu et al. WSDM'13) and SMaSh (linkage
// points over web data, Hassanzadeh et al. PVLDB'13). Each reimplements the
// published method's core mechanism at the fidelity needed for the
// comparison curves of Figures 9–14; each satisfies core.Linker.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/svm"
)

// SVMB is baseline (IV): binary prediction on user pairs using a support
// vector machine over the same heterogeneous similarity vectors HYDRA uses,
// with zero-filled missing features and no structure consistency. It is
// exactly HYDRA's F_D objective alone.
type SVMB struct {
	C     float64 // box constraint (default 1)
	model *svm.Model
	sys   *core.System
}

// Name implements core.Linker.
func (s *SVMB) Name() string { return "SVM-B" }

// Fit implements core.Linker: trains on the labeled candidates only.
func (s *SVMB) Fit(sys *core.System, task *core.Task) error {
	s.sys = sys
	var xs []linalg.Vector
	var ys []float64
	for _, b := range task.Blocks {
		for _, ci := range b.SortedLabelIndices() {
			c := b.Cands[ci]
			pv, err := sys.RawPair(b.PA, c.A, b.PB, c.B)
			if err != nil {
				return err
			}
			xs = append(xs, pv.X)
			ys = append(ys, b.Labels[ci])
		}
	}
	if len(xs) == 0 {
		return fmt.Errorf("baseline: SVM-B has no labeled pairs")
	}
	cBox := s.C
	if cBox <= 0 {
		cBox = 1
	}
	sigma := medianSigma(xs)
	m, err := svm.Train(xs, ys, kernel.NewRBF(sigma), svm.Opts{C: cBox, Shrink: true})
	if err != nil {
		return err
	}
	s.model = m
	return nil
}

// PairScore implements core.Linker.
func (s *SVMB) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if s.model == nil {
		return 0, fmt.Errorf("baseline: SVM-B not fitted")
	}
	pv, err := s.sys.RawPair(pa, a, pb, b)
	if err != nil {
		return 0, err
	}
	return s.model.Decision(pv.X), nil
}

// medianSigma is the median-distance RBF bandwidth heuristic.
func medianSigma(xs []linalg.Vector) float64 {
	n := len(xs)
	if n < 2 {
		return 1
	}
	stride := 1
	if n > 50 {
		stride = n / 50
	}
	var ds []float64
	for i := 0; i < n; i += stride {
		for j := i + stride; j < n; j += stride {
			ds = append(ds, linalg.SqDist(xs[i], xs[j]))
		}
	}
	if len(ds) == 0 {
		return 1
	}
	sort.Float64s(ds)
	med := ds[len(ds)/2]
	if med <= 0 {
		return 1
	}
	return math.Sqrt(med)
}
