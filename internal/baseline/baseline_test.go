package baseline

import (
	"testing"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/metrics"
	"hydra/internal/platform"
	"hydra/internal/synth"
)

// fixture builds a world, system and task shared by the baseline tests.
func fixture(t *testing.T, persons int, plats []platform.ID, seed int64) (*core.System, *core.Task) {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(persons, plats, seed))
	if err != nil {
		t.Fatal(err)
	}
	var people []int
	for p := 0; p < persons/2; p++ {
		people = append(people, p)
	}
	labeled := core.LabeledProfilePairs(w.Dataset, plats[0], plats[1], people)
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 20
	fcfg.MaxLDADocs = 1200
	sys, err := core.NewSystem(w.Dataset, labeled, features.Lexicons{
		Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment,
	}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	block, err := core.BuildBlock(sys, plats[0], plats[1], blocking.DefaultRules(), core.DefaultLabelOpts(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys, &core.Task{Blocks: []*core.Block{block}}
}

func evalLinker(t *testing.T, sys *core.System, l core.Linker, task *core.Task) metrics.Confusion {
	t.Helper()
	if err := l.Fit(sys, task); err != nil {
		t.Fatalf("%s Fit: %v", l.Name(), err)
	}
	conf, err := core.EvaluateLinker(sys, l, task.Blocks)
	if err != nil {
		t.Fatalf("%s evaluate: %v", l.Name(), err)
	}
	return conf
}

func TestSVMBLearns(t *testing.T) {
	sys, task := fixture(t, 50, platform.EnglishPlatforms, 11)
	conf := evalLinker(t, sys, &SVMB{}, task)
	if conf.F1() < 0.5 {
		t.Fatalf("SVM-B F1 = %v too low: %s", conf.F1(), conf)
	}
}

func TestSVMBUnfitted(t *testing.T) {
	s := &SVMB{}
	if _, err := s.PairScore(platform.Twitter, 0, platform.Facebook, 0); err == nil {
		t.Fatal("expected unfitted error")
	}
	if err := s.Fit(nil, &core.Task{}); err == nil {
		t.Fatal("expected no-labels error")
	}
}

func TestMOBIUSLearnsOnEnglish(t *testing.T) {
	sys, task := fixture(t, 50, platform.EnglishPlatforms, 13)
	conf := evalLinker(t, sys, &MOBIUS{}, task)
	// Username modeling works passably on English platforms...
	if conf.F1() < 0.25 {
		t.Fatalf("MOBIUS F1 = %v too low: %s", conf.F1(), conf)
	}
}

func TestMOBIUSWorseOnChinese(t *testing.T) {
	sysEn, taskEn := fixture(t, 60, platform.EnglishPlatforms, 17)
	confEn := evalLinker(t, sysEn, &MOBIUS{}, taskEn)
	sysZh, taskZh := fixture(t, 60, []platform.ID{platform.SinaWeibo, platform.Renren}, 17)
	confZh := evalLinker(t, sysZh, &MOBIUS{}, taskZh)
	// ...and degrades when usernames diverge across Chinese platforms.
	if confZh.F1() > confEn.F1()+0.05 {
		t.Fatalf("MOBIUS should do worse on Chinese platforms: zh=%v en=%v", confZh.F1(), confEn.F1())
	}
}

func TestUsernameFeatures(t *testing.T) {
	f := usernameFeatures("adele88", "adele88")
	for i, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("feature %d = %v out of [0,1]", i, v)
		}
	}
	// Identical usernames maximize the similarity block.
	if f[0] != 1 || f[2] != 1 {
		t.Fatalf("identical usernames should give JW=1, edit=1: %v", f)
	}
	g := usernameFeatures("adele88", "zxqvbn")
	if g[0] >= f[0] {
		t.Fatal("dissimilar usernames should score lower")
	}
	if digitSuffix("abc123") != "123" || digitSuffix("abc") != "" {
		t.Fatal("digitSuffix wrong")
	}
	if reverse("abc") != "cba" {
		t.Fatal("reverse wrong")
	}
}

func TestAliasDisambUnsupervised(t *testing.T) {
	sys, task := fixture(t, 60, platform.EnglishPlatforms, 19)
	// Strip the labels: Alias-Disamb must work without them.
	for _, b := range task.Blocks {
		b.Labels = map[int]float64{}
	}
	conf := evalLinker(t, sys, &AliasDisamb{}, task)
	if conf.TP == 0 {
		t.Fatalf("Alias-Disamb found nothing: %s", conf)
	}
}

func TestAliasDisambRarity(t *testing.T) {
	bm := newBigramModel()
	for i := 0; i < 50; i++ {
		bm.add("john")
	}
	bm.add("xqzkvw")
	common := bm.rarityScore("john")
	rare := bm.rarityScore("xqzkvw")
	if rare <= common {
		t.Fatalf("rare name should score higher: %v vs %v", rare, common)
	}
	if bm.rarityScore("") != 0 {
		t.Fatal("empty username rarity should be 0")
	}
}

func TestSMaShDiscoversLinkagePoints(t *testing.T) {
	sys, task := fixture(t, 60, platform.EnglishPlatforms, 23)
	s := &SMaSh{}
	conf := evalLinker(t, sys, s, task)
	if conf.TP == 0 {
		t.Fatalf("SMaSh found nothing: %s", conf)
	}
	pts := s.points[[2]platform.ID{platform.Twitter, platform.Facebook}]
	if len(pts) == 0 {
		t.Fatal("no linkage points stored")
	}
	// Email must rank among the discovered points with high selectivity.
	foundEmail := false
	for _, lp := range pts {
		if lp.Attr == platform.AttrEmail {
			foundEmail = true
			if lp.Selectivity < 0.9 {
				t.Fatalf("email selectivity = %v, want near 1", lp.Selectivity)
			}
		}
	}
	if !foundEmail {
		t.Fatal("email linkage point not discovered")
	}
}

func TestSMaShReversedPlatformOrder(t *testing.T) {
	sys, task := fixture(t, 40, platform.EnglishPlatforms, 29)
	s := &SMaSh{}
	if err := s.Fit(sys, task); err != nil {
		t.Fatal(err)
	}
	// Score with platforms swapped: must not error.
	if _, err := s.PairScore(platform.Facebook, 0, platform.Twitter, 0); err != nil {
		t.Fatalf("reversed order: %v", err)
	}
}

func TestUnfittedBaselinesError(t *testing.T) {
	for _, l := range []core.Linker{&MOBIUS{}, &AliasDisamb{}, &SMaSh{}} {
		if _, err := l.PairScore(platform.Twitter, 0, platform.Facebook, 0); err == nil {
			t.Fatalf("%s should error before Fit", l.Name())
		}
	}
}

func TestHydraOutperformsBaselines(t *testing.T) {
	sys, task := fixture(t, 60, platform.EnglishPlatforms, 31)
	hydra := &core.HydraLinker{Cfg: core.DefaultConfig(31)}
	confH := evalLinker(t, sys, hydra, task)
	for _, l := range []core.Linker{&MOBIUS{}, &AliasDisamb{}, &SMaSh{}} {
		conf := evalLinker(t, sys, l, task)
		if conf.F1() > confH.F1()+0.02 {
			t.Fatalf("%s (F1=%v) should not beat HYDRA (F1=%v)", l.Name(), conf.F1(), confH.F1())
		}
	}
}
