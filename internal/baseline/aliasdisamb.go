package baseline

import (
	"fmt"
	"math"

	"hydra/internal/core"
	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/platform"
	"hydra/internal/svm"
	"hydra/internal/text"
)

// AliasDisamb is baseline (II), after Liu et al., "What's in a name?: an
// unsupervised approach to link users across communities" (WSDM'13). The
// method is unsupervised: it estimates how *rare* a username is with a
// character n-gram language model over the whole username corpus, then
// self-generates training pairs — rare usernames appearing on both
// platforms are assumed to be the same person — and fits a classifier on
// username similarity features. Because the self-labeling produces a large
// and noisy training set, its optimization problem is the heaviest of the
// baselines (the paper's Figure 14 explanation for its slow convergence).
type AliasDisamb struct {
	// SelfLabelRarity is the rarity percentile above which a cross-platform
	// near-identical username pair becomes a self-generated positive.
	SelfLabelRarity float64
	model           *svm.Model
	sys             *core.System
	rarity          *bigramModel
}

// Name implements core.Linker.
func (ad *AliasDisamb) Name() string { return "Alias-Disamb" }

// bigramModel is a character bigram language model with add-one smoothing:
// -log P(username) per rune measures name rarity.
type bigramModel struct {
	counts map[[2]rune]float64
	uni    map[rune]float64
	total  float64
}

func newBigramModel() *bigramModel {
	return &bigramModel{counts: make(map[[2]rune]float64), uni: make(map[rune]float64)}
}

func (bm *bigramModel) add(s string) {
	prev := rune(0)
	for _, r := range s {
		bm.uni[r]++
		bm.total++
		if prev != 0 {
			bm.counts[[2]rune{prev, r}]++
		}
		prev = r
	}
}

// rarityScore returns the average per-rune negative log-probability of s.
func (bm *bigramModel) rarityScore(s string) float64 {
	runes := []rune(s)
	if len(runes) == 0 {
		return 0
	}
	var nll float64
	prev := rune(0)
	v := float64(len(bm.uni) + 1)
	for _, r := range runes {
		if prev == 0 {
			p := (bm.uni[r] + 1) / (bm.total + v)
			nll += -math.Log(p)
		} else {
			p := (bm.counts[[2]rune{prev, r}] + 1) / (bm.uni[prev] + v)
			nll += -math.Log(p)
		}
		prev = r
	}
	return nll / float64(len(runes))
}

// Fit implements core.Linker. The task's labels are ignored — the method is
// unsupervised by design; it only uses the candidate pool and the username
// corpus.
func (ad *AliasDisamb) Fit(sys *core.System, task *core.Task) error {
	ad.sys = sys
	if ad.SelfLabelRarity <= 0 {
		ad.SelfLabelRarity = 0.5
	}
	// 1. Build the rarity model over every username on the involved
	// platforms.
	bm := newBigramModel()
	seen := map[platform.ID]bool{}
	for _, b := range task.Blocks {
		for _, pid := range []platform.ID{b.PA, b.PB} {
			if seen[pid] {
				continue
			}
			seen[pid] = true
			p, err := sys.DS.Platform(pid)
			if err != nil {
				return err
			}
			for _, acc := range p.Accounts {
				bm.add(acc.Profile.Username)
			}
		}
	}
	ad.rarity = bm

	// 2. Self-generate labels by scanning the full username cross product
	// of each platform pair: rare + near-identical usernames become
	// positives; a sampled slice of dissimilar pairs becomes negatives.
	// This is the method's signature cost — "it automatically generates a
	// large number of training pairs by analyzing the uniqueness of the
	// usernames, where most of the generated label information may be
	// incorrect, resulting in an extremely large quadratic programming
	// problem" (the paper's Figure 14 discussion).
	var xs []linalg.Vector
	var ys []float64
	seenPair := map[[2]platform.ID]bool{}
	for _, b := range task.Blocks {
		key := [2]platform.ID{b.PA, b.PB}
		if seenPair[key] {
			continue
		}
		seenPair[key] = true
		platA, err := sys.DS.Platform(b.PA)
		if err != nil {
			return err
		}
		platB, err := sys.DS.Platform(b.PB)
		if err != nil {
			return err
		}
		negEvery := 97 // deterministic sparse sampling of the dissimilar mass
		scan := 0
		for _, accA := range platA.Accounts {
			ua := accA.Profile.Username
			rareA := bm.rarityScore(ua)
			for _, accB := range platB.Accounts {
				ub := accB.Profile.Username
				sim := text.JaroWinkler(ua, ub)
				scan++
				switch {
				case sim > 0.93 && (rareA+bm.rarityScore(ub))/2 > ad.SelfLabelRarity:
					xs = append(xs, usernameFeatures(ua, ub))
					ys = append(ys, 1)
				case sim < 0.6 && scan%negEvery == 0:
					xs = append(xs, usernameFeatures(ua, ub))
					ys = append(ys, -1)
				}
			}
		}
	}
	pos, neg := 0, 0
	for _, y := range ys {
		if y > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return fmt.Errorf("baseline: Alias-Disamb self-labeling found %d positives and %d negatives", pos, neg)
	}
	model, err := svm.Train(xs, ys, kernel.NewRBF(1), svm.Opts{C: 1, Shrink: true})
	if err != nil {
		return err
	}
	ad.model = model
	return nil
}

// PairScore implements core.Linker.
func (ad *AliasDisamb) PairScore(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	if ad.model == nil {
		return 0, fmt.Errorf("baseline: Alias-Disamb not fitted")
	}
	platA, err := ad.sys.DS.Platform(pa)
	if err != nil {
		return 0, err
	}
	platB, err := ad.sys.DS.Platform(pb)
	if err != nil {
		return 0, err
	}
	ua := platA.Account(a).Profile.Username
	ub := platB.Account(b).Profile.Username
	return ad.model.Decision(usernameFeatures(ua, ub)), nil
}
