package admm

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/linalg"
)

// directRidge solves min ‖Xw−y‖² + λ‖w‖² in closed form for verification.
func directRidge(xs []linalg.Vector, ys []float64, lambda float64, dim int) linalg.Vector {
	ata := linalg.NewMatrix(dim, dim)
	atb := linalg.NewVector(dim)
	for r, x := range xs {
		for i := 0; i < dim; i++ {
			atb[i] += x[i] * ys[r]
			for j := 0; j < dim; j++ {
				ata.Addf(i, j, x[i]*x[j])
			}
		}
	}
	ata.AddDiag(lambda)
	w, err := ata.Solve(atb)
	if err != nil {
		panic(err)
	}
	return w
}

func ridgeData(n, dim int, seed int64) ([]linalg.Vector, []float64, linalg.Vector) {
	rng := rand.New(rand.NewSource(seed))
	truth := linalg.NewVector(dim)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	xs := make([]linalg.Vector, n)
	ys := make([]float64, n)
	for r := range xs {
		x := linalg.NewVector(dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xs[r] = x
		ys[r] = truth.Dot(x) + rng.NormFloat64()*0.05
	}
	return xs, ys, truth
}

func TestSolveMatchesDirectRidge(t *testing.T) {
	xs, ys, _ := ridgeData(200, 5, 1)
	lambda := 2.0
	shards, err := Split(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(shards, 5, Opts{Lambda: lambda, Rho: 2, MaxIter: 500, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	direct := directRidge(xs, ys, lambda, 5)
	if res.W.Sub(direct).Norm() > 1e-4 {
		t.Fatalf("ADMM deviates from direct ridge: %v vs %v (Δ=%v)",
			res.W, direct, res.W.Sub(direct).Norm())
	}
}

func TestSolveRecoversSignal(t *testing.T) {
	xs, ys, truth := ridgeData(400, 4, 3)
	shards, _ := Split(xs, ys, 4)
	res, err := Solve(shards, 4, Opts{Lambda: 0.1, MaxIter: 400, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Sub(truth).Norm() > 0.15 {
		t.Fatalf("recovered weights off: %v vs truth %v", res.W, truth)
	}
}

func TestSolveSingleShardEqualsMultiShard(t *testing.T) {
	xs, ys, _ := ridgeData(120, 3, 5)
	one, _ := Split(xs, ys, 1)
	many, _ := Split(xs, ys, 6)
	r1, err := Solve(one, 3, Opts{Lambda: 1, MaxIter: 500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Solve(many, 3, Opts{Lambda: 1, MaxIter: 500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.W.Sub(r6.W).Norm() > 1e-4 {
		t.Fatalf("shard count changed the consensus solution: %v vs %v", r1.W, r6.W)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, 3, Opts{}); err == nil {
		t.Fatal("expected error for no shards")
	}
	if _, err := Solve([]Shard{{X: []linalg.Vector{{1}}, Y: []float64{1}}}, 0, Opts{}); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := Solve([]Shard{{}}, 2, Opts{}); err == nil {
		t.Fatal("expected error for empty shard")
	}
	if _, err := Solve([]Shard{{X: []linalg.Vector{{1, 2}}, Y: []float64{1, 2}}}, 2, Opts{}); err == nil {
		t.Fatal("expected error for row/target mismatch")
	}
	if _, err := Solve([]Shard{{X: []linalg.Vector{{1}}, Y: []float64{1}}}, 2, Opts{}); err == nil {
		t.Fatal("expected error for dim mismatch")
	}
	if _, err := Solve([]Shard{{X: []linalg.Vector{{1}}, Y: []float64{1}}}, 1, Opts{Lambda: -1}); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestSplit(t *testing.T) {
	xs := []linalg.Vector{{1}, {2}, {3}, {4}, {5}}
	ys := []float64{1, 2, 3, 4, 5}
	shards, err := Split(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || len(shards[0].X) != 3 || len(shards[1].X) != 2 {
		t.Fatalf("split shapes wrong: %d/%d", len(shards[0].X), len(shards[1].X))
	}
	// More shards than rows collapses to row count.
	shards, err = Split(xs, ys, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 5 {
		t.Fatalf("oversharded split = %d shards", len(shards))
	}
	if _, err := Split(xs, ys[:2], 2); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := Split(xs, ys, 0); err == nil {
		t.Fatal("expected shard count error")
	}
}

// TestSolveWorkersDeterminism pins the worker-pool contract: the consensus
// iterates are bit-identical at any worker count, because each shard owns
// its state slot and the z/dual reductions run sequentially in shard
// order. Run with -race via `make race`.
func TestSolveWorkersDeterminism(t *testing.T) {
	xs, ys, _ := ridgeData(240, 6, 9)
	shards, err := Split(xs, ys, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := Opts{Lambda: 1.5, Rho: 2, MaxIter: 120, Tol: 1e-10}
	solve := func(workers int) *Result {
		t.Helper()
		o := base
		o.Workers = workers
		res, err := Solve(shards, 6, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := solve(1)
	for _, w := range []int{2, 4, 8} {
		got := solve(w)
		if got.Iters != ref.Iters {
			t.Fatalf("workers=%d: iters %d vs %d", w, got.Iters, ref.Iters)
		}
		for i := range ref.W {
			if got.W[i] != ref.W[i] {
				t.Fatalf("workers=%d: W[%d] = %v, want %v", w, i, got.W[i], ref.W[i])
			}
		}
		if got.PrimalResidual != ref.PrimalResidual || got.DualResidual != ref.DualResidual {
			t.Fatalf("workers=%d: residuals differ", w)
		}
	}
}

func TestResidualsDecrease(t *testing.T) {
	xs, ys, _ := ridgeData(100, 3, 7)
	shards, _ := Split(xs, ys, 3)
	short, err := Solve(shards, 3, Opts{Lambda: 1, MaxIter: 3, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Solve(shards, 3, Opts{Lambda: 1, MaxIter: 200, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if !(long.PrimalResidual < short.PrimalResidual || long.PrimalResidual < 1e-10) {
		t.Fatalf("primal residual did not decrease: %v -> %v", short.PrimalResidual, long.PrimalResidual)
	}
	if math.IsNaN(long.DualResidual) {
		t.Fatal("NaN dual residual")
	}
}
