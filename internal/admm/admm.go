// Package admm implements consensus ADMM (Boyd et al. [3], the distributed
// optimization method the paper uses across its 5 servers): the global
// objective is split over data shards, each shard solves a local
// regularized least-squares subproblem in its own goroutine ("server"),
// and a consensus variable is synchronized between iterations — the
// "carefully designed model synchronization strategy" of Section 6.3.
//
// The concrete problem solved here is l2-regularized least squares
//
//	min_w  Σ_s ‖A_s w − b_s‖² + λ‖w‖²
//
// which is the primal linear-model fit HYDRA falls back to at scales where
// the dense dual is too large.
package admm

import (
	"fmt"
	"math"
	"sync"

	"hydra/internal/linalg"
)

// Shard is one server's slice of the data: rows of the design matrix with
// their targets.
type Shard struct {
	X []linalg.Vector
	Y []float64
}

// Opts controls the consensus iteration.
type Opts struct {
	// Lambda is the global l2 regularization λ.
	Lambda float64
	// Rho is the ADMM penalty parameter (default 1).
	Rho float64
	// MaxIter caps consensus rounds (default 200).
	MaxIter int
	// Tol stops when both primal and dual residuals fall below it
	// (default 1e-6).
	Tol float64
}

// Result reports the consensus solution.
type Result struct {
	W     linalg.Vector
	Iters int
	// PrimalResidual and DualResidual at termination.
	PrimalResidual, DualResidual float64
}

// shardState carries one server's local variables and its cached local
// system factorization.
type shardState struct {
	chol *linalg.Matrix // Cholesky factor of (2 AᵀA + ρI)
	atb  linalg.Vector  // 2 Aᵀb
	w    linalg.Vector  // local primal variable
	u    linalg.Vector  // scaled dual variable
}

// Solve runs consensus ADMM over the shards. Each shard must be non-empty
// and all feature vectors must share the same dimension.
func Solve(shards []Shard, dim int, opts Opts) (*Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("admm: no shards")
	}
	if dim <= 0 {
		return nil, fmt.Errorf("admm: non-positive dimension %d", dim)
	}
	if opts.Lambda < 0 {
		return nil, fmt.Errorf("admm: negative lambda %g", opts.Lambda)
	}
	if opts.Rho <= 0 {
		opts.Rho = 1
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}

	states := make([]*shardState, len(shards))
	for s, shard := range shards {
		if len(shard.X) == 0 {
			return nil, fmt.Errorf("admm: shard %d is empty", s)
		}
		if len(shard.X) != len(shard.Y) {
			return nil, fmt.Errorf("admm: shard %d has %d rows but %d targets", s, len(shard.X), len(shard.Y))
		}
		// Local system: (2 AᵀA + ρI) w = 2 Aᵀ b + ρ(z − u).
		ata := linalg.NewMatrix(dim, dim)
		atb := linalg.NewVector(dim)
		for r, x := range shard.X {
			if len(x) != dim {
				return nil, fmt.Errorf("admm: shard %d row %d has dim %d, want %d", s, r, len(x), dim)
			}
			for i := 0; i < dim; i++ {
				atb[i] += 2 * x[i] * shard.Y[r]
				for j := 0; j < dim; j++ {
					ata.Addf(i, j, 2*x[i]*x[j])
				}
			}
		}
		ata.AddDiag(opts.Rho)
		chol, err := ata.Cholesky(1e-12)
		if err != nil {
			return nil, fmt.Errorf("admm: shard %d local system: %w", s, err)
		}
		states[s] = &shardState{
			chol: chol,
			atb:  atb,
			w:    linalg.NewVector(dim),
			u:    linalg.NewVector(dim),
		}
	}

	z := linalg.NewVector(dim)
	n := float64(len(shards))
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Local w-updates run concurrently: one goroutine per "server".
		var wg sync.WaitGroup
		for _, st := range states {
			wg.Add(1)
			go func(st *shardState) {
				defer wg.Done()
				rhs := st.atb.Clone()
				for i := range rhs {
					rhs[i] += opts.Rho * (z[i] - st.u[i])
				}
				st.w = linalg.SolveCholesky(st.chol, rhs)
			}(st)
		}
		wg.Wait()

		// Consensus z-update: ridge-shrunk average of (w_s + u_s).
		zOld := z.Clone()
		z = linalg.NewVector(dim)
		for _, st := range states {
			for i := range z {
				z[i] += st.w[i] + st.u[i]
			}
		}
		shrink := opts.Rho * n / (2*opts.Lambda + opts.Rho*n)
		for i := range z {
			z[i] = z[i] / n * shrink
		}

		// Dual updates and residuals.
		var primal, dual float64
		for _, st := range states {
			for i := range z {
				diff := st.w[i] - z[i]
				st.u[i] += diff
				primal += diff * diff
			}
		}
		dz := z.Sub(zOld)
		dual = opts.Rho * dz.Norm() * n
		res.Iters = iter + 1
		res.PrimalResidual = math.Sqrt(primal)
		res.DualResidual = dual
		if res.PrimalResidual < opts.Tol && res.DualResidual < opts.Tol {
			break
		}
	}
	res.W = z
	return res, nil
}

// Split partitions rows round-robin into n shards (the data distribution
// step before handing shards to the servers).
func Split(xs []linalg.Vector, ys []float64, n int) ([]Shard, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("admm: %d rows but %d targets", len(xs), len(ys))
	}
	if n <= 0 {
		return nil, fmt.Errorf("admm: non-positive shard count %d", n)
	}
	if n > len(xs) {
		n = len(xs)
	}
	shards := make([]Shard, n)
	for i := range xs {
		s := i % n
		shards[s].X = append(shards[s].X, xs[i])
		shards[s].Y = append(shards[s].Y, ys[i])
	}
	return shards, nil
}
