// Package admm implements consensus ADMM (Boyd et al. [3], the distributed
// optimization method the paper uses across its 5 servers): the global
// objective is split over data shards, each shard (a logical "server")
// solves a local regularized least-squares subproblem on the shared worker
// pool (Opts.Workers), and a consensus variable is synchronized between
// iterations — the "carefully designed model synchronization strategy" of
// Section 6.3.
//
// The concrete problem solved here is l2-regularized least squares
//
//	min_w  Σ_s ‖A_s w − b_s‖² + λ‖w‖²
//
// which is the primal linear-model fit HYDRA falls back to at scales where
// the dense dual is too large.
package admm

import (
	"fmt"
	"math"

	"hydra/internal/linalg"
	"hydra/internal/parallel"
)

// Shard is one server's slice of the data: rows of the design matrix with
// their targets.
type Shard struct {
	X []linalg.Vector
	Y []float64
}

// Opts controls the consensus iteration.
type Opts struct {
	// Lambda is the global l2 regularization λ.
	Lambda float64
	// Rho is the ADMM penalty parameter (default 1).
	Rho float64
	// MaxIter caps consensus rounds (default 200).
	MaxIter int
	// Tol stops when both primal and dual residuals fall below it
	// (default 1e-6).
	Tol float64
	// Workers pins the parallelism of the per-shard work (local system
	// assembly/factorization and the w-updates of every iteration). ≤ 0
	// uses all cores; shards beyond the pool queue on it. The consensus
	// result is bit-identical at any worker count: each shard owns its
	// state slot and the z/dual reductions stay sequential in shard order.
	Workers int
}

// Result reports the consensus solution.
type Result struct {
	W     linalg.Vector
	Iters int
	// PrimalResidual and DualResidual at termination.
	PrimalResidual, DualResidual float64
}

// shardState carries one server's local variables and its cached local
// system factorization.
type shardState struct {
	chol *linalg.Matrix // Cholesky factor of (2 AᵀA + ρI)
	atb  linalg.Vector  // 2 Aᵀb
	w    linalg.Vector  // local primal variable
	u    linalg.Vector  // scaled dual variable
}

// Solve runs consensus ADMM over the shards. Each shard must be non-empty
// and all feature vectors must share the same dimension.
func Solve(shards []Shard, dim int, opts Opts) (*Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("admm: no shards")
	}
	if dim <= 0 {
		return nil, fmt.Errorf("admm: non-positive dimension %d", dim)
	}
	if opts.Lambda < 0 {
		return nil, fmt.Errorf("admm: negative lambda %g", opts.Lambda)
	}
	if opts.Rho <= 0 {
		opts.Rho = 1
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}

	// Each server assembles and factors its own local system concurrently
	// (the shards are disjoint, each writes only states[s]); ForErr keeps
	// the lowest-index failure, exactly what the sequential loop reported.
	states := make([]*shardState, len(shards))
	if err := parallel.ForErr(opts.Workers, len(shards), func(s int) error {
		shard := shards[s]
		if len(shard.X) == 0 {
			return fmt.Errorf("admm: shard %d is empty", s)
		}
		if len(shard.X) != len(shard.Y) {
			return fmt.Errorf("admm: shard %d has %d rows but %d targets", s, len(shard.X), len(shard.Y))
		}
		// Local system: (2 AᵀA + ρI) w = 2 Aᵀ b + ρ(z − u).
		ata := linalg.NewMatrix(dim, dim)
		atb := linalg.NewVector(dim)
		for r, x := range shard.X {
			if len(x) != dim {
				return fmt.Errorf("admm: shard %d row %d has dim %d, want %d", s, r, len(x), dim)
			}
			for i := 0; i < dim; i++ {
				atb[i] += 2 * x[i] * shard.Y[r]
				for j := 0; j < dim; j++ {
					ata.Addf(i, j, 2*x[i]*x[j])
				}
			}
		}
		ata.AddDiag(opts.Rho)
		chol, err := ata.Cholesky(1e-12)
		if err != nil {
			return fmt.Errorf("admm: shard %d local system: %w", s, err)
		}
		states[s] = &shardState{
			chol: chol,
			atb:  atb,
			w:    linalg.NewVector(dim),
			u:    linalg.NewVector(dim),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	z := linalg.NewVector(dim)
	n := float64(len(shards))
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Local w-updates run concurrently on the worker pool: each
		// "server" solves its cached Cholesky system against the shared
		// (read-only this phase) consensus z and writes only its own
		// state, so any worker count yields the same iterates.
		parallel.For(opts.Workers, len(states), func(s int) {
			st := states[s]
			rhs := st.atb.Clone()
			for i := range rhs {
				rhs[i] += opts.Rho * (z[i] - st.u[i])
			}
			st.w = linalg.SolveCholesky(st.chol, rhs)
		})

		// Consensus z-update: ridge-shrunk average of (w_s + u_s).
		zOld := z.Clone()
		z = linalg.NewVector(dim)
		for _, st := range states {
			for i := range z {
				z[i] += st.w[i] + st.u[i]
			}
		}
		shrink := opts.Rho * n / (2*opts.Lambda + opts.Rho*n)
		for i := range z {
			z[i] = z[i] / n * shrink
		}

		// Dual updates and residuals.
		var primal, dual float64
		for _, st := range states {
			for i := range z {
				diff := st.w[i] - z[i]
				st.u[i] += diff
				primal += diff * diff
			}
		}
		dz := z.Sub(zOld)
		dual = opts.Rho * dz.Norm() * n
		res.Iters = iter + 1
		res.PrimalResidual = math.Sqrt(primal)
		res.DualResidual = dual
		if res.PrimalResidual < opts.Tol && res.DualResidual < opts.Tol {
			break
		}
	}
	res.W = z
	return res, nil
}

// Split partitions rows round-robin into n shards (the data distribution
// step before handing shards to the servers).
func Split(xs []linalg.Vector, ys []float64, n int) ([]Shard, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("admm: %d rows but %d targets", len(xs), len(ys))
	}
	if n <= 0 {
		return nil, fmt.Errorf("admm: non-positive shard count %d", n)
	}
	if n > len(xs) {
		n = len(xs)
	}
	shards := make([]Shard, n)
	for i := range xs {
		s := i % n
		shards[s].X = append(shards[s].X, xs[i])
		shards[s].Y = append(shards[s].Y, ys[i])
	}
	return shards, nil
}
