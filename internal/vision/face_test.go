package vision

import (
	"testing"
	"testing/quick"
)

func TestMatchAbortsOnMissingImage(t *testing.T) {
	m := NewMatcher(1)
	if _, ok := m.Match(0, 5); ok {
		t.Fatal("missing avatar A should abort")
	}
	if _, ok := m.Match(5, 0); ok {
		t.Fatal("missing avatar B should abort")
	}
}

func TestMatchAbortsOnStockImages(t *testing.T) {
	m := NewMatcher(2)
	if _, ok := m.Match(StockImageThreshold+1, 5); ok {
		t.Fatal("stock image should have no detectable face")
	}
}

func TestMatchSameFaceScoresHigh(t *testing.T) {
	m := NewMatcher(3)
	hits, total := 0, 0
	var sumSame, sumDiff float64
	nSame, nDiff := 0, 0
	for a := uint64(1); a <= 300; a++ {
		if s, ok := m.Match(a, a); ok {
			sumSame += s
			nSame++
		}
		if s, ok := m.Match(a, a+1); ok {
			sumDiff += s
			nDiff++
		}
		total++
		if _, ok := m.Match(a, a); ok {
			hits++
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Fatal("detector never succeeded")
	}
	if sumSame/float64(nSame) < 0.7 {
		t.Fatalf("same-face mean score = %v", sumSame/float64(nSame))
	}
	if sumDiff/float64(nDiff) > 0.4 {
		t.Fatalf("diff-face mean score = %v", sumDiff/float64(nDiff))
	}
	// Detection rate should be roughly DetectRate² for a pair.
	rate := float64(hits) / float64(total)
	if rate < 0.5 || rate > 0.95 {
		t.Fatalf("pair detection rate = %v", rate)
	}
}

func TestMatchDeterministicAndSymmetric(t *testing.T) {
	m := NewMatcher(4)
	s1, ok1 := m.Match(10, 20)
	s2, ok2 := m.Match(10, 20)
	if ok1 != ok2 || s1 != s2 {
		t.Fatal("repeated Match not deterministic")
	}
	s3, ok3 := m.Match(20, 10)
	if ok1 != ok3 || s1 != s3 {
		t.Fatal("Match not symmetric in its arguments")
	}
}

// Property: scores always lie in [0,1].
func TestMatchScoreRangeProperty(t *testing.T) {
	m := NewMatcher(5)
	f := func(a, b uint16) bool {
		s, ok := m.Match(uint64(a), uint64(b))
		if !ok {
			return s == 0
		}
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
