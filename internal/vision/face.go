// Package vision simulates the profile-image face-matching pipeline of the
// paper's Figure 4 (which used the off-the-shelf detector/classifier of
// reference [12]). Avatars are identified by opaque ids: ids below the
// stock-image threshold encode a real face identity; ids above it are
// stock/cartoon images in which no face is detected. The simulated
// detector and classifier have configurable failure and noise rates, so the
// downstream feature behaves like a real, imperfect face matcher: it can
// abort (missing feature), false-match and false-reject.
package vision

import (
	"math/rand"
)

// StockImageThreshold separates real-face avatar ids (below) from
// stock/cartoon avatar ids (at or above). The synth generator allocates
// ids accordingly.
const StockImageThreshold = 1_000_000

// Matcher is the simulated face pipeline.
type Matcher struct {
	// DetectRate is the probability the face detector finds the face in a
	// real-face avatar (illumination/occlusion failures otherwise).
	DetectRate float64
	// NoiseSigma perturbs the classifier score.
	NoiseSigma float64
	// Seed drives the deterministic per-pair noise.
	Seed int64
}

// NewMatcher returns a Matcher with the calibrated default rates.
func NewMatcher(seed int64) *Matcher {
	return &Matcher{DetectRate: 0.85, NoiseSigma: 0.08, Seed: seed}
}

// pairRand returns a deterministic PRNG for an avatar pair, so repeated
// calls with the same avatars yield the same simulated pipeline outcome.
func (m *Matcher) pairRand(a, b uint64) *rand.Rand {
	// Order-independent mix of the two ids with the matcher seed.
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := lo*0x9E3779B97F4A7C15 ^ hi*0xC2B2AE3D27D4EB4F ^ uint64(m.Seed)
	return rand.New(rand.NewSource(int64(h & 0x7FFFFFFFFFFFFFFF)))
}

// Match runs the Figure-4 workflow on two avatar ids. The returned score is
// the classifier confidence in [0,1] that the two faces belong to the same
// person; ok is false when the pipeline aborts (no image, or no face
// detected in either image), in which case the feature is missing.
func (m *Matcher) Match(avatarA, avatarB uint64) (score float64, ok bool) {
	// "Image?" stage: missing avatar aborts.
	if avatarA == 0 || avatarB == 0 {
		return 0, false
	}
	rng := m.pairRand(avatarA, avatarB)
	// "Face?" stage: stock images have no face; real faces are found with
	// DetectRate probability each.
	if !m.detect(avatarA, rng) || !m.detect(avatarB, rng) {
		return 0, false
	}
	// Classifier stage: same identity scores high, different low, both with
	// noise.
	var base float64
	if avatarA == avatarB {
		base = 0.92
	} else {
		base = 0.12
	}
	score = base + rng.NormFloat64()*m.NoiseSigma
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	return score, true
}

func (m *Matcher) detect(avatar uint64, rng *rand.Rand) bool {
	if avatar >= StockImageThreshold {
		return false // stock/cartoon image: no face
	}
	return rng.Float64() < m.DetectRate
}
