// Package structure builds HYDRA's structure-consistency graph (paper
// Section 6.2): the sparse second-order affinity matrix M over candidate
// account pairs, whose diagonal encodes individual behavior similarity and
// whose off-diagonal entries encode cross-platform social-structure
// agreement (Eqn 9), plus the agreement-cluster relaxation solved by the
// principal eigenvector.
package structure

import (
	"fmt"
	"math"

	"hydra/internal/graph"
	"hydra/internal/linalg"
)

// Candidate is a candidate matching a = (i, i′): account i on platform S
// and account i′ on platform S′ (local graph node ids).
type Candidate struct {
	A, B int
}

// Config parameterizes the affinity construction.
type Config struct {
	// Sigma1 is the behavior-similarity bandwidth σ₁ of Eqn 9.
	Sigma1 float64
	// Sigma2 is the structure-sensitivity bandwidth σ₂ of Eqn 9.
	Sigma2 float64
	// MaxHops caps the n-hop distance search; pairs farther apart on
	// either platform contribute no affinity (this is what makes M sparse:
	// the paper reports <1% density).
	MaxHops int
}

// DefaultConfig returns the calibrated bandwidths. σ₂ = 6 keeps agreement
// between equal or adjacent hop distances (d ∈ {1,4,9} ⇒ |Δd| ∈ {0,3,5,8})
// but rejects the direct-friend vs two-hop mismatch.
func DefaultConfig() Config {
	return Config{Sigma1: 0.1, Sigma2: 6, MaxHops: 2}
}

// Build constructs the structure-consistency matrix M over the candidate
// list. embA[i] / embB[i′] are the per-account behavior embeddings x_i used
// in the Gaussian affinities; gA and gB are the two platforms' interaction
// graphs.
//
//	M(a,a) = exp(−‖x_i − x_i′‖² / σ₁²)
//	M(a,b) = exp(−(‖x_i − x_i′‖² + ‖x_j − x_j′‖²) / (2σ₁²)) ·
//	         (1 − (d_ij − d_i′j′)² / σ₂²),   clamped at 0,
//
// with d_ij = (k_ij + 1)² and k_ij the intermediate-user count (BFS hops).
func Build(cands []Candidate, embA, embB []linalg.Vector, gA, gB *graph.Graph, cfg Config) (*linalg.Sparse, error) {
	n := len(cands)
	if n == 0 {
		return nil, fmt.Errorf("structure: no candidates")
	}
	if cfg.Sigma1 <= 0 || cfg.Sigma2 <= 0 {
		return nil, fmt.Errorf("structure: bandwidths must be positive (σ1=%g, σ2=%g)", cfg.Sigma1, cfg.Sigma2)
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 2
	}
	// selfDist[a] = ‖x_i − x_i′‖² for candidate a.
	selfDist := make([]float64, n)
	for a, c := range cands {
		selfDist[a] = linalg.SqDist(embA[c.A], embB[c.B])
	}
	// Index candidates by A-side node for neighborhood joins.
	byA := make(map[int][]int)
	for idx, c := range cands {
		byA[c.A] = append(byA[c.A], idx)
	}

	b := linalg.NewSparseBuilder(n, n)
	s1sq := cfg.Sigma1 * cfg.Sigma1
	s2sq := cfg.Sigma2 * cfg.Sigma2
	for a, ca := range cands {
		b.Set(a, a, expNeg(selfDist[a]/s1sq))
		// Off-diagonal: only candidates whose A-side nodes are within
		// MaxHops of ca.A can agree structurally.
		nbrs := khopNeighborhood(gA, ca.A, cfg.MaxHops)
		for j, kij := range nbrs {
			for _, bIdx := range byA[j] {
				if bIdx <= a {
					continue // fill upper triangle, mirror below
				}
				cb := cands[bIdx]
				// Conflicting assignments — two candidates claiming the
				// same account on either side — are mutually exclusive
				// matchings and get zero affinity (the mapping constraint
				// the relaxation would otherwise leak through).
				if cb.A == ca.A || cb.B == ca.B {
					continue
				}
				kb, ok := gB.HopDistance(ca.B, cb.B, cfg.MaxHops)
				if !ok {
					continue
				}
				dij := float64(kij+1) * float64(kij+1)
				dipjp := float64(kb+1) * float64(kb+1)
				diff := dij - dipjp
				structTerm := 1 - diff*diff/s2sq
				if structTerm <= 0 {
					continue // inconsistency too large: M(a,b)=0
				}
				behav := expNeg((selfDist[a] + selfDist[bIdx]) / (2 * s1sq))
				v := behav * structTerm
				if v <= 0 {
					continue
				}
				b.Set(a, bIdx, v)
				b.Set(bIdx, a, v)
			}
		}
	}
	return b.Build(), nil
}

// khopNeighborhood returns, for every node j reachable from u within
// maxHops intermediate hops (excluding u itself), the intermediate count
// k_uj. Direct friends have k=0.
func khopNeighborhood(g *graph.Graph, u, maxHops int) map[int]int {
	out := make(map[int]int)
	visited := map[int]bool{u: true}
	frontier := []int{u}
	for depth := 1; depth <= maxHops+1; depth++ {
		var next []int
		for _, x := range frontier {
			for _, y := range g.Neighbors(x) {
				if visited[y] {
					continue
				}
				visited[y] = true
				out[y] = depth - 1
				next = append(next, y)
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return out
}

func expNeg(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-x)
}

// AgreementCluster relaxes the correspondence problem max yᵀMy to the
// principal eigenvector of M (Raleigh quotient, Section 6.2) and returns
// the relaxed indicator scores in [0,1] (normalized to max 1).
func AgreementCluster(m *linalg.Sparse, seed int64) (linalg.Vector, error) {
	_, v, err := linalg.PowerIteration(m, m.RowsN, linalg.PowerIterOpts{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Normalize to [0,1] by the max entry; negative ripple is clamped.
	maxV, _ := v.Max()
	if maxV <= 0 {
		return linalg.NewVector(len(v)), nil
	}
	out := v.Clone().Scale(1 / maxV)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out, nil
}

// Laplacian returns D − M as a dense matrix (for the dual assembly) where
// D = diag(row sums of M).
func Laplacian(m *linalg.Sparse) *linalg.Matrix {
	d := m.RowSums()
	out := m.Dense().ScaleInPlace(-1)
	for i := 0; i < out.Rows; i++ {
		out.Addf(i, i, d[i])
	}
	return out
}
