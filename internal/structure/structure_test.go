package structure

import (
	"math"
	"testing"
	"testing/quick"

	"hydra/internal/graph"
	"hydra/internal/linalg"
)

// twoPlatformFixture builds the Figure-7 scenario: three real friends
// (Alice=0, Bob=1, Henry=2) present on both platforms with consistent
// structure, plus an impostor (node 3) disconnected from everyone.
//
// Embeddings: each person has the same embedding on both platforms; the
// impostor pretends to be Alice (same embedding) but has no social ties.
func twoPlatformFixture() (cands []Candidate, embA, embB []linalg.Vector, gA, gB *graph.Graph) {
	gA = graph.New(4)
	gB = graph.New(4)
	// Friendship triangle on both platforms.
	gA.AddEdge(0, 1, 5)
	gA.AddEdge(1, 2, 5)
	gA.AddEdge(0, 2, 5)
	gB.AddEdge(0, 1, 5)
	gB.AddEdge(1, 2, 5)
	gB.AddEdge(0, 2, 5)

	mk := func(a, b, c float64) linalg.Vector { return linalg.Vector{a, b, c} }
	embA = []linalg.Vector{mk(1, 0, 0), mk(0, 1, 0), mk(0, 0, 1), mk(1, 0, 0)}
	embB = []linalg.Vector{mk(1, 0, 0), mk(0, 1, 0), mk(0, 0, 1), mk(1, 0, 0)}

	// Candidates: the three true pairs, plus the impostor pair (3 on A →
	// 0 on B): behaviorally plausible, structurally isolated.
	cands = []Candidate{{0, 0}, {1, 1}, {2, 2}, {3, 0}}
	return
}

func TestBuildValidation(t *testing.T) {
	_, _, _, gA, gB := func() (c []Candidate, a, b []linalg.Vector, g1, g2 *graph.Graph) {
		return nil, nil, nil, graph.New(1), graph.New(1)
	}()
	if _, err := Build(nil, nil, nil, gA, gB, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty candidates")
	}
	cfg := DefaultConfig()
	cfg.Sigma1 = 0
	if _, err := Build([]Candidate{{0, 0}}, []linalg.Vector{{1}}, []linalg.Vector{{1}}, gA, gB, cfg); err == nil {
		t.Fatal("expected error for bad bandwidth")
	}
}

func TestBuildDiagonal(t *testing.T) {
	cands, embA, embB, gA, gB := twoPlatformFixture()
	m, err := Build(cands, embA, embB, gA, gB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Identical embeddings: M(a,a) = exp(0) = 1.
	for a := 0; a < 3; a++ {
		if got := m.At(a, a); math.Abs(got-1) > 1e-12 {
			t.Fatalf("M(%d,%d) = %v, want 1", a, a, got)
		}
	}
}

func TestBuildAgreementLinks(t *testing.T) {
	cands, embA, embB, gA, gB := twoPlatformFixture()
	m, err := Build(cands, embA, embB, gA, gB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// True pairs (0,1,2) are mutual friends on both platforms with equal
	// hop distances -> strong agreement links.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if m.At(a, b) <= 0 {
				t.Fatalf("expected agreement link between true pairs %d,%d", a, b)
			}
			if math.Abs(m.At(a, b)-m.At(b, a)) > 1e-12 {
				t.Fatal("M not symmetric")
			}
		}
	}
	// The impostor candidate (index 3) has no A-side edges: no agreement.
	for b := 0; b < 3; b++ {
		if m.At(3, b) != 0 {
			t.Fatalf("impostor should have no agreement links, got M(3,%d)=%v", b, m.At(3, b))
		}
	}
}

func TestAgreementClusterFindsTruePairs(t *testing.T) {
	cands, embA, embB, gA, gB := twoPlatformFixture()
	m, err := Build(cands, embA, embB, gA, gB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scores, err := AgreementCluster(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// True pairs score high; the impostor scores (near) zero relative to
	// the cluster despite identical behavior similarity.
	for a := 0; a < 3; a++ {
		if scores[a] < 0.5 {
			t.Fatalf("true pair %d score %v too low: %v", a, scores[a], scores)
		}
	}
	if scores[3] > 0.3 {
		t.Fatalf("impostor score %v should be near 0 (scores %v)", scores[3], scores)
	}
}

func TestStructTermFiltersInconsistentDistances(t *testing.T) {
	// Two candidates whose A-side nodes are direct friends (d=1) but whose
	// B-side nodes are 2 hops apart (d=(1+1)²=4): with σ₂ small enough the
	// structural term (1 - (1-4)²/σ₂²) goes negative -> no link.
	gA := graph.New(2)
	gA.AddEdge(0, 1, 1)
	gB := graph.New(3)
	gB.AddEdge(0, 2, 1)
	gB.AddEdge(2, 1, 1) // 0-2-1: one intermediate
	emb := []linalg.Vector{{0}, {0}, {0}}
	cands := []Candidate{{0, 0}, {1, 1}}
	cfg := Config{Sigma1: 1, Sigma2: 2.9, MaxHops: 2} // (d_ij−d_i'j')² = 9 > σ₂²
	m, err := Build(cands, emb[:2], emb, gA, gB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 0 {
		t.Fatalf("inconsistent pair should have 0 affinity, got %v", m.At(0, 1))
	}
	// With a larger σ₂ the link appears.
	cfg.Sigma2 = 10
	m, err = Build(cands, emb[:2], emb, gA, gB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) <= 0 {
		t.Fatal("consistent-enough pair should have positive affinity")
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	cands, embA, embB, gA, gB := twoPlatformFixture()
	m, err := Build(cands, embA, embB, gA, gB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := Laplacian(m)
	ones := linalg.NewVector(l.Rows).Fill(1)
	if l.MulVec(ones).Norm() > 1e-9 {
		t.Fatal("Laplacian rows should sum to zero")
	}
}

func TestKhopNeighborhood(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	nbrs := khopNeighborhood(g, 0, 2)
	if nbrs[1] != 0 || nbrs[2] != 1 || nbrs[3] != 2 {
		t.Fatalf("neighborhood = %v", nbrs)
	}
	if _, ok := nbrs[4]; ok {
		t.Fatal("disconnected node in neighborhood")
	}
	if _, ok := nbrs[0]; ok {
		t.Fatal("self in neighborhood")
	}
}

// Property: M is symmetric with non-negative entries and unit-bounded
// diagonal for random candidate sets.
func TestBuildMatrixProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := 5
		gA := graph.New(n)
		gB := graph.New(n)
		for k := 0; k < n; k++ {
			gA.AddEdge(int(seed+uint8(k))%n, int(seed+uint8(2*k+1))%n, 1)
			gB.AddEdge(int(seed+uint8(3*k))%n, int(seed+uint8(k+2))%n, 1)
		}
		emb := make([]linalg.Vector, n)
		for i := range emb {
			emb[i] = linalg.Vector{float64(i) / 5, float64((i * int(seed+1)) % 3)}
		}
		var cands []Candidate
		for i := 0; i < n; i++ {
			cands = append(cands, Candidate{i, (i + int(seed)) % n})
		}
		m, err := Build(cands, emb, emb, gA, gB, DefaultConfig())
		if err != nil {
			return false
		}
		for i := 0; i < m.RowsN; i++ {
			if d := m.At(i, i); d < 0 || d > 1 {
				return false
			}
			for j := 0; j < m.ColsN; j++ {
				if m.At(i, j) < 0 || math.Abs(m.At(i, j)-m.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
