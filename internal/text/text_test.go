package text

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Hello, World! 42 times")
	want := []string{"hello", "world", "42", "times"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestTokenizeCJK(t *testing.T) {
	got := Tokenize("我爱go语言")
	// Each Han char is its own token; latin run stays together.
	want := []string{"我", "爱", "go", "语", "言"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("Tokenize CJK = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize empty = %v", got)
	}
	if got := Tokenize("!!! ..."); len(got) != 0 {
		t.Fatalf("Tokenize punct = %v", got)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || IsStopword("database") {
		t.Fatal("stopword classification wrong")
	}
	got := RemoveStopwords([]string{"the", "big", "and", "fast", "db"})
	if strings.Join(got, " ") != "big fast db" {
		t.Fatalf("RemoveStopwords = %v", got)
	}
}

func TestSingularize(t *testing.T) {
	cases := map[string]string{
		"cats":    "cat",
		"cities":  "city",
		"classes": "class",
		"boss":    "boss",
		"go":      "go",
		"as":      "as",
	}
	for in, want := range cases {
		if got := Singularize(in); got != want {
			t.Errorf("Singularize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("abcd", 2)
	want := []string{"ab", "bc", "cd"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("NGrams = %v", got)
	}
	if got := NGrams("ab", 3); len(got) != 1 || got[0] != "ab" {
		t.Fatalf("short NGrams = %v", got)
	}
	if NGrams("", 2) != nil {
		t.Fatal("empty NGrams should be nil")
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	ids := v.AddDoc([]string{"a", "b", "a"})
	if v.Size() != 2 || v.Docs() != 1 {
		t.Fatalf("Size=%d Docs=%d", v.Size(), v.Docs())
	}
	if ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("ids = %v", ids)
	}
	if v.TermFreq(ids[0]) != 2 || v.DocFreq(ids[0]) != 1 {
		t.Fatal("freq wrong")
	}
	v.AddDoc([]string{"a", "c"})
	if v.DocFreq(ids[0]) != 2 {
		t.Fatal("docfreq not updated")
	}
	if tok := v.Token(ids[1]); tok != "b" {
		t.Fatalf("Token = %q", tok)
	}
	if _, ok := v.Lookup("zzz"); ok {
		t.Fatal("Lookup of absent token should fail")
	}
}

func TestRarestTerms(t *testing.T) {
	v := NewVocabulary()
	v.AddDoc([]string{"common", "common", "common", "rare", "the", "the"})
	v.AddDoc([]string{"common", "mid", "mid"})
	terms := v.RarestTerms(2)
	if len(terms) != 2 {
		t.Fatalf("RarestTerms = %v", terms)
	}
	if terms[0].Token != "rare" || terms[0].Count != 1 {
		t.Fatalf("rarest = %+v", terms[0])
	}
	// Stopword "the" must never appear.
	for _, tc := range terms {
		if tc.Token == "the" {
			t.Fatal("stopword leaked into RarestTerms")
		}
	}
	// k larger than vocabulary truncates.
	if got := v.RarestTerms(100); len(got) != 3 {
		t.Fatalf("over-k RarestTerms len = %d", len(got))
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"адель", "адел", 1}, // non-ASCII runes
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if EditSimilarity("", "") != 1 {
		t.Fatal("empty strings should be identical")
	}
	if got := EditSimilarity("abcd", "abce"); got != 0.75 {
		t.Fatalf("EditSimilarity = %v", got)
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("martha", "marhta"); math.Abs(got-0.9444) > 1e-3 {
		t.Fatalf("Jaro martha/marhta = %v", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Fatal("Jaro edge cases wrong")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Fatal("disjoint strings should be 0")
	}
}

func TestJaroWinkler(t *testing.T) {
	got := JaroWinkler("dixon", "dicksonx")
	if math.Abs(got-0.8133) > 1e-3 {
		t.Fatalf("JaroWinkler dixon/dicksonx = %v", got)
	}
	// Shared prefix boosts above plain Jaro.
	if JaroWinkler("adele", "adel") <= Jaro("adele", "adel") {
		t.Fatal("prefix boost missing")
	}
}

func TestNGramJaccard(t *testing.T) {
	if NGramJaccard("", "", 2) != 1 {
		t.Fatal("empty/empty should be 1")
	}
	if NGramJaccard("ab", "", 2) != 0 {
		t.Fatal("empty/nonempty should be 0")
	}
	if got := NGramJaccard("abcd", "abcd", 2); got != 1 {
		t.Fatalf("self Jaccard = %v", got)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	if got := LongestCommonSubstring("adele_nuannuan", "masuwen_adele"); got != 5 {
		t.Fatalf("LCS = %d, want 5", got)
	}
	if LongestCommonSubstring("", "abc") != 0 {
		t.Fatal("empty LCS")
	}
}

func TestUsernameOverlap(t *testing.T) {
	if got := UsernameOverlap("adele", "adele_robinson"); got != 1 {
		t.Fatalf("full overlap = %v", got)
	}
	if UsernameOverlap("", "x") != 0 {
		t.Fatal("empty overlap")
	}
	if got := UsernameOverlap("ab", "cd"); got != 0 {
		t.Fatalf("disjoint overlap = %v", got)
	}
}

// Property: edit distance is a metric — symmetric, zero iff equal strings
// (over a small alphabet), triangle inequality.
func TestEditDistanceMetricProperty(t *testing.T) {
	gen := func(n uint8) string {
		const alpha = "ab"
		s := make([]byte, int(n)%6)
		x := int(n)
		for i := range s {
			s[i] = alpha[x%2]
			x /= 2
		}
		return string(s)
	}
	f := func(x, y, z uint8) bool {
		a, b, c := gen(x), gen(y), gen(z)
		dab, dba := EditDistance(a, b), EditDistance(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return EditDistance(a, c) <= dab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: all string similarities stay in [0,1] and are 1 on identical input.
func TestSimilarityRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		for _, s := range []float64{
			EditSimilarity(a, b), Jaro(a, b), JaroWinkler(a, b), NGramJaccard(a, b, 2), UsernameOverlap(a, b),
		} {
			if s < 0 || s > 1+1e-12 || math.IsNaN(s) {
				return false
			}
		}
		return Jaro(a, a) == 1 || a == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
