package text

import "sort"

// Vocabulary maps tokens to dense integer ids, accumulating corpus-level
// term and document frequencies as documents are added.
type Vocabulary struct {
	ids      map[string]int
	tokens   []string
	termFreq []int
	docFreq  []int
	docs     int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int)}
}

// Size returns the number of distinct tokens.
func (v *Vocabulary) Size() int { return len(v.tokens) }

// Docs returns the number of documents added via AddDoc.
func (v *Vocabulary) Docs() int { return v.docs }

// ID returns the id for tok, inserting it if new.
func (v *Vocabulary) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := len(v.tokens)
	v.ids[tok] = id
	v.tokens = append(v.tokens, tok)
	v.termFreq = append(v.termFreq, 0)
	v.docFreq = append(v.docFreq, 0)
	return id
}

// Lookup returns the id for tok without inserting; ok is false if absent.
func (v *Vocabulary) Lookup(tok string) (int, bool) {
	id, ok := v.ids[tok]
	return id, ok
}

// Token returns the token for id.
func (v *Vocabulary) Token(id int) string { return v.tokens[id] }

// TermFreq returns the corpus frequency of token id.
func (v *Vocabulary) TermFreq(id int) int { return v.termFreq[id] }

// DocFreq returns the number of documents containing token id.
func (v *Vocabulary) DocFreq(id int) int { return v.docFreq[id] }

// AddDoc registers a tokenized document, updating term and document
// frequencies, and returns the document as token ids.
func (v *Vocabulary) AddDoc(tokens []string) []int {
	ids := make([]int, len(tokens))
	seen := make(map[int]bool, len(tokens))
	for i, tok := range tokens {
		id := v.ID(tok)
		ids[i] = id
		v.termFreq[id]++
		if !seen[id] {
			seen[id] = true
			v.docFreq[id]++
		}
	}
	v.docs++
	return ids
}

// TermCount is a token with its corpus frequency.
type TermCount struct {
	Token string
	Count int
}

// RarestTerms returns the k least-frequent non-stop-word tokens of the
// vocabulary, ties broken lexicographically for determinism. This implements
// the paper's unique-word selection for the style model (Section 5.3): "we
// select the k most unique ones after removing stop words from the
// least-used terms of the whole user data repository".
func (v *Vocabulary) RarestTerms(k int) []TermCount {
	all := make([]TermCount, 0, len(v.tokens))
	for id, tok := range v.tokens {
		if IsStopword(tok) {
			continue
		}
		all = append(all, TermCount{Token: tok, Count: v.termFreq[id]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count < all[j].Count
		}
		return all[i].Token < all[j].Token
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
