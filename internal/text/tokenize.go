// Package text provides the text-processing substrate HYDRA's behavior
// models sit on: tokenization, vocabularies, term/document frequencies,
// stop-word handling, and the string-similarity measures used by the
// rule-based candidate filtering (username overlap) and the baselines.
package text

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into word tokens. Tokens are maximal
// runs of letters/digits; everything else is a separator. CJK characters are
// emitted as single-rune tokens (the standard character-unigram treatment
// for unsegmented Chinese text).
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		switch {
		case unicode.Is(unicode.Han, r):
			flush()
			tokens = append(tokens, string(r))
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// defaultStopwords is a compact English stop-word list; enough to keep the
// style model from selecting function words as "unique" terms (Section 5.3
// removes stop words before picking the k most unique words).
var defaultStopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"if": true, "of": true, "at": true, "by": true, "for": true, "with": true,
	"about": true, "against": true, "between": true, "into": true, "through": true,
	"to": true, "from": true, "in": true, "on": true, "off": true, "over": true,
	"under": true, "again": true, "then": true, "once": true, "here": true,
	"there": true, "all": true, "any": true, "both": true, "each": true,
	"few": true, "more": true, "most": true, "other": true, "some": true,
	"such": true, "no": true, "nor": true, "not": true, "only": true,
	"own": true, "same": true, "so": true, "than": true, "too": true,
	"very": true, "can": true, "will": true, "just": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "been": true,
	"being": true, "have": true, "has": true, "had": true, "do": true,
	"does": true, "did": true, "i": true, "you": true, "he": true,
	"she": true, "it": true, "we": true, "they": true, "this": true,
	"that": true, "these": true, "those": true, "my": true, "your": true,
	"me": true, "him": true, "her": true, "as": true, "what": true,
	"which": true, "who": true, "whom": true, "its": true, "our": true,
}

// IsStopword reports whether tok is in the built-in stop-word list.
func IsStopword(tok string) bool { return defaultStopwords[tok] }

// RemoveStopwords filters stop words out of tokens, preserving order.
func RemoveStopwords(tokens []string) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if !defaultStopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Singularize applies light plural stripping so that word matching in the
// style model compares a uniform format (Section 5.3: "converted into a
// uniform format, such as lower-case and singular form").
func Singularize(tok string) string {
	switch {
	case strings.HasSuffix(tok, "ies") && len(tok) > 4:
		return tok[:len(tok)-3] + "y"
	case strings.HasSuffix(tok, "sses"):
		return tok[:len(tok)-2]
	case strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && len(tok) > 3:
		return tok[:len(tok)-1]
	default:
		return tok
	}
}

// NGrams returns the character n-grams of s (runes, not bytes). If s is
// shorter than n, the whole string is the single gram.
func NGrams(s string, n int) []string {
	runes := []rune(s)
	if len(runes) == 0 {
		return nil
	}
	if len(runes) <= n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}
