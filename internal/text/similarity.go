package text

// String-similarity measures used by the rule-based candidate filtering
// (partial username overlap) and by the Alias-Disamb and MOBIUS baselines.

// EditDistance returns the Levenshtein distance between a and b (runes).
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity returns 1 - dist/maxLen, in [0,1]; 1 for two empty strings.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(EditDistance(a, b))/float64(maxLen)
}

// Jaro returns the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NGramJaccard returns the Jaccard similarity between the character n-gram
// sets of a and b.
func NGramJaccard(a, b string, n int) float64 {
	ga, gb := NGrams(a, n), NGrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	setA := make(map[string]bool, len(ga))
	for _, g := range ga {
		setA[g] = true
	}
	setB := make(map[string]bool, len(gb))
	for _, g := range gb {
		setB[g] = true
	}
	inter := 0
	for g := range setA {
		if setB[g] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// LongestCommonSubstring returns the length (in runes) of the longest common
// substring of a and b. Username-overlap filtering uses this to detect
// partial overlap such as "Adele" inside "Adele_xiaonuan".
func LongestCommonSubstring(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return best
}

// UsernameOverlap returns LongestCommonSubstring normalized by the shorter
// username's length, in [0,1].
func UsernameOverlap(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 || lb == 0 {
		return 0
	}
	shorter := la
	if lb < shorter {
		shorter = lb
	}
	return float64(LongestCommonSubstring(a, b)) / float64(shorter)
}
