package faults

// The chaos certification suite: seeded fault scripts against a sharded
// router, every run asserting the serving tier's one invariant — the
// answer is byte-identical to the fault-free single engine, or it
// carries Degraded/FailedShards truthfully (present rows still exact,
// missing rows exactly the failed shards' slices). Fault decisions are
// deterministic per seed, so a failing scenario replays as a plain
// `go test -run Chaos` with the same seed; the whole file runs under
// -race via the Makefile filter.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/blocking"
	"hydra/internal/core"
	"hydra/internal/features"
	"hydra/internal/obs"
	"hydra/internal/pipeline"
	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/serve/router"
	"hydra/internal/synth"
)

// chaosEnv mirrors the router test fixture: one trained model, its
// unsharded engine as ground truth. Package faults imports router, so
// the suite lives here with its own copy rather than creating a cycle.
type chaosEnv struct {
	bundle *pipeline.Bundle
	single *serve.Engine
	pair   [2]platform.ID
	nA     int
}

var (
	chaosOnce sync.Once
	chaosE    chaosEnv
	chaosErr  error
)

func getChaosEnv(t *testing.T) chaosEnv {
	t.Helper()
	chaosOnce.Do(func() { chaosE, chaosErr = buildChaosEnv() })
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosE
}

func buildChaosEnv() (chaosEnv, error) {
	const seed = 4
	w, err := synth.Generate(synth.DefaultConfig(36, platform.EnglishPlatforms, seed))
	if err != nil {
		return chaosEnv{}, err
	}
	fcfg := features.DefaultConfig(seed)
	fcfg.LDAIterations = 25
	fcfg.MaxLDADocs = 1500
	sysState, err := pipeline.Systemize(w.Dataset, pipeline.SystemizeOpts{
		LabelPA:      platform.Twitter,
		LabelPB:      platform.Facebook,
		LabelPersons: pipeline.LabeledHalf(w.Dataset),
		Lexicons:     features.Lexicons{Genre: w.Lexicons.Genre, Sentiment: w.Lexicons.Sentiment},
		FeatCfg:      fcfg,
	})
	if err != nil {
		return chaosEnv{}, err
	}
	blocked, err := pipeline.Block(sysState, pipeline.BlockOpts{
		Pairs: [][2]platform.ID{{platform.Twitter, platform.Facebook}},
		Rules: blocking.DefaultRules(),
		Label: core.DefaultLabelOpts(seed),
	})
	if err != nil {
		return chaosEnv{}, err
	}
	fitted, err := pipeline.Fit(blocked, core.DefaultConfig(seed))
	if err != nil {
		return chaosEnv{}, err
	}
	bundle, err := fitted.Bundle(0)
	if err != nil {
		return chaosEnv{}, err
	}
	single, err := serve.NewEngineFromBundle(bundle, 0)
	if err != nil {
		return chaosEnv{}, err
	}
	pair := single.Pairs()[0]
	return chaosEnv{
		bundle: bundle,
		single: single,
		pair:   pair,
		nA:     len(bundle.Views[pair[0]]),
	}, nil
}

// chaosEngines splits the env bundle count ways at the generation.
func chaosEngines(t *testing.T, count int, gen uint64) []*serve.Engine {
	t.Helper()
	e := getChaosEnv(t)
	subs, err := pipeline.SplitBundle(e.bundle, count, 7, gen)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*serve.Engine, count)
	for i, sb := range subs {
		eng, err := serve.NewEngineFromBundle(sb, 0)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	return engines
}

// faultyShards wraps each shard engine in a faults.Backend named
// "shard-<i>" under one injector — the standard chaos topology.
func faultyShards(engines []*serve.Engine, inj *Injector) [][]router.Backend {
	shards := make([][]router.Backend, len(engines))
	for i, eng := range engines {
		shards[i] = []router.Backend{&Backend{
			Inner:  &router.Local{Src: eng, Label: fmt.Sprintf("inner-%d", i)},
			Inj:    inj,
			Target: fmt.Sprintf("shard-%d", i),
		}}
	}
	return shards
}

// assertInvariant is the certification check run on every chaos answer:
// non-degraded responses must be bit-identical to the single engine;
// degraded ones must carry exactly the single engine's ranking minus the
// flagged shards' slices — truthful, never silently wrong.
func assertInvariant(t *testing.T, desc *pipeline.ShardDesc, res router.TopKResult, a, k int) {
	t.Helper()
	e := getChaosEnv(t)
	if !res.Degraded {
		if len(res.FailedShards) != 0 {
			t.Fatalf("a=%d: failed_shards %v on a non-degraded response", a, res.FailedShards)
		}
		want, err := e.single.TopK(e.pair[0], a, e.pair[1], k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Results, want) {
			t.Fatalf("a=%d: non-degraded answer differs from the single engine", a)
		}
		return
	}
	if len(res.FailedShards) == 0 {
		t.Fatalf("a=%d: degraded with no failed shards", a)
	}
	failed := make(map[int]bool, len(res.FailedShards))
	for _, si := range res.FailedShards {
		failed[si] = true
	}
	full, err := e.single.TopK(e.pair[0], a, e.pair[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []serve.Scored
	for _, s := range full {
		if !failed[desc.ShardOf(e.pair[1], s.B)] {
			want = append(want, s)
		}
	}
	if k > 0 && len(want) > k {
		want = want[:k]
	}
	if len(res.Results) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(res.Results, want) {
		t.Fatalf("a=%d: degraded rows are not the single engine minus shards %v", a, res.FailedShards)
	}
}

// TestChaosEachShardFlapping flips every shard's replica up and down on
// seeded probabilistic scripts across three seeds: each answer must be
// exact or truthfully degraded, and with breakers on short windows the
// tier must keep producing exact answers between flaps.
func TestChaosEachShardFlapping(t *testing.T) {
	e := getChaosEnv(t)
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			engines := chaosEngines(t, 2, 1)
			inj := NewInjector(Script{Seed: seed, Rules: []Rule{
				{Target: "shard-0", P: 0.25, Error: true},
				{Target: "shard-1", P: 0.25, Error: true},
			}})
			r, err := router.New(faultyShards(engines, inj), router.Options{
				BackoffBase:    50 * time.Microsecond,
				BreakerOpenFor: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			desc := engines[0].ShardDesc()
			exact, outages := 0, 0
			for q := 0; q < 60; q++ {
				a := q % e.nA
				res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
				if err != nil {
					// Both shards flapped on the same query: the router
					// reports a total outage instead of fabricating rows —
					// truthful, and the next query must recover.
					outages++
					continue
				}
				assertInvariant(t, desc, res, a, 5)
				if !res.Degraded {
					exact++
				}
			}
			if exact == 0 {
				t.Fatalf("seed %d: no exact answers across 60 queries under 25%% flapping (%d outages)", seed, outages)
			}
			if outages == 60 {
				t.Fatalf("seed %d: every query was a total outage under 25%% flapping", seed)
			}
		})
	}
}

// TestChaosOneShardPermanentlyDown is the acceptance drill: one shard's
// only replica hard-down, every answer honestly degraded, and —
// measured by the injector's own call counter — the breaker caps the
// traffic the corpse sees to the trip threshold plus stray probes.
func TestChaosOneShardPermanentlyDown(t *testing.T) {
	e := getChaosEnv(t)
	ctx := context.Background()
	engines := chaosEngines(t, 2, 1)
	inj := NewInjector(Script{Rules: []Rule{{Target: "shard-1", Error: true}}})
	r, err := router.New(faultyShards(engines, inj), router.Options{
		BackoffBase:    50 * time.Microsecond,
		BreakerOpenFor: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	desc := engines[0].ShardDesc()
	const queries = 150
	for q := 0; q < queries; q++ {
		a := q % e.nA
		res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
		if err != nil {
			t.Fatalf("query %d hard-failed: %v", q, err)
		}
		if !res.Degraded || !reflect.DeepEqual(res.FailedShards, []int{1}) {
			t.Fatalf("query %d: degraded=%v failed=%v", q, res.Degraded, res.FailedShards)
		}
		assertInvariant(t, desc, res, a, 5)
	}
	if calls := inj.Calls("shard-1"); calls > 6 {
		t.Fatalf("dead shard saw %d calls over %d queries; the breaker should cap near its threshold", calls, queries)
	}
	if st := r.RobustStats(); st.FailFast == 0 {
		t.Fatal("open breaker produced no fail-fast denials")
	}
}

// TestChaosUniformSlowness injects latency into every replica, below
// the attempt timeout: nothing may degrade, every answer bit-identical.
func TestChaosUniformSlowness(t *testing.T) {
	e := getChaosEnv(t)
	ctx := context.Background()
	engines := chaosEngines(t, 2, 1)
	inj := NewInjector(Script{Seed: 5, Rules: []Rule{
		{Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
	}})
	r, err := router.New(faultyShards(engines, inj), router.Options{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	desc := engines[0].ShardDesc()
	for q := 0; q < 25; q++ {
		a := q % e.nA
		res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatalf("query %d degraded under uniform 2ms slowness", q)
		}
		assertInvariant(t, desc, res, a, 5)
	}
	if inj.Calls("shard-0") == 0 || inj.Calls("shard-1") == 0 {
		t.Fatal("injector saw no traffic — the wrapper is not in the path")
	}
}

// TestChaosStragglerTail gives one shard two replicas — a seeded
// straggler and a clean one — with hedging on: answers must stay exact
// (the backup covers the tail), and the hedge counters must show it
// actually fired and won at least once across the run.
func TestChaosStragglerTail(t *testing.T) {
	e := getChaosEnv(t)
	ctx := context.Background()
	engines := chaosEngines(t, 1, 1)
	inj := NewInjector(Script{Seed: 11, Rules: []Rule{
		{Target: "straggler", P: 0.5, Latency: 60 * time.Millisecond},
	}})
	straggler := &Backend{
		Inner:  &router.Local{Src: engines[0], Label: "inner-straggler"},
		Inj:    inj,
		Target: "straggler",
	}
	clean := &Backend{
		Inner:  &router.Local{Src: engines[0], Label: "inner-clean"},
		Inj:    inj,
		Target: "clean",
	}
	r, err := router.New([][]router.Backend{{straggler, clean}}, router.Options{
		HedgeAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	desc := engines[0].ShardDesc()
	for q := 0; q < 40; q++ {
		a := q % e.nA
		res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatalf("query %d degraded: a straggler with a clean twin must not degrade", q)
		}
		assertInvariant(t, desc, res, a, 5)
	}
	// The preferred replica migrates to whichever answered last, so not
	// every query hedges — but across 40 with a 50% straggle rate the
	// hedge must have fired and won at least once.
	st := r.RobustStats()
	if st.HedgeFired == 0 || st.HedgeWon == 0 {
		t.Fatalf("hedge counters fired=%d won=%d across a straggler run", st.HedgeFired, st.HedgeWon)
	}
}

// TestChaosSwapStorm flips both shards from generation 1 to generation
// 2 at different call counts — swaps landing mid-scatter. The router
// must either re-fan-out to a uniform answer or flag the stale shard;
// never mix generations, never return wrong rows.
func TestChaosSwapStorm(t *testing.T) {
	e := getChaosEnv(t)
	ctx := context.Background()
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			old := chaosEngines(t, 2, 1)
			next := chaosEngines(t, 2, 2)
			inj := NewInjector(Script{Seed: seed})
			shards := make([][]router.Backend, 2)
			for i := range shards {
				shards[i] = []router.Backend{&FlipBackend{
					Before: &router.Local{Src: old[i], Label: fmt.Sprintf("old-%d", i)},
					After:  &router.Local{Src: next[i], Label: fmt.Sprintf("new-%d", i)},
					At:     uint64(3 + 4*i + int(seed)), // staggered swap points
					Inj:    inj,
					Target: fmt.Sprintf("flip-%d", i),
				}}
			}
			r, err := router.New(shards, router.Options{BackoffBase: 50 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			desc := old[0].ShardDesc() // split topology is identical across generations
			sawGen2 := false
			for q := 0; q < 30; q++ {
				a := q % e.nA
				res, err := r.TopK(ctx, e.pair[0], a, e.pair[1], 5)
				if err != nil {
					t.Fatalf("query %d hard-failed mid-storm: %v", q, err)
				}
				assertInvariant(t, desc, res, a, 5)
				if res.Generation == 2 {
					sawGen2 = true
				} else if res.Generation != 1 {
					t.Fatalf("query %d answered from generation %d", q, res.Generation)
				}
			}
			if !sawGen2 {
				t.Fatal("storm never completed: no generation-2 answers")
			}
		})
	}
}

// TestChaosOverloadSheds drives more concurrent requests than the
// admission gate's in-flight bound over slowed-down shards: the
// overflow must be shed with 429 + Retry-After (and counted), and every
// admitted answer must still pass the invariant.
func TestChaosOverloadSheds(t *testing.T) {
	e := getChaosEnv(t)
	engines := chaosEngines(t, 2, 1)
	inj := NewInjector(Script{Seed: 8, Rules: []Rule{
		{Latency: 30 * time.Millisecond}, // hold requests in flight
	}})
	r, err := router.New(faultyShards(engines, inj), router.Options{HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	desc := engines[0].ShardDesc()
	adm := obs.NewAdmission(2)
	srv := httptest.NewServer(adm.Middleware(r.Handler()))
	defer srv.Close()

	const clients = 12
	type reply struct {
		status     int
		retryAfter string
		res        router.TopKResult
		a          int
		err        error
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	var ready, fire sync.WaitGroup
	ready.Add(clients)
	fire.Add(1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a := c % e.nA
			replies[c].a = a
			ready.Done()
			fire.Wait() // all clients release together to exceed the bound
			resp, err := http.Get(fmt.Sprintf("%s/topk?pa=%s&a=%d&pb=%s&k=5", srv.URL, e.pair[0], a, e.pair[1]))
			if err != nil {
				replies[c].err = err
				return
			}
			defer resp.Body.Close()
			replies[c].status = resp.StatusCode
			replies[c].retryAfter = resp.Header.Get("Retry-After")
			if resp.StatusCode == http.StatusOK {
				replies[c].err = json.NewDecoder(resp.Body).Decode(&replies[c].res)
			}
		}(c)
	}
	ready.Wait()
	fire.Done()
	wg.Wait()

	var ok, shed int
	for _, rep := range replies {
		if rep.err != nil {
			t.Fatal(rep.err)
		}
		switch rep.status {
		case http.StatusOK:
			ok++
			assertInvariant(t, desc, rep.res, rep.a, 5)
		case http.StatusTooManyRequests:
			shed++
			if rep.retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d under overload", rep.status)
		}
	}
	if ok == 0 {
		t.Fatal("admission gate admitted nothing")
	}
	if shed == 0 {
		t.Fatalf("12 simultaneous clients against an in-flight bound of 2 shed nothing (ok=%d)", ok)
	}
	if _, _, shedCount := adm.Stats(); shedCount != uint64(shed) {
		t.Fatalf("shed counter %d != observed 429s %d", shedCount, shed)
	}
}

// TestChaosHangingShardWithinBudget scripts a shard that answers
// nothing at all (slow-loris hang): under a deadline budget the router
// must return the survivors' exact rows with the hung shard flagged,
// within the budget — the no-silent-stall guarantee.
func TestChaosHangingShardWithinBudget(t *testing.T) {
	e := getChaosEnv(t)
	engines := chaosEngines(t, 2, 1)
	inj := NewInjector(Script{Rules: []Rule{{Target: "shard-1", Hang: true}}})
	r, err := router.New(faultyShards(engines, inj), router.Options{
		BackoffBase: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	desc := engines[0].ShardDesc()
	ctx := router.WithBudget(context.Background(), time.Now().Add(200*time.Millisecond))
	start := time.Now()
	res, err := r.TopK(ctx, e.pair[0], 0, e.pair[1], 5)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hung shard turned into a router-wide failure: %v", err)
	}
	if !res.Degraded || !reflect.DeepEqual(res.FailedShards, []int{1}) {
		t.Fatalf("degraded=%v failed=%v, want the hung shard flagged", res.Degraded, res.FailedShards)
	}
	assertInvariant(t, desc, res, 0, 5)
	if elapsed > 30*time.Second {
		t.Fatalf("budgeted answer took %v against a 200ms budget", elapsed)
	}
	if hangs := inj.InjectedHangs("shard-1"); hangs == 0 {
		t.Fatal("no hangs injected — the script never engaged")
	}
}

// TestChaosMiddlewareAndRoundTripper covers the wire-level injectors:
// the handler middleware answers 503 on scripted errors, and the
// RoundTripper fails the client side without touching the server.
func TestChaosMiddlewareAndRoundTripper(t *testing.T) {
	var served atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	inj := NewInjector(Script{Rules: []Rule{{Target: "mw", Every: 2, Error: true}}})
	srv := httptest.NewServer(Middleware(inner, inj, "mw"))
	defer srv.Close()
	var codes []int
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if want := []int{503, 200, 503, 200}; !reflect.DeepEqual(codes, want) {
		t.Fatalf("middleware codes = %v, want %v", codes, want)
	}
	if served.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (faulted calls must not reach it)", served.Load())
	}

	rtInj := NewInjector(Script{Rules: []Rule{{Target: "rt", Error: true}}})
	client := &http.Client{Transport: &RoundTripper{Inj: rtInj, Target: "rt"}}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("faulted round trip succeeded")
	}
	if served.Load() != 2 {
		t.Fatal("client-side fault reached the server")
	}
}
