package faults

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestFaultsDeterministicAcrossRuns: two injectors over the same script
// resolve identical decision sequences for every target — the property
// the whole chaos suite rests on.
func TestFaultsDeterministicAcrossRuns(t *testing.T) {
	script := Script{Seed: 42, Rules: []Rule{
		{Target: "a", P: 0.3, Error: true},
		{Target: "b", P: 0.5, Latency: time.Millisecond, Jitter: time.Millisecond},
		{Every: 7, Latency: 2 * time.Millisecond},
	}}
	run := func() map[string][]Decision {
		inj := NewInjector(script)
		out := make(map[string][]Decision)
		for _, target := range []string{"a", "b", "c"} {
			for i := 0; i < 200; i++ {
				out[target] = append(out[target], inj.Decide(target))
			}
		}
		return out
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same script, different decision sequences across runs")
	}
	// A different seed must actually change the probabilistic draws.
	other := NewInjector(Script{Seed: 43, Rules: script.Rules})
	var diff bool
	for i := 0; i < 200; i++ {
		if other.Decide("a") != first["a"][i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seed 43 reproduced seed 42's decisions exactly")
	}
}

// TestFaultsConcurrentInterleavingIndependence: a target's decision
// stream depends only on its own call indices, so concurrent traffic to
// other targets (any goroutine schedule) cannot perturb it. Verified by
// multiset equality under -race.
func TestFaultsConcurrentInterleavingIndependence(t *testing.T) {
	script := Script{Seed: 7, Rules: []Rule{
		{Target: "x", P: 0.4, Error: true},
		{Target: "y", P: 0.4, Error: true},
	}}
	sequential := NewInjector(script)
	var wantX []Decision
	for i := 0; i < 400; i++ {
		wantX = append(wantX, sequential.Decide("x"))
	}

	concurrent := NewInjector(script)
	var mu sync.Mutex
	var gotX []Decision
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d := concurrent.Decide("x")
				mu.Lock()
				gotX = append(gotX, d)
				mu.Unlock()
			}
		}()
		go func() { // interleaved noise on the other target
			defer wg.Done()
			for i := 0; i < 100; i++ {
				concurrent.Decide("y")
			}
		}()
	}
	wg.Wait()

	key := func(d Decision) string {
		if d.Err {
			return "err"
		}
		return "ok"
	}
	count := func(ds []Decision) map[string]int {
		m := make(map[string]int)
		for _, d := range ds {
			m[key(d)]++
		}
		return m
	}
	if !reflect.DeepEqual(count(wantX), count(gotX)) {
		t.Fatalf("concurrent x decisions %v != sequential %v", count(gotX), count(wantX))
	}
	if concurrent.Calls("x") != 400 || concurrent.Calls("y") != 400 {
		t.Fatalf("call counters: x=%d y=%d, want 400 each", concurrent.Calls("x"), concurrent.Calls("y"))
	}
}

// TestFaultsEveryWindow: a windowed periodic rule fires on exactly the
// scripted call indices — deterministic replica flapping.
func TestFaultsEveryWindow(t *testing.T) {
	inj := NewInjector(Script{Rules: []Rule{
		{Target: "flap", From: 2, To: 11, Every: 3, Error: true},
	}})
	var fired []int
	for i := 0; i < 15; i++ {
		if inj.Decide("flap").Err {
			fired = append(fired, i)
		}
	}
	if want := []int{2, 5, 8}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("rule fired at %v, want %v", fired, want)
	}
	if inj.InjectedErrors("flap") != 3 {
		t.Fatalf("injected-error counter = %d, want 3", inj.InjectedErrors("flap"))
	}
}

// TestFaultsProbabilisticRate: a P rule's empirical rate lands near P,
// and identically so on every run with the same seed.
func TestFaultsProbabilisticRate(t *testing.T) {
	script := Script{Seed: 99, Rules: []Rule{{P: 0.3, Error: true}}}
	count := func() uint64 {
		inj := NewInjector(script)
		for i := 0; i < 1000; i++ {
			inj.Decide("t")
		}
		return inj.InjectedErrors("t")
	}
	n1, n2 := count(), count()
	if n1 != n2 {
		t.Fatalf("same seed, different error counts: %d vs %d", n1, n2)
	}
	if n1 < 230 || n1 > 370 {
		t.Fatalf("P=0.3 rule fired %d/1000 times — the unit hash is not uniform", n1)
	}
}

// TestFaultsRulesCompose: matching rules add latencies and OR failures.
func TestFaultsRulesCompose(t *testing.T) {
	inj := NewInjector(Script{Rules: []Rule{
		{Latency: 2 * time.Millisecond},
		{Target: "t", Latency: 3 * time.Millisecond},
		{Target: "t", Error: true},
	}})
	d := inj.Decide("t")
	if d.Latency != 5*time.Millisecond || !d.Err || d.Hang {
		t.Fatalf("composed decision = %+v, want 5ms + error", d)
	}
}

// TestFaultsApplyHangRespectsContext: a hang blocks until the caller's
// context dies, then reports an injected fault — never a deadlock.
func TestFaultsApplyHangRespectsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Decision{Hang: true}.Apply(ctx, "t")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hang resolved to %v, want ErrInjected", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived its context")
	}
	// Latency is likewise cut short by cancellation.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	if err := (Decision{Latency: time.Hour}).Apply(ctx2, "t"); !errors.Is(err, ErrInjected) {
		t.Fatalf("cancelled latency resolved to %v, want ErrInjected", err)
	}
	// And a clean decision applies instantly with no error.
	if err := (Decision{}).Apply(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
}

// TestFaultsTargets: the injector reports every target it has seen.
func TestFaultsTargets(t *testing.T) {
	inj := NewInjector(Script{})
	inj.Decide("b")
	inj.Decide("a")
	got := inj.Targets()
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("targets = %v", got)
	}
}
