// Package faults is the serving tier's deterministic fault-injection
// layer: scripted latency, errors, hangs, replica flapping and
// swap-mid-scatter, reproducible from a single seed, so every chaos
// scenario in the certification suite is a plain `go test` (and runs
// under -race).
//
// Determinism is the design constraint everything here serves. A fault
// decision is a pure function of (seed, target, rule index, call
// index): the injector keeps one atomic call counter per target, and
// every probabilistic draw hashes those four values through a
// splitmix64-style mixer — no shared math/rand stream, no wall clock.
// Two runs with the same seed and the same per-target call interleaving
// make identical decisions, and concurrent callers only contend on the
// counter increment, never on a lock around randomness.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error every scripted failure resolves to (wrapped
// with the target name), so tests can errors.Is their way to "this was
// the script, not a real bug".
var ErrInjected = errors.New("injected fault")

// Rule is one line of a fault script. A rule applies to a call when the
// target matches, the call index falls in [From, To) (To = 0 means
// unbounded), and its trigger fires: Every > 0 makes it periodic
// (deterministic flapping — fires when (idx-From)%Every == 0), P > 0
// makes it probabilistic under the seed, and neither makes it
// unconditional. Matching rules compose: latencies add, Error/Hang OR.
type Rule struct {
	// Target selects which injection point the rule scripts; "" matches
	// every target.
	Target string
	// From and To bound the call-index window the rule is live in
	// (half-open; To = 0 means forever).
	From, To uint64
	// Every fires the rule on every Every-th call of the window.
	Every uint64
	// P fires the rule with probability P per call, deterministically
	// derived from the seed.
	P float64
	// Latency is added before the call proceeds (or fails); Jitter adds
	// a uniform seeded extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// Error fails the call with ErrInjected after any latency.
	Error bool
	// Hang blocks the call until its context is cancelled, then fails
	// it — the slow-loris shard that never answers.
	Hang bool
}

func (r Rule) matches(target string, idx uint64) bool {
	if r.Target != "" && r.Target != target {
		return false
	}
	if idx < r.From || (r.To > 0 && idx >= r.To) {
		return false
	}
	if r.Every > 0 && (idx-r.From)%r.Every != 0 {
		return false
	}
	return true
}

// Script is a seeded set of fault rules — one chaos scenario.
type Script struct {
	Seed  int64
	Rules []Rule
}

// Decision is what the injector resolved one call to.
type Decision struct {
	Latency time.Duration
	Err     bool
	Hang    bool
}

// Apply executes the decision: sleep the scripted latency (respecting
// ctx), hang until cancellation if scripted, and return the injected
// error if any. The returned error wraps ErrInjected.
func (d Decision) Apply(ctx context.Context, target string) error {
	if d.Hang {
		<-ctx.Done()
		return fmt.Errorf("%s: hang until %v: %w", target, ctx.Err(), ErrInjected)
	}
	if d.Latency > 0 {
		t := time.NewTimer(d.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%s: latency cut short by %v: %w", target, ctx.Err(), ErrInjected)
		}
	}
	if d.Err {
		return fmt.Errorf("%s: %w", target, ErrInjected)
	}
	return nil
}

// targetState is one injection point's counters: how many calls it has
// seen and how many faults of each kind were injected into them. The
// injected counters are what chaos tests assert bounded probe traffic
// against ("the breaker let at most N calls reach the dead replica").
type targetState struct {
	calls    atomic.Uint64
	errs     atomic.Uint64
	hangs    atomic.Uint64
	latApply atomic.Uint64
}

// Injector resolves fault decisions for named targets under one script.
// Safe for concurrent use.
type Injector struct {
	script Script
	mu     sync.Mutex
	states map[string]*targetState
}

// NewInjector builds an injector over the script.
func NewInjector(s Script) *Injector {
	return &Injector{script: s, states: make(map[string]*targetState)}
}

func (in *Injector) state(target string) *targetState {
	in.mu.Lock()
	st := in.states[target]
	if st == nil {
		st = &targetState{}
		in.states[target] = st
	}
	in.mu.Unlock()
	return st
}

// Decide consumes the target's next call index and resolves the
// script's decision for it.
func (in *Injector) Decide(target string) Decision {
	st := in.state(target)
	idx := st.calls.Add(1) - 1
	var d Decision
	for ri, rule := range in.script.Rules {
		if !rule.matches(target, idx) {
			continue
		}
		if rule.P > 0 && unit(in.script.Seed, target, uint64(ri), idx) >= rule.P {
			continue
		}
		d.Latency += rule.Latency
		if rule.Jitter > 0 {
			d.Latency += time.Duration(unit(in.script.Seed, target, uint64(ri)+1<<32, idx) * float64(rule.Jitter))
		}
		d.Err = d.Err || rule.Error
		d.Hang = d.Hang || rule.Hang
	}
	if d.Hang {
		st.hangs.Add(1)
	} else if d.Err {
		st.errs.Add(1)
	}
	if d.Latency > 0 {
		st.latApply.Add(1)
	}
	return d
}

// Calls reports how many calls the target has seen.
func (in *Injector) Calls(target string) uint64 { return in.state(target).calls.Load() }

// InjectedErrors reports how many of the target's calls were scripted
// to fail (hangs counted separately).
func (in *Injector) InjectedErrors(target string) uint64 { return in.state(target).errs.Load() }

// InjectedHangs reports how many of the target's calls were scripted to
// hang.
func (in *Injector) InjectedHangs(target string) uint64 { return in.state(target).hangs.Load() }

// Targets returns every target that has seen at least one call.
func (in *Injector) Targets() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.states))
	for t := range in.states {
		out = append(out, t)
	}
	return out
}

// unit hashes (seed, target, salt, idx) to a uniform float64 in [0, 1)
// — the injector's only source of randomness, so every draw is
// reproducible from the script seed alone.
func unit(seed int64, target string, salt, idx uint64) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(target); i++ {
		h = (h ^ uint64(target[i])) * 0x100000001b3
	}
	h ^= salt * 0xbf58476d1ce4e5b9
	h ^= idx * 0x94d049bb133111eb
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
