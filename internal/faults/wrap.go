package faults

import (
	"context"
	"net/http"

	"hydra/internal/platform"
	"hydra/internal/serve"
	"hydra/internal/serve/router"
)

// Backend wraps a router.Backend with scripted faults. It deliberately
// does NOT implement router.TopKAppender even when the inner backend
// does: a faulty replica must exercise the router's timed network path
// (per-attempt timeouts, hedging), not the in-process fast path.
type Backend struct {
	Inner  router.Backend
	Inj    *Injector
	Target string
}

func (b *Backend) Name() string { return b.Target }

func (b *Backend) decide(ctx context.Context) error {
	return b.Inj.Decide(b.Target).Apply(ctx, b.Target)
}

func (b *Backend) Health(ctx context.Context) (router.Health, error) {
	if err := b.decide(ctx); err != nil {
		return router.Health{}, err
	}
	return b.Inner.Health(ctx)
}

func (b *Backend) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	if err := b.decide(ctx); err != nil {
		return nil, 0, err
	}
	return b.Inner.ScoreBatch(ctx, pa, pb, pairs)
}

func (b *Backend) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	if err := b.decide(ctx); err != nil {
		return nil, 0, err
	}
	return b.Inner.TopK(ctx, pa, a, pb, k)
}

// FlipBackend switches from Before to After once its target's call
// counter reaches At — the deterministic swap-mid-scatter: a fan-out
// whose first shards answer from Before while later shards already
// answer from After, regardless of goroutine scheduling.
type FlipBackend struct {
	Before, After router.Backend
	At            uint64
	Inj           *Injector
	Target        string
}

func (f *FlipBackend) pick() router.Backend {
	// Decide consumes the shared per-target counter, so a FlipBackend
	// layered over a faults.Backend with the same target advances one
	// stream — keep targets distinct when composing.
	if f.Inj.state(f.Target).calls.Add(1)-1 >= f.At {
		return f.After
	}
	return f.Before
}

func (f *FlipBackend) Name() string { return f.Target }

func (f *FlipBackend) Health(ctx context.Context) (router.Health, error) {
	return f.pick().Health(ctx)
}

func (f *FlipBackend) ScoreBatch(ctx context.Context, pa, pb platform.ID, pairs [][2]int) ([]float64, uint64, error) {
	return f.pick().ScoreBatch(ctx, pa, pb, pairs)
}

func (f *FlipBackend) TopK(ctx context.Context, pa platform.ID, a int, pb platform.ID, k int) ([]serve.Scored, uint64, error) {
	return f.pick().TopK(ctx, pa, a, pb, k)
}

// Middleware wraps an HTTP handler (a hydra-serve front-end) with
// scripted faults: injected latency delays the response, injected
// errors answer 503 before the handler runs — the wire-level twin of
// Backend for chaos against live processes.
func Middleware(next http.Handler, inj *Injector, target string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := inj.Decide(target).Apply(r.Context(), target); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"injected fault"}` + "\n"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// RoundTripper injects scripted faults on the client side of an HTTP
// backend: latency before the request leaves, errors instead of a
// response — network partitions without a network.
type RoundTripper struct {
	Base   http.RoundTripper
	Inj    *Injector
	Target string
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := rt.Inj.Decide(rt.Target).Apply(req.Context(), rt.Target); err != nil {
		return nil, err
	}
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
