package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPowerIterationDiagonal(t *testing.T) {
	m := NewMatrixFrom([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	lambda, v, err := PowerIteration(m, 3, PowerIterOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-5) > 1e-6 {
		t.Fatalf("lambda = %v, want 5", lambda)
	}
	if math.Abs(math.Abs(v[0])-1) > 1e-5 {
		t.Fatalf("eigenvector = %v, want e1", v)
	}
	if v[0] < 0 {
		t.Fatal("sign convention violated: largest entry should be positive")
	}
}

func TestPowerIterationSymmetric(t *testing.T) {
	// A = Q diag(4,1) Qᵀ with known Q (rotation by 30°).
	c, s := math.Cos(math.Pi/6), math.Sin(math.Pi/6)
	q := NewMatrixFrom([][]float64{{c, -s}, {s, c}})
	d := NewMatrixFrom([][]float64{{4, 0}, {0, 1}})
	a := q.Mul(d).Mul(q.T())
	lambda, v, err := PowerIteration(a, 2, PowerIterOpts{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-4) > 1e-6 {
		t.Fatalf("lambda = %v, want 4", lambda)
	}
	// Eigenvector must be ±(c,s).
	if math.Abs(math.Abs(v[0])-c) > 1e-5 || math.Abs(math.Abs(v[1])-s) > 1e-5 {
		t.Fatalf("eigenvector = %v, want (%v,%v)", v, c, s)
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	m := NewMatrix(3, 3)
	lambda, _, err := PowerIteration(m, 3, PowerIterOpts{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lambda != 0 {
		t.Fatalf("lambda = %v, want 0", lambda)
	}
}

func TestPowerIterationEmpty(t *testing.T) {
	if _, _, err := PowerIteration(NewMatrix(0, 0), 0, PowerIterOpts{}); err == nil {
		t.Fatal("expected error for empty operator")
	}
}

func TestPowerIterationSparse(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	b.Set(0, 0, 3)
	b.Set(1, 1, 1)
	lambda, _, err := PowerIteration(b.Build(), 2, PowerIterOpts{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-3) > 1e-6 {
		t.Fatalf("sparse lambda = %v, want 3", lambda)
	}
}

func TestConjugateGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 12
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Mul(b.T()).AddDiag(2)
	x := randVec(rng, n)
	rhs := a.MulVec(x)
	got, iters, err := ConjugateGradient(a, rhs, nil, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sub(x).Norm() > 1e-6 {
		t.Fatalf("CG residual too large after %d iters: %v", iters, got.Sub(x).Norm())
	}
}

func TestConjugateGradientWarmStart(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 1}, {1, 3}})
	x := Vector{1, 2}
	rhs := a.MulVec(x)
	got, iters, err := ConjugateGradient(a, rhs, x.Clone(), 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 {
		t.Fatalf("warm start at solution should take 0 iterations, took %d", iters)
	}
	if got.Sub(x).Norm() > 1e-10 {
		t.Fatalf("warm-start solution drifted: %v", got)
	}
}

func TestConjugateGradientBadX0(t *testing.T) {
	a := Identity(2)
	if _, _, err := ConjugateGradient(a, Vector{1, 2}, Vector{1}, 5, 1e-8); err == nil {
		t.Fatal("expected error on x0 length mismatch")
	}
}

func TestConjugateGradientNonSPD(t *testing.T) {
	a := NewMatrixFrom([][]float64{{0, 1}, {1, 0}}) // indefinite
	_, _, err := ConjugateGradient(a, Vector{1, -1}, nil, 50, 1e-10)
	if err == nil {
		t.Fatal("expected CG to report non-positive curvature")
	}
}

// Property: power iteration's Rayleigh quotient upper-bounds the quotient of
// any random probe vector (dominant eigenvalue is the max of the quotient).
func TestPowerIterationDominanceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 3 + int(seed)%4
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Mul(b.T()) // PSD -> dominant eigenvalue is max Rayleigh quotient
		lambda, _, err := PowerIteration(a, n, PowerIterOpts{Seed: int64(seed), MaxIter: 5000, Tol: 1e-12})
		if err != nil {
			return false
		}
		probe := randVec(rng, n)
		q := probe.Dot(a.MulVec(probe)) / probe.Dot(probe)
		return lambda >= q-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
