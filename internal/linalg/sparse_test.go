package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseBuildAndAt(t *testing.T) {
	b := NewSparseBuilder(3, 3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3) // duplicates sum
	b.Add(2, 0, -1)
	b.Set(1, 1, 5)
	s := b.Build()
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	if s.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", s.At(0, 1))
	}
	if s.At(1, 1) != 5 || s.At(2, 0) != -1 || s.At(2, 2) != 0 {
		t.Fatal("sparse values wrong")
	}
}

func TestSparseSetZeroDeletes(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	b.Set(0, 0, 1)
	b.Set(0, 0, 0)
	if b.NNZ() != 0 {
		t.Fatalf("NNZ after delete = %d", b.NNZ())
	}
	b.Add(1, 1, 0) // adding zero is a no-op
	if b.NNZ() != 0 {
		t.Fatalf("NNZ after zero add = %d", b.NNZ())
	}
}

func TestSparseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparseBuilder(2, 2).Add(2, 0, 1)
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewSparseBuilder(10, 7)
	for k := 0; k < 25; k++ {
		b.Add(rng.Intn(10), rng.Intn(7), rng.NormFloat64())
	}
	s := b.Build()
	d := s.Dense()
	v := randVec(rng, 7)
	sv := s.MulVec(v)
	dv := d.MulVec(v)
	if sv.Sub(dv).Norm() > 1e-12 {
		t.Fatalf("sparse/dense MulVec disagree: %v vs %v", sv, dv)
	}
}

func TestSparseRowSums(t *testing.T) {
	b := NewSparseBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 1, -4)
	s := b.Build()
	rs := s.RowSums()
	if rs[0] != 3 || rs[1] != -4 {
		t.Fatalf("RowSums = %v", rs)
	}
}

func TestSparseDensity(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	b.Add(0, 0, 1)
	s := b.Build()
	if s.Density() != 0.25 {
		t.Fatalf("Density = %v", s.Density())
	}
	if NewSparseBuilder(0, 0).Build().Density() != 0 {
		t.Fatal("empty density should be 0")
	}
}

func TestLaplacianMulVec(t *testing.T) {
	// Symmetric affinity matrix of a 3-node path graph.
	b := NewSparseBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 2, 1)
	b.Add(2, 1, 1)
	s := b.Build()
	// Laplacian of the constant vector must be zero.
	out := s.LaplacianMulVec(Vector{1, 1, 1})
	if out.Norm() > 1e-12 {
		t.Fatalf("L*1 = %v, want 0", out)
	}
	// Quadratic form must equal sum of squared differences over edges.
	v := Vector{1, 2, 4}
	got := v.Dot(s.LaplacianMulVec(v))
	want := math.Pow(1-2, 2) + math.Pow(2-4, 2) // each edge once per direction sums to 2x, qf = sum_ij w_ij (vi-vj)^2 / ...
	// For symmetric W, vᵀLv = ½ Σ_ij w_ij (v_i - v_j)².  Here both directions stored: Σ = 2*(1+4) = 10, half = 5.
	want = 5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("quadratic form = %v, want %v", got, want)
	}
}

// Property: Laplacian quadratic form is non-negative for random symmetric
// non-negative affinity matrices (positive semidefiniteness, the property
// the paper invokes for Θ = D − M).
func TestLaplacianPSDProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 3 + int(seed)%6
		b := NewSparseBuilder(n, n)
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			w := rng.Float64()
			b.Add(i, j, w)
			b.Add(j, i, w)
		}
		s := b.Build()
		v := randVec(rng, n)
		return v.Dot(s.LaplacianMulVec(v)) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
