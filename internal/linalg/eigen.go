package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// PowerIterOpts controls PowerIteration.
type PowerIterOpts struct {
	MaxIter int     // maximum iterations (default 1000)
	Tol     float64 // convergence tolerance on the eigenvector delta (default 1e-10)
	Seed    int64   // PRNG seed for the starting vector
}

func (o *PowerIterOpts) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
}

// MulVeccer is any linear operator that can multiply a vector; both dense
// Matrix and Sparse satisfy it. PowerIteration only needs this much.
type MulVeccer interface {
	MulVec(Vector) Vector
}

// PowerIteration computes the dominant eigenvalue/eigenvector pair of the
// operator a (assumed to have a real dominant eigenvalue, which holds for
// the symmetric non-negative affinity matrices HYDRA builds). The returned
// eigenvector has unit norm and, following the paper's use as a relaxed
// cluster indicator, is sign-flipped so that its largest-magnitude entry
// is positive.
func PowerIteration(a MulVeccer, n int, opts PowerIterOpts) (float64, Vector, error) {
	opts.defaults()
	if n <= 0 {
		return 0, nil, fmt.Errorf("linalg: power iteration on empty operator")
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	v := NewVector(n)
	for i := range v {
		v[i] = rng.Float64() + 0.1 // strictly positive start helps non-negative matrices
	}
	v.Normalize()
	lambda := 0.0
	for iter := 0; iter < opts.MaxIter; iter++ {
		w := a.MulVec(v)
		nw := w.Norm()
		if nw == 0 {
			// a annihilates v: the dominant eigenvalue within this subspace is 0.
			return 0, v, nil
		}
		w.Scale(1 / nw)
		lambda = w.Dot(a.MulVec(w))
		delta := 0.0
		for i := range w {
			d := math.Abs(w[i] - v[i])
			if d > delta {
				delta = d
			}
		}
		v = w
		if delta < opts.Tol {
			break
		}
	}
	// Canonical sign: largest-magnitude entry positive.
	_, idx := absMaxIdx(v)
	if idx >= 0 && v[idx] < 0 {
		v.Scale(-1)
	}
	return lambda, v, nil
}

func absMaxIdx(v Vector) (float64, int) {
	best, idx := -1.0, -1
	for i, x := range v {
		if a := math.Abs(x); a > best {
			best, idx = a, i
		}
	}
	return best, idx
}

// ConjugateGradient solves a x = b for a symmetric positive-definite
// operator a using CG, starting from x0 (nil means zero). It is the
// iterative fallback for large kernel systems where a dense Cholesky would
// not fit.
func ConjugateGradient(a MulVeccer, b Vector, x0 Vector, maxIter int, tol float64) (Vector, int, error) {
	n := len(b)
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := NewVector(n)
	if x0 != nil {
		if len(x0) != n {
			return nil, 0, fmt.Errorf("linalg: CG x0 length %d, want %d", len(x0), n)
		}
		x = x0.Clone()
	}
	r := b.Sub(a.MulVec(x))
	p := r.Clone()
	rs := r.Dot(r)
	bnorm := b.Norm()
	if bnorm == 0 {
		bnorm = 1
	}
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rs)/bnorm < tol {
			return x, k, nil
		}
		ap := a.MulVec(p)
		denom := p.Dot(ap)
		if denom <= 0 {
			return nil, k, fmt.Errorf("linalg: CG detected non-positive curvature %g at iter %d (operator not SPD?)", denom, k)
		}
		alpha := rs / denom
		x.AddScaled(alpha, p)
		r.AddScaled(-alpha, ap)
		rsNew := r.Dot(r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, maxIter, nil
}
