// Package linalg provides the small dense/sparse linear-algebra substrate
// used by HYDRA's learning machinery: vectors, matrices, CSR sparse
// matrices, Cholesky factorization, conjugate gradient, and power
// iteration for principal eigenvectors.
//
// Everything is float64 and pure Go. Shapes are checked eagerly and
// violations panic: a shape mismatch is a programming error, not a
// recoverable condition.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the l1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute entry of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every entry of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AddScaled adds a*w to v in place (v += a*w) and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Sub returns v-w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v+w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Normalize scales v to unit Euclidean norm in place and returns v.
// A zero vector is left unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum entry and its index; (-Inf, -1) for empty v.
func (v Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Min returns the minimum entry and its index; (+Inf, -1) for empty v.
func (v Vector) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// SqDist returns the squared Euclidean distance between v and w.
func SqDist(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Fill sets every entry of v to a and returns v.
func (v Vector) Fill(a float64) Vector {
	for i := range v {
		v[i] = a
	}
	return v
}
