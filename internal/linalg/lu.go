package linalg

import (
	"fmt"
	"math"
)

// LU is an LU factorization with partial pivoting of a square matrix:
// P·A = L·U. It solves the general (non-symmetric) linear systems arising
// in HYDRA's dual assembly, where A = 2γ_L·I + c·(D−M)·K is a product of a
// Laplacian and a kernel matrix and therefore not symmetric.
type LU struct {
	lu   *Matrix
	perm []int
	sign int
}

// Factorize computes the LU decomposition of a (a is not modified).
// Singular matrices (pivot below tiny) return an error.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at/below diagonal.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if p != col {
			swapRows(lu, p, col)
			perm[p], perm[col] = perm[col], perm[p]
			sign = -sign
		}
		pivot := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / pivot
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.Data[r*n : (r+1)*n]
			rowC := lu.Data[col*n : (col+1)*n]
			for c := col + 1; c < n; c++ {
				rowR[c] -= f * rowC[c]
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves A x = b for one right-hand side.
func (f *LU) Solve(b Vector) Vector {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LU solve length %d, want %d", len(b), n))
	}
	x := NewVector(n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveMatrix solves A X = B column-wise, where B is n×m.
func (f *LU) SolveMatrix(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: LU SolveMatrix rows %d, want %d", b.Rows, n))
	}
	out := NewMatrix(n, b.Cols)
	col := NewVector(n)
	for c := 0; c < b.Cols; c++ {
		for r := 0; r < n; r++ {
			col[r] = b.At(r, c)
		}
		x := f.Solve(col)
		for r := 0; r < n; r++ {
			out.Set(r, c, x[r])
		}
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
