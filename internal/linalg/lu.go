package linalg

import (
	"fmt"
	"math"

	"hydra/internal/parallel"
)

// LU is an LU factorization with partial pivoting of a square matrix:
// P·A = L·U. It solves the general (non-symmetric) linear systems arising
// in HYDRA's dual assembly, where A = 2γ_L·I + c·(D−M)·K is a product of a
// Laplacian and a kernel matrix and therefore not symmetric.
type LU struct {
	lu   *Matrix
	perm []int
	sign int
}

// luParallelMinRows is the smallest trailing submatrix FactorizeWorkers
// fans out: below it the per-column barrier costs more than the update.
const luParallelMinRows = 96

// Factorize computes the LU decomposition of a (a is not modified).
// Singular matrices (pivot below tiny) return an error. Factorize is
// FactorizeWorkers with one worker; both produce identical factors.
func Factorize(a *Matrix) (*LU, error) { return FactorizeWorkers(a, 1) }

// FactorizeWorkers is Factorize with the trailing-submatrix update of each
// elimination column fanned out over the given worker count (≤ 0 = all
// cores). Determinism: the pivot search, row swap and pivot value are
// fixed before the fan-out, every eliminated row is owned by exactly one
// task, and each row update reads only the frozen pivot row — so the
// factors, permutation and sign are bit-identical at any worker count.
func FactorizeWorkers(a *Matrix, workers int) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	return factorizeInPlace(a.Clone(), workers)
}

// FactorizeInPlaceWorkers is FactorizeWorkers without the defensive copy:
// it consumes a, overwriting it with the packed L/U factors (a must not be
// used afterwards). Callers that build A as a throwaway scratch matrix —
// the reweight rounds rebuilding A from the hoisted L·K product — save an
// n×n allocation and copy per call; the factors are bit-identical to
// FactorizeWorkers on the same input.
func FactorizeInPlaceWorkers(a *Matrix, workers int) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	return factorizeInPlace(a, workers)
}

// factorizeInPlace factors lu, which it owns, storing L and U packed in
// place with partial pivoting.
func factorizeInPlace(lu *Matrix, workers int) (*LU, error) {
	n := lu.Rows
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	w := parallel.Workers(workers)
	// elimOne eliminates row r against pivot row `col`: computes and
	// stores the multiplier, then subtracts f·rowC from the trailing row.
	// Rows whose multiplier is exactly zero keep the classic skip (0·v
	// could manufacture NaN from an Inf entry).
	elimOne := func(r, col int, pivot float64, rowC []float64) {
		f := lu.Data[r*n+col] / pivot
		lu.Data[r*n+col] = f
		if f == 0 {
			return
		}
		rowR := lu.Data[r*n+col+1 : (r+1)*n]
		for c, v := range rowC {
			rowR[c] -= f * v
		}
	}
	// elimQuad eliminates rows [r0, r1): full quads run one fused pass
	// that streams the pivot row once for four rows with four independent
	// FMA chains. Each element (r,c) still receives its single
	// `rowR[c] -= f·rowC[c]` update, so the fusion changes cache traffic
	// and ILP, never the bits; any zero multiplier in a quad falls back to
	// the skipping one-row path.
	elimQuad := func(r0, r1, col int, pivot float64, rowC []float64) {
		r := r0
		for ; r+4 <= r1; r += 4 {
			f0 := lu.Data[r*n+col] / pivot
			f1 := lu.Data[(r+1)*n+col] / pivot
			f2 := lu.Data[(r+2)*n+col] / pivot
			f3 := lu.Data[(r+3)*n+col] / pivot
			if f0 == 0 || f1 == 0 || f2 == 0 || f3 == 0 {
				elimOne(r, col, pivot, rowC)
				elimOne(r+1, col, pivot, rowC)
				elimOne(r+2, col, pivot, rowC)
				elimOne(r+3, col, pivot, rowC)
				continue
			}
			lu.Data[r*n+col] = f0
			lu.Data[(r+1)*n+col] = f1
			lu.Data[(r+2)*n+col] = f2
			lu.Data[(r+3)*n+col] = f3
			// Reslicing to len(rowC) lets the compiler drop the bounds
			// checks inside the fused loop.
			rowR0 := lu.Data[r*n+col+1 : (r+1)*n][:len(rowC)]
			rowR1 := lu.Data[(r+1)*n+col+1 : (r+2)*n][:len(rowC)]
			rowR2 := lu.Data[(r+2)*n+col+1 : (r+3)*n][:len(rowC)]
			rowR3 := lu.Data[(r+3)*n+col+1 : (r+4)*n][:len(rowC)]
			for c, v := range rowC {
				rowR0[c] -= f0 * v
				rowR1[c] -= f1 * v
				rowR2[c] -= f2 * v
				rowR3[c] -= f3 * v
			}
		}
		for ; r < r1; r++ {
			elimOne(r, col, pivot, rowC)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at/below diagonal.
		p := col
		maxAbs := math.Abs(lu.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.Data[r*n+col]); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if p != col {
			swapRows(lu, p, col)
			perm[p], perm[col] = perm[col], perm[p]
			sign = -sign
		}
		pivot := lu.Data[col*n+col]
		rows := n - col - 1
		if rows == 0 {
			continue
		}
		rowC := lu.Data[col*n+col+1 : (col+1)*n]
		if w == 1 || rows < luParallelMinRows {
			elimQuad(col+1, n, col, pivot, rowC)
		} else {
			// One contiguous row span per worker (not one task per quad:
			// funneling ~rows/4 micro-tasks through the pool's counter
			// would cost more than the update itself near the gate). Each
			// span runs the fused kernel over disjoint rows and reads only
			// the frozen pivot row, fixed before the fan-out.
			spans := min(w, (rows+3)/4)
			parallel.For(workers, spans, func(g int) {
				lo := col + 1 + g*rows/spans
				hi := col + 1 + (g+1)*rows/spans
				elimQuad(lo, hi, col, pivot, rowC)
			})
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves A x = b for one right-hand side.
func (f *LU) Solve(b Vector) Vector {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LU solve length %d, want %d", len(b), n))
	}
	x := NewVector(n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveMatrix solves A X = B column-wise, where B is n×m. It is
// SolveMatrixWorkers with one worker; both produce identical solutions.
func (f *LU) SolveMatrix(b *Matrix) *Matrix { return f.SolveMatrixWorkers(b, 1) }

// SolveMatrixWorkers solves A X = B with the independent right-hand-side
// columns distributed over the given worker count (≤ 0 = all cores). The
// columns are split into contiguous chunks, one scratch vector per chunk
// (not a shared buffer), and every column's substitution runs exactly as
// in the one-RHS Solve — so X is bit-identical at any worker count.
func (f *LU) SolveMatrixWorkers(b *Matrix, workers int) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: LU SolveMatrix rows %d, want %d", b.Rows, n))
	}
	out := NewMatrix(n, b.Cols)
	chunks := parallel.Workers(workers)
	if chunks > b.Cols {
		chunks = b.Cols
	}
	parallel.For(workers, chunks, func(g int) {
		lo, hi := g*b.Cols/chunks, (g+1)*b.Cols/chunks
		col := NewVector(n) // per-chunk scratch, reused across its columns
		for c := lo; c < hi; c++ {
			for r := 0; r < n; r++ {
				col[r] = b.At(r, c)
			}
			x := f.Solve(col)
			for r := 0; r < n; r++ {
				out.Set(r, c, x[r])
			}
		}
	})
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
