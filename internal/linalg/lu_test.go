package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolve(t *testing.T) {
	a := NewMatrixFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	// Known system with solution (2, 3, -1).
	x := f.Solve(Vector{8, -11, -3})
	want := Vector{2, 3, -1}
	if x.Sub(want).Norm() > 1e-10 {
		t.Fatalf("LU solve = %v, want %v", x, want)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error on non-square matrix")
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err == nil {
		t.Fatal("expected error on singular matrix")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(Vector{3, 7})
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("pivoted solve = %v", x)
	}
	if math.Abs(f.Det()-(-1)) > 1e-12 {
		t.Fatalf("det = %v, want -1", f.Det())
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	a.AddDiag(3)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	// A * X = A (so X should be I).
	x := f.SolveMatrix(a)
	id := Identity(n)
	for i := range x.Data {
		if math.Abs(x.Data[i]-id.Data[i]) > 1e-9 {
			t.Fatalf("A⁻¹A != I at %d: %v", i, x.Data[i])
		}
	}
}

func TestLUDetDiagonal(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Fatalf("det = %v, want 6", f.Det())
	}
}

// Property: LU solve inverts multiplication for random well-conditioned
// matrices.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(seed)%8
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		a.AddDiag(5) // keep well-conditioned
		lu, err := Factorize(a)
		if err != nil {
			return false
		}
		x := randVec(rng, n)
		got := lu.Solve(a.MulVec(x))
		return got.Sub(x).Norm() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
