package linalg

import (
	"fmt"
	"sort"
)

// Sparse is a compressed-sparse-row (CSR) matrix. It is the storage format
// for HYDRA's structure-consistency matrix M, which the paper reports to be
// <1% dense on real data.
type Sparse struct {
	RowsN, ColsN int
	RowPtr       []int     // len RowsN+1
	ColIdx       []int     // len nnz
	Val          []float64 // len nnz
}

// SparseBuilder accumulates coordinate-format entries and compiles them to
// CSR. Duplicate (i,j) entries are summed.
type SparseBuilder struct {
	rows, cols int
	entries    map[[2]int]float64
}

// NewSparseBuilder returns a builder for a rows-by-cols sparse matrix.
func NewSparseBuilder(rows, cols int) *SparseBuilder {
	return &SparseBuilder{rows: rows, cols: cols, entries: make(map[[2]int]float64)}
}

// Add accumulates v into entry (i,j).
func (b *SparseBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("linalg: sparse index (%d,%d) out of %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries[[2]int{i, j}] += v
}

// Set overwrites entry (i,j) with v.
func (b *SparseBuilder) Set(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("linalg: sparse index (%d,%d) out of %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		delete(b.entries, [2]int{i, j})
		return
	}
	b.entries[[2]int{i, j}] = v
}

// NNZ returns the number of stored entries so far.
func (b *SparseBuilder) NNZ() int { return len(b.entries) }

// Build compiles the accumulated entries into a CSR matrix.
func (b *SparseBuilder) Build() *Sparse {
	type coo struct {
		i, j int
		v    float64
	}
	list := make([]coo, 0, len(b.entries))
	for k, v := range b.entries {
		list = append(list, coo{k[0], k[1], v})
	}
	sort.Slice(list, func(a, c int) bool {
		if list[a].i != list[c].i {
			return list[a].i < list[c].i
		}
		return list[a].j < list[c].j
	})
	s := &Sparse{
		RowsN:  b.rows,
		ColsN:  b.cols,
		RowPtr: make([]int, b.rows+1),
		ColIdx: make([]int, len(list)),
		Val:    make([]float64, len(list)),
	}
	for idx, e := range list {
		s.RowPtr[e.i+1]++
		s.ColIdx[idx] = e.j
		s.Val[idx] = e.v
	}
	for i := 0; i < b.rows; i++ {
		s.RowPtr[i+1] += s.RowPtr[i]
	}
	return s
}

// NNZ returns the number of stored non-zeros.
func (s *Sparse) NNZ() int { return len(s.Val) }

// At returns entry (i,j) (O(log nnz_row) binary search).
func (s *Sparse) At(i, j int) float64 {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	idx := sort.SearchInts(s.ColIdx[lo:hi], j) + lo
	if idx < hi && s.ColIdx[idx] == j {
		return s.Val[idx]
	}
	return 0
}

// MulVec returns s*v as a new vector.
func (s *Sparse) MulVec(v Vector) Vector {
	if s.ColsN != len(v) {
		panic(fmt.Sprintf("linalg: sparse MulVec shape mismatch %dx%d * %d", s.RowsN, s.ColsN, len(v)))
	}
	out := NewVector(s.RowsN)
	for i := 0; i < s.RowsN; i++ {
		var acc float64
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			acc += s.Val[idx] * v[s.ColIdx[idx]]
		}
		out[i] = acc
	}
	return out
}

// RowSums returns the vector of per-row sums (the degree vector used to
// build the Laplacian D−M).
func (s *Sparse) RowSums() Vector {
	out := NewVector(s.RowsN)
	for i := 0; i < s.RowsN; i++ {
		var acc float64
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			acc += s.Val[idx]
		}
		out[i] = acc
	}
	return out
}

// Dense materializes s as a dense matrix (for tests and small problems).
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.RowsN, s.ColsN)
	for i := 0; i < s.RowsN; i++ {
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			m.Set(i, s.ColIdx[idx], s.Val[idx])
		}
	}
	return m
}

// Density returns nnz / (rows*cols), or 0 for an empty shape.
func (s *Sparse) Density() float64 {
	total := s.RowsN * s.ColsN
	if total == 0 {
		return 0
	}
	return float64(s.NNZ()) / float64(total)
}

// LaplacianMulVec computes (D - S) v where D = diag(row sums of S),
// without materializing the Laplacian. This is the operator HYDRA applies
// inside its regularizer wᵀXᵀ(D−M)Xw.
func (s *Sparse) LaplacianMulVec(v Vector) Vector {
	out := s.MulVec(v).Scale(-1)
	d := s.RowSums()
	for i := range out {
		out[i] += d[i] * v[i]
	}
	return out
}
