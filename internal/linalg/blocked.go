// Blocked, order-preserving dense kernels.
//
// The serial O(n³) linear algebra behind HYDRA's dual training (Eqns
// 15–17: the L·K product, the LU factorization of A and the multi-RHS
// solve for Z = A⁻¹JᵀY) dominates wall-clock once the pairwise stages run
// in parallel. This file provides the cache-blocked, row-parallel kernels
// behind Matrix.Mul, Matrix.MulVec and Matrix.T, with an explicit worker
// knob (MulWorkers, MulVecWorkers, TWorkers) driven by internal/parallel.
//
// Determinism contract. Floating-point addition is not associative, so the
// tiling is chosen to never reorder an accumulation:
//
//   - the only reduction dimension in a product is k, and for every output
//     element (i,j) the k-loop still runs 0,1,…,K−1 in ascending order —
//     the k-tile loop is the outermost tile loop and the in-tile k-loop is
//     innermost-but-one, so tiles of k are visited in order and entries
//     within a tile are visited in order;
//   - i (output rows) and j (output columns) index independent output
//     elements: splitting them into parallel row blocks and cache tiles
//     changes which element is computed when, never the value computed;
//   - every output element is written by exactly one goroutine (rows are
//     partitioned into disjoint blocks), so there are no write races and
//     no merge step.
//
// Consequently Mul/MulVec/T return bit-for-bit identical results at any
// worker count — the same contract internal/parallel established for the
// pairwise stages — and also reproduce the pre-tiling serial loops exactly
// (same per-element operation order, including the a==0 skip in Mul).
package linalg

import (
	"fmt"

	"hydra/internal/parallel"
)

// Tile geometry. The B-panel staged per (k,j) tile is mulKTile×mulColTile
// floats (256 KiB) and is reused across the mulRowBlock rows of a task, so
// B is streamed from memory once per row block instead of once per row.
// The row block is also the unit of parallel work: blocks are handed out
// dynamically, so ragged last tiles balance across workers.
const (
	mulRowBlock = 8
	mulKTile    = 128
	mulColTile  = 256
	// vecRowBlock rows of a matrix-vector product form one parallel task;
	// each row is an independent dot product, so the only tuning concern
	// is task granularity.
	vecRowBlock = 64
	// transTile is the square tile of the blocked transpose: source reads
	// are row-major while destination writes stride by Rows, so confining
	// both to a 64×64 tile (32 KiB) keeps the write target cache-resident.
	transTile = 64
)

// MulWorkers returns m*n, computed by the blocked kernel with the given
// worker count (≤ 0 = all cores). The result is bit-identical at any
// worker count; Mul is MulWorkers with one worker.
//
// Inner-kernel shape: for each output row and k-tile, the nonzero A
// entries are gathered once in ascending k order (structural zeros —
// Laplacian rows — skip their whole B-row pass, exactly like the classic
// loop), then applied to the output row four k-terms at a time:
//
//	s := orow[j] + a0*b0[j]; s += a1*b1[j]; s += a2*b2[j]; s += a3*b3[j]
//
// Every += above is a separately rounded float64 add in ascending k
// order — the identical operation sequence the one-k-at-a-time loop
// performs — so the fusion changes memory traffic (one orow load+store
// per four terms instead of four) but never a bit of the result.
func (m *Matrix) MulWorkers(n *Matrix, workers int) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	nc := n.Cols
	blocks := (m.Rows + mulRowBlock - 1) / mulRowBlock
	parallel.For(workers, blocks, func(blk int) {
		var kIdx [mulKTile]int
		var kVal [mulKTile]float64
		i0 := blk * mulRowBlock
		i1 := min(i0+mulRowBlock, m.Rows)
		// k tiles ascend in the outermost loop and k ascends inside each
		// tile, so each output element accumulates its k-terms in exactly
		// the order of the un-tiled loop.
		for k0 := 0; k0 < m.Cols; k0 += mulKTile {
			k1 := min(k0+mulKTile, m.Cols)
			for i := i0; i < i1; i++ {
				arow := m.Data[i*m.Cols : (i+1)*m.Cols]
				nnz := 0
				for k := k0; k < k1; k++ {
					if av := arow[k]; av != 0 {
						kIdx[nnz], kVal[nnz] = k, av
						nnz++
					}
				}
				if nnz == 0 {
					continue
				}
				for j0 := 0; j0 < nc; j0 += mulColTile {
					j1 := min(j0+mulColTile, nc)
					orow := out.Data[i*nc+j0 : i*nc+j1]
					g := 0
					for ; g+4 <= nnz; g += 4 {
						a0, a1, a2, a3 := kVal[g], kVal[g+1], kVal[g+2], kVal[g+3]
						b0 := n.Data[kIdx[g]*nc+j0 : kIdx[g]*nc+j1]
						b1 := n.Data[kIdx[g+1]*nc+j0 : kIdx[g+1]*nc+j1]
						b2 := n.Data[kIdx[g+2]*nc+j0 : kIdx[g+2]*nc+j1]
						b3 := n.Data[kIdx[g+3]*nc+j0 : kIdx[g+3]*nc+j1]
						for j, bv := range b0 {
							s := orow[j] + a0*bv
							s += a1 * b1[j]
							s += a2 * b2[j]
							s += a3 * b3[j]
							orow[j] = s
						}
					}
					for ; g < nnz; g++ {
						av := kVal[g]
						brow := n.Data[kIdx[g]*nc+j0 : kIdx[g]*nc+j1]
						for j, bv := range brow {
							orow[j] += av * bv
						}
					}
				}
			}
		}
	})
	return out
}

// MulVecWorkers returns m*v with rows computed in parallel blocks (≤ 0 =
// all cores). Each row is one independent dot product accumulated in
// ascending column order, so the result is bit-identical at any worker
// count; MulVec is MulVecWorkers with one worker.
func (m *Matrix) MulVecWorkers(v Vector, workers int) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	blocks := (m.Rows + vecRowBlock - 1) / vecRowBlock
	parallel.For(workers, blocks, func(blk int) {
		i0 := blk * vecRowBlock
		i1 := min(i0+vecRowBlock, m.Rows)
		for i := i0; i < i1; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			var s float64
			for j, x := range row {
				s += x * v[j]
			}
			out[i] = s
		}
	})
	return out
}

// TWorkers returns the transpose, copied tile-by-tile with source row
// strips handed to parallel workers (≤ 0 = all cores). A transpose has no
// arithmetic, so determinism is trivial; the tiling exists purely to keep
// the strided destination writes inside a cache-resident tile. T is
// TWorkers with one worker.
func (m *Matrix) TWorkers(workers int) *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	strips := (m.Rows + transTile - 1) / transTile
	parallel.For(workers, strips, func(s int) {
		i0 := s * transTile
		i1 := min(i0+transTile, m.Rows)
		for j0 := 0; j0 < m.Cols; j0 += transTile {
			j1 := min(j0+transTile, m.Cols)
			for i := i0; i < i1; i++ {
				row := m.Data[i*m.Cols : (i+1)*m.Cols]
				for j := j0; j < j1; j++ {
					out.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	})
	return out
}
