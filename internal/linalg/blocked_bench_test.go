package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the dual-training hot path (`make bench-linalg`).
// Each benchmark carries a `naive` sub-benchmark running the pre-PR serial
// loop, so single-run output already shows the tiling delta; `make
// bench-save` / `make bench-compare` diff two runs benchstat-style. The
// `w4` variants only beat `w1` on multicore hardware — on a 1-CPU CI box
// they measure pure scheduling overhead (expected small).

var benchSizes = []int{256, 512}

func benchMatrix(seed int64, rows, cols int) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMul(b *testing.B) {
	for _, n := range benchSizes {
		a := benchMatrix(1, n, n)
		m := benchMatrix(2, n, n)
		b.Run(fmt.Sprintf("n=%d/naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveMul(a, m)
			}
		})
		b.Run(fmt.Sprintf("n=%d/blocked-w1", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulWorkers(m, 1)
			}
		})
		b.Run(fmt.Sprintf("n=%d/blocked-w4", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulWorkers(m, 4)
			}
		})
	}
}

func BenchmarkFactorize(b *testing.B) {
	for _, n := range benchSizes {
		a := benchMatrix(3, n, n).AddDiag(4)
		b.Run(fmt.Sprintf("n=%d/naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := naiveFactorize(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/w1", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FactorizeWorkers(a, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/w4", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FactorizeWorkers(a, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveMatrix(b *testing.B) {
	for _, n := range benchSizes {
		a := benchMatrix(4, n, n).AddDiag(4)
		f, err := Factorize(a)
		if err != nil {
			b.Fatal(err)
		}
		rhs := benchMatrix(5, n, n/4) // N_l right-hand sides, N_l ≪ n
		b.Run(fmt.Sprintf("n=%d/w1", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.SolveMatrixWorkers(rhs, 1)
			}
		})
		b.Run(fmt.Sprintf("n=%d/w4", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.SolveMatrixWorkers(rhs, 4)
			}
		})
	}
}
