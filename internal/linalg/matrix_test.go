package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %+v", m)
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set failed")
	}
	m.Addf(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Fatal("Addf failed")
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row = %v", r)
	}
}

func TestMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewMatrixFrom([][]float64{{1, 2}, {3}})
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(3)
	v := Vector{1, 2, 3}
	got := id.MulVec(v)
	if got.Sub(v).Norm() != 0 {
		t.Fatalf("I*v = %v", got)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %+v", tr)
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %+v, want %+v", c, want)
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := Vector{1, 1, 1}
	got := m.MulVecT(v)
	if got[0] != 9 || got[1] != 12 {
		t.Fatalf("MulVecT = %v", got)
	}
	// Must agree with explicit transpose.
	want := m.T().MulVec(v)
	if got.Sub(want).Norm() > 1e-12 {
		t.Fatalf("MulVecT disagrees with T().MulVec: %v vs %v", got, want)
	}
}

func TestAddScaleDiag(t *testing.T) {
	m := Identity(2)
	m.AddInPlace(Identity(2))
	if m.At(0, 0) != 2 {
		t.Fatal("AddInPlace failed")
	}
	m.ScaleInPlace(0.5)
	if m.At(1, 1) != 1 {
		t.Fatal("ScaleInPlace failed")
	}
	m.AddDiag(3)
	if m.At(0, 0) != 4 || m.At(0, 1) != 0 {
		t.Fatal("AddDiag failed")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Identity(3).IsSymmetric(0) {
		t.Fatal("identity should be symmetric")
	}
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Fatal("non-square reported symmetric")
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix A = B Bᵀ + I.
	rng := rand.New(rand.NewSource(7))
	n := 8
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Mul(b.T()).AddDiag(1)
	x := randVec(rng, n)
	rhs := a.MulVec(x)
	got, err := a.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sub(x).Norm() > 1e-8 {
		t.Fatalf("Solve residual too large: %v", got.Sub(x).Norm())
	}
}

func TestCholeskyFailsOnIndefinite(t *testing.T) {
	m := NewMatrixFrom([][]float64{{0, 1}, {1, 0}}) // indefinite
	if _, err := m.Cholesky(0); err == nil {
		t.Fatal("expected Cholesky failure on indefinite matrix")
	}
	if _, err := NewMatrix(2, 3).Cholesky(0); err == nil {
		t.Fatal("expected Cholesky failure on non-square matrix")
	}
}

func TestQuadForm(t *testing.T) {
	m := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	if got := m.QuadForm(Vector{1, 2}); got != 14 {
		t.Fatalf("QuadForm = %v, want 14", got)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ on random small matrices.
func TestTransposeOfProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63n(1000)))
		a := NewMatrix(3, 4)
		b := NewMatrix(4, 2)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky reconstructs, L·Lᵀ = A for random SPD A.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(seed)%5
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Mul(b.T()).AddDiag(0.5)
		l, err := a.Cholesky(0)
		if err != nil {
			return false
		}
		rec := l.Mul(l.T())
		for i := range rec.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
