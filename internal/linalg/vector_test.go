package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
}

func TestVectorScaleAddSub(t *testing.T) {
	v := Vector{1, 2}.Clone()
	v.Scale(3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale = %v", v)
	}
	v.AddScaled(2, Vector{1, 1})
	if v[0] != 5 || v[1] != 8 {
		t.Fatalf("AddScaled = %v", v)
	}
	d := v.Sub(Vector{5, 8})
	if d.Norm() != 0 {
		t.Fatalf("Sub = %v", d)
	}
	s := Vector{1, 1}.Add(Vector{2, 3})
	if s[0] != 3 || s[1] != 4 {
		t.Fatalf("Add = %v", s)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Fatalf("Normalize norm = %v", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize() // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero Normalize = %v", z)
	}
}

func TestVectorStats(t *testing.T) {
	v := Vector{1, 5, 3}
	if v.Sum() != 9 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	if v.Mean() != 3 {
		t.Fatalf("Mean = %v", v.Mean())
	}
	if m, i := v.Max(); m != 5 || i != 1 {
		t.Fatalf("Max = %v,%v", m, i)
	}
	if m, i := v.Min(); m != 1 || i != 0 {
		t.Fatalf("Min = %v,%v", m, i)
	}
	var empty Vector
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean = %v", empty.Mean())
	}
	if _, i := empty.Max(); i != -1 {
		t.Fatalf("empty Max idx = %v", i)
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist(Vector{0, 0}, Vector{3, 4}); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestVectorFill(t *testing.T) {
	v := NewVector(3).Fill(7)
	for _, x := range v {
		if x != 7 {
			t.Fatalf("Fill = %v", v)
		}
	}
}

// Property: Cauchy-Schwarz |<v,w>| <= ||v|| ||w||.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := Vector{clampF(a), clampF(b), clampF(c)}
		w := Vector{clampF(d), clampF(e), clampF(g)}
		return math.Abs(v.Dot(w)) <= v.Norm()*w.Norm()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality ||v+w|| <= ||v|| + ||w||.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v := Vector{clampF(a), clampF(b)}
		w := Vector{clampF(c), clampF(d)}
		return v.Add(w).Norm() <= v.Norm()+w.Norm()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// clampF maps arbitrary float64 input (possibly NaN/Inf/huge) into a sane
// bounded range so property tests exercise realistic magnitudes.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func randVec(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
