package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows (deep copied).
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Addf adds v to element (i,j).
func (m *Matrix) Addf(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a Vector sharing the matrix's storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix (single-threaded; see
// TWorkers in blocked.go for the parallel variant).
func (m *Matrix) T() *Matrix { return m.TWorkers(1) }

// MulVec returns m*v as a new vector (single-threaded; see MulVecWorkers
// in blocked.go for the parallel variant — both are bit-identical).
func (m *Matrix) MulVec(v Vector) Vector { return m.MulVecWorkers(v, 1) }

// MulVecT returns mᵀ*v as a new vector.
func (m *Matrix) MulVecT(v Vector) Vector {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("linalg: MulVecT shape mismatch %dx%dᵀ * %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, x := range row {
			out[j] += x * vi
		}
	}
	return out
}

// Mul returns m*n as a new matrix (single-threaded; see MulWorkers in
// blocked.go for the parallel variant — the blocked kernel reproduces the
// classic row-sweep bit-for-bit at any worker count).
func (m *Matrix) Mul(n *Matrix) *Matrix { return m.MulWorkers(n, 1) }

// AddInPlace adds n to m element-wise in place and returns m.
func (m *Matrix) AddInPlace(n *Matrix) *Matrix {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("linalg: Add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
	return m
}

// ScaleInPlace multiplies every entry by a and returns m.
func (m *Matrix) ScaleInPlace(a float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// AddDiag adds a to every diagonal entry and returns m. m must be square.
func (m *Matrix) AddDiag(a float64) *Matrix {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: AddDiag on non-square %dx%d", m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += a
	}
	return m
}

// IsSymmetric reports whether m is symmetric within tolerance tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// QuadForm returns vᵀ m v.
func (m *Matrix) QuadForm(v Vector) float64 {
	return v.Dot(m.MulVec(v))
}

// Cholesky computes the lower-triangular factor L with m = L Lᵀ.
// m must be symmetric positive-definite; otherwise an error is returned.
// The jitter, if positive, is added to the diagonal first (a standard
// regularization when factoring nearly-singular Gram matrices).
func (m *Matrix) Cholesky(jitter float64) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			if i == j {
				s += jitter
			}
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (value %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m x = b given the Cholesky factor l of m.
func SolveCholesky(l *Matrix, b Vector) Vector {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveCholesky shape mismatch %d vs %d", n, len(b)))
	}
	// Forward substitution: L y = b.
	y := NewVector(n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// Solve solves m x = b for symmetric positive-definite m via Cholesky,
// retrying with growing diagonal jitter when the factorization fails.
func (m *Matrix) Solve(b Vector) (Vector, error) {
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		l, err := m.Cholesky(jitter)
		if err == nil {
			return SolveCholesky(l, b), nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("linalg: Solve failed for %dx%d matrix even with jitter", m.Rows, m.Cols)
}
