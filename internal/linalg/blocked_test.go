package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The tests in this file pin the determinism contract of the blocked
// kernels: at every worker count the results must be bit-for-bit equal to
// one worker AND to the pre-tiling reference loops (same per-element
// accumulation order). Run them under -race via `make race` — they match
// the Determinism|Concurrent|Workers pattern.

// naiveMul is the pre-tiling Matrix.Mul (row sweep with the a==0 skip),
// kept as the bit-exact reference and the benchmark baseline.
func naiveMul(m, n *Matrix) *Matrix {
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, b := range nrow {
				orow[j] += a * b
			}
		}
	}
	return out
}

// naiveFactorize is the pre-parallel LU (column loop with serial trailing
// update), the bit-exact reference and benchmark baseline.
func naiveFactorize(a *Matrix) (*LU, error) {
	n := a.Rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxAbs {
				maxAbs, p = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, fmt.Errorf("singular at column %d", col)
		}
		if p != col {
			swapRows(lu, p, col)
			perm[p], perm[col] = perm[col], perm[p]
			sign = -sign
		}
		pivot := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / pivot
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.Data[r*n : (r+1)*n]
			rowC := lu.Data[col*n : (col+1)*n]
			for c := col + 1; c < n; c++ {
				rowR[c] -= f * rowC[c]
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

// rndMatrix fills a rows×cols matrix with Gaussians, zeroing ~10% of the
// entries so the a==0 skip path is exercised.
func rndMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Intn(10) == 0 {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func sameMatrix(t *testing.T, what string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: bit mismatch at flat index %d: %v vs %v", what, i, got.Data[i], want.Data[i])
		}
	}
}

// Odd, tile-straddling shapes on purpose: every boundary case of the
// 8×128×128 tiling (partial row block, partial k tile, partial j tile).
func TestMulWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := rndMatrix(rng, 137, 201)
	b := rndMatrix(rng, 201, 149)
	ref := naiveMul(a, b)
	sameMatrix(t, "Mul(serial) vs naive", a.Mul(b), ref)
	for _, w := range []int{1, 2, 3, 8} {
		sameMatrix(t, "MulWorkers", a.MulWorkers(b, w), ref)
	}
}

func TestMulVecWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := rndMatrix(rng, 157, 93)
	v := randVec(rng, 93)
	ref := m.MulVec(v)
	for _, w := range []int{2, 8} {
		got := m.MulVecWorkers(v, w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("MulVecWorkers(%d)[%d] = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestTransposeWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := rndMatrix(rng, 131, 77)
	ref := m.T()
	for _, w := range []int{2, 8} {
		sameMatrix(t, "TWorkers", m.TWorkers(w), ref)
	}
	// Round trip.
	sameMatrix(t, "T∘T", ref.TWorkers(4), m)
}

// n=200 exceeds luParallelMinRows, so the first hundred columns of the
// 8-worker run genuinely fan out.
func TestFactorizeWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := rndMatrix(rng, 200, 200)
	ref, err := naiveFactorize(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := FactorizeWorkers(a, w)
		if err != nil {
			t.Fatal(err)
		}
		sameMatrix(t, "FactorizeWorkers factors", got.lu, ref.lu)
		if got.sign != ref.sign {
			t.Fatalf("sign %d vs %d", got.sign, ref.sign)
		}
		for i := range ref.perm {
			if got.perm[i] != ref.perm[i] {
				t.Fatalf("perm[%d] = %d, want %d", i, got.perm[i], ref.perm[i])
			}
		}
	}
	// The in-place variant must produce the same factors while consuming
	// its (scratch) input.
	scratch := a.Clone()
	inPlace, err := FactorizeInPlaceWorkers(scratch, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, "FactorizeInPlaceWorkers factors", inPlace.lu, ref.lu)
	if inPlace.lu != scratch {
		t.Fatal("FactorizeInPlaceWorkers did not factor in place")
	}

	// The parallel factors still solve: A·x recovered bit-exactly across
	// worker counts and accurately vs the known x.
	x := randVec(rng, 200)
	rhs := a.MulVec(x)
	f8, _ := FactorizeWorkers(a, 8)
	if got := f8.Solve(rhs); got.Sub(x).Norm() > 1e-6 {
		t.Fatalf("parallel-factor solve residual too large: %v", got.Sub(x).Norm())
	}
}

func TestSolveMatrixWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n, nrhs := 150, 37
	a := rndMatrix(rng, n, n).AddDiag(6) // keep well-conditioned
	b := rndMatrix(rng, n, nrhs)
	f, err := FactorizeWorkers(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.SolveMatrix(b)
	for _, w := range []int{2, 5, 8} {
		sameMatrix(t, "SolveMatrixWorkers", f.SolveMatrixWorkers(b, w), ref)
	}
	// Column c of the multi-RHS solve must equal the one-RHS solve.
	col := NewVector(n)
	for r := 0; r < n; r++ {
		col[r] = b.At(r, 17)
	}
	x := f.Solve(col)
	for r := 0; r < n; r++ {
		if ref.At(r, 17) != x[r] {
			t.Fatalf("SolveMatrix col 17 row %d: %v vs Solve %v", r, ref.At(r, 17), x[r])
		}
	}
}
