// Package blocking implements candidate-pair generation: the rule-based
// filtering of the paper's Section 3, which classifies user pairs into
// ground-truth linked pairs, pre-matched pairs (rule-based filtering over
// partial username overlap, attribute matching and profile-image face
// matching) and unlabeled candidate pairs. Without it the SIL search space
// is the intractable Eqn 2.
package blocking

import (
	"fmt"
	"sort"

	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/text"
	"hydra/internal/vision"
)

// Candidate is a candidate account pair with its cheap blocking score.
type Candidate struct {
	// A and B are local account ids on the two platforms.
	A, B int
	// Score is the cheap rule score used for ranking.
	Score float64
	// PreMatched marks pairs passing the strict rule filter — the paper's
	// "pre-matched pairs by rule-based filtering", used as (noisy) positive
	// labels alongside ground truth.
	PreMatched bool
}

// Rules parameterizes the filter.
type Rules struct {
	// TopK candidate pairs are kept per A-side account (by Score).
	TopK int
	// MinScore additionally admits any pair scoring at least this much.
	MinScore float64
	// PreMatchJW is the username Jaro-Winkler threshold for pre-matching.
	PreMatchJW float64
	// PreMatchAttrs is the minimum matched-attribute count for
	// pre-matching (combined with the username threshold).
	PreMatchAttrs int
	// PreMatchFace is the face-classifier score threshold that pre-matches
	// a pair on its own (paper: "user profile image matching by face
	// recognition techniques").
	PreMatchFace float64
	// Workers pins the parallelism of the O(N_A · N_B) scoring pass
	// (≤ 0 = all cores). Any setting yields the identical candidate set.
	Workers int
}

// DefaultRules returns the calibrated filter.
func DefaultRules() Rules {
	return Rules{
		TopK:          3,
		MinScore:      0.75,
		PreMatchJW:    0.90,
		PreMatchAttrs: 2,
		PreMatchFace:  0.85,
	}
}

// Generate produces the candidate pairs between two platforms. The cost is
// O(N_A · N_B) cheap comparisons — the quadratic pass the paper's filtering
// makes tractable by never touching the expensive behavioral features.
func Generate(pa, pb *platform.Platform, faces *vision.Matcher, rules Rules) ([]Candidate, error) {
	if pa.NumAccounts() == 0 || pb.NumAccounts() == 0 {
		return nil, fmt.Errorf("blocking: empty platform (%s: %d, %s: %d accounts)",
			pa.ID, pa.NumAccounts(), pb.ID, pb.NumAccounts())
	}
	if rules.TopK <= 0 {
		rules.TopK = 3
	}
	// Score A-side rows in parallel: each row scores all N_B pairs and
	// returns its qualifying candidates (deduplicated within the row; a
	// candidate's A id is its row, so no duplicates can span rows). The
	// result is identical at any worker count — the scorer is
	// deterministic per pair.
	kept := parallel.MapChunks(rules.Workers, pa.NumAccounts(), func(lo, hi int) []Candidate {
		var chunk []Candidate
		scored := make([]Candidate, 0, pb.NumAccounts())
		for ai := lo; ai < hi; ai++ {
			chunk = appendRowCandidates(chunk, pa, pb, faces, rules, ai, scored)
		}
		return chunk
	})
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].A != kept[j].A {
			return kept[i].A < kept[j].A
		}
		return kept[i].B < kept[j].B
	})
	return kept, nil
}

// appendRowCandidates scores A-side account ai against every B-side
// account and appends the qualifying candidates to dst in the order the
// sequential filter keeps them: score-rank order down to the TopK/MinScore
// cut, then any pre-matches below it. Duplicates (a pre-match inside the
// cut would otherwise appear twice) are removed. scored is reusable
// scratch; it is re-sliced to hold N_B entries.
func appendRowCandidates(dst []Candidate, pa, pb *platform.Platform, faces *vision.Matcher, rules Rules, ai int, scored []Candidate) []Candidate {
	accA := pa.Accounts[ai]
	scored = scored[:0]
	for _, accB := range pb.Accounts {
		scored = append(scored, scorePair(accA, accB, faces, rules))
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].B < scored[j].B
	})
	base := len(dst)
	for rank, c := range scored {
		if rank < rules.TopK || c.Score >= rules.MinScore || c.PreMatched {
			dst = append(dst, c)
		} else {
			break // sorted: nothing below can qualify except pre-matches
		}
	}
	cut := len(dst) - base // ranks [0, cut) were kept above
	// Pre-matches below the cut still qualify.
	for rank := rules.TopK; rank < len(scored); rank++ {
		if rank < cut {
			continue // already kept by the ranked loop
		}
		if c := scored[rank]; c.PreMatched {
			dst = append(dst, c)
		}
	}
	return dst
}

// scorePair computes the cheap rule score and the pre-match decision.
func scorePair(a, b *platform.Account, faces *vision.Matcher, rules Rules) Candidate {
	jw := text.JaroWinkler(a.Profile.Username, b.Profile.Username)
	ov := text.UsernameOverlap(a.Profile.Username, b.Profile.Username)
	matches := 0
	checked := 0
	for _, name := range platform.MatchAttrs {
		va, okA := a.Profile.Attr(name)
		vb, okB := b.Profile.Attr(name)
		if !okA || !okB {
			continue
		}
		checked++
		if va == vb {
			matches++
		}
	}
	attrFrac := 0.0
	if checked > 0 {
		attrFrac = float64(matches) / float64(checked)
	}
	faceScore, faceOK := 0.0, false
	if faces != nil {
		faceScore, faceOK = faces.Match(a.Profile.AvatarID, b.Profile.AvatarID)
	}
	score := 0.35*jw + 0.25*ov + 0.25*attrFrac
	if faceOK {
		score += 0.15 * faceScore
	}
	// Email equality is near-unique evidence.
	ea, okEA := a.Profile.Attr(platform.AttrEmail)
	eb, okEB := b.Profile.Attr(platform.AttrEmail)
	emailMatch := okEA && okEB && ea == eb

	pre := emailMatch ||
		(jw >= rules.PreMatchJW && matches >= rules.PreMatchAttrs) ||
		(faceOK && faceScore >= rules.PreMatchFace && jw >= 0.6)
	return Candidate{A: a.Local, B: b.Local, Score: score, PreMatched: pre}
}

// Stats summarizes a candidate set against ground truth (for tests and
// experiment reporting).
type Stats struct {
	NumCandidates  int
	NumPreMatched  int
	TruePairsTotal int // persons with accounts on both platforms
	TruePairsKept  int // true pairs surviving the filter
	PrePrecision   float64
}

// Evaluate computes blocking statistics using the dataset's ground truth.
func Evaluate(ds *platform.Dataset, paID, pbID platform.ID, cands []Candidate) Stats {
	st := Stats{NumCandidates: len(cands)}
	truePairs := 0
	for person := range ds.PersonAccounts {
		if _, okA := ds.AccountOf(person, paID); okA {
			if _, okB := ds.AccountOf(person, pbID); okB {
				truePairs++
			}
		}
	}
	st.TruePairsTotal = truePairs
	preCorrect := 0
	for _, c := range cands {
		same := ds.SamePerson(paID, c.A, pbID, c.B)
		if same {
			st.TruePairsKept++
		}
		if c.PreMatched {
			st.NumPreMatched++
			if same {
				preCorrect++
			}
		}
	}
	if st.NumPreMatched > 0 {
		st.PrePrecision = float64(preCorrect) / float64(st.NumPreMatched)
	}
	return st
}
