package blocking

import (
	"testing"

	"hydra/internal/platform"
	"hydra/internal/synth"
	"hydra/internal/vision"
)

func genWorld(t *testing.T, persons int, seed int64) *synth.World {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateValidation(t *testing.T) {
	empty := &platform.Platform{ID: platform.Twitter}
	if _, err := Generate(empty, empty, nil, DefaultRules()); err == nil {
		t.Fatal("expected error for empty platform")
	}
}

func TestGenerateKeepsTruePairs(t *testing.T) {
	w := genWorld(t, 100, 3)
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	cands, err := Generate(pa, pb, vision.NewMatcher(1), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	st := Evaluate(w.Dataset, platform.Twitter, platform.Facebook, cands)
	if st.TruePairsTotal != 100 {
		t.Fatalf("TruePairsTotal = %d", st.TruePairsTotal)
	}
	// The blocking recall ceiling must be reasonably high on English
	// platforms (usernames fairly consistent).
	if frac := float64(st.TruePairsKept) / float64(st.TruePairsTotal); frac < 0.6 {
		t.Fatalf("blocking recall ceiling = %v, want ≥ 0.6", frac)
	}
	// Candidate count must stay well below the N² cross product.
	if st.NumCandidates > 100*100/4 {
		t.Fatalf("blocking kept too many pairs: %d", st.NumCandidates)
	}
}

func TestPreMatchedPrecision(t *testing.T) {
	w := genWorld(t, 150, 5)
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	cands, err := Generate(pa, pb, vision.NewMatcher(1), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	st := Evaluate(w.Dataset, platform.Twitter, platform.Facebook, cands)
	if st.NumPreMatched == 0 {
		t.Fatal("no pre-matched pairs at all")
	}
	// The paper reports its rule-based labels are >95% precise; the
	// simulated world should land in the same regime.
	if st.PrePrecision < 0.85 {
		t.Fatalf("pre-match precision = %v, want ≥ 0.85", st.PrePrecision)
	}
}

func TestCandidatesSortedAndUnique(t *testing.T) {
	w := genWorld(t, 50, 7)
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	cands, err := Generate(pa, pb, vision.NewMatcher(1), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for i, c := range cands {
		key := [2]int{c.A, c.B}
		if seen[key] {
			t.Fatalf("duplicate candidate %v", key)
		}
		seen[key] = true
		if i > 0 {
			prev := cands[i-1]
			if prev.A > c.A || (prev.A == c.A && prev.B >= c.B) {
				t.Fatal("candidates not sorted")
			}
		}
	}
}

func TestTopKEnforced(t *testing.T) {
	w := genWorld(t, 60, 9)
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	rules := DefaultRules()
	rules.TopK = 1
	rules.MinScore = 2 // unreachable: only top-1 + pre-matches survive
	cands, err := Generate(pa, pb, vision.NewMatcher(1), rules)
	if err != nil {
		t.Fatal(err)
	}
	perA := map[int]int{}
	for _, c := range cands {
		if !c.PreMatched {
			perA[c.A]++
		}
	}
	for a, n := range perA {
		if n > 1 {
			t.Fatalf("account %d kept %d non-prematched candidates, want ≤1", a, n)
		}
	}
}

func TestGenerateWithoutFaceMatcher(t *testing.T) {
	w := genWorld(t, 30, 11)
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	if _, err := Generate(pa, pb, nil, DefaultRules()); err != nil {
		t.Fatalf("nil face matcher should be allowed: %v", err)
	}
}
