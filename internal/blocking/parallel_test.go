package blocking

import (
	"testing"

	"hydra/internal/platform"
	"hydra/internal/synth"
	"hydra/internal/vision"
)

// genWorldBench is genWorld without the testing.T plumbing, for benchmarks.
func genWorldBench(persons int, seed int64) (*synth.World, error) {
	return synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
}

// TestGenerateWorkersDeterminism asserts the tentpole contract: the
// candidate set (ids, scores, pre-match flags, order) is identical whether
// the O(N_A · N_B) scoring pass ran on one worker or many.
func TestGenerateWorkersDeterminism(t *testing.T) {
	w := genWorld(t, 120, 9)
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	faces := vision.NewMatcher(9)

	seqRules := DefaultRules()
	seqRules.Workers = 1
	seq, err := Generate(pa, pb, faces, seqRules)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		rules := DefaultRules()
		rules.Workers = workers
		par, err := Generate(pa, pb, faces, rules)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d candidates vs %d sequential", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: candidate %d differs: %+v vs %+v", workers, i, par[i], seq[i])
			}
		}
	}
}

// BenchmarkBlockingGenerate measures the candidate-scoring hot path; run
// with -cpu 1,4 to see the worker-pool speedup (workers resolve to
// GOMAXPROCS).
func BenchmarkBlockingGenerate(b *testing.B) {
	w, err := genWorldBench(300, 13)
	if err != nil {
		b.Fatal(err)
	}
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	faces := vision.NewMatcher(13)
	rules := DefaultRules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(pa, pb, faces, rules); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockingGenerateSequential is the pinned one-worker baseline.
func BenchmarkBlockingGenerateSequential(b *testing.B) {
	w, err := genWorldBench(300, 13)
	if err != nil {
		b.Fatal(err)
	}
	pa := w.Dataset.Platforms[platform.Twitter]
	pb := w.Dataset.Platforms[platform.Facebook]
	faces := vision.NewMatcher(13)
	rules := DefaultRules()
	rules.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(pa, pb, faces, rules); err != nil {
			b.Fatal(err)
		}
	}
}
