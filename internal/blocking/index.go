package blocking

import (
	"fmt"

	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Index is a per-A-side sharded candidate index: for every account on the
// A platform it stores the candidate B-side accounts the rules admit —
// exactly the row Generate would keep for that account. A serving front-end
// answers top-k queries by scoring only an account's shard instead of
// scanning the full B side; the shard sizes are bounded by TopK plus the
// MinScore/pre-match tail, so a query is O(shard) model evaluations.
//
// An Index is immutable after BuildIndex and safe for concurrent readers.
//
// An index comes in two backings: eager (byA holds every shard, the
// BuildIndex / IndexFromParts form) and lazy (rows are fetched on demand
// from a mapped bundle — see LazyIndex). Both answer Candidates
// identically; only where the rows live differs.
type Index struct {
	// PA and PB identify the platform pair (queries run A → B).
	PA, PB platform.ID
	// Rules are the filter parameters the index was built with.
	Rules Rules

	byA [][]Candidate

	// Lazy backing: rowLens holds every shard's length (sizing and
	// fan-out stats without materialization), fetch materializes one
	// shard. fetch must be safe for concurrent callers and return stable
	// results; nil fetch means the index is eager.
	rowLens []int
	fetch   func(a int) []Candidate
}

// LazyIndex builds an index whose rows materialize on first touch:
// rowLens pins every shard's candidate count up front, fetch resolves a
// shard when a query actually lands on it. Validation mirrors
// IndexFromParts.
func LazyIndex(pa, pb platform.ID, rules Rules, rowLens []int, fetch func(a int) []Candidate) (*Index, error) {
	if pa == "" || pb == "" {
		return nil, fmt.Errorf("blocking: index parts missing platform pair (%q, %q)", pa, pb)
	}
	if len(rowLens) == 0 {
		return nil, fmt.Errorf("blocking: index parts for %s → %s have no shards", pa, pb)
	}
	if fetch == nil {
		return nil, fmt.Errorf("blocking: lazy index for %s → %s needs a fetch function", pa, pb)
	}
	return &Index{PA: pa, PB: pb, Rules: rules, rowLens: rowLens, fetch: fetch}, nil
}

// BuildIndex scans the O(N_A · N_B) pair space once and shards the kept
// candidates by A-side account. The scan parallelizes over A rows on the
// Rules.Workers pool; each shard is written to its own slot, so the index
// contents are identical at any worker count. The union of all shards is
// exactly the candidate set Generate returns under the same rules.
func BuildIndex(pa, pb *platform.Platform, faces *vision.Matcher, rules Rules) (*Index, error) {
	if pa.NumAccounts() == 0 || pb.NumAccounts() == 0 {
		return nil, fmt.Errorf("blocking: empty platform (%s: %d, %s: %d accounts)",
			pa.ID, pa.NumAccounts(), pb.ID, pb.NumAccounts())
	}
	if rules.TopK <= 0 {
		rules.TopK = 3
	}
	ix := &Index{PA: pa.ID, PB: pb.ID, Rules: rules, byA: make([][]Candidate, pa.NumAccounts())}
	// Chunked like Generate so the N_B-entry scoring scratch is allocated
	// once per chunk, not once per row; each row's shard still lands in
	// its own slot, so the index is identical at any worker count.
	parallel.MapChunks(rules.Workers, pa.NumAccounts(), func(lo, hi int) []struct{} {
		scored := make([]Candidate, 0, pb.NumAccounts())
		for ai := lo; ai < hi; ai++ {
			ix.byA[ai] = appendRowCandidates(nil, pa, pb, faces, rules, ai, scored)
		}
		return nil
	})
	return ix, nil
}

// Candidates returns A-side account a's shard: its admitted B-side
// candidates in rank order (best cheap score first, pre-match stragglers
// last). The slice is shared read-only state — callers must not modify it.
func (ix *Index) Candidates(a int) ([]Candidate, error) {
	if a < 0 || a >= ix.NumShards() {
		return nil, fmt.Errorf("blocking: account %d out of range (%s has %d accounts)", a, ix.PA, ix.NumShards())
	}
	if ix.fetch != nil {
		return ix.fetch(a), nil
	}
	return ix.byA[a], nil
}

// NumShards returns the A-side account count (one shard per account).
func (ix *Index) NumShards() int {
	if ix.fetch != nil {
		return len(ix.rowLens)
	}
	return len(ix.byA)
}

// Len returns the total candidate count across all shards.
func (ix *Index) Len() int {
	n := 0
	for _, s := range ix.ShardSizes() {
		n += s
	}
	return n
}

// ShardSizes returns every shard's candidate count, indexed by A-side
// account. On a lazy index this reads the length table — no shard
// materializes. The returned slice is freshly allocated.
func (ix *Index) ShardSizes() []int {
	if ix.fetch != nil {
		return append([]int(nil), ix.rowLens...)
	}
	sizes := make([]int, len(ix.byA))
	for i, s := range ix.byA {
		sizes[i] = len(s)
	}
	return sizes
}
