package blocking

import (
	"fmt"

	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/vision"
)

// Index is a per-A-side sharded candidate index: for every account on the
// A platform it stores the candidate B-side accounts the rules admit —
// exactly the row Generate would keep for that account. A serving front-end
// answers top-k queries by scoring only an account's shard instead of
// scanning the full B side; the shard sizes are bounded by TopK plus the
// MinScore/pre-match tail, so a query is O(shard) model evaluations.
//
// An Index is immutable after BuildIndex and safe for concurrent readers.
type Index struct {
	// PA and PB identify the platform pair (queries run A → B).
	PA, PB platform.ID
	// Rules are the filter parameters the index was built with.
	Rules Rules

	byA [][]Candidate
}

// BuildIndex scans the O(N_A · N_B) pair space once and shards the kept
// candidates by A-side account. The scan parallelizes over A rows on the
// Rules.Workers pool; each shard is written to its own slot, so the index
// contents are identical at any worker count. The union of all shards is
// exactly the candidate set Generate returns under the same rules.
func BuildIndex(pa, pb *platform.Platform, faces *vision.Matcher, rules Rules) (*Index, error) {
	if pa.NumAccounts() == 0 || pb.NumAccounts() == 0 {
		return nil, fmt.Errorf("blocking: empty platform (%s: %d, %s: %d accounts)",
			pa.ID, pa.NumAccounts(), pb.ID, pb.NumAccounts())
	}
	if rules.TopK <= 0 {
		rules.TopK = 3
	}
	ix := &Index{PA: pa.ID, PB: pb.ID, Rules: rules, byA: make([][]Candidate, pa.NumAccounts())}
	// Chunked like Generate so the N_B-entry scoring scratch is allocated
	// once per chunk, not once per row; each row's shard still lands in
	// its own slot, so the index is identical at any worker count.
	parallel.MapChunks(rules.Workers, pa.NumAccounts(), func(lo, hi int) []struct{} {
		scored := make([]Candidate, 0, pb.NumAccounts())
		for ai := lo; ai < hi; ai++ {
			ix.byA[ai] = appendRowCandidates(nil, pa, pb, faces, rules, ai, scored)
		}
		return nil
	})
	return ix, nil
}

// Candidates returns A-side account a's shard: its admitted B-side
// candidates in rank order (best cheap score first, pre-match stragglers
// last). The slice is shared read-only state — callers must not modify it.
func (ix *Index) Candidates(a int) ([]Candidate, error) {
	if a < 0 || a >= len(ix.byA) {
		return nil, fmt.Errorf("blocking: account %d out of range (%s has %d accounts)", a, ix.PA, len(ix.byA))
	}
	return ix.byA[a], nil
}

// NumShards returns the A-side account count (one shard per account).
func (ix *Index) NumShards() int { return len(ix.byA) }

// Len returns the total candidate count across all shards.
func (ix *Index) Len() int {
	n := 0
	for _, s := range ix.byA {
		n += len(s)
	}
	return n
}
