package blocking

import (
	"sort"
	"testing"

	"hydra/internal/platform"
	"hydra/internal/synth"
	"hydra/internal/vision"
)

// indexWorld builds a small two-platform world for index tests.
func indexWorld(t *testing.T, persons int, seed int64) (*platform.Platform, *platform.Platform, *vision.Matcher) {
	t.Helper()
	w, err := synth.Generate(synth.DefaultConfig(persons, platform.EnglishPlatforms, seed))
	if err != nil {
		t.Fatal(err)
	}
	pa, err := w.Dataset.Platform(platform.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := w.Dataset.Platform(platform.Facebook)
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb, vision.NewMatcher(seed)
}

// TestIndexMatchesGenerate asserts the serving-side contract: the union of
// the per-A-side shards is exactly the candidate set Generate returns
// under the same rules.
func TestIndexMatchesGenerate(t *testing.T) {
	pa, pb, faces := indexWorld(t, 40, 3)
	rules := DefaultRules()
	cands, err := Generate(pa, pb, faces, rules)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(pa, pb, faces, rules)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumShards() != pa.NumAccounts() {
		t.Fatalf("NumShards = %d, want %d", ix.NumShards(), pa.NumAccounts())
	}
	var flat []Candidate
	for a := 0; a < ix.NumShards(); a++ {
		shard, err := ix.Candidates(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range shard {
			if c.A != a {
				t.Fatalf("shard %d holds candidate with A=%d", a, c.A)
			}
		}
		flat = append(flat, shard...)
	}
	if ix.Len() != len(flat) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(flat))
	}
	sort.Slice(flat, func(i, j int) bool {
		if flat[i].A != flat[j].A {
			return flat[i].A < flat[j].A
		}
		return flat[i].B < flat[j].B
	})
	if len(flat) != len(cands) {
		t.Fatalf("index holds %d candidates, Generate returns %d", len(flat), len(cands))
	}
	for i := range cands {
		if flat[i] != cands[i] {
			t.Fatalf("candidate %d differs: index %+v vs Generate %+v", i, flat[i], cands[i])
		}
	}
}

// TestIndexWorkersDeterminism asserts identical shards at any worker
// count.
func TestIndexWorkersDeterminism(t *testing.T) {
	pa, pb, faces := indexWorld(t, 30, 5)
	build := func(workers int) *Index {
		rules := DefaultRules()
		rules.Workers = workers
		ix, err := BuildIndex(pa, pb, faces, rules)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	ix1, ix4 := build(1), build(4)
	for a := 0; a < ix1.NumShards(); a++ {
		s1, _ := ix1.Candidates(a)
		s4, _ := ix4.Candidates(a)
		if len(s1) != len(s4) {
			t.Fatalf("shard %d length differs: %d vs %d", a, len(s1), len(s4))
		}
		for i := range s1 {
			if s1[i] != s4[i] {
				t.Fatalf("shard %d candidate %d differs: %+v vs %+v", a, i, s1[i], s4[i])
			}
		}
	}
}

// TestIndexOutOfRange asserts range checking on shard lookup.
func TestIndexOutOfRange(t *testing.T) {
	pa, pb, faces := indexWorld(t, 20, 7)
	ix, err := BuildIndex(pa, pb, faces, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Candidates(-1); err == nil {
		t.Fatal("expected error for negative account id")
	}
	if _, err := ix.Candidates(ix.NumShards()); err == nil {
		t.Fatal("expected error for out-of-range account id")
	}
}
