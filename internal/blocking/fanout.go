package blocking

import "sort"

// Fanout summarizes an index's candidate-set size distribution — how
// many B-side candidates each A-side account fans out to. At small
// world sizes the rules keep shards near TopK; at scale the MinScore and
// pre-match tails can balloon them, and a ballooned fan-out is a serving
// latency problem long before it is a memory one. hydra-pack prints this
// at pack time and hydra-serve exports it on /metrics so the distribution
// is visible before it hurts.
type Fanout struct {
	// Rows is the A-side account count (shards, including empty ones).
	Rows int
	// Total is the summed candidate count across all shards.
	Total int
	// Mean is Total/Rows (0 for an empty index).
	Mean float64
	// P99 is the 99th-percentile shard size.
	P99 int
	// Max is the largest shard size.
	Max int
}

// FanoutOf computes the distribution over per-shard sizes.
func FanoutOf(sizes []int) Fanout {
	f := Fanout{Rows: len(sizes)}
	if len(sizes) == 0 {
		return f
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	for _, n := range sorted {
		f.Total += n
	}
	f.Mean = float64(f.Total) / float64(f.Rows)
	f.Max = sorted[len(sorted)-1]
	p99 := (99 * len(sorted)) / 100
	if p99 >= len(sorted) {
		p99 = len(sorted) - 1
	}
	f.P99 = sorted[p99]
	return f
}

// Fanout computes the index's candidate-set size distribution. On a lazy
// index this reads the length table only — nothing materializes.
func (ix *Index) Fanout() Fanout { return FanoutOf(ix.ShardSizes()) }
