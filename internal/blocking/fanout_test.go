package blocking

import "testing"

// TestFanoutOf pins the distribution arithmetic against hand-computed
// values, including the empty-index and single-row edges.
func TestFanoutOf(t *testing.T) {
	if f := FanoutOf(nil); f.Rows != 0 || f.Total != 0 || f.Mean != 0 || f.P99 != 0 || f.Max != 0 {
		t.Fatalf("empty fan-out not zero: %+v", f)
	}
	if f := FanoutOf([]int{7}); f.Rows != 1 || f.Total != 7 || f.Mean != 7 || f.P99 != 7 || f.Max != 7 {
		t.Fatalf("single row: %+v", f)
	}

	// 100 rows of size 1 plus a ballooned tail of 2×50 — p99 must land on
	// the tail, not the body.
	sizes := make([]int, 102)
	for i := 0; i < 100; i++ {
		sizes[i] = 1
	}
	sizes[100], sizes[101] = 50, 50
	f := FanoutOf(sizes)
	if f.Rows != 102 || f.Total != 200 || f.Max != 50 {
		t.Fatalf("tail distribution: %+v", f)
	}
	if f.P99 != 50 {
		t.Fatalf("p99 = %d, want 50 (the ballooned tail)", f.P99)
	}
	if f.Mean < 1.9 || f.Mean > 2.0 {
		t.Fatalf("mean = %v, want ≈1.96", f.Mean)
	}

	// FanoutOf must not mutate its input.
	in := []int{3, 1, 2}
	FanoutOf(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}
