package blocking

import (
	"fmt"

	"hydra/internal/platform"
)

// IndexParts is the serializable state of a per-A-side candidate index:
// the platform pair, the rules it was filtered with, and every shard
// verbatim. A serving bundle carries one per indexed platform pair so a
// snapshot-backed engine never re-runs the O(N_A · N_B) blocking scan.
type IndexParts struct {
	PA    platform.ID   `json:"pa"`
	PB    platform.ID   `json:"pb"`
	Rules Rules         `json:"rules"`
	ByA   [][]Candidate `json:"by_a"`
}

// Parts extracts the index's serializable state. The runtime-only
// Rules.Workers knob is zeroed so the encoded bytes are canonical for a
// given index regardless of how parallel the build was.
func (ix *Index) Parts() IndexParts {
	rules := ix.Rules
	rules.Workers = 0
	return IndexParts{PA: ix.PA, PB: ix.PB, Rules: rules, ByA: ix.byA}
}

// RestrictB returns a copy of the parts whose candidate rows keep only
// the B-side accounts owned admits — the shard-slice extraction behind
// sharded serving bundles. Every A-side row is retained (A sides are
// replicated across shards); a row that loses all its candidates becomes
// an empty, non-nil slice, while rows that were nil stay nil. The
// disjoint union of RestrictB over a partition of the B side is exactly
// the original parts, which is what lets a scatter-gather router merge
// per-shard top-k answers into the unsplit index's answer.
func (p IndexParts) RestrictB(owned func(b int) bool) IndexParts {
	byA := make([][]Candidate, len(p.ByA))
	for i, row := range p.ByA {
		if row == nil {
			continue
		}
		kept := make([]Candidate, 0, len(row))
		for _, c := range row {
			if owned(c.B) {
				kept = append(kept, c)
			}
		}
		byA[i] = kept
	}
	return IndexParts{PA: p.PA, PB: p.PB, Rules: p.Rules, ByA: byA}
}

// IndexFromParts rebuilds an Index from decoded parts. The shards are
// shared with the parts, matching the Index contract that Candidates
// returns read-only state.
func IndexFromParts(p IndexParts) (*Index, error) {
	if p.PA == "" || p.PB == "" {
		return nil, fmt.Errorf("blocking: index parts missing platform pair (%q, %q)", p.PA, p.PB)
	}
	if len(p.ByA) == 0 {
		return nil, fmt.Errorf("blocking: index parts for %s → %s have no shards", p.PA, p.PB)
	}
	return &Index{PA: p.PA, PB: p.PB, Rules: p.Rules, byA: p.ByA}, nil
}
