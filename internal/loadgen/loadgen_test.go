package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunClosedLoop drives a stub front-end and checks the aggregate:
// every request lands on a known endpoint, percentiles are ordered and
// the throughput accounting adds up.
func TestRunClosedLoop(t *testing.T) {
	var topk, score atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/topk"):
			topk.Add(1)
		case strings.HasPrefix(r.URL.Path, "/score"):
			score.Add(1)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	res, err := Run(Config{
		BaseURL:  srv.URL,
		Clients:  3,
		Duration: 150 * time.Millisecond,
		Mix:      Mix{TopK: 1, Score: 1, Batch: 1},
		PA:       "twitter", PB: "facebook",
		NumA: 10, NumB: 10,
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Clients != 3 {
		t.Fatalf("bad run shape: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against a 200-only server", res.Errors)
	}
	if res.Requests == 0 || res.Throughput <= 0 {
		t.Fatalf("no load driven: %+v", res)
	}
	if got := topk.Load() + score.Load(); got != int64(res.Requests) {
		t.Fatalf("server saw %d requests, result claims %d", got, res.Requests)
	}
	if topk.Load() == 0 || score.Load() == 0 {
		t.Fatalf("mix not exercised: topk=%d score=%d", topk.Load(), score.Load())
	}
	if res.P50Ms > res.P99Ms || res.P99Ms > res.P999Ms || res.P999Ms > res.MaxMs {
		t.Fatalf("percentiles out of order: %+v", res)
	}
}

// TestRunCountsErrors maps non-200 responses to the error counter, not
// the latency sample.
func TestRunCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	res, err := Run(Config{
		BaseURL: srv.URL, Duration: 60 * time.Millisecond,
		PA: "a", PB: "b", NumA: 1, NumB: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Errors != res.Requests {
		t.Fatalf("500s not counted as errors: %+v", res)
	}
	if res.P50Ms != 0 {
		t.Fatalf("failed requests leaked into the latency sample: %+v", res)
	}
}

// TestRunOpenLoopPacing checks the open-loop mode paces rather than
// saturates: against a fast server, 100 req/s for 300 ms cannot be far
// off ~30 requests.
func TestRunOpenLoopPacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	res, err := Run(Config{
		BaseURL: srv.URL, Clients: 2, Duration: 300 * time.Millisecond, Rate: 100,
		PA: "a", PB: "b", NumA: 5, NumB: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" {
		t.Fatalf("mode = %q, want open", res.Mode)
	}
	if res.Requests < 10 || res.Requests > 60 {
		t.Fatalf("open loop at 100 req/s for 300ms issued %d requests", res.Requests)
	}
}

// TestRunValidation pins the config gates.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Duration: time.Second, NumA: 1, NumB: 1}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Duration: time.Second}); err == nil {
		t.Fatal("zero account counts accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", NumA: 1, NumB: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
