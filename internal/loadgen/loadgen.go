// Package loadgen is a closed-loop (optionally rate-paced) HTTP load
// harness for the serving tier: N concurrent clients drive a
// hydra-serve or hydra-router front-end with a configurable mix of
// top-k, single-pair score and batched score queries, and the run
// reports throughput plus latency percentiles (p50/p99/p999). It exists
// so "the mmap'd engine serves under concurrent load at such-and-such
// p99" is a measured number in BENCH_PR9.json, not a claim.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Mix weights the query types a client draws from. All-zero defaults to
// top-k only.
type Mix struct {
	TopK  int `json:"topk"`
	Score int `json:"score"`
	Batch int `json:"batch"`
}

// Config parameterizes one load run against one base URL.
type Config struct {
	// BaseURL is the front-end root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Duration is the measured wall-clock window.
	Duration time.Duration
	// Rate, when positive, paces the run as an open loop at this many
	// total requests per second (spread over the clients; a client that
	// falls behind fires immediately rather than queueing). Zero means
	// closed loop: every client issues its next request as soon as the
	// previous one returns.
	Rate float64
	// Mix weights the query types.
	Mix Mix
	// PA, PB name the platform pair; A-side ids are drawn from
	// [0, NumA), B-side ids (score/batch bodies) from [0, NumB).
	PA, PB     string
	NumA, NumB int
	// K is the top-k depth (default 5); BatchSize the pairs per batched
	// score request (default 16).
	K         int
	BatchSize int
	// Seed derives every client's query stream — same seed, same load.
	Seed int64
	// Client overrides the HTTP client (default: pooled transport sized
	// to Clients).
	Client *http.Client
}

// Result is one run's outcome. Latency percentiles are over successful
// requests only; Errors counts transport failures and non-200 statuses.
type Result struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	Throughput  float64 `json:"requests_per_sec"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`
}

type scoreBody struct {
	PA    string   `json:"pa"`
	PB    string   `json:"pb"`
	Pairs [][2]int `json:"pairs"`
}

// Run drives the configured load and reports the aggregate.
func Run(cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.NumA <= 0 || cfg.NumB <= 0 {
		return Result{}, fmt.Errorf("loadgen: NumA and NumB must be positive, got %d and %d", cfg.NumA, cfg.NumB)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: Duration must be positive, got %s", cfg.Duration)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Mix.TopK+cfg.Mix.Score+cfg.Mix.Batch <= 0 {
		cfg.Mix = Mix{TopK: 1}
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = cfg.Clients + 4
		tr.MaxIdleConnsPerHost = cfg.Clients + 4
		client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}

	type clientStats struct {
		lat    []float64 // ms, successful requests
		errors int
	}
	stats := make([]clientStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			st := &stats[ci]
			rng := rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + int64(ci) + 1))
			var next time.Time
			var interval time.Duration
			if cfg.Rate > 0 {
				interval = time.Duration(float64(time.Second) * float64(cfg.Clients) / cfg.Rate)
				// Staggered start so the open-loop clients don't phase-lock.
				next = start.Add(time.Duration(ci) * interval / time.Duration(cfg.Clients))
			}
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if cfg.Rate > 0 {
					if wait := next.Sub(now); wait > 0 {
						time.Sleep(wait)
						if !time.Now().Before(deadline) {
							return
						}
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				err := issueOne(client, cfg, rng)
				ms := float64(time.Since(t0).Nanoseconds()) / 1e6
				if err != nil {
					st.errors++
				} else {
					st.lat = append(st.lat, ms)
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{Mode: "closed", Clients: cfg.Clients, DurationSec: elapsed.Seconds()}
	if cfg.Rate > 0 {
		res.Mode = "open"
	}
	var all []float64
	for i := range stats {
		res.Errors += stats[i].errors
		all = append(all, stats[i].lat...)
	}
	res.Requests = len(all) + res.Errors
	if res.DurationSec > 0 {
		res.Throughput = float64(res.Requests) / res.DurationSec
	}
	if len(all) > 0 {
		sort.Float64s(all)
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		res.MeanMs = sum / float64(len(all))
		res.P50Ms = percentile(all, 0.50)
		res.P99Ms = percentile(all, 0.99)
		res.P999Ms = percentile(all, 0.999)
		res.MaxMs = all[len(all)-1]
	}
	return res, nil
}

// percentile reads the p-quantile out of an ascending-sorted sample.
func percentile(sorted []float64, p float64) float64 {
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// issueOne draws one query from the mix and executes it, returning an
// error for transport failures and non-200 responses.
func issueOne(client *http.Client, cfg Config, rng *rand.Rand) error {
	total := cfg.Mix.TopK + cfg.Mix.Score + cfg.Mix.Batch
	r := rng.Intn(total)
	switch {
	case r < cfg.Mix.TopK:
		url := fmt.Sprintf("%s/topk?pa=%s&a=%d&pb=%s&k=%d",
			cfg.BaseURL, cfg.PA, rng.Intn(cfg.NumA), cfg.PB, cfg.K)
		return get(client, url)
	case r < cfg.Mix.TopK+cfg.Mix.Score:
		return postScore(client, cfg, [][2]int{{rng.Intn(cfg.NumA), rng.Intn(cfg.NumB)}})
	default:
		pairs := make([][2]int, cfg.BatchSize)
		for i := range pairs {
			pairs[i] = [2]int{rng.Intn(cfg.NumA), rng.Intn(cfg.NumB)}
		}
		return postScore(client, cfg, pairs)
	}
}

func get(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return drain(resp)
}

func postScore(client *http.Client, cfg Config, pairs [][2]int) error {
	body, err := json.Marshal(scoreBody{PA: cfg.PA, PB: cfg.PB, Pairs: pairs})
	if err != nil {
		return err
	}
	resp, err := client.Post(cfg.BaseURL+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return drain(resp)
}

// drain consumes the response body (so the connection is reused) and
// maps non-200 statuses to errors.
func drain(resp *http.Response) error {
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if copyErr != nil {
		return copyErr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: status %d", resp.StatusCode)
	}
	return nil
}
