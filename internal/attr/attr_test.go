package attr

import (
	"math"
	"testing"

	"hydra/internal/platform"
)

func prof(attrs map[platform.AttrName]string) *platform.Profile {
	return &platform.Profile{Attrs: attrs}
}

func TestMatch(t *testing.T) {
	a := prof(map[platform.AttrName]string{platform.AttrJob: "engineer", platform.AttrCity: "beijing"})
	b := prof(map[platform.AttrName]string{platform.AttrJob: "Engineer"})
	matched, ok := Match(a, b, platform.AttrJob)
	if !ok || !matched {
		t.Fatal("case-insensitive match failed")
	}
	if _, ok := Match(a, b, platform.AttrCity); ok {
		t.Fatal("missing attr on b should give ok=false")
	}
	if _, ok := Match(a, b, platform.AttrEmail); ok {
		t.Fatal("missing attr on both should give ok=false")
	}
}

func TestMatchTags(t *testing.T) {
	a := prof(map[platform.AttrName]string{platform.AttrTag: "hiking,coding"})
	b := prof(map[platform.AttrName]string{platform.AttrTag: "coding,yoga"})
	matched, ok := Match(a, b, platform.AttrTag)
	if !ok || !matched {
		t.Fatal("shared tag should match")
	}
	c := prof(map[platform.AttrName]string{platform.AttrTag: "movies"})
	matched, ok = Match(a, c, platform.AttrTag)
	if !ok || matched {
		t.Fatal("disjoint tags should not match")
	}
}

func TestLearnImportance(t *testing.T) {
	// Email matches only on positives (discriminative); gender matches on
	// half the negatives too (weak).
	var pairs []LabeledPair
	for i := 0; i < 20; i++ {
		pairs = append(pairs, LabeledPair{
			A:        prof(map[platform.AttrName]string{platform.AttrEmail: "x@e", platform.AttrGender: "m"}),
			B:        prof(map[platform.AttrName]string{platform.AttrEmail: "x@e", platform.AttrGender: "m"}),
			Positive: true,
		})
		pairs = append(pairs, LabeledPair{
			A:        prof(map[platform.AttrName]string{platform.AttrEmail: "x@e", platform.AttrGender: "m"}),
			B:        prof(map[platform.AttrName]string{platform.AttrEmail: "y@e", platform.AttrGender: "m"}),
			Positive: false,
		})
	}
	attrs := []platform.AttrName{platform.AttrEmail, platform.AttrGender}
	im, err := LearnImportance(pairs, attrs, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(im.Scores.Sum()-1) > 1e-9 {
		t.Fatalf("importance scores sum to %v", im.Scores.Sum())
	}
	if im.Score(platform.AttrEmail) <= im.Score(platform.AttrGender) {
		t.Fatalf("email should outweigh gender: %v vs %v",
			im.Score(platform.AttrEmail), im.Score(platform.AttrGender))
	}
	if im.Score(platform.AttrJob) != 0 {
		t.Fatal("unknown attribute should score 0")
	}
}

func TestLearnImportanceValidation(t *testing.T) {
	if _, err := LearnImportance(nil, nil, 0); err == nil {
		t.Fatal("expected error for empty attribute list")
	}
}

func TestLearnImportanceNoData(t *testing.T) {
	attrs := []platform.AttrName{platform.AttrJob, platform.AttrCity}
	im, err := LearnImportance(nil, attrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With no data, smoothing gives the uniform distribution.
	if math.Abs(im.Scores[0]-0.5) > 1e-9 || math.Abs(im.Scores[1]-0.5) > 1e-9 {
		t.Fatalf("no-data importance = %v, want uniform", im.Scores)
	}
}

func TestPairFeatures(t *testing.T) {
	attrs := []platform.AttrName{platform.AttrJob, platform.AttrCity, platform.AttrEmail}
	im := &Importance{Attrs: attrs, Scores: []float64{0.5, 0.3, 0.2}}
	a := prof(map[platform.AttrName]string{platform.AttrJob: "doctor", platform.AttrCity: "beijing"})
	b := prof(map[platform.AttrName]string{platform.AttrJob: "doctor", platform.AttrCity: "shanghai"})
	vec, mask := im.PairFeatures(a, b)
	if !mask[0] || !mask[1] || mask[2] {
		t.Fatalf("mask = %v", mask)
	}
	if vec[0] != 0.5*3 {
		t.Fatalf("matched feature = %v", vec[0])
	}
	if vec[1] != 0 {
		t.Fatalf("mismatched feature = %v", vec[1])
	}
	if vec[2] != 0 {
		t.Fatalf("missing feature must be zero-valued, got %v", vec[2])
	}
}
