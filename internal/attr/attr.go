// Package attr implements the user-attribute modeling of the paper's
// Section 5.1: learning the relative importance of textual profile
// attributes from labeled pairs (Eqn 3) and producing the per-pair
// attribute-match feature components, with explicit missing-feature
// bookkeeping.
package attr

import (
	"fmt"
	"strings"

	"hydra/internal/linalg"
	"hydra/internal/platform"
)

// Importance holds the learned relative importance scores m_t(k) of each
// attribute (Eqn 3): how indicative a match on that attribute is of a true
// linkage.
type Importance struct {
	Attrs  []platform.AttrName
	Scores linalg.Vector // normalized, sums to 1
}

// Score returns the importance of attribute name (0 if unknown).
func (im *Importance) Score(name platform.AttrName) float64 {
	for i, a := range im.Attrs {
		if a == name {
			return im.Scores[i]
		}
	}
	return 0
}

// LabeledPair is a pair of profiles with a ground-truth same-person label.
type LabeledPair struct {
	A, B     *platform.Profile
	Positive bool
}

// Match reports whether two profiles agree on the attribute, with ok=false
// when the attribute is missing on either side (the paper's "missing
// feature" case).
func Match(a, b *platform.Profile, name platform.AttrName) (matched bool, ok bool) {
	va, okA := a.Attr(name)
	vb, okB := b.Attr(name)
	if !okA || !okB {
		return false, false
	}
	return equalAttr(name, va, vb), true
}

// equalAttr compares attribute values; tags match on any shared tag, bios on
// case-insensitive equality, everything else on exact equality.
func equalAttr(name platform.AttrName, va, vb string) bool {
	switch name {
	case platform.AttrTag:
		sa := strings.Split(va, ",")
		sb := strings.Split(vb, ",")
		for _, x := range sa {
			for _, y := range sb {
				if x != "" && x == y {
					return true
				}
			}
		}
		return false
	default:
		return strings.EqualFold(va, vb)
	}
}

// LearnImportance estimates attribute importance from labeled pairs by data
// counting (Eqn 3):
//
//	m_t(k) = PD(k) / (PD(k) + ND(k)),  then smoothed and normalized with ε.
//
// PD(k) counts positive pairs matched on attribute k; ND(k) counts negative
// pairs matched on k. Pairs where the attribute is missing on either side
// contribute to neither count.
func LearnImportance(pairs []LabeledPair, attrs []platform.AttrName, epsilon float64) (*Importance, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("attr: no attributes given")
	}
	if epsilon <= 0 {
		epsilon = 1e-3
	}
	pd := make([]float64, len(attrs))
	nd := make([]float64, len(attrs))
	for _, pair := range pairs {
		for k, name := range attrs {
			matched, ok := Match(pair.A, pair.B, name)
			if !ok || !matched {
				continue
			}
			if pair.Positive {
				pd[k]++
			} else {
				nd[k]++
			}
		}
	}
	raw := linalg.NewVector(len(attrs))
	for k := range attrs {
		if pd[k]+nd[k] > 0 {
			raw[k] = pd[k] / (pd[k] + nd[k])
		}
	}
	// Smooth and normalize: m_t(k) = (m_t(k)+ε) / (Σ m_t(k') + MA·ε).
	denom := raw.Sum() + float64(len(attrs))*epsilon
	scores := linalg.NewVector(len(attrs))
	for k := range attrs {
		scores[k] = (raw[k] + epsilon) / denom
	}
	return &Importance{Attrs: attrs, Scores: scores}, nil
}

// PairFeatures returns the importance-weighted attribute-match feature
// vector for a profile pair and the observation mask. Feature k is
// m_t(k)·1[match on attribute k]; mask[k] is false when attribute k is
// missing on either profile.
func (im *Importance) PairFeatures(a, b *platform.Profile) (linalg.Vector, []bool) {
	vec := linalg.NewVector(len(im.Attrs))
	mask := make([]bool, len(im.Attrs))
	for k, name := range im.Attrs {
		matched, ok := Match(a, b, name)
		if !ok {
			continue
		}
		mask[k] = true
		if matched {
			vec[k] = im.Scores[k] * float64(len(im.Attrs))
		}
	}
	return vec, mask
}
