// Package moo implements the multi-objective optimization scaffolding of
// the paper's Section 6.3: the weighted exponential-sum utility (Eqn 11),
// Pareto dominance, and the iterative reweighting that reduces the p-power
// utility to a sequence of weighted-sum (p=1) problems — the mechanism by
// which larger p "imposes greater uniqueness on the dominant objective
// function" (Section 6.4).
package moo

import (
	"fmt"
	"math"
)

// Utility evaluates U = Σ_k w_k · F_k^p (Eqn 11). All objective values must
// be positive and all weights non-negative, as the paper requires.
func Utility(weights, values []float64, p float64) (float64, error) {
	if len(weights) != len(values) {
		return 0, fmt.Errorf("moo: %d weights but %d values", len(weights), len(values))
	}
	if p < 1 {
		return 0, fmt.Errorf("moo: exponent p must be ≥ 1, got %g", p)
	}
	var u float64
	for k := range weights {
		if weights[k] < 0 {
			return 0, fmt.Errorf("moo: weight %d is negative (%g)", k, weights[k])
		}
		if values[k] <= 0 {
			return 0, fmt.Errorf("moo: objective %d is non-positive (%g); Eqn 11 requires F_k > 0", k, values[k])
		}
		u += weights[k] * math.Pow(values[k], p)
	}
	return u, nil
}

// Dominates reports whether objective vector a Pareto-dominates b for
// minimization: a ≤ b component-wise with at least one strict inequality.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the non-dominated points (minimization).
func ParetoFront(points [][]float64) []int {
	var front []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// EffectiveWeights linearizes the p-power utility at the current objective
// values: ∂U/∂F_k = p · w_k · F_k^(p−1). Minimizing the weighted sum with
// these effective weights is the first-order surrogate of minimizing U —
// the standard reduction used to solve exponential-sum scalarizations by
// iterated weighted-sum solves. The returned weights are normalized so the
// first stays at its base value (keeping γ_L's scale fixed while γ_M is
// adapted, matching the paper's parameterization w(1)=1, w(k)=γ_M).
func EffectiveWeights(weights, values []float64, p float64) ([]float64, error) {
	if len(weights) != len(values) {
		return nil, fmt.Errorf("moo: %d weights but %d values", len(weights), len(values))
	}
	if p < 1 {
		return nil, fmt.Errorf("moo: exponent p must be ≥ 1, got %g", p)
	}
	out := make([]float64, len(weights))
	for k := range weights {
		v := values[k]
		if v <= 0 {
			v = 1e-12
		}
		out[k] = p * weights[k] * math.Pow(v, p-1)
	}
	// Normalize by the first gradient so weight 0 keeps its base value.
	if out[0] > 0 {
		scale := weights[0] / out[0]
		for k := range out {
			out[k] *= scale
		}
	}
	return out, nil
}

// UtopiaDistance returns the l_p distance between the objective vector and
// a utopia point — the p>1 interpretation the paper cites from compromise
// programming [1]: "minimizing the distance function between the solution
// point and Utopia points".
func UtopiaDistance(values, utopia []float64, p float64) (float64, error) {
	if len(values) != len(utopia) {
		return 0, fmt.Errorf("moo: %d values but %d utopia coordinates", len(values), len(utopia))
	}
	if p < 1 {
		return 0, fmt.Errorf("moo: p must be ≥ 1, got %g", p)
	}
	var acc float64
	for k := range values {
		d := math.Abs(values[k] - utopia[k])
		acc += math.Pow(d, p)
	}
	return math.Pow(acc, 1/p), nil
}
