package moo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUtility(t *testing.T) {
	u, err := Utility([]float64{1, 2}, []float64{3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u != 11 {
		t.Fatalf("U = %v, want 11", u)
	}
	u, err = Utility([]float64{1, 1}, []float64{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u != 13 {
		t.Fatalf("U(p=2) = %v, want 13", u)
	}
}

func TestUtilityValidation(t *testing.T) {
	if _, err := Utility([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Utility([]float64{1}, []float64{1}, 0.5); err == nil {
		t.Fatal("expected p validation error")
	}
	if _, err := Utility([]float64{-1}, []float64{1}, 1); err == nil {
		t.Fatal("expected negative-weight error")
	}
	if _, err := Utility([]float64{1}, []float64{0}, 1); err == nil {
		t.Fatal("expected non-positive objective error")
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 2}, []float64{2, 2}) {
		t.Fatal("should dominate")
	}
	if Dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Fatal("incomparable points should not dominate")
	}
	if Dominates([]float64{1, 2}, []float64{1, 2}) {
		t.Fatal("equal points should not dominate")
	}
	if Dominates([]float64{1}, []float64{1, 2}) {
		t.Fatal("mismatched lengths should not dominate")
	}
}

func TestParetoFront(t *testing.T) {
	points := [][]float64{
		{1, 4}, // front
		{2, 2}, // front
		{4, 1}, // front
		{3, 3}, // dominated by (2,2)
		{5, 5}, // dominated
	}
	front := ParetoFront(points)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Fatalf("unexpected front member %d", i)
		}
	}
}

func TestEffectiveWeightsP1Identity(t *testing.T) {
	w := []float64{1, 0.5}
	vals := []float64{3, 7}
	eff, err := EffectiveWeights(w, vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	// p=1: gradient is constant; normalization restores the base weights.
	if math.Abs(eff[0]-1) > 1e-12 || math.Abs(eff[1]-0.5) > 1e-12 {
		t.Fatalf("eff = %v, want base weights", eff)
	}
}

func TestEffectiveWeightsAmplifyDominant(t *testing.T) {
	w := []float64{1, 1}
	// Objective 1 is currently much larger; with p>1 its effective weight
	// must grow relative to objective 0.
	vals := []float64{1, 10}
	eff, err := EffectiveWeights(w, vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if eff[1] <= eff[0] {
		t.Fatalf("dominant objective not amplified: %v", eff)
	}
	ratio := eff[1] / eff[0]
	if math.Abs(ratio-100) > 1e-9 { // (10/1)^(p-1) = 100
		t.Fatalf("amplification ratio = %v, want 100", ratio)
	}
}

func TestEffectiveWeightsValidation(t *testing.T) {
	if _, err := EffectiveWeights([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := EffectiveWeights([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("expected p error")
	}
}

func TestUtopiaDistance(t *testing.T) {
	d, err := UtopiaDistance([]float64{3, 4}, []float64{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if _, err := UtopiaDistance([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := UtopiaDistance([]float64{1}, []float64{1}, 0.2); err == nil {
		t.Fatal("expected p error")
	}
}

// Property: utility is monotone in each objective value (for minimization,
// increasing any F_k increases U).
func TestUtilityMonotoneProperty(t *testing.T) {
	f := func(a, b uint8, p uint8) bool {
		pf := 1 + float64(p%5)
		v1 := 0.1 + float64(a)/64
		v2 := v1 + 0.1 + float64(b)/64
		u1, err1 := Utility([]float64{1, 1}, []float64{v1, 1}, pf)
		u2, err2 := Utility([]float64{1, 1}, []float64{v2, 1}, pf)
		if err1 != nil || err2 != nil {
			return false
		}
		return u2 > u1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Pareto front never contains a dominated point.
func TestParetoFrontProperty(t *testing.T) {
	f := func(seed uint8) bool {
		pts := make([][]float64, 8)
		x := int(seed) + 1
		for i := range pts {
			x = (x*31 + 7) % 97
			y := (x*17 + 3) % 89
			pts[i] = []float64{float64(x), float64(y)}
		}
		front := ParetoFront(pts)
		for _, i := range front {
			for j := range pts {
				if i != j && Dominates(pts[j], pts[i]) {
					return false
				}
			}
		}
		return len(front) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
