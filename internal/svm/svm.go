// Package svm implements the soft-margin kernel SVM used for HYDRA's
// supervised objective F_D (Eqn 7) and for the SVM-B baseline: the dual is
// handed to the SMO solver in internal/qp.
package svm

import (
	"fmt"

	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/qp"
)

// Model is a trained SVM.
type Model struct {
	kernelFn kernel.Func
	// Support vectors with their coefficients β_i y_i.
	svX     []linalg.Vector
	svCoeff []float64
	bias    float64
	// Iters is the SMO iteration count of training (efficiency metrics).
	Iters int
}

// Opts configures training.
type Opts struct {
	// C is the box constraint (default 1).
	C float64
	// Tol is the SMO tolerance (default 1e-3).
	Tol float64
	// MaxIter caps SMO iterations.
	MaxIter int
	// Shrink enables the shrinking heuristic.
	Shrink bool
}

// qMatrix is the SVM dual Hessian Q_ij = y_i y_j K(x_i, x_j), with rows
// cached on demand. rows memoizes the kernel.Cache rows locally without a
// lock — one SMO solve runs on one goroutine, so paying the Cache mutex
// once per distinct row (instead of on every At in the gradient loop)
// keeps the hot path as cheap as before the cache became concurrent-safe.
type qMatrix struct {
	cache *kernel.Cache
	y     []float64
	rows  []linalg.Vector
}

func (q *qMatrix) row(i int) linalg.Vector {
	if r := q.rows[i]; r != nil {
		return r
	}
	r := q.cache.Row(i)
	q.rows[i] = r
	return r
}

func (q *qMatrix) At(i, j int) float64 { return q.y[i] * q.y[j] * q.row(i)[j] }
func (q *qMatrix) N() int              { return len(q.y) }

// Train fits a binary SVM on (xs, ys) with ys ∈ {+1, −1}.
func Train(xs []linalg.Vector, ys []float64, k kernel.Func, opts Opts) (*Model, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", len(xs), len(ys))
	}
	pos, neg := 0, 0
	for _, y := range ys {
		switch y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("svm: label %g, want ±1", y)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("svm: need both classes (got %d positive, %d negative)", pos, neg)
	}
	if opts.C <= 0 {
		opts.C = 1
	}
	q := &qMatrix{cache: kernel.NewCache(k, xs), y: ys, rows: make([]linalg.Vector, len(ys))}
	res, err := qp.Solve(q, ys, opts.C, qp.Opts{Tol: opts.Tol, MaxIter: opts.MaxIter, Shrink: opts.Shrink})
	if err != nil {
		return nil, err
	}
	m := &Model{kernelFn: k, bias: res.B, Iters: res.Iters}
	for i, b := range res.Beta {
		if b > 1e-10 {
			m.svX = append(m.svX, xs[i])
			m.svCoeff = append(m.svCoeff, b*ys[i])
		}
	}
	return m, nil
}

// NumSVs returns the number of support vectors.
func (m *Model) NumSVs() int { return len(m.svX) }

// Decision returns the raw decision value f(x) = Σ β_i y_i K(x_i, x) + b.
func (m *Model) Decision(x linalg.Vector) float64 {
	s := m.bias
	for i, sv := range m.svX {
		s += m.svCoeff[i] * m.kernelFn.Eval(sv, x)
	}
	return s
}

// Predict returns +1 or −1.
func (m *Model) Predict(x linalg.Vector) float64 {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// LinearWeights recovers the primal weight vector w = Σ β_i y_i x_i. Only
// meaningful for the linear kernel.
func (m *Model) LinearWeights(dim int) linalg.Vector {
	w := linalg.NewVector(dim)
	for i, sv := range m.svX {
		w.AddScaled(m.svCoeff[i], sv)
	}
	return w
}

// Bias returns the intercept b.
func (m *Model) Bias() float64 { return m.bias }
