package svm

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/kernel"
	"hydra/internal/linalg"
)

// gaussianBlobs builds a two-class problem with the given separation.
func gaussianBlobs(n int, sep float64, seed int64) ([]linalg.Vector, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]linalg.Vector, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 1.0
		if i%2 == 1 {
			s = -1.0
		}
		xs[i] = linalg.Vector{s*sep + rng.NormFloat64(), s*sep + rng.NormFloat64()}
		ys[i] = s
	}
	return xs, ys
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, kernel.Linear{}, Opts{}); err == nil {
		t.Fatal("expected error on empty set")
	}
	xs := []linalg.Vector{{1}, {2}}
	if _, err := Train(xs, []float64{1}, kernel.Linear{}, Opts{}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := Train(xs, []float64{1, 0.5}, kernel.Linear{}, Opts{}); err == nil {
		t.Fatal("expected error on bad label")
	}
	if _, err := Train(xs, []float64{1, 1}, kernel.Linear{}, Opts{}); err == nil {
		t.Fatal("expected error on single-class input")
	}
}

func TestTrainLinearSeparable(t *testing.T) {
	xs, ys := gaussianBlobs(60, 3, 1)
	m, err := Train(xs, ys, kernel.Linear{}, Opts{C: 10, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range xs {
		if m.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(xs)) < 0.97 {
		t.Fatalf("training accuracy %d/%d", correct, len(xs))
	}
	if m.NumSVs() == 0 || m.NumSVs() == len(xs) {
		t.Fatalf("suspicious SV count %d", m.NumSVs())
	}
}

func TestTrainRBFNonlinear(t *testing.T) {
	// XOR-ish: class by sign of x*y — not linearly separable.
	rng := rand.New(rand.NewSource(2))
	var xs []linalg.Vector
	var ys []float64
	for i := 0; i < 120; i++ {
		x := linalg.Vector{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		y := 1.0
		if x[0]*x[1] < 0 {
			y = -1.0
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, kernel.NewRBF(1), Opts{C: 10, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range xs {
		if m.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(xs)) < 0.9 {
		t.Fatalf("RBF training accuracy %d/%d", correct, len(xs))
	}
}

func TestGeneralization(t *testing.T) {
	xs, ys := gaussianBlobs(80, 2.5, 3)
	m, err := Train(xs, ys, kernel.Linear{}, Opts{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := gaussianBlobs(200, 2.5, 99)
	correct := 0
	for i := range testX {
		if m.Predict(testX[i]) == testY[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(testX)) < 0.95 {
		t.Fatalf("test accuracy %d/%d", correct, len(testX))
	}
}

func TestLinearWeightsAgreeWithDecision(t *testing.T) {
	xs, ys := gaussianBlobs(40, 3, 4)
	m, err := Train(xs, ys, kernel.Linear{}, Opts{C: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := m.LinearWeights(2)
	for i := range xs {
		direct := w.Dot(xs[i]) + m.Bias()
		if math.Abs(direct-m.Decision(xs[i])) > 1e-9 {
			t.Fatalf("weights disagree with kernel decision: %v vs %v", direct, m.Decision(xs[i]))
		}
	}
}

func TestMarginSVsOnly(t *testing.T) {
	// With a wide margin and small C, only boundary points become SVs.
	xs, ys := gaussianBlobs(100, 4, 5)
	m, err := Train(xs, ys, kernel.Linear{}, Opts{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSVs() > len(xs)/2 {
		t.Fatalf("too many SVs for wide-margin problem: %d", m.NumSVs())
	}
}
