package core

import (
	"strings"
	"testing"

	"hydra/internal/platform"
)

func TestFeatureGroupReport(t *testing.T) {
	_, sys := buildSystem(t, 50, platform.EnglishPlatforms, 25)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook, DefaultLabelOpts(25))
	gws, err := FeatureGroupReport(sys, task, HydraM)
	if err != nil {
		t.Fatal(err)
	}
	if len(gws) < 5 {
		t.Fatalf("groups = %d", len(gws))
	}
	var totalShare float64
	seen := map[string]bool{}
	for _, g := range gws {
		if g.Weight < 0 || g.Share < 0 {
			t.Fatalf("negative weight: %+v", g)
		}
		if seen[g.Group] {
			t.Fatalf("duplicate group %s", g.Group)
		}
		seen[g.Group] = true
		totalShare += g.Share
	}
	if totalShare < 0.99 || totalShare > 1.01 {
		t.Fatalf("shares sum to %v", totalShare)
	}
	// Sorted descending by weight.
	for i := 1; i < len(gws); i++ {
		if gws[i].Weight > gws[i-1].Weight {
			t.Fatal("report not sorted")
		}
	}
	out := FormatGroupWeights(gws)
	if !strings.Contains(out, "group") || !strings.Contains(out, "%") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestFeatureGroupReportNoLabels(t *testing.T) {
	_, sys := buildSystem(t, 20, platform.EnglishPlatforms, 26)
	task := buildTask(t, sys, platform.Twitter, platform.Facebook,
		LabelOpts{LabelFraction: 0, Seed: 26})
	if _, err := FeatureGroupReport(sys, task, HydraZ); err == nil {
		t.Fatal("expected error without labels")
	}
}
