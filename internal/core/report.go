package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hydra/internal/admm"
	"hydra/internal/linalg"
)

// GroupWeight is the share of linear-model weight mass carried by one
// feature group of the heterogeneous behavior model.
type GroupWeight struct {
	Group  string
	Weight float64 // Σ|w_d| over the group's dimensions
	Share  float64 // Weight / Σ Weight
}

// FeatureGroupReport fits an l2-regularized linear model on the task's
// labeled pairs and reports how the weight mass distributes over the
// feature groups (attr / face / username / topic / genre / sentiment /
// style / mr). It quantifies which behavioral modality carries the linkage
// signal on a given dataset — the diagnostic counterpart of the paper's
// attribute-importance learning.
func FeatureGroupReport(sys *System, task *Task, variant Variant) ([]GroupWeight, error) {
	var xs []linalg.Vector
	var ys []float64
	for _, b := range task.Blocks {
		for _, ci := range b.SortedLabelIndices() {
			c := b.Cands[ci]
			x, err := sys.Impute(b.PA, c.A, b.PB, c.B, variant, 3)
			if err != nil {
				return nil, err
			}
			xs = append(xs, x)
			ys = append(ys, b.Labels[ci])
		}
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: FeatureGroupReport needs labeled pairs")
	}
	shards, err := admm.Split(xs, ys, 4)
	if err != nil {
		return nil, err
	}
	res, err := admm.Solve(shards, len(xs[0]), admm.Opts{Lambda: 1, MaxIter: 300, Tol: 1e-7})
	if err != nil {
		return nil, err
	}
	groups := sys.Pipe.FeatureGroups()
	if len(groups) != len(res.W) {
		return nil, fmt.Errorf("core: weight dim %d != feature dim %d", len(res.W), len(groups))
	}
	acc := make(map[string]float64)
	var total float64
	for d, g := range groups {
		w := math.Abs(res.W[d])
		acc[g] += w
		total += w
	}
	out := make([]GroupWeight, 0, len(acc))
	for g, w := range acc {
		share := 0.0
		if total > 0 {
			share = w / total
		}
		out = append(out, GroupWeight{Group: g, Weight: w, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Group < out[j].Group
	})
	return out, nil
}

// FormatGroupWeights renders the report as an aligned text table.
func FormatGroupWeights(gws []GroupWeight) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s\n", "group", "weight", "share")
	for _, g := range gws {
		fmt.Fprintf(&b, "%-12s %10.4f %7.1f%%\n", g.Group, g.Weight, 100*g.Share)
	}
	return b.String()
}
