package core

import (
	"math"

	"hydra/internal/platform"
)

// Incremental linkage: social platforms grow continuously, and the paper's
// Section 7.5 notes that HYDRA re-optimizes β_{t+1} from β_t as a warm
// start. TrainIncremental exposes that mechanism across training calls:
// when new candidates (and possibly new labeled pairs) arrive, the previous
// model's dual variables seed the new solve, which typically converges in
// fewer SMO iterations than a cold start.

// labelKey identifies a labeled candidate pair across retrainings.
type labelKey struct {
	pa, pb platform.ID
	a, b   int
}

// rememberedDual is the warm-start state a Model carries after training.
type rememberedDual struct {
	beta map[labelKey]float64
}

// TrainIncremental trains on task, warm-starting from prev's dual variables
// where labeled pairs coincide. prev may be nil (equivalent to Train). The
// warm start is projected back to feasibility (box [0, 1/N_l] and
// yᵀβ = 0), so any label-set change degrades gracefully toward a cold
// start instead of erroring.
func TrainIncremental(sys *System, prev *Model, task *Task, cfg Config) (*Model, error) {
	var warm map[labelKey]float64
	if prev != nil && prev.dual != nil {
		warm = prev.dual.beta
	}
	return train(sys, task, cfg, warm)
}

// warmStartVector maps remembered β values onto the new label ordering and
// projects the result to the feasible set. Returns nil (cold start) when
// nothing carries over or feasibility cannot be restored.
func warmStartVector(task *Task, labels []float64, keys []labelKey, cBox float64, warm map[labelKey]float64) []float64 {
	if len(warm) == 0 {
		return nil
	}
	beta := make([]float64, len(keys))
	carried := 0
	for i, k := range keys {
		if v, ok := warm[k]; ok {
			beta[i] = math.Min(math.Max(v, 0), cBox)
			if beta[i] > 0 {
				carried++
			}
		}
	}
	if carried == 0 {
		return nil
	}
	// Restore yᵀβ = 0 by rescaling the heavier side down.
	var sumPos, sumNeg float64
	for i, y := range labels {
		if y > 0 {
			sumPos += beta[i]
		} else {
			sumNeg += beta[i]
		}
	}
	switch {
	case sumPos == 0 || sumNeg == 0:
		return nil // one side empty: rescaling cannot balance
	case sumPos > sumNeg:
		scale := sumNeg / sumPos
		for i, y := range labels {
			if y > 0 {
				beta[i] *= scale
			}
		}
	case sumNeg > sumPos:
		scale := sumPos / sumNeg
		for i, y := range labels {
			if y < 0 {
				beta[i] *= scale
			}
		}
	}
	return beta
}
