package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hydra/internal/blocking"
	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/moo"
	"hydra/internal/parallel"
	"hydra/internal/platform"
	"hydra/internal/qp"
	"hydra/internal/structure"
)

// Config holds HYDRA's model parameters (the γ_L, γ_M, p, σ_S, σ_D inputs
// of Algorithm 1).
type Config struct {
	// GammaL weighs the supervised structured loss F_D.
	GammaL float64
	// GammaM weighs the structure-consistency objectives F_S.
	GammaM float64
	// P is the exponent of the weighted exponential-sum utility (Eqn 11).
	P float64
	// Sigma1/Sigma2 are the Eqn 9 bandwidths; MaxHops caps the n-hop
	// distance search of the structure graph.
	Sigma1, Sigma2 float64
	MaxHops        int
	// KernelSigma is the RBF bandwidth of the dual kernel K. Zero selects
	// the median heuristic.
	KernelSigma float64
	// Variant is HydraM or HydraZ.
	Variant Variant
	// TopFriends is the core-structure size for imputation (paper: 3).
	TopFriends int
	// ReweightIters bounds the iterative reweighting rounds used for p>1.
	ReweightIters int
	// Tol is the SMO tolerance.
	Tol  float64
	Seed int64
	// Workers pins the parallelism of the pairwise hot paths (feature
	// assembly, Gram construction, evaluation). ≤ 0 uses all cores;
	// Workers: 1 reproduces the sequential results bit-for-bit (as does
	// any other setting — all parallel paths are deterministic).
	Workers int
}

// DefaultTopFriends is the paper's core-structure size: Eqn 18 averages
// over the top-3 most-interacting friends on each side. Config.TopFriends
// ≤ 0 resolves to this everywhere (imputation and bundle packing share
// the constant, so a packed friend depth always covers serving).
const DefaultTopFriends = 3

// ResolvedTopFriends returns the imputation depth Score will actually
// use: TopFriends when positive, DefaultTopFriends otherwise.
func (c Config) ResolvedTopFriends() int {
	if c.TopFriends > 0 {
		return c.TopFriends
	}
	return DefaultTopFriends
}

// DefaultConfig returns the calibrated parameters (the values a grid search
// over the validation set selects in the paper's Section 7.1).
func DefaultConfig(seed int64) Config {
	return Config{
		GammaL:        1e-3,
		GammaM:        30,
		P:             1,
		Sigma1:        0.1,
		Sigma2:        6,
		MaxHops:       2,
		Variant:       HydraM,
		TopFriends:    3,
		ReweightIters: 3,
		Tol:           1e-3,
		Seed:          seed,
	}
}

// Block is one platform pair's slice of the multi-platform SIL problem:
// its candidate pairs and the labeled subset. The multi-platform M of Eqn
// 14 is block-diagonal over these.
type Block struct {
	PA, PB platform.ID
	Cands  []blocking.Candidate
	// Labels maps candidate index -> ±1 for the labeled subset
	// (ground-truth linked pairs and rule-based pre-matched pairs).
	Labels map[int]float64
}

// Task is the full training task across one or more platform pairs.
type Task struct {
	Blocks []*Block
}

// NumCandidates returns the total candidate count n = |P_l ∪ P_u|.
func (t *Task) NumCandidates() int {
	n := 0
	for _, b := range t.Blocks {
		n += len(b.Cands)
	}
	return n
}

// NumLabeled returns the labeled-pair count N_l.
func (t *Task) NumLabeled() int {
	n := 0
	for _, b := range t.Blocks {
		n += len(b.Labels)
	}
	return n
}

// Diagnostics reports training internals for the experiments.
type Diagnostics struct {
	N, NL        int
	SMOIters     int
	NnzBeta      int
	MDensity     float64
	FD, FS       float64
	EffGammaM    float64
	ReweightDone int
	// LKProducts counts the n×n×n products L·K computed while training.
	// The reweight rounds share one hoisted product (only the scalar
	// 2γ_M/n² and the diagonal shift change between rounds), so this is 1
	// no matter how many rounds ran.
	LKProducts int
}

// Model is a trained HYDRA linkage function (Eqn 12): the kernel expansion
// over all candidate pairs.
type Model struct {
	// src answers the feature queries scoring needs; it is the training
	// System when the model was just trained, or a snapshot Store when it
	// was restored from a serving bundle — scores are bit-identical
	// either way.
	src   Source
	cfg   Config
	kern  kernel.Func
	xs    []linalg.Vector
	alpha linalg.Vector
	bias  float64
	dual  *rememberedDual
	Diag  Diagnostics

	// Serving fast path, prepared once by prepareServing (see batch.go):
	// the α≠0 support set packed into one dense row-major matrix (svXs
	// are row views into svMat, svAlpha the matching coefficients), the
	// pass-through resolver, and the pooled per-query scratch.
	svMat   *linalg.Matrix
	svXs    []linalg.Vector
	svAlpha []float64
	direct  imputeResolver
	scratch sync.Pool

	// tbl is the optional pack-time Eqn-18 table (see imputetable.go),
	// adopted from a snapshot Store that carries one; tblOff is the
	// runtime escape hatch (`-impute-table=off`). Like the prescreen,
	// the table never changes a served bit — a hit just skips the live
	// friend walk.
	tbl    *ImputeTable
	tblOff atomic.Bool

	// pre is the optional approximate prescreen (see prescreen.go):
	// attached from a bundle's prescreen section via SetPrescreen, nil
	// for exact-only serving. It never changes a served value — top-k
	// uses it to skip candidates provably outside the top k, and the
	// exact path rescores everything else.
	pre *prescreenState
}

// Train runs Algorithm 1 on the task. For p=1 this is the exact convex
// dual (Eqns 13–17); for p>1 it iteratively reweights γ_M following the
// first-order reduction of the exponential-sum utility (see internal/moo).
func Train(sys *System, task *Task, cfg Config) (*Model, error) {
	return train(sys, task, cfg, nil)
}

// train is Train plus an optional remembered-β warm start (see
// TrainIncremental).
func train(sys *System, task *Task, cfg Config, warmMap map[labelKey]float64) (*Model, error) {
	if len(task.Blocks) == 0 {
		return nil, fmt.Errorf("core: task has no blocks")
	}
	if cfg.GammaL <= 0 {
		return nil, fmt.Errorf("core: GammaL must be positive, got %g", cfg.GammaL)
	}
	if cfg.GammaM < 0 {
		return nil, fmt.Errorf("core: GammaM must be non-negative, got %g", cfg.GammaM)
	}
	if cfg.P < 1 {
		return nil, fmt.Errorf("core: P must be ≥ 1, got %g", cfg.P)
	}
	n := task.NumCandidates()
	nl := task.NumLabeled()
	if n == 0 {
		return nil, fmt.Errorf("core: no candidate pairs")
	}
	if nl == 0 {
		return nil, fmt.Errorf("core: no labeled pairs; F_D is undefined")
	}

	// 1. Assemble imputed feature vectors (in parallel — each candidate's
	// imputation is independent and written to its own index) and label
	// bookkeeping (sequential, order-dependent).
	type imputeJob struct {
		b *Block
		c blocking.Candidate
	}
	jobs := make([]imputeJob, 0, n)
	for _, b := range task.Blocks {
		for _, c := range b.Cands {
			jobs = append(jobs, imputeJob{b: b, c: c})
		}
	}
	xs := make([]linalg.Vector, n)
	if err := parallel.ForErr(cfg.Workers, n, func(i int) error {
		j := jobs[i]
		x, err := sys.Impute(j.b.PA, j.c.A, j.b.PB, j.c.B, cfg.Variant, cfg.TopFriends)
		if err != nil {
			return err
		}
		xs[i] = x
		return nil
	}); err != nil {
		return nil, err
	}
	var labeledIdx []int
	var labels []float64
	var labelKeys []labelKey
	offset := 0
	for _, b := range task.Blocks {
		for ci, c := range b.Cands {
			if y, ok := b.Labels[ci]; ok {
				if y != 1 && y != -1 {
					return nil, fmt.Errorf("core: label %g on block %s/%s candidate %d, want ±1", y, b.PA, b.PB, ci)
				}
				labeledIdx = append(labeledIdx, offset+ci)
				labels = append(labels, y)
				labelKeys = append(labelKeys, labelKey{b.PA, b.PB, c.A, c.B})
			}
		}
		offset += len(b.Cands)
	}
	pos, neg := 0, 0
	for _, y := range labels {
		if y > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("core: need labeled pairs of both classes (got %d positive, %d negative)", pos, neg)
	}

	// 2. Structure-consistency Laplacian, block-diagonal over platform
	// pairs (Eqn 14).
	lap := linalg.NewMatrix(n, n)
	offset = 0
	density := 0.0
	for _, b := range task.Blocks {
		embA, err := sys.Embeddings(b.PA)
		if err != nil {
			return nil, err
		}
		embB, err := sys.Embeddings(b.PB)
		if err != nil {
			return nil, err
		}
		platA, _ := sys.DS.Platform(b.PA)
		platB, _ := sys.DS.Platform(b.PB)
		scands := make([]structure.Candidate, len(b.Cands))
		for i, c := range b.Cands {
			scands[i] = structure.Candidate{A: c.A, B: c.B}
		}
		m, err := structure.Build(scands, embA, embB, platA.Graph, platB.Graph, structure.Config{
			Sigma1: cfg.Sigma1, Sigma2: cfg.Sigma2, MaxHops: cfg.MaxHops,
		})
		if err != nil {
			return nil, err
		}
		density += m.Density() * float64(len(b.Cands)) / float64(n)
		lb := structure.Laplacian(m)
		for i := 0; i < lb.Rows; i++ {
			for j := 0; j < lb.Cols; j++ {
				if v := lb.At(i, j); v != 0 {
					lap.Set(offset+i, offset+j, v)
				}
			}
		}
		offset += len(b.Cands)
	}

	// 3. Kernel matrix.
	kern := pickKernel(cfg, xs)
	gram := kernel.GramWorkers(kern, xs, cfg.Workers)

	m := &Model{src: sys, cfg: cfg, kern: kern, xs: xs}
	m.Diag.N, m.Diag.NL = n, nl
	m.Diag.MDensity = density

	// 4. Solve; for p>1 iterate the reweighted scalarization.
	//
	// The n×n×n product L·K is hoisted out of the reweight loop: A of Eqn
	// 15 is 2γ_L·I + (2γ_M/n²)·L·K, and across rounds only the scalar and
	// the diagonal shift change. Each round rebuilds A from this one
	// product by scale+AddDiag — the same float ops per entry as
	// recomputing, hence bit-identical, minus rounds−1 full multiplies.
	lk := lap.MulWorkers(gram, cfg.Workers)
	m.Diag.LKProducts++
	effGammaM := cfg.GammaM
	rounds := 1
	if cfg.P > 1 {
		rounds = cfg.ReweightIters
		if rounds < 1 {
			rounds = 3
		}
	}
	warm := warmStartVector(task, labels, labelKeys, 1/float64(nl), warmMap)
	var finalBeta []float64
	for round := 0; round < rounds; round++ {
		beta, err := m.solveOnce(gram, lk, labeledIdx, labels, effGammaM, warm)
		if err != nil {
			return nil, err
		}
		warm = beta // β_t warm-starts β_{t+1} (Section 7.5)
		finalBeta = beta
		m.Diag.ReweightDone = round + 1
		m.Diag.EffGammaM = effGammaM
		if cfg.P <= 1 || round == rounds-1 {
			break
		}
		// Evaluate the two objectives at the current solution and
		// re-linearize the p-power utility.
		fd, fs := m.objectives(gram, lap, labeledIdx, labels)
		m.Diag.FD, m.Diag.FS = fd, fs
		eff, err := moo.EffectiveWeights([]float64{1, cfg.GammaM}, []float64{math.Max(fd, 1e-9), math.Max(fs, 1e-9)}, cfg.P)
		if err != nil {
			return nil, err
		}
		effGammaM = eff[1]
	}
	fd, fs := m.objectives(gram, lap, labeledIdx, labels)
	m.Diag.FD, m.Diag.FS = fd, fs
	// Remember the dual for incremental retraining.
	m.dual = &rememberedDual{beta: make(map[labelKey]float64, len(labelKeys))}
	for i, k := range labelKeys {
		if finalBeta[i] != 0 {
			m.dual.beta[k] = finalBeta[i]
		}
	}
	m.prepareServing()
	return m, nil
}

// solveOnce performs one p=1 dual solve with the given structure weight and
// returns the dual variables β for warm starting the next round. lk is the
// hoisted product L·K shared by every round (see train); all dense kernels
// run at cfg.Workers, which never changes the bits of the result.
func (m *Model) solveOnce(gram, lk *linalg.Matrix, labeledIdx []int, labels []float64, gammaM float64, warm []float64) ([]float64, error) {
	n := gram.Rows
	nl := len(labeledIdx)
	cfg := m.cfg

	// A = 2γ_L I + (2γ_M / n²) L K   (Eqn 15's inverse operand).
	scale := 2 * gammaM / float64(n*n)
	a := lk.Clone().ScaleInPlace(scale).AddDiag(2 * cfg.GammaL)
	lu, err := linalg.FactorizeInPlaceWorkers(a, cfg.Workers) // a is scratch; factor it in place
	if err != nil {
		return nil, fmt.Errorf("core: dual system factorization: %w", err)
	}
	// Z = A⁻¹ Jᵀ Y (n × N_l).
	jy := linalg.NewMatrix(n, nl)
	for c, idx := range labeledIdx {
		jy.Set(idx, c, labels[c])
	}
	z := lu.SolveMatrixWorkers(jy, cfg.Workers)
	// Q = Y J K Z (N_l × N_l, Eqn 17).
	kz := gram.MulWorkers(z, cfg.Workers)
	qm := linalg.NewMatrix(nl, nl)
	for r, idx := range labeledIdx {
		for c := 0; c < nl; c++ {
			qm.Set(r, c, labels[r]*kz.At(idx, c))
		}
	}
	// Symmetrize against numerical drift.
	for r := 0; r < nl; r++ {
		for c := r + 1; c < nl; c++ {
			v := (qm.At(r, c) + qm.At(c, r)) / 2
			qm.Set(r, c, v)
			qm.Set(c, r, v)
		}
	}

	// Box bound C = 1/|P_l| (Eqn 16).
	cBox := 1 / float64(nl)
	res, err := qp.Solve(denseAdapter{qm}, labels, cBox, qp.Opts{Tol: cfg.Tol, Shrink: true, WarmStart: warm})
	if err != nil {
		return nil, fmt.Errorf("core: SMO: %w", err)
	}
	m.Diag.SMOIters += res.Iters
	m.Diag.NnzBeta = 0
	for _, b := range res.Beta {
		if b > 1e-10 {
			m.Diag.NnzBeta++
		}
	}
	// α = Z β (Eqn 15).
	m.alpha = z.MulVecWorkers(linalg.Vector(res.Beta), cfg.Workers)
	// Bias from free dual variables: y_i = f(x_i) on the margin.
	m.bias = 0
	free := 0
	var acc float64
	ka := gram.MulVecWorkers(m.alpha, cfg.Workers)
	for c, idx := range labeledIdx {
		if res.Beta[c] > 1e-8 && res.Beta[c] < cBox-1e-8 {
			acc += labels[c] - ka[idx]
			free++
		}
	}
	if free > 0 {
		m.bias = acc / float64(free)
	} else {
		// Fall back to the class-balanced midpoint over labeled pairs.
		var lo, hi float64
		lo, hi = math.Inf(1), math.Inf(-1)
		for c, idx := range labeledIdx {
			v := ka[idx]
			if labels[c] > 0 && v < lo {
				lo = v
			}
			if labels[c] < 0 && v > hi {
				hi = v
			}
		}
		if !math.IsInf(lo, 1) && !math.IsInf(hi, -1) {
			m.bias = -(lo + hi) / 2
		}
	}
	return res.Beta, nil
}

// objectives evaluates F_D (structured loss) and F_S (structure
// consistency, Eqn 8) at the current α.
func (m *Model) objectives(gram, lap *linalg.Matrix, labeledIdx []int, labels []float64) (fd, fs float64) {
	n := gram.Rows
	ka := gram.MulVecWorkers(m.alpha, m.cfg.Workers) // f(x_i) − b over all candidates
	// F_D = γ_L/2 ‖w‖² + Σ ξ, with ‖w‖² = αᵀKα.
	wNorm2 := m.alpha.Dot(ka)
	fd = m.cfg.GammaL / 2 * wNorm2
	for c, idx := range labeledIdx {
		margin := labels[c] * (ka[idx] + m.bias)
		if margin < 1 {
			fd += 1 - margin
		}
	}
	// F_S = (1/n²)·fᵀ L f with f = Kα (Eqn 8's wᵀXᵀ(D−M)Xw in the dual).
	fs = ka.Dot(lap.MulVecWorkers(ka, m.cfg.Workers)) / float64(n*n)
	if fs < 0 {
		fs = 0 // PSD up to numerical noise
	}
	return fd, fs
}

// denseAdapter exposes a linalg.Matrix as a qp.Matrix.
type denseAdapter struct{ m *linalg.Matrix }

func (d denseAdapter) At(i, j int) float64 { return d.m.At(i, j) }
func (d denseAdapter) N() int              { return d.m.Rows }

// pickKernel selects the dual kernel: an RBF with either the configured
// bandwidth or the median pairwise distance heuristic.
func pickKernel(cfg Config, xs []linalg.Vector) kernel.Func {
	sigma := cfg.KernelSigma
	if sigma <= 0 {
		sigma = medianDistance(xs)
		if sigma <= 0 {
			sigma = 1
		}
	}
	return kernel.NewRBF(sigma)
}

// medianDistance estimates the median pairwise distance on a deterministic
// subsample.
func medianDistance(xs []linalg.Vector) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	stride := 1
	if n > 60 {
		stride = n / 60
	}
	var ds []float64
	for i := 0; i < n; i += stride {
		for j := i + stride; j < n; j += stride {
			ds = append(ds, math.Sqrt(linalg.SqDist(xs[i], xs[j])))
		}
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}

// Decision evaluates the linkage function f(x) = Σ α_j K(x_j, x) + b on an
// already-imputed feature vector. It walks the compacted, densely packed
// support set in ascending candidate order — the same float addition
// sequence as the pre-compaction loop that skipped α=0 entries per call,
// so the value is bit-identical.
func (m *Model) Decision(x linalg.Vector) float64 {
	s := m.bias
	for j, xj := range m.svXs {
		s += m.svAlpha[j] * m.kern.Eval(xj, x)
	}
	return s
}

// Score computes the decision value for an account pair, applying the
// model's imputation variant. It is the batch fast path at batch size
// one: imputation and the kernel fold run on pooled scratch, so a warm
// Score allocates nothing.
func (m *Model) Score(pa platform.ID, a int, pb platform.ID, b int) (float64, error) {
	sc := m.getScratch()
	defer m.scratch.Put(sc)
	x, err := sc.imp.imputePairInto(sc.single(), m.src, m.direct, m.servingTable(),
		pa, a, pb, b, m.cfg.Variant, m.cfg.TopFriends)
	if err != nil {
		return 0, err
	}
	sc.setSingle(x)
	return m.Decision(x), nil
}

// Link decides whether the pair is the same natural person (f(x) > 0).
func (m *Model) Link(pa platform.ID, a int, pb platform.ID, b int) (bool, error) {
	s, err := m.Score(pa, a, pb, b)
	if err != nil {
		return false, err
	}
	return s > 0, nil
}
