package core

// The pack-time Eqn-18 imputation table. PR 7's two-tier top-k left
// Eqn-18 imputation as ~2/3 of a wide query's cost: every candidate with
// missing dimensions resolves two friend lists and up to topFriends²
// friend-pair raw vectors through the global pair cache before it can
// average them. But the whole computation is a pure function of the
// bundle's frozen state — views, friend slices, topFriends — so for the
// candidate pairs a bundle's index shards can ever present, the
// per-dimension friend-pair sums and the pair count can be accumulated
// once at pack time and shipped with the bundle. Serving-time imputation
// of a table hit collapses to copy-raw + fill-from-sums: no friend
// resolution, no friend-pair features, no cache traffic.
//
// Bit-exactness is by construction, not by tolerance: BuildImputeTable
// accumulates each entry's sums with accumFriendPairSums — the same
// helper the live loop in imputePairInto runs, in the same float order —
// and the fill x[d] = sums[d]/count is the identical expression, so a
// table-backed impute returns the exact bits the live path would.
// Entries are keyed at the packed topFriends K; a query at any other K,
// a pair outside the table, or a model without one falls back to the
// live path, mirroring how the prescreen section degrades to exact-only.

import (
	"fmt"
	"math"
	"sync/atomic"

	"hydra/internal/graph"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// ImputeTablePairParts holds one platform pair's table entries: parallel
// id arrays plus the per-entry friend-pair count and the row-major
// per-dimension sums. Count 0 marks a pair with missing dimensions but
// no social context on one side — the live path leaves those dimensions
// zero, and the table records that verdict so serving skips even the
// friend resolution.
type ImputeTablePairParts struct {
	PA platform.ID `json:"pa"`
	PB platform.ID `json:"pb"`
	// A[i], B[i] are entry i's local account ids on PA and PB.
	A []int32 `json:"a"`
	B []int32 `json:"b"`
	// Counts[i] is entry i's friend-pair count |F_a|·|F_b| (the Eqn-18
	// divisor); Sums[i*Dim : (i+1)*Dim] its per-dimension sums.
	Counts linalg.Vector `json:"counts"`
	Sums   linalg.Vector `json:"sums"`
}

// ImputeTableParts is the serializable pack-time Eqn-18 table: the
// precomputed friend-pair contribution of every index-shard candidate
// whose raw pair vector has missing dimensions, keyed at the packed
// topFriends depth K.
type ImputeTableParts struct {
	K     int                    `json:"k"`
	Dim   int                    `json:"dim"`
	Pairs []ImputeTablePairParts `json:"pairs"`
}

// NumEntries counts the table's entries across all platform pairs.
func (p *ImputeTableParts) NumEntries() int {
	n := 0
	for i := range p.Pairs {
		n += len(p.Pairs[i].A)
	}
	return n
}

// Validate checks the parts' internal consistency (shape, id range and
// count sanity) so a truncated or hand-edited table fails at load time
// instead of mis-filling a feature vector later.
func (p *ImputeTableParts) Validate() error {
	if p.K <= 0 || p.Dim <= 0 {
		return fmt.Errorf("core: impute table needs positive shape, got K=%d over dim %d", p.K, p.Dim)
	}
	for i := range p.Pairs {
		pp := &p.Pairs[i]
		n := len(pp.A)
		if len(pp.B) != n || len(pp.Counts) != n {
			return fmt.Errorf("core: impute table %s/%s has %d A ids, %d B ids, %d counts — want equal",
				pp.PA, pp.PB, n, len(pp.B), len(pp.Counts))
		}
		if len(pp.Sums) != n*p.Dim {
			return fmt.Errorf("core: impute table %s/%s has %d sum entries, want %d×%d",
				pp.PA, pp.PB, len(pp.Sums), n, p.Dim)
		}
		for j := 0; j < n; j++ {
			if pp.A[j] < 0 || pp.B[j] < 0 {
				return fmt.Errorf("core: impute table %s/%s entry %d has negative account ids (%d, %d)",
					pp.PA, pp.PB, j, pp.A[j], pp.B[j])
			}
			if c := pp.Counts[j]; math.IsNaN(c) || c < 0 || c != math.Trunc(c) {
				return fmt.Errorf("core: impute table %s/%s entry %d has count %g, want a non-negative integer",
					pp.PA, pp.PB, j, c)
			}
		}
	}
	return nil
}

// imputeTableKey addresses one table entry. Account ids are the bundle's
// local indexes, which the wire format already bounds to u32.
type imputeTableKey struct {
	pa, pb platform.ID
	a, b   int32
}

// ImputeTable is the runtime form of ImputeTableParts: a flat hash index
// over the entries, ready for lock-free concurrent lookups on the
// serving hot path. Hit/miss counters are atomic so /metrics can report
// imputation health without perturbing queries.
type ImputeTable struct {
	parts  *ImputeTableParts
	k, dim int
	idx    map[imputeTableKey]int32
	counts []float64
	sums   linalg.Vector // row-major entry×dim, concatenated across pairs

	hits, misses atomic.Uint64
}

// ImputeTableFromParts validates and indexes serialized table parts.
func ImputeTableFromParts(p *ImputeTableParts) (*ImputeTable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumEntries()
	t := &ImputeTable{
		parts:  p,
		k:      p.K,
		dim:    p.Dim,
		idx:    make(map[imputeTableKey]int32, n),
		counts: make([]float64, 0, n),
		sums:   make(linalg.Vector, 0, n*p.Dim),
	}
	for i := range p.Pairs {
		pp := &p.Pairs[i]
		for j := range pp.A {
			key := imputeTableKey{pp.PA, pp.PB, pp.A[j], pp.B[j]}
			if _, dup := t.idx[key]; dup {
				return nil, fmt.Errorf("core: impute table has duplicate entry for %s/%d × %s/%d",
					pp.PA, pp.A[j], pp.PB, pp.B[j])
			}
			t.idx[key] = int32(len(t.counts))
			t.counts = append(t.counts, pp.Counts[j])
			t.sums = append(t.sums, pp.Sums[j*p.Dim:(j+1)*p.Dim]...)
		}
	}
	return t, nil
}

// Parts returns the serialized form the table was built from (read-only).
func (t *ImputeTable) Parts() *ImputeTableParts { return t.parts }

// K returns the topFriends depth the sums were accumulated at; lookups
// at any other depth must bypass the table.
func (t *ImputeTable) K() int { return t.k }

// NumEntries reports the indexed entry count.
func (t *ImputeTable) NumEntries() int { return len(t.counts) }

// Stats reports the lookup counters since the table was built.
func (t *ImputeTable) Stats() (hits, misses uint64) {
	return t.hits.Load(), t.misses.Load()
}

// lookup resolves a pair's precomputed sums row and count. Only called
// for pairs that actually have missing dimensions (complete pairs never
// reach the table), so the miss counter measures exactly the queries
// that fell back to live friend resolution.
func (t *ImputeTable) lookup(pa platform.ID, a int, pb platform.ID, b int) (sums linalg.Vector, count float64, ok bool) {
	if a < 0 || a > math.MaxInt32 || b < 0 || b > math.MaxInt32 {
		t.misses.Add(1)
		return nil, 0, false
	}
	e, ok := t.idx[imputeTableKey{pa, pb, int32(a), int32(b)}]
	if !ok {
		t.misses.Add(1)
		return nil, 0, false
	}
	t.hits.Add(1)
	return t.sums[int(e)*t.dim : (int(e)+1)*t.dim], t.counts[e], true
}

// ImputeTableInput names one platform pair's candidate list for
// BuildImputeTable — typically a bundle index shard flattened to (a, b)
// rows.
type ImputeTableInput struct {
	PA, PB platform.ID
	Pairs  [][2]int
}

// BuildImputeTable precomputes the Eqn-18 friend-pair contribution of
// every input candidate whose raw pair vector has missing dimensions,
// at friend depth topFriends over dimensionality dim. Candidates whose
// raw vector is complete get no entry — the live path's mask scan
// already short-circuits them before any friend work. The accumulation
// runs accumFriendPairSums, the exact float sequence of the live loop,
// so a table-backed impute is bit-identical by construction. The build
// parallelizes over candidates (workers ≤ 0 = all cores) with each
// entry written to its own slot, so the output is identical at any
// worker count.
func BuildImputeTable(src Source, topFriends, dim, workers int, inputs []ImputeTableInput) (*ImputeTableParts, error) {
	if topFriends <= 0 {
		topFriends = DefaultTopFriends
	}
	if dim <= 0 {
		return nil, fmt.Errorf("core: impute table build needs a positive dim, got %d", dim)
	}
	parts := &ImputeTableParts{K: topFriends, Dim: dim}
	res := sourceResolver{src}
	for _, in := range inputs {
		pp := ImputeTablePairParts{
			PA: in.PA, PB: in.PB,
			A: []int32{}, B: []int32{},
			Counts: linalg.Vector{}, Sums: linalg.Vector{},
		}
		type slot struct {
			present bool
			count   float64
			sums    linalg.Vector
		}
		slots := make([]slot, len(in.Pairs))
		if err := parallel.ForErr(workers, len(in.Pairs), func(i int) error {
			a, b := in.Pairs[i][0], in.Pairs[i][1]
			if a < 0 || a > math.MaxInt32 || b < 0 || b > math.MaxInt32 {
				return fmt.Errorf("core: impute table candidate (%d, %d) outside the u32 id range", a, b)
			}
			pv, err := src.RawPair(in.PA, a, in.PB, b)
			if err != nil {
				return err
			}
			if len(pv.X) != dim {
				return fmt.Errorf("core: impute table candidate (%d, %d) spans dim %d, want %d", a, b, len(pv.X), dim)
			}
			missing := false
			for _, m := range pv.Mask {
				if !m {
					missing = true
					break
				}
			}
			if !missing {
				return nil
			}
			friendsA, err := res.resolveFriends(in.PA, a, topFriends)
			if err != nil {
				return err
			}
			friendsB, err := res.resolveFriends(in.PB, b, topFriends)
			if err != nil {
				return err
			}
			slots[i].present = true
			if len(friendsA) == 0 || len(friendsB) == 0 {
				// Count 0: the live path's "no social context" verdict,
				// recorded so serving skips even the friend resolution.
				return nil
			}
			sums := make(linalg.Vector, dim)
			if err := accumFriendPairSums(sums, res, in.PA, friendsA, in.PB, friendsB); err != nil {
				return err
			}
			slots[i].count = float64(len(friendsA) * len(friendsB))
			slots[i].sums = sums
			return nil
		}); err != nil {
			return nil, err
		}
		for i, s := range slots {
			if !s.present {
				continue
			}
			pp.A = append(pp.A, int32(in.Pairs[i][0]))
			pp.B = append(pp.B, int32(in.Pairs[i][1]))
			pp.Counts = append(pp.Counts, s.count)
			if s.sums == nil {
				pp.Sums = append(pp.Sums, make(linalg.Vector, dim)...)
			} else {
				pp.Sums = append(pp.Sums, s.sums...)
			}
		}
		parts.Pairs = append(parts.Pairs, pp)
	}
	return parts, nil
}

// RestrictImputeTable returns a copy of the parts with only the entries
// keep admits — the sharded-split path, which must drop entries for
// B-side accounts a sub-bundle does not own exactly as the index shards
// drop their candidate rows.
func RestrictImputeTable(p *ImputeTableParts, keep func(pb platform.ID, b int) bool) *ImputeTableParts {
	out := &ImputeTableParts{K: p.K, Dim: p.Dim}
	for i := range p.Pairs {
		pp := &p.Pairs[i]
		kept := ImputeTablePairParts{
			PA: pp.PA, PB: pp.PB,
			A: []int32{}, B: []int32{},
			Counts: linalg.Vector{}, Sums: linalg.Vector{},
		}
		for j := range pp.A {
			if !keep(pp.PB, int(pp.B[j])) {
				continue
			}
			kept.A = append(kept.A, pp.A[j])
			kept.B = append(kept.B, pp.B[j])
			kept.Counts = append(kept.Counts, pp.Counts[j])
			kept.Sums = append(kept.Sums, pp.Sums[j*p.Dim:(j+1)*p.Dim]...)
		}
		out.Pairs = append(out.Pairs, kept)
	}
	return out
}

// accumFriendPairSums adds every friend pair's raw-vector contribution
// into sums: the Eqn-18 numerator, friend pairs missing a dimension
// contributing zero to it. This is THE accumulation loop — the live
// imputePairInto path and the pack-time BuildImputeTable both run it,
// which is what makes a table-backed impute bit-identical to a live one
// rather than merely close.
func accumFriendPairSums(sums linalg.Vector, rp rawPairResolver,
	pa platform.ID, friendsA []graph.Friend, pb platform.ID, friendsB []graph.Friend) error {

	for _, fa := range friendsA {
		for _, fb := range friendsB {
			fpv, err := rp.resolveRawPair(pa, fa.ID, pb, fb.ID)
			if err != nil {
				return err
			}
			for d := range sums {
				if fpv.Mask[d] {
					sums[d] += fpv.X[d]
				}
			}
		}
	}
	return nil
}
