package core

// The two-tier query lease. Profiling the two-tier top-k path showed
// Eqn-18 imputation — not the kernel fold — dominating it: the
// prescreen pass imputed every candidate, then the exact rescore of the
// survivors imputed them again through ScoreBatchInto, and the double
// impute ate the entire pruning win. TwoTier fixes that by leasing the
// batch's imputed rows across the whole query: one impute pass feeds
// the prescreen fold AND every exact rescore chunk. Reuse is bit-exact
// by construction — imputation is a pure per-pair function, so the
// retained row IS the row a fresh ScoreBatchInto would rebuild, and the
// kernel fold below runs the identical float sequence on it.
//
// With the fold memo (see foldCache) the lease goes one step further:
// a candidate whose fold value is already memoized is not imputed at
// BeginTwoTier at all — its leased row stays unmaterialized until an
// exact rescore chunk actually needs it, and the pruned majority never
// pays imputation again. ScoreSubset materializes on demand through the
// same imputeBatch, so the rows (and with them every served score) stay
// bit-identical to the eager path's.

import (
	"fmt"

	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// TwoTier is a leased two-tier scoring batch: the pairs' imputed
// feature rows, held on pooled scratch from BeginTwoTier until End, so
// the exact rescore of any candidate subset skips re-imputation. Rows
// whose fold value came from the memo are materialized lazily by
// ScoreSubset. The zero value is inert; a value is only usable between
// a successful BeginTwoTier and the matching End.
type TwoTier struct {
	m      *Model
	sc     *scoreScratch
	rows   []linalg.Vector
	rowOK  []bool
	pa, pb platform.ID
	pairs  [][2]int
}

// BeginTwoTier fills pre (len(pre) must equal len(pairs)) with the
// approximate prescreen score of every pair and parks the batch's
// imputed rows in t for exact subset rescoring. Pairs with a memoized
// fold value are answered from the memo without imputing; only the
// misses pay one impute pass plus the fold, and their values join the
// memo. The prescreen values obey the same contract as
// PrescreenBatchInto: bit-identical at any worker count, bounded by ε
// only in the certified sense, never served. Every successful call must
// be paired with t.End(), which returns the lease to the model's
// scratch pool.
func (m *Model) BeginTwoTier(t *TwoTier, pa platform.ID, pb platform.ID, pairs [][2]int, workers int, pre []float64) error {
	if m.pre == nil {
		return fmt.Errorf("core: model has no prescreen attached")
	}
	if len(pre) != len(pairs) {
		return fmt.Errorf("core: BeginTwoTier got %d prescreen slots for %d pairs", len(pre), len(pairs))
	}
	n := len(pairs)
	sc := m.getScratch()
	rows := sc.ensureRows(n)
	rowOK := sc.ensureRowOK(n)
	ps := m.pre
	fc := &ps.cache
	miss := sc.miss[:0]
	fc.mu.Lock()
	for i, p := range pairs {
		v, hit := fc.m[pairKey{pa, pb, p[0], p[1]}]
		rowOK[i] = false
		if hit {
			pre[i] = v
		} else {
			miss = append(miss, i)
		}
	}
	fc.mu.Unlock()
	sc.miss = miss
	fc.hits.Add(uint64(n - len(miss)))
	fc.misses.Add(uint64(len(miss)))

	if len(miss) > 0 {
		mp := sc.ensureMissPairs(len(miss))
		mr := sc.ensureMissRows(len(miss))
		for j, i := range miss {
			mp[j] = pairs[i]
			mr[j] = rows[i]
		}
		if err := m.imputeBatch(sc, mr, pa, pb, mp, workers); err != nil {
			m.scratch.Put(sc)
			return err
		}
		for j, i := range miss {
			rows[i] = mr[j]
			rowOK[i] = true
		}
		bias := m.bias
		if w := parallel.Workers(workers); w == 1 || len(miss) <= 1 {
			for _, i := range miss {
				pre[i] = ps.score(rows[i], bias)
			}
		} else {
			parallel.For(workers, len(miss), func(j int) {
				i := miss[j]
				pre[i] = ps.score(rows[i], bias)
			})
		}
		fc.mu.Lock()
		if fc.m == nil {
			fc.m = make(map[pairKey]float64, 1024)
		}
		fc.evictLocked(len(miss))
		for _, i := range miss {
			fc.m[pairKey{pa, pb, pairs[i][0], pairs[i][1]}] = pre[i]
		}
		fc.mu.Unlock()
	}
	t.m, t.sc, t.rows, t.rowOK = m, sc, rows, rowOK
	t.pa, t.pb, t.pairs = pa, pb, pairs
	return nil
}

// ScoreSubset exactly scores the leased rows idx (indices into the
// BeginTwoTier batch) into out, len(out) = len(idx), materializing any
// rows the fold memo let BeginTwoTier skip. It runs the same blocked
// kernel pass and α/bias fold as ScoreBatchInto — and each output slot
// depends only on its own row, never on the batch around it — so the
// values are bit-identical to what ScoreBatchInto would return for
// those pairs, at any worker count and any chunking. These ARE the
// served scores.
func (t *TwoTier) ScoreSubset(idx []int, workers int, out []float64) error {
	if t.sc == nil {
		return fmt.Errorf("core: ScoreSubset outside a BeginTwoTier lease")
	}
	if len(out) != len(idx) {
		return fmt.Errorf("core: ScoreSubset got %d output slots for %d rows", len(out), len(idx))
	}
	n := len(idx)
	if n == 0 {
		return nil
	}
	m := t.m
	miss := t.sc.miss[:0]
	for _, id := range idx {
		if id < 0 || id >= len(t.rows) {
			return fmt.Errorf("core: ScoreSubset row %d outside the leased batch of %d", id, len(t.rows))
		}
		if !t.rowOK[id] {
			miss = append(miss, id)
		}
	}
	t.sc.miss = miss
	if len(miss) > 0 {
		mp := t.sc.ensureMissPairs(len(miss))
		mr := t.sc.ensureMissRows(len(miss))
		for j, id := range miss {
			mp[j] = t.pairs[id]
			mr[j] = t.rows[id]
		}
		if err := m.imputeBatch(t.sc, mr, t.pa, t.pb, mp, workers); err != nil {
			return err
		}
		for j, id := range miss {
			t.rows[id] = mr[j]
			t.rowOK[id] = true
		}
	}
	sub := t.sc.ensureSub(n)
	for i, id := range idx {
		sub[i] = t.rows[id]
	}
	km := t.sc.ensureKmat(len(m.svXs), n)
	kernel.CrossGramInto(m.kern, m.svXs, sub, km, workers)
	for i := range out {
		out[i] = m.bias
	}
	for j, a := range m.svAlpha {
		row := km.Data[j*n : (j+1)*n]
		for i, kv := range row {
			out[i] += a * kv
		}
	}
	return nil
}

// End returns the lease to the scratch pool and resets t to its inert
// zero state. Safe to call on an inert value.
func (t *TwoTier) End() {
	if t.sc != nil {
		t.m.scratch.Put(t.sc)
	}
	t.m, t.sc, t.rows, t.rowOK, t.pairs = nil, nil, nil, nil, nil
}
