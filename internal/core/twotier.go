package core

// The two-tier query lease. Profiling the two-tier top-k path showed
// Eqn-18 imputation — not the kernel fold — dominating it: the
// prescreen pass imputed every candidate, then the exact rescore of the
// survivors imputed them again through ScoreBatchInto, and the double
// impute ate the entire pruning win. TwoTier fixes that by leasing the
// batch's imputed rows across the whole query: one impute pass feeds
// the prescreen fold AND every exact rescore chunk. Reuse is bit-exact
// by construction — imputation is a pure per-pair function, so the
// retained row IS the row a fresh ScoreBatchInto would rebuild, and the
// kernel fold below runs the identical float sequence on it.

import (
	"fmt"

	"hydra/internal/kernel"
	"hydra/internal/linalg"
	"hydra/internal/parallel"
	"hydra/internal/platform"
)

// TwoTier is a leased two-tier scoring batch: the pairs' imputed
// feature rows, held on pooled scratch from BeginTwoTier until End, so
// the exact rescore of any candidate subset skips re-imputation. The
// zero value is inert; a value is only usable between a successful
// BeginTwoTier and the matching End.
type TwoTier struct {
	m    *Model
	sc   *scoreScratch
	rows []linalg.Vector
}

// BeginTwoTier imputes the batch once, folds the approximate prescreen
// scores into pre (len(pre) must equal len(pairs)), and parks the
// imputed rows in t for exact subset rescoring. The prescreen values
// obey the same contract as PrescreenBatchInto: bit-identical at any
// worker count, bounded by ε only in the certified sense, never served.
// Every successful call must be paired with t.End(), which returns the
// lease to the model's scratch pool.
func (m *Model) BeginTwoTier(t *TwoTier, pa platform.ID, pb platform.ID, pairs [][2]int, workers int, pre []float64) error {
	if m.pre == nil {
		return fmt.Errorf("core: model has no prescreen attached")
	}
	if len(pre) != len(pairs) {
		return fmt.Errorf("core: BeginTwoTier got %d prescreen slots for %d pairs", len(pre), len(pairs))
	}
	n := len(pairs)
	sc := m.getScratch()
	rows := sc.ensureRows(n)
	if err := m.imputeBatch(sc, rows, pa, pb, pairs, workers); err != nil {
		m.scratch.Put(sc)
		return err
	}
	ps, bias := m.pre, m.bias
	if w := parallel.Workers(workers); w == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			pre[i] = ps.score(rows[i], bias)
		}
	} else {
		parallel.For(workers, n, func(i int) {
			pre[i] = ps.score(rows[i], bias)
		})
	}
	t.m, t.sc, t.rows = m, sc, rows
	return nil
}

// ScoreSubset exactly scores the leased rows idx (indices into the
// BeginTwoTier batch) into out, len(out) = len(idx). It runs the same
// blocked kernel pass and α/bias fold as ScoreBatchInto — and each
// output slot depends only on its own row, never on the batch around it
// — so the values are bit-identical to what ScoreBatchInto would
// return for those pairs, at any worker count and any chunking. These
// ARE the served scores.
func (t *TwoTier) ScoreSubset(idx []int, workers int, out []float64) error {
	if t.sc == nil {
		return fmt.Errorf("core: ScoreSubset outside a BeginTwoTier lease")
	}
	if len(out) != len(idx) {
		return fmt.Errorf("core: ScoreSubset got %d output slots for %d rows", len(out), len(idx))
	}
	n := len(idx)
	if n == 0 {
		return nil
	}
	m := t.m
	sub := t.sc.ensureSub(n)
	for i, id := range idx {
		if id < 0 || id >= len(t.rows) {
			return fmt.Errorf("core: ScoreSubset row %d outside the leased batch of %d", id, len(t.rows))
		}
		sub[i] = t.rows[id]
	}
	km := t.sc.ensureKmat(len(m.svXs), n)
	kernel.CrossGramInto(m.kern, m.svXs, sub, km, workers)
	for i := range out {
		out[i] = m.bias
	}
	for j, a := range m.svAlpha {
		row := km.Data[j*n : (j+1)*n]
		for i, kv := range row {
			out[i] += a * kv
		}
	}
	return nil
}

// End returns the lease to the scratch pool and resets t to its inert
// zero state. Safe to call on an inert value.
func (t *TwoTier) End() {
	if t.sc != nil {
		t.m.scratch.Put(t.sc)
	}
	t.m, t.sc, t.rows = nil, nil, nil
}
